// Example: embedding quality across host families.
//
// The paper's Section 1 contrasts static embeddings with dynamic
// simulations.  This example measures the classic embedding quantities --
// load, dilation, congestion -- for a guest mapped onto several hosts, plus
// [15]'s spreading exponents that decide whether the guest is "mesh-like"
// (polynomial spreading, cheap to host) or "expander-like" (exponential,
// the hard case G_0 plants).
//
//   ./embedding_quality [--n 256] [--seed 3]
#include <cstdlib>
#include <iostream>

#include "src/core/embedding.hpp"
#include "src/core/embedding_metrics.hpp"
#include "src/lowerbound/spreading.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/debruijn.hpp"
#include "src/topology/expander.hpp"
#include "src/topology/mesh_of_trees.hpp"
#include "src/topology/random_regular.hpp"
#include "src/topology/torus.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace upn;
  try {
    const Cli cli{argc, argv};
    const auto n = static_cast<std::uint32_t>(cli.get_u64("n", 256));
    Rng rng{cli.get_u64("seed", 3)};

    const Graph guest = make_random_regular(n, kGuestDegree, rng);
    std::cout << "guest: " << guest.name() << "\n\n";

    Table table{{"host", "m", "load", "dilation", "avg dil", "congestion",
                 "slowdown LB"}};
    std::vector<Graph> hosts;
    hosts.push_back(make_butterfly(3));
    hosts.push_back(make_debruijn(5));
    hosts.push_back(make_torus(6, 6));
    hosts.push_back(make_mesh_of_trees(4));
    for (const Graph& host : hosts) {
      const auto f = make_random_embedding(n, host.num_nodes(), rng);
      const EmbeddingMetrics metrics = analyze_embedding(guest, host, f);
      table.add_row({host.name(), std::uint64_t{host.num_nodes()},
                     std::uint64_t{metrics.load}, std::uint64_t{metrics.dilation},
                     metrics.avg_dilation, std::uint64_t{metrics.congestion},
                     std::uint64_t{metrics.slowdown_lower_bound()}});
    }
    table.print(std::cout);

    std::cout << "\nSpreading exponents ([15]): is the guest mesh-like or "
                 "expander-like?\n";
    Table spread{{"graph", "poly exponent", "exp rate (bits/step)",
                  "polynomial (C=8, e=2)?"}};
    const Graph torus = make_torus(16, 16);
    Rng srng{9};
    for (const Graph* g : {&torus, &guest}) {
      const SpreadingProfile profile = measure_spreading(*g, 8, 8, srng);
      spread.add_row({g->name(), profile.poly_exponent, profile.exp_rate,
                      std::string{has_polynomial_spreading(profile, 8.0, 2.0) ? "yes" : "no"}});
    }
    spread.print(std::cout);
    std::cout << "\n16-regular random guests spread exponentially -- the reason the\n"
                 "lower bound's G_0 plants an expander (Definition 3.9).\n";
    return EXIT_SUCCESS;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}
