// Figure 1 regeneration: build the dependency tree of a (4a^2)-torus block
// of Gamma_{G_0} (Lemma 3.10) and emit it as ASCII statistics plus Graphviz
// DOT on request.
//
//   ./dependency_tree_viz [--a 2] [--root 0] [--dot]
#include <cstdlib>
#include <iostream>

#include "src/lowerbound/dependency_tree.hpp"
#include "src/topology/multitorus.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace upn;
  try {
    const Cli cli{argc, argv};
    const auto a = static_cast<std::uint32_t>(cli.get_u64("a", 2));
    const auto root_index = static_cast<std::uint32_t>(cli.get_u64("root", 0));
    const bool dot = cli.has("dot");

    const std::uint32_t block_side = 2 * a;
    const std::uint32_t n = 4 * block_side * block_side;  // 2x2 blocks
    const MultitorusLayout layout = multitorus_layout(n, block_side);
    const Graph mt = make_multitorus(n, block_side);
    const auto block = layout.block_nodes(0);
    if (root_index >= block.size()) {
      std::cerr << "--root must be < " << block.size() << "\n";
      return EXIT_FAILURE;
    }
    const DependencyTree tree = build_block_dependency_tree(layout, 0, block[root_index]);
    const bool valid = validate_dependency_tree(tree, mt, block);

    if (dot) {
      std::cout << dependency_tree_to_dot(tree);
      return valid ? EXIT_SUCCESS : EXIT_FAILURE;
    }

    Table table{{"quantity", "value"}};
    table.add_row({std::string{"a (block half-side)"}, std::uint64_t{a}});
    table.add_row({std::string{"block size 4a^2"}, std::uint64_t{block.size()}});
    table.add_row({std::string{"root vertex P_i"}, std::uint64_t{tree.root_vertex()}});
    table.add_row({std::string{"tree size"}, std::uint64_t{tree.size()}});
    table.add_row({std::string{"size budget 48a^2"}, std::uint64_t{48 * a * a}});
    table.add_row({std::string{"size / a^2 (measured constant)"},
                   static_cast<double>(tree.size()) / (a * a)});
    table.add_row({std::string{"depth (paper: ~a, measured ~2a+)"},
                   std::uint64_t{tree.depth}});
    table.add_row({std::string{"leaves (= block nodes)"}, std::uint64_t{tree.leaves.size()}});
    table.add_row({std::string{"binary/Gamma-edge/leaf-cover valid"},
                   std::string{valid ? "yes" : "NO (BUG)"}});
    table.print(std::cout);
    std::cout << "\nRe-run with --dot for the Graphviz rendering of Figure 1.\n";
    return valid ? EXIT_SUCCESS : EXIT_FAILURE;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}
