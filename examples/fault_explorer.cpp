// Fault explorer: generate fault plans, inspect the damage they do to a
// host, and run self-healing universal simulations on the degraded machine.
//
//   # generate a plan (10% of links die at step 0) and assess the damage
//   ./fault_explorer --mode plan --host butterfly:3 --kind link --rate 0.1
//                    --out /tmp/faults.upnf
//   # a rack failure: everything within distance 1 of processor 12
//   ./fault_explorer --mode plan --host mesh:6x6 --kind region --center 12
//                    --radius 1 --out /tmp/faults.upnf
//   # run a guest through the degraded host and validate the protocol
//   ./fault_explorer --mode run --guest random:64:3:7 --host butterfly:3
//                    --in /tmp/faults.upnf --steps 3
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "src/core/fault_tolerant_sim.hpp"
#include "src/fault/fault_plan.hpp"
#include "src/fault/surgery.hpp"
#include "src/pebble/validator.hpp"
#include "src/topology/parse.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace {

using namespace upn;

FaultPlan build_plan(const Cli& cli, const Graph& host) {
  const std::string kind = cli.get("kind", "link");
  const double rate = cli.get_double("rate", 0.1);
  const std::uint64_t seed = cli.get_u64("seed", 0xfa11);
  const auto step = static_cast<std::uint32_t>(cli.get_u64("step", 0));
  if (kind == "link") return make_uniform_link_faults(host, rate, seed, step);
  if (kind == "node") return make_uniform_node_faults(host, rate, seed, step);
  if (kind == "drop") return make_uniform_drops(host, rate, seed, step);
  if (kind == "region") {
    const auto center = static_cast<NodeId>(cli.get_u64("center", 0));
    const auto radius = static_cast<std::uint32_t>(cli.get_u64("radius", 1));
    return make_region_fault(host, center, radius, step, seed);
  }
  throw std::invalid_argument{"unknown --kind '" + kind +
                              "' (link | node | drop | region)"};
}

void print_damage(const Graph& host, const FaultPlan& plan) {
  const DegradationReport report = assess_degradation(host, plan);
  Table table{{"quantity", "value"}};
  table.add_row({std::string{"host processors"}, std::uint64_t{report.original_nodes}});
  table.add_row({std::string{"host links"}, std::uint64_t{report.original_links}});
  table.add_row({std::string{"dead processors"}, std::uint64_t{report.dead_nodes}});
  table.add_row({std::string{"dead links"}, std::uint64_t{report.dead_links}});
  table.add_row({std::string{"drop windows"}, std::uint64_t{plan.drop_windows().size()}});
  table.add_row({std::string{"surviving components"}, std::uint64_t{report.components}});
  table.add_row({std::string{"largest component"}, std::uint64_t{report.largest_component}});
  table.add_row({std::string{"survivor min degree"}, std::uint64_t{report.min_degree}});
  table.add_row({std::string{"survivors connected"},
                 std::string{report.connected ? "yes" : "NO"}});
  table.print(std::cout);
}

int run_plan_mode(const Cli& cli, const Graph& host) {
  const FaultPlan plan = build_plan(cli, host);
  print_damage(host, plan);
  if (cli.has("out")) {
    const std::string out = cli.get("out", "");
    std::ofstream file{out};
    if (!file) {
      std::cerr << "cannot open " << out << " for writing\n";
      return EXIT_FAILURE;
    }
    write_fault_plan(file, plan);
    std::cout << "wrote plan (" << plan.link_faults().size() << " link faults, "
              << plan.node_faults().size() << " node faults, "
              << plan.drop_windows().size() << " drop windows) to " << out << "\n";
  }
  return EXIT_SUCCESS;
}

int run_sim_mode(const Cli& cli, const Graph& host) {
  const std::string guest_spec = cli.get("guest", "random:64:3:7");
  const Graph guest = make_topology(guest_spec);
  FaultPlan plan;
  if (cli.has("in")) {
    const std::string in = cli.get("in", "");
    std::ifstream file{in};
    if (!file) {
      std::cerr << "cannot open " << in << "\n";
      return EXIT_FAILURE;
    }
    plan = read_fault_plan(file);
  } else {
    plan = build_plan(cli, host);
  }
  print_damage(host, plan);

  std::vector<NodeId> embedding;
  for (NodeId u = 0; u < guest.num_nodes(); ++u) {
    embedding.push_back(u % host.num_nodes());
  }
  FaultTolerantSimulator sim{guest, host, plan, embedding};
  FaultSimOptions options;
  options.emit_protocol = true;
  options.seed = cli.get_u64("seed", 0xfa11);
  const auto steps = static_cast<std::uint32_t>(cli.get_u64("steps", 3));
  const FaultSimResult result = sim.run(steps, options);

  Table table{{"quantity", "value"}};
  table.add_row({std::string{"guest steps T"}, std::uint64_t{result.guest_steps}});
  table.add_row({std::string{"host steps T'"}, std::uint64_t{result.host_steps}});
  table.add_row({std::string{"  routing"}, std::uint64_t{result.comm_steps}});
  table.add_row({std::string{"  computing"}, std::uint64_t{result.compute_steps}});
  table.add_row({std::string{"  healing (replay)"}, std::uint64_t{result.replay_steps}});
  table.add_row({std::string{"fault epochs"}, std::uint64_t{result.fault_epochs}});
  table.add_row({std::string{"re-embedded guests"}, std::uint64_t{result.reembedded_guests}});
  table.add_row({std::string{"packets routed"}, result.packets_routed});
  table.add_row({std::string{"retransmissions"}, result.retransmissions});
  table.add_row({std::string{"reroutes"}, result.reroutes});
  table.add_row({std::string{"slowdown s"}, result.slowdown});
  table.add_row({std::string{"inefficiency k"}, result.inefficiency});
  table.add_row({std::string{"configs match"},
                 std::string{result.configs_match ? "yes" : "NO"}});
  table.print(std::cout);

  if (!result.completed) {
    std::cerr << "simulation FAILED: the surviving host could not carry the guest\n";
    return EXIT_FAILURE;
  }
  const ValidationResult on_original = validate_protocol(*result.protocol, guest, host);
  std::cout << "protocol vs original host: "
            << (on_original.ok ? "LEGAL" : on_original.error) << "\n";
  const Graph survivors = surviving_edges_graph(host, plan);
  const ValidationResult on_survivors = validate_protocol(*result.protocol, guest, survivors);
  std::cout << "protocol vs surviving host: "
            << (on_survivors.ok
                    ? "LEGAL"
                    : "ILLEGAL (faults activated after the hardware was used): " +
                          on_survivors.error)
            << "\n";
  return on_original.ok && result.configs_match ? EXIT_SUCCESS : EXIT_FAILURE;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Cli cli{argc, argv};
    const std::string mode = cli.get("mode", "plan");
    const std::string host_spec = cli.get("host", "butterfly:3");
    Graph host;
    try {
      host = make_topology(host_spec);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n" << topology_spec_help() << "\n";
      return EXIT_FAILURE;
    }
    if (mode == "plan") return run_plan_mode(cli, host);
    if (mode == "run") return run_sim_mode(cli, host);
    std::cerr << "unknown --mode '" << mode << "' (plan | run)\n";
    return EXIT_FAILURE;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}
