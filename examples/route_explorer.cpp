// Route explorer: measure route_M(h) for any host / policy / port model
// from the command line (the ROUTE experiment as a playground).
//
//   ./route_explorer --host butterfly:4 --h 4 --policy greedy --instances 3
//   ./route_explorer --host torus:16x16 --h 2 --policy valiant --multiport
//   ./route_explorer --host debruijn:6 --h 1 --offline-paths
#include <cstdlib>
#include <iostream>

#include "src/routing/path_schedule.hpp"
#include "src/routing/policies.hpp"
#include "src/routing/router.hpp"
#include "src/topology/parse.hpp"
#include "src/topology/properties.hpp"
#include "src/util/cli.hpp"
#include "src/util/stats.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace upn;
  try {
    const Cli cli{argc, argv};
    const Graph host = make_topology(cli.get("host", "butterfly:4"));
    const auto h = static_cast<std::uint32_t>(cli.get_u64("h", 2));
    const auto instances = static_cast<std::uint32_t>(cli.get_u64("instances", 3));
    const std::string policy_name = cli.get("policy", "greedy");
    const PortModel port_model =
        cli.has("multiport") ? PortModel::kMultiPort : PortModel::kSinglePort;
    Rng rng{cli.get_u64("seed", 1)};

    std::cout << "host: " << host.name() << "  (m = " << host.num_nodes()
              << ", max degree " << host.max_degree() << ", diameter "
              << sampled_diameter(host, 8) << "+)\n";

    if (cli.has("offline-paths")) {
      // Off-line path scheduling (known-in-advance relations).
      std::vector<double> makespans;
      std::uint32_t worst_c = 0, worst_d = 0;
      for (std::uint32_t i = 0; i < instances; ++i) {
        const HhProblem problem = random_h_relation(host.num_nodes(), h, rng);
        const PathSchedule schedule = schedule_paths(host, problem);
        if (!validate_path_schedule(host, problem, schedule)) {
          std::cerr << "schedule failed validation!\n";
          return EXIT_FAILURE;
        }
        makespans.push_back(schedule.makespan);
        worst_c = std::max(worst_c, schedule.congestion);
        worst_d = std::max(worst_d, schedule.dilation);
      }
      const Summary s = summarize(makespans);
      Table table{{"quantity", "value"}};
      table.add_row({std::string{"h"}, std::uint64_t{h}});
      table.add_row({std::string{"makespan mean"}, s.mean});
      table.add_row({std::string{"makespan worst"}, s.max});
      table.add_row({std::string{"congestion C (worst)"}, std::uint64_t{worst_c}});
      table.add_row({std::string{"dilation D (worst)"}, std::uint64_t{worst_d}});
      table.add_row({std::string{"makespan / (C+D)"},
                     s.max / static_cast<double>(worst_c + worst_d)});
      table.print(std::cout);
      return EXIT_SUCCESS;
    }

    GreedyPolicy greedy{host};
    ValiantPolicy valiant{host, rng()};
    RoutingPolicy* policy = nullptr;
    if (policy_name == "greedy") {
      policy = &greedy;
    } else if (policy_name == "valiant") {
      policy = &valiant;
    } else {
      std::cerr << "unknown --policy '" << policy_name << "' (greedy | valiant)\n";
      return EXIT_FAILURE;
    }
    const RouteTimeEstimate estimate =
        measure_route_time(host, h, *policy, port_model, instances, rng);
    Table table{{"quantity", "value"}};
    table.add_row({std::string{"policy"}, policy->name()});
    table.add_row({std::string{"port model"},
                   std::string{port_model == PortModel::kMultiPort ? "multiport"
                                                                   : "single-port"}});
    table.add_row({std::string{"h"}, std::uint64_t{h}});
    table.add_row({std::string{"route(h) worst steps"}, std::uint64_t{estimate.worst_steps}});
    table.add_row({std::string{"route(h) mean steps"}, estimate.mean_steps});
    table.add_row({std::string{"steps / h"},
                   static_cast<double>(estimate.worst_steps) / h});
    table.print(std::cout);
    return EXIT_SUCCESS;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n" << upn::topology_spec_help() << "\n";
    return EXIT_FAILURE;
  }
}
