// The headline experiment as an example: sweep butterfly host sizes for a
// fixed guest and print measured slowdown against the load bound n/m, the
// Theorem 2.1 upper-bound shape (n/m) log2 m, and the Theorem 3.1 lower
// bound.  The "normalized" column s / ((n/m) log2 m) should hover around a
// constant -- that constancy IS the trade-off.
//
//   ./universal_tradeoff [--n 512] [--steps 4] [--seed 7] [--csv]
#include <cstdlib>
#include <iostream>

#include "src/core/slowdown.hpp"
#include "src/lowerbound/tradeoff.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace upn;
  try {
    const Cli cli{argc, argv};
    const auto n = static_cast<std::uint32_t>(cli.get_u64("n", 512));
    const auto steps = static_cast<std::uint32_t>(cli.get_u64("steps", 4));
    const bool csv = cli.has("csv");
    Rng rng{cli.get_u64("seed", 7)};

    const Graph guest = make_random_regular(n, kGuestDegree, rng);
    const auto rows = sweep_butterfly_hosts(guest, steps, n, rng);

    Table table{{"m", "load", "s (measured)", "n/m", "(n/m)log2(m)", "normalized",
                 "k (measured)", "k lower bd", "verified"}};
    const CountingConstants constants;
    for (const SlowdownRow& row : rows) {
      const double k_lb = min_feasible_inefficiency(row.n, row.m, constants);
      table.add_row({std::uint64_t{row.m}, std::uint64_t{row.load}, row.slowdown,
                     row.load_bound, row.paper_bound, row.normalized, row.inefficiency,
                     k_lb, std::string{row.verified ? "yes" : "NO"}});
    }
    if (csv) {
      table.write_csv(std::cout);
    } else {
      std::cout << "guest: " << guest.name() << ", T = " << steps << "\n";
      table.print(std::cout);
      std::cout << "\nTheorem 3.1: m*s = Omega(n log m); Theorem 2.1 matches it on the\n"
                   "butterfly for m <= n, so 'normalized' should be ~constant.\n";
    }
    return EXIT_SUCCESS;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}
