// Quickstart: simulate an arbitrary constant-degree guest network on a
// butterfly host (Theorem 2.1) and print the measured slowdown next to the
// paper's bounds.
//
//   ./quickstart [--n 256] [--steps 8] [--seed 1]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "src/core/embedding.hpp"
#include "src/core/universal_sim.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace upn;
  try {
    const Cli cli{argc, argv};
    const auto n = static_cast<std::uint32_t>(cli.get_u64("n", 256));
    const auto steps = static_cast<std::uint32_t>(cli.get_u64("steps", 8));
    Rng rng{cli.get_u64("seed", 1)};
    if (!cli.unused().empty()) {
      std::cerr << "unknown flag --" << cli.unused().front() << "\n";
      return EXIT_FAILURE;
    }

    // The guest: a random 16-regular network, i.e. a member of the paper's
    // class U'.
    const Graph guest = make_random_regular(n, kGuestDegree, rng);

    // The host: the largest butterfly with at most n processors (m <= n:
    // the regime where Theorem 2.1 is optimal by Theorem 3.1).
    const std::uint32_t d = butterfly_dimension_for_size(n);
    if (d == 0) {
      std::cerr << "n too small for a butterfly host; use --n >= 4\n";
      return EXIT_FAILURE;
    }
    const Graph host = make_butterfly(d);
    const std::uint32_t m = host.num_nodes();

    std::cout << "guest: " << guest.name() << "   host: " << host.name() << " (m=" << m
              << ")\n";
    UniversalSimulator sim{guest, host, make_random_embedding(n, m, rng)};
    UniversalSimOptions options;
    options.seed = rng();
    const UniversalSimResult result = sim.run(steps, options);

    Table table{{"quantity", "value"}};
    table.add_row({std::string{"guest steps T"}, std::uint64_t{result.guest_steps}});
    table.add_row({std::string{"host steps T'"}, std::uint64_t{result.host_steps}});
    table.add_row({std::string{"slowdown s = T'/T"}, result.slowdown});
    table.add_row({std::string{"inefficiency k = s m/n"}, result.inefficiency});
    table.add_row({std::string{"load bound n/m"}, static_cast<double>(n) / m});
    table.add_row({std::string{"paper bound (n/m) log2 m"},
                   static_cast<double>(n) / m * std::log2(static_cast<double>(m))});
    table.add_row({std::string{"configurations verified"},
                   std::string{result.configs_match ? "yes" : "NO (BUG)"}});
    table.print(std::cout);
    return result.configs_match ? EXIT_SUCCESS : EXIT_FAILURE;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}
