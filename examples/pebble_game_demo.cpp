// Hand-drive the Section 3.1 pebble game: build a protocol step by step for
// a tiny guest/host pair, validate it, and print the metrics the lower-bound
// proof reasons about (representatives, weights, fragments).
//
//   ./pebble_game_demo
#include <cstdlib>
#include <iostream>

#include "src/pebble/fragment.hpp"
#include "src/pebble/metrics.hpp"
#include "src/pebble/protocol.hpp"
#include "src/pebble/validator.hpp"
#include "src/topology/builders.hpp"
#include "src/util/table.hpp"

int main() {
  using namespace upn;
  try {
    // Guest: the triangle P0-P1-P2.  Host: two processors Q0-Q1.  T = 2.
    const Graph guest = make_cycle(3);
    const Graph host = make_path(2);
    Protocol protocol{3, 2, 2};

    auto generate = [&](std::uint32_t proc, NodeId i, std::uint32_t t) {
      protocol.begin_step();
      protocol.add(Op{OpKind::kGenerate, proc, PebbleType{i, t}, 0});
      std::cout << "step " << protocol.host_steps() << ": Q" << proc << " generates (P" << i
                << "," << t << ")\n";
    };
    auto transfer = [&](std::uint32_t from, std::uint32_t to, NodeId i, std::uint32_t t) {
      protocol.begin_step();
      protocol.add(Op{OpKind::kSend, from, PebbleType{i, t}, to});
      protocol.add(Op{OpKind::kReceive, to, PebbleType{i, t}, from});
      std::cout << "step " << protocol.host_steps() << ": Q" << from << " sends (P" << i
                << "," << t << ") to Q" << to << "\n";
    };

    std::cout << "== Simulating 2 steps of the triangle on a 2-processor host ==\n";
    std::cout << "(initially, both processors hold all (P_i, 0) pebbles)\n\n";
    // Level 1: Q0 generates everything from the initial pebbles.
    generate(0, 0, 1);
    generate(0, 1, 1);
    generate(0, 2, 1);
    // Ship copies so Q1 can take over P0 and P1 at level 2.
    transfer(0, 1, 0, 1);
    transfer(0, 1, 1, 1);
    transfer(0, 1, 2, 1);
    // Level 2: split the generation work.
    generate(1, 0, 2);
    generate(1, 1, 2);
    generate(0, 2, 2);

    const ValidationResult validation = validate_protocol(protocol, guest, host);
    std::cout << "\nvalidator: " << (validation.ok ? "protocol is LEGAL" : validation.error)
              << " (" << validation.pebbles_generated << " generated, "
              << validation.pebbles_sent << " sent)\n";
    if (!validation.ok) return EXIT_FAILURE;

    const ProtocolMetrics metrics{protocol};
    std::cout << "slowdown s = " << metrics.host_steps() << "/" << metrics.guest_steps()
              << " = " << protocol.slowdown()
              << ", inefficiency k = " << metrics.inefficiency() << "\n\n";

    Table weights{{"pebble", "Q_S(i,t)", "q_{i,t}"}};
    for (std::uint32_t t = 0; t <= 2; ++t) {
      for (NodeId i = 0; i < 3; ++i) {
        std::string reps;
        for (const auto q : metrics.representatives(i, t)) {
          reps += (reps.empty() ? "Q" : ",Q") + std::to_string(q);
        }
        weights.add_row({"(P" + std::to_string(i) + "," + std::to_string(t) + ")", reps,
                         std::uint64_t{metrics.weight(i, t)}});
      }
    }
    weights.print(std::cout);

    const Fragment fragment = extract_fragment(metrics, 1);
    std::cout << "\nfragment at t0 = 1 (Definition 3.2): sum |B_i| = "
              << fragment.total_b_size() << ", generators b = {";
    for (NodeId i = 0; i < 3; ++i) {
      std::cout << (i ? ", " : "") << "Q" << fragment.b[i];
    }
    std::cout << "}\nlog2 multiplicity bound (Lemma 3.3, c=2): "
              << log2_multiplicity_bound(fragment, 2) << "\n";
    return EXIT_SUCCESS;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}
