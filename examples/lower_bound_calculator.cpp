// Theorem 3.1 as a calculator: plug in a proposed universal network
// (n, m, s) and learn whether the counting argument rules it out, plus the
// full lower-bound sweep for the given n.
//
//   ./lower_bound_calculator [--n 1048576] [--m 65536] [--s 4]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "src/lowerbound/tradeoff.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace upn;
  try {
    const Cli cli{argc, argv};
    const double n = cli.get_double("n", 1048576.0);
    const double m = cli.get_double("m", 65536.0);
    const double s = cli.get_double("s", 4.0);

    const CountingConstants constants;
    const TradeoffVerdict verdict = check_network(n, m, s, constants);

    std::cout << "Proposed: an n-universal network with n = " << n << ", m = " << m
              << ", slowdown s = " << s << "\n\n";
    Table table{{"check", "value"}};
    table.add_row({std::string{"m * s"}, verdict.proposed_ms});
    table.add_row({std::string{"n * log2 m (Thm 3.1 shape)"}, verdict.bound_nlogm});
    table.add_row({std::string{"minimal s (paper constants)"}, verdict.required_slowdown});
    table.add_row({std::string{"ruled out (paper constants)"},
                   std::string{verdict.ruled_out_paper_constants ? "YES" : "no"}});
    table.add_row({std::string{"ruled out (normalized, const=1)"},
                   std::string{verdict.ruled_out_normalized ? "YES" : "no"}});
    table.print(std::cout);

    std::cout << "\nLower-bound sweep at n = " << n << ":\n";
    std::vector<double> ms;
    for (double mm = 64; mm <= 4 * n; mm *= 8) ms.push_back(mm);
    Table sweep{{"m", "k >= (counting)", "k (closed form)", "s >=", "n/m",
                 "m*s_bound/(n log m)"}};
    for (const TradeoffRow& row : lower_bound_sweep(n, ms, constants)) {
      sweep.add_row({row.m, row.k_counting, row.k_closed_form, row.slowdown_bound,
                     row.load_bound, row.ms_over_nlogm});
    }
    sweep.print(std::cout);

    std::cout << "\nUpper-bound trade-off from [14] (s * log l = O(log n)):\n";
    Table upper{{"host size m = n*l", "achievable s"}};
    for (double ell : {1.0, 4.0, 64.0, 4096.0}) {
      upper.add_row({n * ell, upper_bound_slowdown(n, ell)});
    }
    upper.print(std::cout);
    return EXIT_SUCCESS;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}
