// The whole paper, one command: construction -> simulation -> validation ->
// lemma verification -> trade-off verdict.
//
//   ./full_pipeline [--n 100] [--d 2] [--steps 16] [--seed 1]
#include <cstdlib>
#include <iostream>

#include "src/core/pipeline.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

int main(int argc, char** argv) {
  using namespace upn;
  try {
    const Cli cli{argc, argv};
    PipelineConfig config;
    config.guest_size_hint = static_cast<std::uint32_t>(cli.get_u64("n", 100));
    config.butterfly_dimension = static_cast<std::uint32_t>(cli.get_u64("d", 2));
    config.guest_steps = static_cast<std::uint32_t>(cli.get_u64("steps", 16));
    config.seed = cli.get_u64("seed", 1);

    const PipelineReport report = run_paper_pipeline(config);

    std::cout << "=== Optimal Trade-Offs Between Size and Slowdown: full pipeline ===\n\n";
    Table table{{"stage", "result"}};
    auto yesno = [](bool b) { return std::string{b ? "yes" : "NO"}; };
    table.add_row({std::string{"guest n (contains G_0, c=16)"}, std::uint64_t{report.n}});
    table.add_row({std::string{"host m (butterfly)"}, std::uint64_t{report.m}});
    table.add_row({std::string{"G_0 block parameter a"}, std::uint64_t{report.a}});
    table.add_row({std::string{"planted expander beta (certified)"}, report.expander_beta});
    table.add_row({std::string{"measured slowdown s"}, report.slowdown});
    table.add_row({std::string{"load bound n/m"}, report.load_bound});
    table.add_row({std::string{"Thm 2.1 shape (n/m) log2 m"}, report.paper_shape});
    table.add_row({std::string{"inefficiency k = s m/n"}, report.inefficiency});
    table.add_row({std::string{"configurations verified"}, yesno(report.configs_verified)});
    table.add_row({std::string{"pebble protocol ops"}, report.protocol_ops});
    table.add_row({std::string{"protocol valid (Sec 3.1 rules)"},
                   yesno(report.protocol_valid)});
    table.add_row({std::string{"Lemma 3.12 holds (|Z| and bounds)"},
                   yesno(report.lemma312_holds)});
    table.add_row({std::string{"|Z_S| critical times"}, std::uint64_t{report.z_size}});
    table.add_row({std::string{"Prop 3.17 expansion caps hold"},
                   yesno(report.expansion_caps_hold)});
    table.add_row({std::string{"fragment log2 multiplicity (L3.3)"},
                   report.fragment_log2_multiplicity});
    table.add_row({std::string{"fragment sum |B_i|"}, report.fragment_sum_b});
    table.add_row({std::string{"ruled out by Thm 3.1 counting"},
                   yesno(report.ruled_out_by_counting)});
    table.print(std::cout);

    std::cout << "\nall checks pass: " << (report.all_checks_pass() ? "YES" : "NO") << "\n";
    if (!report.protocol_valid) std::cout << "protocol error: " << report.protocol_error << "\n";
    return report.all_checks_pass() ? EXIT_SUCCESS : EXIT_FAILURE;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}
