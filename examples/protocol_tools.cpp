// Protocol toolbox: generate, save, load, validate, and summarize Section
// 3.1 pebble protocols from the command line.
//
//   # generate a protocol and save it
//   ./protocol_tools --mode generate --guest random:96:16:5 --host butterfly:3
//                    --steps 4 --out /tmp/sim.upnp
//   # validate + summarize a saved protocol
//   ./protocol_tools --mode check --guest random:96:16:5 --host butterfly:3
//                    --in /tmp/sim.upnp
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "src/core/embedding.hpp"
#include "src/core/universal_sim.hpp"
#include "src/pebble/io.hpp"
#include "src/pebble/metrics.hpp"
#include "src/pebble/validator.hpp"
#include "src/topology/parse.hpp"
#include "src/util/cli.hpp"
#include "src/util/table.hpp"

namespace {

using namespace upn;

void summarize(const Protocol& protocol, const Graph& guest, const Graph& host) {
  const ValidationResult validation = validate_protocol(protocol, guest, host);
  std::cout << "validator: " << (validation.ok ? "LEGAL" : validation.error) << "\n";
  const ProtocolMetrics metrics{protocol};
  Table table{{"quantity", "value"}};
  table.add_row({std::string{"guests n"}, std::uint64_t{protocol.num_guests()}});
  table.add_row({std::string{"hosts m"}, std::uint64_t{protocol.num_hosts()}});
  table.add_row({std::string{"guest steps T"}, std::uint64_t{protocol.guest_steps()}});
  table.add_row({std::string{"host steps T'"}, std::uint64_t{protocol.host_steps()}});
  table.add_row({std::string{"operations"}, protocol.num_ops()});
  table.add_row({std::string{"pebbles generated"}, validation.pebbles_generated});
  table.add_row({std::string{"pebbles sent"}, validation.pebbles_sent});
  table.add_row({std::string{"slowdown s"}, protocol.slowdown()});
  table.add_row({std::string{"inefficiency k"}, protocol.inefficiency()});
  table.add_row({std::string{"sum_i q_{i,T}"},
                 metrics.total_weight_at(protocol.guest_steps())});
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Cli cli{argc, argv};
    const std::string mode = cli.get("mode", "generate");
    const std::string guest_spec = cli.get("guest", "random:96:16:5");
    const std::string host_spec = cli.get("host", "butterfly:3");
    Graph guest, host;
    try {
      guest = make_topology(guest_spec);
      host = make_topology(host_spec);
    } catch (const std::exception& e) {
      // Only topology-spec mistakes earn the spec cheat sheet; file and
      // protocol errors below get just the message.
      std::cerr << "error: " << e.what() << "\n" << topology_spec_help() << "\n";
      return EXIT_FAILURE;
    }

    if (mode == "generate") {
      const auto steps = static_cast<std::uint32_t>(cli.get_u64("steps", 4));
      const std::string out = cli.get("out", "/tmp/protocol.upnp");
      Rng rng{cli.get_u64("seed", 1)};
      UniversalSimulator sim{guest, host,
                             make_random_embedding(guest.num_nodes(), host.num_nodes(), rng)};
      UniversalSimOptions options;
      options.emit_protocol = true;
      options.seed = rng();
      const UniversalSimResult result = sim.run(steps, options);
      if (!result.configs_match) {
        std::cerr << "simulation diverged from reference -- refusing to save\n";
        return EXIT_FAILURE;
      }
      std::ofstream file{out};
      if (!file) {
        std::cerr << "cannot open " << out << " for writing\n";
        return EXIT_FAILURE;
      }
      write_protocol(file, *result.protocol);
      std::cout << "wrote " << result.protocol->num_ops() << " ops ("
                << result.protocol->host_steps() << " host steps) to " << out << "\n";
      summarize(*result.protocol, guest, host);
      return EXIT_SUCCESS;
    }
    if (mode == "check") {
      const std::string in = cli.get("in", "/tmp/protocol.upnp");
      std::ifstream file{in};
      if (!file) {
        std::cerr << "cannot open " << in << "\n";
        return EXIT_FAILURE;
      }
      const Protocol protocol = read_protocol(file);
      summarize(protocol, guest, host);
      return EXIT_SUCCESS;
    }
    std::cerr << "unknown --mode '" << mode << "' (generate | check)\n";
    return EXIT_FAILURE;
  } catch (const std::exception& e) {
    // Catch-all: a malformed protocol file or flag must exit non-zero with
    // a message, never std::terminate.
    std::cerr << "error: " << e.what() << "\n";
    return EXIT_FAILURE;
  }
}
