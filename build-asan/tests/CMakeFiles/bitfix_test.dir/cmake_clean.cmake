file(REMOVE_RECURSE
  "CMakeFiles/bitfix_test.dir/bitfix_test.cpp.o"
  "CMakeFiles/bitfix_test.dir/bitfix_test.cpp.o.d"
  "bitfix_test"
  "bitfix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitfix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
