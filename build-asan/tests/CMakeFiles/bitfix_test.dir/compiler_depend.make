# Empty compiler generated dependencies file for bitfix_test.
# This may be replaced when dependencies are built.
