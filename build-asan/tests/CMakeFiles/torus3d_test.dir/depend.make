# Empty dependencies file for torus3d_test.
# This may be replaced when dependencies are built.
