file(REMOVE_RECURSE
  "CMakeFiles/torus3d_test.dir/torus3d_test.cpp.o"
  "CMakeFiles/torus3d_test.dir/torus3d_test.cpp.o.d"
  "torus3d_test"
  "torus3d_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torus3d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
