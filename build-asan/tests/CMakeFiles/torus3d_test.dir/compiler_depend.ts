# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for torus3d_test.
