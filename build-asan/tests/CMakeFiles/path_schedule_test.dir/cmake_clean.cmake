file(REMOVE_RECURSE
  "CMakeFiles/path_schedule_test.dir/path_schedule_test.cpp.o"
  "CMakeFiles/path_schedule_test.dir/path_schedule_test.cpp.o.d"
  "path_schedule_test"
  "path_schedule_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
