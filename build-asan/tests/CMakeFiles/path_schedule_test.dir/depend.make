# Empty dependencies file for path_schedule_test.
# This may be replaced when dependencies are built.
