file(REMOVE_RECURSE
  "CMakeFiles/host_family_test.dir/host_family_test.cpp.o"
  "CMakeFiles/host_family_test.dir/host_family_test.cpp.o.d"
  "host_family_test"
  "host_family_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_family_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
