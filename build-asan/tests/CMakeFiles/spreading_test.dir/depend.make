# Empty dependencies file for spreading_test.
# This may be replaced when dependencies are built.
