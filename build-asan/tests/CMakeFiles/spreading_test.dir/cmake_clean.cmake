file(REMOVE_RECURSE
  "CMakeFiles/spreading_test.dir/spreading_test.cpp.o"
  "CMakeFiles/spreading_test.dir/spreading_test.cpp.o.d"
  "spreading_test"
  "spreading_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spreading_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
