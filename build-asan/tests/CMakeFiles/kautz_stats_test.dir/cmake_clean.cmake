file(REMOVE_RECURSE
  "CMakeFiles/kautz_stats_test.dir/kautz_stats_test.cpp.o"
  "CMakeFiles/kautz_stats_test.dir/kautz_stats_test.cpp.o.d"
  "kautz_stats_test"
  "kautz_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kautz_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
