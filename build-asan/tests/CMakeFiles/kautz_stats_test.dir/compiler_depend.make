# Empty compiler generated dependencies file for kautz_stats_test.
# This may be replaced when dependencies are built.
