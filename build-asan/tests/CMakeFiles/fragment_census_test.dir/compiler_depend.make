# Empty compiler generated dependencies file for fragment_census_test.
# This may be replaced when dependencies are built.
