file(REMOVE_RECURSE
  "CMakeFiles/fragment_census_test.dir/fragment_census_test.cpp.o"
  "CMakeFiles/fragment_census_test.dir/fragment_census_test.cpp.o.d"
  "fragment_census_test"
  "fragment_census_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fragment_census_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
