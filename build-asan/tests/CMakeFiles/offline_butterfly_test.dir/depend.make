# Empty dependencies file for offline_butterfly_test.
# This may be replaced when dependencies are built.
