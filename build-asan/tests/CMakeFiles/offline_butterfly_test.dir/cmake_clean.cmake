file(REMOVE_RECURSE
  "CMakeFiles/offline_butterfly_test.dir/offline_butterfly_test.cpp.o"
  "CMakeFiles/offline_butterfly_test.dir/offline_butterfly_test.cpp.o.d"
  "offline_butterfly_test"
  "offline_butterfly_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_butterfly_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
