# Empty compiler generated dependencies file for universal_sim_test.
# This may be replaced when dependencies are built.
