file(REMOVE_RECURSE
  "CMakeFiles/universal_sim_test.dir/universal_sim_test.cpp.o"
  "CMakeFiles/universal_sim_test.dir/universal_sim_test.cpp.o.d"
  "universal_sim_test"
  "universal_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/universal_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
