file(REMOVE_RECURSE
  "CMakeFiles/fault_router_test.dir/fault_router_test.cpp.o"
  "CMakeFiles/fault_router_test.dir/fault_router_test.cpp.o.d"
  "fault_router_test"
  "fault_router_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
