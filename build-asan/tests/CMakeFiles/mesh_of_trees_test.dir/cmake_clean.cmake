file(REMOVE_RECURSE
  "CMakeFiles/mesh_of_trees_test.dir/mesh_of_trees_test.cpp.o"
  "CMakeFiles/mesh_of_trees_test.dir/mesh_of_trees_test.cpp.o.d"
  "mesh_of_trees_test"
  "mesh_of_trees_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_of_trees_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
