# Empty compiler generated dependencies file for mesh_of_trees_test.
# This may be replaced when dependencies are built.
