# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for pebble_io_fuzz_test.
