# Empty compiler generated dependencies file for pebble_io_fuzz_test.
# This may be replaced when dependencies are built.
