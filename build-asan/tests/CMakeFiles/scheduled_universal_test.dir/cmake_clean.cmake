file(REMOVE_RECURSE
  "CMakeFiles/scheduled_universal_test.dir/scheduled_universal_test.cpp.o"
  "CMakeFiles/scheduled_universal_test.dir/scheduled_universal_test.cpp.o.d"
  "scheduled_universal_test"
  "scheduled_universal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduled_universal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
