file(REMOVE_RECURSE
  "CMakeFiles/embedding_metrics_test.dir/embedding_metrics_test.cpp.o"
  "CMakeFiles/embedding_metrics_test.dir/embedding_metrics_test.cpp.o.d"
  "embedding_metrics_test"
  "embedding_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
