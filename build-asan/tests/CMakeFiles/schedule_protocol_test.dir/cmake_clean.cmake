file(REMOVE_RECURSE
  "CMakeFiles/schedule_protocol_test.dir/schedule_protocol_test.cpp.o"
  "CMakeFiles/schedule_protocol_test.dir/schedule_protocol_test.cpp.o.d"
  "schedule_protocol_test"
  "schedule_protocol_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
