# Empty dependencies file for schedule_protocol_test.
# This may be replaced when dependencies are built.
