file(REMOVE_RECURSE
  "CMakeFiles/compute_test.dir/compute_test.cpp.o"
  "CMakeFiles/compute_test.dir/compute_test.cpp.o.d"
  "compute_test"
  "compute_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
