file(REMOVE_RECURSE
  "CMakeFiles/pebble_test.dir/pebble_test.cpp.o"
  "CMakeFiles/pebble_test.dir/pebble_test.cpp.o.d"
  "pebble_test"
  "pebble_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pebble_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
