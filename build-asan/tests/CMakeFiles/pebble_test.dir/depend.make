# Empty dependencies file for pebble_test.
# This may be replaced when dependencies are built.
