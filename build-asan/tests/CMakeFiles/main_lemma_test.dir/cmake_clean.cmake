file(REMOVE_RECURSE
  "CMakeFiles/main_lemma_test.dir/main_lemma_test.cpp.o"
  "CMakeFiles/main_lemma_test.dir/main_lemma_test.cpp.o.d"
  "main_lemma_test"
  "main_lemma_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/main_lemma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
