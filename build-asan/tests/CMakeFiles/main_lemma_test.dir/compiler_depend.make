# Empty compiler generated dependencies file for main_lemma_test.
# This may be replaced when dependencies are built.
