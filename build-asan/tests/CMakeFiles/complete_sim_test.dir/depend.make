# Empty dependencies file for complete_sim_test.
# This may be replaced when dependencies are built.
