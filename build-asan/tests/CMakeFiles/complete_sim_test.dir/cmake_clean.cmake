file(REMOVE_RECURSE
  "CMakeFiles/complete_sim_test.dir/complete_sim_test.cpp.o"
  "CMakeFiles/complete_sim_test.dir/complete_sim_test.cpp.o.d"
  "complete_sim_test"
  "complete_sim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complete_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
