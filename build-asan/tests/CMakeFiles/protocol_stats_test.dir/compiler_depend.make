# Empty compiler generated dependencies file for protocol_stats_test.
# This may be replaced when dependencies are built.
