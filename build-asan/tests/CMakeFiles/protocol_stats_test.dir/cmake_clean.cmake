file(REMOVE_RECURSE
  "CMakeFiles/protocol_stats_test.dir/protocol_stats_test.cpp.o"
  "CMakeFiles/protocol_stats_test.dir/protocol_stats_test.cpp.o.d"
  "protocol_stats_test"
  "protocol_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
