file(REMOVE_RECURSE
  "CMakeFiles/lemma_verify_test.dir/lemma_verify_test.cpp.o"
  "CMakeFiles/lemma_verify_test.dir/lemma_verify_test.cpp.o.d"
  "lemma_verify_test"
  "lemma_verify_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lemma_verify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
