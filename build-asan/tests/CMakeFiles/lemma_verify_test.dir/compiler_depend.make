# Empty compiler generated dependencies file for lemma_verify_test.
# This may be replaced when dependencies are built.
