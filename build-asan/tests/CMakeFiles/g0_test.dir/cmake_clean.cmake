file(REMOVE_RECURSE
  "CMakeFiles/g0_test.dir/g0_test.cpp.o"
  "CMakeFiles/g0_test.dir/g0_test.cpp.o.d"
  "g0_test"
  "g0_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/g0_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
