# Empty dependencies file for g0_test.
# This may be replaced when dependencies are built.
