# Empty dependencies file for hh_problem_test.
# This may be replaced when dependencies are built.
