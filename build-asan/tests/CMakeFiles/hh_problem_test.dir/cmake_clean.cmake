file(REMOVE_RECURSE
  "CMakeFiles/hh_problem_test.dir/hh_problem_test.cpp.o"
  "CMakeFiles/hh_problem_test.dir/hh_problem_test.cpp.o.d"
  "hh_problem_test"
  "hh_problem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hh_problem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
