# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hh_problem_test.
