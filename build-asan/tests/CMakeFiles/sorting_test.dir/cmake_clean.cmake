file(REMOVE_RECURSE
  "CMakeFiles/sorting_test.dir/sorting_test.cpp.o"
  "CMakeFiles/sorting_test.dir/sorting_test.cpp.o.d"
  "sorting_test"
  "sorting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sorting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
