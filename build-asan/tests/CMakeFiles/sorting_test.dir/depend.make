# Empty dependencies file for sorting_test.
# This may be replaced when dependencies are built.
