# Empty compiler generated dependencies file for universal_sweep_test.
# This may be replaced when dependencies are built.
