file(REMOVE_RECURSE
  "CMakeFiles/universal_sweep_test.dir/universal_sweep_test.cpp.o"
  "CMakeFiles/universal_sweep_test.dir/universal_sweep_test.cpp.o.d"
  "universal_sweep_test"
  "universal_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/universal_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
