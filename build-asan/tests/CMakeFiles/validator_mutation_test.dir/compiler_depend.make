# Empty compiler generated dependencies file for validator_mutation_test.
# This may be replaced when dependencies are built.
