file(REMOVE_RECURSE
  "CMakeFiles/validator_mutation_test.dir/validator_mutation_test.cpp.o"
  "CMakeFiles/validator_mutation_test.dir/validator_mutation_test.cpp.o.d"
  "validator_mutation_test"
  "validator_mutation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validator_mutation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
