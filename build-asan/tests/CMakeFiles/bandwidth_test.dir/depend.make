# Empty dependencies file for bandwidth_test.
# This may be replaced when dependencies are built.
