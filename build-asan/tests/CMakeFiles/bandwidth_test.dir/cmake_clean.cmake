file(REMOVE_RECURSE
  "CMakeFiles/bandwidth_test.dir/bandwidth_test.cpp.o"
  "CMakeFiles/bandwidth_test.dir/bandwidth_test.cpp.o.d"
  "bandwidth_test"
  "bandwidth_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bandwidth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
