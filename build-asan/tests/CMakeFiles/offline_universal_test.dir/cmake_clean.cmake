file(REMOVE_RECURSE
  "CMakeFiles/offline_universal_test.dir/offline_universal_test.cpp.o"
  "CMakeFiles/offline_universal_test.dir/offline_universal_test.cpp.o.d"
  "offline_universal_test"
  "offline_universal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_universal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
