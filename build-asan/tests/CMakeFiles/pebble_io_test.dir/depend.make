# Empty dependencies file for pebble_io_test.
# This may be replaced when dependencies are built.
