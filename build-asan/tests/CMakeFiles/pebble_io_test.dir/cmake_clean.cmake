file(REMOVE_RECURSE
  "CMakeFiles/pebble_io_test.dir/pebble_io_test.cpp.o"
  "CMakeFiles/pebble_io_test.dir/pebble_io_test.cpp.o.d"
  "pebble_io_test"
  "pebble_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pebble_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
