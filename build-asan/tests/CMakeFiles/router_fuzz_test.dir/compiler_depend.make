# Empty compiler generated dependencies file for router_fuzz_test.
# This may be replaced when dependencies are built.
