file(REMOVE_RECURSE
  "CMakeFiles/router_fuzz_test.dir/router_fuzz_test.cpp.o"
  "CMakeFiles/router_fuzz_test.dir/router_fuzz_test.cpp.o.d"
  "router_fuzz_test"
  "router_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
