# Empty dependencies file for fault_plan_regression_test.
# This may be replaced when dependencies are built.
