file(REMOVE_RECURSE
  "CMakeFiles/bench_expander.dir/bench_expander.cpp.o"
  "CMakeFiles/bench_expander.dir/bench_expander.cpp.o.d"
  "bench_expander"
  "bench_expander.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_expander.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
