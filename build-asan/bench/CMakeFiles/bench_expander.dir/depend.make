# Empty dependencies file for bench_expander.
# This may be replaced when dependencies are built.
