file(REMOVE_RECURSE
  "CMakeFiles/bench_census.dir/bench_census.cpp.o"
  "CMakeFiles/bench_census.dir/bench_census.cpp.o.d"
  "bench_census"
  "bench_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
