file(REMOVE_RECURSE
  "CMakeFiles/bench_dependency_tree.dir/bench_dependency_tree.cpp.o"
  "CMakeFiles/bench_dependency_tree.dir/bench_dependency_tree.cpp.o.d"
  "bench_dependency_tree"
  "bench_dependency_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dependency_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
