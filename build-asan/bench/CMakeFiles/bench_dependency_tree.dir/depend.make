# Empty dependencies file for bench_dependency_tree.
# This may be replaced when dependencies are built.
