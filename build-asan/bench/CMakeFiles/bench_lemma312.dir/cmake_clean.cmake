file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma312.dir/bench_lemma312.cpp.o"
  "CMakeFiles/bench_lemma312.dir/bench_lemma312.cpp.o.d"
  "bench_lemma312"
  "bench_lemma312.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma312.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
