# Empty dependencies file for bench_lemma312.
# This may be replaced when dependencies are built.
