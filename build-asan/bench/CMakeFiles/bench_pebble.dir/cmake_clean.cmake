file(REMOVE_RECURSE
  "CMakeFiles/bench_pebble.dir/bench_pebble.cpp.o"
  "CMakeFiles/bench_pebble.dir/bench_pebble.cpp.o.d"
  "bench_pebble"
  "bench_pebble.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pebble.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
