# Empty dependencies file for bench_pebble.
# This may be replaced when dependencies are built.
