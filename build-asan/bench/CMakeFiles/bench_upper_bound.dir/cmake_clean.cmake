file(REMOVE_RECURSE
  "CMakeFiles/bench_upper_bound.dir/bench_upper_bound.cpp.o"
  "CMakeFiles/bench_upper_bound.dir/bench_upper_bound.cpp.o.d"
  "bench_upper_bound"
  "bench_upper_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_upper_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
