# Empty compiler generated dependencies file for bench_upper_bound.
# This may be replaced when dependencies are built.
