file(REMOVE_RECURSE
  "CMakeFiles/bench_sorting.dir/bench_sorting.cpp.o"
  "CMakeFiles/bench_sorting.dir/bench_sorting.cpp.o.d"
  "bench_sorting"
  "bench_sorting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sorting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
