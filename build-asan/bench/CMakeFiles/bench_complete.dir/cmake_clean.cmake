file(REMOVE_RECURSE
  "CMakeFiles/bench_complete.dir/bench_complete.cpp.o"
  "CMakeFiles/bench_complete.dir/bench_complete.cpp.o.d"
  "bench_complete"
  "bench_complete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_complete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
