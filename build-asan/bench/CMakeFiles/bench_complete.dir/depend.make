# Empty dependencies file for bench_complete.
# This may be replaced when dependencies are built.
