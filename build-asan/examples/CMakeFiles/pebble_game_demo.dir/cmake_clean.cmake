file(REMOVE_RECURSE
  "CMakeFiles/pebble_game_demo.dir/pebble_game_demo.cpp.o"
  "CMakeFiles/pebble_game_demo.dir/pebble_game_demo.cpp.o.d"
  "pebble_game_demo"
  "pebble_game_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pebble_game_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
