# Empty compiler generated dependencies file for pebble_game_demo.
# This may be replaced when dependencies are built.
