file(REMOVE_RECURSE
  "CMakeFiles/dependency_tree_viz.dir/dependency_tree_viz.cpp.o"
  "CMakeFiles/dependency_tree_viz.dir/dependency_tree_viz.cpp.o.d"
  "dependency_tree_viz"
  "dependency_tree_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dependency_tree_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
