# Empty dependencies file for dependency_tree_viz.
# This may be replaced when dependencies are built.
