file(REMOVE_RECURSE
  "CMakeFiles/embedding_quality.dir/embedding_quality.cpp.o"
  "CMakeFiles/embedding_quality.dir/embedding_quality.cpp.o.d"
  "embedding_quality"
  "embedding_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/embedding_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
