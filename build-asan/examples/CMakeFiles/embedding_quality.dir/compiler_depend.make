# Empty compiler generated dependencies file for embedding_quality.
# This may be replaced when dependencies are built.
