# Empty compiler generated dependencies file for lower_bound_calculator.
# This may be replaced when dependencies are built.
