file(REMOVE_RECURSE
  "CMakeFiles/lower_bound_calculator.dir/lower_bound_calculator.cpp.o"
  "CMakeFiles/lower_bound_calculator.dir/lower_bound_calculator.cpp.o.d"
  "lower_bound_calculator"
  "lower_bound_calculator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lower_bound_calculator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
