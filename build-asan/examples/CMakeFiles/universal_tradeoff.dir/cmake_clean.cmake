file(REMOVE_RECURSE
  "CMakeFiles/universal_tradeoff.dir/universal_tradeoff.cpp.o"
  "CMakeFiles/universal_tradeoff.dir/universal_tradeoff.cpp.o.d"
  "universal_tradeoff"
  "universal_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/universal_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
