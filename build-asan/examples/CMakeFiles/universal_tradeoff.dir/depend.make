# Empty dependencies file for universal_tradeoff.
# This may be replaced when dependencies are built.
