# Empty dependencies file for fault_explorer.
# This may be replaced when dependencies are built.
