file(REMOVE_RECURSE
  "CMakeFiles/fault_explorer.dir/fault_explorer.cpp.o"
  "CMakeFiles/fault_explorer.dir/fault_explorer.cpp.o.d"
  "fault_explorer"
  "fault_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
