# Empty dependencies file for route_explorer.
# This may be replaced when dependencies are built.
