file(REMOVE_RECURSE
  "CMakeFiles/route_explorer.dir/route_explorer.cpp.o"
  "CMakeFiles/route_explorer.dir/route_explorer.cpp.o.d"
  "route_explorer"
  "route_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
