# Empty compiler generated dependencies file for protocol_tools.
# This may be replaced when dependencies are built.
