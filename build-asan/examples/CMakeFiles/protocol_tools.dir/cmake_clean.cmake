file(REMOVE_RECURSE
  "CMakeFiles/protocol_tools.dir/protocol_tools.cpp.o"
  "CMakeFiles/protocol_tools.dir/protocol_tools.cpp.o.d"
  "protocol_tools"
  "protocol_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
