# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build-asan/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build-asan/examples/quickstart" "--n" "96" "--steps" "2")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_universal_tradeoff "/root/repo/build-asan/examples/universal_tradeoff" "--n" "192" "--steps" "2")
set_tests_properties(example_universal_tradeoff PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dependency_tree_viz "/root/repo/build-asan/examples/dependency_tree_viz" "--a" "2")
set_tests_properties(example_dependency_tree_viz PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pebble_game_demo "/root/repo/build-asan/examples/pebble_game_demo")
set_tests_properties(example_pebble_game_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lower_bound_calculator "/root/repo/build-asan/examples/lower_bound_calculator")
set_tests_properties(example_lower_bound_calculator PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_embedding_quality "/root/repo/build-asan/examples/embedding_quality" "--n" "96")
set_tests_properties(example_embedding_quality PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_full_pipeline "/root/repo/build-asan/examples/full_pipeline" "--steps" "12")
set_tests_properties(example_full_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_route_explorer "/root/repo/build-asan/examples/route_explorer" "--host" "torus:6x6" "--h" "2")
set_tests_properties(example_route_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_protocol_tools "/root/repo/build-asan/examples/protocol_tools" "--mode" "generate" "--guest" "random:48:8:3" "--host" "butterfly:2" "--steps" "2" "--out" "protocol_tools_test.upnp")
set_tests_properties(example_protocol_tools PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fault_explorer_plan "/root/repo/build-asan/examples/fault_explorer" "--mode" "plan" "--host" "butterfly:2" "--kind" "link" "--rate" "0.1" "--out" "fault_explorer_test.upnf")
set_tests_properties(example_fault_explorer_plan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;32;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_fault_explorer_run "/root/repo/build-asan/examples/fault_explorer" "--mode" "run" "--guest" "random:24:3:5" "--host" "butterfly:2" "--kind" "node" "--rate" "0.1" "--steps" "2")
set_tests_properties(example_fault_explorer_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;35;add_test;/root/repo/examples/CMakeLists.txt;0;")
