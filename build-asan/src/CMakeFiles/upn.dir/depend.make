# Empty dependencies file for upn.
# This may be replaced when dependencies are built.
