file(REMOVE_RECURSE
  "libupn.a"
)
