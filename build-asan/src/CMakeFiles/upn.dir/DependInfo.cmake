
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compute/machine.cpp" "src/CMakeFiles/upn.dir/compute/machine.cpp.o" "gcc" "src/CMakeFiles/upn.dir/compute/machine.cpp.o.d"
  "/root/repo/src/compute/trace.cpp" "src/CMakeFiles/upn.dir/compute/trace.cpp.o" "gcc" "src/CMakeFiles/upn.dir/compute/trace.cpp.o.d"
  "/root/repo/src/core/complete_sim.cpp" "src/CMakeFiles/upn.dir/core/complete_sim.cpp.o" "gcc" "src/CMakeFiles/upn.dir/core/complete_sim.cpp.o.d"
  "/root/repo/src/core/embedding.cpp" "src/CMakeFiles/upn.dir/core/embedding.cpp.o" "gcc" "src/CMakeFiles/upn.dir/core/embedding.cpp.o.d"
  "/root/repo/src/core/embedding_metrics.cpp" "src/CMakeFiles/upn.dir/core/embedding_metrics.cpp.o" "gcc" "src/CMakeFiles/upn.dir/core/embedding_metrics.cpp.o.d"
  "/root/repo/src/core/fault_tolerant_sim.cpp" "src/CMakeFiles/upn.dir/core/fault_tolerant_sim.cpp.o" "gcc" "src/CMakeFiles/upn.dir/core/fault_tolerant_sim.cpp.o.d"
  "/root/repo/src/core/galil_paul.cpp" "src/CMakeFiles/upn.dir/core/galil_paul.cpp.o" "gcc" "src/CMakeFiles/upn.dir/core/galil_paul.cpp.o.d"
  "/root/repo/src/core/offline_universal.cpp" "src/CMakeFiles/upn.dir/core/offline_universal.cpp.o" "gcc" "src/CMakeFiles/upn.dir/core/offline_universal.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/upn.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/upn.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/schedule_protocol.cpp" "src/CMakeFiles/upn.dir/core/schedule_protocol.cpp.o" "gcc" "src/CMakeFiles/upn.dir/core/schedule_protocol.cpp.o.d"
  "/root/repo/src/core/scheduled_universal.cpp" "src/CMakeFiles/upn.dir/core/scheduled_universal.cpp.o" "gcc" "src/CMakeFiles/upn.dir/core/scheduled_universal.cpp.o.d"
  "/root/repo/src/core/slowdown.cpp" "src/CMakeFiles/upn.dir/core/slowdown.cpp.o" "gcc" "src/CMakeFiles/upn.dir/core/slowdown.cpp.o.d"
  "/root/repo/src/core/universal_sim.cpp" "src/CMakeFiles/upn.dir/core/universal_sim.cpp.o" "gcc" "src/CMakeFiles/upn.dir/core/universal_sim.cpp.o.d"
  "/root/repo/src/fault/fault_plan.cpp" "src/CMakeFiles/upn.dir/fault/fault_plan.cpp.o" "gcc" "src/CMakeFiles/upn.dir/fault/fault_plan.cpp.o.d"
  "/root/repo/src/fault/surgery.cpp" "src/CMakeFiles/upn.dir/fault/surgery.cpp.o" "gcc" "src/CMakeFiles/upn.dir/fault/surgery.cpp.o.d"
  "/root/repo/src/lowerbound/bandwidth.cpp" "src/CMakeFiles/upn.dir/lowerbound/bandwidth.cpp.o" "gcc" "src/CMakeFiles/upn.dir/lowerbound/bandwidth.cpp.o.d"
  "/root/repo/src/lowerbound/counting.cpp" "src/CMakeFiles/upn.dir/lowerbound/counting.cpp.o" "gcc" "src/CMakeFiles/upn.dir/lowerbound/counting.cpp.o.d"
  "/root/repo/src/lowerbound/dependency_graph.cpp" "src/CMakeFiles/upn.dir/lowerbound/dependency_graph.cpp.o" "gcc" "src/CMakeFiles/upn.dir/lowerbound/dependency_graph.cpp.o.d"
  "/root/repo/src/lowerbound/dependency_tree.cpp" "src/CMakeFiles/upn.dir/lowerbound/dependency_tree.cpp.o" "gcc" "src/CMakeFiles/upn.dir/lowerbound/dependency_tree.cpp.o.d"
  "/root/repo/src/lowerbound/expansion.cpp" "src/CMakeFiles/upn.dir/lowerbound/expansion.cpp.o" "gcc" "src/CMakeFiles/upn.dir/lowerbound/expansion.cpp.o.d"
  "/root/repo/src/lowerbound/fragment_census.cpp" "src/CMakeFiles/upn.dir/lowerbound/fragment_census.cpp.o" "gcc" "src/CMakeFiles/upn.dir/lowerbound/fragment_census.cpp.o.d"
  "/root/repo/src/lowerbound/lemma_verify.cpp" "src/CMakeFiles/upn.dir/lowerbound/lemma_verify.cpp.o" "gcc" "src/CMakeFiles/upn.dir/lowerbound/lemma_verify.cpp.o.d"
  "/root/repo/src/lowerbound/main_lemma.cpp" "src/CMakeFiles/upn.dir/lowerbound/main_lemma.cpp.o" "gcc" "src/CMakeFiles/upn.dir/lowerbound/main_lemma.cpp.o.d"
  "/root/repo/src/lowerbound/spreading.cpp" "src/CMakeFiles/upn.dir/lowerbound/spreading.cpp.o" "gcc" "src/CMakeFiles/upn.dir/lowerbound/spreading.cpp.o.d"
  "/root/repo/src/lowerbound/tradeoff.cpp" "src/CMakeFiles/upn.dir/lowerbound/tradeoff.cpp.o" "gcc" "src/CMakeFiles/upn.dir/lowerbound/tradeoff.cpp.o.d"
  "/root/repo/src/pebble/fragment.cpp" "src/CMakeFiles/upn.dir/pebble/fragment.cpp.o" "gcc" "src/CMakeFiles/upn.dir/pebble/fragment.cpp.o.d"
  "/root/repo/src/pebble/io.cpp" "src/CMakeFiles/upn.dir/pebble/io.cpp.o" "gcc" "src/CMakeFiles/upn.dir/pebble/io.cpp.o.d"
  "/root/repo/src/pebble/metrics.cpp" "src/CMakeFiles/upn.dir/pebble/metrics.cpp.o" "gcc" "src/CMakeFiles/upn.dir/pebble/metrics.cpp.o.d"
  "/root/repo/src/pebble/protocol.cpp" "src/CMakeFiles/upn.dir/pebble/protocol.cpp.o" "gcc" "src/CMakeFiles/upn.dir/pebble/protocol.cpp.o.d"
  "/root/repo/src/pebble/stats.cpp" "src/CMakeFiles/upn.dir/pebble/stats.cpp.o" "gcc" "src/CMakeFiles/upn.dir/pebble/stats.cpp.o.d"
  "/root/repo/src/pebble/validator.cpp" "src/CMakeFiles/upn.dir/pebble/validator.cpp.o" "gcc" "src/CMakeFiles/upn.dir/pebble/validator.cpp.o.d"
  "/root/repo/src/routing/adversarial.cpp" "src/CMakeFiles/upn.dir/routing/adversarial.cpp.o" "gcc" "src/CMakeFiles/upn.dir/routing/adversarial.cpp.o.d"
  "/root/repo/src/routing/benes.cpp" "src/CMakeFiles/upn.dir/routing/benes.cpp.o" "gcc" "src/CMakeFiles/upn.dir/routing/benes.cpp.o.d"
  "/root/repo/src/routing/bitfix.cpp" "src/CMakeFiles/upn.dir/routing/bitfix.cpp.o" "gcc" "src/CMakeFiles/upn.dir/routing/bitfix.cpp.o.d"
  "/root/repo/src/routing/decompose.cpp" "src/CMakeFiles/upn.dir/routing/decompose.cpp.o" "gcc" "src/CMakeFiles/upn.dir/routing/decompose.cpp.o.d"
  "/root/repo/src/routing/hh_problem.cpp" "src/CMakeFiles/upn.dir/routing/hh_problem.cpp.o" "gcc" "src/CMakeFiles/upn.dir/routing/hh_problem.cpp.o.d"
  "/root/repo/src/routing/matching.cpp" "src/CMakeFiles/upn.dir/routing/matching.cpp.o" "gcc" "src/CMakeFiles/upn.dir/routing/matching.cpp.o.d"
  "/root/repo/src/routing/offline_butterfly.cpp" "src/CMakeFiles/upn.dir/routing/offline_butterfly.cpp.o" "gcc" "src/CMakeFiles/upn.dir/routing/offline_butterfly.cpp.o.d"
  "/root/repo/src/routing/path_schedule.cpp" "src/CMakeFiles/upn.dir/routing/path_schedule.cpp.o" "gcc" "src/CMakeFiles/upn.dir/routing/path_schedule.cpp.o.d"
  "/root/repo/src/routing/policies.cpp" "src/CMakeFiles/upn.dir/routing/policies.cpp.o" "gcc" "src/CMakeFiles/upn.dir/routing/policies.cpp.o.d"
  "/root/repo/src/routing/router.cpp" "src/CMakeFiles/upn.dir/routing/router.cpp.o" "gcc" "src/CMakeFiles/upn.dir/routing/router.cpp.o.d"
  "/root/repo/src/sorting/bitonic.cpp" "src/CMakeFiles/upn.dir/sorting/bitonic.cpp.o" "gcc" "src/CMakeFiles/upn.dir/sorting/bitonic.cpp.o.d"
  "/root/repo/src/sorting/columnsort.cpp" "src/CMakeFiles/upn.dir/sorting/columnsort.cpp.o" "gcc" "src/CMakeFiles/upn.dir/sorting/columnsort.cpp.o.d"
  "/root/repo/src/sorting/comparator_network.cpp" "src/CMakeFiles/upn.dir/sorting/comparator_network.cpp.o" "gcc" "src/CMakeFiles/upn.dir/sorting/comparator_network.cpp.o.d"
  "/root/repo/src/sorting/odd_even_merge.cpp" "src/CMakeFiles/upn.dir/sorting/odd_even_merge.cpp.o" "gcc" "src/CMakeFiles/upn.dir/sorting/odd_even_merge.cpp.o.d"
  "/root/repo/src/sorting/oets.cpp" "src/CMakeFiles/upn.dir/sorting/oets.cpp.o" "gcc" "src/CMakeFiles/upn.dir/sorting/oets.cpp.o.d"
  "/root/repo/src/sorting/sort_route.cpp" "src/CMakeFiles/upn.dir/sorting/sort_route.cpp.o" "gcc" "src/CMakeFiles/upn.dir/sorting/sort_route.cpp.o.d"
  "/root/repo/src/topology/builders.cpp" "src/CMakeFiles/upn.dir/topology/builders.cpp.o" "gcc" "src/CMakeFiles/upn.dir/topology/builders.cpp.o.d"
  "/root/repo/src/topology/butterfly.cpp" "src/CMakeFiles/upn.dir/topology/butterfly.cpp.o" "gcc" "src/CMakeFiles/upn.dir/topology/butterfly.cpp.o.d"
  "/root/repo/src/topology/ccc.cpp" "src/CMakeFiles/upn.dir/topology/ccc.cpp.o" "gcc" "src/CMakeFiles/upn.dir/topology/ccc.cpp.o.d"
  "/root/repo/src/topology/debruijn.cpp" "src/CMakeFiles/upn.dir/topology/debruijn.cpp.o" "gcc" "src/CMakeFiles/upn.dir/topology/debruijn.cpp.o.d"
  "/root/repo/src/topology/dot.cpp" "src/CMakeFiles/upn.dir/topology/dot.cpp.o" "gcc" "src/CMakeFiles/upn.dir/topology/dot.cpp.o.d"
  "/root/repo/src/topology/eulerian.cpp" "src/CMakeFiles/upn.dir/topology/eulerian.cpp.o" "gcc" "src/CMakeFiles/upn.dir/topology/eulerian.cpp.o.d"
  "/root/repo/src/topology/expander.cpp" "src/CMakeFiles/upn.dir/topology/expander.cpp.o" "gcc" "src/CMakeFiles/upn.dir/topology/expander.cpp.o.d"
  "/root/repo/src/topology/g0.cpp" "src/CMakeFiles/upn.dir/topology/g0.cpp.o" "gcc" "src/CMakeFiles/upn.dir/topology/g0.cpp.o.d"
  "/root/repo/src/topology/graph.cpp" "src/CMakeFiles/upn.dir/topology/graph.cpp.o" "gcc" "src/CMakeFiles/upn.dir/topology/graph.cpp.o.d"
  "/root/repo/src/topology/hypercube.cpp" "src/CMakeFiles/upn.dir/topology/hypercube.cpp.o" "gcc" "src/CMakeFiles/upn.dir/topology/hypercube.cpp.o.d"
  "/root/repo/src/topology/kautz.cpp" "src/CMakeFiles/upn.dir/topology/kautz.cpp.o" "gcc" "src/CMakeFiles/upn.dir/topology/kautz.cpp.o.d"
  "/root/repo/src/topology/mesh.cpp" "src/CMakeFiles/upn.dir/topology/mesh.cpp.o" "gcc" "src/CMakeFiles/upn.dir/topology/mesh.cpp.o.d"
  "/root/repo/src/topology/mesh_of_trees.cpp" "src/CMakeFiles/upn.dir/topology/mesh_of_trees.cpp.o" "gcc" "src/CMakeFiles/upn.dir/topology/mesh_of_trees.cpp.o.d"
  "/root/repo/src/topology/multitorus.cpp" "src/CMakeFiles/upn.dir/topology/multitorus.cpp.o" "gcc" "src/CMakeFiles/upn.dir/topology/multitorus.cpp.o.d"
  "/root/repo/src/topology/parse.cpp" "src/CMakeFiles/upn.dir/topology/parse.cpp.o" "gcc" "src/CMakeFiles/upn.dir/topology/parse.cpp.o.d"
  "/root/repo/src/topology/properties.cpp" "src/CMakeFiles/upn.dir/topology/properties.cpp.o" "gcc" "src/CMakeFiles/upn.dir/topology/properties.cpp.o.d"
  "/root/repo/src/topology/random_regular.cpp" "src/CMakeFiles/upn.dir/topology/random_regular.cpp.o" "gcc" "src/CMakeFiles/upn.dir/topology/random_regular.cpp.o.d"
  "/root/repo/src/topology/shuffle_exchange.cpp" "src/CMakeFiles/upn.dir/topology/shuffle_exchange.cpp.o" "gcc" "src/CMakeFiles/upn.dir/topology/shuffle_exchange.cpp.o.d"
  "/root/repo/src/topology/torus.cpp" "src/CMakeFiles/upn.dir/topology/torus.cpp.o" "gcc" "src/CMakeFiles/upn.dir/topology/torus.cpp.o.d"
  "/root/repo/src/topology/torus3d.cpp" "src/CMakeFiles/upn.dir/topology/torus3d.cpp.o" "gcc" "src/CMakeFiles/upn.dir/topology/torus3d.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/upn.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/upn.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/math.cpp" "src/CMakeFiles/upn.dir/util/math.cpp.o" "gcc" "src/CMakeFiles/upn.dir/util/math.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/upn.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/upn.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/upn.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/upn.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
