// bench_compare: the benchmark regression gate for the data-oriented router
// engine (docs/ROUTER_ENGINE.md).
//
//   bench_compare --baseline OLD.json --current NEW.json
//                 [--min-speedup X] [--section PREFIX]...
//
// Both files are harness-emitted BENCH_*.json artifacts (bench/harness.cpp
// writes one result object per line with "name" and "median_ms" on the same
// line; this reader depends on exactly that emitter).  For every gated
// section -- those whose name starts with any --section prefix, or all
// sections when none is given -- the tool computes
//
//     speedup = baseline_median_ms / current_median_ms
//
// and exits 1 if any gated section falls below --min-speedup (default 2.0),
// or if a gated baseline section is missing from the current run.  CI runs
// this after bench-smoke with the committed pre-rewrite artifact in
// bench/baselines/ as OLD, so the engine rewrite's speedup is a ratchet: a
// change that gives back more than half the win fails the build.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace upn::tools {
namespace {

struct Section {
  std::string name;
  double median_ms = 0.0;
};

// Extract the value of a `"key": "string"` pair from a result line.
bool find_string_field(const std::string& line, const std::string& key,
                       std::string& out) {
  const std::string needle = "\"" + key + "\": \"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  const std::size_t begin = at + needle.size();
  const std::size_t end = line.find('"', begin);
  if (end == std::string::npos) return false;
  out = line.substr(begin, end - begin);
  return true;
}

// Extract the value of a `"key": number` pair from a result line.
bool find_number_field(const std::string& line, const std::string& key,
                       double& out) {
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  try {
    out = std::stod(line.substr(at + needle.size()));
  } catch (...) {
    return false;
  }
  return true;
}

// Parse every result section from a harness BENCH_*.json artifact.  The
// harness emits each result object on a single line carrying both "name"
// and "median_ms"; metric lines carry "name" but never "median_ms", so the
// pair of probes below selects exactly the result lines.
std::vector<Section> read_sections(const std::string& path, std::string& error) {
  std::vector<Section> sections;
  std::ifstream in(path);
  if (!in) {
    error = "cannot open " + path;
    return sections;
  }
  std::string line;
  while (std::getline(in, line)) {
    Section section;
    if (!find_string_field(line, "name", section.name)) continue;
    if (!find_number_field(line, "median_ms", section.median_ms)) continue;
    if (section.median_ms <= 0.0) {
      error = path + ": section '" + section.name + "' has non-positive median";
      return sections;
    }
    sections.push_back(std::move(section));
  }
  if (sections.empty()) error = path + ": no result sections found";
  return sections;
}

const Section* find(const std::vector<Section>& sections, const std::string& name) {
  for (const Section& s : sections) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

bool gated(const std::string& name, const std::vector<std::string>& prefixes) {
  if (prefixes.empty()) return true;
  for (const std::string& prefix : prefixes) {
    if (name.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

int usage(int code) {
  std::cerr << "usage: bench_compare --baseline OLD.json --current NEW.json\n"
               "                     [--min-speedup X] [--section PREFIX]...\n";
  return code;
}

int run(int argc, char** argv) {
  std::string baseline_path;
  std::string current_path;
  double min_speedup = 2.0;
  std::vector<std::string> prefixes;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--baseline") {
      const char* v = value();
      if (v == nullptr) return usage(2);
      baseline_path = v;
    } else if (arg == "--current") {
      const char* v = value();
      if (v == nullptr) return usage(2);
      current_path = v;
    } else if (arg == "--min-speedup") {
      const char* v = value();
      if (v == nullptr) return usage(2);
      try {
        min_speedup = std::stod(v);
      } catch (...) {
        return usage(2);
      }
    } else if (arg == "--section") {
      const char* v = value();
      if (v == nullptr) return usage(2);
      prefixes.emplace_back(v);
    } else if (arg == "--help" || arg == "-h") {
      return usage(0);
    } else {
      std::cerr << "bench_compare: unknown argument " << arg << "\n";
      return usage(2);
    }
  }
  if (baseline_path.empty() || current_path.empty()) return usage(2);

  std::string error;
  const std::vector<Section> baseline = read_sections(baseline_path, error);
  if (!error.empty()) {
    std::cerr << "bench_compare: " << error << "\n";
    return 2;
  }
  const std::vector<Section> current = read_sections(current_path, error);
  if (!error.empty()) {
    std::cerr << "bench_compare: " << error << "\n";
    return 2;
  }

  int failures = 0;
  int compared = 0;
  std::printf("%-36s %12s %12s %9s\n", "section", "baseline_ms", "current_ms",
              "speedup");
  for (const Section& old : baseline) {
    if (!gated(old.name, prefixes)) continue;
    const Section* now = find(current, old.name);
    if (now == nullptr) {
      std::printf("%-36s %12.5f %12s %9s  MISSING\n", old.name.c_str(),
                  old.median_ms, "-", "-");
      ++failures;
      continue;
    }
    ++compared;
    const double speedup = old.median_ms / now->median_ms;
    const bool ok = speedup >= min_speedup;
    std::printf("%-36s %12.5f %12.5f %8.2fx%s\n", old.name.c_str(), old.median_ms,
                now->median_ms, speedup, ok ? "" : "  REGRESSION");
    if (!ok) ++failures;
  }
  if (compared == 0 && failures == 0) {
    std::cerr << "bench_compare: no gated sections matched; check --section prefixes\n";
    return 2;
  }
  if (failures > 0) {
    std::cerr << "bench_compare: " << failures << " section(s) below " << min_speedup
              << "x vs " << baseline_path << "\n";
    return 1;
  }
  std::cout << "bench_compare: " << compared << " section(s) at or above "
            << min_speedup << "x\n";
  return 0;
}

}  // namespace
}  // namespace upn::tools

int main(int argc, char** argv) { return upn::tools::run(argc, argv); }
