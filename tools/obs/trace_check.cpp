#include "tools/obs/trace_check.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

namespace upn::tools {

namespace {

/// Minimal recursive-descent JSON reader, sufficient for trace-event files.
/// On error, sets `error` and returns false from every parse_* method.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  std::string error;

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return fail(std::string{"expected '"} + c + "'");
  }

  bool peek(char c) {
    skip_ws();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected string");
    ++pos_;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("truncated escape");
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
            pos_ += 4;
            c = '?';  // span names never need non-ASCII; placeholder is fine
            break;
          }
          default: return fail("unknown escape");
        }
      }
      out += c;
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }

  bool parse_number(double& out) {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected number");
    try {
      out = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      return fail("malformed number");
    }
    return true;
  }

  /// Skips any JSON value (used for keys the checker does not interpret).
  bool skip_value() {
    skip_ws();
    if (pos_ >= text_.size()) return fail("truncated value");
    const char c = text_[pos_];
    if (c == '"') {
      std::string ignored;
      return parse_string(ignored);
    }
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++pos_;
      skip_ws();
      if (peek(close)) return consume(close);
      for (;;) {
        if (c == '{') {
          std::string key;
          if (!parse_string(key) || !consume(':')) return false;
        }
        if (!skip_value()) return false;
        if (peek(',')) {
          if (!consume(',')) return false;
          continue;
        }
        return consume(close);
      }
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '-' || c == '+') {
      double ignored = 0;
      return parse_number(ignored);
    }
    // true / false / null
    for (const char* literal : {"true", "false", "null"}) {
      const std::size_t len = std::string{literal}.size();
      if (text_.compare(pos_, len, literal) == 0) {
        pos_ += len;
        return true;
      }
    }
    return fail("unrecognized value");
  }

 private:
  bool fail(std::string why) {
    if (error.empty()) error = std::move(why) + " at offset " + std::to_string(pos_);
    return false;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

/// Parses one event object, validating required fields.
bool parse_event(JsonReader& reader, TraceEvent& event, std::string& error) {
  if (!reader.consume('{')) return false;
  bool have_name = false, have_ph = false, have_ts = false, have_dur = false;
  std::string ph;
  if (!reader.peek('}')) {
    for (;;) {
      std::string key;
      if (!reader.parse_string(key) || !reader.consume(':')) return false;
      if (key == "name") {
        if (!reader.parse_string(event.name)) return false;
        have_name = true;
      } else if (key == "ph") {
        if (!reader.parse_string(ph)) return false;
        have_ph = true;
      } else if (key == "ts" || key == "dur" || key == "pid" || key == "tid") {
        double value = 0;
        if (!reader.parse_number(value)) return false;
        if (key == "ts") {
          event.ts_us = value;
          have_ts = true;
        } else if (key == "dur") {
          event.dur_us = value;
          have_dur = true;
        } else if (key == "pid") {
          event.pid = static_cast<std::uint32_t>(value);
        } else {
          event.tid = static_cast<std::uint32_t>(value);
        }
      } else {
        if (!reader.skip_value()) return false;
      }
      if (reader.peek(',')) {
        if (!reader.consume(',')) return false;
        continue;
      }
      break;
    }
  }
  if (!reader.consume('}')) return false;
  if (!have_name || event.name.empty()) error = "event missing name";
  else if (!have_ph) error = "event missing ph";
  else if (ph != "X") error = "unsupported event phase '" + ph + "' (only \"X\" complete events)";
  else if (!have_ts || event.ts_us < 0) error = "event missing or negative ts";
  else if (!have_dur || event.dur_us < 0) error = "event missing or negative dur";
  return error.empty();
}

}  // namespace

ParsedTrace parse_trace(const std::string& text) {
  ParsedTrace result;
  JsonReader reader{text};
  if (!reader.consume('{')) {
    result.error = "not a JSON object: " + reader.error;
    return result;
  }
  bool saw_events = false;
  if (!reader.peek('}')) {
    for (;;) {
      std::string key;
      if (!reader.parse_string(key) || !reader.consume(':')) {
        result.error = reader.error;
        return result;
      }
      if (key == "traceEvents") {
        saw_events = true;
        if (!reader.consume('[')) {
          result.error = "traceEvents is not an array: " + reader.error;
          return result;
        }
        if (!reader.peek(']')) {
          for (;;) {
            TraceEvent event;
            std::string event_error;
            if (!parse_event(reader, event, event_error)) {
              result.error = !event_error.empty()
                                 ? "event " + std::to_string(result.events.size()) + ": " +
                                       event_error
                                 : reader.error;
              return result;
            }
            result.events.push_back(std::move(event));
            if (reader.peek(',')) {
              if (!reader.consume(',')) {
                result.error = reader.error;
                return result;
              }
              continue;
            }
            break;
          }
        }
        if (!reader.consume(']')) {
          result.error = reader.error;
          return result;
        }
      } else {
        if (!reader.skip_value()) {
          result.error = reader.error;
          return result;
        }
      }
      if (reader.peek(',')) {
        if (!reader.consume(',')) {
          result.error = reader.error;
          return result;
        }
        continue;
      }
      break;
    }
  }
  if (!reader.consume('}')) {
    result.error = reader.error;
    return result;
  }
  if (!reader.at_end()) {
    result.error = "trailing content after the trace object";
    return result;
  }
  if (!saw_events) {
    result.error = "missing traceEvents array";
    return result;
  }
  result.ok = true;
  return result;
}

ParsedTrace parse_trace_file(const std::string& path) {
  std::ifstream file{path};
  if (!file) {
    ParsedTrace result;
    result.error = "cannot read " + path;
    return result;
  }
  std::ostringstream text;
  text << file.rdbuf();
  return parse_trace(text.str());
}

std::vector<PhaseSummary> summarize(const std::vector<TraceEvent>& events) {
  std::map<std::string, PhaseSummary> by_name;
  for (const TraceEvent& event : events) {
    PhaseSummary& phase = by_name[event.name];
    phase.name = event.name;
    ++phase.count;
    phase.total_us += event.dur_us;
    phase.max_us = std::max(phase.max_us, event.dur_us);
  }
  std::vector<PhaseSummary> phases;
  phases.reserve(by_name.size());
  for (auto& [name, phase] : by_name) phases.push_back(std::move(phase));
  std::sort(phases.begin(), phases.end(), [](const PhaseSummary& a, const PhaseSummary& b) {
    return a.total_us != b.total_us ? a.total_us > b.total_us : a.name < b.name;
  });
  return phases;
}

void print_summary(std::ostream& out, const std::vector<PhaseSummary>& phases) {
  std::size_t name_width = 5;
  for (const PhaseSummary& phase : phases) {
    name_width = std::max(name_width, phase.name.size());
  }
  out << std::left << std::setw(static_cast<int>(name_width) + 2) << "phase"
      << std::right << std::setw(10) << "count" << std::setw(14) << "total_ms"
      << std::setw(14) << "mean_us" << std::setw(14) << "max_us" << "\n";
  out << std::fixed << std::setprecision(3);
  for (const PhaseSummary& phase : phases) {
    out << std::left << std::setw(static_cast<int>(name_width) + 2) << phase.name
        << std::right << std::setw(10) << phase.count << std::setw(14)
        << phase.total_us / 1000.0 << std::setw(14)
        << (phase.count == 0 ? 0.0 : phase.total_us / static_cast<double>(phase.count))
        << std::setw(14) << phase.max_us << "\n";
  }
}

}  // namespace upn::tools
