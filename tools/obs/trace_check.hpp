// Chrome trace-event file parsing + validation, shared between the
// trace_report CLI and the test suite.
//
// The parser accepts exactly the subset src/obs/span.cpp emits -- a JSON
// object with a "traceEvents" array of "X" (complete) events -- which is
// also the subset Perfetto and chrome://tracing require, so a file that
// passes check() is loadable by both.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace upn::tools {

/// One parsed "X" event (microseconds, as in the file).
struct TraceEvent {
  std::string name;
  double ts_us = 0;
  double dur_us = 0;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
};

struct ParsedTrace {
  bool ok = false;
  std::string error;  ///< first structural problem found; empty when ok
  std::vector<TraceEvent> events;
};

/// Parses and validates trace-event JSON text.  Rejects files that are not
/// a JSON object, lack "traceEvents", contain non-"X" phases, or have
/// events with missing/negative fields.
[[nodiscard]] ParsedTrace parse_trace(const std::string& text);

/// Reads `path` and runs parse_trace; IO failures surface in `error`.
[[nodiscard]] ParsedTrace parse_trace_file(const std::string& path);

/// Aggregated per-span-name statistics for the report table.
struct PhaseSummary {
  std::string name;
  std::uint64_t count = 0;
  double total_us = 0;
  double max_us = 0;
};

/// Groups events by name, sorted by descending total duration.
[[nodiscard]] std::vector<PhaseSummary> summarize(const std::vector<TraceEvent>& events);

/// Prints the per-phase table (name, count, total ms, mean us, max us).
void print_summary(std::ostream& out, const std::vector<PhaseSummary>& phases);

}  // namespace upn::tools
