// trace_report: summarize or validate Chrome trace-event files produced by
// the obs layer (UPN_TRACE / --trace / obs::start_trace).
//
//   trace_report FILE...            per-phase table for each file
//   trace_report --check FILE...    validate only; exit 1 on the first bad file
//
// --check is the CI gate: bench-smoke emits *.trace.json artifacts and this
// verifies they are structurally loadable by Perfetto / chrome://tracing.
#include <iostream>
#include <string>
#include <vector>

#include "tools/obs/trace_check.hpp"

int main(int argc, char** argv) {
  bool check_only = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check_only = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: trace_report [--check] FILE...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "trace_report: unknown flag " << arg
                << "\nusage: trace_report [--check] FILE...\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: trace_report [--check] FILE...\n";
    return 2;
  }

  for (const std::string& path : paths) {
    const upn::tools::ParsedTrace trace = upn::tools::parse_trace_file(path);
    if (!trace.ok) {
      std::cerr << "trace_report: " << path << ": " << trace.error << "\n";
      return 1;
    }
    if (check_only) {
      std::cout << path << ": OK (" << trace.events.size() << " events)\n";
      continue;
    }
    std::cout << "=== " << path << " (" << trace.events.size() << " events) ===\n";
    upn::tools::print_summary(std::cout, upn::tools::summarize(trace.events));
    std::cout << "\n";
  }
  return 0;
}
