// upn_analyze: shared translation-unit IR for whole-program static analysis.
//
// upn_lint (PR 2) analyzed one file at a time with ad-hoc string scans; the
// passes in this directory need cross-file facts -- the #include graph of
// src/, which header declares which name, where a public function's
// definition lives.  This header defines the one intermediate representation
// every pass consumes:
//
//   * raw lines        -- exactly as on disk (suppression comments live here);
//   * code lines       -- comments and string/char literals blanked out with
//                         lengths preserved, so rules never fire on prose and
//                         columns still line up;
//   * token stream     -- identifiers / numbers / punctuation with line
//                         numbers, for the flow-sensitive rules;
//   * include edges    -- quoted includes with the line they occur on,
//                         resolvable against the unit index;
//   * declaration index-- names a header exports (functions, types, macros,
//                         constants), used by include hygiene and the
//                         contract-coverage audit.
//
// Units are built per file (embarrassingly parallel; the engine fans the
// construction out on upn::ThreadPool) and are immutable afterwards, so
// passes may read them from any thread without synchronization.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace upn::analyze {

/// One file handed to the analyzer: `path` is repo-relative with forward
/// slashes ("src/topology/graph.hpp"), `content` the full text.
struct SourceFile {
  std::string path;
  std::string content;
};

enum class TokenKind : char {
  kIdent = 'i',   ///< identifier or keyword
  kNumber = 'n',  ///< numeric literal (incl. hex floats)
  kPunct = 'p',   ///< one punctuation character
};

struct Token {
  std::string text;
  std::size_t line = 0;  ///< 1-based
  TokenKind kind = TokenKind::kPunct;
};

/// One #include directive.  Only quoted ("...") includes participate in the
/// include graph; system (<...>) includes are recorded for completeness but
/// never resolved.
struct IncludeEdge {
  std::string target;     ///< path between the delimiters, verbatim
  std::size_t line = 0;   ///< 1-based line of the directive
  bool quoted = false;    ///< "..." (true) vs <...> (false)
};

enum class DeclKind : char {
  kFunction = 'f',  ///< free or public member function with a return type
  kType = 't',      ///< class / struct / enum / using alias
  kMacro = 'm',     ///< object- or function-like #define
  kConstant = 'c',  ///< namespace-scope constant / variable declaration
};

/// One exported name.  `kFunction` entries additionally carry what the
/// contract-coverage audit needs: whether the declaration site is also a
/// definition, whether that body contains a contract macro
/// (UPN_REQUIRE/UPN_ENSURE/UPN_INVARIANT) or an `upn-contract-waive(reason)`
/// marker, and how many statements the body holds (trivial accessors are
/// exempt from the audit).
struct Declaration {
  std::string name;
  std::size_t line = 0;
  DeclKind kind = DeclKind::kFunction;
  bool has_body = false;
  bool is_public = true;           ///< namespace scope or `public:` section
  bool has_contract = false;       ///< body contains a UPN_* contract macro
  bool has_waiver = false;         ///< body range carries upn-contract-waive(...)
  std::size_t body_statements = 0; ///< ';' count inside the body
};

/// The per-file IR.  All views are derived from `content` once, at build
/// time; passes never re-parse.
struct Unit {
  std::string path;
  std::string module;  ///< "topology" for src/topology/*, "" outside src/
  bool is_header = false;

  std::vector<std::string> raw;   ///< lines as on disk
  std::vector<std::string> code;  ///< comment/string-stripped, same shape
  std::vector<Token> tokens;
  std::vector<IncludeEdge> includes;
  std::vector<Declaration> decls;
};

/// Splits on '\n'; a trailing newline does not create an empty last line.
[[nodiscard]] std::vector<std::string> split_lines(const std::string& content);

/// The comment/string-stripped view of `lines` (lengths preserved).
[[nodiscard]] std::vector<std::string> code_view(const std::vector<std::string>& lines);

/// True iff `code[pos..]` spells `word` as a whole identifier (allowing an
/// `std::` qualifier but rejecting `othernamespace::word` and `x_word`).
[[nodiscard]] bool word_at(const std::string& code, std::size_t pos, const std::string& word);

/// True iff `word` occurs anywhere in `code` as a whole identifier.
[[nodiscard]] bool contains_word(const std::string& code, const std::string& word);

/// True iff `raw_line` carries a suppression for `rule`.  Two syntaxes, one
/// engine (upn_lint delegates here):
///   upn-lint-allow(<rule>)            bare suppression (PR 2 syntax)
///   upn-analyze-waive(<rule>: <why>)  suppression with a MANDATORY reason;
///                                     an empty reason does not suppress
[[nodiscard]] bool suppressed(const std::string& raw_line, const std::string& rule);

/// The module a repo-relative path belongs to: the full directory path under
/// src/ ("src/routing/x.cpp" -> "routing", "src/routing/online/x.cpp" ->
/// "routing/online" -- nested modules are their own layering units);
/// anything else -> "".
[[nodiscard]] std::string module_of(const std::string& path);

/// Builds the full IR for one file.
[[nodiscard]] Unit build_unit(const std::string& path, const std::string& content);

// ---- IR cache (--ir-cache) ------------------------------------------------
//
// The CI analyze job runs the engine twice (the --diff PR gate, then the
// full tree); the cache lets the second run skip re-parsing every unchanged
// file.  Entries are keyed by a content hash, so a stale directory can never
// resurrect an old parse: a changed file simply misses.  The serialized form
// stores only the derived views that are expensive to rebuild (tokens,
// includes, declaration index); raw/code/module are recomputed from the
// content that is in hand anyway.  Deserialization fails closed -- any
// malformed or version-mismatched entry is ignored and the unit rebuilt.

/// FNV-1a-64 over a version tag, the path, and the content: 16 hex chars,
/// usable directly as the cache file name.
[[nodiscard]] std::string unit_cache_key(const std::string& path, const std::string& content);

/// The cache entry for a built unit (text, line-oriented, versioned).
[[nodiscard]] std::string serialize_unit(const Unit& unit);

/// Rebuilds `out` from a cache entry plus the file's path and content.
/// Returns false (leaving `out` unspecified) when `serialized` is malformed
/// or from another format version.
[[nodiscard]] bool deserialize_unit(const std::string& path, const std::string& content,
                                    const std::string& serialized, Unit& out);

}  // namespace upn::analyze
