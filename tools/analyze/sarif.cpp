#include "tools/analyze/sarif.hpp"

#include <cctype>
#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace upn::analyze {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += hex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string write_sarif(const std::vector<Finding>& findings) {
  const std::vector<RuleInfo>& catalog = rule_catalog();
  std::map<std::string, std::size_t> rule_index;
  for (std::size_t i = 0; i < catalog.size(); ++i) rule_index.emplace(catalog[i].id, i);

  std::string out;
  out += "{\n";
  out += "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [\n    {\n";
  out += "      \"tool\": {\n        \"driver\": {\n";
  out += "          \"name\": \"upn_analyze\",\n";
  out += "          \"informationUri\": \"docs/STATIC_ANALYSIS.md\",\n";
  out += "          \"rules\": [\n";
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    out += "            {\"id\": \"" + json_escape(catalog[i].id) +
           "\", \"shortDescription\": {\"text\": \"" + json_escape(catalog[i].summary) +
           "\"}}";
    out += i + 1 < catalog.size() ? ",\n" : "\n";
  }
  out += "          ]\n        }\n      },\n";
  out += "      \"columnKind\": \"utf16CodeUnits\",\n";
  out += "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    const auto idx = rule_index.find(f.rule);
    out += "        {\"ruleId\": \"" + json_escape(f.rule) + "\"";
    if (idx != rule_index.end()) {
      out += ", \"ruleIndex\": " + std::to_string(idx->second);
    }
    out += ", \"level\": \"error\", \"message\": {\"text\": \"" + json_escape(f.message) +
           "\"}, \"locations\": [{\"physicalLocation\": {\"artifactLocation\": {\"uri\": \"" +
           json_escape(f.file) +
           "\"}, \"region\": {\"startLine\": " + std::to_string(f.line >= 1 ? f.line : 1) +
           "}}}]}";
    out += i + 1 < findings.size() ? ",\n" : "\n";
  }
  out += "      ]\n    }\n  ]\n}\n";
  return out;
}

// ---- minimal JSON parser for structural validation ------------------------
//
// Same spirit as tools/obs/trace_check.cpp: a recursive-descent parser over
// exactly the JSON subset the checks need, no external dependency.

namespace {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject } type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue* get(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

  [[nodiscard]] const std::string& error() const { return error_; }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.type = JsonValue::Type::kString;
      return parse_string(out.string);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out.type = JsonValue::Type::kBool;
      out.boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out.type = JsonValue::Type::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      out.type = JsonValue::Type::kNull;
      pos_ += 4;
      return true;
    }
    return parse_number(out);
  }

  bool parse_string(std::string& out) {
    if (text_[pos_] != '"') return fail("expected '\"'");
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return fail("dangling escape");
        const char e = text_[pos_];
        if (e == 'n') {
          out += '\n';
        } else if (e == 't') {
          out += '\t';
        } else if (e == 'r') {
          out += '\r';
        } else if (e == 'u') {
          if (pos_ + 4 >= text_.size()) return fail("short \\u escape");
          out += '?';  // structural validation does not need the code point
          pos_ += 4;
        } else {
          out += e;
        }
      } else {
        out += text_[pos_];
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;
    return true;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      if (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) digits = true;
      ++pos_;
    }
    if (!digits) return fail("expected a value");
    out.type = JsonValue::Type::kNumber;
    out.number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }

  bool parse_array(JsonValue& out) {
    out.type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue v;
      skip_ws();
      if (!parse_value(v)) return false;
      out.array.push_back(std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue& out) {
    out.type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !parse_string(key)) {
        return fail("expected object key");
      }
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      out.object.emplace(std::move(key), std::move(v));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

std::string validate_sarif(const std::string& text) {
  JsonValue root;
  JsonParser parser{text};
  if (!parser.parse(root)) return "not valid JSON: " + parser.error();
  if (root.type != JsonValue::Type::kObject) return "top level is not an object";

  const JsonValue* version = root.get("version");
  if (version == nullptr || version->type != JsonValue::Type::kString ||
      version->string != "2.1.0") {
    return "missing or wrong \"version\" (must be \"2.1.0\")";
  }
  const JsonValue* runs = root.get("runs");
  if (runs == nullptr || runs->type != JsonValue::Type::kArray || runs->array.empty()) {
    return "missing or empty \"runs\" array";
  }
  for (const JsonValue& run : runs->array) {
    if (run.type != JsonValue::Type::kObject) return "run is not an object";
    const JsonValue* tool = run.get("tool");
    const JsonValue* driver = tool == nullptr ? nullptr : tool->get("driver");
    const JsonValue* name = driver == nullptr ? nullptr : driver->get("name");
    if (name == nullptr || name->type != JsonValue::Type::kString || name->string.empty()) {
      return "run lacks tool.driver.name";
    }
    std::map<std::string, std::size_t> rule_ids;
    const JsonValue* rules = driver->get("rules");
    if (rules != nullptr) {
      if (rules->type != JsonValue::Type::kArray) return "tool.driver.rules is not an array";
      for (std::size_t i = 0; i < rules->array.size(); ++i) {
        const JsonValue* id = rules->array[i].get("id");
        if (id == nullptr || id->type != JsonValue::Type::kString || id->string.empty()) {
          return "rule " + std::to_string(i) + " lacks an id";
        }
        if (!rule_ids.emplace(id->string, i).second) {
          return "duplicate rule id '" + id->string + "'";
        }
      }
    }
    const JsonValue* results = run.get("results");
    if (results == nullptr || results->type != JsonValue::Type::kArray) {
      return "run lacks a \"results\" array";
    }
    for (const JsonValue& result : results->array) {
      const JsonValue* rule_id = result.get("ruleId");
      if (rule_id == nullptr || rule_id->type != JsonValue::Type::kString) {
        return "result lacks ruleId";
      }
      const JsonValue* rule_index = result.get("ruleIndex");
      if (rule_index != nullptr) {
        const auto it = rule_ids.find(rule_id->string);
        if (it == rule_ids.end() ||
            static_cast<double>(it->second) != rule_index->number) {
          return "result ruleIndex disagrees with the rules array for '" +
                 rule_id->string + "'";
        }
      }
      const JsonValue* message = result.get("message");
      const JsonValue* message_text = message == nullptr ? nullptr : message->get("text");
      if (message_text == nullptr || message_text->type != JsonValue::Type::kString) {
        return "result lacks message.text";
      }
      const JsonValue* locations = result.get("locations");
      if (locations == nullptr || locations->type != JsonValue::Type::kArray ||
          locations->array.empty()) {
        return "result lacks locations";
      }
      const JsonValue* phys = locations->array[0].get("physicalLocation");
      const JsonValue* artifact = phys == nullptr ? nullptr : phys->get("artifactLocation");
      const JsonValue* uri = artifact == nullptr ? nullptr : artifact->get("uri");
      if (uri == nullptr || uri->type != JsonValue::Type::kString || uri->string.empty()) {
        return "result lacks physicalLocation.artifactLocation.uri";
      }
      const JsonValue* region = phys->get("region");
      const JsonValue* start = region == nullptr ? nullptr : region->get("startLine");
      if (start == nullptr || start->type != JsonValue::Type::kNumber ||
          start->number < 1) {
        return "result region.startLine must be >= 1";
      }
    }
  }
  return "";
}

}  // namespace upn::analyze
