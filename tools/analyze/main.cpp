// upn_analyze CLI: whole-program static analysis with layering DAG
// enforcement, contract-coverage audit (baseline-ratcheted), flow-sensitive
// token rules, include hygiene, and SARIF 2.1.0 output for CI annotation.
//
// Usage:
//   upn_analyze [options] PATH...
//     --root DIR        repo root; reported paths are relative to it (default .)
//     --layers FILE     module DAG (default ROOT/docs/ARCHITECTURE.layers if present)
//     --baseline FILE   contract baseline (default ROOT/tools/analyze/contracts.baseline)
//     --sarif FILE      also write a SARIF 2.1.0 report to FILE
//     --jobs N          analysis thread count (default: UPN_THREADS, else 1)
//     --exclude SUBSTR  skip paths containing SUBSTR (repeatable; defaults
//                       additionally skip fixtures-bad/, fixtures-clean/, build*/)
//     --write-baseline  rewrite the baseline at the current coverage level
//
// Exit codes: 0 clean, 1 findings, 2 usage / IO error.  The text report and
// the SARIF document are byte-identical at every --jobs value.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "tools/analyze/engine.hpp"
#include "tools/analyze/sarif.hpp"

namespace {

int usage() {
  std::cerr << "usage: upn_analyze [--root DIR] [--layers FILE] [--baseline FILE]\n"
               "                   [--sarif FILE] [--jobs N] [--exclude SUBSTR]...\n"
               "                   [--write-baseline] PATH...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  upn::analyze::TreeOptions options;
  std::string sarif_path;
  bool write_baseline = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--help" || arg == "-h") return usage();
    if (arg == "--root") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.root = v;
    } else if (arg == "--layers") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.layers_file = v;
    } else if (arg == "--baseline") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.baseline_file = v;
    } else if (arg == "--sarif") {
      const char* v = value();
      if (v == nullptr) return usage();
      sarif_path = v;
    } else if (arg == "--jobs") {
      const char* v = value();
      if (v == nullptr) return usage();
      const long jobs = std::strtol(v, nullptr, 10);
      if (jobs < 1) return usage();
      options.jobs = static_cast<unsigned>(jobs);
    } else if (arg == "--exclude") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.excludes.emplace_back(v);
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      options.paths.push_back(arg);
    }
  }
  if (options.paths.empty()) return usage();

  upn::analyze::Input input;
  std::string error;
  if (!upn::analyze::collect_tree(options, input, error)) {
    std::cerr << "upn_analyze: " << error << "\n";
    return 2;
  }

  const upn::analyze::Report report = upn::analyze::analyze(input);

  if (write_baseline) {
    // The new frozen set is everything currently uncontracted, whether or
    // not the old baseline covered it.
    std::vector<upn::analyze::Finding> uncontracted = report.baselined;
    for (const upn::analyze::Finding& f : report.findings) {
      if (f.rule == "contract-coverage") uncontracted.push_back(f);
    }
    std::sort(uncontracted.begin(), uncontracted.end(), upn::analyze::finding_less);
    const std::string path = options.baseline_file.empty()
                                 ? options.root + "/tools/analyze/contracts.baseline"
                                 : options.baseline_file;
    std::ofstream out{path, std::ios::binary};
    if (!out) {
      std::cerr << "upn_analyze: cannot write baseline " << path << "\n";
      return 2;
    }
    out << upn::analyze::render_baseline(uncontracted);
    std::cerr << "upn_analyze: baseline rewritten: " << path << "\n";
  }

  if (!sarif_path.empty()) {
    std::ofstream out{sarif_path, std::ios::binary};
    if (!out) {
      std::cerr << "upn_analyze: cannot write SARIF report " << sarif_path << "\n";
      return 2;
    }
    out << upn::analyze::write_sarif(report.findings);
  }

  std::cout << report.render_text();
  return report.findings.empty() ? 0 : 1;
}
