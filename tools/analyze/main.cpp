// upn_analyze CLI: whole-program static analysis with layering DAG
// enforcement, contract-coverage audit (baseline-ratcheted), flow-sensitive
// token rules, concurrency-safety and determinism-taint passes, the
// hot-path performance pass (baseline-ratcheted), include hygiene, and
// SARIF 2.1.0 output for CI annotation.
//
// Usage:
//   upn_analyze [options] PATH...
//     --root DIR        repo root; reported paths are relative to it (default .)
//     --layers FILE     module DAG (default ROOT/docs/ARCHITECTURE.layers if present)
//     --baseline FILE   contract baseline (default ROOT/tools/analyze/contracts.baseline)
//     --hotpath-baseline FILE
//                       hot-path baseline (default ROOT/tools/analyze/hotpath.baseline)
//     --interproc-baseline FILE
//                       interprocedural baseline (default
//                       ROOT/tools/analyze/interproc.baseline)
//     --ir-cache DIR    cache parsed TU IR in DIR, keyed by content hash, so
//                       back-to-back runs (the CI --diff gate + full run)
//                       parse each unchanged file once
//     --dump-callgraph  print the whole-program call graph before the report
//     --sarif FILE      also write a SARIF 2.1.0 report to FILE
//     --jobs N          analysis thread count (default: UPN_THREADS, else 1)
//     --exclude SUBSTR  skip paths containing SUBSTR (repeatable; defaults
//                       additionally skip fixtures-bad/, fixtures-clean/, build*/)
//     --diff GIT_REF    report only findings in files `git diff --name-only
//                       GIT_REF` lists (the fast PR gate; analysis itself
//                       still runs over every PATH so cross-file passes see
//                       the whole tree)
//     --write-baseline  rewrite all three baselines at the current debt level
//
// Exit codes: 0 clean, 1 findings, 2 usage / IO error.  The text report and
// the SARIF document are byte-identical at every --jobs value.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "tools/analyze/engine.hpp"
#include "tools/analyze/sarif.hpp"

namespace {

int usage() {
  std::cerr << "usage: upn_analyze [--root DIR] [--layers FILE] [--baseline FILE]\n"
               "                   [--hotpath-baseline FILE] [--interproc-baseline FILE]\n"
               "                   [--ir-cache DIR] [--dump-callgraph] [--sarif FILE]\n"
               "                   [--jobs N] [--exclude SUBSTR]... [--diff GIT_REF]\n"
               "                   [--write-baseline] PATH...\n";
  return 2;
}

/// The files `git diff --name-only <ref>` reports, repo-relative.  Returns
/// false (with `error` set) when git itself fails.
bool changed_files(const std::string& root, const std::string& ref,
                   std::set<std::string>& files, std::string& error) {
  const std::string command =
      "git -C '" + root + "' diff --name-only '" + ref + "' -- 2>/dev/null";
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    error = "cannot run git diff";
    return false;
  }
  std::string line;
  for (int c = std::fgetc(pipe); c != EOF; c = std::fgetc(pipe)) {
    if (c == '\n') {
      if (!line.empty()) files.insert(line);
      line.clear();
    } else {
      line += static_cast<char>(c);
    }
  }
  if (!line.empty()) files.insert(line);
  if (pclose(pipe) != 0) {
    error = "git diff --name-only '" + ref + "' failed (bad ref or not a git repo?)";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  upn::analyze::TreeOptions options;
  std::string sarif_path;
  std::string diff_ref;
  bool write_baseline = false;
  bool dump_callgraph = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--help" || arg == "-h") return usage();
    if (arg == "--root") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.root = v;
    } else if (arg == "--layers") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.layers_file = v;
    } else if (arg == "--baseline") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.baseline_file = v;
    } else if (arg == "--hotpath-baseline") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.hotpath_file = v;
    } else if (arg == "--interproc-baseline") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.interproc_file = v;
    } else if (arg == "--ir-cache") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.ir_cache_dir = v;
    } else if (arg == "--dump-callgraph") {
      dump_callgraph = true;
    } else if (arg == "--sarif") {
      const char* v = value();
      if (v == nullptr) return usage();
      sarif_path = v;
    } else if (arg == "--jobs") {
      const char* v = value();
      if (v == nullptr) return usage();
      const long jobs = std::strtol(v, nullptr, 10);
      if (jobs < 1) return usage();
      options.jobs = static_cast<unsigned>(jobs);
    } else if (arg == "--exclude") {
      const char* v = value();
      if (v == nullptr) return usage();
      options.excludes.emplace_back(v);
    } else if (arg == "--diff") {
      const char* v = value();
      if (v == nullptr) return usage();
      diff_ref = v;
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      options.paths.push_back(arg);
    }
  }
  if (options.paths.empty()) return usage();

  upn::analyze::Input input;
  std::string error;
  if (!upn::analyze::collect_tree(options, input, error)) {
    std::cerr << "upn_analyze: " << error << "\n";
    return 2;
  }
  input.want_callgraph = dump_callgraph;

  upn::analyze::Report report = upn::analyze::analyze(input);

  if (write_baseline) {
    // The new frozen sets are everything currently flagged, whether or not
    // the old baselines covered it.
    std::vector<upn::analyze::Finding> uncontracted;
    std::vector<upn::analyze::Finding> hotpath_debt;
    std::vector<upn::analyze::Finding> interproc_debt;
    for (const std::vector<upn::analyze::Finding>* bucket :
         {&report.baselined, &report.findings}) {
      for (const upn::analyze::Finding& f : *bucket) {
        if (f.rule == "contract-coverage") uncontracted.push_back(f);
        if (upn::analyze::is_interproc_rule(f.rule)) {
          interproc_debt.push_back(f);
        } else if (f.rule.compare(0, 8, "hotpath-") == 0) {
          hotpath_debt.push_back(f);
        }
      }
    }
    std::sort(uncontracted.begin(), uncontracted.end(), upn::analyze::finding_less);
    std::sort(hotpath_debt.begin(), hotpath_debt.end(), upn::analyze::finding_less);
    std::sort(interproc_debt.begin(), interproc_debt.end(), upn::analyze::finding_less);
    const std::string contracts_path =
        options.baseline_file.empty() ? options.root + "/tools/analyze/contracts.baseline"
                                      : options.baseline_file;
    const std::string hotpath_path =
        options.hotpath_file.empty() ? options.root + "/tools/analyze/hotpath.baseline"
                                     : options.hotpath_file;
    const std::string interproc_path =
        options.interproc_file.empty() ? options.root + "/tools/analyze/interproc.baseline"
                                       : options.interproc_file;
    std::ofstream contracts_out{contracts_path, std::ios::binary};
    std::ofstream hotpath_out{hotpath_path, std::ios::binary};
    std::ofstream interproc_out{interproc_path, std::ios::binary};
    if (!contracts_out || !hotpath_out || !interproc_out) {
      std::cerr << "upn_analyze: cannot write baseline " << contracts_path << " / "
                << hotpath_path << " / " << interproc_path << "\n";
      return 2;
    }
    contracts_out << upn::analyze::render_baseline(uncontracted);
    hotpath_out << upn::analyze::render_hotpath_baseline(hotpath_debt);
    interproc_out << upn::analyze::render_interproc_baseline(interproc_debt);
    std::cerr << "upn_analyze: baselines rewritten: " << contracts_path << ", "
              << hotpath_path << ", " << interproc_path << "\n";
  }

  if (!diff_ref.empty()) {
    std::set<std::string> changed;
    if (!changed_files(options.root, diff_ref, changed, error)) {
      std::cerr << "upn_analyze: " << error << "\n";
      return 2;
    }
    upn::analyze::restrict_to_files(report, changed);
    std::cerr << "upn_analyze: --diff " << diff_ref << " restricted reporting to "
              << changed.size() << " changed files\n";
  }

  if (!sarif_path.empty()) {
    std::ofstream out{sarif_path, std::ios::binary};
    if (!out) {
      std::cerr << "upn_analyze: cannot write SARIF report " << sarif_path << "\n";
      return 2;
    }
    out << upn::analyze::write_sarif(report.findings);
  }

  if (dump_callgraph) std::cout << report.callgraph_dump;
  std::cout << report.render_text();
  return report.findings.empty() ? 0 : 1;
}
