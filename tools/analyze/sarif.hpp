// SARIF 2.1.0 emission for upn_analyze, the format GitHub code scanning
// ingests for PR annotation.  One run, one driver ("upn_analyze"), the full
// rule catalog in tool.driver.rules, and one result per finding referencing
// its rule by index.  Output is fully deterministic: findings are emitted in
// the engine's (file, line, rule, message) order and the writer inserts no
// timestamps or absolute paths.
#pragma once

#include <string>
#include <vector>

#include "tools/analyze/passes.hpp"

namespace upn::analyze {

/// Renders the findings as a SARIF 2.1.0 document (UTF-8 JSON, trailing
/// newline).  File-scoped findings (line 0) clamp to startLine 1, the SARIF
/// minimum.
[[nodiscard]] std::string write_sarif(const std::vector<Finding>& findings);

/// Structural validation of a SARIF document: parses the JSON and checks
/// the 2.1.0 skeleton (version string, runs array, tool.driver.name, rules
/// with unique ids, results whose ruleId/ruleIndex agree with the rules
/// array, locations with uri + startLine >= 1).  Returns "" when valid,
/// else the first problem found.
[[nodiscard]] std::string validate_sarif(const std::string& text);

}  // namespace upn::analyze
