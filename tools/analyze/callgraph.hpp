// upn_analyze: the whole-program call graph (pass families 8-11 ride on it).
//
// Function extraction is per-unit and pure, so the engine fans it out on the
// util/par ThreadPool exactly like unit construction; linking is one ordered
// merge over the per-unit results, so node ids -- and therefore the dump,
// the edge list, and every interprocedural finding -- are byte-identical at
// every --jobs value.
//
// The graph is deliberately conservative where C++ makes precision
// expensive (docs/STATIC_ANALYSIS.md spells out the exact contract):
//
//   * direct calls resolve by (name, arity), preferring exact arity, then
//     same-module, then same-file candidates; when several candidates still
//     survive, ALL of them get edges rather than guessing one;
//   * method calls resolve through declared local/parameter types
//     (`Type obj; obj.run()` -> Type::run) and explicit `Type::run(...)`
//     qualification; receivers the scanner cannot type (members, call
//     chains) resolve only when exactly one class defines the method;
//   * virtual methods, calls through locals/parameters (function pointers,
//     functors), and ambiguous untyped receivers become OPEN edges:
//     recorded and dumped, but never traversed by the passes -- documented
//     imprecision instead of silently wrong edges;
//   * lambdas handed to ThreadPool::parallel_for/parallel_map become task
//     pseudo-nodes ("<fn>/task@<line>") with a `task` edge from the
//     enclosing function; the task-blocking and exception-safety passes key
//     on exactly these nodes.
//
// Besides the edges, extraction summarizes per function everything the
// interprocedural passes consume: UPN_REQUIRE comparison facts over
// parameters, blocking operations (lock acquisitions with the held-lock set,
// condition-variable waits, IO), may-throw sources (throw, contract macros
// in their default throw mode, allocations), and noexcept/destructor flags.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace upn {
class ThreadPool;
}  // namespace upn

namespace upn::analyze {

struct Unit;

/// A `UPN_REQUIRE(param OP literal)` conjunct the scanner could evaluate:
/// `param` is an index into FunctionNode::params, `op` one of
/// >=, >, <=, <, ==, !=, `rhs` the integer literal.
struct RequireFact {
  std::size_t param = 0;
  std::string op;
  long long rhs = 0;
  std::size_t line = 0;  ///< line of the UPN_REQUIRE
  std::string text;      ///< the conjunct, space-joined, for messages
};

enum class BlockKind : char {
  kLock = 'l',  ///< lock_guard/unique_lock/scoped_lock construction, .lock()
  kWait = 'w',  ///< condition-variable .wait(...)
  kIo = 'i',    ///< file/stream IO (ifstream, fopen, printf, cout, ...)
};

struct BlockingOp {
  BlockKind kind = BlockKind::kLock;
  std::string what;               ///< lock/mutex name, receiver, or IO facility
  std::size_t line = 0;
  std::vector<std::string> held;  ///< locks already held at this operation
};

struct ThrowSource {
  std::string what;  ///< "throw", "UPN_REQUIRE", "new", "push_back", ...
  std::size_t line = 0;
};

/// One call site inside a function body, before linking.
struct RawCall {
  std::string name;           ///< callee identifier (last path component)
  std::string receiver_type;  ///< resolved local/param type, or explicit
                              ///< `X::name(...)` qualifier; "" when unknown
  std::size_t line = 0;
  std::size_t args = 0;
  bool is_method = false;     ///< written `obj.name(` / `obj->name(` / `X::name(`
  bool via_scope = false;     ///< written `X::name(` (X may be a namespace)
  bool name_is_local = false; ///< callee name is a local/param of the caller
  /// Inside a `try { ... } catch (...)` block: the callee's exceptions
  /// cannot escape the caller, so may-throw does not propagate here.
  bool guarded = false;
  /// Per argument: the integer literal text ("-3", "12") when the argument
  /// is exactly one (possibly negated) literal, else "".
  std::vector<std::string> arg_literals;
  std::vector<std::string> held_locks;  ///< locks held at the call site
};

struct FunctionNode {
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);

  std::string file;
  std::size_t line = 0;      ///< 1-based line of the name token
  std::string module;        ///< module_of(file); "" outside src/
  std::string name;          ///< "run", "~Router", "task@42"
  std::string class_name;    ///< "" for free functions
  std::string qualified;     ///< "Router::run", "run", "run/task@42"
  std::size_t arity = 0;
  std::vector<std::string> params;  ///< parameter names, in order

  bool is_public = true;
  bool is_noexcept = false;  ///< destructors default to true
  bool is_ctor = false;
  bool is_dtor = false;
  bool is_task_body = false; ///< lambda handed to parallel_for/parallel_map
  bool has_contract = false;
  bool has_waiver = false;   ///< body carries upn-contract-waive(...)
  std::size_t statements = 0;

  std::vector<RequireFact> preconditions;
  std::vector<BlockingOp> blocking;
  std::vector<ThrowSource> throw_sources;
  std::vector<RawCall> calls;

  /// For task pseudo-nodes: the enclosing function's node id (per-unit index
  /// before the merge, global id after).  kNoParent otherwise.
  std::size_t task_parent = kNoParent;
};

/// Per-unit extraction result: the function nodes in source order (each task
/// pseudo-node directly after its parent) plus every method name the unit
/// declares `virtual` (the open-edge oracle).
struct UnitFunctions {
  std::vector<FunctionNode> nodes;
  std::vector<std::string> virtual_names;  ///< sorted, unique
};

/// Scans one unit.  Pure and deterministic; safe to fan out per unit.
[[nodiscard]] UnitFunctions extract_functions(const Unit& unit);

enum class EdgeKind : char {
  kDirect = 'd',
  kMethod = 'm',
  kTask = 't',
};

struct CallEdge {
  std::size_t caller = 0;
  std::size_t callee = 0;
  std::size_t line = 0;
  EdgeKind kind = EdgeKind::kDirect;
  /// Index into nodes[caller].calls, or RawCall-less for task edges.
  std::size_t call_index = static_cast<std::size_t>(-1);
};

/// An unresolved target the passes must treat as "could do anything":
/// reason is "virtual", "indirect" (through a local/parameter), or
/// "ambiguous-receiver".
struct OpenEdge {
  std::size_t caller = 0;
  std::string name;
  std::size_t line = 0;
  std::string reason;
};

struct CallGraph {
  std::vector<FunctionNode> nodes;
  std::vector<CallEdge> edges;  ///< sorted by (caller, line, callee)
  std::vector<OpenEdge> opens;  ///< sorted by (caller, line, name)
  /// Adjacency over resolved edges: sorted unique node ids.
  std::vector<std::vector<std::size_t>> out_ids;
  std::vector<std::vector<std::size_t>> in_ids;
};

/// Merges per-unit extractions (in unit order) and resolves calls.
[[nodiscard]] CallGraph link_callgraph(const std::vector<UnitFunctions>& per_unit);

/// Extraction fanned out on `pool` (collected by index), then one ordered
/// link: the result is independent of the pool's thread count.
[[nodiscard]] CallGraph build_callgraph(const std::vector<Unit>& units, ThreadPool& pool);

/// The deterministic text dump behind `--dump-callgraph`: one `fn` line per
/// node in id order, then `edge` / `open` lines in sorted order.
[[nodiscard]] std::string dump_callgraph(const CallGraph& graph);

}  // namespace upn::analyze
