// Whole-program call-graph construction over the shared TU IR.  Two halves:
//
//   extract_functions  a per-unit scanner (a sibling of ir.cpp's DeclParser,
//                      but keeping bodies): function definitions with their
//                      scope-qualified names, parameter lists, noexcept and
//                      ctor/dtor flags, UPN_REQUIRE comparison facts,
//                      blocking operations with the held-lock set, may-throw
//                      sources, raw call sites, and one pseudo-node per
//                      lambda handed to ThreadPool::parallel_for/map;
//   link_callgraph     an ordered merge plus name/arity/receiver-type
//                      resolution into resolved edges and conservative open
//                      edges (virtual, indirect, ambiguous receiver).
//
// Like the DeclParser this is NOT a C++ parser: it recognizes the shapes
// this codebase uses and degrades by dropping a node or widening an edge to
// "open" rather than inventing a wrong one.
#include "tools/analyze/callgraph.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "src/util/par.hpp"
#include "tools/analyze/ir.hpp"

namespace upn::analyze {
namespace {

/// Keywords that may directly precede '(' or an identifier without naming a
/// callee or declaring a variable.
bool control_keyword(const std::string& t) {
  static const std::set<std::string> kw = {
      "return", "else", "new", "delete", "case", "break", "continue", "goto",
      "throw", "sizeof", "do", "operator", "co_return", "if", "while", "for",
      "switch", "public", "private", "protected", "typename", "template",
      "catch", "static_assert", "decltype", "alignof", "alignas", "noexcept",
      "static_cast", "const_cast", "reinterpret_cast", "dynamic_cast"};
  return kw.count(t) != 0;
}

/// Type qualifiers that precede the real type name in a declaration.
bool qualifier_keyword(const std::string& t) {
  static const std::set<std::string> kw = {
      "const", "constexpr", "consteval", "constinit", "static", "inline",
      "auto", "unsigned", "signed", "volatile", "register", "mutable",
      "struct", "class", "enum", "union", "using", "namespace", "typedef",
      "extern", "friend", "virtual", "explicit", "thread_local"};
  return kw.count(t) != 0;
}

bool contract_macro(const std::string& t) {
  return t == "UPN_REQUIRE" || t == "UPN_ENSURE" || t == "UPN_INVARIANT";
}

/// Container growth / allocation methods: may throw std::bad_alloc.
bool allocating_method(const std::string& m) {
  static const std::set<std::string> methods = {
      "push_back", "emplace_back", "push_front", "emplace_front", "insert",
      "emplace", "resize", "reserve", "assign", "append"};
  return methods.count(m) != 0;
}

/// Blocking IO facilities (streams, C stdio, process spawns).
bool io_name(const std::string& t) {
  static const std::set<std::string> names = {
      "ifstream", "ofstream", "fstream", "fopen", "popen", "fread", "fwrite",
      "printf", "fprintf", "getline", "system", "cin", "cout"};
  return names.count(t) != 0;
}

bool lock_type(const std::string& t) {
  return t == "lock_guard" || t == "unique_lock" || t == "scoped_lock";
}

/// Token index just past a balanced group opened at `open` ('(' / '[' / '{');
/// toks.size() when unbalanced.
std::size_t skip_group(const std::vector<Token>& toks, std::size_t open) {
  const std::string& o = toks[open].text;
  const std::string c = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (std::size_t k = open; k < toks.size(); ++k) {
    if (toks[k].text == o) ++depth;
    if (toks[k].text == c && --depth == 0) return k + 1;
  }
  return toks.size();
}

/// Token index just past a `<...>` template-argument group at `open`.
std::size_t skip_angles(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t k = open; k < toks.size(); ++k) {
    if (toks[k].text == "<") ++depth;
    if (toks[k].text == ">" && --depth == 0) return k + 1;
  }
  return toks.size();
}

struct ParLambda {
  std::set<std::string> params;
  std::size_t body_begin = 0;  ///< first token inside the body braces
  std::size_t body_end = 0;    ///< the closing '}' token
  std::size_t open = 0;        ///< the '[' token
};

/// Parses the lambda whose '[' sits at `open`; false when no body follows.
bool parse_lambda(const std::vector<Token>& toks, std::size_t open, ParLambda& out) {
  out.open = open;
  const std::size_t captures_end = skip_group(toks, open);  // past ']'
  if (captures_end >= toks.size()) return false;
  std::size_t k = captures_end;
  if (k < toks.size() && toks[k].text == "(") {
    const std::size_t params_end = skip_group(toks, k);  // past ')'
    std::string last_ident;
    int depth = 0;
    for (std::size_t p = k; p < params_end; ++p) {
      const std::string& t = toks[p].text;
      if (t == "(" || t == "[" || t == "{") ++depth;
      if (t == ")" || t == "]" || t == "}") --depth;
      if (toks[p].kind == TokenKind::kIdent) last_ident = t;
      if (depth == 1 && (t == "," || t == "=")) {
        if (!last_ident.empty()) out.params.insert(last_ident);
        last_ident.clear();
        if (t == "=") {
          while (p + 1 < params_end && toks[p + 1].text != "," && toks[p + 1].text != ")") ++p;
        }
      }
    }
    if (!last_ident.empty()) out.params.insert(last_ident);
    k = params_end;
  }
  while (k < toks.size() && toks[k].text != "{" && toks[k].text != ";" &&
         toks[k].text != ")") {
    ++k;
  }
  if (k >= toks.size() || toks[k].text != "{") return false;
  out.body_begin = k + 1;
  out.body_end = skip_group(toks, k) - 1;  // index of the closing '}'
  return out.body_end < toks.size();
}

/// The type name a declaration spells directly before `name_idx`:
/// `Graph g` -> Graph, `Graph& g` / `Graph* g` -> Graph,
/// `std::vector<int>& xs` -> vector.  "" when the shape is not a declaration.
std::string declared_type_before(const std::vector<Token>& toks, std::size_t name_idx) {
  if (name_idx == 0) return "";
  std::size_t k = name_idx - 1;
  while (k > 0 && (toks[k].text == "&" || toks[k].text == "*")) --k;
  if (toks[k].text == ">") {
    int depth = 0;
    while (k > 0) {
      if (toks[k].text == ">") ++depth;
      if (toks[k].text == "<" && --depth == 0) break;
      --k;
    }
    if (k == 0) return "";
    --k;  // the token before '<'
  }
  if (toks[k].kind != TokenKind::kIdent || control_keyword(toks[k].text) ||
      qualifier_keyword(toks[k].text)) {
    return "";
  }
  return toks[k].text;
}

/// A task pseudo-node plus the tasks nested inside its own body.
struct TaskSpawn {
  FunctionNode node;
  std::vector<TaskSpawn> children;
};

struct Scanner {
  const Unit& unit;
  UnitFunctions out;
  std::set<std::string> virtuals;
  std::size_t i = 0;

  [[nodiscard]] const std::vector<Token>& toks() const { return unit.tokens; }
  [[nodiscard]] const std::string& tok(std::size_t k) const { return unit.tokens[k].text; }

  // ---- head parsing ---------------------------------------------------------

  /// The function-name index in a statement head [begin, end): the first
  /// identifier directly followed by '(' outside parens and template angles,
  /// with at least one preceding token.  Destructors (`~Name(`) are
  /// recognized; npos when the head is not a function.
  [[nodiscard]] std::size_t head_function(std::size_t begin, std::size_t end,
                                          bool& is_dtor) const {
    std::size_t b = begin;
    while (b < end && tok(b) == "template") b = skip_angles(toks(), b + 1);
    int paren = 0;
    int angle = 0;
    for (std::size_t k = b; k < end; ++k) {
      const std::string& t = tok(k);
      if (t == "(") ++paren;
      if (t == ")" && paren > 0) --paren;
      if (paren > 0) continue;
      if (t == "<" && k > b && (toks()[k - 1].kind == TokenKind::kIdent || tok(k - 1) == ">")) {
        ++angle;
        continue;
      }
      if (t == ">" && angle > 0) {
        --angle;
        continue;
      }
      if (angle > 0) continue;
      if (toks()[k].kind == TokenKind::kIdent && k + 1 < end && tok(k + 1) == "(" &&
          k > begin && !control_keyword(t)) {
        is_dtor = tok(k - 1) == "~";
        return k;
      }
    }
    return std::string::npos;
  }

  /// Records virtual method names declared (with or without a body) in a
  /// statement head.
  void note_virtuals(std::size_t begin, std::size_t end) {
    bool saw_virtual = false;
    for (std::size_t k = begin; k < end; ++k) {
      if (tok(k) == "virtual") saw_virtual = true;
    }
    if (!saw_virtual) return;
    bool is_dtor = false;
    const std::size_t fn = head_function(begin, end, is_dtor);
    if (fn != std::string::npos && !is_dtor) virtuals.insert(tok(fn));
  }

  /// Parses the parameter list group starting at `open` ('('): ordered names
  /// plus a name -> declared-type map.
  void parse_params(std::size_t open, std::size_t close,
                    std::vector<std::string>& names,
                    std::map<std::string, std::string>& types) const {
    std::size_t seg_begin = open + 1;
    int depth = 0;
    int angle = 0;
    for (std::size_t k = open; k < close; ++k) {
      const std::string& t = tok(k);
      if (t == "(" || t == "[" || t == "{") ++depth;
      if (t == ")" || t == "]" || t == "}") --depth;
      if (t == "<" && k > open && (toks()[k - 1].kind == TokenKind::kIdent || tok(k - 1) == ">")) ++angle;
      if (t == ">" && angle > 0) --angle;
      const bool seg_end = (depth == 1 && angle == 0 && t == ",") || (depth == 0 && t == ")");
      if (!seg_end) continue;
      // The parameter name: the last identifier before a default '=' (or the
      // segment end).  A segment with fewer than two tokens is unnamed.
      std::size_t stop = k;
      int sub_angle = 0;
      for (std::size_t p = seg_begin; p < k; ++p) {
        if (tok(p) == "<" && p > seg_begin &&
            (toks()[p - 1].kind == TokenKind::kIdent || tok(p - 1) == ">")) {
          ++sub_angle;
        } else if (tok(p) == ">" && sub_angle > 0) {
          --sub_angle;
        } else if (tok(p) == "=" && sub_angle == 0) {
          stop = p;
          break;
        }
      }
      if (stop > seg_begin + 1 && toks()[stop - 1].kind == TokenKind::kIdent &&
          !control_keyword(tok(stop - 1))) {
        const std::string name = tok(stop - 1);
        names.push_back(name);
        const std::string type = declared_type_before(toks(), stop - 1);
        if (!type.empty()) types.emplace(name, type);
      } else if (stop > seg_begin) {
        names.emplace_back();  // unnamed parameter still counts toward arity
      }
      seg_begin = k + 1;
    }
  }

  // ---- body scanning --------------------------------------------------------

  /// Declaration-position identifiers in [b, e): name -> declared type.
  void collect_locals(std::size_t b, std::size_t e,
                      std::map<std::string, std::string>& locals) const {
    for (std::size_t j = b + 1; j < e; ++j) {
      if (toks()[j].kind != TokenKind::kIdent || control_keyword(tok(j)) ||
          qualifier_keyword(tok(j))) {
        continue;
      }
      const std::string type = declared_type_before(toks(), j);
      if (!type.empty()) locals.emplace(tok(j), type);
    }
  }

  /// Scope-qualifies a mutex/lock name that is not body-local.
  [[nodiscard]] std::string qualify_lock(const std::string& name, const FunctionNode& node,
                                         const std::map<std::string, std::string>& locals) const {
    if (locals.count(name) != 0) return name;
    bool is_param = false;
    for (const std::string& p : node.params) is_param = is_param || p == name;
    if (is_param || node.class_name.empty()) return name;
    return node.class_name + "::" + name;
  }

  [[nodiscard]] static std::vector<std::string> held_names(
      const std::vector<std::pair<std::string, int>>& held) {
    std::vector<std::string> names;
    names.reserve(held.size());
    for (const auto& [name, depth] : held) names.push_back(name);
    return names;
  }

  /// Parses one UPN_REQUIRE argument list into comparison facts over
  /// `node.params` (conjuncts split at top-level '&&').
  void parse_require_facts(FunctionNode& node, std::size_t open, std::size_t line) const {
    const std::size_t close = skip_group(toks(), open);  // past ')'
    std::size_t seg_begin = open + 1;
    int depth = 0;
    for (std::size_t k = open; k < close; ++k) {
      const std::string& t = tok(k);
      if (t == "(" || t == "[" || t == "{") ++depth;
      if (t == ")" || t == "]" || t == "}") --depth;
      const bool conj = depth == 1 && t == "&" && k + 1 < close && tok(k + 1) == "&";
      const bool last = depth == 0 && t == ")";
      if (!conj && !last) continue;
      parse_one_fact(node, seg_begin, k, line);
      if (conj) ++k;
      seg_begin = k + 1;
    }
  }

  void parse_one_fact(FunctionNode& node, std::size_t b, std::size_t e,
                      std::size_t line) const {
    // Accepted shapes: `name OP [-]literal` and `[-]literal OP name`.
    std::vector<std::size_t> parts;
    for (std::size_t k = b; k < e; ++k) parts.push_back(k);
    if (parts.size() < 3 || parts.size() > 5) return;

    auto param_index = [&](const std::string& name) -> std::size_t {
      for (std::size_t p = 0; p < node.params.size(); ++p) {
        if (node.params[p] == name) return p;
      }
      return std::string::npos;
    };
    auto read_op = [&](std::size_t at, std::size_t& next) -> std::string {
      const std::string& a = tok(at);
      const std::string b2 = at + 1 < e ? tok(at + 1) : "";
      if ((a == ">" || a == "<") && b2 == "=") {
        next = at + 2;
        return a + "=";
      }
      if (a == ">" || a == "<") {
        next = at + 1;
        return a;
      }
      if ((a == "=" || a == "!") && b2 == "=") {
        next = at + 2;
        return a == "=" ? "==" : "!=";
      }
      return "";
    };
    auto read_literal = [&](std::size_t at, std::size_t& next, long long& value) {
      bool neg = false;
      if (at < e && tok(at) == "-") {
        neg = true;
        ++at;
      }
      if (at >= e || toks()[at].kind != TokenKind::kNumber) return false;
      const std::string& text = tok(at);
      for (const char c : text) {
        if (c < '0' || c > '9') return false;  // integers only
      }
      value = 0;
      for (const char c : text) value = value * 10 + (c - '0');
      if (neg) value = -value;
      next = at + 1;
      return true;
    };
    auto flip = [](const std::string& op) -> std::string {
      if (op == ">") return "<";
      if (op == "<") return ">";
      if (op == ">=") return "<=";
      if (op == "<=") return ">=";
      return op;  // == / != are symmetric
    };
    auto text_of = [&]() {
      // Punct tokens are single chars; re-fuse two-char comparison operators
      // so the rendered precondition reads `x >= 0`, not `x > = 0`.
      std::string text;
      for (std::size_t k = b; k < e; ++k) {
        const std::string& piece = tok(k);
        const bool fuse = piece == "=" && !text.empty() &&
                          (text.back() == '>' || text.back() == '<' ||
                           text.back() == '=' || text.back() == '!');
        if (!text.empty() && !fuse) text += " ";
        text += piece;
      }
      return text;
    };

    std::size_t next = 0;
    long long value = 0;
    if (toks()[b].kind == TokenKind::kIdent) {
      const std::size_t param = param_index(tok(b));
      if (param == std::string::npos) return;
      const std::string op = read_op(b + 1, next);
      if (op.empty() || !read_literal(next, next, value) || next != e) return;
      node.preconditions.push_back(RequireFact{param, op, value, line, text_of()});
      return;
    }
    if (read_literal(b, next, value)) {
      const std::string op = read_op(next, next);
      if (op.empty() || next + 1 != e || toks()[next].kind != TokenKind::kIdent) return;
      const std::size_t param = param_index(tok(next));
      if (param == std::string::npos) return;
      node.preconditions.push_back(RequireFact{param, flip(op), value, line, text_of()});
    }
  }

  /// Walks a body range [b, e), filling `node` and spawning task
  /// pseudo-nodes.  `outer_locals` carries the enclosing function's
  /// declarations into task bodies.
  void scan_body(FunctionNode& node, std::size_t b, std::size_t e,
                 const std::map<std::string, std::string>& outer_locals,
                 std::vector<TaskSpawn>& tasks) {
    std::map<std::string, std::string> locals = outer_locals;
    collect_locals(b, e, locals);
    for (const std::string& p : node.params) {
      if (!p.empty() && locals.count(p) == 0) locals.emplace(p, "");
    }

    // `try { ... } catch (...)` bodies: a catch-all absorbs every exception,
    // so throw sources inside are invisible to callers and calls inside do
    // not propagate may-throw.  Typed catch clauses do NOT count -- proving
    // they cover every throw site is beyond this scanner.
    std::vector<std::pair<std::size_t, std::size_t>> guarded;
    for (std::size_t j = b; j < e; ++j) {
      if (toks()[j].kind != TokenKind::kIdent || tok(j) != "try") continue;
      if (j + 1 >= e || tok(j + 1) != "{") continue;
      const std::size_t try_end = skip_group(toks(), j + 1);  // past '}'
      bool catch_all = false;
      std::size_t k = try_end;
      while (k < e && tok(k) == "catch" && k + 1 < e && tok(k + 1) == "(") {
        const std::size_t close = skip_group(toks(), k + 1);  // past ')'
        std::size_t dots = 0;
        bool other = false;
        for (std::size_t p = k + 2; p + 1 < close; ++p) {
          if (tok(p) == ".") {
            ++dots;
          } else {
            other = true;
          }
        }
        if (dots == 3 && !other) catch_all = true;
        k = close;
        if (k < e && tok(k) == "{") k = skip_group(toks(), k);
      }
      if (catch_all) guarded.emplace_back(j + 2, try_end - 1);
    }
    auto in_guarded = [&](std::size_t j) {
      for (const auto& range : guarded) {
        if (j >= range.first && j < range.second) return true;
      }
      return false;
    };

    int depth = 0;
    std::vector<std::pair<std::string, int>> held;  // (lock name, depth)
    std::vector<std::pair<std::size_t, std::size_t>> skip;  // task body ranges

    auto is_local = [&](const std::string& name) { return locals.count(name) != 0; };

    for (std::size_t j = b; j < e; ++j) {
      for (const auto& range : skip) {
        if (j == range.first) j = range.second;  // jump to the closing '}'
      }
      const Token& t = toks()[j];
      if (t.text == "{") {
        ++depth;
        continue;
      }
      if (t.text == "}") {
        while (!held.empty() && held.back().second >= depth) held.pop_back();
        --depth;
        continue;
      }
      if (t.text == ";") {
        ++node.statements;
        continue;
      }
      if (t.kind != TokenKind::kIdent) continue;
      const std::string& name = t.text;

      if (contract_macro(name)) {
        node.has_contract = true;
        if (!in_guarded(j)) node.throw_sources.push_back(ThrowSource{name, t.line});
        if (name == "UPN_REQUIRE" && j + 1 < e && tok(j + 1) == "(") {
          parse_require_facts(node, j + 1, t.line);
        }
        continue;
      }
      if (name == "throw") {
        if (!in_guarded(j)) node.throw_sources.push_back(ThrowSource{"throw", t.line});
        continue;
      }
      if (name == "new" && (j == 0 || tok(j - 1) != "operator")) {
        if (!in_guarded(j)) node.throw_sources.push_back(ThrowSource{"new", t.line});
        continue;
      }
      if ((name == "make_unique" || name == "make_shared") && j + 1 < e &&
          (tok(j + 1) == "<" || tok(j + 1) == "(")) {
        if (!in_guarded(j)) node.throw_sources.push_back(ThrowSource{name, t.line});
        continue;
      }

      // Guard-object lock acquisition: lock_guard<..> name(mutex, ...).
      if (lock_type(name)) {
        std::size_t k = j + 1;
        if (k < e && tok(k) == "<") k = skip_angles(toks(), k);
        if (k < e && toks()[k].kind == TokenKind::kIdent) ++k;  // the guard variable
        if (k < e && (tok(k) == "(" || tok(k) == "{")) {
          const std::size_t close = skip_group(toks(), k);
          const bool all_args = name == "scoped_lock";
          std::size_t seg_begin = k + 1;
          int gd = 0;
          for (std::size_t p = k; p < close && p < e + 1; ++p) {
            const std::string& pt = tok(p);
            if (pt == "(" || pt == "[" || pt == "{") ++gd;
            if (pt == ")" || pt == "]" || pt == "}") --gd;
            const bool seg_end = (gd == 1 && pt == ",") || gd == 0;
            if (!seg_end) continue;
            std::string lock_name;
            for (std::size_t q = seg_begin; q < p; ++q) {
              if (toks()[q].kind == TokenKind::kIdent) lock_name = tok(q);
            }
            if (!lock_name.empty()) {
              const std::string qualified = qualify_lock(lock_name, node, locals);
              node.blocking.push_back(
                  BlockingOp{BlockKind::kLock, qualified, t.line, held_names(held)});
              held.emplace_back(qualified, depth);
            }
            seg_begin = p + 1;
            if (!all_args) break;
          }
        }
        continue;
      }

      const std::string prev = j > 0 ? tok(j - 1) : "";
      const bool after_member = prev == "." || prev == "->";

      // Manual .lock() / condition-variable .wait().
      if (after_member && j + 1 < e && tok(j + 1) == "(" && (name == "lock" || name == "wait")) {
        const std::string receiver =
            j >= 2 && toks()[j - 2].kind == TokenKind::kIdent ? tok(j - 2) : name;
        const std::string qualified = qualify_lock(receiver, node, locals);
        node.blocking.push_back(BlockingOp{name == "lock" ? BlockKind::kLock : BlockKind::kWait,
                                           qualified, t.line, held_names(held)});
        continue;
      }
      if (io_name(name)) {
        node.blocking.push_back(BlockingOp{BlockKind::kIo, name, t.line, held_names(held)});
        continue;
      }
      if (after_member && j + 1 < e && tok(j + 1) == "(" && allocating_method(name) &&
          !in_guarded(j)) {
        node.throw_sources.push_back(ThrowSource{name, t.line});
        // fall through: the call itself is still recorded below
      }

      // ThreadPool task spawn: pool.parallel_for/parallel_map(count, [..](..){..}).
      if ((name == "parallel_for" || name == "parallel_map") && prev == ".") {
        std::size_t call = j + 1;
        if (call < e && tok(call) == "<") call = skip_angles(toks(), call);
        if (call >= e || tok(call) != "(") continue;
        const std::size_t call_end = skip_group(toks(), call);
        std::size_t lam = call + 1;
        while (lam < call_end && tok(lam) != "[") ++lam;
        ParLambda lambda;
        if (lam >= call_end || !parse_lambda(toks(), lam, lambda)) continue;

        TaskSpawn spawn;
        FunctionNode& task = spawn.node;
        task.file = node.file;
        task.module = node.module;
        task.line = toks()[lam].line;
        task.name = "task@" + std::to_string(task.line);
        task.class_name = node.class_name;
        task.qualified = node.qualified + "/" + task.name;
        task.is_public = false;
        task.is_task_body = true;
        task.params.assign(lambda.params.begin(), lambda.params.end());
        task.arity = task.params.size();
        scan_body(task, lambda.body_begin, lambda.body_end, locals, spawn.children);
        tasks.push_back(std::move(spawn));
        skip.emplace_back(lambda.body_begin, lambda.body_end);
        continue;
      }

      // Generic call site: ident '(' not preceded by a declaring type name.
      if (j + 1 >= e || tok(j + 1) != "(") continue;
      if (control_keyword(name) || name == "operator") continue;
      const Token* prev_tok = j > 0 ? &toks()[j - 1] : nullptr;
      if (prev_tok != nullptr && prev_tok->kind == TokenKind::kIdent &&
          !control_keyword(prev_tok->text) && !qualifier_keyword(prev_tok->text)) {
        // `Type name(args)`: a declaration; the constructor call is recorded
        // against the TYPE so ctor edges still exist.
        RawCall ctor;
        ctor.name = prev_tok->text;
        ctor.line = prev_tok->line;
        read_args(j + 1, ctor);
        ctor.held_locks = held_names(held);
        ctor.guarded = in_guarded(j);
        node.calls.push_back(std::move(ctor));
        continue;
      }

      RawCall call;
      call.name = name;
      call.line = t.line;
      call.is_method = after_member;
      call.name_is_local = is_local(name);
      call.guarded = in_guarded(j);
      if (after_member && j >= 2 && toks()[j - 2].kind == TokenKind::kIdent) {
        const std::string& receiver = tok(j - 2);
        if (receiver == "this") {
          call.receiver_type = node.class_name;
        } else {
          const auto it = locals.find(receiver);
          if (it != locals.end()) call.receiver_type = it->second;
        }
      } else if (prev == "::" && j >= 2 && toks()[j - 2].kind == TokenKind::kIdent) {
        call.is_method = true;
        call.via_scope = true;
        call.receiver_type = tok(j - 2);
      }
      read_args(j + 1, call);
      call.held_locks = held_names(held);
      node.calls.push_back(std::move(call));
    }
  }

  /// Argument count and per-argument integer literals for the group at
  /// `open` ('(').
  void read_args(std::size_t open, RawCall& call) const {
    const std::size_t close = skip_group(toks(), open) - 1;  // the ')'
    if (close <= open + 1) return;                           // zero arguments
    std::size_t seg_begin = open + 1;
    int depth = 0;
    for (std::size_t k = open; k <= close; ++k) {
      const std::string& t = tok(k);
      if (t == "(" || t == "[" || t == "{") ++depth;
      if (t == ")" || t == "]" || t == "}") --depth;
      const bool seg_end = (depth == 1 && t == ",") || (depth == 0 && k == close);
      if (!seg_end) continue;
      ++call.args;
      std::string literal;
      const std::size_t len = k - seg_begin;
      if (len == 1 && toks()[seg_begin].kind == TokenKind::kNumber) {
        literal = tok(seg_begin);
      } else if (len == 2 && tok(seg_begin) == "-" &&
                 toks()[seg_begin + 1].kind == TokenKind::kNumber) {
        literal = "-" + tok(seg_begin + 1);
      }
      call.arg_literals.push_back(std::move(literal));
      seg_begin = k + 1;
    }
  }

  // ---- scope walking --------------------------------------------------------

  [[nodiscard]] bool body_has_waiver(std::size_t first_line, std::size_t last_line) const {
    for (std::size_t l = first_line; l <= last_line && l <= unit.raw.size(); ++l) {
      if (l >= 1 && unit.raw[l - 1].find("upn-contract-waive(") != std::string::npos) {
        return true;
      }
    }
    return false;
  }

  void push_with_tasks(FunctionNode node, std::vector<TaskSpawn> tasks) {
    const std::size_t idx = out.nodes.size();
    out.nodes.push_back(std::move(node));
    for (TaskSpawn& spawn : tasks) {
      spawn.node.task_parent = idx;
      push_with_tasks(std::move(spawn.node), std::move(spawn.children));
    }
  }

  void add_function(std::size_t name_idx, bool is_dtor, std::size_t head_begin,
                    std::size_t head_end, const std::string& scope_class, bool is_public) {
    FunctionNode node;
    node.file = unit.path;
    node.module = unit.module;
    node.line = toks()[name_idx].line;
    node.name = tok(name_idx);
    node.class_name = scope_class;
    if (name_idx >= 2 && tok(name_idx - 1 - (is_dtor ? 1 : 0)) == "::") {
      // Out-of-line member definition: `ret Class::name(...)`.
      const std::size_t cls = name_idx - 2 - (is_dtor ? 1 : 0);
      if (toks()[cls].kind == TokenKind::kIdent) node.class_name = tok(cls);
    }
    if (is_dtor) {
      node.is_dtor = true;
      if (node.class_name.empty()) node.class_name = node.name;
      node.name = "~" + node.name;
      node.is_noexcept = true;  // destructors default to noexcept
    }
    if (!node.class_name.empty() && node.name == node.class_name) node.is_ctor = true;
    node.qualified =
        node.class_name.empty() ? node.name : node.class_name + "::" + node.name;
    node.is_public = is_public;

    const std::size_t params_open = name_idx + 1;  // the '('
    const std::size_t params_end = skip_group(toks(), params_open);  // past ')'
    std::map<std::string, std::string> param_types;
    parse_params(params_open, params_end, node.params, param_types);
    node.arity = node.params.size();

    // `noexcept` between the parameter list and the body; `noexcept(false)`
    // does not count, any other operand conservatively does.
    for (std::size_t k = params_end; k < head_end; ++k) {
      if (tok(k) != "noexcept") continue;
      node.is_noexcept = true;
      if (k + 1 < head_end && tok(k + 1) == "(") {
        const std::size_t close = skip_group(toks(), k + 1);
        if (close - (k + 1) == 3 && tok(k + 2) == "false") node.is_noexcept = false;
      }
    }
    for (std::size_t k = head_begin; k < head_end; ++k) {
      if (tok(k) == "virtual" && !is_dtor) virtuals.insert(node.name);
    }

    // The body: i currently sits at its '{'.
    const std::size_t body_begin = i + 1;
    const std::size_t body_end = skip_group(toks(), i) - 1;  // the closing '}'
    std::map<std::string, std::string> locals = param_types;
    std::vector<TaskSpawn> tasks;
    scan_body(node, body_begin, body_end, locals, tasks);
    const std::size_t last_line =
        body_end < toks().size() ? toks()[body_end].line : node.line;
    node.has_waiver = body_has_waiver(node.line, last_line);
    push_with_tasks(std::move(node), std::move(tasks));
    i = body_end + 1;
  }

  /// Parses one brace scope (namespace, class, or the whole file).
  void parse_scope(const std::string& class_name, bool in_class, bool public_default) {
    bool is_public = public_default;
    std::size_t stmt_begin = i;
    int paren = 0;
    while (i < toks().size()) {
      const std::string& t = tok(i);
      if (t == "(") ++paren;
      if (t == ")" && paren > 0) --paren;
      if (paren > 0) {
        ++i;
        continue;
      }
      if (in_class && stmt_begin == i &&
          (t == "public" || t == "private" || t == "protected") && i + 1 < toks().size() &&
          tok(i + 1) == ":") {
        is_public = t == "public";
        i += 2;
        stmt_begin = i;
        continue;
      }
      if (t == ";") {
        note_virtuals(stmt_begin, i);
        ++i;
        stmt_begin = i;
        continue;
      }
      if (t == "}") {
        ++i;
        return;
      }
      if (t != "{") {
        ++i;
        continue;
      }
      const std::size_t head_begin = stmt_begin;
      const std::size_t head_end = i;
      auto head_has = [&](const char* kw) {
        for (std::size_t k = head_begin; k < head_end; ++k) {
          if (tok(k) == kw) return true;
        }
        return false;
      };
      if (head_has("namespace")) {
        ++i;
        parse_scope("", false, true);
        stmt_begin = i;
        continue;
      }
      if (head_has("enum")) {
        i = skip_group(toks(), i);
        stmt_begin = i;
        continue;
      }
      if (head_has("class") || head_has("struct") || head_has("union")) {
        std::size_t n = head_begin;
        while (n < head_end && !(tok(n) == "class" || tok(n) == "struct" || tok(n) == "union")) {
          ++n;
        }
        const bool struct_like = tok(n) != "class";
        ++n;
        std::string name;
        if (n < head_end && toks()[n].kind == TokenKind::kIdent) name = tok(n);
        ++i;
        parse_scope(name, true, struct_like);
        stmt_begin = i;
        continue;
      }
      bool is_dtor = false;
      const std::size_t fn = head_function(head_begin, head_end, is_dtor);
      if (fn != std::string::npos) {
        note_virtuals(head_begin, head_end);
        add_function(fn, is_dtor, head_begin, head_end, class_name, is_public);
        stmt_begin = i;
        continue;
      }
      // Brace initializer / array literal / ...: skip and let ';' finish it.
      i = skip_group(toks(), i);
      stmt_begin = i;
    }
  }

  [[nodiscard]] UnitFunctions run() {
    parse_scope("", false, true);
    out.virtual_names.assign(virtuals.begin(), virtuals.end());
    return std::move(out);
  }
};

}  // namespace

UnitFunctions extract_functions(const Unit& unit) {
  Scanner scanner{unit, {}, {}, 0};
  return scanner.run();
}

namespace {

/// Candidate filters used by the resolver: exact arity wins when any
/// candidate matches it; same module then same file break remaining ties.
std::vector<std::size_t> prefer(const std::vector<FunctionNode>& nodes,
                                std::vector<std::size_t> cands, const FunctionNode& caller,
                                std::size_t args) {
  auto narrow = [&](auto keep) {
    std::vector<std::size_t> subset;
    for (const std::size_t id : cands) {
      if (keep(nodes[id])) subset.push_back(id);
    }
    if (!subset.empty()) cands = std::move(subset);
  };
  narrow([&](const FunctionNode& n) { return n.arity == args; });
  if (cands.size() > 1) {
    narrow([&](const FunctionNode& n) { return n.module == caller.module; });
  }
  if (cands.size() > 1) {
    narrow([&](const FunctionNode& n) { return n.file == caller.file; });
  }
  return cands;
}

}  // namespace

CallGraph link_callgraph(const std::vector<UnitFunctions>& per_unit) {
  CallGraph g;
  std::set<std::string> virtuals;
  for (const UnitFunctions& uf : per_unit) {
    const std::size_t base = g.nodes.size();
    for (const FunctionNode& node : uf.nodes) {
      g.nodes.push_back(node);
      if (g.nodes.back().task_parent != FunctionNode::kNoParent) {
        g.nodes.back().task_parent += base;
      }
    }
    virtuals.insert(uf.virtual_names.begin(), uf.virtual_names.end());
  }

  std::map<std::string, std::vector<std::size_t>> free_by_name;
  std::map<std::pair<std::string, std::string>, std::vector<std::size_t>> class_method;
  std::map<std::string, std::vector<std::size_t>> method_by_name;
  for (std::size_t id = 0; id < g.nodes.size(); ++id) {
    const FunctionNode& n = g.nodes[id];
    if (n.is_task_body) continue;
    if (n.class_name.empty()) {
      free_by_name[n.name].push_back(id);
    } else {
      class_method[{n.class_name, n.name}].push_back(id);
      method_by_name[n.name].push_back(id);
    }
  }

  for (std::size_t caller = 0; caller < g.nodes.size(); ++caller) {
    const FunctionNode& node = g.nodes[caller];
    if (node.task_parent != FunctionNode::kNoParent) {
      g.edges.push_back(CallEdge{node.task_parent, caller, node.line, EdgeKind::kTask,
                                 static_cast<std::size_t>(-1)});
    }
    for (std::size_t ci = 0; ci < node.calls.size(); ++ci) {
      const RawCall& call = node.calls[ci];
      if (call.name == "parallel_for" || call.name == "parallel_map") continue;

      auto open = [&](const char* reason) {
        g.opens.push_back(OpenEdge{caller, call.name, call.line, reason});
      };
      auto link = [&](const std::vector<std::size_t>& cands, EdgeKind kind) {
        for (const std::size_t callee : cands) {
          g.edges.push_back(CallEdge{caller, callee, call.line, kind, ci});
        }
      };

      if (call.is_method) {
        if (virtuals.count(call.name) != 0) {
          open("virtual");
          continue;
        }
        if (!call.receiver_type.empty()) {
          const auto it = class_method.find({call.receiver_type, call.name});
          if (it != class_method.end()) {
            link(prefer(g.nodes, it->second, node, call.args), EdgeKind::kMethod);
            continue;
          }
          if (!call.via_scope) continue;  // typed receiver, foreign class: external
          // `X::name(...)` where X is a namespace: fall through to free lookup.
        } else {
          // Untyped receiver (member field, call chain): resolve only when
          // exactly one class defines the method.
          const auto it = method_by_name.find(call.name);
          if (it == method_by_name.end()) continue;  // external (std:: etc.)
          std::vector<std::size_t> cands = prefer(g.nodes, it->second, node, call.args);
          std::set<std::string> classes;
          for (const std::size_t id : cands) classes.insert(g.nodes[id].class_name);
          if (classes.size() == 1) {
            link(cands, EdgeKind::kMethod);
          } else {
            open("ambiguous-receiver");
          }
          continue;
        }
      }

      if (call.name_is_local) {
        open("indirect");  // function pointer / functor through a local
        continue;
      }
      if (!node.class_name.empty()) {
        const auto it = class_method.find({node.class_name, call.name});
        if (it != class_method.end()) {
          link(prefer(g.nodes, it->second, node, call.args), EdgeKind::kMethod);
          continue;
        }
      }
      const auto it = free_by_name.find(call.name);
      if (it != free_by_name.end()) {
        link(prefer(g.nodes, it->second, node, call.args),
             call.is_method ? EdgeKind::kMethod : EdgeKind::kDirect);
        continue;
      }
      if (virtuals.count(call.name) != 0) open("virtual");
      // Anything else is external (std::, macros, C library): no edge.
    }
  }

  std::sort(g.edges.begin(), g.edges.end(), [](const CallEdge& a, const CallEdge& b) {
    return std::tie(a.caller, a.line, a.callee, a.call_index) <
           std::tie(b.caller, b.line, b.callee, b.call_index);
  });
  std::sort(g.opens.begin(), g.opens.end(), [](const OpenEdge& a, const OpenEdge& b) {
    return std::tie(a.caller, a.line, a.name, a.reason) <
           std::tie(b.caller, b.line, b.name, b.reason);
  });

  g.out_ids.assign(g.nodes.size(), {});
  g.in_ids.assign(g.nodes.size(), {});
  for (const CallEdge& e : g.edges) {
    g.out_ids[e.caller].push_back(e.callee);
    g.in_ids[e.callee].push_back(e.caller);
  }
  auto dedupe = [](std::vector<std::vector<std::size_t>>& adj) {
    for (std::vector<std::size_t>& ids : adj) {
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    }
  };
  dedupe(g.out_ids);
  dedupe(g.in_ids);
  return g;
}

CallGraph build_callgraph(const std::vector<Unit>& units, ThreadPool& pool) {
  const std::vector<UnitFunctions> per_unit = pool.parallel_map<UnitFunctions>(
      units.size(), [&](std::size_t i) { return extract_functions(units[i]); });
  return link_callgraph(per_unit);
}

std::string dump_callgraph(const CallGraph& graph) {
  std::string out = "callgraph: " + std::to_string(graph.nodes.size()) + " functions, " +
                    std::to_string(graph.edges.size()) + " edges, " +
                    std::to_string(graph.opens.size()) + " open\n";
  for (std::size_t id = 0; id < graph.nodes.size(); ++id) {
    const FunctionNode& n = graph.nodes[id];
    out += "fn " + std::to_string(id) + " " + n.file + ":" + std::to_string(n.line) + " " +
           n.qualified + "/" + std::to_string(n.arity);
    if (n.is_public) out += " public";
    if (n.is_noexcept) out += " noexcept";
    if (n.is_ctor) out += " ctor";
    if (n.is_dtor) out += " dtor";
    if (n.is_task_body) out += " task";
    if (n.has_contract) out += " contract";
    if (!n.module.empty()) out += " module=" + n.module;
    out += "\n";
  }
  for (const CallEdge& e : graph.edges) {
    const char* kind = e.kind == EdgeKind::kDirect ? "direct"
                       : e.kind == EdgeKind::kMethod ? "method"
                                                     : "task";
    out += "edge " + std::to_string(e.caller) + " -> " + std::to_string(e.callee) +
           " kind=" + kind + " line=" + std::to_string(e.line) + "\n";
  }
  for (const OpenEdge& e : graph.opens) {
    out += "open " + std::to_string(e.caller) + " -> '" + e.name + "' reason=" + e.reason +
           " line=" + std::to_string(e.line) + "\n";
  }
  return out;
}

}  // namespace upn::analyze
