// Include hygiene (IWYU-lite): a quoted include is flagged when the
// including file uses NO name from the included header's transitive
// declaration closure.  This is deliberately the sound direction: deleting
// such an include cannot remove any name the file refers to, so every
// finding is actionable.  The converse analysis ("this name should come from
// a more direct header") needs real name lookup and is out of scope.
//
// Exemptions:
//   * system includes (<...>);
//   * includes that do not resolve inside the analyzed set (we cannot see
//     their declarations);
//   * a .cpp including its own header (the API anchor, always intentional);
//   * headers whose closure exports nothing we can index (nothing to judge);
//   * `upn-lint-allow(unused-include)` on the include line.
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/analyze/passes.hpp"

namespace upn::analyze {
namespace {

/// "src/topology/graph.hpp" -> "src/topology/graph".
std::string stem_of(const std::string& path) {
  const auto dot = path.rfind('.');
  return dot == std::string::npos ? path : path.substr(0, dot);
}

}  // namespace

std::vector<Finding> run_include_hygiene_pass(const std::vector<Unit>& units) {
  std::map<std::string, const Unit*> by_path;
  for (const Unit& unit : units) by_path.emplace(unit.path, &unit);

  // Transitive declaration closure per header, memoized.  The include graph
  // is acyclic in a healthy tree; a cycle (reported separately by the
  // layering pass) is broken here by the in-progress marker.
  std::map<std::string, std::set<std::string>> closure;
  std::set<std::string> in_progress;

  auto names_of = [&](auto&& self, const std::string& path) -> const std::set<std::string>& {
    const auto memo = closure.find(path);
    if (memo != closure.end()) return memo->second;
    static const std::set<std::string> empty;
    if (in_progress.count(path) != 0) return empty;
    in_progress.insert(path);
    std::set<std::string> names;
    const auto it = by_path.find(path);
    if (it != by_path.end()) {
      for (const Declaration& d : it->second->decls) names.insert(d.name);
      for (const IncludeEdge& inc : it->second->includes) {
        if (!inc.quoted || by_path.count(inc.target) == 0) continue;
        const std::set<std::string>& sub = self(self, inc.target);
        names.insert(sub.begin(), sub.end());
      }
    }
    in_progress.erase(path);
    return closure.emplace(path, std::move(names)).first->second;
  };

  std::vector<Finding> out;
  for (const Unit& unit : units) {
    // The unit's identifier usage set, minus the identifiers on include
    // lines themselves.
    std::set<std::string> used;
    for (const Token& t : unit.tokens) {
      if (t.kind == TokenKind::kIdent) used.insert(t.text);
    }
    const std::string own_stem = stem_of(unit.path);
    for (const IncludeEdge& inc : unit.includes) {
      if (!inc.quoted || by_path.count(inc.target) == 0) continue;
      if (stem_of(inc.target) == own_stem) continue;  // own header
      if (inc.line >= 1 && inc.line <= unit.raw.size() &&
          suppressed(unit.raw[inc.line - 1], "unused-include")) {
        continue;
      }
      const std::set<std::string>& exported = names_of(names_of, inc.target);
      if (exported.empty()) continue;
      bool any_used = false;
      for (const std::string& name : exported) {
        if (used.count(name) != 0) {
          any_used = true;
          break;
        }
      }
      if (!any_used) {
        out.push_back(Finding{unit.path, inc.line, "unused-include",
                              "nothing from '" + inc.target +
                                  "' (or anything it includes) is used here; drop the "
                                  "include"});
      }
    }
  }
  std::sort(out.begin(), out.end(), finding_less);
  return out;
}

}  // namespace upn::analyze
