// Interprocedural pass families 8-11 over the whole-program call graph
// (tools/analyze/callgraph.hpp).  All four are pure (graph + units in,
// findings out); the engine owns ordering and the interproc ratchet
// (tools/analyze/interproc.baseline, keyed like the hotpath baseline).
//
//   (8)  lock order / task blocking -- per-function acquired-lock summaries
//        propagated over resolved edges; a cycle in the observed
//        held-before relation is a potential deadlock, and any blocking
//        operation (lock acquisition, condition-variable wait, IO)
//        reachable from a ThreadPool task body stalls a pool worker.
//   (9)  contract propagation -- callee UPN_REQUIRE facts evaluated against
//        integer-literal arguments at every resolved call site, plus public
//        uncontracted entry points into hotpath-declared modules.
//   (10) exception safety -- may-throw summaries (throw, contract macros in
//        their default throw mode, allocations) propagated through
//        non-noexcept callees; flagged inside noexcept functions and
//        defaulted-noexcept destructors.  Task bodies are exempt: the pool's
//        parallel_for/parallel_map rethrow protocol catches and forwards
//        their exceptions, and that forwarding is modeled by propagating
//        may-throw across the task edge to the spawning function.
//   (11) dead functions -- free src/ functions whose name is never
//        referenced outside their own declarations.  Liveness is by name
//        reference (calls, address-taken uses, using-declarations all
//        count), so recursion alone does not keep a function alive but any
//        overload being used keeps the whole name alive -- conservative in
//        the direction that matters.
//
// Findings are restricted to src/ modules (module_of(file) non-empty): the
// pool's own tests deliberately lock inside tasks, and fixtures/benches are
// not production surfaces.  util and obs are additionally exempt as
// task-blocking SITES (util/par is the pool, obs counters lock by design).
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/analyze/callgraph.hpp"
#include "tools/analyze/passes.hpp"

namespace upn::analyze {
namespace {

/// Path -> unit, for suppression lookups at finding lines.
std::map<std::string, const Unit*> unit_index(const std::vector<Unit>& units) {
  std::map<std::string, const Unit*> index;
  for (const Unit& unit : units) index.emplace(unit.path, &unit);
  return index;
}

bool line_suppressed(const std::map<std::string, const Unit*>& units,
                     const std::string& file, std::size_t line, const std::string& rule) {
  const auto it = units.find(file);
  if (it == units.end()) return false;
  const std::vector<std::string>& raw = it->second->raw;
  if (line == 0 || line > raw.size()) return false;
  return suppressed(raw[line - 1], rule);
}

/// Node ids reachable from `start` over resolved edges (including `start`).
std::vector<std::size_t> reachable_from(const CallGraph& graph, std::size_t start) {
  std::vector<std::size_t> order{start};
  std::set<std::size_t> seen{start};
  for (std::size_t head = 0; head < order.size(); ++head) {
    for (const std::size_t next : graph.out_ids[order[head]]) {
      if (seen.insert(next).second) order.push_back(next);
    }
  }
  return order;
}

/// Transitive lock-acquisition summaries: node id -> sorted lock names the
/// function (or anything it calls through resolved edges) may acquire.
std::vector<std::vector<std::string>> transitive_acquires(const CallGraph& graph) {
  std::vector<std::set<std::string>> acq(graph.nodes.size());
  for (std::size_t id = 0; id < graph.nodes.size(); ++id) {
    for (const BlockingOp& op : graph.nodes[id].blocking) {
      if (op.kind == BlockKind::kLock) acq[id].insert(op.what);
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const CallEdge& e : graph.edges) {
      for (const std::string& lock : acq[e.callee]) {
        if (acq[e.caller].insert(lock).second) changed = true;
      }
    }
  }
  std::vector<std::vector<std::string>> out(acq.size());
  for (std::size_t id = 0; id < acq.size(); ++id) {
    out[id].assign(acq[id].begin(), acq[id].end());
  }
  return out;
}

/// One witness cycle in the held-before lock relation as
/// "a -> b -> ... -> a", or "" when acyclic.  Deterministic: sorted order.
std::string lock_cycle(const std::map<std::string, std::set<std::string>>& after) {
  std::map<std::string, int> state;  // 0 new, 1 on stack, 2 done
  std::vector<std::string> stack;
  std::string witness;
  // NOLINTNEXTLINE(misc-no-recursion): depth is bounded by the lock count.
  auto dfs = [&](auto&& self, const std::string& node) -> bool {
    state[node] = 1;
    stack.push_back(node);
    const auto it = after.find(node);
    if (it != after.end()) {
      for (const std::string& next : it->second) {
        const int s = state.count(next) != 0 ? state.at(next) : 0;
        if (s == 1) {
          witness = next;
          const auto from = std::find(stack.begin(), stack.end(), next);
          for (auto w = from; w != stack.end(); ++w) {
            if (w != from) witness += " -> " + *w;
          }
          witness += " -> " + next;
          return true;
        }
        if (s == 0 && self(self, next)) return true;
      }
    }
    stack.pop_back();
    state[node] = 2;
    return false;
  };
  for (const auto& [node, next] : after) {
    (void)next;
    if ((state.count(node) == 0 || state.at(node) == 0) && dfs(dfs, node)) return witness;
  }
  return "";
}

/// Modules whose blocking operations are sanctioned even under a task body:
/// util owns the pool itself, obs counters serialize by design.
bool blocking_site_exempt(const std::string& module) {
  return module == "util" || module.compare(0, 4, "util") == 0 || module == "obs";
}

}  // namespace

std::vector<Finding> run_lock_order_pass(const CallGraph& graph,
                                         const std::vector<Unit>& units) {
  std::vector<Finding> out;
  const std::map<std::string, const Unit*> index = unit_index(units);
  const std::vector<std::vector<std::string>> acquires = transitive_acquires(graph);

  // ---- lock-order-cycle: the observed held-before relation must be acyclic.
  // An edge A -> B means "B is acquired while A is held", observed either
  // directly (a lock op with a non-empty held set) or through a call whose
  // callee transitively acquires B.
  std::map<std::string, std::set<std::string>> after;
  std::map<std::pair<std::string, std::string>, std::pair<std::string, std::size_t>> where;
  auto note = [&](const std::string& held, const std::string& next, const std::string& file,
                  std::size_t line) {
    if (held == next) return;
    after[held].insert(next);
    auto& site = where[{held, next}];
    if (site.first.empty() || std::tie(file, line) < std::tie(site.first, site.second)) {
      site = {file, line};
    }
  };
  for (std::size_t id = 0; id < graph.nodes.size(); ++id) {
    const FunctionNode& node = graph.nodes[id];
    if (node.module.empty()) continue;  // src/ only
    for (const BlockingOp& op : node.blocking) {
      if (op.kind != BlockKind::kLock) continue;
      for (const std::string& held : op.held) note(held, op.what, node.file, op.line);
    }
  }
  for (const CallEdge& e : graph.edges) {
    const FunctionNode& caller = graph.nodes[e.caller];
    if (caller.module.empty()) continue;
    if (e.call_index >= caller.calls.size()) continue;  // task edges carry no site
    const RawCall& call = caller.calls[e.call_index];
    for (const std::string& held : call.held_locks) {
      for (const std::string& acquired : acquires[e.callee]) {
        note(held, acquired, caller.file, call.line);
      }
    }
  }
  const std::string cycle = lock_cycle(after);
  if (!cycle.empty()) {
    // Report once, at the smallest (file, line) witness site among the
    // cycle's edges, so the finding is stable under unrelated edits.
    std::vector<std::string> locks;
    std::string token;
    for (const char c : cycle) {
      if (c == ' ' || c == '-' || c == '>') {
        if (!token.empty()) locks.push_back(token);
        token.clear();
      } else {
        token += c;
      }
    }
    if (!token.empty()) locks.push_back(token);
    std::pair<std::string, std::size_t> site;
    for (std::size_t k = 0; k + 1 < locks.size(); ++k) {
      const auto it = where.find({locks[k], locks[k + 1]});
      if (it == where.end()) continue;
      if (site.first.empty() || it->second < site) site = it->second;
    }
    if (!site.first.empty() &&
        !line_suppressed(index, site.first, site.second, "lock-order-cycle")) {
      out.push_back(Finding{site.first, site.second, "lock-order-cycle",
                            "locks are acquired in inconsistent order: '" + cycle +
                                "'; pick one global order or merge the critical sections"});
    }
  }

  // ---- task-blocking-call / task-blocking-io: blocking operations reachable
  // from a ThreadPool task body stall a pool worker (and with one worker per
  // hardware thread, possibly the whole pool).
  for (std::size_t id = 0; id < graph.nodes.size(); ++id) {
    const FunctionNode& task = graph.nodes[id];
    if (!task.is_task_body || task.module.empty()) continue;
    std::set<std::pair<std::string, std::string>> reported;  // (rule, what)
    for (const std::size_t reached : reachable_from(graph, id)) {
      const FunctionNode& site = graph.nodes[reached];
      if (blocking_site_exempt(site.module)) continue;
      for (const BlockingOp& op : site.blocking) {
        const std::string rule =
            op.kind == BlockKind::kIo ? "task-blocking-io" : "task-blocking-call";
        if (!reported.insert({rule, op.what}).second) continue;
        if (line_suppressed(index, task.file, task.line, rule)) continue;
        const char* verb = op.kind == BlockKind::kLock   ? "acquires lock"
                           : op.kind == BlockKind::kWait ? "waits on"
                                                         : "performs IO via";
        std::string message =
            std::string("parallel task body ") + verb + " '" + op.what + "'";
        if (reached != id) message += " through '" + site.qualified + "'";
        message += "; pool workers must not block (restructure or move the work off-task)";
        out.push_back(Finding{task.file, task.line, rule, std::move(message)});
      }
    }
  }

  std::sort(out.begin(), out.end(), finding_less);
  return out;
}

std::vector<Finding> run_contract_propagation_pass(const CallGraph& graph,
                                                   const std::vector<Unit>& units,
                                                   const LayerSpec& spec) {
  std::vector<Finding> out;
  const std::map<std::string, const Unit*> index = unit_index(units);

  // ---- contract-violated-call: integer-literal arguments checked against
  // the callee's UPN_REQUIRE comparison facts.
  for (const CallEdge& e : graph.edges) {
    const FunctionNode& caller = graph.nodes[e.caller];
    const FunctionNode& callee = graph.nodes[e.callee];
    if (caller.module.empty() || callee.preconditions.empty()) continue;
    if (e.call_index >= caller.calls.size()) continue;
    const RawCall& call = caller.calls[e.call_index];
    if (call.args != callee.arity) continue;  // only exact-arity matches are checkable
    for (const RequireFact& fact : callee.preconditions) {
      if (fact.param >= call.arg_literals.size()) continue;
      const std::string& literal = call.arg_literals[fact.param];
      if (literal.empty()) continue;
      long long value = 0;
      bool neg = false;
      bool ok = !literal.empty();
      for (std::size_t k = 0; k < literal.size(); ++k) {
        const char c = literal[k];
        if (k == 0 && c == '-') {
          neg = true;
        } else if (c >= '0' && c <= '9') {
          value = value * 10 + (c - '0');
        } else {
          ok = false;
        }
      }
      if (!ok) continue;
      if (neg) value = -value;
      bool holds = true;
      if (fact.op == ">=") holds = value >= fact.rhs;
      if (fact.op == ">") holds = value > fact.rhs;
      if (fact.op == "<=") holds = value <= fact.rhs;
      if (fact.op == "<") holds = value < fact.rhs;
      if (fact.op == "==") holds = value == fact.rhs;
      if (fact.op == "!=") holds = value != fact.rhs;
      if (holds) continue;
      if (line_suppressed(index, caller.file, call.line, "contract-violated-call")) continue;
      out.push_back(Finding{
          caller.file, call.line, "contract-violated-call",
          "call to '" + callee.qualified + "' passes " + literal + " for parameter '" +
              callee.params[fact.param] + "', which violates its precondition `" +
              fact.text + "` (" + callee.file + ":" + std::to_string(fact.line) + ")"});
    }
  }

  // ---- hotpath-unchecked-entry: public functions in hotpath-declared
  // modules that other modules call without any precondition between them
  // and the caller's data.
  for (std::size_t id = 0; id < graph.nodes.size(); ++id) {
    const FunctionNode& node = graph.nodes[id];
    if (spec.hotpaths.count(node.module) == 0) continue;
    if (!node.is_public || node.is_ctor || node.is_dtor || node.is_task_body) continue;
    if (node.arity == 0 || node.has_contract || node.has_waiver) continue;
    if (node.statements < 2) continue;  // trivial accessors, same bar as coverage
    bool external_caller = false;
    for (const std::size_t caller : graph.in_ids[id]) {
      if (graph.nodes[caller].module != node.module) external_caller = true;
    }
    if (!external_caller) continue;
    if (line_suppressed(index, node.file, node.line, "hotpath-unchecked-entry")) continue;
    out.push_back(Finding{
        node.file, node.line, "hotpath-unchecked-entry",
        "'" + node.qualified + "' is a public entry into hotpath module '" + node.module +
            "' called from outside it, but validates none of its " +
            std::to_string(node.arity) +
            " parameter(s); add UPN_REQUIRE or upn-contract-waive(reason)"});
  }

  std::sort(out.begin(), out.end(), finding_less);
  return out;
}

std::vector<Finding> run_exception_safety_pass(const CallGraph& graph,
                                               const std::vector<Unit>& units) {
  std::vector<Finding> out;
  const std::map<std::string, const Unit*> index = unit_index(units);

  // May-throw fixpoint.  noexcept callees do not propagate (an escaping
  // exception terminates inside them -- and they get their own finding);
  // task edges DO propagate, modeling the pool's rethrow protocol.
  std::vector<char> may_throw(graph.nodes.size(), 0);
  for (std::size_t id = 0; id < graph.nodes.size(); ++id) {
    may_throw[id] = graph.nodes[id].throw_sources.empty() ? 0 : 1;
  }
  auto call_guarded = [&](const CallEdge& e) {
    const FunctionNode& caller = graph.nodes[e.caller];
    return e.call_index < caller.calls.size() && caller.calls[e.call_index].guarded;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (const CallEdge& e : graph.edges) {
      if (may_throw[e.caller] != 0 || may_throw[e.callee] == 0) continue;
      if (graph.nodes[e.callee].is_noexcept || call_guarded(e)) continue;
      may_throw[e.caller] = 1;
      changed = true;
    }
  }

  // The deterministic witness for a flagged node: its own smallest-line
  // throw source, else the first (by edge order) may-throwing callee.
  auto witness = [&](std::size_t id) -> std::string {
    const FunctionNode& node = graph.nodes[id];
    const ThrowSource* best = nullptr;
    for (const ThrowSource& src : node.throw_sources) {
      if (best == nullptr || src.line < best->line) best = &src;
    }
    if (best != nullptr) {
      return "`" + best->what + "` at line " + std::to_string(best->line);
    }
    for (const CallEdge& e : graph.edges) {
      if (e.caller != id) continue;
      if (may_throw[e.callee] != 0 && !graph.nodes[e.callee].is_noexcept &&
          !call_guarded(e)) {
        return "the call to '" + graph.nodes[e.callee].qualified + "' at line " +
               std::to_string(e.line);
      }
    }
    return "a reachable throw";
  };

  for (std::size_t id = 0; id < graph.nodes.size(); ++id) {
    const FunctionNode& node = graph.nodes[id];
    if (node.module.empty() || may_throw[id] == 0) continue;
    if (node.is_task_body) continue;  // covered by the pool's rethrow protocol
    if (!node.is_noexcept) continue;  // throwing is part of the signature
    const std::string rule = node.is_dtor ? "dtor-may-throw" : "noexcept-may-throw";
    if (line_suppressed(index, node.file, node.line, rule)) continue;
    if (node.is_dtor) {
      out.push_back(Finding{
          node.file, node.line, rule,
          "destructor '" + node.qualified + "' can throw via " + witness(id) +
              "; destructors are implicitly noexcept, so this terminates the process"});
    } else {
      out.push_back(Finding{node.file, node.line, rule,
                            "'" + node.qualified + "' is declared noexcept but can throw via " +
                                witness(id) + "; drop noexcept or make the path non-throwing"});
    }
  }

  std::sort(out.begin(), out.end(), finding_less);
  return out;
}

std::vector<Finding> run_dead_function_pass(const CallGraph& graph,
                                            const std::vector<Unit>& units) {
  std::vector<Finding> out;
  const std::map<std::string, const Unit*> index = unit_index(units);

  // Candidates: free functions defined under src/.  Methods are reachable
  // through objects in ways name matching over-approximates badly, and main
  // plus task bodies are roots by construction.
  std::map<std::string, std::vector<std::size_t>> candidates;
  for (std::size_t id = 0; id < graph.nodes.size(); ++id) {
    const FunctionNode& node = graph.nodes[id];
    if (node.module.empty() || !node.class_name.empty()) continue;
    if (node.is_task_body || node.name == "main") continue;
    candidates[node.name].push_back(id);
  }
  if (candidates.empty()) return out;

  // Liveness by name reference across the WHOLE analyzed set (CLI, tests,
  // bench, examples are the roots): a name is alive iff it occurs more often
  // than its own definitions and header prototypes account for.  Any
  // reference counts -- calls, address-taken uses, using-declarations -- so
  // the pass errs toward alive, never toward flagging live code (recursion
  // is the documented exception: a self-call keeps a function alive).  Only
  // HEADER prototypes count as self-references: the declaration index can
  // misclassify expression statements in .cpp files (e.g. a call inside an
  // immediately-invoked lambda initializer) as declarations, and counting
  // those would hide real uses.
  std::map<std::string, std::size_t> mentions;
  std::map<std::string, std::size_t> prototypes;
  for (const Unit& unit : units) {
    for (const Token& t : unit.tokens) {
      if (t.kind != TokenKind::kIdent) continue;
      const auto it = mentions.find(t.text);
      if (it != mentions.end()) {
        ++it->second;
      } else if (candidates.count(t.text) != 0) {
        mentions.emplace(t.text, 1);
      }
    }
    if (!unit.is_header) continue;
    for (const Declaration& d : unit.decls) {
      if (d.kind == DeclKind::kFunction && !d.has_body && candidates.count(d.name) != 0) {
        ++prototypes[d.name];
      }
    }
  }

  for (const auto& [name, ids] : candidates) {
    const std::size_t seen = mentions.count(name) != 0 ? mentions.at(name) : 0;
    const std::size_t protos = prototypes.count(name) != 0 ? prototypes.at(name) : 0;
    if (seen > ids.size() + protos) continue;  // referenced somewhere
    std::set<std::pair<std::string, std::size_t>> sites;
    for (const std::size_t id : ids) {
      const FunctionNode& node = graph.nodes[id];
      sites.insert({node.file, node.line});
    }
    std::map<std::string, std::size_t> first_per_file;
    for (const auto& [file, line] : sites) {
      if (first_per_file.count(file) == 0) first_per_file.emplace(file, line);
    }
    for (const auto& [file, line] : first_per_file) {
      if (line_suppressed(index, file, line, "dead-function")) continue;
      out.push_back(Finding{file, line, "dead-function",
                            "free function '" + name +
                                "' is never referenced outside its own declarations "
                                "anywhere in the analyzed tree; delete it"});
    }
  }

  std::sort(out.begin(), out.end(), finding_less);
  return out;
}

bool is_interproc_rule(const std::string& rule) {
  static const std::set<std::string> rules = {
      "contract-violated-call", "dead-function",   "dtor-may-throw",
      "hotpath-unchecked-entry", "lock-order-cycle", "noexcept-may-throw",
      "task-blocking-call",      "task-blocking-io"};
  return rules.count(rule) != 0;
}

std::string interproc_key(const Finding& finding) { return hotpath_key(finding); }

std::string render_interproc_baseline(const std::vector<Finding>& findings) {
  std::set<std::string> keys;
  for (const Finding& f : findings) {
    if (is_interproc_rule(f.rule)) keys.insert(interproc_key(f));
  }
  std::string out =
      "# upn_analyze interprocedural baseline (shrink-only ratchet).\n"
      "# One `file:rule:detail` key per tolerated finding from pass families\n"
      "# 8-11 (lock order, contract propagation, exception safety, dead code).\n"
      "# Keys are line-independent; regenerate with --write-baseline, but only\n"
      "# ever commit deletions.\n";
  for (const std::string& key : keys) out += key + "\n";
  return out;
}

}  // namespace upn::analyze
