// Contract-coverage audit: every public function declared in src/**/*.hpp
// should carry a UPN_REQUIRE/UPN_ENSURE (or UPN_INVARIANT) in its
// definition, or an explicit `upn-contract-waive(reason)` comment inside the
// body -- the proofs-as-code discipline of docs/STATIC_ANALYSIS.md made
// mechanical.  Exemptions, by construction of the IR:
//
//   * trivial bodies (<= 1 statement: accessors, forwarding shims);
//   * constructors/destructors/operators (never indexed as functions);
//   * functions whose definition is not in the analyzed set (nothing to
//     inspect);
//   * private members (not API surface).
//
// Findings are reported at the header declaration line and keyed as
// "<header>:<function>" against the committed baseline
// (tools/analyze/contracts.baseline), so existing debt is frozen and
// coverage can only ratchet up: new uncontracted functions fail CI, removing
// contracts fails CI, and paying debt down means deleting baseline lines.
#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "tools/analyze/passes.hpp"

namespace upn::analyze {

namespace {

/// Definition facts for one function name, merged across every unit that
/// defines it (overloads share coverage: one contracted overload counts).
struct DefinitionFacts {
  bool defined = false;
  bool contracted = false;
  bool waived = false;
  std::size_t max_statements = 0;
};

}  // namespace

std::vector<Finding> run_contract_coverage_pass(const std::vector<Unit>& units) {
  // Definitions anywhere in the analyzed set, by name.  Name collisions
  // across modules are tolerated: the audit then errs toward counting a
  // function as covered, never toward a false finding.
  std::map<std::string, DefinitionFacts> defs;
  for (const Unit& unit : units) {
    for (const Declaration& d : unit.decls) {
      if (d.kind != DeclKind::kFunction || !d.has_body) continue;
      DefinitionFacts& f = defs[d.name];
      f.defined = true;
      f.contracted = f.contracted || d.has_contract;
      f.waived = f.waived || d.has_waiver;
      f.max_statements = std::max(f.max_statements, d.body_statements);
    }
  }

  std::vector<Finding> out;
  for (const Unit& unit : units) {
    if (!unit.is_header || unit.module.empty()) continue;
    // Dedupe per header: one finding per function name even if the header
    // declares several overloads.
    std::vector<std::string> flagged;
    for (const Declaration& d : unit.decls) {
      if (d.kind != DeclKind::kFunction || !d.is_public) continue;
      const auto it = defs.find(d.name);
      if (it == defs.end() || !it->second.defined) continue;
      const DefinitionFacts& f = it->second;
      if (f.contracted || f.waived) continue;
      if (f.max_statements <= 1) continue;  // trivial accessor / shim
      if (std::find(flagged.begin(), flagged.end(), d.name) != flagged.end()) continue;
      if (suppressed(unit.raw[d.line - 1], "contract-coverage")) continue;
      flagged.push_back(d.name);
      out.push_back(Finding{
          unit.path, d.line, "contract-coverage",
          "public function '" + d.name +
              "' has no UPN_REQUIRE/UPN_ENSURE in its definition and no "
              "upn-contract-waive(reason) marker"});
    }
  }
  std::sort(out.begin(), out.end(), finding_less);
  return out;
}

std::set<std::string> parse_baseline(const std::string& content) {
  std::set<std::string> entries;
  for (const std::string& raw_line : split_lines(content)) {
    std::string line = raw_line;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' || line.back() == '\r')) {
      line.pop_back();
    }
    std::size_t b = 0;
    while (b < line.size() && (line[b] == ' ' || line[b] == '\t')) ++b;
    if (b > 0) line = line.substr(b);
    if (!line.empty()) entries.insert(line);
  }
  return entries;
}

std::string baseline_key(const Finding& finding) {
  // "public function 'name' has no ..." -> name.
  const auto open = finding.message.find('\'');
  const auto close = open == std::string::npos ? std::string::npos
                                               : finding.message.find('\'', open + 1);
  const std::string name = close == std::string::npos
                               ? ""
                               : finding.message.substr(open + 1, close - open - 1);
  return finding.file + ":" + name;
}

std::string render_baseline(const std::vector<Finding>& findings) {
  std::string out =
      "# upn_analyze contract-coverage baseline.\n"
      "# One frozen `header:function` per line; the ratchet only goes down.\n"
      "# Regenerate with `upn_analyze --write-baseline ...` after paying debt,\n"
      "# then review the diff: the file may only shrink.\n";
  std::vector<std::string> keys;
  for (const Finding& f : findings) {
    if (f.rule == "contract-coverage") keys.push_back(baseline_key(f));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (const std::string& k : keys) out += k + "\n";
  return out;
}

}  // namespace upn::analyze
