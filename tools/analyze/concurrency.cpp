// Concurrency-safety pass: walks every lambda handed to upn::ThreadPool's
// `.parallel_for(` / `.parallel_map(` and checks the two invariants the
// pool's determinism contract (src/util/par.hpp) rests on:
//
//   par-shared-mutation  Task bodies may write an outer variable captured by
//                        reference ONLY through an index-disjoint subscript
//                        (a subscript expression naming a lambda parameter),
//                        an atomic, or under a lock.  Anything else is a
//                        data race: `total += x` inside parallel_for is the
//                        canonical bug the per-task-buffer + ordered-merge
//                        idiom exists to prevent.
//   par-shared-rng       One upn::Rng advanced from several tasks makes the
//                        draw sequence depend on scheduling.  Tasks derive
//                        private sub-streams with Rng::stream(seed, index).
//
// The analysis is deliberately conservative in BOTH directions: method
// calls on captured objects are not treated as writes (obs counters take
// `.add(...)` concurrently by design), and a body that takes any lock is
// trusted wholesale.  The pass is per-unit and pure, so the engine fans it
// out with the single-file rules.
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "tools/analyze/passes.hpp"

namespace upn::analyze {
namespace {

/// Keywords that can precede an identifier without declaring it.
bool control_keyword(const std::string& t) {
  static const std::set<std::string> kw = {
      "return", "else", "new", "delete", "case", "break", "continue", "goto",
      "throw", "sizeof", "do", "operator", "co_return", "if", "while", "for",
      "switch", "public", "private", "protected", "typename", "template"};
  return kw.count(t) != 0;
}

/// Container/string mutators: a call `name.m(...)` with `m` in this set is a
/// write to `name`.  Atomic RMW names (fetch_add, store, ...) are absent on
/// purpose: those operations are safe under concurrency.
bool mutating_method(const std::string& m) {
  static const std::set<std::string> methods = {
      "push_back", "pop_back", "push_front", "pop_front", "insert", "emplace",
      "emplace_back", "emplace_front", "clear", "resize", "erase", "assign",
      "append", "reserve"};
  return methods.count(m) != 0;
}

struct ParLambda {
  bool ref_default = false;           ///< [&] or [&, ...]
  std::set<std::string> ref_names;    ///< [&x, ...]
  std::set<std::string> value_names;  ///< [x, ...] / [x = expr, ...]
  std::set<std::string> params;       ///< task parameters (the index among them)
  std::size_t body_begin = 0;         ///< first token inside the body braces
  std::size_t body_end = 0;           ///< the closing '}' token
};

/// Token index just past a balanced group opened at `open` ('(' / '[' / '{');
/// toks.size() when unbalanced.
std::size_t skip_group(const std::vector<Token>& toks, std::size_t open) {
  const std::string& o = toks[open].text;
  const std::string c = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (std::size_t k = open; k < toks.size(); ++k) {
    if (toks[k].text == o) ++depth;
    if (toks[k].text == c && --depth == 0) return k + 1;
  }
  return toks.size();
}

/// Parses the lambda whose '[' sits at `open`; false when no body follows.
bool parse_lambda(const std::vector<Token>& toks, std::size_t open, ParLambda& out) {
  const std::size_t captures_end = skip_group(toks, open);  // past ']'
  if (captures_end >= toks.size()) return false;

  for (std::size_t k = open + 1; k + 1 < captures_end; ++k) {
    const Token& t = toks[k];
    if (t.text == "&") {
      if (toks[k + 1].kind == TokenKind::kIdent) {
        out.ref_names.insert(toks[k + 1].text);
        ++k;
      } else {
        out.ref_default = true;
      }
    } else if (t.kind == TokenKind::kIdent) {
      out.value_names.insert(t.text);
      // `name = expr` init-captures: skip the initializer.
      if (toks[k + 1].text == "=") {
        while (k + 1 < captures_end && toks[k + 1].text != ",") ++k;
      }
    }
  }

  std::size_t k = captures_end;
  if (k < toks.size() && toks[k].text == "(") {
    const std::size_t params_end = skip_group(toks, k);  // past ')'
    std::string last_ident;
    int depth = 0;
    for (std::size_t p = k; p < params_end; ++p) {
      const std::string& t = toks[p].text;
      if (t == "(" || t == "[" || t == "{") ++depth;
      if (t == ")" || t == "]" || t == "}") --depth;
      if (toks[p].kind == TokenKind::kIdent) last_ident = t;
      if (depth == 1 && t == ",") {
        if (!last_ident.empty()) out.params.insert(last_ident);
        last_ident.clear();
      }
      if (t == "=") {  // default argument: the name came just before
        if (!last_ident.empty()) out.params.insert(last_ident);
        while (p + 1 < params_end && toks[p + 1].text != "," && toks[p + 1].text != ")") ++p;
        last_ident.clear();
      }
    }
    if (!last_ident.empty()) out.params.insert(last_ident);
    k = params_end;
  }
  // Trailing specifiers / return type before the body.
  while (k < toks.size() && toks[k].text != "{" && toks[k].text != ";" &&
         toks[k].text != ")") {
    ++k;
  }
  if (k >= toks.size() || toks[k].text != "{") return false;
  out.body_begin = k + 1;
  out.body_end = skip_group(toks, k) - 1;  // index of the closing '}'
  return out.body_end < toks.size();
}

}  // namespace

std::vector<Finding> run_concurrency_pass(const Unit& unit) {
  const std::vector<Token>& toks = unit.tokens;
  std::vector<Finding> out;

  auto emit = [&](std::size_t line_no, const char* rule, std::string message) {
    if (line_no >= 1 && line_no <= unit.raw.size() &&
        suppressed(unit.raw[line_no - 1], rule)) {
      return;
    }
    out.push_back(Finding{unit.path, line_no, rule, std::move(message)});
  };

  // A name declared anywhere in the unit on a line mentioning `atomic` is
  // treated as atomic (covers std::atomic<T> x and vector<atomic<T>> xs).
  auto is_atomic = [&](const std::string& name) {
    for (const std::string& line : unit.code) {
      if (line.find("atomic") != std::string::npos && contains_word(line, name)) return true;
    }
    return false;
  };

  // Outer upn::Rng declarations: `Rng [&|*] name` token patterns, keyed by
  // name with the declaring token index (to tell outer from body-local).
  std::vector<std::pair<std::string, std::size_t>> rng_decls;
  for (std::size_t k = 0; k + 1 < toks.size(); ++k) {
    if (toks[k].text != "Rng" || toks[k].kind != TokenKind::kIdent) continue;
    std::size_t n = k + 1;
    if (toks[n].text == "&" || toks[n].text == "*") ++n;
    if (n < toks.size() && toks[n].kind == TokenKind::kIdent) {
      rng_decls.emplace_back(toks[n].text, k);
    }
  }

  for (std::size_t k = 0; k + 1 < toks.size(); ++k) {
    if (toks[k].kind != TokenKind::kIdent) continue;
    const std::string& name = toks[k].text;
    if (name != "parallel_for" && name != "parallel_map") continue;
    // Call sites only: `pool.parallel_for(...)`; declarations/definitions in
    // src/util/par.hpp are preceded by a type, not '.'.
    if (k == 0 || toks[k - 1].text != ".") continue;

    // Skip explicit template arguments, then require the call parens.
    std::size_t call = k + 1;
    if (call < toks.size() && toks[call].text == "<") {
      int depth = 0;
      while (call < toks.size()) {
        if (toks[call].text == "<") ++depth;
        if (toks[call].text == ">" && --depth == 0) {
          ++call;
          break;
        }
        ++call;
      }
    }
    if (call >= toks.size() || toks[call].text != "(") continue;
    const std::size_t call_end = skip_group(toks, call);

    // The task lambda, when written inline.
    std::size_t lam = call + 1;
    while (lam < call_end && toks[lam].text != "[") ++lam;
    if (lam >= call_end) continue;
    ParLambda lambda;
    if (!parse_lambda(toks, lam, lambda)) continue;

    const std::size_t b = lambda.body_begin;
    const std::size_t e = lambda.body_end;

    // A body that takes any lock is trusted wholesale.
    bool locked = false;
    for (std::size_t j = b; j < e; ++j) {
      const std::string& t = toks[j].text;
      if (t == "lock_guard" || t == "unique_lock" || t == "scoped_lock" || t == "mutex") {
        locked = true;
        break;
      }
    }

    // Body-local names: lambda parameters plus every identifier that appears
    // in a declaration position (`Type name`, `auto& name`, `Type* name`).
    std::set<std::string> locals = lambda.params;
    for (std::size_t j = b; j < e; ++j) {
      if (toks[j].kind != TokenKind::kIdent || control_keyword(toks[j].text)) continue;
      if (j == b) continue;
      const Token& prev = toks[j - 1];
      const bool after_type =
          prev.kind == TokenKind::kIdent && !control_keyword(prev.text);
      const bool after_ref =
          (prev.text == "&" || prev.text == "*" || prev.text == ">") && j >= 2 &&
          toks[j - 2].kind == TokenKind::kIdent && !control_keyword(toks[j - 2].text);
      if (after_type || after_ref) locals.insert(toks[j].text);
    }

    std::set<std::pair<std::size_t, std::string>> reported;

    // par-shared-rng: outer Rng objects used by the task body.
    for (const auto& [rng_name, decl_tok] : rng_decls) {
      if (decl_tok >= b && decl_tok < e) continue;  // declared inside the body
      if (locals.count(rng_name) != 0) continue;    // shadowed by a body decl
      for (std::size_t j = b; j < e; ++j) {
        if (toks[j].kind != TokenKind::kIdent || toks[j].text != rng_name) continue;
        if (reported.insert({toks[j].line, "rng:" + rng_name}).second) {
          emit(toks[j].line, "par-shared-rng",
               "upn::Rng '" + rng_name +
                   "' is shared across parallel tasks, making the draw sequence "
                   "depend on scheduling; derive a private sub-stream per task with "
                   "Rng::stream(seed, task_index)");
        }
        break;
      }
    }

    if (locked) continue;

    // par-shared-mutation: writes to by-reference captured outer names.
    for (std::size_t j = b; j < e; ++j) {
      if (toks[j].kind != TokenKind::kIdent) continue;
      const std::string& target = toks[j].text;
      if (toks[j - 1].text == "." || toks[j - 1].text == ":" ||
          toks[j - 1].text == "::") {
        continue;  // member access / label / scope-qualified
      }

      // Walk past member accesses and subscripts to the mutating operator.
      std::size_t tail = j;
      bool subscripted = false;
      bool disjoint = false;
      std::string method;
      while (tail + 1 < e) {
        if (toks[tail + 1].text == "[") {
          const std::size_t close = skip_group(toks, tail + 1);  // past ']'
          for (std::size_t s = tail + 2; s + 1 < close; ++s) {
            if (toks[s].kind == TokenKind::kIdent && lambda.params.count(toks[s].text) != 0) {
              disjoint = true;
            }
          }
          subscripted = true;
          tail = close - 1;
          continue;
        }
        if (toks[tail + 1].text == "." && tail + 2 < e &&
            toks[tail + 2].kind == TokenKind::kIdent) {
          if (tail + 3 < e && toks[tail + 3].text == "(") {
            method = toks[tail + 2].text;
            break;
          }
          tail += 2;
          continue;
        }
        break;
      }

      bool write = false;
      if (!method.empty()) {
        write = mutating_method(method);
      } else if (tail + 1 < e) {
        const std::string& t1 = toks[tail + 1].text;
        const std::string t2 = tail + 2 < e ? toks[tail + 2].text : "";
        const std::string before = toks[j - 1].text;
        const bool cmp_tail = before == "=" || before == "<" || before == ">" ||
                              before == "!" || before == "+" || before == "-";
        if (t1 == "=" && t2 != "=" && !cmp_tail) write = true;
        if ((t1 == "+" || t1 == "-" || t1 == "*" || t1 == "/" || t1 == "%" ||
             t1 == "&" || t1 == "|" || t1 == "^") &&
            t2 == "=" && (tail + 3 >= e || toks[tail + 3].text != "=")) {
          write = true;
        }
        if ((t1 == "+" && t2 == "+") || (t1 == "-" && t2 == "-")) write = true;
        if (j >= 2 && ((before == "+" && toks[j - 2].text == "+") ||
                       (before == "-" && toks[j - 2].text == "-"))) {
          write = true;  // prefix ++ / --
        }
      }
      if (!write) continue;
      if (subscripted && disjoint) continue;  // out[i] = ... per-task slot
      if (locals.count(target) != 0) continue;
      if (lambda.value_names.count(target) != 0) continue;  // task-private copy
      if (!lambda.ref_default && lambda.ref_names.count(target) == 0) continue;
      if (is_atomic(target)) continue;
      if (!reported.insert({toks[j].line, target}).second) continue;
      emit(toks[j].line, "par-shared-mutation",
           "'" + target +
               "' is captured by reference and written inside a parallel task "
               "without an index-disjoint subscript, an atomic, or a lock; "
               "accumulate into per-task buffers and merge in task order");
    }
  }

  std::sort(out.begin(), out.end(), finding_less);
  return out;
}

}  // namespace upn::analyze
