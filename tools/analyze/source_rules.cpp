// Single-file rules over the shared IR: the upn_lint source rules of PR 2
// ported onto Unit, plus the flow-sensitive token rules new in upn_analyze.
// upn::lint::lint_source delegates here, so the two CLIs cannot drift.
#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "tools/analyze/passes.hpp"

namespace upn::analyze {
namespace {

bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---- float-equality helpers (moved verbatim from tools/lint) --------------

/// A token that parses as a floating-point literal (1.0, .5f, 2e9, 0x1p-53).
bool is_float_literal(const std::string& token) {
  if (token.empty()) return false;
  bool digit = false, point_or_exp = false;
  for (std::size_t i = 0; i < token.size(); ++i) {
    const char c = token[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c == '.') {
      point_or_exp = true;
    } else if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') && digit) {
      point_or_exp = true;
    } else if ((c == '+' || c == '-') && i > 0 &&
               (token[i - 1] == 'e' || token[i - 1] == 'E' || token[i - 1] == 'p' ||
                token[i - 1] == 'P')) {
      // exponent sign
    } else if ((c == 'f' || c == 'F' || c == 'l' || c == 'L') && i + 1 == token.size()) {
      // suffix
    } else if ((c == 'x' || c == 'X') && i == 1 && token[0] == '0') {
      // hex float prefix
    } else if (std::isxdigit(static_cast<unsigned char>(c)) && token.size() > 1 &&
               token[0] == '0' && (token[1] == 'x' || token[1] == 'X')) {
      digit = true;
    } else {
      return false;
    }
  }
  return digit && point_or_exp;
}

std::string token_before(const std::string& code, std::size_t pos) {
  std::size_t end = pos;
  while (end > 0 && code[end - 1] == ' ') --end;
  std::size_t start = end;
  while (start > 0 && (ident_char(code[start - 1]) || code[start - 1] == '.' ||
                       code[start - 1] == '+' || code[start - 1] == '-')) {
    --start;
  }
  // Trim a leading sign that belongs to the expression, not the literal.
  while (start < end && (code[start] == '+' || code[start] == '-')) ++start;
  return code.substr(start, end - start);
}

std::string token_after(const std::string& code, std::size_t pos) {
  std::size_t start = pos;
  while (start < code.size() && code[start] == ' ') ++start;
  if (start < code.size() && (code[start] == '+' || code[start] == '-')) ++start;
  std::size_t end = start;
  while (end < code.size() && (ident_char(code[end]) || code[end] == '.' ||
                               ((code[end] == '+' || code[end] == '-') && end > start &&
                                (code[end - 1] == 'e' || code[end - 1] == 'E' ||
                                 code[end - 1] == 'p' || code[end - 1] == 'P')))) {
    ++end;
  }
  return code.substr(start, end - start);
}

// ---- flow-sensitive token rules -------------------------------------------

/// Narrow integer destination types for `narrowing-cast`.  Casts to 32-bit
/// types are idiomatic here (node counts fit easily); casts to 8/16-bit
/// types silently truncate real quantities and need a nearby contract (or a
/// suppression) establishing the range.
bool is_narrow_int_type(const std::string& joined) {
  return joined == "int8_t" || joined == "uint8_t" || joined == "int16_t" ||
         joined == "uint16_t" || joined == "short" || joined == "unsignedshort" ||
         joined == "shortint" || joined == "signedchar";
}

bool contract_adjacent(const std::vector<std::string>& code, std::size_t line_no) {
  const std::size_t lo = line_no > 3 ? line_no - 3 : 1;
  const std::size_t hi = std::min(code.size(), line_no + 1);
  for (std::size_t l = lo; l <= hi; ++l) {
    const std::string& c = code[l - 1];
    if (c.find("UPN_REQUIRE") != std::string::npos ||
        c.find("UPN_ENSURE") != std::string::npos ||
        c.find("UPN_INVARIANT") != std::string::npos) {
      return true;
    }
  }
  return false;
}

template <typename Emit>
void run_flow_rules(const Unit& unit, const Emit& emit) {
  const std::vector<Token>& toks = unit.tokens;
  const bool par_exempt = unit.path.find("src/util/par.") != std::string::npos;

  auto text = [&](std::size_t k) -> const std::string& { return toks[k].text; };

  for (std::size_t k = 0; k < toks.size(); ++k) {
    if (toks[k].kind != TokenKind::kIdent) continue;
    const std::string& t = text(k);

    // rng-by-value: `(Rng name` / `, Rng name` / `(const Rng name`.
    if (t == "Rng" && k + 1 < toks.size() && toks[k + 1].kind == TokenKind::kIdent) {
      std::size_t p = k;
      if (p >= 2 && text(p - 1) == "::" && text(p - 2) == "upn") p -= 2;
      if (p >= 1 && text(p - 1) == "const") p -= 1;
      if (p >= 1 && (text(p - 1) == "(" || text(p - 1) == ",")) {
        emit(toks[k].line, "rng-by-value",
             "parameter '" + text(k + 1) +
                 "' takes upn::Rng by value, forking the stream state; pass Rng& or "
                 "derive a per-task sub-stream with Rng::stream(seed, index)");
      }
    }

    // narrowing-cast: static_cast< narrow-int > with no adjacent contract.
    if (t == "static_cast" && k + 1 < toks.size() && text(k + 1) == "<") {
      std::string joined;
      std::size_t j = k + 2;
      int depth = 1;
      while (j < toks.size() && depth > 0) {
        if (text(j) == "<") ++depth;
        if (text(j) == ">") {
          if (--depth == 0) break;
        }
        if (toks[j].kind == TokenKind::kIdent && text(j) != "std") joined += text(j);
        ++j;
      }
      if (is_narrow_int_type(joined) && !contract_adjacent(unit.code, toks[k].line)) {
        emit(toks[k].line, "narrowing-cast",
             "static_cast to " + joined +
                 " truncates silently; add a UPN_REQUIRE/UPN_ENSURE within 3 lines "
                 "establishing the range, or suppress with a reason");
      }
    }

    // no-raw-thread: std::thread / std::jthread construction or type use
    // outside src/util/par (std::thread::id and std::this_thread are fine).
    if ((t == "thread" || t == "jthread") && k >= 2 && text(k - 1) == "::" &&
        text(k - 2) == "std" && !(k + 1 < toks.size() && text(k + 1) == "::")) {
      if (!par_exempt) {
        emit(toks[k].line, "no-raw-thread",
             "std::" + t +
                 " outside src/util/par; route parallelism through upn::ThreadPool so "
                 "width, determinism, and obs stats stay centralized");
      }
    }

    // thread-detach: `.detach()` / `->detach()` anywhere.
    if (t == "detach" && k >= 1 && k + 1 < toks.size() && text(k + 1) == "(" &&
        (text(k - 1) == "." ||
         (text(k - 1) == ">" && k >= 2 && text(k - 2) == "-"))) {
      emit(toks[k].line, "thread-detach",
           "detached threads outlive their resources and can never be joined "
           "deterministically; keep the handle and join it");
    }
  }
}

}  // namespace

std::vector<Finding> run_single_file_rules(const Unit& unit) {
  const std::string& path = unit.path;
  const std::vector<std::string>& raw = unit.raw;
  const std::vector<std::string>& code = unit.code;

  std::vector<Finding> out;
  auto emit = [&](std::size_t line_no, const char* rule, std::string message) {
    if (line_no >= 1 && line_no <= raw.size() && suppressed(raw[line_no - 1], rule)) return;
    out.push_back(Finding{path, line_no, rule, std::move(message)});
  };

  if (has_suffix(path, ".hpp")) {
    bool found = false;
    for (const std::string& line : raw) {
      if (line.find("#pragma once") != std::string::npos) {
        found = true;
        break;
      }
    }
    if (!found) {
      emit(1, "pragma-once", "header is missing '#pragma once' (multiple inclusion hazard)");
    }
  }

  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    const std::size_t line_no = i + 1;

    if (contains_word(line, "rand") || contains_word(line, "srand")) {
      emit(line_no, "no-std-rand",
           "rand()/srand() are not reproducible across platforms; use upn::Rng");
    }
    for (const char* bad : {"std::random_device", "std::mt19937",
                            "std::default_random_engine", "std::minstd_rand"}) {
      if (line.find(bad) != std::string::npos) {
        emit(line_no, "no-unseeded-rng",
             std::string{bad} +
                 " breaks seed-reproducibility; thread an explicit upn::Rng instead");
        break;
      }
    }
    if (line.find("std::endl") != std::string::npos) {
      emit(line_no, "no-endl",
           "std::endl flushes on every call (quadratic in emission loops); use '\\n'");
    }
    for (std::size_t pos = 0; pos + 1 < line.size(); ++pos) {
      const bool eq = line[pos] == '=' && line[pos + 1] == '=';
      const bool neq = line[pos] == '!' && line[pos + 1] == '=';
      if (!eq && !neq) continue;
      if (pos > 0 && (line[pos - 1] == '=' || line[pos - 1] == '!' ||
                      line[pos - 1] == '<' || line[pos - 1] == '>')) {
        continue;  // tail of <=, >=, ==, !=
      }
      if (pos + 2 < line.size() && line[pos + 2] == '=') {
        ++pos;
        continue;  // head of a wider operator
      }
      const std::string lhs = token_before(line, pos);
      const std::string rhs = token_after(line, pos + 2);
      if (is_float_literal(lhs) || is_float_literal(rhs)) {
        emit(line_no, "float-equality",
             "exact comparison against a floating-point literal; compare with a "
             "tolerance or restructure");
        break;
      }
    }
  }

  run_flow_rules(unit, emit);

  std::sort(out.begin(), out.end(), finding_less);
  return out;
}

}  // namespace upn::analyze
