#include "tools/analyze/passes.hpp"

#include <tuple>

namespace upn::analyze {

std::string Finding::format() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

bool finding_less(const Finding& a, const Finding& b) {
  return std::tie(a.file, a.line, a.rule, a.message) <
         std::tie(b.file, b.line, b.rule, b.message);
}

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> catalog = {
      {"baseline-stale-entry",
       "a ratcheting baseline entry (hotpath or interproc) matches no current finding; the "
       "ratchet only shrinks, so delete it"},
      {"contract-coverage",
       "public header function whose definition carries no UPN_REQUIRE/UPN_ENSURE and no "
       "upn-contract-waive(reason) marker"},
      {"contract-violated-call",
       "an integer-literal argument at a resolved call site provably violates the callee's "
       "UPN_REQUIRE precondition"},
      {"dead-function",
       "a free src/ function whose name is never referenced outside its own declarations "
       "anywhere in the analyzed tree"},
      {"dtor-may-throw",
       "a destructor (implicitly noexcept) with a reachable throw path; an escaping "
       "exception terminates the process"},
      {"float-equality",
       "exact ==/!= against a floating-point literal; compare with a tolerance"},
      {"hotpath-alloc",
       "heap allocation inside a loop in a hotpath-declared module; hoist it or use a "
       "preallocated buffer"},
      {"hotpath-by-value-param",
       "a container/string parameter taken by value in a hotpath-declared module; take "
       "const& instead"},
      {"hotpath-container",
       "std::deque/std::map/std::list in a hotpath-declared module; prefer node-indexed "
       "vectors or flat arrays"},
      {"hotpath-unchecked-entry",
       "a public uncontracted function in a hotpath-declared module called from another "
       "module; the paper's bounds hold only when callers establish preconditions"},
      {"hotpath-virtual",
       "virtual dispatch declared in a hotpath-declared module; inner loops need "
       "inlinable calls"},
      {"include-cycle", "the #include graph contains a cycle through this file"},
      {"layering-declared-cycle",
       "the declared module DAG in docs/ARCHITECTURE.layers is cyclic"},
      {"layering-stale-waiver",
       "a waived module edge no longer occurs; delete the waiver"},
      {"layering-undeclared-edge",
       "a cross-module #include not declared in docs/ARCHITECTURE.layers and not waived"},
      {"layering-undeclared-module",
       "a layer dependency names a module the layers file never declares"},
      {"layering-unknown-module",
       "a src/ module missing from docs/ARCHITECTURE.layers"},
      {"layers-malformed", "unparseable line in the layers file"},
      {"lock-order-cycle",
       "the observed held-before relation over mutexes is cyclic; two threads taking the "
       "locks in opposite order deadlock"},
      {"narrowing-cast",
       "static_cast to a narrower integer type with no adjacent contract establishing the "
       "range"},
      {"no-endl", "std::endl flushes on every call; use '\\n'"},
      {"no-raw-thread",
       "std::thread outside src/util/par; all parallelism flows through upn::ThreadPool"},
      {"no-std-rand", "rand()/srand() are not reproducible across platforms; use upn::Rng"},
      {"no-unseeded-rng",
       "std:: random engines break seed-reproducibility; thread an explicit upn::Rng"},
      {"noexcept-may-throw",
       "a noexcept function with a reachable throw path (throw, contract macros in throw "
       "mode, or allocation); an escaping exception terminates the process"},
      {"par-shared-mutation",
       "a by-reference captured variable is written inside a parallel task without "
       "index-disjoint writes, atomics, or a lock"},
      {"par-shared-rng",
       "an outer upn::Rng is used inside a parallel task; derive per-task sub-streams "
       "with Rng::stream(seed, index)"},
      {"pragma-once", "header is missing #pragma once"},
      {"rng-by-value",
       "upn::Rng parameter taken by value forks the stream state; pass Rng& or derive a "
       "sub-stream with Rng::stream(seed, index)"},
      {"taint-address",
       "a value derived from pointer identity flows into a deterministic sink; pointer "
       "values vary run to run"},
      {"taint-thread-id",
       "a value derived from std::thread::id flows into a deterministic sink; thread "
       "identity depends on scheduling"},
      {"taint-timing",
       "a raw clock value flows into a deterministic sink; timing belongs on the kTiming "
       "side of the obs split"},
      {"taint-unordered-order",
       "a value carrying unordered-container iteration order flows into a deterministic "
       "sink; sort first or use std::map"},
      {"task-blocking-call",
       "a lock acquisition or condition-variable wait reachable from a ThreadPool task "
       "body; blocked workers stall the pool"},
      {"task-blocking-io",
       "file/stream IO reachable from a ThreadPool task body; IO latency stalls a pool "
       "worker"},
      {"thread-detach",
       "detached threads outlive their resources and break deterministic joins"},
      {"unused-include",
       "no name from the included header's transitive declarations is used; drop the "
       "include"},
  };
  return catalog;
}

}  // namespace upn::analyze
