// Determinism-taint pass: per-file flow analysis from nondeterminism
// sources to deterministic sinks.  This subsumes the retired token-level
// `unordered-iteration` / `no-raw-timing` rules: instead of banning the
// constructs outright, the pass tracks WHERE their values go and fires only
// when one reaches an output that must be byte-stable across runs and
// thread counts.
//
// Sources (each with its own rule id):
//   taint-unordered-order  loop variables of a range-for over a variable
//                          declared with an OUTERMOST unordered_{map,set}
//   taint-timing           std::chrono clocks, clock_gettime/gettimeofday,
//                          upn::obs::now_ns (exempt in src/obs/ and
//                          bench/harness.*, the sanctioned kTiming side)
//   taint-thread-id        std::this_thread::get_id(), std::thread::id
//   taint-address          reinterpret_cast to uintptr_t/intptr_t,
//                          std::hash over a pointer type
//
// Propagation: assignment, compound assignment, and container insertion of
// a tainted value taints the destination.  Sanitizers for the unordered
// kind: std::sort over the variable, and insertion into a variable declared
// std::set / std::map (re-ordering restores determinism).
//
// Sinks: the artifact writers (write_protocol/.upnp, write_embedding/.upne,
// write_path_schedule/.upns, write_fault_plan/.upnf), the obs snapshot
// exporters, and the UPN_OBS_* deterministic counter macros.  Sink calls may
// span lines; arguments are joined across the balanced parens.
#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/analyze/passes.hpp"

namespace upn::analyze {
namespace {

bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Variable names declared in this file with an OUTERMOST container from
/// `types` (nested uses like vector<unordered_map<...>> do not count:
/// iterating the vector is deterministic).
std::vector<std::string> outermost_decls(const std::vector<std::string>& code,
                                         const std::vector<const char*>& types) {
  std::vector<std::string> names;
  for (const std::string& line : code) {
    for (const char* type : types) {
      for (std::size_t pos = line.find(type); pos != std::string::npos;
           pos = line.find(type, pos + 1)) {
        if (!word_at(line, pos, type)) continue;
        std::size_t type_start = pos;
        if (type_start >= 5 && line.compare(type_start - 5, 5, "std::") == 0) {
          type_start -= 5;
        }
        std::size_t before = type_start;
        while (before > 0 && line[before - 1] == ' ') --before;
        if (before > 0 && (line[before - 1] == '<' || line[before - 1] == ',')) continue;
        std::size_t cursor = line.find('<', pos);
        if (cursor == std::string::npos) continue;
        int depth = 0;
        while (cursor < line.size()) {
          if (line[cursor] == '<') ++depth;
          if (line[cursor] == '>') {
            --depth;
            if (depth == 0) break;
          }
          ++cursor;
        }
        if (cursor >= line.size()) continue;  // multi-line declaration: give up
        std::size_t name_start = cursor + 1;
        while (name_start < line.size() &&
               (line[name_start] == ' ' || line[name_start] == '&' || line[name_start] == '*')) {
          ++name_start;
        }
        std::size_t name_end = name_start;
        while (name_end < line.size() && ident_char(line[name_end])) ++name_end;
        if (name_end > name_start) {
          names.push_back(line.substr(name_start, name_end - name_start));
        }
      }
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

/// The identifier a range-for iterates, or "" if the line has none.
std::string range_for_target(const std::string& code) {
  for (std::size_t pos = code.find("for"); pos != std::string::npos;
       pos = code.find("for", pos + 1)) {
    if (!word_at(code, pos, "for")) continue;
    const std::size_t open = code.find('(', pos);
    if (open == std::string::npos) return "";
    int depth = 0;
    std::size_t colon = std::string::npos;
    std::size_t close = std::string::npos;
    for (std::size_t i = open; i < code.size(); ++i) {
      if (code[i] == '(') ++depth;
      if (code[i] == ')') {
        --depth;
        if (depth == 0) {
          close = i;
          break;
        }
      }
      if (code[i] == ':' && depth == 1 && colon == std::string::npos) {
        if ((i + 1 < code.size() && code[i + 1] == ':') || (i > 0 && code[i - 1] == ':')) {
          continue;  // '::' scope operator
        }
        colon = i;
      }
    }
    if (colon == std::string::npos || close == std::string::npos) continue;
    std::string expr = code.substr(colon + 1, close - colon - 1);
    std::size_t start = 0;
    while (start < expr.size() && expr[start] == ' ') ++start;
    std::size_t end = start;
    while (end < expr.size() && ident_char(expr[end])) ++end;
    std::string rest = expr.substr(end);
    rest.erase(std::remove(rest.begin(), rest.end(), ' '), rest.end());
    if (!rest.empty()) continue;
    return expr.substr(start, end - start);
  }
  return "";
}

/// The loop variables of a range-for line: the idents of a structured
/// binding `[k, v]`, else the last identifier before the ':'.
std::vector<std::string> range_for_vars(const std::string& code) {
  std::vector<std::string> vars;
  const std::size_t open = code.find('(');
  if (open == std::string::npos) return vars;
  std::size_t colon = std::string::npos;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == ':' &&
        !((i + 1 < code.size() && code[i + 1] == ':') || (i > 0 && code[i - 1] == ':'))) {
      colon = i;
      break;
    }
  }
  if (colon == std::string::npos) return vars;
  const std::string decl = code.substr(open + 1, colon - open - 1);
  const std::size_t bracket = decl.find('[');
  if (bracket != std::string::npos) {
    const std::size_t close = decl.find(']', bracket);
    std::string name;
    for (std::size_t i = bracket + 1; i < std::min(close, decl.size()); ++i) {
      if (ident_char(decl[i])) {
        name += decl[i];
      } else if (!name.empty()) {
        vars.push_back(name);
        name.clear();
      }
    }
    if (!name.empty()) vars.push_back(name);
    return vars;
  }
  std::string last;
  std::string cur;
  for (const char c : decl) {
    if (ident_char(c)) {
      cur += c;
    } else {
      if (!cur.empty()) last = cur;
      cur.clear();
    }
  }
  if (!cur.empty()) last = cur;
  if (!last.empty()) vars.push_back(last);
  return vars;
}

/// The identifier ending just before `pos` (skipping spaces), or "".
std::string ident_before(const std::string& code, std::size_t pos) {
  std::size_t end = pos;
  while (end > 0 && code[end - 1] == ' ') --end;
  std::size_t start = end;
  while (start > 0 && ident_char(code[start - 1])) --start;
  return code.substr(start, end - start);
}

/// The assignment target of the line: the identifier before the first
/// depth-0 plain or compound `=` (never `==`, `<=`, `>=`, `!=`), or "".
std::string assign_target(const std::string& code) {
  int depth = 0;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '(' || c == '[') ++depth;
    if (c == ')' || c == ']') --depth;
    if (c != '=' || depth != 0) continue;
    if (i + 1 < code.size() && code[i + 1] == '=') {
      ++i;
      continue;
    }
    if (i > 0) {
      const char p = code[i - 1];
      if (p == '=' || p == '<' || p == '>' || p == '!') continue;
      if (p == '+' || p == '-' || p == '*' || p == '/' || p == '%' || p == '&' ||
          p == '|' || p == '^') {
        return ident_before(code, i - 1);  // compound assignment
      }
    }
    return ident_before(code, i);
  }
  return "";
}

struct Taint {
  std::string rule;    ///< the rule id this taint reports under
  std::size_t origin;  ///< 1-based line of the source
  std::string what;    ///< human description of the source
};

struct Sink {
  const char* name;
  const char* description;
};

const Sink kSinks[] = {
    {"write_protocol", "the .upnp protocol writer"},
    {"write_embedding", "the .upne embedding writer"},
    {"write_path_schedule", "the .upns schedule writer"},
    {"write_fault_plan", "the .upnf fault-plan writer"},
    {"write_snapshot_text", "the obs snapshot exporter"},
    {"write_snapshot_json", "the obs snapshot exporter"},
    {"snapshot_text", "the obs snapshot exporter"},
    {"snapshot_json", "the obs snapshot exporter"},
    {"UPN_OBS_COUNT", "a deterministic obs counter"},
    {"UPN_OBS_GAUGE_MAX", "a deterministic obs gauge"},
    {"UPN_OBS_HIST", "a deterministic obs histogram"},
};

bool is_timing_source(const std::string& line) {
  return line.find("std::chrono") != std::string::npos ||
         contains_word(line, "steady_clock") || contains_word(line, "system_clock") ||
         contains_word(line, "high_resolution_clock") ||
         contains_word(line, "clock_gettime") || contains_word(line, "gettimeofday") ||
         contains_word(line, "now_ns");
}

bool is_thread_id_source(const std::string& line) {
  return contains_word(line, "get_id") || line.find("thread::id") != std::string::npos;
}

bool is_address_source(const std::string& line) {
  if (contains_word(line, "reinterpret_cast") &&
      (contains_word(line, "uintptr_t") || contains_word(line, "intptr_t"))) {
    return true;
  }
  const std::size_t hash = line.find("std::hash<");
  if (hash != std::string::npos) {
    const std::size_t close = line.find('>', hash);
    if (close != std::string::npos &&
        line.find('*', hash) != std::string::npos && line.find('*', hash) < close) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<Finding> run_determinism_taint_pass(const Unit& unit) {
  const std::vector<std::string>& code = unit.code;
  const std::vector<std::string>& raw = unit.raw;
  std::vector<Finding> out;

  const bool timing_exempt = unit.path.find("src/obs/") != std::string::npos ||
                             unit.path.find("bench/harness.") != std::string::npos;

  const std::vector<std::string> unordered =
      outermost_decls(code, {"unordered_map", "unordered_set"});
  const std::vector<std::string> ordered = outermost_decls(code, {"set", "map"});

  std::map<std::string, Taint> tainted;
  auto taint = [&](const std::string& name, const char* rule, std::size_t origin,
                   const std::string& what) {
    if (name.empty()) return;
    tainted.emplace(name, Taint{rule, origin, what});  // first source wins
  };

  // ---- seed the taint set from the source patterns ------------------------
  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    const std::size_t line_no = i + 1;

    if (!unordered.empty()) {
      const std::string target = range_for_target(line);
      if (!target.empty() &&
          std::binary_search(unordered.begin(), unordered.end(), target)) {
        for (const std::string& var : range_for_vars(line)) {
          taint(var, "taint-unordered-order", line_no,
                "iteration over std::unordered container '" + target + "'");
        }
      }
    }
    if (!timing_exempt && is_timing_source(line)) {
      taint(assign_target(line), "taint-timing", line_no, "a raw clock read");
      // clock_gettime / gettimeofday fill an out-parameter passed as `&ts`.
      if (contains_word(line, "clock_gettime") || contains_word(line, "gettimeofday")) {
        const std::size_t amp = line.find('&');
        if (amp != std::string::npos) {
          std::size_t s = amp + 1;
          std::size_t e = s;
          while (e < line.size() && ident_char(line[e])) ++e;
          taint(line.substr(s, e - s), "taint-timing", line_no, "a raw clock read");
        }
      }
    }
    if (is_thread_id_source(line)) {
      taint(assign_target(line), "taint-thread-id", line_no,
            "std::thread identity");
      // `std::thread::id name;` declarations.
      const std::size_t at = line.find("thread::id");
      if (at != std::string::npos) {
        std::size_t s = at + 10;
        while (s < line.size() && line[s] == ' ') ++s;
        std::size_t e = s;
        while (e < line.size() && ident_char(line[e])) ++e;
        if (e > s) taint(line.substr(s, e - s), "taint-thread-id", line_no,
                         "std::thread identity");
      }
    }
    if (is_address_source(line)) {
      taint(assign_target(line), "taint-address", line_no, "pointer identity");
    }
  }

  // ---- propagate to a fixpoint --------------------------------------------
  auto mentions_tainted = [&](const std::string& text) -> const Taint* {
    for (const auto& [name, t] : tainted) {
      if (contains_word(text, name)) return &t;
    }
    return nullptr;
  };
  auto is_ordered_decl = [&](const std::string& name) {
    return std::binary_search(ordered.begin(), ordered.end(), name);
  };

  for (int round = 0; round < 8; ++round) {
    bool changed = false;
    for (std::size_t i = 0; i < code.size(); ++i) {
      const std::string& line = code[i];

      // std::sort over a variable sanitizes the unordered-order taint.
      if (line.find("sort") != std::string::npos && contains_word(line, "sort")) {
        for (auto it = tainted.begin(); it != tainted.end();) {
          if (it->second.rule == std::string{"taint-unordered-order"} &&
              contains_word(line, it->first) && line.find("sort") < line.find(it->first)) {
            it = tainted.erase(it);
            changed = true;
          } else {
            ++it;
          }
        }
        continue;
      }

      const std::string lhs = assign_target(line);
      if (!lhs.empty() && tainted.count(lhs) == 0) {
        const std::size_t eq = line.find('=');
        const Taint* t = eq == std::string::npos
                             ? nullptr
                             : mentions_tainted(line.substr(eq + 1));
        if (t != nullptr &&
            !(t->rule == std::string{"taint-unordered-order"} && is_ordered_decl(lhs))) {
          tainted.emplace(lhs, *t);
          changed = true;
        }
      }
      // Container fills: `dest.push_back(tainted)` and friends.
      for (const char* method : {".push_back(", ".insert(", ".emplace_back(",
                                 ".emplace(", ".append(", ".push_front("}) {
        const std::size_t at = line.find(method);
        if (at == std::string::npos) continue;
        const std::string dest = ident_before(line, at);
        if (dest.empty() || tainted.count(dest) != 0) continue;
        const Taint* t = mentions_tainted(line.substr(at));
        if (t == nullptr) continue;
        if (t->rule == std::string{"taint-unordered-order"} && is_ordered_decl(dest)) {
          continue;  // re-ordered on insertion: sanitized
        }
        tainted.emplace(dest, *t);
        changed = true;
      }
    }
    if (!changed) break;
  }

  // ---- check the sinks ----------------------------------------------------
  std::set<std::string> reported;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    for (const Sink& sink : kSinks) {
      const std::size_t at = line.find(sink.name);
      if (at == std::string::npos || !word_at(line, at, sink.name)) continue;
      std::size_t open = at + std::string{sink.name}.size();
      while (open < line.size() && line[open] == ' ') ++open;
      if (open >= line.size() || line[open] != '(') continue;

      // Join the argument text across lines until the parens balance.
      std::string args;
      int depth = 0;
      std::size_t l = i;
      std::size_t c = open;
      while (l < code.size()) {
        for (; c < code[l].size(); ++c) {
          if (code[l][c] == '(') ++depth;
          if (code[l][c] == ')') {
            --depth;
            if (depth == 0) break;
          }
          args += code[l][c];
        }
        if (depth == 0) break;
        args += ' ';
        ++l;
        c = 0;
      }

      const std::size_t line_no = i + 1;
      auto emit = [&](const std::string& rule, const std::string& message) {
        if (line_no <= raw.size() && suppressed(raw[line_no - 1], rule)) return;
        if (!reported.insert(std::to_string(line_no) + ":" + rule + ":" + message).second) {
          return;
        }
        out.push_back(Finding{unit.path, line_no, rule, message});
      };

      for (const auto& [name, t] : tainted) {
        if (!contains_word(args, name)) continue;
        emit(t.rule, "'" + name + "' carries " + t.what + " (tainted at line " +
                         std::to_string(t.origin) + ") and flows into " +
                         sink.description + " '" + std::string{sink.name} +
                         "'; deterministic outputs must not depend on it");
      }
      // Direct source expressions inside the sink arguments.
      if (!timing_exempt && is_timing_source(args)) {
        emit("taint-timing", std::string{"a raw clock read feeds "} + sink.description +
                                 " '" + sink.name +
                                 "' directly; timing belongs on the kTiming side of "
                                 "the obs split");
      }
      if (is_thread_id_source(args)) {
        emit("taint-thread-id", std::string{"std::thread identity feeds "} +
                                    sink.description + " '" + sink.name +
                                    "' directly; thread ids depend on scheduling");
      }
      if (is_address_source(args)) {
        emit("taint-address", std::string{"pointer identity feeds "} + sink.description +
                                  " '" + sink.name +
                                  "' directly; addresses vary run to run");
      }
    }
  }

  std::sort(out.begin(), out.end(), finding_less);
  return out;
}

}  // namespace upn::analyze
