// Layering conformance: the observed #include graph of src/ checked against
// the module DAG declared in docs/ARCHITECTURE.layers.
//
// The layers file is the architecture's source of truth; the pass makes it
// binding.  Grammar (one directive per line, '#' starts a comment):
//
//   layer <module>[: <dep> <dep> ...]
//   waive <from> -> <to>: <reason>
//   hotpath <module>
//
// `layer` declares a module and its DIRECT allowed dependencies (transitive
// reachability is not inherited: if core may use routing and routing may use
// topology, core must still declare topology to include it).  `waive`
// tolerates one observed edge outside the DAG with a recorded reason -- the
// escape hatch for instrumentation edges like util -> obs that would
// otherwise be module-level cycles.  `hotpath` marks a declared module for
// the hot-path performance pass (tools/analyze/hotpath.cpp).  Errors:
//
//   layers-malformed           unparseable directive
//   layering-undeclared-module a dep names a module never declared
//   layering-declared-cycle    the declared DAG itself is cyclic
//   layering-unknown-module    a src/ module absent from the file
//   layering-undeclared-edge   an observed cross-module include, not declared,
//                              not waived (reported at the #include line)
//   layering-stale-waiver      a waiver whose edge no longer occurs
//   include-cycle              a file-level #include cycle (reported once, at
//                              the lexicographically smallest member)
#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/analyze/passes.hpp"

namespace upn::analyze {
namespace {

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> words(const std::string& s) {
  std::istringstream stream{s};
  std::vector<std::string> out;
  std::string w;
  while (stream >> w) out.push_back(std::move(w));
  return out;
}

/// Detects a cycle in `graph` (adjacency sorted); returns one witness cycle
/// as "a -> b -> ... -> a", or "" when acyclic.  Deterministic: nodes are
/// visited in sorted order.
std::string find_cycle(const std::map<std::string, std::vector<std::string>>& graph) {
  std::map<std::string, int> state;  // 0 new, 1 on stack, 2 done
  std::vector<std::string> stack;
  std::string witness;

  // NOLINTNEXTLINE(misc-no-recursion): depth is bounded by the module count.
  auto dfs = [&](auto&& self, const std::string& node) -> bool {
    state[node] = 1;
    stack.push_back(node);
    const auto it = graph.find(node);
    if (it != graph.end()) {
      for (const std::string& next : it->second) {
        const int s = state.count(next) != 0 ? state.at(next) : 0;
        if (s == 1) {
          const auto from = std::find(stack.begin(), stack.end(), next);
          witness = next;
          for (auto w = from; w != stack.end(); ++w) {
            if (w != from) witness += " -> " + *w;
          }
          witness += " -> " + next;
          return true;
        }
        if (s == 0 && self(self, next)) return true;
      }
    }
    stack.pop_back();
    state[node] = 2;
    return false;
  };

  for (const auto& [node, deps] : graph) {
    (void)deps;
    if ((state.count(node) == 0 || state.at(node) == 0) && dfs(dfs, node)) return witness;
  }
  return "";
}

}  // namespace

LayerSpec parse_layers(const std::string& path, const std::string& content) {
  LayerSpec spec;
  const std::vector<std::string> lines = split_lines(content);
  for (std::size_t li = 0; li < lines.size(); ++li) {
    std::string line = lines[li];
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t line_no = li + 1;

    if (line.compare(0, 6, "layer ") == 0) {
      const auto colon = line.find(':');
      const std::string name = trim(colon == std::string::npos
                                        ? line.substr(6)
                                        : line.substr(6, colon - 6));
      const std::vector<std::string> deps =
          colon == std::string::npos ? std::vector<std::string>{}
                                     : words(line.substr(colon + 1));
      if (name.empty() || name.find(' ') != std::string::npos) {
        spec.errors.push_back(Finding{path, line_no, "layers-malformed",
                                      "expected 'layer <module>[: <dep>...]'"});
        continue;
      }
      if (spec.deps.count(name) != 0) {
        spec.errors.push_back(Finding{path, line_no, "layers-malformed",
                                      "module '" + name + "' declared twice"});
        continue;
      }
      std::vector<std::string> sorted = deps;
      std::sort(sorted.begin(), sorted.end());
      sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
      spec.deps.emplace(name, std::move(sorted));
      continue;
    }

    if (line.compare(0, 6, "waive ") == 0) {
      // waive <from> -> <to>: <reason>
      const auto arrow = line.find("->");
      const auto colon = line.find(':', arrow == std::string::npos ? 0 : arrow);
      if (arrow == std::string::npos || colon == std::string::npos) {
        spec.errors.push_back(Finding{path, line_no, "layers-malformed",
                                      "expected 'waive <from> -> <to>: <reason>'"});
        continue;
      }
      const std::string from = trim(line.substr(6, arrow - 6));
      const std::string to = trim(line.substr(arrow + 2, colon - arrow - 2));
      const std::string reason = trim(line.substr(colon + 1));
      if (from.empty() || to.empty() || reason.empty()) {
        spec.errors.push_back(
            Finding{path, line_no, "layers-malformed",
                    "waivers need both modules and a non-empty reason"});
        continue;
      }
      spec.waivers[{from, to}] = reason;
      continue;
    }

    if (line.compare(0, 8, "hotpath ") == 0) {
      const std::string name = trim(line.substr(8));
      if (name.empty() || name.find(' ') != std::string::npos) {
        spec.errors.push_back(Finding{path, line_no, "layers-malformed",
                                      "expected 'hotpath <module>'"});
        continue;
      }
      if (spec.hotpaths.count(name) != 0) {
        spec.errors.push_back(Finding{path, line_no, "layers-malformed",
                                      "module '" + name + "' declared hotpath twice"});
        continue;
      }
      spec.hotpaths.emplace(name, line_no);
      continue;
    }

    spec.errors.push_back(Finding{
        path, line_no, "layers-malformed",
        "unknown directive (expected 'layer', 'waive', or 'hotpath')"});
  }
  return spec;
}

std::vector<Finding> run_layering_pass(const std::vector<Unit>& units, const LayerSpec& spec,
                                       const std::string& layers_path) {
  std::vector<Finding> out = spec.errors;

  // Dependencies must name declared modules.
  for (const auto& [mod, deps] : spec.deps) {
    for (const std::string& dep : deps) {
      if (spec.deps.count(dep) == 0) {
        out.push_back(Finding{layers_path, 0, "layering-undeclared-module",
                              "module '" + mod + "' depends on undeclared module '" + dep +
                                  "'"});
      }
    }
  }

  // Hotpath directives must name declared modules.
  for (const auto& [mod, line_no] : spec.hotpaths) {
    if (spec.deps.count(mod) == 0) {
      out.push_back(Finding{layers_path, line_no, "layering-undeclared-module",
                            "hotpath directive names undeclared module '" + mod + "'"});
    }
  }

  // The declared DAG must be acyclic.
  const std::string cycle = find_cycle(spec.deps);
  if (!cycle.empty()) {
    out.push_back(Finding{layers_path, 0, "layering-declared-cycle",
                          "declared module graph is cyclic: " + cycle});
  }

  // Observed cross-module edges from the include graph of src/.
  std::set<std::string> seen_modules;
  std::set<std::pair<std::string, std::string>> observed;
  for (const Unit& unit : units) {
    if (unit.module.empty()) continue;
    seen_modules.insert(unit.module);
    for (const IncludeEdge& inc : unit.includes) {
      if (!inc.quoted) continue;
      const std::string target_module = module_of(inc.target);
      if (target_module.empty() || target_module == unit.module) continue;
      observed.insert({unit.module, target_module});
      if (spec.waivers.count({unit.module, target_module}) != 0) continue;
      const auto it = spec.deps.find(unit.module);
      const bool declared =
          it != spec.deps.end() &&
          std::binary_search(it->second.begin(), it->second.end(), target_module);
      if (!declared) {
        out.push_back(Finding{unit.path, inc.line, "layering-undeclared-edge",
                              "module '" + unit.module + "' includes '" + inc.target +
                                  "' from module '" + target_module +
                                  "', an edge docs/ARCHITECTURE.layers neither declares "
                                  "nor waives"});
      }
    }
  }

  for (const std::string& mod : seen_modules) {
    if (spec.deps.count(mod) == 0) {
      out.push_back(Finding{layers_path, 0, "layering-unknown-module",
                            "module '" + mod +
                                "' exists under src/ but is not declared in the layers "
                                "file"});
    }
  }

  for (const auto& [edge, reason] : spec.waivers) {
    (void)reason;
    if (observed.count(edge) == 0) {
      out.push_back(Finding{layers_path, 0, "layering-stale-waiver",
                            "waiver '" + edge.first + " -> " + edge.second +
                                "' matches no observed include edge; delete it"});
    }
  }

  // File-level include cycles over the whole analyzed set (not just src/):
  // with #pragma once everywhere a cycle silently yields incomplete
  // declarations instead of an error.
  std::map<std::string, std::vector<std::string>> file_graph;
  std::set<std::string> paths;
  for (const Unit& unit : units) paths.insert(unit.path);
  for (const Unit& unit : units) {
    std::vector<std::string> targets;
    for (const IncludeEdge& inc : unit.includes) {
      if (inc.quoted && paths.count(inc.target) != 0) targets.push_back(inc.target);
    }
    std::sort(targets.begin(), targets.end());
    file_graph.emplace(unit.path, std::move(targets));
  }
  const std::string file_cycle = find_cycle(file_graph);
  if (!file_cycle.empty()) {
    const std::string first = file_cycle.substr(0, file_cycle.find(' '));
    out.push_back(Finding{first, 0, "include-cycle",
                          "#include cycle: " + file_cycle});
  }

  std::sort(out.begin(), out.end(), finding_less);
  return out;
}

}  // namespace upn::analyze
