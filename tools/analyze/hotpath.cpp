// Hot-path performance pass: modules declared `hotpath <module>` in
// docs/ARCHITECTURE.layers are audited for the constructs the ROADMAP-1
// data-oriented rewrite is trying to eliminate:
//
//   hotpath-container       std::deque / std::map / std::list -- per-node
//                           allocation and pointer chasing
//   hotpath-alloc           heap allocation (new, make_unique/make_shared,
//                           malloc/calloc/realloc) inside a loop
//   hotpath-virtual         virtual member functions -- dispatch an inner
//                           loop cannot inline
//   hotpath-by-value-param  container/string parameters taken by value
//                           (the sink idiom -- by value then std::move'd in
//                           the same unit -- is exempt)
//
// Existing debt is frozen in tools/analyze/hotpath.baseline and can only
// shrink: the ratchet key is `file:rule:detail` (detail = the first quoted
// token of the message), so findings survive line drift, and entries that
// no longer match anything are themselves findings (baseline-stale-entry,
// emitted by the engine).
#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "tools/analyze/passes.hpp"

namespace upn::analyze {
namespace {

bool banned_container(const std::string& t) {
  return t == "deque" || t == "map" || t == "list";
}

bool copy_heavy_param_type(const std::string& t) {
  return t == "vector" || t == "string" || t == "deque" || t == "map" || t == "list" ||
         t == "set" || t == "unordered_map" || t == "unordered_set" || t == "array";
}

bool allocator_name(const std::string& t) {
  return t == "make_unique" || t == "make_shared" || t == "malloc" || t == "calloc" ||
         t == "realloc";
}

/// Paren groups opened right after these keywords are control headers, not
/// parameter lists.
bool control_header(const std::string& t) {
  return t == "for" || t == "while" || t == "if" || t == "switch" || t == "catch" ||
         t == "return" || t == "sizeof";
}

/// Token index just past the balanced group opened at `open`.
std::size_t skip_group(const std::vector<Token>& toks, std::size_t open,
                       const char* o, const char* c) {
  int depth = 0;
  for (std::size_t k = open; k < toks.size(); ++k) {
    if (toks[k].text == o) ++depth;
    if (toks[k].text == c && --depth == 0) return k + 1;
  }
  return toks.size();
}

/// loop_depth[k] = number of for/while/do bodies enclosing token k.
std::vector<int> compute_loop_depth(const std::vector<Token>& toks) {
  std::vector<int> delta(toks.size() + 1, 0);
  for (std::size_t k = 0; k < toks.size(); ++k) {
    if (toks[k].kind != TokenKind::kIdent) continue;
    const std::string& t = toks[k].text;
    std::size_t body = toks.size();
    if (t == "for" || t == "while") {
      if (k > 0 && toks[k - 1].text == ".") continue;  // .for_each-ish member
      std::size_t open = k + 1;
      if (open >= toks.size() || toks[open].text != "(") continue;
      body = skip_group(toks, open, "(", ")");
    } else if (t == "do") {
      body = k + 1;
    } else {
      continue;
    }
    if (body >= toks.size()) continue;
    std::size_t end;
    if (toks[body].text == "{") {
      end = skip_group(toks, body, "{", "}");
    } else {
      end = body;  // braceless body: to the next ';' at depth 0
      int d = 0;
      while (end < toks.size()) {
        const std::string& x = toks[end].text;
        if (x == "(" || x == "{" || x == "[") ++d;
        if (x == ")" || x == "}" || x == "]") --d;
        if (x == ";" && d == 0) break;
        ++end;
      }
    }
    ++delta[body];
    if (end <= toks.size()) --delta[std::min(end, toks.size())];
  }
  std::vector<int> depth(toks.size(), 0);
  int acc = 0;
  for (std::size_t k = 0; k < toks.size(); ++k) {
    acc += delta[k];
    depth[k] = acc;
  }
  return depth;
}

void audit_unit(const Unit& unit, const std::string& module, std::vector<Finding>& out) {
  const std::vector<Token>& toks = unit.tokens;
  const std::vector<int> loop_depth = compute_loop_depth(toks);
  std::set<std::pair<std::size_t, std::string>> reported;

  // Names the unit moves FROM somewhere: `std::move(name)`.  A by-value
  // container parameter that is moved is the sink idiom, not a copy --
  // skip it.  (Header-only declarations have no body to move in; sanctioned
  // sink signatures there carry an explicit upn-analyze-waive.)
  std::set<std::string> moved_from;
  for (std::size_t k = 0; k + 4 < toks.size(); ++k) {
    if (toks[k].text == "std" && toks[k + 1].text == "::" && toks[k + 2].text == "move" &&
        toks[k + 3].text == "(" && toks[k + 4].kind == TokenKind::kIdent) {
      moved_from.insert(toks[k + 4].text);
    }
  }

  auto emit = [&](std::size_t line_no, const char* rule, const std::string& detail,
                  std::string message) {
    if (line_no >= 1 && line_no <= unit.raw.size() &&
        suppressed(unit.raw[line_no - 1], rule)) {
      return;
    }
    if (!reported.insert({line_no, std::string{rule} + ":" + detail}).second) return;
    out.push_back(Finding{unit.path, line_no, rule, std::move(message)});
  };

  for (std::size_t k = 0; k < toks.size(); ++k) {
    const Token& tok = toks[k];
    if (tok.kind != TokenKind::kIdent) {
      // Parameter lists: a '(' not following a control keyword; inspect
      // depth-1 declarations of the form `std::container<...> name`.
      if (tok.text == "(" &&
          !(k > 0 && toks[k - 1].kind == TokenKind::kIdent &&
            control_header(toks[k - 1].text))) {
        const std::size_t close = skip_group(toks, k, "(", ")") - 1;
        int depth = 0;
        for (std::size_t p = k; p < close && p < toks.size(); ++p) {
          if (toks[p].text == "(") ++depth;
          if (toks[p].text == ")") --depth;
          if (depth != 1) continue;
          if (toks[p].text != "std" || p + 2 >= close) continue;
          if (toks[p + 1].text != "::") continue;
          if (!copy_heavy_param_type(toks[p + 2].text)) continue;
          std::size_t after = p + 3;
          if (after < close && toks[after].text == "<") {
            after = skip_group(toks, after, "<", ">");
          }
          if (after >= close || toks[after].kind != TokenKind::kIdent) continue;
          const std::string& name = toks[after].text;
          const std::string next = after + 1 <= close ? toks[after + 1].text : "";
          if (next != "," && next != ")" && next != "=") continue;
          if (moved_from.count(name) != 0) continue;  // sink parameter
          emit(toks[after].line, "hotpath-by-value-param", name,
               "'" + name + "' takes std::" + toks[p + 2].text +
                   " by value in hot-path module '" + module +
                   "'; the deep copy defeats the inner loops -- take const&");
          p = after;
        }
      }
      continue;
    }

    const std::string& t = tok.text;

    if (banned_container(t) && k >= 2 && toks[k - 1].text == "::" &&
        toks[k - 2].text == "std" && k + 1 < toks.size() && toks[k + 1].text == "<") {
      emit(tok.line, "hotpath-container", t,
           "'" + t + "' (std::" + t + ") used in hot-path module '" + module +
               "'; per-node allocation and pointer chasing defeat the packet "
               "engine's inner loops -- prefer node-indexed vectors or flat arrays");
    }

    if (loop_depth[k] > 0) {
      const bool is_new =
          t == "new" && !(k > 0 && toks[k - 1].text == "operator");
      const bool is_alloc_call =
          allocator_name(t) && k + 1 < toks.size() &&
          (toks[k + 1].text == "(" || toks[k + 1].text == "<");
      if (is_new || is_alloc_call) {
        emit(tok.line, "hotpath-alloc", t,
             "'" + t + "' allocates inside a loop in hot-path module '" + module +
                 "'; hoist the allocation out of the loop or reuse a "
                 "preallocated buffer");
      }
    }

    if (t == "virtual") {
      std::string detail = "function";
      for (std::size_t j = k + 1; j < std::min(toks.size(), k + 12); ++j) {
        if (toks[j].kind == TokenKind::kIdent && j + 1 < toks.size() &&
            toks[j + 1].text == "(") {
          detail = toks[j].text;
          break;
        }
      }
      emit(tok.line, "hotpath-virtual", detail,
           "'" + detail + "' is virtual in hot-path module '" + module +
               "'; virtual dispatch in inner loops defeats inlining -- prefer "
               "static polymorphism or an enum switch");
    }
  }
}

}  // namespace

std::vector<Finding> run_hotpath_pass(const std::vector<Unit>& units,
                                      const LayerSpec& spec) {
  std::vector<Finding> out;
  if (spec.hotpaths.empty()) return out;
  for (const Unit& unit : units) {
    const auto it = spec.hotpaths.find(unit.module);
    if (it == spec.hotpaths.end()) continue;
    audit_unit(unit, unit.module, out);
  }
  std::sort(out.begin(), out.end(), finding_less);
  return out;
}

std::string hotpath_key(const Finding& finding) {
  const auto open = finding.message.find('\'');
  const auto close = open == std::string::npos ? std::string::npos
                                               : finding.message.find('\'', open + 1);
  const std::string detail = close == std::string::npos
                                 ? ""
                                 : finding.message.substr(open + 1, close - open - 1);
  return finding.file + ":" + finding.rule + ":" + detail;
}

std::string render_hotpath_baseline(const std::vector<Finding>& findings) {
  std::string out =
      "# upn_analyze hot-path performance baseline.\n"
      "# One frozen `file:rule:detail` per line; the ratchet only goes down.\n"
      "# Regenerate with `upn_analyze --write-baseline ...` after paying debt,\n"
      "# then review the diff: the file may only shrink.  Stale entries are\n"
      "# themselves findings (baseline-stale-entry).\n";
  std::vector<std::string> keys;
  for (const Finding& f : findings) {
    if (f.rule.compare(0, 8, "hotpath-") == 0) keys.push_back(hotpath_key(f));
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  for (const std::string& k : keys) out += k + "\n";
  return out;
}

}  // namespace upn::analyze
