#include "tools/analyze/ir.hpp"

#include <algorithm>
#include <cctype>
#include <tuple>
#include <utility>

namespace upn::analyze {

namespace {

bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }

}  // namespace

std::vector<std::string> split_lines(const std::string& content) {
  std::vector<std::string> lines;
  std::string::size_type start = 0;
  while (start <= content.size()) {
    const auto end = content.find('\n', start);
    if (end == std::string::npos) {
      if (start < content.size()) lines.push_back(content.substr(start));
      break;
    }
    lines.push_back(content.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

std::vector<std::string> code_view(const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  bool in_block = false;
  for (const std::string& line : lines) {
    std::string code = line;
    char quote = 0;
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (in_block) {
        if (code[i] == '*' && i + 1 < code.size() && code[i + 1] == '/') {
          code[i] = code[i + 1] = ' ';
          ++i;
          in_block = false;
        } else {
          code[i] = ' ';
        }
        continue;
      }
      if (quote != 0) {
        if (code[i] == '\\' && i + 1 < code.size()) {
          code[i] = code[i + 1] = ' ';
          ++i;
        } else if (code[i] == quote) {
          quote = 0;
          code[i] = ' ';
        } else {
          code[i] = ' ';
        }
        continue;
      }
      if (code[i] == '"' || code[i] == '\'') {
        quote = code[i];
        code[i] = ' ';
      } else if (code[i] == '/' && i + 1 < code.size() && code[i + 1] == '/') {
        code.resize(i);
        break;
      } else if (code[i] == '/' && i + 1 < code.size() && code[i + 1] == '*') {
        code[i] = code[i + 1] = ' ';
        ++i;
        in_block = true;
      }
    }
    out.push_back(std::move(code));
  }
  return out;
}

bool word_at(const std::string& code, std::size_t pos, const std::string& word) {
  if (code.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && ident_char(code[pos - 1])) return false;
  if (pos > 0 && code[pos - 1] == ':') {
    // `std::word` still counts; `othernamespace::word` is a different entity.
    if (pos < 5 || code.compare(pos - 5, 5, "std::") != 0) return false;
  }
  const std::size_t end = pos + word.size();
  return end >= code.size() || !ident_char(code[end]);
}

bool contains_word(const std::string& code, const std::string& word) {
  for (std::size_t pos = code.find(word); pos != std::string::npos;
       pos = code.find(word, pos + 1)) {
    if (word_at(code, pos, word)) return true;
  }
  return false;
}

bool suppressed(const std::string& raw_line, const std::string& rule) {
  if (raw_line.find("upn-lint-allow(" + rule + ")") != std::string::npos) return true;
  // upn-analyze-waive(<rule>: <reason>) -- the reason is mandatory, so a
  // waiver always records WHY the rule does not apply at this site.
  const std::string marker = "upn-analyze-waive(" + rule + ":";
  const auto at = raw_line.find(marker);
  if (at == std::string::npos) return false;
  std::size_t p = at + marker.size();
  while (p < raw_line.size() && raw_line[p] == ' ') ++p;
  return p < raw_line.size() && raw_line[p] != ')';
}

std::string module_of(const std::string& path) {
  if (path.compare(0, 4, "src/") != 0) return "";
  // The module is the full directory path under src/, so nested modules
  // like src/routing/online/ are distinct layering units from their parent
  // (they get their own `layer routing/online: ...` declaration).
  const auto last_slash = path.rfind('/');
  if (last_slash == std::string::npos || last_slash < 4) return "";
  return path.substr(4, last_slash - 4);
}

namespace {

// ---- tokenizer ------------------------------------------------------------

std::vector<Token> tokenize(const std::vector<std::string>& code) {
  std::vector<Token> tokens;
  for (std::size_t li = 0; li < code.size(); ++li) {
    const std::string& line = code[li];
    const std::size_t line_no = li + 1;
    std::size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (ident_start(c)) {
        std::size_t end = i + 1;
        while (end < line.size() && ident_char(line[end])) ++end;
        tokens.push_back(Token{line.substr(i, end - i), line_no, TokenKind::kIdent});
        i = end;
        continue;
      }
      const bool digit = std::isdigit(static_cast<unsigned char>(c)) != 0;
      const bool dot_digit = c == '.' && i + 1 < line.size() &&
                             std::isdigit(static_cast<unsigned char>(line[i + 1])) != 0;
      if (digit || dot_digit) {
        std::size_t end = i + 1;
        while (end < line.size()) {
          const char d = line[end];
          if (ident_char(d) || d == '.') {
            ++end;
          } else if ((d == '+' || d == '-') &&
                     (line[end - 1] == 'e' || line[end - 1] == 'E' ||
                      line[end - 1] == 'p' || line[end - 1] == 'P')) {
            ++end;
          } else {
            break;
          }
        }
        tokens.push_back(Token{line.substr(i, end - i), line_no, TokenKind::kNumber});
        i = end;
        continue;
      }
      if (c == ':' && i + 1 < line.size() && line[i + 1] == ':') {
        tokens.push_back(Token{"::", line_no, TokenKind::kPunct});
        i += 2;
        continue;
      }
      tokens.push_back(Token{std::string(1, c), line_no, TokenKind::kPunct});
      ++i;
    }
  }
  return tokens;
}

// ---- includes -------------------------------------------------------------

std::vector<IncludeEdge> scan_includes(const std::vector<std::string>& raw) {
  std::vector<IncludeEdge> out;
  for (std::size_t li = 0; li < raw.size(); ++li) {
    const std::string& line = raw[li];
    std::size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i >= line.size() || line[i] != '#') continue;
    ++i;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (line.compare(i, 7, "include") != 0) continue;
    i += 7;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i >= line.size()) continue;
    const char open = line[i];
    const char close = open == '<' ? '>' : '"';
    if (open != '<' && open != '"') continue;
    const auto end = line.find(close, i + 1);
    if (end == std::string::npos) continue;
    out.push_back(IncludeEdge{line.substr(i + 1, end - i - 1), li + 1, open == '"'});
  }
  return out;
}

// ---- declaration extraction -----------------------------------------------
//
// A heuristic single-pass recursive parser over the token stream.  It is NOT
// a C++ parser; it recognizes the declaration shapes this codebase actually
// uses (see docs/STATIC_ANALYSIS.md for the exact contract) and degrades by
// dropping a declaration rather than crashing on anything exotic.

bool is_control_keyword(const std::string& t) {
  return t == "if" || t == "for" || t == "while" || t == "switch" || t == "return" ||
         t == "sizeof" || t == "case" || t == "new" || t == "delete" || t == "catch" ||
         t == "throw" || t == "else" || t == "do" || t == "alignas" || t == "alignof" ||
         t == "static_assert" || t == "decltype" || t == "noexcept";
}

bool is_contract_macro(const std::string& t) {
  return t == "UPN_REQUIRE" || t == "UPN_ENSURE" || t == "UPN_INVARIANT";
}

struct DeclParser {
  const std::vector<Token>& toks;
  const std::vector<std::string>& raw;
  std::vector<Declaration> out;
  std::size_t i = 0;

  [[nodiscard]] bool done() const { return i >= toks.size(); }
  [[nodiscard]] const std::string& tok(std::size_t k) const { return toks[k].text; }

  /// Consumes a balanced {...} group (toks[i] must be '{').  Reports the
  /// number of ';' inside and whether a contract macro occurs.
  void skip_braces(bool& has_contract, std::size_t& statements, std::size_t& last_line) {
    int depth = 0;
    while (i < toks.size()) {
      const Token& t = toks[i];
      if (t.text == "{") ++depth;
      if (t.text == "}") {
        --depth;
        if (depth == 0) {
          last_line = t.line;
          ++i;
          return;
        }
      }
      if (t.text == ";") ++statements;
      if (t.kind == TokenKind::kIdent && is_contract_macro(t.text)) has_contract = true;
      last_line = t.line;
      ++i;
    }
  }

  [[nodiscard]] bool body_has_waiver(std::size_t first_line, std::size_t last_line) const {
    for (std::size_t l = first_line; l <= last_line && l <= raw.size(); ++l) {
      if (l >= 1 && raw[l - 1].find("upn-contract-waive(") != std::string::npos) return true;
    }
    return false;
  }

  /// Index of the function name in stmt head [begin, end): the first
  /// identifier directly followed by '(' outside template angles, with at
  /// least one preceding token (the return type).  npos when none.
  [[nodiscard]] std::size_t function_name_index(std::size_t begin, std::size_t end) const {
    int angle = 0;
    int paren = 0;
    for (std::size_t k = begin; k < end; ++k) {
      const std::string& t = tok(k);
      if (t == "(") ++paren;
      if (t == ")" && paren > 0) --paren;
      if (paren > 0) continue;
      if (t == "<" && k > begin &&
          (toks[k - 1].kind == TokenKind::kIdent || tok(k - 1) == ">")) {
        ++angle;
        continue;
      }
      if (t == ">" && angle > 0) {
        --angle;
        continue;
      }
      if (angle > 0) continue;
      if (toks[k].kind == TokenKind::kIdent && k + 1 < end && tok(k + 1) == "(" &&
          k > begin && !is_control_keyword(t)) {
        if (tok(k - 1) == "~") return std::string::npos;  // destructor
        return k;
      }
    }
    return std::string::npos;
  }

  void record(std::string name, std::size_t line, DeclKind kind, bool is_public,
              bool has_body = false, bool has_contract = false, bool has_waiver = false,
              std::size_t body_statements = 0) {
    out.push_back(Declaration{std::move(name), line, kind, has_body, is_public,
                              has_contract, has_waiver, body_statements});
  }

  /// Classifies a body-less statement head [begin, end) seen at class or
  /// namespace scope.  `class_name` is "" at namespace scope.
  void classify_statement(std::size_t begin, std::size_t end, const std::string& class_name,
                          bool is_public) {
    if (begin >= end) return;
    const std::string& first = tok(begin);
    if (first == "friend" || first == "static_assert" || first == "typedef") return;
    std::size_t b = begin;
    while (b < end && tok(b) == "template") {  // skip `template <...>` prefix
      int angle = 0;
      ++b;
      while (b < end) {
        if (tok(b) == "<") ++angle;
        if (tok(b) == ">" && --angle == 0) {
          ++b;
          break;
        }
        ++b;
      }
    }
    if (b >= end) return;
    if (tok(b) == "using") {
      if (b + 1 < end && tok(b + 1) == "namespace") return;
      if (b + 1 < end && toks[b + 1].kind == TokenKind::kIdent) {
        record(tok(b + 1), toks[b + 1].line, DeclKind::kType, is_public);
      }
      return;
    }
    if (tok(b) == "class" || tok(b) == "struct" || tok(b) == "union" || tok(b) == "enum") {
      // Forward declaration (a definition would have ended at '{').
      std::size_t n = b + 1;
      while (n < end && (tok(n) == "class" || toks[n].kind != TokenKind::kIdent)) ++n;
      if (n < end) record(tok(n), toks[n].line, DeclKind::kType, is_public);
      return;
    }
    const std::size_t fn = function_name_index(b, end);
    if (fn != std::string::npos) {
      if (!class_name.empty() && tok(fn) == class_name) return;  // constructor
      record(tok(fn), toks[fn].line, DeclKind::kFunction, is_public);
      return;
    }
    // Variable / constant / field: the identifier directly before the first
    // top-level '=', or before the end when there is no initializer.
    int angle = 0;
    std::size_t stop = end;
    for (std::size_t k = b; k < end; ++k) {
      if (tok(k) == "<" && k > b &&
          (toks[k - 1].kind == TokenKind::kIdent || tok(k - 1) == ">")) {
        ++angle;
      } else if (tok(k) == ">" && angle > 0) {
        --angle;
      } else if (tok(k) == "=" && angle == 0) {
        stop = k;
        break;
      }
    }
    if (stop > b && toks[stop - 1].kind == TokenKind::kIdent && stop - 1 > b &&
        !is_control_keyword(tok(stop - 1))) {
      record(tok(stop - 1), toks[stop - 1].line, DeclKind::kConstant, is_public);
    }
  }

  /// Consumes an enum definition body and records the enumerators.
  void consume_enum_body(bool is_public) {
    int depth = 0;
    bool expect_name = true;
    while (i < toks.size()) {
      const Token& t = toks[i];
      if (t.text == "{") {
        ++depth;
        expect_name = true;
      } else if (t.text == "}") {
        if (--depth == 0) {
          ++i;
          return;
        }
      } else if (depth == 1) {
        if (t.text == ",") {
          expect_name = true;
        } else if (expect_name && t.kind == TokenKind::kIdent) {
          record(t.text, t.line, DeclKind::kConstant, is_public);
          expect_name = false;
        } else {
          expect_name = false;
        }
      }
      ++i;
    }
  }

  /// Parses one brace scope (namespace, class, or the whole file).
  void parse_scope(const std::string& class_name, bool in_class, bool public_default) {
    bool is_public = public_default;
    std::size_t stmt_begin = i;
    int paren = 0;
    while (i < toks.size()) {
      const std::string& t = tok(i);
      if (t == "(") ++paren;
      if (t == ")" && paren > 0) --paren;
      if (paren > 0) {
        ++i;
        continue;
      }
      if (in_class && stmt_begin == i &&
          (t == "public" || t == "private" || t == "protected") && i + 1 < toks.size() &&
          tok(i + 1) == ":") {
        is_public = t == "public";
        i += 2;
        stmt_begin = i;
        continue;
      }
      if (t == ";") {
        classify_statement(stmt_begin, i, class_name, is_public);
        ++i;
        stmt_begin = i;
        continue;
      }
      if (t == "}") {
        ++i;  // end of this scope
        return;
      }
      if (t != "{") {
        ++i;
        continue;
      }
      // '{' at paren depth 0: classify the head [stmt_begin, i).
      const std::size_t head_begin = stmt_begin;
      const std::size_t head_end = i;
      auto head_has = [&](const char* kw) {
        for (std::size_t k = head_begin; k < head_end; ++k) {
          if (tok(k) == kw) return true;
        }
        return false;
      };
      if (head_has("namespace")) {
        ++i;  // consume '{'
        parse_scope("", false, true);
        stmt_begin = i;
        continue;
      }
      if (head_has("enum")) {
        std::size_t n = head_begin;
        while (n < head_end && tok(n) != "enum") ++n;
        ++n;
        if (n < head_end && tok(n) == "class") ++n;
        if (n < head_end && toks[n].kind == TokenKind::kIdent) {
          record(tok(n), toks[n].line, DeclKind::kType, is_public);
        }
        consume_enum_body(is_public);
        stmt_begin = i;
        continue;
      }
      if (head_has("class") || head_has("struct") || head_has("union")) {
        std::size_t n = head_begin;
        while (n < head_end &&
               !(tok(n) == "class" || tok(n) == "struct" || tok(n) == "union")) {
          ++n;
        }
        const bool struct_like = tok(n) != "class";
        ++n;
        std::string name;
        if (n < head_end && toks[n].kind == TokenKind::kIdent) {
          name = tok(n);
          record(name, toks[n].line, DeclKind::kType, is_public);
        }
        ++i;  // consume '{'
        parse_scope(name, true, struct_like);
        // Trailing `;` (and variable names) handled by the ';' branch.
        stmt_begin = i;
        continue;
      }
      const std::size_t fn = function_name_index(head_begin, head_end);
      if (fn != std::string::npos &&
          (class_name.empty() || tok(fn) != class_name)) {
        // Function definition: measure the body.
        const std::size_t decl_line = toks[fn].line;
        bool has_contract = false;
        std::size_t statements = 0;
        std::size_t last_line = decl_line;
        skip_braces(has_contract, statements, last_line);
        record(tok(fn), decl_line, DeclKind::kFunction, is_public, true, has_contract,
               body_has_waiver(decl_line, last_line), statements);
        stmt_begin = i;
        continue;
      }
      // Constructor definition, initializer list, lambda initializer, array
      // initializer, ...: skip the braces and let the ';' branch finish the
      // statement.
      bool ignored_contract = false;
      std::size_t ignored_statements = 0;
      std::size_t ignored_line = 0;
      skip_braces(ignored_contract, ignored_statements, ignored_line);
    }
    // File scope may end without a closing '}': flush the tail statement.
    classify_statement(stmt_begin, i, class_name, is_public);
  }
};

}  // namespace

Unit build_unit(const std::string& path, const std::string& content) {
  Unit unit;
  unit.path = path;
  unit.module = module_of(path);
  unit.is_header = path.size() >= 4 && path.compare(path.size() - 4, 4, ".hpp") == 0;
  unit.raw = split_lines(content);
  unit.code = code_view(unit.raw);
  unit.tokens = tokenize(unit.code);
  unit.includes = scan_includes(unit.raw);

  // Macros come from the raw directive lines; everything else from the
  // recursive statement parser.
  for (std::size_t li = 0; li < unit.code.size(); ++li) {
    const std::string& line = unit.code[li];
    std::size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i >= line.size() || line[i] != '#') continue;
    ++i;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (line.compare(i, 6, "define") != 0) continue;
    i += 6;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    std::size_t end = i;
    while (end < line.size() && ident_char(line[end])) ++end;
    if (end > i) {
      unit.decls.push_back(
          Declaration{line.substr(i, end - i), li + 1, DeclKind::kMacro, false, true});
    }
  }

  DeclParser parser{unit.tokens, unit.raw, {}};
  parser.parse_scope("", false, true);
  for (Declaration& d : parser.out) unit.decls.push_back(std::move(d));
  std::sort(unit.decls.begin(), unit.decls.end(),
            [](const Declaration& a, const Declaration& b) {
              return std::tie(a.line, a.name) < std::tie(b.line, b.name);
            });
  return unit;
}

// ---- IR cache -------------------------------------------------------------

namespace {

constexpr const char* kCacheMagic = "upnir 1";

void fnv_mix(unsigned long long& hash, const std::string& bytes) {
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  hash ^= 0xFFU;  // separator so ("ab","c") and ("a","bc") differ
  hash *= 1099511628211ULL;
}

}  // namespace

std::string unit_cache_key(const std::string& path, const std::string& content) {
  unsigned long long hash = 1469598103934665603ULL;  // FNV-1a offset basis
  fnv_mix(hash, kCacheMagic);
  fnv_mix(hash, path);
  fnv_mix(hash, content);
  std::string hex(16, '0');
  for (std::size_t i = 16; i-- > 0;) {
    hex[i] = "0123456789abcdef"[hash & 0xFU];
    hash >>= 4;
  }
  return hex;
}

std::string serialize_unit(const Unit& unit) {
  std::string out = std::string(kCacheMagic) + "\n";
  out += "tokens " + std::to_string(unit.tokens.size()) + "\n";
  for (const Token& t : unit.tokens) {
    out += std::string(1, static_cast<char>(t.kind)) + " " + std::to_string(t.line) + " " +
           t.text + "\n";
  }
  out += "includes " + std::to_string(unit.includes.size()) + "\n";
  for (const IncludeEdge& inc : unit.includes) {
    out += std::to_string(inc.line) + " " + (inc.quoted ? "q" : "s") + " " + inc.target + "\n";
  }
  out += "decls " + std::to_string(unit.decls.size()) + "\n";
  for (const Declaration& d : unit.decls) {
    out += std::string(1, static_cast<char>(d.kind)) + " " + std::to_string(d.line) + " " +
           (d.has_body ? "1" : "0") + (d.is_public ? "1" : "0") + (d.has_contract ? "1" : "0") +
           (d.has_waiver ? "1" : "0") + " " + std::to_string(d.body_statements) + " " + d.name +
           "\n";
  }
  out += "end\n";
  return out;
}

bool deserialize_unit(const std::string& path, const std::string& content,
                      const std::string& serialized, Unit& out) {
  const std::vector<std::string> lines = split_lines(serialized);
  std::size_t li = 0;
  auto next = [&]() -> const std::string* {
    return li < lines.size() ? &lines[li++] : nullptr;
  };
  auto parse_count = [](const std::string& line, const std::string& tag,
                        std::size_t& count) -> bool {
    if (line.compare(0, tag.size() + 1, tag + " ") != 0) return false;
    count = 0;
    for (std::size_t k = tag.size() + 1; k < line.size(); ++k) {
      if (line[k] < '0' || line[k] > '9') return false;
      count = count * 10 + static_cast<std::size_t>(line[k] - '0');
    }
    return true;
  };
  auto parse_size = [](const std::string& s, std::size_t b, std::size_t e,
                       std::size_t& value) -> bool {
    if (b >= e) return false;
    value = 0;
    for (std::size_t k = b; k < e; ++k) {
      if (s[k] < '0' || s[k] > '9') return false;
      value = value * 10 + static_cast<std::size_t>(s[k] - '0');
    }
    return true;
  };

  const std::string* line = next();
  if (line == nullptr || *line != kCacheMagic) return false;

  Unit unit;
  unit.path = path;
  unit.module = module_of(path);
  unit.is_header = path.size() >= 4 && path.compare(path.size() - 4, 4, ".hpp") == 0;
  unit.raw = split_lines(content);
  unit.code = code_view(unit.raw);

  std::size_t count = 0;
  line = next();
  if (line == nullptr || !parse_count(*line, "tokens", count)) return false;
  unit.tokens.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    line = next();
    if (line == nullptr || line->size() < 5 || (*line)[1] != ' ') return false;
    const char kind = (*line)[0];
    if (kind != 'i' && kind != 'n' && kind != 'p') return false;
    const std::size_t space = line->find(' ', 2);
    if (space == std::string::npos || space + 1 >= line->size()) return false;
    std::size_t ln = 0;
    if (!parse_size(*line, 2, space, ln)) return false;
    unit.tokens.push_back(Token{line->substr(space + 1), ln, static_cast<TokenKind>(kind)});
  }

  line = next();
  if (line == nullptr || !parse_count(*line, "includes", count)) return false;
  unit.includes.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    line = next();
    if (line == nullptr) return false;
    const std::size_t s1 = line->find(' ');
    if (s1 == std::string::npos || s1 + 2 >= line->size() || (*line)[s1 + 2] != ' ') {
      return false;
    }
    const char q = (*line)[s1 + 1];
    if (q != 'q' && q != 's') return false;
    std::size_t ln = 0;
    if (!parse_size(*line, 0, s1, ln)) return false;
    unit.includes.push_back(IncludeEdge{line->substr(s1 + 3), ln, q == 'q'});
  }

  line = next();
  if (line == nullptr || !parse_count(*line, "decls", count)) return false;
  unit.decls.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    line = next();
    if (line == nullptr || line->size() < 9 || (*line)[1] != ' ') return false;
    const char kind = (*line)[0];
    if (kind != 'f' && kind != 't' && kind != 'm' && kind != 'c') return false;
    const std::size_t s1 = line->find(' ', 2);          // after the line number
    if (s1 == std::string::npos || s1 + 5 >= line->size()) return false;
    const std::size_t s2 = line->find(' ', s1 + 1);     // after the flag block
    if (s2 == std::string::npos || s2 - s1 != 5) return false;
    const std::size_t s3 = line->find(' ', s2 + 1);     // after the statement count
    if (s3 == std::string::npos || s3 + 1 >= line->size()) return false;
    Declaration d;
    d.kind = static_cast<DeclKind>(kind);
    if (!parse_size(*line, 2, s1, d.line)) return false;
    for (std::size_t f = s1 + 1; f < s2; ++f) {
      if ((*line)[f] != '0' && (*line)[f] != '1') return false;
    }
    d.has_body = (*line)[s1 + 1] == '1';
    d.is_public = (*line)[s1 + 2] == '1';
    d.has_contract = (*line)[s1 + 3] == '1';
    d.has_waiver = (*line)[s1 + 4] == '1';
    if (!parse_size(*line, s2 + 1, s3, d.body_statements)) return false;
    d.name = line->substr(s3 + 1);
    if (d.name.empty()) return false;
    unit.decls.push_back(std::move(d));
  }

  line = next();
  if (line == nullptr || *line != "end") return false;
  out = std::move(unit);
  return true;
}

}  // namespace upn::analyze
