#include "tools/analyze/engine.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <utility>

#include "src/obs/obs.hpp"
#include "src/util/par.hpp"
#include "tools/analyze/callgraph.hpp"

namespace fs = std::filesystem;

namespace upn::analyze {

namespace {

bool is_source_path(const std::string& path) {
  auto ends = [&](const char* suffix) {
    const std::size_t n = std::char_traits<char>::length(suffix);
    return path.size() >= n && path.compare(path.size() - n, n, suffix) == 0;
  };
  return ends(".cpp") || ends(".hpp");
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace

std::string Report::render_text() const {
  std::string out;
  for (const Finding& f : findings) out += f.format() + "\n";
  out += "upn_analyze: " + std::to_string(findings.size()) + " finding" +
         (findings.size() == 1 ? "" : "s") + " (" + std::to_string(baselined.size()) +
         " baselined) over " + std::to_string(files) + " files\n";
  return out;
}

Report analyze(const Input& input) {
  ThreadPool pool{input.jobs};

  // Per-file work fans out on the pool; results are collected BY INDEX so
  // the merge below is independent of scheduling (src/util/par contract).
  // With --ir-cache, each task first tries its content-keyed cache entry
  // (keys are computed serially so the fan-out only reads); misses are
  // rebuilt and written back serially afterwards.  The cache can only ever
  // skip work, never change a result: a failed read or parse falls through
  // to build_unit, and cache IO errors are deliberately non-fatal.
  std::vector<Unit> units;
  if (input.ir_cache_dir.empty()) {
    units = pool.parallel_map<Unit>(input.files.size(), [&](std::size_t i) {
      return build_unit(input.files[i].path, input.files[i].content);
    });
  } else {
    const fs::path cache_dir{input.ir_cache_dir};
    std::error_code ec;
    fs::create_directories(cache_dir, ec);
    std::vector<fs::path> entries(input.files.size());
    for (std::size_t i = 0; i < input.files.size(); ++i) {
      entries[i] = cache_dir / (unit_cache_key(input.files[i].path,
                                               input.files[i].content) +
                                ".upnir");
    }
    std::vector<char> hit(input.files.size(), 0);  // index-disjoint writes
    units = pool.parallel_map<Unit>(input.files.size(), [&](std::size_t i) {
      std::string serialized;
      Unit unit;
      if (read_file(entries[i], serialized) &&
          deserialize_unit(input.files[i].path, input.files[i].content, serialized, unit)) {
        hit[i] = 1;
        return unit;
      }
      return build_unit(input.files[i].path, input.files[i].content);
    });
    std::size_t hits = 0;
    for (std::size_t i = 0; i < units.size(); ++i) {
      if (hit[i] != 0) {
        ++hits;
        continue;
      }
      std::ofstream out{entries[i], std::ios::binary};
      if (out) out << serialize_unit(units[i]);
    }
    UPN_OBS_COUNT("analyze.ir_cache.hits", hits);
    UPN_OBS_COUNT("analyze.ir_cache.misses", units.size() - hits);
  }
  // The per-unit pass trio (single-file rules, concurrency safety,
  // determinism taint) shares one fan-out; each worker owns exactly one unit.
  const std::vector<std::vector<Finding>> per_unit =
      pool.parallel_map<std::vector<Finding>>(units.size(), [&](std::size_t i) {
        std::vector<Finding> findings = run_single_file_rules(units[i]);
        const std::vector<Finding> conc = run_concurrency_pass(units[i]);
        const std::vector<Finding> taint = run_determinism_taint_pass(units[i]);
        findings.insert(findings.end(), conc.begin(), conc.end());
        findings.insert(findings.end(), taint.begin(), taint.end());
        return findings;
      });

  std::vector<Finding> all;
  for (const std::vector<Finding>& findings : per_unit) {
    all.insert(all.end(), findings.begin(), findings.end());
  }

  LayerSpec spec;  // empty (no hotpath modules) when no layers file is given
  if (!input.layers_path.empty()) {
    spec = parse_layers(input.layers_path, input.layers_text);
    const std::vector<Finding> layering =
        run_layering_pass(units, spec, input.layers_path);
    const std::vector<Finding> hot = run_hotpath_pass(units, spec);
    all.insert(all.end(), layering.begin(), layering.end());
    all.insert(all.end(), hot.begin(), hot.end());
  }

  const std::vector<Finding> coverage = run_contract_coverage_pass(units);
  const std::vector<Finding> hygiene = run_include_hygiene_pass(units);
  all.insert(all.end(), coverage.begin(), coverage.end());
  all.insert(all.end(), hygiene.begin(), hygiene.end());

  // The whole-program half: extraction fans out per unit inside
  // build_callgraph, linking and the pass families 8-11 are single ordered
  // walks, so the findings are byte-identical at every --jobs value.
  const CallGraph graph = build_callgraph(units, pool);
  for (const std::vector<Finding>& findings :
       {run_lock_order_pass(graph, units), run_contract_propagation_pass(graph, units, spec),
        run_exception_safety_pass(graph, units), run_dead_function_pass(graph, units)}) {
    all.insert(all.end(), findings.begin(), findings.end());
  }

  const std::set<std::string> baseline = parse_baseline(input.baseline_text);
  const std::set<std::string> hotpath_baseline = parse_baseline(input.hotpath_text);
  const std::set<std::string> interproc_baseline = parse_baseline(input.interproc_text);
  std::set<std::string> hotpath_seen;
  std::set<std::string> interproc_seen;
  Report report;
  report.files = input.files.size();
  for (Finding& f : all) {
    const bool is_hotpath = f.rule.compare(0, 8, "hotpath-") == 0 &&
                            !is_interproc_rule(f.rule);
    const bool is_interproc = is_interproc_rule(f.rule);
    if (is_hotpath) hotpath_seen.insert(hotpath_key(f));
    if (is_interproc) interproc_seen.insert(interproc_key(f));
    if (f.rule == "contract-coverage" && baseline.count(baseline_key(f)) != 0) {
      report.baselined.push_back(std::move(f));
    } else if (is_hotpath && hotpath_baseline.count(hotpath_key(f)) != 0) {
      report.baselined.push_back(std::move(f));
    } else if (is_interproc && interproc_baseline.count(interproc_key(f)) != 0) {
      report.baselined.push_back(std::move(f));
    } else {
      report.findings.push_back(std::move(f));
    }
  }
  // A baseline entry matching no current finding is debt already paid: the
  // ratchet only shrinks, so a stale entry is itself a finding.
  const std::string hotpath_path =
      input.hotpath_path.empty() ? "tools/analyze/hotpath.baseline" : input.hotpath_path;
  for (const std::string& entry : hotpath_baseline) {
    if (hotpath_seen.count(entry) != 0) continue;
    report.findings.push_back(
        Finding{hotpath_path, 0, "baseline-stale-entry",
                "hotpath baseline entry '" + entry +
                    "' matches no current finding; delete it (the ratchet only "
                    "shrinks)"});
  }
  const std::string interproc_path = input.interproc_path.empty()
                                         ? "tools/analyze/interproc.baseline"
                                         : input.interproc_path;
  for (const std::string& entry : interproc_baseline) {
    if (interproc_seen.count(entry) != 0) continue;
    report.findings.push_back(
        Finding{interproc_path, 0, "baseline-stale-entry",
                "interproc baseline entry '" + entry +
                    "' matches no current finding; delete it (the ratchet only "
                    "shrinks)"});
  }
  std::sort(report.findings.begin(), report.findings.end(), finding_less);
  std::sort(report.baselined.begin(), report.baselined.end(), finding_less);

  if (input.want_callgraph) report.callgraph_dump = dump_callgraph(graph);

  UPN_OBS_COUNT("analyze.callgraph.nodes", graph.nodes.size());
  UPN_OBS_COUNT("analyze.callgraph.edges", graph.edges.size());
  UPN_OBS_COUNT("analyze.callgraph.open", graph.opens.size());
  UPN_OBS_COUNT("analyze.files", report.files);
  UPN_OBS_COUNT("analyze.findings", report.findings.size());
  UPN_OBS_COUNT("analyze.findings_baselined", report.baselined.size());
  UPN_OBS_COUNT("analyze.runs", 1);
  return report;
}

void restrict_to_files(Report& report, const std::set<std::string>& files) {
  auto drop = [&](std::vector<Finding>& findings) {
    findings.erase(std::remove_if(findings.begin(), findings.end(),
                                  [&](const Finding& f) { return files.count(f.file) == 0; }),
                   findings.end());
  };
  drop(report.findings);
  drop(report.baselined);
}

bool collect_tree(const TreeOptions& options, Input& input, std::string& error) {
  const fs::path root{options.root};
  input.jobs = options.jobs;

  auto excluded = [&](const std::string& rel) {
    for (const std::string& sub : options.excludes) {
      if (rel.find(sub) != std::string::npos) return true;
    }
    return false;
  };

  auto rel_of = [&](const fs::path& p) {
    std::error_code ec;
    const fs::path rel = fs::relative(p, root, ec);
    return (ec || rel.empty() ? p : rel).generic_string();
  };

  std::vector<fs::path> files;
  for (const std::string& given : options.paths) {
    const fs::path p = fs::path{given}.is_absolute() ? fs::path{given} : root / given;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it{p, ec}, end; it != end; it.increment(ec)) {
        if (ec) break;
        if (!it->is_regular_file()) continue;
        const std::string path = it->path().generic_string();
        if (is_source_path(path)) files.push_back(it->path());
      }
      if (ec) {
        error = "cannot walk " + p.generic_string() + ": " + ec.message();
        return false;
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      error = "no such file or directory: " + p.generic_string();
      return false;
    }
  }

  std::vector<std::pair<std::string, fs::path>> keyed;
  keyed.reserve(files.size());
  for (const fs::path& p : files) {
    const std::string rel = rel_of(p);
    if (!excluded(rel)) keyed.emplace_back(rel, p);
  }
  std::sort(keyed.begin(), keyed.end());
  keyed.erase(std::unique(keyed.begin(), keyed.end(),
                          [](const auto& a, const auto& b) { return a.first == b.first; }),
              keyed.end());

  for (const auto& [rel, path] : keyed) {
    SourceFile file;
    file.path = rel;
    if (!read_file(path, file.content)) {
      error = "cannot read " + path.generic_string();
      return false;
    }
    input.files.push_back(std::move(file));
  }

  // The layers file: explicit path, or the conventional location when present.
  fs::path layers = options.layers_file.empty() ? root / "docs/ARCHITECTURE.layers"
                                                : fs::path{options.layers_file};
  if (!options.layers_file.empty() || fs::exists(layers)) {
    if (!read_file(layers, input.layers_text)) {
      error = "cannot read layers file " + layers.generic_string();
      return false;
    }
    input.layers_path = rel_of(layers);
  }

  fs::path baseline = options.baseline_file.empty()
                          ? root / "tools/analyze/contracts.baseline"
                          : fs::path{options.baseline_file};
  if (!options.baseline_file.empty() || fs::exists(baseline)) {
    if (!read_file(baseline, input.baseline_text)) {
      error = "cannot read baseline file " + baseline.generic_string();
      return false;
    }
  }

  fs::path hotpath = options.hotpath_file.empty()
                         ? root / "tools/analyze/hotpath.baseline"
                         : fs::path{options.hotpath_file};
  if (!options.hotpath_file.empty() || fs::exists(hotpath)) {
    if (!read_file(hotpath, input.hotpath_text)) {
      error = "cannot read hotpath baseline file " + hotpath.generic_string();
      return false;
    }
    input.hotpath_path = rel_of(hotpath);
  }

  fs::path interproc = options.interproc_file.empty()
                           ? root / "tools/analyze/interproc.baseline"
                           : fs::path{options.interproc_file};
  if (!options.interproc_file.empty() || fs::exists(interproc)) {
    if (!read_file(interproc, input.interproc_text)) {
      error = "cannot read interproc baseline file " + interproc.generic_string();
      return false;
    }
    input.interproc_path = rel_of(interproc);
  }

  input.ir_cache_dir = options.ir_cache_dir;
  return true;
}

}  // namespace upn::analyze
