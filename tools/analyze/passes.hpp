// upn_analyze pass families over the shared IR (tools/analyze/ir.hpp).
//
// Four groups, one Finding vocabulary:
//
//   * single-file rules (source_rules.cpp) -- the upn_lint source rules
//     ported onto the IR plus the flow-sensitive token rules (Rng taken by
//     value, narrowing static_cast without an adjacent contract, raw
//     std::thread outside util/par).  upn_lint's lint_source delegates here,
//     so there is exactly one engine and one suppression syntax.
//   * layering conformance (layering.cpp) -- the observed #include graph of
//     src/ checked against the declared module DAG in
//     docs/ARCHITECTURE.layers, plus file-level include-cycle detection.
//   * contract coverage (contracts_audit.cpp) -- public header functions
//     whose definitions carry no contract macro and no waiver, filtered by a
//     committed baseline so coverage can only ratchet up.
//   * include hygiene (include_hygiene.cpp) -- quoted includes from whose
//     transitive declaration set the includer uses nothing.
//
// Every pass is pure (IR in, findings out) and thread-safe by construction;
// the engine owns ordering: findings are merged and sorted by
// (file, line, rule, message) so reports are byte-identical at every thread
// count.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tools/analyze/ir.hpp"

namespace upn::analyze {

struct Finding {
  std::string file;
  std::size_t line = 0;  ///< 1-based; 0 when file-scoped
  std::string rule;
  std::string message;

  /// "file:line: [rule] message" -- the text-report and CI-grep format.
  [[nodiscard]] std::string format() const;
};

/// Deterministic report order: (file, line, rule, message).
[[nodiscard]] bool finding_less(const Finding& a, const Finding& b);

/// One catalog entry per rule id, for the SARIF rules array and the docs.
struct RuleInfo {
  const char* id;
  const char* summary;
};

/// Every rule the engine can emit, sorted by id.
[[nodiscard]] const std::vector<RuleInfo>& rule_catalog();

// ---- single-file rules ----------------------------------------------------

/// All rules that need only one unit.  Honors `upn-lint-allow(<rule>)` on
/// the finding's raw line.
[[nodiscard]] std::vector<Finding> run_single_file_rules(const Unit& unit);

// ---- layering -------------------------------------------------------------

/// Parsed docs/ARCHITECTURE.layers: the declared module DAG plus waived
/// edges (observed edges tolerated with a recorded reason).
struct LayerSpec {
  /// module -> direct declared dependencies (sorted).
  std::map<std::string, std::vector<std::string>> deps;
  /// waived "from -> to" edges with their reasons.
  std::map<std::pair<std::string, std::string>, std::string> waivers;
  std::vector<Finding> errors;  ///< malformed lines, duplicate declarations
};

/// Parses the layers file text.  `path` is used for diagnostics only.
[[nodiscard]] LayerSpec parse_layers(const std::string& path, const std::string& content);

/// Checks the observed include graph of the src/ units against the spec:
/// declared-DAG acyclicity, undeclared cross-module edges, unknown modules,
/// stale waivers, and file-level include cycles.
[[nodiscard]] std::vector<Finding> run_layering_pass(
    const std::vector<Unit>& units, const LayerSpec& spec, const std::string& layers_path);

// ---- contract coverage ----------------------------------------------------

/// Public functions declared in src/**/*.hpp whose definition (inline or in
/// any analyzed unit) has no contract macro and no waiver marker.  Functions
/// whose bodies hold at most one statement (trivial accessors) and functions
/// with no definition in the analyzed set are skipped.
[[nodiscard]] std::vector<Finding> run_contract_coverage_pass(const std::vector<Unit>& units);

/// Baseline file IO: one "path:function" entry per line, '#' comments.
[[nodiscard]] std::set<std::string> parse_baseline(const std::string& content);
[[nodiscard]] std::string baseline_key(const Finding& finding);
[[nodiscard]] std::string render_baseline(const std::vector<Finding>& findings);

// ---- include hygiene ------------------------------------------------------

/// Quoted includes that resolve inside the analyzed set but from whose
/// transitive declaration closure the includer uses no name.
[[nodiscard]] std::vector<Finding> run_include_hygiene_pass(const std::vector<Unit>& units);

}  // namespace upn::analyze
