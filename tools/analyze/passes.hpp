// upn_analyze pass families over the shared IR (tools/analyze/ir.hpp).
//
// Seven groups, one Finding vocabulary:
//
//   * single-file rules (source_rules.cpp) -- the upn_lint source rules
//     ported onto the IR plus the flow-sensitive token rules (Rng taken by
//     value, narrowing static_cast without an adjacent contract, raw
//     std::thread outside util/par).  upn_lint's lint_source delegates here,
//     so there is exactly one engine and one suppression syntax.
//   * concurrency safety (concurrency.cpp) -- lambdas handed to
//     upn::ThreadPool's parallel_for/parallel_map: shared mutable state
//     captured by reference without index-disjoint writes, atomics, or a
//     lock, and upn::Rng objects shared across tasks.
//   * determinism taint (determinism_taint.cpp) -- values that originate
//     from unordered-container iteration order, timing clocks, thread ids,
//     or pointer identity, tracked per file until they flow into an
//     artifact writer, snapshot exporter, or obs counter.  Subsumes the
//     retired token-level unordered-iteration / no-raw-timing rules.
//   * layering conformance (layering.cpp) -- the observed #include graph of
//     src/ checked against the declared module DAG in
//     docs/ARCHITECTURE.layers, plus file-level include-cycle detection.
//   * contract coverage (contracts_audit.cpp) -- public header functions
//     whose definitions carry no contract macro and no waiver, filtered by a
//     committed baseline so coverage can only ratchet up.
//   * hot-path performance (hotpath.cpp) -- modules declared `hotpath` in
//     the layers file audited for containers with per-node allocation
//     (std::deque/map/list), in-loop heap allocation, virtual dispatch, and
//     by-value container parameters; existing debt is frozen in a
//     shrink-only baseline (tools/analyze/hotpath.baseline).
//   * include hygiene (include_hygiene.cpp) -- quoted includes from whose
//     transitive declaration set the includer uses nothing.
//
// Every pass is pure (IR in, findings out) and thread-safe by construction;
// the engine owns ordering: findings are merged and sorted by
// (file, line, rule, message) so reports are byte-identical at every thread
// count.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "tools/analyze/ir.hpp"

namespace upn::analyze {

struct CallGraph;  // tools/analyze/callgraph.hpp

struct Finding {
  std::string file;
  std::size_t line = 0;  ///< 1-based; 0 when file-scoped
  std::string rule;
  std::string message;

  /// "file:line: [rule] message" -- the text-report and CI-grep format.
  [[nodiscard]] std::string format() const;
};

/// Deterministic report order: (file, line, rule, message).
[[nodiscard]] bool finding_less(const Finding& a, const Finding& b);

/// One catalog entry per rule id, for the SARIF rules array and the docs.
struct RuleInfo {
  const char* id;
  const char* summary;
};

/// Every rule the engine can emit, sorted by id.
[[nodiscard]] const std::vector<RuleInfo>& rule_catalog();

// ---- single-file rules ----------------------------------------------------

/// All rules that need only one unit.  Honors `upn-lint-allow(<rule>)` and
/// `upn-analyze-waive(<rule>: <reason>)` on the finding's raw line.
[[nodiscard]] std::vector<Finding> run_single_file_rules(const Unit& unit);

// ---- concurrency safety ---------------------------------------------------

/// Walks every lambda passed to `.parallel_for(` / `.parallel_map(` in the
/// unit and reports:
///   par-shared-mutation  a by-reference captured outer variable written by
///                        the task body without an index-disjoint subscript
///                        (a subscript naming a lambda parameter), an atomic
///                        declaration, or a lock in the body
///   par-shared-rng       an outer upn::Rng used inside the task body; tasks
///                        must derive sub-streams with Rng::stream(seed, i)
[[nodiscard]] std::vector<Finding> run_concurrency_pass(const Unit& unit);

// ---- determinism taint ----------------------------------------------------

/// Per-file taint flow from nondeterminism sources to deterministic sinks
/// (artifact writers, snapshot exporters, UPN_OBS_* counters):
///   taint-unordered-order  unordered_{map,set} iteration order
///   taint-timing           clock reads (std::chrono, clock_gettime, now_ns)
///   taint-thread-id        std::this_thread::get_id() / std::thread::id
///   taint-address          pointer identity (reinterpret_cast to uintptr_t,
///                          std::hash over a pointer type)
/// src/obs/ and bench/harness.* are exempt from taint-timing (they ARE the
/// sanctioned kTiming side).  std::sort and insertion into std::set/std::map
/// sanitize the unordered-order taint.
[[nodiscard]] std::vector<Finding> run_determinism_taint_pass(const Unit& unit);

// ---- layering -------------------------------------------------------------

/// Parsed docs/ARCHITECTURE.layers: the declared module DAG plus waived
/// edges (observed edges tolerated with a recorded reason) and the modules
/// declared hot paths for the performance pass.
struct LayerSpec {
  /// module -> direct declared dependencies (sorted).
  std::map<std::string, std::vector<std::string>> deps;
  /// waived "from -> to" edges with their reasons.
  std::map<std::pair<std::string, std::string>, std::string> waivers;
  /// `hotpath <module>` directives: module -> declaring line.
  std::map<std::string, std::size_t> hotpaths;
  std::vector<Finding> errors;  ///< malformed lines, duplicate declarations
};

/// Parses the layers file text.  `path` is used for diagnostics only.
[[nodiscard]] LayerSpec parse_layers(const std::string& path, const std::string& content);

/// Checks the observed include graph of the src/ units against the spec:
/// declared-DAG acyclicity, undeclared cross-module edges, unknown modules,
/// stale waivers, and file-level include cycles.
[[nodiscard]] std::vector<Finding> run_layering_pass(
    const std::vector<Unit>& units, const LayerSpec& spec, const std::string& layers_path);

// ---- contract coverage ----------------------------------------------------

/// Public functions declared in src/**/*.hpp whose definition (inline or in
/// any analyzed unit) has no contract macro and no waiver marker.  Functions
/// whose bodies hold at most one statement (trivial accessors) and functions
/// with no definition in the analyzed set are skipped.
[[nodiscard]] std::vector<Finding> run_contract_coverage_pass(const std::vector<Unit>& units);

/// Baseline file IO: one "path:function" entry per line, '#' comments.
[[nodiscard]] std::set<std::string> parse_baseline(const std::string& content);
[[nodiscard]] std::string baseline_key(const Finding& finding);
[[nodiscard]] std::string render_baseline(const std::vector<Finding>& findings);

// ---- hot-path performance -------------------------------------------------

/// For every unit whose module carries a `hotpath` directive in the layers
/// file:
///   hotpath-container       std::deque / std::map / std::list use
///   hotpath-alloc           heap allocation (new, make_unique/make_shared,
///                           malloc) inside a loop
///   hotpath-virtual         a virtual member function declaration
///   hotpath-by-value-param  a container/string parameter taken by value
/// Findings are line-stable only per construct: the baseline key is
/// `file:rule:detail` (the detail is the first quoted token of the message),
/// so line drift never grows the committed baseline.
[[nodiscard]] std::vector<Finding> run_hotpath_pass(const std::vector<Unit>& units,
                                                    const LayerSpec& spec);

/// The ratchet key of a hotpath finding: "file:rule:detail".
[[nodiscard]] std::string hotpath_key(const Finding& finding);

/// Renders the shrink-only hotpath baseline (sorted unique keys, commented
/// header).  Engine-side, entries that match no current finding are reported
/// as `baseline-stale-entry` so the file cannot rot.
[[nodiscard]] std::string render_hotpath_baseline(const std::vector<Finding>& findings);

// ---- interprocedural (pass families 8-11, over the call graph) ------------

/// (8) Lock order and task blocking:
///   lock-order-cycle    the observed held-before relation over mutexes --
///                       direct nested acquisitions plus lock summaries
///                       propagated over resolved call edges -- contains a
///                       cycle (reported once, at the smallest witness site)
///   task-blocking-call  a lock acquisition or condition-variable wait
///                       reachable from a ThreadPool task body
///   task-blocking-io    file/stream IO reachable from a task body
/// Findings are limited to src/ modules; util and obs are exempt as blocking
/// sites (the pool itself and the obs counters serialize by design).
[[nodiscard]] std::vector<Finding> run_lock_order_pass(const CallGraph& graph,
                                                       const std::vector<Unit>& units);

/// (9) Contract propagation:
///   contract-violated-call   an integer-literal argument provably violates
///                            the callee's UPN_REQUIRE comparison facts
///   hotpath-unchecked-entry  a public, multi-statement, uncontracted
///                            function in a hotpath-declared module with a
///                            resolved caller in another module
[[nodiscard]] std::vector<Finding> run_contract_propagation_pass(
    const CallGraph& graph, const std::vector<Unit>& units, const LayerSpec& spec);

/// (10) Exception safety: may-throw summaries (throw, contract macros in
/// their default throw mode, allocations) propagated through non-noexcept
/// callees and across task edges (the pool rethrows task exceptions):
///   noexcept-may-throw  a noexcept function with a reachable throw
///   dtor-may-throw      a (defaulted-noexcept) destructor that can throw
[[nodiscard]] std::vector<Finding> run_exception_safety_pass(const CallGraph& graph,
                                                             const std::vector<Unit>& units);

/// (11) Dead functions: free src/ functions whose name is never referenced
/// outside their own declarations anywhere in the analyzed tree (CLI, test,
/// bench, and example roots included):
///   dead-function
[[nodiscard]] std::vector<Finding> run_dead_function_pass(const CallGraph& graph,
                                                          const std::vector<Unit>& units);

/// True for the eight rules ratcheted by tools/analyze/interproc.baseline.
[[nodiscard]] bool is_interproc_rule(const std::string& rule);

/// The ratchet key of an interprocedural finding: "file:rule:detail", the
/// detail being the first quoted token of the message (same mechanism as the
/// hotpath baseline, so keys survive line drift).
[[nodiscard]] std::string interproc_key(const Finding& finding);

/// Renders the shrink-only interproc baseline from the interproc-rule subset
/// of `findings`.
[[nodiscard]] std::string render_interproc_baseline(const std::vector<Finding>& findings);

// ---- include hygiene ------------------------------------------------------

/// Quoted includes that resolve inside the analyzed set but from whose
/// transitive declaration closure the includer uses no name.
[[nodiscard]] std::vector<Finding> run_include_hygiene_pass(const std::vector<Unit>& units);

}  // namespace upn::analyze
