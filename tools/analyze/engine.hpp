// The upn_analyze engine: collects sources, builds the IR per file on the
// util/par ThreadPool, runs every pass, and merges findings in deterministic
// (file, line, rule, message) order -- the report is byte-identical at every
// --jobs value (tests pin {1, 2, 7}).
//
// The engine reports through the PR 4 obs registry (`analyze.*` counters:
// files, units, findings, findings_baselined) when UPN_OBS collection is on.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "tools/analyze/passes.hpp"

namespace upn::analyze {

/// Everything one analysis run consumes, fully in memory so tests can drive
/// the engine without touching disk.
struct Input {
  std::vector<SourceFile> files;  ///< repo-relative paths, forward slashes
  std::string layers_path;        ///< "" skips the layering + hotpath passes
  std::string layers_text;
  std::string baseline_text;      ///< contract baseline; "" means empty
  std::string hotpath_text;       ///< hotpath baseline; "" means empty
  std::string hotpath_path;       ///< reported path for stale-entry findings
  std::string interproc_text;     ///< interproc baseline; "" means empty
  std::string interproc_path;     ///< reported path for stale-entry findings
  std::string ir_cache_dir;       ///< "" disables the IR cache (--ir-cache)
  bool want_callgraph = false;    ///< fill Report::callgraph_dump
  unsigned jobs = 0;              ///< 0 picks ThreadPool::default_threads()
};

struct Report {
  std::vector<Finding> findings;   ///< actionable, sorted
  std::vector<Finding> baselined;  ///< matched the contract baseline, sorted
  std::size_t files = 0;
  /// The `--dump-callgraph` text (tools/analyze/callgraph.hpp); filled only
  /// when Input::want_callgraph is set.
  std::string callgraph_dump;

  /// The text report: one line per finding plus a trailing summary line.
  [[nodiscard]] std::string render_text() const;
};

/// Runs the full analysis.
[[nodiscard]] Report analyze(const Input& input);

/// Drops every finding (actionable and baselined) whose file is not in
/// `files`.  Backs the `--diff <git-ref>` fast PR gate: the caller computes
/// the changed-file set, the filtering itself stays deterministic and
/// testable.  `report.files` (the analyzed count) is left untouched.
void restrict_to_files(Report& report, const std::set<std::string>& files);

/// Disk-walking front half: loads .cpp/.hpp files under `paths` (relative to
/// `root` unless absolute), skipping paths that contain any `excludes`
/// substring, plus the layers and baseline files when present.  On IO
/// failure returns false and sets `error`.
struct TreeOptions {
  std::string root = ".";
  std::vector<std::string> paths;
  std::string layers_file;    ///< "" -> root/docs/ARCHITECTURE.layers when present
  std::string baseline_file;  ///< "" -> root/tools/analyze/contracts.baseline when present
  std::string hotpath_file;   ///< "" -> root/tools/analyze/hotpath.baseline when present
  std::string interproc_file; ///< "" -> root/tools/analyze/interproc.baseline when present
  std::string ir_cache_dir;   ///< "" disables the IR cache
  std::vector<std::string> excludes = {"fixtures-bad", "fixtures-clean", "build"};
  unsigned jobs = 0;
};
[[nodiscard]] bool collect_tree(const TreeOptions& options, Input& input, std::string& error);

}  // namespace upn::analyze
