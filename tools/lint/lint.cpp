#include "tools/lint/lint.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/core/embedding_io.hpp"
#include "src/fault/fault_plan.hpp"
#include "src/pebble/io.hpp"
#include "src/routing/schedule_io.hpp"
#include "tools/analyze/ir.hpp"
#include "tools/analyze/passes.hpp"

namespace upn::lint {

std::string Diagnostic::format() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

namespace {

// ---- shared helpers -------------------------------------------------------

std::vector<std::string> split_lines(const std::string& content) {
  std::vector<std::string> lines;
  std::string::size_type start = 0;
  while (start <= content.size()) {
    const auto end = content.find('\n', start);
    if (end == std::string::npos) {
      if (start < content.size()) lines.push_back(content.substr(start));
      break;
    }
    lines.push_back(content.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// ---- artifact linting -----------------------------------------------------

struct OpLine {
  char kind = 0;  ///< 'G', 'S', 'R'
  std::uint32_t proc = 0, node = 0, time = 0, partner = 0;
  std::size_t line_no = 0;
};

std::vector<std::string> tokens_of(const std::string& line) {
  std::istringstream stream{line};
  std::vector<std::string> tokens;
  std::string token;
  while (stream >> token) tokens.push_back(std::move(token));
  return tokens;
}

/// Protocol static checks beyond read_protocol's well-formedness: every
/// receive pairs with a same-step send, and every final pebble (P_i, T) is
/// generated somewhere.  No pebble-game replay happens here.
std::vector<Diagnostic> check_protocol(const std::string& path, const std::string& content,
                                       const Protocol& protocol) {
  std::vector<Diagnostic> out;
  const std::vector<std::string> lines = split_lines(content);
  std::vector<std::vector<OpLine>> steps;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto tokens = tokens_of(lines[i]);
    if (tokens.empty()) continue;
    if (tokens[0] == "step") {
      steps.emplace_back();
      continue;
    }
    OpLine op;
    op.kind = tokens[0][0];
    op.proc = static_cast<std::uint32_t>(std::stoul(tokens[1]));
    op.node = static_cast<std::uint32_t>(std::stoul(tokens[2]));
    op.time = static_cast<std::uint32_t>(std::stoul(tokens[3]));
    if (tokens.size() > 4) op.partner = static_cast<std::uint32_t>(std::stoul(tokens[4]));
    op.line_no = i + 1;
    steps.back().push_back(op);
  }

  for (const auto& step : steps) {
    for (const OpLine& op : step) {
      if (op.kind != 'R') continue;
      const bool matched =
          std::any_of(step.begin(), step.end(), [&](const OpLine& other) {
            return other.kind == 'S' && other.proc == op.partner &&
                   other.partner == op.proc && other.node == op.node &&
                   other.time == op.time;
          });
      if (!matched) {
        out.push_back(Diagnostic{
            path, op.line_no, "protocol-unmatched-receive",
            "receive of (P" + std::to_string(op.node) + "," + std::to_string(op.time) +
                ") at proc " + std::to_string(op.proc) + " has no matching send from proc " +
                std::to_string(op.partner) + " in the same step"});
      }
    }
  }

  if (protocol.guest_steps() > 0) {
    std::vector<char> generated(protocol.num_guests(), 0);
    for (const auto& step : steps) {
      for (const OpLine& op : step) {
        if (op.kind == 'G' && op.time == protocol.guest_steps() &&
            op.node < generated.size()) {
          generated[op.node] = 1;
        }
      }
    }
    for (std::uint32_t i = 0; i < generated.size(); ++i) {
      if (!generated[i]) {
        out.push_back(Diagnostic{
            path, 1, "protocol-final-coverage",
            "final pebble (P" + std::to_string(i) + "," +
                std::to_string(protocol.guest_steps()) +
                ") is never generated; the protocol does not finish the simulation"});
      }
    }
  }
  return out;
}

std::vector<Diagnostic> check_embedding(const std::string& path,
                                        const StoredEmbedding& stored) {
  std::vector<Diagnostic> out;
  std::vector<std::uint32_t> load(stored.num_hosts, 0);
  std::uint32_t actual = 0;
  for (const NodeId q : stored.map) actual = std::max(actual, ++load[q]);
  if (actual > stored.declared_load) {
    out.push_back(Diagnostic{
        path, 1, "embedding-load-exceeds-declaration",
        "actual load " + std::to_string(actual) + " exceeds the declared bound " +
            std::to_string(stored.declared_load)});
  }
  return out;
}

std::vector<Diagnostic> check_schedule(const std::string& path, const std::string& content,
                                       const StoredPathSchedule& stored) {
  std::vector<Diagnostic> out;
  const std::vector<std::string> lines = split_lines(content);

  std::map<std::uint64_t, std::uint32_t> link_total;          // directed link -> uses
  std::map<std::uint64_t, std::size_t> link_in_step;          // link -> line of use
  std::vector<std::uint32_t> hops(stored.num_packets, 0);
  std::vector<std::pair<bool, std::uint32_t>> at(stored.num_packets, {false, 0});

  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto tokens = tokens_of(lines[i]);
    if (tokens.empty()) continue;
    const std::size_t line_no = i + 1;
    if (tokens[0] == "step") {
      link_in_step.clear();
      continue;
    }
    const auto packet = static_cast<std::uint32_t>(std::stoul(tokens[1]));
    const auto from = static_cast<std::uint32_t>(std::stoul(tokens[2]));
    const auto to = static_cast<std::uint32_t>(std::stoul(tokens[3]));
    const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;

    const auto [prev_seen, prev_at] = at[packet];
    if (prev_seen && prev_at != from) {
      out.push_back(Diagnostic{path, line_no, "schedule-broken-path",
                               "packet " + std::to_string(packet) + " moves from " +
                                   std::to_string(from) + " but last arrived at " +
                                   std::to_string(prev_at)});
    }
    at[packet] = {true, to};

    const auto in_step = link_in_step.find(key);
    if (in_step != link_in_step.end()) {
      out.push_back(Diagnostic{path, line_no, "schedule-link-conflict",
                               "directed link " + std::to_string(from) + "->" +
                                   std::to_string(to) + " already used this step (line " +
                                   std::to_string(in_step->second) + ")"});
    } else {
      link_in_step.emplace(key, line_no);
    }

    if (++link_total[key] == stored.schedule.congestion + 1) {
      out.push_back(Diagnostic{path, line_no, "schedule-congestion-exceeds-declaration",
                               "directed link " + std::to_string(from) + "->" +
                                   std::to_string(to) + " exceeds the declared congestion " +
                                   std::to_string(stored.schedule.congestion)});
    }
    if (++hops[packet] == stored.schedule.dilation + 1) {
      out.push_back(Diagnostic{path, line_no, "schedule-dilation-exceeds-declaration",
                               "packet " + std::to_string(packet) +
                                   " exceeds the declared dilation " +
                                   std::to_string(stored.schedule.dilation)});
    }
  }
  return out;
}

std::vector<Diagnostic> check_fault_plan(const std::string& path, const std::string& content,
                                         const FaultPlan& plan) {
  std::vector<Diagnostic> out;
  (void)plan;  // well-formedness is fully enforced by read_fault_plan
  const std::vector<std::string> lines = split_lines(content);
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> seen_links;
  std::map<std::uint32_t, std::size_t> seen_nodes;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto tokens = tokens_of(lines[i]);
    if (tokens.empty()) continue;
    const std::size_t line_no = i + 1;
    if (tokens[0] == "L" && tokens.size() >= 3) {
      auto u = static_cast<std::uint32_t>(std::stoul(tokens[1]));
      auto v = static_cast<std::uint32_t>(std::stoul(tokens[2]));
      if (u > v) std::swap(u, v);
      const auto [it, fresh] = seen_links.emplace(std::make_pair(u, v), line_no);
      if (!fresh) {
        out.push_back(Diagnostic{path, line_no, "faultplan-duplicate-fault",
                                 "link {" + tokens[1] + "," + tokens[2] +
                                     "} already has a permanent fault (line " +
                                     std::to_string(it->second) + ")"});
      }
    } else if (tokens[0] == "N" && tokens.size() >= 2) {
      const auto v = static_cast<std::uint32_t>(std::stoul(tokens[1]));
      const auto [it, fresh] = seen_nodes.emplace(v, line_no);
      if (!fresh) {
        out.push_back(Diagnostic{path, line_no, "faultplan-duplicate-fault",
                                 "node " + tokens[1] +
                                     " already has a permanent fault (line " +
                                     std::to_string(it->second) + ")"});
      }
    }
  }
  return out;
}

}  // namespace

std::vector<Diagnostic> lint_source(const std::string& path, const std::string& content) {
  // One engine, one suppression syntax: the per-file passes live in
  // tools/analyze (shared IR); upn_lint is a thin alias running every pass
  // that needs only one translation unit.
  const analyze::Unit unit = analyze::build_unit(path, content);
  std::vector<analyze::Finding> findings = analyze::run_single_file_rules(unit);
  for (const std::vector<analyze::Finding>& extra :
       {analyze::run_concurrency_pass(unit), analyze::run_determinism_taint_pass(unit)}) {
    findings.insert(findings.end(), extra.begin(), extra.end());
  }
  std::sort(findings.begin(), findings.end(), analyze::finding_less);
  std::vector<Diagnostic> out;
  for (const analyze::Finding& f : findings) {
    out.push_back(Diagnostic{f.file, f.line, f.rule, f.message});
  }
  return out;
}

std::vector<Diagnostic> lint_artifact(const std::string& path, const std::string& content) {
  std::vector<Diagnostic> out;
  std::istringstream stream{content};
  try {
    if (has_suffix(path, ".upnp")) {
      const Protocol protocol = read_protocol(stream);
      out = check_protocol(path, content, protocol);
    } else if (has_suffix(path, ".upne")) {
      const StoredEmbedding stored = read_embedding(stream);
      out = check_embedding(path, stored);
    } else if (has_suffix(path, ".upns")) {
      const StoredPathSchedule stored = read_path_schedule(stream);
      out = check_schedule(path, content, stored);
    } else if (has_suffix(path, ".upnf")) {
      const FaultPlan plan = read_fault_plan(stream);
      out = check_fault_plan(path, content, plan);
    }
  } catch (const std::exception& e) {
    out.push_back(Diagnostic{path, 0, "artifact-malformed", e.what()});
  }
  return out;
}

bool is_artifact_path(const std::string& path) {
  return has_suffix(path, ".upnp") || has_suffix(path, ".upne") ||
         has_suffix(path, ".upns") || has_suffix(path, ".upnf");
}

bool is_source_path(const std::string& path) {
  return has_suffix(path, ".cpp") || has_suffix(path, ".hpp");
}

}  // namespace upn::lint
