#include "tools/lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "src/core/embedding_io.hpp"
#include "src/fault/fault_plan.hpp"
#include "src/pebble/io.hpp"
#include "src/routing/schedule_io.hpp"

namespace upn::lint {

std::string Diagnostic::format() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

namespace {

// ---- shared helpers -------------------------------------------------------

std::vector<std::string> split_lines(const std::string& content) {
  std::vector<std::string> lines;
  std::string::size_type start = 0;
  while (start <= content.size()) {
    const auto end = content.find('\n', start);
    if (end == std::string::npos) {
      if (start < content.size()) lines.push_back(content.substr(start));
      break;
    }
    lines.push_back(content.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool suppressed(const std::string& raw_line, const std::string& rule) {
  return raw_line.find("upn-lint-allow(" + rule + ")") != std::string::npos;
}

bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// ---- source linting -------------------------------------------------------

/// Returns the lines of `content` with comments and string/char literals
/// blanked out (lengths preserved so columns still line up).  Keeps lint
/// rules from firing on prose like "never call rand() here".
std::vector<std::string> code_view(const std::vector<std::string>& lines) {
  std::vector<std::string> out;
  out.reserve(lines.size());
  bool in_block = false;
  for (const std::string& line : lines) {
    std::string code = line;
    char quote = 0;
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (in_block) {
        if (code[i] == '*' && i + 1 < code.size() && code[i + 1] == '/') {
          code[i] = code[i + 1] = ' ';
          ++i;
          in_block = false;
        } else {
          code[i] = ' ';
        }
        continue;
      }
      if (quote != 0) {
        if (code[i] == '\\' && i + 1 < code.size()) {
          code[i] = code[i + 1] = ' ';
          ++i;
        } else if (code[i] == quote) {
          quote = 0;
          code[i] = ' ';
        } else {
          code[i] = ' ';
        }
        continue;
      }
      if (code[i] == '"' || code[i] == '\'') {
        quote = code[i];
        code[i] = ' ';
      } else if (code[i] == '/' && i + 1 < code.size() && code[i + 1] == '/') {
        code.resize(i);
        break;
      } else if (code[i] == '/' && i + 1 < code.size() && code[i + 1] == '*') {
        code[i] = code[i + 1] = ' ';
        ++i;
        in_block = true;
      }
    }
    out.push_back(std::move(code));
  }
  return out;
}

bool word_at(const std::string& code, std::size_t pos, const std::string& word) {
  if (code.compare(pos, word.size(), word) != 0) return false;
  if (pos > 0 && ident_char(code[pos - 1])) return false;
  if (pos > 0 && code[pos - 1] == ':') {
    // `std::word` still counts; `othernamespace::word` is a different entity.
    if (pos < 5 || code.compare(pos - 5, 5, "std::") != 0) return false;
  }
  const std::size_t end = pos + word.size();
  return end >= code.size() || !ident_char(code[end]);
}

bool contains_word(const std::string& code, const std::string& word) {
  for (std::size_t pos = code.find(word); pos != std::string::npos;
       pos = code.find(word, pos + 1)) {
    if (word_at(code, pos, word)) return true;
  }
  return false;
}

/// A token that parses as a floating-point literal (1.0, .5f, 2e9, 0x1p-53).
bool is_float_literal(const std::string& token) {
  if (token.empty()) return false;
  bool digit = false, point_or_exp = false;
  for (std::size_t i = 0; i < token.size(); ++i) {
    const char c = token[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c == '.') {
      point_or_exp = true;
    } else if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') && digit) {
      point_or_exp = true;
    } else if ((c == '+' || c == '-') && i > 0 &&
               (token[i - 1] == 'e' || token[i - 1] == 'E' || token[i - 1] == 'p' ||
                token[i - 1] == 'P')) {
      // exponent sign
    } else if ((c == 'f' || c == 'F' || c == 'l' || c == 'L') && i + 1 == token.size()) {
      // suffix
    } else if ((c == 'x' || c == 'X') && i == 1 && token[0] == '0') {
      // hex float prefix
    } else if (std::isxdigit(static_cast<unsigned char>(c)) && token.size() > 1 &&
               token[0] == '0' && (token[1] == 'x' || token[1] == 'X')) {
      digit = true;
    } else {
      return false;
    }
  }
  return digit && point_or_exp;
}

std::string token_before(const std::string& code, std::size_t pos) {
  std::size_t end = pos;
  while (end > 0 && code[end - 1] == ' ') --end;
  std::size_t start = end;
  while (start > 0 && (ident_char(code[start - 1]) || code[start - 1] == '.' ||
                       code[start - 1] == '+' || code[start - 1] == '-')) {
    --start;
  }
  // Trim a leading sign that belongs to the expression, not the literal.
  while (start < end && (code[start] == '+' || code[start] == '-')) ++start;
  return code.substr(start, end - start);
}

std::string token_after(const std::string& code, std::size_t pos) {
  std::size_t start = pos;
  while (start < code.size() && code[start] == ' ') ++start;
  if (start < code.size() && (code[start] == '+' || code[start] == '-')) ++start;
  std::size_t end = start;
  while (end < code.size() && (ident_char(code[end]) || code[end] == '.' ||
                               ((code[end] == '+' || code[end] == '-') && end > start &&
                                (code[end - 1] == 'e' || code[end - 1] == 'E' ||
                                 code[end - 1] == 'p' || code[end - 1] == 'P')))) {
    ++end;
  }
  return code.substr(start, end - start);
}

/// Variable names declared in this file with an OUTERMOST unordered
/// container type (nested uses like vector<unordered_map<...>> are fine:
/// iterating the vector is deterministic).
std::vector<std::string> unordered_decls(const std::vector<std::string>& code) {
  std::vector<std::string> names;
  for (const std::string& line : code) {
    for (const char* type : {"unordered_map", "unordered_set"}) {
      for (std::size_t pos = line.find(type); pos != std::string::npos;
           pos = line.find(type, pos + 1)) {
        if (!word_at(line, pos, type)) continue;
        // Skip "std::" to find where the full type expression starts.
        std::size_t type_start = pos;
        if (type_start >= 5 && line.compare(type_start - 5, 5, "std::") == 0) {
          type_start -= 5;
        }
        // Nested inside another template argument list? Then the iterated
        // object is the outer container.
        std::size_t before = type_start;
        while (before > 0 && line[before - 1] == ' ') --before;
        if (before > 0 && (line[before - 1] == '<' || line[before - 1] == ',')) continue;
        // Walk the template argument list to its closing '>'.
        std::size_t cursor = line.find('<', pos);
        if (cursor == std::string::npos) continue;
        int depth = 0;
        while (cursor < line.size()) {
          if (line[cursor] == '<') ++depth;
          if (line[cursor] == '>') {
            --depth;
            if (depth == 0) break;
          }
          ++cursor;
        }
        if (cursor >= line.size()) continue;  // multi-line declaration: give up
        // The declared name follows (skipping refs and whitespace).
        std::size_t name_start = cursor + 1;
        while (name_start < line.size() &&
               (line[name_start] == ' ' || line[name_start] == '&' || line[name_start] == '*')) {
          ++name_start;
        }
        std::size_t name_end = name_start;
        while (name_end < line.size() && ident_char(line[name_end])) ++name_end;
        if (name_end > name_start) {
          names.push_back(line.substr(name_start, name_end - name_start));
        }
      }
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

/// The identifier a range-for iterates, or "" if the line has none.
std::string range_for_target(const std::string& code) {
  for (std::size_t pos = code.find("for"); pos != std::string::npos;
       pos = code.find("for", pos + 1)) {
    if (!word_at(code, pos, "for")) continue;
    const std::size_t open = code.find('(', pos);
    if (open == std::string::npos) return "";
    int depth = 0;
    std::size_t colon = std::string::npos;
    std::size_t close = std::string::npos;
    for (std::size_t i = open; i < code.size(); ++i) {
      if (code[i] == '(') ++depth;
      if (code[i] == ')') {
        --depth;
        if (depth == 0) {
          close = i;
          break;
        }
      }
      if (code[i] == ':' && depth == 1 && colon == std::string::npos) {
        // Skip '::' scope operators.
        if ((i + 1 < code.size() && code[i + 1] == ':') || (i > 0 && code[i - 1] == ':')) {
          continue;
        }
        colon = i;
      }
    }
    if (colon == std::string::npos || close == std::string::npos) continue;
    std::string expr = code.substr(colon + 1, close - colon - 1);
    // Strip whitespace and take the leading identifier of the range.
    std::size_t start = 0;
    while (start < expr.size() && expr[start] == ' ') ++start;
    std::size_t end = start;
    while (end < expr.size() && ident_char(expr[end])) ++end;
    // `obj.member()` / `obj->x` ranges iterate what the call returns; only a
    // bare identifier (possibly the whole expr) maps back to a declaration.
    std::string rest = expr.substr(end);
    rest.erase(std::remove(rest.begin(), rest.end(), ' '), rest.end());
    if (!rest.empty()) continue;
    return expr.substr(start, end - start);
  }
  return "";
}

std::vector<Diagnostic> run_source_rules(const std::string& path,
                                         const std::vector<std::string>& raw,
                                         const std::vector<std::string>& code) {
  std::vector<Diagnostic> out;
  auto emit = [&](std::size_t line_no, const char* rule, std::string message) {
    if (line_no >= 1 && line_no <= raw.size() && suppressed(raw[line_no - 1], rule)) return;
    out.push_back(Diagnostic{path, line_no, rule, std::move(message)});
  };

  if (has_suffix(path, ".hpp")) {
    bool found = false;
    for (const std::string& line : raw) {
      if (line.find("#pragma once") != std::string::npos) {
        found = true;
        break;
      }
    }
    if (!found) {
      emit(1, "pragma-once", "header is missing '#pragma once' (multiple inclusion hazard)");
    }
  }

  const std::vector<std::string> unordered = unordered_decls(code);

  // Raw clock reads outside the obs layer and the bench harness bypass the
  // deterministic/timing metric split (docs/OBSERVABILITY.md): timing taken
  // ad hoc cannot be compiled out by UPN_NDEBUG_OBS and tends to leak into
  // outputs that must be byte-stable across runs.
  const bool timing_exempt = path.find("src/obs/") != std::string::npos ||
                             path.find("bench/harness.") != std::string::npos;

  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    const std::size_t line_no = i + 1;

    if (contains_word(line, "rand") || contains_word(line, "srand")) {
      emit(line_no, "no-std-rand",
           "rand()/srand() are not reproducible across platforms; use upn::Rng");
    }
    for (const char* bad : {"std::random_device", "std::mt19937",
                            "std::default_random_engine", "std::minstd_rand"}) {
      if (line.find(bad) != std::string::npos) {
        emit(line_no, "no-unseeded-rng",
             std::string{bad} +
                 " breaks seed-reproducibility; thread an explicit upn::Rng instead");
        break;
      }
    }
    if (line.find("std::endl") != std::string::npos) {
      emit(line_no, "no-endl",
           "std::endl flushes on every call (quadratic in emission loops); use '\\n'");
    }
    if (!timing_exempt) {
      if (line.find("std::chrono") != std::string::npos ||
          contains_word(line, "steady_clock") || contains_word(line, "system_clock") ||
          contains_word(line, "high_resolution_clock")) {
        emit(line_no, "no-raw-timing",
             "raw std::chrono timing outside src/obs/ and the bench harness; use "
             "upn::obs::now_ns() / UPN_OBS_SPAN so timing stays on the kTiming side "
             "of the determinism split");
      } else if (contains_word(line, "clock_gettime") ||
                 contains_word(line, "gettimeofday")) {
        emit(line_no, "no-raw-timing",
             "raw OS clock call outside src/obs/ and the bench harness; use "
             "upn::obs::now_ns() / UPN_OBS_SPAN so timing stays on the kTiming side "
             "of the determinism split");
      }
    }
    for (std::size_t pos = 0; pos + 1 < line.size(); ++pos) {
      const bool eq = line[pos] == '=' && line[pos + 1] == '=';
      const bool neq = line[pos] == '!' && line[pos + 1] == '=';
      if (!eq && !neq) continue;
      if (pos > 0 && (line[pos - 1] == '=' || line[pos - 1] == '!' ||
                      line[pos - 1] == '<' || line[pos - 1] == '>')) {
        continue;  // tail of <=, >=, ==, !=
      }
      if (pos + 2 < line.size() && line[pos + 2] == '=') {
        ++pos;
        continue;  // head of a wider operator
      }
      const std::string lhs = token_before(line, pos);
      const std::string rhs = token_after(line, pos + 2);
      if (is_float_literal(lhs) || is_float_literal(rhs)) {
        emit(line_no, "float-equality",
             "exact comparison against a floating-point literal; compare with a "
             "tolerance or restructure");
        break;
      }
    }
    if (!unordered.empty()) {
      const std::string target = range_for_target(line);
      if (!target.empty() &&
          std::binary_search(unordered.begin(), unordered.end(), target)) {
        emit(line_no, "unordered-iteration",
             "iteration order over std::unordered_{map,set} '" + target +
                 "' is unspecified; protocol/schedule emission must be deterministic "
                 "(sort first or use std::map)");
      }
    }
  }
  return out;
}

// ---- artifact linting -----------------------------------------------------

struct OpLine {
  char kind = 0;  ///< 'G', 'S', 'R'
  std::uint32_t proc = 0, node = 0, time = 0, partner = 0;
  std::size_t line_no = 0;
};

std::vector<std::string> tokens_of(const std::string& line) {
  std::istringstream stream{line};
  std::vector<std::string> tokens;
  std::string token;
  while (stream >> token) tokens.push_back(std::move(token));
  return tokens;
}

/// Protocol static checks beyond read_protocol's well-formedness: every
/// receive pairs with a same-step send, and every final pebble (P_i, T) is
/// generated somewhere.  No pebble-game replay happens here.
std::vector<Diagnostic> check_protocol(const std::string& path, const std::string& content,
                                       const Protocol& protocol) {
  std::vector<Diagnostic> out;
  const std::vector<std::string> lines = split_lines(content);
  std::vector<std::vector<OpLine>> steps;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto tokens = tokens_of(lines[i]);
    if (tokens.empty()) continue;
    if (tokens[0] == "step") {
      steps.emplace_back();
      continue;
    }
    OpLine op;
    op.kind = tokens[0][0];
    op.proc = static_cast<std::uint32_t>(std::stoul(tokens[1]));
    op.node = static_cast<std::uint32_t>(std::stoul(tokens[2]));
    op.time = static_cast<std::uint32_t>(std::stoul(tokens[3]));
    if (tokens.size() > 4) op.partner = static_cast<std::uint32_t>(std::stoul(tokens[4]));
    op.line_no = i + 1;
    steps.back().push_back(op);
  }

  for (const auto& step : steps) {
    for (const OpLine& op : step) {
      if (op.kind != 'R') continue;
      const bool matched =
          std::any_of(step.begin(), step.end(), [&](const OpLine& other) {
            return other.kind == 'S' && other.proc == op.partner &&
                   other.partner == op.proc && other.node == op.node &&
                   other.time == op.time;
          });
      if (!matched) {
        out.push_back(Diagnostic{
            path, op.line_no, "protocol-unmatched-receive",
            "receive of (P" + std::to_string(op.node) + "," + std::to_string(op.time) +
                ") at proc " + std::to_string(op.proc) + " has no matching send from proc " +
                std::to_string(op.partner) + " in the same step"});
      }
    }
  }

  if (protocol.guest_steps() > 0) {
    std::vector<char> generated(protocol.num_guests(), 0);
    for (const auto& step : steps) {
      for (const OpLine& op : step) {
        if (op.kind == 'G' && op.time == protocol.guest_steps() &&
            op.node < generated.size()) {
          generated[op.node] = 1;
        }
      }
    }
    for (std::uint32_t i = 0; i < generated.size(); ++i) {
      if (!generated[i]) {
        out.push_back(Diagnostic{
            path, 1, "protocol-final-coverage",
            "final pebble (P" + std::to_string(i) + "," +
                std::to_string(protocol.guest_steps()) +
                ") is never generated; the protocol does not finish the simulation"});
      }
    }
  }
  return out;
}

std::vector<Diagnostic> check_embedding(const std::string& path,
                                        const StoredEmbedding& stored) {
  std::vector<Diagnostic> out;
  std::vector<std::uint32_t> load(stored.num_hosts, 0);
  std::uint32_t actual = 0;
  for (const NodeId q : stored.map) actual = std::max(actual, ++load[q]);
  if (actual > stored.declared_load) {
    out.push_back(Diagnostic{
        path, 1, "embedding-load-exceeds-declaration",
        "actual load " + std::to_string(actual) + " exceeds the declared bound " +
            std::to_string(stored.declared_load)});
  }
  return out;
}

std::vector<Diagnostic> check_schedule(const std::string& path, const std::string& content,
                                       const StoredPathSchedule& stored) {
  std::vector<Diagnostic> out;
  const std::vector<std::string> lines = split_lines(content);

  std::map<std::uint64_t, std::uint32_t> link_total;          // directed link -> uses
  std::map<std::uint64_t, std::size_t> link_in_step;          // link -> line of use
  std::vector<std::uint32_t> hops(stored.num_packets, 0);
  std::vector<std::pair<bool, std::uint32_t>> at(stored.num_packets, {false, 0});

  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto tokens = tokens_of(lines[i]);
    if (tokens.empty()) continue;
    const std::size_t line_no = i + 1;
    if (tokens[0] == "step") {
      link_in_step.clear();
      continue;
    }
    const auto packet = static_cast<std::uint32_t>(std::stoul(tokens[1]));
    const auto from = static_cast<std::uint32_t>(std::stoul(tokens[2]));
    const auto to = static_cast<std::uint32_t>(std::stoul(tokens[3]));
    const std::uint64_t key = (static_cast<std::uint64_t>(from) << 32) | to;

    const auto [prev_seen, prev_at] = at[packet];
    if (prev_seen && prev_at != from) {
      out.push_back(Diagnostic{path, line_no, "schedule-broken-path",
                               "packet " + std::to_string(packet) + " moves from " +
                                   std::to_string(from) + " but last arrived at " +
                                   std::to_string(prev_at)});
    }
    at[packet] = {true, to};

    const auto in_step = link_in_step.find(key);
    if (in_step != link_in_step.end()) {
      out.push_back(Diagnostic{path, line_no, "schedule-link-conflict",
                               "directed link " + std::to_string(from) + "->" +
                                   std::to_string(to) + " already used this step (line " +
                                   std::to_string(in_step->second) + ")"});
    } else {
      link_in_step.emplace(key, line_no);
    }

    if (++link_total[key] == stored.schedule.congestion + 1) {
      out.push_back(Diagnostic{path, line_no, "schedule-congestion-exceeds-declaration",
                               "directed link " + std::to_string(from) + "->" +
                                   std::to_string(to) + " exceeds the declared congestion " +
                                   std::to_string(stored.schedule.congestion)});
    }
    if (++hops[packet] == stored.schedule.dilation + 1) {
      out.push_back(Diagnostic{path, line_no, "schedule-dilation-exceeds-declaration",
                               "packet " + std::to_string(packet) +
                                   " exceeds the declared dilation " +
                                   std::to_string(stored.schedule.dilation)});
    }
  }
  return out;
}

std::vector<Diagnostic> check_fault_plan(const std::string& path, const std::string& content,
                                         const FaultPlan& plan) {
  std::vector<Diagnostic> out;
  (void)plan;  // well-formedness is fully enforced by read_fault_plan
  const std::vector<std::string> lines = split_lines(content);
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> seen_links;
  std::map<std::uint32_t, std::size_t> seen_nodes;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto tokens = tokens_of(lines[i]);
    if (tokens.empty()) continue;
    const std::size_t line_no = i + 1;
    if (tokens[0] == "L" && tokens.size() >= 3) {
      auto u = static_cast<std::uint32_t>(std::stoul(tokens[1]));
      auto v = static_cast<std::uint32_t>(std::stoul(tokens[2]));
      if (u > v) std::swap(u, v);
      const auto [it, fresh] = seen_links.emplace(std::make_pair(u, v), line_no);
      if (!fresh) {
        out.push_back(Diagnostic{path, line_no, "faultplan-duplicate-fault",
                                 "link {" + tokens[1] + "," + tokens[2] +
                                     "} already has a permanent fault (line " +
                                     std::to_string(it->second) + ")"});
      }
    } else if (tokens[0] == "N" && tokens.size() >= 2) {
      const auto v = static_cast<std::uint32_t>(std::stoul(tokens[1]));
      const auto [it, fresh] = seen_nodes.emplace(v, line_no);
      if (!fresh) {
        out.push_back(Diagnostic{path, line_no, "faultplan-duplicate-fault",
                                 "node " + tokens[1] +
                                     " already has a permanent fault (line " +
                                     std::to_string(it->second) + ")"});
      }
    }
  }
  return out;
}

}  // namespace

std::vector<Diagnostic> lint_source(const std::string& path, const std::string& content) {
  const std::vector<std::string> raw = split_lines(content);
  return run_source_rules(path, raw, code_view(raw));
}

std::vector<Diagnostic> lint_artifact(const std::string& path, const std::string& content) {
  std::vector<Diagnostic> out;
  std::istringstream stream{content};
  try {
    if (has_suffix(path, ".upnp")) {
      const Protocol protocol = read_protocol(stream);
      out = check_protocol(path, content, protocol);
    } else if (has_suffix(path, ".upne")) {
      const StoredEmbedding stored = read_embedding(stream);
      out = check_embedding(path, stored);
    } else if (has_suffix(path, ".upns")) {
      const StoredPathSchedule stored = read_path_schedule(stream);
      out = check_schedule(path, content, stored);
    } else if (has_suffix(path, ".upnf")) {
      const FaultPlan plan = read_fault_plan(stream);
      out = check_fault_plan(path, content, plan);
    }
  } catch (const std::exception& e) {
    out.push_back(Diagnostic{path, 0, "artifact-malformed", e.what()});
  }
  return out;
}

bool is_artifact_path(const std::string& path) {
  return has_suffix(path, ".upnp") || has_suffix(path, ".upne") ||
         has_suffix(path, ".upns") || has_suffix(path, ".upnf");
}

bool is_source_path(const std::string& path) {
  return has_suffix(path, ".cpp") || has_suffix(path, ".hpp");
}

}  // namespace upn::lint
