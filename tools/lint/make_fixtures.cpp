// Regenerates the CLEAN artifact fixtures under tests/fixtures/ and the
// upn_analyze source-fixture trees under tests/fixtures-clean/analyze/ and
// tests/fixtures-bad/analyze/.  Artifacts are produced deterministically
// (fixed seeds, library generators) so a rerun after a format change yields
// reviewable diffs.  The corrupted ARTIFACT fixtures under tests/fixtures-bad/
// are hand-written and NOT regenerated here: each encodes one specific
// violation upn_lint must catch.  The analyze trees ARE regenerated: one
// table below is the single source of truth for both, pairing each clean
// construct with its deliberate violation.
//
// Usage: make_fixtures <artifact-dir> [<analyze-clean-dir> <analyze-bad-dir>]
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "src/core/embedding.hpp"
#include "src/core/embedding_io.hpp"
#include "src/fault/fault_plan.hpp"
#include "src/pebble/io.hpp"
#include "src/pebble/protocol.hpp"
#include "src/routing/hh_problem.hpp"
#include "src/routing/path_schedule.hpp"
#include "src/routing/schedule_io.hpp"
#include "src/topology/builders.hpp"

namespace fs = std::filesystem;

namespace {

/// One analyze fixture: a repo-relative path plus its content in each tree.
/// A null side means the file exists only in the other tree.  Content is
/// assembled from single-line string fragments so this generator itself
/// stays clean under the engine (string literals are blanked per line).
struct AnalyzeFixture {
  const char* rel;
  const char* clean;
  const char* bad;
};

const AnalyzeFixture kAnalyzeFixtures[] = {
    // Declared module DAG.  The bad variant declares a cycle (alpha <-> beta),
    // carries a stale waiver for an edge that never occurs, and points a
    // hotpath directive at a module that was never declared.
    {"docs/ARCHITECTURE.layers",
     "# fixture DAG: two modules, one declared edge, one hot-path module\n"
     "layer util\n"
     "layer core: util\n"
     "layer hot: util\n"
     "hotpath hot\n",
     "# fixture DAG: declared cycle + stale waiver + dangling hotpath\n"
     "layer util\n"
     "layer core: util\n"
     "layer hot: util\n"
     "layer alpha: beta\n"
     "layer beta: alpha\n"
     "waive core -> alpha: legacy shim, removed long ago\n"
     "hotpath hot\n"
     "hotpath ghost\n"},

    // Hot-path performance baseline for the `hot` module.  The clean tree
    // freezes real deque debt (the finding moves to the baselined bucket);
    // the bad tree lists debt that no longer exists, so the shrink-only
    // ratchet itself fires (baseline-stale-entry).
    {"tools/analyze/hotpath.baseline",
     "# fixture hot-path baseline: frozen deque debt in the demo engine\n"
     "src/hot/engine_demo.hpp:hotpath-container:deque\n",
     "# fixture hot-path baseline: this debt was paid off long ago\n"
     "src/hot/engine_demo.hpp:hotpath-container:deque\n"},

    // Contracted leaf header (util).
    {"src/util/checked_math.hpp",
     "#pragma once\n"
     "\n"
     "namespace demo {\n"
     "\n"
     "inline int checked_halve(int value) {\n"
     "  UPN_REQUIRE(value >= 0);\n"
     "  return value / 2;\n"
     "}\n"
     "\n"
     "}  // namespace demo\n",
     nullptr},

    // Declared core -> util edge, contract + waiver syntax exercised.
    {"src/core/pipeline_demo.hpp",
     "#pragma once\n"
     "\n"
     "#include \"src/util/checked_math.hpp\"\n"
     "\n"
     "namespace demo {\n"
     "\n"
     "inline int half_of(int value) {\n"
     "  UPN_REQUIRE(value >= 0);\n"
     "  return demo::checked_halve(value);\n"
     "}\n"
     "\n"
     "inline int identity(int value) {\n"
     "  // upn-contract-waive(pure passthrough, no precondition to state)\n"
     "  int result = value;\n"
     "  return result;\n"
     "}\n"
     "\n"
     "}  // namespace demo\n",
     nullptr},

    // In-line suppression syntax exercised in the clean tree.
    {"src/core/seeded.cpp",
     "#include \"src/core/pipeline_demo.hpp\"\n"
     "\n"
     "namespace demo {\n"
     "\n"
     "int reseed() {\n"
     "  return half_of(4) + rand();  // upn-lint-allow(no-std-rand)\n"
     "}\n"
     "\n"
     "}  // namespace demo\n",
     nullptr},

    // Undeclared util -> core edge (bad only).
    {"src/util/uses_core.hpp", nullptr,
     "#pragma once\n"
     "\n"
     "#include \"src/core/loop_a.hpp\"\n"},

    // File-level include cycle (bad only).
    {"src/core/loop_a.hpp", nullptr,
     "#pragma once\n"
     "\n"
     "#include \"src/core/loop_b.hpp\"\n"},
    {"src/core/loop_b.hpp", nullptr,
     "#pragma once\n"
     "\n"
     "#include \"src/core/loop_a.hpp\"\n"},

    // Public multi-statement function, no contract, no waiver (bad only).
    {"src/core/uncontracted.hpp", nullptr,
     "#pragma once\n"
     "\n"
     "namespace demo {\n"
     "\n"
     "inline int clamp_add(int a, int b) {\n"
     "  int sum = a + b;\n"
     "  if (sum < 0) sum = 0;\n"
     "  return sum;\n"
     "}\n"
     "\n"
     "}  // namespace demo\n"},

    // Flow rules, one violation per construct (bad only).
    {"src/core/flow.cpp", nullptr,
     "#include <thread>\n"
     "\n"
     "namespace demo {\n"
     "\n"
     "void run_flow(upn::Rng rng, long big) {\n"
     "  auto tiny = static_cast<std::uint16_t>(big);\n"
     "  std::thread worker{[tiny] { (void)tiny; }};\n"
     "  worker.detach();\n"
     "  (void)rng;\n"
     "}\n"
     "\n"
     "}  // namespace demo\n"},

    // Header with declarations nobody uses -> unused-include (bad only).
    {"src/core/quiet.hpp", nullptr,
     "#pragma once\n"
     "\n"
     "namespace demo {\n"
     "\n"
     "inline int quiet_level() { return 3; }\n"
     "\n"
     "}  // namespace demo\n"},
    {"src/core/unused_inc.cpp", nullptr,
     "#include \"src/core/quiet.hpp\"\n"
     "\n"
     "namespace demo {\n"
     "\n"
     "int forty_two() { return 42; }\n"
     "\n"
     "}  // namespace demo\n"},

    // Missing include guard (bad only).
    {"src/core/missing_pragma.hpp", nullptr,
     "namespace demo {\n"
     "\n"
     "struct Empty {};\n"
     "\n"
     "}  // namespace demo\n"},

    // Concurrency-safety pass.  Clean: index-disjoint writes and a per-task
    // Rng sub-stream.  Bad: a by-reference accumulation race plus one Rng
    // advanced from every task.
    {"src/core/par_tasks.cpp",
     "namespace demo {\n"
     "\n"
     "void fill_counts(Pool& pool, std::vector<int>& out, std::uint64_t seed) {\n"
     "  pool.parallel_for(out.size(), [&](std::size_t i) {\n"
     "    Rng rng = Rng::stream(seed, i);\n"
     "    out[i] = static_cast<int>(rng.next_u64());\n"
     "  });\n"
     "}\n"
     "\n"
     "}  // namespace demo\n",
     "namespace demo {\n"
     "\n"
     "void sum_counts(Pool& pool, const std::vector<int>& in, long& total, Rng& rng) {\n"
     "  pool.parallel_for(in.size(), [&](std::size_t i) {\n"
     "    total += in[i] + static_cast<long>(rng.next_u64());\n"
     "  });\n"
     "}\n"
     "\n"
     "}  // namespace demo\n"},

    // Determinism-taint pass.  Clean: unordered iteration is collected and
    // std::sort'ed before reaching the obs counter (sanitized).  Bad: four
    // nondeterminism sources each flow into a deterministic sink.
    {"src/core/metric_export.cpp",
     "namespace demo {\n"
     "\n"
     "void export_totals(const std::unordered_map<int, long>& table) {\n"
     "  std::vector<long> values;\n"
     "  for (const auto& [key, value] : table) {\n"
     "    values.push_back(value);\n"
     "  }\n"
     "  std::sort(values.begin(), values.end());\n"
     "  UPN_OBS_COUNT(\"demo.values\", values.size());\n"
     "}\n"
     "\n"
     "}  // namespace demo\n",
     "namespace demo {\n"
     "\n"
     "void export_totals(const std::unordered_map<int, long>& table,\n"
     "                   std::thread::id worker) {\n"
     "  long total = 0;\n"
     "  for (const auto& [key, value] : table) {\n"
     "    total += value;\n"
     "  }\n"
     "  UPN_OBS_COUNT(\"demo.total\", total);\n"
     "  const auto stamp = std::chrono::steady_clock::now().time_since_epoch().count();\n"
     "  UPN_OBS_GAUGE_MAX(\"demo.stamp\", stamp);\n"
     "  const auto where = reinterpret_cast<std::uintptr_t>(&table);\n"
     "  UPN_OBS_COUNT(\"demo.where\", where);\n"
     "  UPN_OBS_COUNT(\"demo.worker\", std::hash<std::thread::id>{}(worker));\n"
     "}\n"
     "\n"
     "}  // namespace demo\n"},

    // Hot-path performance pass over the `hot` module.  Clean: the deque is
    // frozen in the fixture baseline, and the by-value parameter is the
    // sanctioned sink idiom (moved in the same unit).  Bad: a banned
    // container, virtual dispatch, allocation in a loop, and a genuine
    // by-value container parameter -- plus the stale baseline entry.
    {"src/hot/engine_demo.hpp",
     "#pragma once\n"
     "\n"
     "namespace demo {\n"
     "\n"
     "struct Queue {\n"
     "  std::deque<int> pending;\n"
     "};\n"
     "\n"
     "inline void consume(std::vector<int> batch) {\n"
     "  std::vector<int> sink = std::move(batch);\n"
     "}\n"
     "\n"
     "}  // namespace demo\n",
     "#pragma once\n"
     "\n"
     "namespace demo {\n"
     "\n"
     "struct Queue {\n"
     "  std::list<int> pending;\n"
     "};\n"
     "\n"
     "struct Policy {\n"
     "  virtual int next_hop(int at) = 0;\n"
     "};\n"
     "\n"
     "inline long drain(std::vector<long> batch) {\n"
     "  long total = 0;\n"
     "  for (std::size_t i = 0; i < batch.size(); ++i) {\n"
     "    auto* cell = new long(batch[i]);\n"
     "    total += *cell;\n"
     "    delete cell;\n"
     "  }\n"
     "  return total;\n"
     "}\n"
     "\n"
     "inline int hot_entry(int load) {\n"
     "  int scaled = load * 2;\n"
     "  return scaled + 1;\n"
     "}\n"
     "\n"
     "}  // namespace demo\n"},

    // Interprocedural lock-order pass.  Clean: both functions take mu_a then
    // mu_b, and the parallel task touches only its own slot.  Bad: reversed
    // acquisition order across two functions (lock-order-cycle) plus a task
    // body that locks through a callee and opens a file (task-blocking-call,
    // task-blocking-io).
    {"src/core/lock_discipline.cpp",
     "namespace demo {\n"
     "\n"
     "std::mutex mu_a;\n"
     "std::mutex mu_b;\n"
     "int shared_a = 0;\n"
     "int shared_b = 0;\n"
     "\n"
     "void first_then_second() {\n"
     "  std::lock_guard<std::mutex> ga(mu_a);\n"
     "  std::lock_guard<std::mutex> gb(mu_b);\n"
     "  shared_a += 1;\n"
     "  shared_b += 1;\n"
     "}\n"
     "\n"
     "void also_first_then_second() {\n"
     "  std::lock_guard<std::mutex> ga(mu_a);\n"
     "  std::lock_guard<std::mutex> gb(mu_b);\n"
     "  shared_b += shared_a;\n"
     "}\n"
     "\n"
     "void update_both(Pool& pool, std::vector<int>& out) {\n"
     "  pool.parallel_for(out.size(), [&](std::size_t i) {\n"
     "    out[i] += 1;\n"
     "  });\n"
     "}\n"
     "\n"
     "}  // namespace demo\n",
     "namespace demo {\n"
     "\n"
     "std::mutex mu_a;\n"
     "std::mutex mu_b;\n"
     "int shared_a = 0;\n"
     "\n"
     "int locked_read() {\n"
     "  std::lock_guard<std::mutex> ga(mu_a);\n"
     "  return shared_a;\n"
     "}\n"
     "\n"
     "void lock_ab() {\n"
     "  std::lock_guard<std::mutex> ga(mu_a);\n"
     "  std::lock_guard<std::mutex> gb(mu_b);\n"
     "  shared_a += 1;\n"
     "}\n"
     "\n"
     "void lock_ba() {\n"
     "  std::lock_guard<std::mutex> gb(mu_b);\n"
     "  std::lock_guard<std::mutex> ga(mu_a);\n"
     "  shared_a += 2;\n"
     "}\n"
     "\n"
     "void report_progress(Pool& pool, std::vector<int>& out) {\n"
     "  pool.parallel_for(out.size(), [&](std::size_t i) {\n"
     "    out[i] = locked_read();\n"
     "    std::ofstream log{\"progress.txt\"};\n"
     "    log << out[i];\n"
     "  });\n"
     "}\n"
     "\n"
     "}  // namespace demo\n"},

    // Contract-propagation pass.  The callee states a precondition; the clean
    // caller passes literals that satisfy it, the bad caller passes one that
    // provably violates it (contract-violated-call).
    {"src/core/call_contracts.cpp",
     "namespace demo {\n"
     "\n"
     "int scaled_budget(int budget) {\n"
     "  UPN_REQUIRE(budget >= 0);\n"
     "  return budget * 2;\n"
     "}\n"
     "\n"
     "int plan_budget() {\n"
     "  return scaled_budget(12) + scaled_budget(0);\n"
     "}\n"
     "\n"
     "}  // namespace demo\n",
     "namespace demo {\n"
     "\n"
     "int scaled_budget(int budget) {\n"
     "  UPN_REQUIRE(budget >= 0);\n"
     "  return budget * 2;\n"
     "}\n"
     "\n"
     "int plan_budget() {\n"
     "  return scaled_budget(-3);\n"
     "}\n"
     "\n"
     "}  // namespace demo\n"},

    // Exception-safety pass.  Clean: a noexcept chain whose every callee is
    // itself noexcept, and a destructor that cannot throw.  Bad: a noexcept
    // function calling a throwing callee (noexcept-may-throw) and a
    // destructor reaching a throw (dtor-may-throw).
    {"src/core/noexcept_paths.cpp",
     "namespace demo {\n"
     "\n"
     "inline int halved(int value) noexcept {\n"
     "  return value / 2;\n"
     "}\n"
     "\n"
     "int stable_sum(const std::vector<int>& values) noexcept {\n"
     "  int total = 0;\n"
     "  for (const int v : values) total += halved(v);\n"
     "  return total;\n"
     "}\n"
     "\n"
     "struct Closer {\n"
     "  int fd = -1;\n"
     "  ~Closer() { fd = -1; }\n"
     "};\n"
     "\n"
     "}  // namespace demo\n",
     "namespace demo {\n"
     "\n"
     "inline int risky_half(int value) {\n"
     "  if (value < 0) throw std::invalid_argument{\"negative\"};\n"
     "  return value / 2;\n"
     "}\n"
     "\n"
     "int fast_half(int value) noexcept {\n"
     "  return risky_half(value);\n"
     "}\n"
     "\n"
     "void flush_or_throw(int fd) {\n"
     "  if (fd < 0) throw std::runtime_error{\"bad fd\"};\n"
     "}\n"
     "\n"
     "struct Flusher {\n"
     "  int fd = 0;\n"
     "  ~Flusher() { flush_or_throw(fd); }\n"
     "};\n"
     "\n"
     "}  // namespace demo\n"},

    // Dead-function pass (bad only): defined, never mentioned anywhere else.
    {"src/core/orphan.cpp", nullptr,
     "namespace demo {\n"
     "\n"
     "int orphaned_scale(int value) {\n"
     "  return value * 3;\n"
     "}\n"
     "\n"
     "}  // namespace demo\n"},

    // Liveness anchor: a main() that references every function the trees
    // define on purpose, so dead-function fires only on the orphan above.
    // The bad variant deliberately omits orphaned_scale and routes one call
    // into the hot module so hotpath-unchecked-entry has a cross-module
    // caller.
    {"src/core/fixture_main.cpp",
     "namespace demo {\n"
     "\n"
     "int run_all(Pool& pool) {\n"
     "  std::vector<int> data(4, 0);\n"
     "  fill_counts(pool, data, 7);\n"
     "  update_both(pool, data);\n"
     "  consume(data);\n"
     "  std::unordered_map<int, long> table;\n"
     "  export_totals(table);\n"
     "  first_then_second();\n"
     "  also_first_then_second();\n"
     "  return reseed() + identity(9) + plan_budget() + stable_sum(data);\n"
     "}\n"
     "\n"
     "}  // namespace demo\n"
     "\n"
     "int main() {\n"
     "  demo::Pool pool;\n"
     "  return demo::run_all(pool);\n"
     "}\n",
     "namespace demo {\n"
     "\n"
     "int poke_everything() {\n"
     "  (void)sizeof(&sum_counts);\n"
     "  (void)sizeof(&run_flow);\n"
     "  (void)sizeof(&report_progress);\n"
     "  (void)sizeof(&export_totals);\n"
     "  (void)drain(std::vector<long>{});\n"
     "  lock_ab();\n"
     "  lock_ba();\n"
     "  return forty_two() + quiet_level() + clamp_add(1, 2) + hot_entry(3) +\n"
     "         fast_half(5) + plan_budget();\n"
     "}\n"
     "\n"
     "}  // namespace demo\n"
     "\n"
     "int main() { return demo::poke_everything(); }\n"},
};

void write_tree(const fs::path& root, bool bad) {
  for (const AnalyzeFixture& fixture : kAnalyzeFixtures) {
    const char* content = bad ? fixture.bad : fixture.clean;
    if (content == nullptr) continue;
    const fs::path path = root / fixture.rel;
    fs::create_directories(path.parent_path());
    std::ofstream os{path, std::ios::binary};
    os << content;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2 && argc != 4) {
    std::cerr << "usage: make_fixtures <artifact-dir> [<analyze-clean-dir> <analyze-bad-dir>]\n";
    return 2;
  }
  const fs::path out{argv[1]};
  fs::create_directories(out);

  if (argc == 4) {
    write_tree(fs::path{argv[2]}, /*bad=*/false);
    write_tree(fs::path{argv[3]}, /*bad=*/true);
  }

  // Protocol: 2 guests on 2 hosts, T = 1.  Step 1 generates both final
  // pebbles; step 2 exchanges (P0, 1) so both hosts hold it.
  {
    upn::Protocol protocol{2, 2, 1};
    protocol.begin_step();
    protocol.add({upn::OpKind::kGenerate, 0, {0, 1}, 0});
    protocol.add({upn::OpKind::kGenerate, 1, {1, 1}, 0});
    protocol.begin_step();
    protocol.add({upn::OpKind::kSend, 0, {0, 1}, 1});
    protocol.add({upn::OpKind::kReceive, 1, {0, 1}, 0});
    std::ofstream os{out / "exchange.upnp"};
    upn::write_protocol(os, protocol);
  }

  // Embedding: 8 guests block-embedded on 4 hosts (load 2).
  {
    const auto embedding = upn::make_block_embedding(8, 4);
    std::ofstream os{out / "block_8_on_4.upne"};
    upn::write_embedding(os, embedding, 4);
  }

  // Schedule: a fixed permutation on an 8-cycle through the greedy
  // farthest-to-go scheduler; header bounds are the derived C and D.
  {
    const upn::Graph host = upn::make_cycle(8);
    upn::HhProblem problem{8};
    for (upn::NodeId v = 0; v < 8; ++v) problem.add(v, (v + 3) % 8);
    const upn::PathSchedule schedule = upn::schedule_paths(host, problem);
    std::ofstream os{out / "cycle_shift.upns"};
    upn::write_path_schedule(os, schedule, static_cast<std::uint32_t>(problem.size()));
  }

  // Fault plan: one permanent link cut, one node loss, one drop window.
  {
    upn::FaultPlan plan{7};
    plan.add_link_fault({0, 1, 2});
    plan.add_node_fault({3, 4});
    plan.add_drop_window({0, 1, 0, 8, 0.25});
    std::ofstream os{out / "mixed.upnf"};
    upn::write_fault_plan(os, plan);
  }

  std::cout << "fixtures written to " << out.string() << "\n";
  return 0;
}
