// Regenerates the CLEAN artifact fixtures under tests/fixtures/.  All four
// formats are produced deterministically (fixed seeds, library generators),
// so a rerun after a format change yields reviewable diffs.  The corrupted
// fixtures under tests/fixtures-bad/ are hand-written and NOT regenerated
// here: each encodes one specific violation upn_lint must catch.
//
// Usage: make_fixtures <output-dir>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "src/core/embedding.hpp"
#include "src/core/embedding_io.hpp"
#include "src/fault/fault_plan.hpp"
#include "src/pebble/io.hpp"
#include "src/pebble/protocol.hpp"
#include "src/routing/hh_problem.hpp"
#include "src/routing/path_schedule.hpp"
#include "src/routing/schedule_io.hpp"
#include "src/topology/builders.hpp"
#include "src/util/rng.hpp"

namespace fs = std::filesystem;

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: make_fixtures <output-dir>\n";
    return 2;
  }
  const fs::path out{argv[1]};
  fs::create_directories(out);

  // Protocol: 2 guests on 2 hosts, T = 1.  Step 1 generates both final
  // pebbles; step 2 exchanges (P0, 1) so both hosts hold it.
  {
    upn::Protocol protocol{2, 2, 1};
    protocol.begin_step();
    protocol.add({upn::OpKind::kGenerate, 0, {0, 1}, 0});
    protocol.add({upn::OpKind::kGenerate, 1, {1, 1}, 0});
    protocol.begin_step();
    protocol.add({upn::OpKind::kSend, 0, {0, 1}, 1});
    protocol.add({upn::OpKind::kReceive, 1, {0, 1}, 0});
    std::ofstream os{out / "exchange.upnp"};
    upn::write_protocol(os, protocol);
  }

  // Embedding: 8 guests block-embedded on 4 hosts (load 2).
  {
    const auto embedding = upn::make_block_embedding(8, 4);
    std::ofstream os{out / "block_8_on_4.upne"};
    upn::write_embedding(os, embedding, 4);
  }

  // Schedule: a fixed permutation on an 8-cycle through the greedy
  // farthest-to-go scheduler; header bounds are the derived C and D.
  {
    const upn::Graph host = upn::make_cycle(8);
    upn::HhProblem problem{8};
    for (upn::NodeId v = 0; v < 8; ++v) problem.add(v, (v + 3) % 8);
    const upn::PathSchedule schedule = upn::schedule_paths(host, problem);
    std::ofstream os{out / "cycle_shift.upns"};
    upn::write_path_schedule(os, schedule, static_cast<std::uint32_t>(problem.size()));
  }

  // Fault plan: one permanent link cut, one node loss, one drop window.
  {
    upn::FaultPlan plan{7};
    plan.add_link_fault({0, 1, 2});
    plan.add_node_fault({3, 4});
    plan.add_drop_window({0, 1, 0, 8, 0.25});
    std::ofstream os{out / "mixed.upnf"};
    upn::write_fault_plan(os, plan);
  }

  std::cout << "fixtures written to " << out.string() << "\n";
  return 0;
}
