// upn_lint CLI: walks directories, lints sources and artifacts, prints
// file:line diagnostics, and exits nonzero iff anything was found.
//
// Usage:
//   upn_lint [--src DIR]... [--artifacts DIR]... [FILE]...
//
// Exit codes: 0 clean, 1 findings, 2 usage / IO error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.hpp"

namespace fs = std::filesystem;

namespace {

int usage() {
  std::cerr << "usage: upn_lint [--src DIR]... [--artifacts DIR]... [FILE]...\n"
               "  --src DIR        lint every .cpp/.hpp under DIR (recursive)\n"
               "  --artifacts DIR  lint every .upnp/.upne/.upns/.upnf under DIR\n"
               "  FILE             lint one file, kind decided by extension\n";
  return 2;
}

bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

/// Collects matching files under `dir`, sorted so diagnostics are stable.
std::vector<fs::path> collect(const fs::path& dir, bool (*match)(const std::string&),
                              bool& ok) {
  std::vector<fs::path> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it{dir, ec}, end; it != end; it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file()) continue;
    if (match(it->path().string())) files.push_back(it->path());
  }
  if (ec) {
    std::cerr << "upn_lint: cannot walk " << dir.string() << ": " << ec.message() << "\n";
    ok = false;
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> sources;
  std::vector<fs::path> artifacts;
  bool ok = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") return usage();
    if (arg == "--src" || arg == "--artifacts") {
      if (i + 1 >= argc) return usage();
      const fs::path dir = argv[++i];
      if (!fs::is_directory(dir)) {
        std::cerr << "upn_lint: not a directory: " << dir.string() << "\n";
        return 2;
      }
      auto& into = arg == "--src" ? sources : artifacts;
      auto matcher = arg == "--src" ? upn::lint::is_source_path : upn::lint::is_artifact_path;
      for (fs::path& p : collect(dir, matcher, ok)) into.push_back(std::move(p));
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (upn::lint::is_source_path(arg)) {
      sources.emplace_back(arg);
    } else if (upn::lint::is_artifact_path(arg)) {
      artifacts.emplace_back(arg);
    } else {
      std::cerr << "upn_lint: unknown file kind: " << arg << "\n";
      return 2;
    }
  }
  if (!ok) return 2;
  if (sources.empty() && artifacts.empty()) return usage();

  std::size_t findings = 0;
  auto lint_all = [&](const std::vector<fs::path>& files, bool source) {
    for (const fs::path& path : files) {
      std::string content;
      if (!read_file(path, content)) {
        std::cerr << "upn_lint: cannot read " << path.string() << "\n";
        ok = false;
        continue;
      }
      const auto diags = source ? upn::lint::lint_source(path.string(), content)
                                : upn::lint::lint_artifact(path.string(), content);
      for (const auto& d : diags) std::cout << d.format() << "\n";
      findings += diags.size();
    }
  };
  lint_all(sources, /*source=*/true);
  lint_all(artifacts, /*source=*/false);

  if (!ok) return 2;
  if (findings > 0) {
    std::cout << "upn_lint: " << findings << " finding" << (findings == 1 ? "" : "s")
              << "\n";
    return 1;
  }
  return 0;
}
