// upn_lint: the project-specific static analysis engine.
//
// Two layers, both purely static (nothing is executed or replayed):
//
//  * SOURCE rules ban patterns that have bitten this codebase or would
//    silently break its determinism guarantees: unseeded std:: RNGs,
//    rand(), std::endl, missing #pragma once, float ==, and -- the
//    determinism hazard singled out by DESIGN §1 -- range-for iteration
//    over std::unordered_{map,set}, whose order is unspecified and varies
//    across libstdc++ versions, on code that emits protocols/schedules.
//    no-raw-timing additionally bans ad-hoc clock reads (std::chrono,
//    clock_gettime, gettimeofday) outside src/obs/ and bench/harness.* --
//    all timing must flow through the obs layer (docs/OBSERVABILITY.md) so
//    it is tagged kTiming and compiled out by UPN_NDEBUG_OBS.
//
//  * ARTIFACT checks verify on-disk protocols (.upnp), embeddings (.upne),
//    path schedules (.upns), and fault plans (.upnf): well-formed per their
//    parsers, and -- for declared-bound formats -- contents within the
//    congestion / dilation / load bounds the header claims.
//
// A finding can be suppressed on its line with a comment containing
// `upn-lint-allow(<rule>)`; suppressions are deliberate and reviewable.
//
// The engine works on (name, content) pairs so tests can lint in-memory
// strings; main.cpp adds directory walking and diagnostics printing.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace upn::lint {

struct Diagnostic {
  std::string file;
  std::size_t line = 0;   ///< 1-based; 0 when the finding is file-scoped
  std::string rule;       ///< stable rule id, e.g. "no-endl"
  std::string message;

  /// "file:line: [rule] message" -- the format CI greps for.
  [[nodiscard]] std::string format() const;
};

/// Lints one C++ source or header.  `path` is used for diagnostics and to
/// decide header-only rules (#pragma once applies to .hpp).
[[nodiscard]] std::vector<Diagnostic> lint_source(const std::string& path,
                                                  const std::string& content);

/// Lints one artifact by extension (.upnp, .upne, .upns, .upnf).  Files
/// with other extensions yield no diagnostics.
[[nodiscard]] std::vector<Diagnostic> lint_artifact(const std::string& path,
                                                    const std::string& content);

/// True iff the path has an artifact extension lint_artifact understands.
[[nodiscard]] bool is_artifact_path(const std::string& path);

/// True iff the path names a C++ source or header (.cpp / .hpp).
[[nodiscard]] bool is_source_path(const std::string& path);

}  // namespace upn::lint
