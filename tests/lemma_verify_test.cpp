// Lemma 3.12 verification on protocols produced by the real simulator.
#include <gtest/gtest.h>

#include "src/core/embedding.hpp"
#include "src/core/universal_sim.hpp"
#include "src/lowerbound/lemma_verify.hpp"
#include "src/pebble/validator.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/random_regular.hpp"

namespace upn {
namespace {

struct Fixture {
  G0 g0;
  Graph guest;
  Graph host;
  Protocol protocol;
};

Fixture make_fixture(std::uint32_t guest_steps) {
  Rng rng{2024};
  const std::uint32_t m = 12;  // butterfly(2)
  const std::uint32_t a = g0_block_parameter(m);
  const std::uint32_t n = g0_round_guest_size(60, a);
  G0 g0 = make_g0(n, m, rng);
  Graph guest = make_random_regular_with_subgraph(g0.graph, kGuestDegree, rng);
  Graph host = make_butterfly(2);
  UniversalSimulator sim{guest, host, make_random_embedding(n, m, rng)};
  UniversalSimOptions options;
  options.emit_protocol = true;
  UniversalSimResult result = sim.run(guest_steps, options);
  EXPECT_TRUE(result.configs_match);
  return Fixture{std::move(g0), std::move(guest), std::move(host),
                 std::move(*result.protocol)};
}

TEST(Lemma312, HoldsOnSimulatorProtocol) {
  const Fixture fx = make_fixture(14);
  ASSERT_TRUE(validate_protocol(fx.protocol, fx.guest, fx.host).ok);
  const ProtocolMetrics metrics{fx.protocol};
  const Lemma312Report report = verify_lemma312(metrics, fx.g0);

  EXPECT_GT(report.tree_depth, 0u);
  EXPECT_GT(report.inefficiency, 0.0);
  // The averaging argument guarantees a large Z_S.
  EXPECT_TRUE(report.z_large_enough)
      << "|Z| = " << report.z_set.size() << " T = " << metrics.guest_steps();
  ASSERT_FALSE(report.choices.empty());
  for (const auto& choice : report.choices) {
    EXPECT_EQ(choice.roots.size(), fx.g0.num_blocks());
    EXPECT_TRUE(choice.roots_ok)
        << "sum q = " << choice.sum_root_weights << " bound " << choice.bound_roots;
    EXPECT_TRUE(choice.trees_ok)
        << "sum w = " << choice.sum_tree_weights << " bound " << choice.bound_trees;
    // Each root must actually belong to its block.
    for (std::uint32_t j = 0; j < choice.roots.size(); ++j) {
      EXPECT_EQ(fx.g0.layout.block_of(choice.roots[j]), j);
    }
  }
  // The paper-form q-sum bound needs the protocol at least twice the tree
  // depth long (T / (T - depth) <= 2 in the averaging).
  if (metrics.guest_steps() >= 2 * report.tree_depth) {
    EXPECT_TRUE(report.sum_q_ok);
  }
}

TEST(Lemma312, RejectsTooShortProtocol) {
  const Fixture fx = make_fixture(2);
  const ProtocolMetrics metrics{fx.protocol};
  // Tree depth for a = 2 exceeds 2 guest steps.
  EXPECT_THROW((void)verify_lemma312(metrics, fx.g0), std::invalid_argument);
}

TEST(Lemma312, RejectsSizeMismatch) {
  const Fixture fx = make_fixture(14);
  Rng rng{5};
  const G0 wrong = make_g0(g0_round_guest_size(200, fx.g0.a), 12, rng);
  const ProtocolMetrics metrics{fx.protocol};
  EXPECT_THROW((void)verify_lemma312(metrics, wrong), std::invalid_argument);
}

}  // namespace
}  // namespace upn
