// Zero-churn differential: with no faults in play, the online router's
// learned tables must reproduce the offline router's behavior EXACTLY --
// delivery verdicts byte-identical to the oracle-driven SyncRouter, and
// byte-identical to themselves at every thread width (the pool only changes
// wall-clock, never a bit of output).  This is the online regime's analogue
// of the serial-reference contract in par_differential_test.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/fault/fault_plan.hpp"
#include "src/obs/obs.hpp"
#include "src/routing/online/online_router.hpp"
#include "src/routing/online/table_policy.hpp"
#include "src/routing/policies.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/mesh.hpp"
#include "src/util/rng.hpp"

namespace upn {
namespace {

std::vector<Packet> seeded_packets(const Graph& g, std::uint32_t count, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<Packet> packets;
  packets.reserve(count);
  while (packets.size() < count) {
    const NodeId s = static_cast<NodeId>(rng.below(g.num_nodes()));
    const NodeId d = static_cast<NodeId>(rng.below(g.num_nodes()));
    if (s == d) continue;
    Packet p;
    p.src = s;
    p.dst = d;
    p.via = d;
    packets.push_back(p);
  }
  return packets;
}

/// Converges an online router at the given pool width and routes the
/// packets, returning (verdicts, deterministic obs snapshot).
struct OnlineRun {
  std::string verdicts;
  std::string snapshot;
  std::uint32_t steps = 0;
};

OnlineRun run_online(const Graph& host, const std::vector<Packet>& packets, unsigned width) {
  obs::set_enabled(true);
  obs::registry().reset();
  ThreadPool pool{width};
  const FaultPlan quiet;  // churn rate 0: no events, ever
  OnlineRouterConfig config;
  config.pool = &pool;
  OnlineRouter router{host, quiet, config};
  const ConvergenceReport report = router.run_until_stable(1u << 14);
  EXPECT_TRUE(report.stable);
  const OnlineRouteResult result = router.route(packets);
  EXPECT_EQ(result.lost, 0u);
  OnlineRun run;
  run.verdicts = delivery_verdicts(result.packets);
  run.snapshot = obs::snapshot_text(obs::registry().snapshot(obs::MetricKind::kDeterministic));
  run.steps = result.steps;
  return run;
}

std::string run_offline(const Graph& host, std::vector<Packet> packets) {
  GreedyPolicy greedy{host};
  SyncRouter sync{host, PortModel::kMultiPort};
  const RouteResult result = sync.route(std::move(packets), greedy);
  EXPECT_EQ(result.packets_lost, 0u);
  return delivery_verdicts(result.packets);
}

void expect_online_matches_offline(const Graph& host) {
  const std::vector<Packet> packets = seeded_packets(host, 64, 0xd1ff);
  const std::string offline = run_offline(host, packets);

  const OnlineRun serial = run_online(host, packets, 1);
  EXPECT_EQ(serial.verdicts, offline) << host.name();

  // Thread widths {1, 2, 7}: verdicts AND the full deterministic metric
  // snapshot must be byte-identical to the serial reference.
  for (const unsigned width : {2u, 7u}) {
    const OnlineRun wide = run_online(host, packets, width);
    EXPECT_EQ(wide.verdicts, serial.verdicts) << host.name() << " width " << width;
    EXPECT_EQ(wide.snapshot, serial.snapshot) << host.name() << " width " << width;
    EXPECT_EQ(wide.steps, serial.steps) << host.name() << " width " << width;
  }

  // The table-policy bridge into the OFFLINE router agrees as well: learned
  // tables driving SyncRouter deliver everything the oracle delivers.
  ThreadPool pool{1};
  OnlineRouterConfig config;
  config.pool = &pool;
  OnlineRouter router{host, FaultPlan{}, config};
  (void)router.run_until_stable(1u << 14);
  OnlineTablePolicy policy{router};
  SyncRouter sync{host, PortModel::kMultiPort};
  const RouteResult bridged = sync.route(packets, policy);
  EXPECT_EQ(delivery_verdicts(bridged.packets), offline) << host.name();
}

TEST(OnlineDifferential, MatchesOfflineOnButterfly) {
  expect_online_matches_offline(make_butterfly(2));
}

TEST(OnlineDifferential, MatchesOfflineOnMesh) {
  expect_online_matches_offline(make_mesh(4, 6));
}

}  // namespace
}  // namespace upn
