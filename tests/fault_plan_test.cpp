// FaultPlan queries, clock, generators, surgery, and serialization.
#include <gtest/gtest.h>

#include <sstream>

#include "src/fault/fault_plan.hpp"
#include "src/fault/surgery.hpp"
#include "src/topology/builders.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/mesh.hpp"
#include "src/topology/properties.hpp"

namespace upn {
namespace {

TEST(FaultPlan, EmptyPlanKeepsEverythingAlive) {
  const FaultPlan plan{42};
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(plan.node_alive(0, 0));
  EXPECT_TRUE(plan.node_alive(7, 1000));
  EXPECT_TRUE(plan.link_alive(0, 1, 1000));
  EXPECT_FALSE(plan.drops_packet(0, 1, 5, 9));
  EXPECT_TRUE(plan.epochs().empty());
}

TEST(FaultPlan, LinkFaultActivatesAtItsStep) {
  FaultPlan plan;
  plan.add_link_fault(LinkFault{2, 5, 10});
  EXPECT_TRUE(plan.link_alive(2, 5, 9));
  EXPECT_FALSE(plan.link_alive(2, 5, 10));
  EXPECT_FALSE(plan.link_alive(5, 2, 11));  // undirected
  EXPECT_TRUE(plan.link_alive(2, 6, 10));   // other links untouched
  EXPECT_TRUE(plan.node_alive(2, 100));
  EXPECT_TRUE(plan.link_ever_fails(5, 2));
  EXPECT_FALSE(plan.link_ever_fails(2, 6));
  EXPECT_EQ(plan.epochs(), (std::vector<std::uint32_t>{10}));
}

TEST(FaultPlan, NodeFaultKillsIncidentLinks) {
  FaultPlan plan;
  plan.add_node_fault(NodeFault{3, 4});
  EXPECT_TRUE(plan.node_alive(3, 3));
  EXPECT_FALSE(plan.node_alive(3, 4));
  EXPECT_FALSE(plan.link_alive(3, 9, 4));
  EXPECT_FALSE(plan.link_alive(9, 3, 4));
  EXPECT_TRUE(plan.link_alive(8, 9, 4));
  EXPECT_TRUE(plan.node_ever_fails(3));
  EXPECT_FALSE(plan.node_ever_fails(9));
}

TEST(FaultPlan, DropDecisionIsDeterministicAndDirectionless) {
  FaultPlan plan{7};
  plan.add_drop_window(DropWindow{1, 2, 5, 10, 0.5});
  bool any_dropped = false;
  bool any_kept = false;
  for (std::uint32_t id = 0; id < 64; ++id) {
    const bool d = plan.drops_packet(1, 2, 7, id);
    EXPECT_EQ(d, plan.drops_packet(1, 2, 7, id));  // deterministic
    EXPECT_EQ(d, plan.drops_packet(2, 1, 7, id));  // undirected
    any_dropped |= d;
    any_kept |= !d;
  }
  EXPECT_TRUE(any_dropped);
  EXPECT_TRUE(any_kept);
  // Outside the window nothing drops.
  for (std::uint32_t id = 0; id < 64; ++id) {
    EXPECT_FALSE(plan.drops_packet(1, 2, 4, id));
    EXPECT_FALSE(plan.drops_packet(1, 2, 10, id));
  }
}

TEST(FaultPlan, RevealedAtQuantizesActivations) {
  FaultPlan plan{9};
  plan.add_link_fault(LinkFault{0, 1, 3});
  plan.add_link_fault(LinkFault{2, 3, 8});
  plan.add_node_fault(NodeFault{5, 6});
  plan.add_drop_window(DropWindow{0, 2, 0, 100, 0.25});

  const FaultPlan seen = plan.revealed_at(6);
  EXPECT_EQ(seen.seed(), plan.seed());
  // Activated faults re-dated to 0.
  EXPECT_FALSE(seen.link_alive(0, 1, 0));
  EXPECT_FALSE(seen.node_alive(5, 0));
  // Future faults invisible.
  EXPECT_TRUE(seen.link_alive(2, 3, 1000));
  // Drop windows kept verbatim.
  ASSERT_EQ(seen.drop_windows().size(), 1u);
  EXPECT_EQ(seen.drop_windows()[0], plan.drop_windows()[0]);
}

TEST(FaultClock, TracksActivationsIncrementally) {
  FaultPlan plan;
  plan.add_link_fault(LinkFault{0, 1, 2});
  plan.add_node_fault(NodeFault{4, 5});
  FaultClock clock{plan, 8};
  EXPECT_FALSE(clock.advance(0));
  EXPECT_TRUE(clock.link_alive(0, 1));
  EXPECT_TRUE(clock.node_alive(4));
  EXPECT_FALSE(clock.any_faults_active());

  EXPECT_TRUE(clock.advance(2));
  EXPECT_FALSE(clock.link_alive(0, 1));
  EXPECT_TRUE(clock.node_alive(4));
  EXPECT_FALSE(clock.advance(3));  // nothing new

  EXPECT_TRUE(clock.advance(7));
  EXPECT_FALSE(clock.node_alive(4));
  EXPECT_FALSE(clock.link_alive(4, 6));  // incident link dead
  EXPECT_EQ(clock.dead_nodes()[4], 1);
  EXPECT_TRUE(clock.any_faults_active());
}

TEST(FaultPlanGenerators, UniformRatesAreCoupledAcrossRates) {
  const Graph host = make_butterfly(3);
  const FaultPlan low = make_uniform_link_faults(host, 0.1, 77);
  const FaultPlan high = make_uniform_link_faults(host, 0.4, 77);
  EXPECT_LE(low.link_faults().size(), high.link_faults().size());
  // Every fault at the low rate also appears at the high rate.
  for (const LinkFault& f : low.link_faults()) {
    EXPECT_FALSE(high.link_alive(f.u, f.v, f.step));
  }
  // Extremes.
  EXPECT_TRUE(make_uniform_link_faults(host, 0.0, 77).empty());
  EXPECT_EQ(make_uniform_link_faults(host, 1.0, 77).link_faults().size(), host.num_edges());
  EXPECT_EQ(make_uniform_node_faults(host, 1.0, 77).node_faults().size(), host.num_nodes());
}

TEST(FaultPlanGenerators, TargetedCutAndRegion) {
  const FaultPlan cut = make_targeted_cut({{0, 1}, {2, 3}}, 5);
  EXPECT_EQ(cut.link_faults().size(), 2u);
  EXPECT_FALSE(cut.link_alive(1, 0, 5));

  const Graph mesh = make_mesh(5, 5);
  const FaultPlan region = make_region_fault(mesh, 12, 1, 0);  // center + 4 neighbors
  EXPECT_EQ(region.node_faults().size(), 5u);
  EXPECT_FALSE(region.node_alive(12, 0));
}

TEST(FaultPlanGenerators, MergeCombinesFaults) {
  FaultPlan a{1};
  a.add_link_fault(LinkFault{0, 1, 0});
  FaultPlan b{2};
  b.add_node_fault(NodeFault{3, 0});
  const FaultPlan merged = merge_plans(a, b);
  EXPECT_EQ(merged.seed(), 1u);
  EXPECT_FALSE(merged.link_alive(0, 1, 0));
  EXPECT_FALSE(merged.node_alive(3, 0));
}

TEST(FaultPlanIo, RoundTrip) {
  FaultPlan plan{0xabcdef};
  plan.add_link_fault(LinkFault{0, 1, 3});
  plan.add_link_fault(LinkFault{4, 2, 0});
  plan.add_node_fault(NodeFault{7, 9});
  plan.add_drop_window(DropWindow{1, 3, 2, 11, 0.125});
  plan.add_drop_window(DropWindow{0, 5, 0, 0xffffffffu, 1e-3});

  std::stringstream buffer;
  write_fault_plan(buffer, plan);
  const FaultPlan parsed = read_fault_plan(buffer);
  EXPECT_EQ(parsed.seed(), plan.seed());
  EXPECT_EQ(parsed.link_faults(), plan.link_faults());
  EXPECT_EQ(parsed.node_faults(), plan.node_faults());
  EXPECT_EQ(parsed.drop_windows(), plan.drop_windows());
}

TEST(FaultPlanIo, RejectsMalformedInput) {
  const char* bad[] = {
      "",                                           // empty
      "upn-faultplan 3 0 0 0 0\n",                  // unknown version
      "upn-faultplan 2 0 0 0 0\n",                  // v2 header missing repair count
      "upn-faultplan 1 0 1 0 0\n",                  // missing record
      "upn-faultplan 1 0 0 0 0\nL 0 1 2\n",         // extra record
      "upn-faultplan 1 0 1 0 0\nN 3 1\n",           // wrong record kind
      "upn-faultplan 1 0 1 0 0\nL 0 1\n",           // truncated record
      "upn-faultplan 1 0 0 0 1\nD 0 1 0 5 nope\n",  // non-numeric prob
  };
  for (const char* text : bad) {
    std::stringstream buffer{text};
    EXPECT_THROW((void)read_fault_plan(buffer), std::runtime_error) << text;
  }
}

TEST(FaultPlanRepairs, RepairRestoresLinkUntilNextFault) {
  FaultPlan plan;
  plan.add_link_fault(LinkFault{1, 2, 5});
  plan.add_link_repair(LinkRepair{2, 1, 8});  // undirected, like faults
  plan.add_link_fault(LinkFault{1, 2, 12});
  EXPECT_TRUE(plan.link_alive(1, 2, 4));
  EXPECT_FALSE(plan.link_alive(1, 2, 5));
  EXPECT_FALSE(plan.link_alive(1, 2, 7));
  EXPECT_TRUE(plan.link_alive(1, 2, 8));   // healed
  EXPECT_TRUE(plan.link_alive(2, 1, 11));
  EXPECT_FALSE(plan.link_alive(1, 2, 12));  // second failure sticks
  // History is not erased by the heal.
  EXPECT_TRUE(plan.link_ever_fails(1, 2));
  EXPECT_EQ(plan.epochs(), (std::vector<std::uint32_t>{5, 8, 12}));
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanRepairs, SameStepKillAndHealLeavesLinkAlive) {
  FaultPlan plan;
  plan.add_link_fault(LinkFault{0, 3, 6});
  plan.add_link_repair(LinkRepair{0, 3, 6});
  EXPECT_TRUE(plan.link_alive(0, 3, 6));  // repair wins the tie
  EXPECT_TRUE(plan.link_alive(0, 3, 7));
}

TEST(FaultPlanRepairs, RepairNeverResurrectsNodes) {
  FaultPlan plan;
  plan.add_node_fault(NodeFault{3, 2});
  plan.add_link_repair(LinkRepair{3, 9, 5});
  EXPECT_FALSE(plan.node_alive(3, 5));
  EXPECT_FALSE(plan.link_alive(3, 9, 5));  // endpoint stays dead
  EXPECT_THROW(plan.add_link_repair(LinkRepair{4, 4, 0}), std::invalid_argument);
}

TEST(FaultClockRepairs, HealsIncrementally) {
  FaultPlan plan;
  plan.add_link_fault(LinkFault{0, 1, 2});
  plan.add_link_repair(LinkRepair{0, 1, 6});
  plan.add_link_fault(LinkFault{2, 3, 6});
  plan.add_link_repair(LinkRepair{2, 3, 6});  // same-step kill + heal
  FaultClock clock{plan, 8};
  EXPECT_FALSE(clock.advance(1));
  EXPECT_TRUE(clock.link_alive(0, 1));
  EXPECT_TRUE(clock.advance(2));
  EXPECT_FALSE(clock.link_alive(0, 1));
  EXPECT_TRUE(clock.advance(6));  // the heal IS a topology change
  EXPECT_TRUE(clock.link_alive(0, 1));
  EXPECT_TRUE(clock.link_alive(2, 3));  // repair wins the tie
  // The clock's view matches the plan's view at every step.
  FaultClock replay{plan, 8};
  for (std::uint32_t s = 0; s <= 8; ++s) {
    (void)replay.advance(s);
    EXPECT_EQ(replay.link_alive(0, 1), plan.link_alive(0, 1, s)) << s;
    EXPECT_EQ(replay.link_alive(2, 3), plan.link_alive(2, 3, s)) << s;
  }
}

TEST(FaultPlanRepairs, RevealedAtSnapshotsNetState) {
  FaultPlan plan{11};
  plan.add_link_fault(LinkFault{0, 1, 3});
  plan.add_link_repair(LinkRepair{0, 1, 6});
  plan.add_link_fault(LinkFault{2, 3, 4});

  // Mid-outage: the link is revealed as a step-0 fault.
  const FaultPlan mid = plan.revealed_at(4);
  EXPECT_FALSE(mid.link_alive(0, 1, 0));
  EXPECT_FALSE(mid.link_alive(2, 3, 0));

  // After the heal: the healed link vanishes from the reveal entirely --
  // the snapshot shows surviving topology, not the event log.
  const FaultPlan late = plan.revealed_at(10);
  EXPECT_TRUE(late.link_alive(0, 1, 0));
  EXPECT_FALSE(late.link_alive(2, 3, 0));
  EXPECT_TRUE(late.link_repairs().empty());
}

TEST(FaultPlanRepairs, MergeCarriesRepairs) {
  FaultPlan a{1};
  a.add_link_repair(LinkRepair{0, 1, 4});
  FaultPlan b{2};
  b.add_link_repair(LinkRepair{2, 3, 9});
  const FaultPlan merged = merge_plans(a, b);
  EXPECT_EQ(merged.link_repairs().size(), 2u);
}

TEST(FaultPlanGenerators, LinkChurnIsCoupledAndHeals) {
  const Graph host = make_butterfly(3);
  const FaultPlan low = make_link_churn(host, 0.1, 99, /*horizon=*/128);
  const FaultPlan high = make_link_churn(host, 0.5, 99, /*horizon=*/128);
  EXPECT_LE(low.link_faults().size(), high.link_faults().size());
  EXPECT_FALSE(high.link_faults().empty());
  EXPECT_EQ(high.link_faults().size(), high.link_repairs().size());
  // Coupling: every link churning at the low rate churns at the high rate.
  for (const LinkFault& f : low.link_faults()) {
    EXPECT_FALSE(high.link_alive(f.u, f.v, f.step)) << f.u << "," << f.v;
  }
  // Each outage lasts exactly `downtime` steps, then the link heals.
  const LinkFault& f = high.link_faults().front();
  EXPECT_FALSE(high.link_alive(f.u, f.v, f.step + 7));
  EXPECT_TRUE(high.link_alive(f.u, f.v, f.step + 8));  // default downtime = 8
  EXPECT_TRUE(make_link_churn(host, 0.0, 99, 128).empty());
}

TEST(FaultPlanIo, RepairRoundTripUsesVersion2) {
  FaultPlan plan{0x51};
  plan.add_link_fault(LinkFault{0, 1, 3});
  plan.add_link_repair(LinkRepair{0, 1, 9});
  std::stringstream buffer;
  write_fault_plan(buffer, plan);
  EXPECT_EQ(buffer.str().compare(0, 16, "upn-faultplan 2 "), 0);
  const FaultPlan parsed = read_fault_plan(buffer);
  EXPECT_EQ(parsed.link_repairs(), plan.link_repairs());
  EXPECT_EQ(parsed.link_faults(), plan.link_faults());

  // Repair records are rejected under the v1 header.
  std::stringstream v1{"upn-faultplan 1 0 1 0 0\nR 0 1 9\n"};
  EXPECT_THROW((void)read_fault_plan(v1), std::runtime_error);
}

TEST(Surgery, SurvivingSubgraphCompactsDeadNodes) {
  const Graph mesh = make_mesh(3, 3);  // node 4 is the center
  FaultPlan plan;
  plan.add_node_fault(NodeFault{4, 0});
  const SurvivingHost survivor = surviving_subgraph(mesh, plan);
  EXPECT_EQ(survivor.graph.num_nodes(), 8u);
  EXPECT_EQ(survivor.to_survivor[4], kNoSurvivor);
  EXPECT_EQ(survivor.to_original.size(), 8u);
  for (NodeId c = 0; c < survivor.graph.num_nodes(); ++c) {
    EXPECT_EQ(survivor.to_survivor[survivor.to_original[c]], c);
  }
  // Removing the center of a 3x3 mesh keeps the ring connected.
  EXPECT_TRUE(is_connected(survivor.graph));
  EXPECT_EQ(survivor.graph.num_edges(), mesh.num_edges() - 4);
}

TEST(Surgery, SurvivingEdgesGraphKeepsNodeIds) {
  const Graph mesh = make_mesh(3, 3);
  FaultPlan plan;
  plan.add_node_fault(NodeFault{4, 0});
  plan.add_link_fault(LinkFault{0, 1, 2});
  const Graph live = surviving_edges_graph(mesh, plan);
  EXPECT_EQ(live.num_nodes(), mesh.num_nodes());
  EXPECT_EQ(live.degree(4), 0u);         // dead node isolated
  EXPECT_FALSE(live.has_edge(0, 1));     // dead link removed
  EXPECT_TRUE(live.has_edge(0, 3));
  EXPECT_EQ(live.num_edges(), mesh.num_edges() - 5);
}

TEST(Surgery, DegradationReport) {
  const Graph mesh = make_mesh(2, 4);  // a path of 2-wide rungs
  FaultPlan plan;
  plan.add_link_fault(LinkFault{2, 4, 0});  // cut both rails between rows 1,2
  plan.add_link_fault(LinkFault{3, 5, 0});
  const DegradationReport report = assess_degradation(mesh, plan);
  EXPECT_EQ(report.original_nodes, 8u);
  EXPECT_EQ(report.live_nodes, 8u);
  EXPECT_EQ(report.dead_nodes, 0u);
  EXPECT_EQ(report.dead_links, 2u);
  EXPECT_EQ(report.components, 2u);
  EXPECT_EQ(report.largest_component, 4u);
  EXPECT_FALSE(report.connected);
}

TEST(Properties, ComponentHelpers) {
  GraphBuilder builder{5, "two-islands"};
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(3, 4);
  const Graph graph = std::move(builder).build();
  std::vector<std::uint32_t> labels;
  EXPECT_EQ(connected_components(graph, &labels), 2u);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_EQ(largest_component_size(graph), 3u);
  EXPECT_EQ(min_degree(graph), 1u);
}

}  // namespace
}  // namespace upn
