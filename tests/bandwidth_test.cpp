// Bandwidth/flow lower bound tests ([10]-style, Section 1).
#include <gtest/gtest.h>

#include "src/core/embedding.hpp"
#include "src/core/universal_sim.hpp"
#include "src/lowerbound/bandwidth.hpp"
#include "src/topology/builders.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/random_regular.hpp"
#include "src/topology/torus.hpp"

namespace upn {
namespace {

TEST(Bandwidth, IdentityEmbeddingDemand) {
  const Graph t = make_torus(4, 4);
  std::vector<NodeId> identity(16);
  for (NodeId v = 0; v < 16; ++v) identity[v] = v;
  const BandwidthBound bound = bandwidth_lower_bound(t, t, identity);
  // Each of the 32 edges contributes distance 1 in both directions.
  EXPECT_EQ(bound.total_demand, 64u);
  EXPECT_EQ(bound.link_capacity, 64u);
  EXPECT_DOUBLE_EQ(bound.multiport_bound, 1.0);
  EXPECT_DOUBLE_EQ(bound.diameter_bound, 1.0);
  EXPECT_DOUBLE_EQ(bound.single_port_bound, 8.0);  // 64 / (16/2)
}

TEST(Bandwidth, ColocatedGuestsHaveZeroDemand) {
  const Graph guest = make_cycle(8);
  const Graph host = make_path(4);
  const BandwidthBound bound =
      bandwidth_lower_bound(guest, host, std::vector<NodeId>(8, 2));
  EXPECT_EQ(bound.total_demand, 0u);
  EXPECT_DOUBLE_EQ(bound.multiport_bound, 0.0);
}

TEST(Bandwidth, BoundIsBelowMeasuredSlowdown) {
  // Soundness: the flow bound never exceeds what the simulator actually
  // needs (single-port measured slowdown).
  Rng rng{5};
  const Graph guest = make_random_regular(128, kGuestDegree, rng);
  const Graph host = make_butterfly(2);
  const auto embedding = make_random_embedding(128, host.num_nodes(), rng);
  const BandwidthBound bound = bandwidth_lower_bound(guest, host, embedding);
  UniversalSimulator sim{guest, host, embedding};
  const UniversalSimResult result = sim.run(2);
  ASSERT_TRUE(result.configs_match);
  EXPECT_GT(bound.single_port_bound, 1.0);
  EXPECT_LE(bound.single_port_bound, result.slowdown);
  EXPECT_LE(bound.multiport_bound, bound.single_port_bound);
}

TEST(Bandwidth, GrowsLinearlyWithLoad) {
  Rng rng{6};
  const Graph host = make_butterfly(2);
  const Graph guest_small = make_random_regular(2 * host.num_nodes(), 8, rng);
  const Graph guest_large = make_random_regular(8 * host.num_nodes(), 8, rng);
  const auto bound_small = bandwidth_lower_bound(
      guest_small, host, make_block_embedding(guest_small.num_nodes(), host.num_nodes()));
  const auto bound_large = bandwidth_lower_bound(
      guest_large, host, make_block_embedding(guest_large.num_nodes(), host.num_nodes()));
  const double ratio = bound_large.multiport_bound / bound_small.multiport_bound;
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 6.0);  // ~4x demand for 4x guests
}

TEST(Bandwidth, RejectsSizeMismatch) {
  const Graph guest = make_cycle(4);
  const Graph host = make_path(2);
  EXPECT_THROW((void)bandwidth_lower_bound(guest, host, std::vector<NodeId>(3, 0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace upn
