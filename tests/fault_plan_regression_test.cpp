// Pins the deterministic fault-plan generators: the same seed must produce
// the same plan, bit-for-bit, forever.  If this test fails, a generator or
// the serialization format changed -- stored plans in the wild would no
// longer reproduce published degradation curves.
#include <gtest/gtest.h>

#include <sstream>

#include "src/fault/fault_plan.hpp"
#include "src/topology/butterfly.hpp"

namespace upn {
namespace {

FaultPlan reference_plan() {
  const Graph host = make_butterfly(2);
  FaultPlan plan = merge_plans(make_uniform_link_faults(host, 0.2, 0xfee1),
                               make_uniform_node_faults(host, 0.15, 0xfee1));
  return merge_plans(plan, make_uniform_drops(host, 0.05, 0xfee1, 3, 9));
}

std::string serialize(const FaultPlan& plan) {
  std::ostringstream out;
  write_fault_plan(out, plan);
  return out.str();
}

TEST(FaultPlanRegression, SameSeedSamePlan) {
  EXPECT_EQ(serialize(reference_plan()), serialize(reference_plan()));
}

TEST(FaultPlanRegression, PinnedSerialization) {
  const std::string expected =
      "upn-faultplan 1 65249 4 1 16\n"
      "L 0 4 0\n"
      "L 2 6 0\n"
      "L 3 7 0\n"
      "L 6 8 0\n"
      "N 10 0\n"
      "D 0 4 3 9 0.050000000000000003\n"
      "D 0 5 3 9 0.050000000000000003\n"
      "D 1 4 3 9 0.050000000000000003\n"
      "D 1 5 3 9 0.050000000000000003\n"
      "D 2 6 3 9 0.050000000000000003\n"
      "D 2 7 3 9 0.050000000000000003\n"
      "D 3 6 3 9 0.050000000000000003\n"
      "D 3 7 3 9 0.050000000000000003\n"
      "D 4 8 3 9 0.050000000000000003\n"
      "D 4 10 3 9 0.050000000000000003\n"
      "D 5 9 3 9 0.050000000000000003\n"
      "D 5 11 3 9 0.050000000000000003\n"
      "D 6 8 3 9 0.050000000000000003\n"
      "D 6 10 3 9 0.050000000000000003\n"
      "D 7 9 3 9 0.050000000000000003\n"
      "D 7 11 3 9 0.050000000000000003\n";
  EXPECT_EQ(serialize(reference_plan()), expected);
}

TEST(FaultPlanRegression, PinnedSerializationRoundTrips) {
  std::stringstream buffer{serialize(reference_plan())};
  const FaultPlan parsed = read_fault_plan(buffer);
  EXPECT_EQ(serialize(parsed), serialize(reference_plan()));
}

// Version 2 (repair events): pins both the churn generator and the extended
// serialization format.  A plan with repairs must promote the header to v2
// and write R records after the D records; a plan without repairs must keep
// writing the v1 bytes above.
FaultPlan churn_plan() {
  const Graph host = make_butterfly(2);
  return make_link_churn(host, 0.3, 0xfee1, /*horizon=*/64, /*period=*/32, /*downtime=*/8);
}

TEST(FaultPlanRegression, PinnedChurnSerialization) {
  const std::string expected =
      "upn-faultplan 2 65249 8 0 0 8\n"
      "L 0 4 20\n"
      "L 0 4 52\n"
      "L 2 6 21\n"
      "L 2 6 53\n"
      "L 3 7 19\n"
      "L 3 7 51\n"
      "L 6 8 9\n"
      "L 6 8 41\n"
      "R 0 4 28\n"
      "R 0 4 60\n"
      "R 2 6 29\n"
      "R 2 6 61\n"
      "R 3 7 27\n"
      "R 3 7 59\n"
      "R 6 8 17\n"
      "R 6 8 49\n";
  EXPECT_EQ(serialize(churn_plan()), expected);
}

TEST(FaultPlanRegression, PinnedChurnRoundTrips) {
  std::stringstream buffer{serialize(churn_plan())};
  const FaultPlan parsed = read_fault_plan(buffer);
  EXPECT_EQ(serialize(parsed), serialize(churn_plan()));
  EXPECT_EQ(parsed.link_repairs().size(), parsed.link_faults().size());
}

}  // namespace
}  // namespace upn
