// Counting chain (Section 3.2) and trade-off calculator tests.
#include <gtest/gtest.h>

#include <cmath>

#include "src/lowerbound/counting.hpp"
#include "src/lowerbound/tradeoff.hpp"

namespace upn {
namespace {

TEST(Constants, RMatchesLemma313) {
  CountingConstants constants;
  constants.host_degree = 4;
  EXPECT_NEAR(constants.r(), 3472.0 + 384.0 * 2.0, 1e-9);
  constants.host_degree = 8;
  EXPECT_NEAR(constants.r(), 3472.0 + 384.0 * 3.0, 1e-9);
}

TEST(Counting, GuestCountGrowsWithN) {
  const CountingConstants constants;
  const double small = log2_guest_count_lower(1024, constants);
  const double large = log2_guest_count_lower(4096, constants);
  EXPECT_GT(large, small);
  // Leading term (c-12)/2 * n * log2 n = 2 n log2 n.
  EXPECT_NEAR(small, 2.0 * 1024 * 10 - constants.delta * 1024, 1e-6);
}

TEST(Counting, SimulableCountMonotoneInK) {
  const CountingConstants constants;
  const double n = 4096, m = 1024;
  EXPECT_LT(log2_simulable_count(n, m, 0.5, constants),
            log2_simulable_count(n, m, 1.0, constants));
  EXPECT_LT(log2_simulable_count(n, m, 1.0, constants),
            log2_simulable_count(n, m, 2.0, constants));
}

TEST(Counting, InfeasibilityFlipsExactlyOnce) {
  const CountingConstants constants;
  const double n = 1 << 20, m = 1 << 16;
  const double k_min = min_feasible_inefficiency(n, m, constants);
  EXPECT_GT(k_min, 0.0);
  EXPECT_TRUE(inefficiency_infeasible(n, m, k_min * 0.9, constants));
  EXPECT_FALSE(inefficiency_infeasible(n, m, k_min * 1.1, constants));
}

TEST(Counting, MinInefficiencySatisfiesThresholdIdentity) {
  // The n-dependent terms cancel, leaving the exact threshold equation
  //   r k + log2(q k) + delta = gamma (c-12)/4 log2 m,
  // i.e. k = Omega(log m) with an additive log-correction at small k.
  const CountingConstants constants;
  const double n = 1e12;
  for (const double m : {1e3, 1e6, 1e9}) {
    const double k = min_feasible_inefficiency(n, m, constants);
    const double lhs = constants.r() * k + std::log2(constants.q * k) + constants.delta;
    const double rhs = 0.5 * constants.gamma *
                       ((constants.c - constants.g0_degree) / 2.0) * std::log2(m);
    EXPECT_NEAR(lhs, rhs, 0.01 * std::abs(rhs)) << "m=" << m;
  }
  // And k grows with m.
  EXPECT_GT(min_feasible_inefficiency(n, 1e9, constants),
            min_feasible_inefficiency(n, 1e3, constants));
}

TEST(Counting, MinInefficiencyIsIndependentOfN) {
  // After cancellation the threshold does not involve n.
  const CountingConstants constants;
  const double m = 1e6;
  EXPECT_NEAR(min_feasible_inefficiency(1e9, m, constants),
              min_feasible_inefficiency(1e15, m, constants), 1e-9);
}

TEST(Counting, ClosedFormTracksBinarySearch) {
  const CountingConstants constants;
  for (const double m : {1e4, 1e6, 1e9}) {
    const double closed = closed_form_inefficiency(m, constants);
    const double searched = min_feasible_inefficiency(1e15, m, constants);
    EXPECT_NEAR(closed, searched, 0.01 * closed) << "m=" << m;
  }
}

TEST(Tradeoff, SweepRowsAreConsistent) {
  const auto rows = lower_bound_sweep(1e9, {1e3, 1e5, 1e7});
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) {
    EXPECT_NEAR(row.slowdown_bound,
                std::max(1.0, row.k_counting * row.n / row.m), 1e-9);
    EXPECT_GE(row.slowdown_bound, 1.0);
    EXPECT_GT(row.k_counting, 0.0);
  }
  // k grows with m.
  EXPECT_LT(rows[0].k_counting, rows[2].k_counting);
}

TEST(Tradeoff, CheckNetworkVerdicts) {
  // With the paper's huge constants the bound only bites at large n/m:
  // a host of 1024 processors claiming slowdown 1 for n = 10^12 guests.
  const TradeoffVerdict bad = check_network(1e12, 1 << 10, 1.0);
  EXPECT_TRUE(bad.ruled_out_paper_constants);
  EXPECT_TRUE(bad.ruled_out_normalized);
  EXPECT_GT(bad.required_slowdown, 1.0);
  // Slowdown n/m * log2 m passes both bounds.
  const double n = 1e12, m = 1 << 10;
  const TradeoffVerdict good = check_network(n, m, (n / m) * std::log2(m));
  EXPECT_FALSE(good.ruled_out_normalized);
  EXPECT_FALSE(good.ruled_out_paper_constants);
}

TEST(Tradeoff, UpperBoundTradeoffFrom14) {
  // s * log l = O(log n): with l = n^(1/2), s ~ 2.
  EXPECT_NEAR(upper_bound_slowdown(1 << 20, std::exp2(10)), 2.0, 1e-9);
  // l = 1: plain log n slowdown.
  EXPECT_NEAR(upper_bound_slowdown(1 << 20, 1.0), 20.0, 1e-9);
  // Size for constant slowdown s0 = 2: m = n * 2^{log n / 2} = n^{1.5}.
  EXPECT_NEAR(upper_bound_size_for_slowdown(1 << 20, 2.0),
              std::pow(2.0, 30.0), 1.0);
}

TEST(Tradeoff, MsOverNLogMIsNearlyConstant) {
  // Theorem 3.1's product form: (m * s_bound) / (n log m) ~ constant.
  const auto rows = lower_bound_sweep(1e12, {1e4, 1e6, 1e8});
  const double r0 = rows[0].ms_over_nlogm;
  for (const auto& row : rows) {
    EXPECT_NEAR(row.ms_over_nlogm, r0, 0.5 * r0);
  }
}

}  // namespace
}  // namespace upn
