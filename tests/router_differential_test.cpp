// Engine-vs-engine differential suite: the data-oriented SyncRouter
// (src/routing/router.cpp) must be byte-identical to the preserved
// pre-rewrite ReferenceRouter (tests/support/reference_router.cpp) on
// identical inputs -- full RouteResult including the transfer log -- across
// both port models, fault-free and under FaultPlans, on every host family
// the paper's experiments exercise.  Results are compared as canonical
// dump_route_result() strings so a failure names the first diverging field.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "src/fault/fault_plan.hpp"
#include "src/routing/hh_problem.hpp"
#include "src/routing/policies.hpp"
#include "src/routing/router.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/debruijn.hpp"
#include "src/topology/hypercube.hpp"
#include "src/topology/properties.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/rng.hpp"
#include "tests/support/reference_router.hpp"

namespace upn {
namespace {

using testing::ReferenceRouter;
using testing::dump_route_result;

std::vector<Graph> differential_hosts() {
  std::vector<Graph> hosts;
  hosts.push_back(make_butterfly(3));   // 32 nodes, the paper's host family
  hosts.push_back(make_hypercube(4));   // 16 nodes
  hosts.push_back(make_debruijn(5));    // 32 nodes, directed-degree 2 doubled
  Rng rng{424242};
  for (;;) {  // random regular hosts are connected w.h.p.; retry until one is
    Graph g = make_random_regular(24, 4, rng);
    if (is_connected(g)) {
      hosts.push_back(std::move(g));
      break;
    }
  }
  return hosts;
}

std::vector<Packet> make_packets(const HhProblem& problem) {
  std::vector<Packet> packets;
  packets.reserve(problem.size());
  for (const Demand& d : problem.demands()) {
    Packet p;
    p.src = d.src;
    p.dst = d.dst;
    p.via = d.dst;
    p.payload = (static_cast<std::uint64_t>(d.src) << 32) | d.dst;
    p.tag = d.src;
    p.tag2 = d.dst;
    packets.push_back(p);
  }
  return packets;
}

// The matrix the tentpole promises: hosts x seeds {3} x widths {1,2,7} x
// both port models, greedy and Valiant policies, fault-free.
TEST(RouterDifferential, FaultFreeByteIdentity) {
  for (const Graph& host : differential_hosts()) {
    const std::uint32_t m = host.num_nodes();
    for (const std::uint64_t seed : {11u, 22u, 33u}) {
      for (const std::uint32_t h : {1u, 2u, 7u}) {
        Rng rng{seed * 1000 + h};
        const HhProblem problem = random_h_relation(m, h, rng);
        const std::vector<Packet> packets = make_packets(problem);
        for (const PortModel model : {PortModel::kMultiPort, PortModel::kSinglePort}) {
          SCOPED_TRACE(host.name() + " seed=" + std::to_string(seed) +
                       " h=" + std::to_string(h) +
                       (model == PortModel::kMultiPort ? " multiport" : " singleport"));
          {
            GreedyPolicy fast_policy{host};
            GreedyPolicy ref_policy{host};
            SyncRouter fast{host, model};
            ReferenceRouter ref{host, model};
            const RouteResult a = fast.route(packets, fast_policy, /*record_transfers=*/true);
            const RouteResult b = ref.route(packets, ref_policy, /*record_transfers=*/true);
            ASSERT_EQ(dump_route_result(a), dump_route_result(b)) << "greedy";
          }
          {
            ValiantPolicy fast_policy{host, seed ^ 0x5eedf00du};
            ValiantPolicy ref_policy{host, seed ^ 0x5eedf00du};
            SyncRouter fast{host, model};
            ReferenceRouter ref{host, model};
            const RouteResult a = fast.route(packets, fast_policy, /*record_transfers=*/true);
            const RouteResult b = ref.route(packets, ref_policy, /*record_transfers=*/true);
            ASSERT_EQ(dump_route_result(a), dump_route_result(b)) << "valiant";
          }
        }
      }
    }
  }
}

// Fault-aware runs: permanent link/node faults plus transient drop windows,
// with an external policy, and with the internal live-subgraph greedy
// (policy == nullptr).  Retries, reroutes, losses, and dropped transfers
// must all line up byte-for-byte.
//
// An external policy is fault-oblivious (its oracle sees the full graph), so
// after a permanent link fault it can re-pick the same dead link every step:
// a genuine livelock, and the semantically correct outcome both engines must
// reach identically.  Each run therefore gets a small step budget and the
// comparison accepts either identical RouteResults or identical thrown
// livelock diagnostics -- the same contract the differential fuzzer checks.
TEST(RouterDifferential, FaultedByteIdentity) {
  constexpr std::uint32_t kMaxSteps = 512;
  const auto run = [](auto& router, const std::vector<Packet>& packets,
                      const FaultRouteOptions& options, RoutingPolicy* policy) {
    try {
      return dump_route_result(
          router.route_with_faults(packets, options, policy, true, kMaxSteps));
    } catch (const std::runtime_error& e) {
      return std::string("<livelock> ") + e.what();
    }
  };
  for (const Graph& host : differential_hosts()) {
    const std::uint32_t m = host.num_nodes();
    for (const std::uint64_t seed : {5u, 6u, 7u}) {
      for (const std::uint32_t h : {1u, 2u, 7u}) {
        Rng rng{seed * 77 + h};
        const HhProblem problem = random_h_relation(m, h, rng);
        const std::vector<Packet> packets = make_packets(problem);

        FaultPlan plan = merge_plans(make_uniform_link_faults(host, 0.08, seed, /*step=*/2),
                                     make_uniform_drops(host, 0.15, seed ^ 1u, 0, 24));
        plan = merge_plans(plan, make_uniform_node_faults(host, 0.05, seed ^ 2u, /*step=*/5));
        FaultRouteOptions options;
        options.plan = &plan;
        options.step_offset = static_cast<std::uint32_t>(seed % 3);
        options.max_retries = 8;

        for (const PortModel model : {PortModel::kMultiPort, PortModel::kSinglePort}) {
          SCOPED_TRACE(host.name() + " seed=" + std::to_string(seed) +
                       " h=" + std::to_string(h) +
                       (model == PortModel::kMultiPort ? " multiport" : " singleport"));
          {
            GreedyPolicy fast_policy{host};
            GreedyPolicy ref_policy{host};
            SyncRouter fast{host, model};
            ReferenceRouter ref{host, model};
            ASSERT_EQ(run(fast, packets, options, &fast_policy),
                      run(ref, packets, options, &ref_policy))
                << "greedy policy";
          }
          {
            SyncRouter fast{host, model};
            ReferenceRouter ref{host, model};
            ASSERT_EQ(run(fast, packets, options, nullptr),
                      run(ref, packets, options, nullptr))
                << "internal oracle";
          }
        }
      }
    }
  }
}

// Both engines must give up identically: same exception type, same
// diagnostic text, when the step limit cuts a run short.
TEST(RouterDifferential, LivelockDiagnosticsMatch) {
  const Graph host = make_butterfly(3);
  Rng rng{99};
  const HhProblem problem = random_h_relation(host.num_nodes(), 2, rng);
  const std::vector<Packet> packets = make_packets(problem);
  for (const PortModel model : {PortModel::kMultiPort, PortModel::kSinglePort}) {
    GreedyPolicy fast_policy{host};
    GreedyPolicy ref_policy{host};
    SyncRouter fast{host, model};
    ReferenceRouter ref{host, model};
    std::string fast_what;
    std::string ref_what;
    try {
      const RouteResult r = fast.route(packets, fast_policy, false, /*max_steps=*/2);
      FAIL() << "fast engine finished a 2-step run that must hit the limit";
    } catch (const std::runtime_error& e) {
      fast_what = e.what();
    }
    try {
      const RouteResult r = ref.route(packets, ref_policy, false, /*max_steps=*/2);
      FAIL() << "reference engine finished a 2-step run that must hit the limit";
    } catch (const std::runtime_error& e) {
      ref_what = e.what();
    }
    ASSERT_FALSE(fast_what.empty());
    ASSERT_EQ(fast_what, ref_what);
  }
}

}  // namespace
}  // namespace upn
