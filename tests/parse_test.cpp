// Topology spec parser tests.
#include <gtest/gtest.h>

#include "src/topology/parse.hpp"
#include "src/topology/properties.hpp"

namespace upn {
namespace {

TEST(Parse, SingleParameterFamilies) {
  EXPECT_EQ(make_topology("butterfly:3").num_nodes(), 32u);
  EXPECT_EQ(make_topology("wrapped_butterfly:3").num_nodes(), 24u);
  EXPECT_EQ(make_topology("hypercube:4").num_nodes(), 16u);
  EXPECT_EQ(make_topology("ccc:3").num_nodes(), 24u);
  EXPECT_EQ(make_topology("shuffle_exchange:4").num_nodes(), 16u);
  EXPECT_EQ(make_topology("debruijn:4").num_nodes(), 16u);
  EXPECT_EQ(make_topology("kautz:3").num_nodes(), 24u);
  EXPECT_EQ(make_topology("mesh_of_trees:4").num_nodes(), 40u);
  EXPECT_EQ(make_topology("cycle:9").num_nodes(), 9u);
  EXPECT_EQ(make_topology("path:9").num_nodes(), 9u);
  EXPECT_EQ(make_topology("complete:7").num_edges(), 21u);
  EXPECT_EQ(make_topology("binary_tree:3").num_nodes(), 7u);
  EXPECT_EQ(make_topology("margulis:5").num_nodes(), 25u);
}

TEST(Parse, GridFamilies) {
  EXPECT_EQ(make_topology("mesh:5x3").num_nodes(), 15u);
  EXPECT_EQ(make_topology("torus:4x6").num_nodes(), 24u);
  EXPECT_EQ(make_topology("multitorus:64:4").num_nodes(), 64u);
  EXPECT_EQ(make_topology("torus3d:3x4x5").num_nodes(), 60u);
  EXPECT_THROW((void)make_topology("torus3d:3x4"), std::invalid_argument);
}

TEST(Parse, RandomFamiliesAreSeededAndRegular) {
  const Graph a = make_topology("random:64:6:9");
  const Graph b = make_topology("random:64:6:9");
  const Graph c = make_topology("random:64:6:10");
  EXPECT_EQ(a.edge_list(), b.edge_list());
  EXPECT_NE(a.edge_list(), c.edge_list());
  std::uint32_t degree = 0;
  EXPECT_TRUE(is_regular(a, &degree));
  EXPECT_EQ(degree, 6u);
  const Graph e = make_topology("expander:128:4");
  EXPECT_TRUE(is_regular(e, &degree));
  EXPECT_EQ(degree, 4u);
}

TEST(Parse, Errors) {
  EXPECT_THROW((void)make_topology("klein_bottle:3"), std::invalid_argument);
  EXPECT_THROW((void)make_topology("butterfly"), std::invalid_argument);
  EXPECT_THROW((void)make_topology("butterfly:3:4"), std::invalid_argument);
  EXPECT_THROW((void)make_topology("torus:8"), std::invalid_argument);
  EXPECT_THROW((void)make_topology("mesh:axb"), std::invalid_argument);
  EXPECT_THROW((void)make_topology("random:64:6"), std::invalid_argument);
  EXPECT_FALSE(topology_spec_help().empty());
}

}  // namespace
}  // namespace upn
