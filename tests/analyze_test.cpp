// Engine-level tests for upn_analyze: IR construction (stripping, includes,
// declaration indexing), each pass family against in-memory inputs and the
// committed fixture trees, SARIF structural validity, and the determinism
// contract -- text and SARIF reports are byte-identical at --jobs {1, 2, 7}.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "tools/analyze/engine.hpp"
#include "tools/analyze/ir.hpp"
#include "tools/analyze/passes.hpp"
#include "tools/analyze/sarif.hpp"

namespace upn::analyze {
namespace {

std::vector<std::string> rules_of(const std::vector<Finding>& findings) {
  std::vector<std::string> rules;
  rules.reserve(findings.size());
  for (const Finding& f : findings) rules.push_back(f.rule);
  return rules;
}

bool has_rule(const std::vector<Finding>& findings, const std::string& rule) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const Finding& f) { return f.rule == rule; });
}

Report analyze_tree(const std::string& root, unsigned jobs = 0) {
  TreeOptions options;
  options.root = root;
  options.paths = {"src"};
  options.excludes.clear();  // fixture trees live under tests/fixtures-*
  options.jobs = jobs;
  Input input;
  std::string error;
  EXPECT_TRUE(collect_tree(options, input, error)) << error;
  return analyze(input);
}

// ---- IR construction ------------------------------------------------------

TEST(AnalyzeIr, StripsCommentsAndStringsPreservingLineLengths) {
  const Unit unit = build_unit(
      "src/util/demo.cpp",
      "int a = 1; // trailing rand()\n"
      "const char* s = \"std::endl inside\";\n"
      "/* block rand()\n"
      "   still rand() */ int b = 2;\n");
  ASSERT_EQ(unit.code.size(), 4u);
  EXPECT_EQ(unit.code[0], "int a = 1; ");
  EXPECT_EQ(unit.code[1].find("endl"), std::string::npos);
  EXPECT_EQ(unit.code[1].size(), unit.raw[1].size());
  EXPECT_EQ(unit.code[2].find("rand"), std::string::npos);
  EXPECT_NE(unit.code[3].find("int b = 2;"), std::string::npos);
}

TEST(AnalyzeIr, ScansQuotedAndSystemIncludes) {
  const Unit unit = build_unit(
      "src/core/demo.cpp",
      "#include <vector>\n"
      "#include \"src/util/rng.hpp\"\n"
      "// #include \"src/util/not_really.hpp\"\n");
  ASSERT_EQ(unit.includes.size(), 2u);
  EXPECT_FALSE(unit.includes[0].quoted);
  EXPECT_EQ(unit.includes[0].target, "vector");
  EXPECT_TRUE(unit.includes[1].quoted);
  EXPECT_EQ(unit.includes[1].target, "src/util/rng.hpp");
  EXPECT_EQ(unit.includes[1].line, 2u);
}

TEST(AnalyzeIr, ModuleOfMapsSrcSubdirectories) {
  EXPECT_EQ(module_of("src/topology/graph.hpp"), "topology");
  EXPECT_EQ(module_of("src/util/par.cpp"), "util");
  // Nested directories are their own layering units, distinct from the
  // parent module.
  EXPECT_EQ(module_of("src/routing/online/route_table.hpp"), "routing/online");
  EXPECT_EQ(module_of("src/routing/router.cpp"), "routing");
  EXPECT_EQ(module_of("tools/lint/lint.cpp"), "");
  EXPECT_EQ(module_of("tests/util_test.cpp"), "");
}

TEST(AnalyzeIr, IndexesFunctionDeclarationsWithContractFacts) {
  const Unit unit = build_unit(
      "src/util/demo.hpp",
      "#pragma once\n"
      "namespace upn {\n"
      "int checked(int v) {\n"
      "  UPN_REQUIRE(v >= 0);\n"
      "  return v + 1;\n"
      "}\n"
      "int waived(int v) {\n"
      "  // upn-contract-waive(trivial shim)\n"
      "  int r = v;\n"
      "  return r;\n"
      "}\n"
      "int bare(int v) {\n"
      "  int r = v * 2;\n"
      "  return r;\n"
      "}\n"
      "}  // namespace upn\n");
  auto find = [&](const std::string& name) -> const Declaration* {
    for (const Declaration& d : unit.decls) {
      if (d.name == name) return &d;
    }
    return nullptr;
  };
  const Declaration* checked = find("checked");
  ASSERT_NE(checked, nullptr);
  EXPECT_TRUE(checked->has_body);
  EXPECT_TRUE(checked->has_contract);
  EXPECT_FALSE(checked->has_waiver);
  const Declaration* waived = find("waived");
  ASSERT_NE(waived, nullptr);
  EXPECT_TRUE(waived->has_waiver);
  EXPECT_FALSE(waived->has_contract);
  const Declaration* bare = find("bare");
  ASSERT_NE(bare, nullptr);
  EXPECT_FALSE(bare->has_contract);
  EXPECT_FALSE(bare->has_waiver);
  EXPECT_GE(bare->body_statements, 2u);
}

TEST(AnalyzeIr, PrivateMembersAreNotPublic) {
  const Unit unit = build_unit(
      "src/util/demo.hpp",
      "#pragma once\n"
      "namespace upn {\n"
      "class Box {\n"
      " public:\n"
      "  int get() const { return v_; }\n"
      " private:\n"
      "  int hidden(int a) {\n"
      "    int b = a + 1;\n"
      "    return b;\n"
      "  }\n"
      "  int v_ = 0;\n"
      "};\n"
      "}  // namespace upn\n");
  bool saw_private = false;
  for (const Declaration& d : unit.decls) {
    if (d.name == "hidden") {
      saw_private = true;
      EXPECT_FALSE(d.is_public);
    }
    if (d.name == "get") EXPECT_TRUE(d.is_public);
  }
  EXPECT_TRUE(saw_private);
}

// ---- single-file rules (ported + flow) ------------------------------------

TEST(AnalyzeRules, PortedLintRulesStillFire) {
  const Unit unit = build_unit(
      "src/util/demo.cpp",
      "int r = rand();\n"
      "std::cout << x << std::endl;\n");
  const std::vector<Finding> findings = run_single_file_rules(unit);
  EXPECT_TRUE(has_rule(findings, "no-std-rand"));
  EXPECT_TRUE(has_rule(findings, "no-endl"));
}

TEST(AnalyzeRules, RngByValueFiresAndReferenceIsQuiet) {
  const Unit by_value = build_unit("src/core/demo.hpp",
                                   "#pragma once\n"
                                   "void run(upn::Rng rng);\n");
  EXPECT_TRUE(has_rule(run_single_file_rules(by_value), "rng-by-value"));
  const Unit by_ref = build_unit("src/core/demo.hpp",
                                 "#pragma once\n"
                                 "void run(upn::Rng& rng);\n"
                                 "void run2(const Rng& rng);\n");
  EXPECT_FALSE(has_rule(run_single_file_rules(by_ref), "rng-by-value"));
}

TEST(AnalyzeRules, NarrowingCastNeedsAdjacentContract) {
  const Unit bare = build_unit("src/core/demo.cpp",
                               "void f(long big) {\n"
                               "  auto t = static_cast<std::uint16_t>(big);\n"
                               "}\n");
  EXPECT_TRUE(has_rule(run_single_file_rules(bare), "narrowing-cast"));
  const Unit contracted = build_unit("src/core/demo.cpp",
                                     "void f(long big) {\n"
                                     "  UPN_REQUIRE(big <= 65535);\n"
                                     "  auto t = static_cast<std::uint16_t>(big);\n"
                                     "}\n");
  EXPECT_FALSE(has_rule(run_single_file_rules(contracted), "narrowing-cast"));
  const Unit wide = build_unit("src/core/demo.cpp",
                               "void f(long big) {\n"
                               "  auto t = static_cast<std::uint32_t>(big);\n"
                               "}\n");
  EXPECT_FALSE(has_rule(run_single_file_rules(wide), "narrowing-cast"));
}

TEST(AnalyzeRules, RawThreadOutsideParFiresButParAndThreadIdAreExempt) {
  const Unit outside = build_unit("src/core/demo.cpp", "std::thread t{[] {}};\n");
  EXPECT_TRUE(has_rule(run_single_file_rules(outside), "no-raw-thread"));
  const Unit inside = build_unit("src/util/par.cpp", "std::thread t{[] {}};\n");
  EXPECT_FALSE(has_rule(run_single_file_rules(inside), "no-raw-thread"));
  const Unit id_use = build_unit("src/core/demo.cpp", "std::thread::id who;\n");
  EXPECT_FALSE(has_rule(run_single_file_rules(id_use), "no-raw-thread"));
}

TEST(AnalyzeRules, ThreadDetachFires) {
  const Unit unit = build_unit("src/core/demo.cpp",
                               "void f(std::thread& t) { t.detach(); }\n");
  EXPECT_TRUE(has_rule(run_single_file_rules(unit), "thread-detach"));
}

TEST(AnalyzeRules, SuppressionSilencesExactlyTheNamedRule) {
  const Unit unit = build_unit(
      "src/core/demo.cpp",
      "int r = rand();  // upn-lint-allow(no-std-rand)\n"
      "std::cout << x << std::endl;  // upn-lint-allow(no-std-rand)\n");
  const std::vector<Finding> findings = run_single_file_rules(unit);
  EXPECT_FALSE(has_rule(findings, "no-std-rand"));
  EXPECT_TRUE(has_rule(findings, "no-endl"));
}

// ---- layering -------------------------------------------------------------

TEST(AnalyzeLayering, ParsesLayersAndWaivers) {
  const LayerSpec spec = parse_layers("docs/ARCHITECTURE.layers",
                                      "# comment\n"
                                      "layer util\n"
                                      "layer core: util\n"
                                      "waive core -> pebble: legacy shim\n");
  EXPECT_TRUE(spec.errors.empty());
  ASSERT_EQ(spec.deps.count("core"), 1u);
  EXPECT_EQ(spec.deps.at("core"), std::vector<std::string>{"util"});
  EXPECT_EQ(spec.waivers.count({"core", "pebble"}), 1u);
}

TEST(AnalyzeLayering, MalformedLinesAreReported) {
  const LayerSpec spec = parse_layers("L", "nonsense here\n");
  EXPECT_TRUE(has_rule(spec.errors, "layers-malformed"));
}

TEST(AnalyzeLayering, UndeclaredEdgeAndCycleAndStaleWaiver) {
  Input input;
  input.layers_path = "docs/ARCHITECTURE.layers";
  input.layers_text =
      "layer util\n"
      "layer core: util\n"
      "layer alpha: beta\n"
      "layer beta: alpha\n"
      "waive core -> alpha: long gone\n";
  input.files.push_back({"src/util/uses_core.hpp",
                         "#pragma once\n#include \"src/core/a.hpp\"\n"});
  input.files.push_back({"src/core/a.hpp", "#pragma once\n#include \"src/core/b.hpp\"\n"});
  input.files.push_back({"src/core/b.hpp", "#pragma once\n#include \"src/core/a.hpp\"\n"});
  input.jobs = 1;
  const Report report = analyze(input);
  EXPECT_TRUE(has_rule(report.findings, "layering-declared-cycle"));
  EXPECT_TRUE(has_rule(report.findings, "layering-undeclared-edge"));
  EXPECT_TRUE(has_rule(report.findings, "layering-stale-waiver"));
  EXPECT_TRUE(has_rule(report.findings, "include-cycle"));
}

TEST(AnalyzeLayering, DeclaredAndWaivedEdgesAreQuiet) {
  Input input;
  input.layers_path = "L";
  input.layers_text =
      "layer util\n"
      "layer core: util\n"
      "waive util -> core: fixture back-edge\n";
  input.files.push_back({"src/core/a.hpp", "#pragma once\n#include \"src/util/b.hpp\"\n"});
  input.files.push_back({"src/util/b.hpp", "#pragma once\nnamespace upn { using Id = int; }\n"});
  input.files.push_back({"src/util/back.hpp", "#pragma once\n#include \"src/core/a.hpp\"\n"});
  input.jobs = 1;
  const Report report = analyze(input);
  EXPECT_FALSE(has_rule(report.findings, "layering-undeclared-edge"))
      << report.render_text();
  EXPECT_FALSE(has_rule(report.findings, "layering-stale-waiver"));
}

// ---- contract coverage + baseline -----------------------------------------

TEST(AnalyzeContracts, UncontractedPublicFunctionIsFlaggedOnceAndBaselineable) {
  Input input;
  input.files.push_back({"src/core/demo.hpp",
                         "#pragma once\n"
                         "namespace upn {\n"
                         "int clamp_add(int a, int b);\n"
                         "}\n"});
  input.files.push_back({"src/core/demo.cpp",
                         "#include \"src/core/demo.hpp\"\n"
                         "namespace upn {\n"
                         "int clamp_add(int a, int b) {\n"
                         "  int sum = a + b;\n"
                         "  if (sum < 0) sum = 0;\n"
                         "  return sum;\n"
                         "}\n"
                         "}\n"});
  input.jobs = 1;
  const Report flagged = analyze(input);
  ASSERT_TRUE(has_rule(flagged.findings, "contract-coverage")) << flagged.render_text();
  const std::vector<std::string> rules = rules_of(flagged.findings);
  EXPECT_EQ(std::count(rules.begin(), rules.end(), std::string{"contract-coverage"}), 1);

  // The same finding keyed into the baseline moves to the baselined bucket.
  std::vector<Finding> coverage;
  for (const Finding& f : flagged.findings) {
    if (f.rule == "contract-coverage") coverage.push_back(f);
  }
  input.baseline_text = render_baseline(coverage);
  const Report baselined = analyze(input);
  EXPECT_FALSE(has_rule(baselined.findings, "contract-coverage"));
  EXPECT_TRUE(has_rule(baselined.baselined, "contract-coverage"));
}

TEST(AnalyzeContracts, ContractedWaivedAndTrivialFunctionsAreQuiet) {
  Input input;
  input.files.push_back({"src/core/demo.hpp",
                         "#pragma once\n"
                         "namespace upn {\n"
                         "inline int checked(int v) {\n"
                         "  UPN_REQUIRE(v >= 0);\n"
                         "  return v;\n"
                         "}\n"
                         "inline int waived(int v) {\n"
                         "  // upn-contract-waive(identity)\n"
                         "  int r = v;\n"
                         "  return r;\n"
                         "}\n"
                         "inline int trivial() { return 1; }\n"
                         "}\n"});
  input.jobs = 1;
  const Report report = analyze(input);
  EXPECT_FALSE(has_rule(report.findings, "contract-coverage")) << report.render_text();
}

TEST(AnalyzeContracts, BaselineParserSkipsCommentsAndBlanks) {
  const std::set<std::string> entries =
      parse_baseline("# header\n\nsrc/a.hpp:f\nsrc/b.hpp:g\n");
  EXPECT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries.count("src/a.hpp:f"), 1u);
}

// ---- include hygiene ------------------------------------------------------

TEST(AnalyzeHygiene, UnusedIncludeFlaggedUsedIncludeQuiet) {
  Input input;
  input.files.push_back({"src/util/names.hpp",
                         "#pragma once\n"
                         "namespace upn {\n"
                         "inline int forty() { return 40; }\n"
                         "}\n"});
  input.files.push_back({"src/util/user.cpp",
                         "#include \"src/util/names.hpp\"\n"
                         "int x = upn::forty();\n"});
  input.files.push_back({"src/util/nonuser.cpp",
                         "#include \"src/util/names.hpp\"\n"
                         "int y = 2;\n"});
  input.jobs = 1;
  const Report report = analyze(input);
  ASSERT_TRUE(has_rule(report.findings, "unused-include")) << report.render_text();
  for (const Finding& f : report.findings) {
    if (f.rule == "unused-include") EXPECT_EQ(f.file, "src/util/nonuser.cpp");
  }
}

TEST(AnalyzeHygiene, TransitiveUseCountsAsUse) {
  Input input;
  input.files.push_back({"src/util/inner.hpp",
                         "#pragma once\n"
                         "namespace upn {\n"
                         "inline int deep() { return 7; }\n"
                         "}\n"});
  input.files.push_back({"src/util/outer.hpp",
                         "#pragma once\n"
                         "#include \"src/util/inner.hpp\"\n"
                         "namespace upn {\n"
                         "inline int shallow() { return deep(); }\n"
                         "}\n"});
  input.files.push_back({"src/util/user.cpp",
                         "#include \"src/util/outer.hpp\"\n"
                         "int x = upn::deep();\n"});
  input.jobs = 1;
  const Report report = analyze(input);
  for (const Finding& f : report.findings) {
    EXPECT_NE(f.file, "src/util/user.cpp") << f.format();
  }
}

// ---- concurrency safety ---------------------------------------------------

TEST(AnalyzeConcurrency, ByReferenceAccumulationIntoOuterStateFires) {
  const Unit unit = build_unit(
      "src/core/sum.cpp",
      "void f(ThreadPool& pool, const std::vector<long>& in) {\n"
      "  long total = 0;\n"
      "  pool.parallel_for(in.size(), [&](std::size_t i) {\n"
      "    total += in[i];\n"
      "  });\n"
      "}\n");
  EXPECT_TRUE(has_rule(run_concurrency_pass(unit), "par-shared-mutation"));
}

TEST(AnalyzeConcurrency, IndexDisjointAtomicAndLockedWritesAreQuiet) {
  const Unit disjoint = build_unit(
      "src/core/fill.cpp",
      "void f(ThreadPool& pool, std::vector<long>& out) {\n"
      "  pool.parallel_for(out.size(), [&](std::size_t i) {\n"
      "    out[i] = static_cast<long>(i);\n"
      "  });\n"
      "}\n");
  EXPECT_TRUE(run_concurrency_pass(disjoint).empty());

  const Unit atomic = build_unit(
      "src/core/count.cpp",
      "void f(ThreadPool& pool, std::size_t n) {\n"
      "  std::atomic<long> total{0};\n"
      "  pool.parallel_for(n, [&](std::size_t i) {\n"
      "    total += static_cast<long>(i);\n"
      "  });\n"
      "}\n");
  EXPECT_TRUE(run_concurrency_pass(atomic).empty());

  const Unit locked = build_unit(
      "src/core/merge.cpp",
      "void f(ThreadPool& pool, std::size_t n, std::vector<long>& all) {\n"
      "  std::mutex m;\n"
      "  pool.parallel_for(n, [&](std::size_t i) {\n"
      "    std::lock_guard<std::mutex> hold(m);\n"
      "    all.push_back(static_cast<long>(i));\n"
      "  });\n"
      "}\n");
  EXPECT_TRUE(run_concurrency_pass(locked).empty());
}

TEST(AnalyzeConcurrency, OuterRngSharedAcrossTasksFiresButSubStreamsAreQuiet) {
  const Unit shared = build_unit(
      "src/core/draw.cpp",
      "void f(ThreadPool& pool, Rng& rng, std::vector<std::uint64_t>& out) {\n"
      "  pool.parallel_for(out.size(), [&](std::size_t i) {\n"
      "    out[i] = rng.next_u64();\n"
      "  });\n"
      "}\n");
  EXPECT_TRUE(has_rule(run_concurrency_pass(shared), "par-shared-rng"));

  const Unit streamed = build_unit(
      "src/core/draw.cpp",
      "void f(ThreadPool& pool, std::uint64_t seed, std::vector<std::uint64_t>& out) {\n"
      "  pool.parallel_for(out.size(), [&](std::size_t i) {\n"
      "    Rng rng = Rng::stream(seed, i);\n"
      "    out[i] = rng.next_u64();\n"
      "  });\n"
      "}\n");
  EXPECT_TRUE(run_concurrency_pass(streamed).empty());
}

// ---- determinism taint ----------------------------------------------------

TEST(AnalyzeTaint, UnorderedOrderFlowsToSinkButSortSanitizes) {
  const Unit tainted = build_unit(
      "src/core/stats.cpp",
      "void f() {\n"
      "  std::unordered_map<int, int> counts;\n"
      "  long total = 0;\n"
      "  for (const auto& [k, v] : counts) {\n"
      "    total += v;\n"
      "  }\n"
      "  UPN_OBS_COUNT(\"demo.total\", total);\n"
      "}\n");
  EXPECT_TRUE(has_rule(run_determinism_taint_pass(tainted), "taint-unordered-order"));

  const Unit sorted = build_unit(
      "src/core/stats.cpp",
      "void f() {\n"
      "  std::unordered_map<int, int> counts;\n"
      "  std::vector<int> values;\n"
      "  for (const auto& [k, v] : counts) {\n"
      "    values.push_back(v);\n"
      "  }\n"
      "  std::sort(values.begin(), values.end());\n"
      "  UPN_OBS_COUNT(\"demo.first\", values.empty() ? 0 : values[0]);\n"
      "}\n");
  EXPECT_TRUE(run_determinism_taint_pass(sorted).empty());
}

TEST(AnalyzeTaint, ThreadIdAndAddressSourcesFlowToSinks) {
  const Unit thread_id = build_unit(
      "src/core/who.cpp",
      "void f() {\n"
      "  const std::size_t me = std::hash<std::thread::id>{}(std::this_thread::get_id());\n"
      "  UPN_OBS_COUNT(\"demo.me\", me);\n"
      "}\n");
  EXPECT_TRUE(has_rule(run_determinism_taint_pass(thread_id), "taint-thread-id"));

  const Unit address = build_unit(
      "src/core/where.cpp",
      "void f(const int* p) {\n"
      "  const auto where = reinterpret_cast<std::uintptr_t>(p);\n"
      "  UPN_OBS_COUNT(\"demo.where\", where);\n"
      "}\n");
  EXPECT_TRUE(has_rule(run_determinism_taint_pass(address), "taint-address"));
}

TEST(AnalyzeTaint, TimingFlowFiresOutsideObsButObsAndHarnessAreExempt) {
  const std::string body =
      "void f() {\n"
      "  const auto t0 = std::chrono::steady_clock::now();\n"
      "  UPN_OBS_COUNT(\"demo.t0\", t0.time_since_epoch().count());\n"
      "}\n";
  EXPECT_TRUE(has_rule(run_determinism_taint_pass(build_unit("src/core/t.cpp", body)),
                       "taint-timing"));
  EXPECT_TRUE(run_determinism_taint_pass(build_unit("src/obs/t.cpp", body)).empty());
  EXPECT_TRUE(run_determinism_taint_pass(build_unit("bench/harness.cpp", body)).empty());
}

// ---- hot-path performance -------------------------------------------------

namespace {

Input hotpath_input(const std::string& path, const std::string& text) {
  Input input;
  input.layers_path = "docs/ARCHITECTURE.layers";
  input.layers_text = "layer util\nlayer hot: util\nhotpath hot\n";
  input.files.push_back({path, text});
  input.jobs = 1;
  return input;
}

}  // namespace

TEST(AnalyzeHotpath, BannedContainerLoopAllocAndVirtualFireOnlyInHotpathModules) {
  const std::string text =
      "#pragma once\n"
      "struct Engine {\n"
      "  virtual int next_hop(int at) = 0;\n"
      "  std::map<int, int> table;\n"
      "};\n"
      "inline void churn(std::vector<int*>& out) {\n"
      "  for (int i = 0; i < 8; ++i) {\n"
      "    out.push_back(new int(i));\n"
      "  }\n"
      "}\n";
  const Report hot = analyze(hotpath_input("src/hot/engine.hpp", text));
  EXPECT_TRUE(has_rule(hot.findings, "hotpath-container")) << hot.render_text();
  EXPECT_TRUE(has_rule(hot.findings, "hotpath-alloc"));
  EXPECT_TRUE(has_rule(hot.findings, "hotpath-virtual"));

  // The identical file in a module with no hotpath directive is quiet.
  const Report cold = analyze(hotpath_input("src/util/engine.hpp", text));
  for (const Finding& f : cold.findings) {
    EXPECT_NE(f.rule.substr(0, 8), "hotpath-") << f.format();
  }
}

TEST(AnalyzeHotpath, ByValueContainerParamFiresUnlessItIsAMoveSink) {
  const Report copied = analyze(hotpath_input(
      "src/hot/api.hpp",
      "#pragma once\n"
      "inline long weigh(std::vector<long> batch) {\n"
      "  long total = 0;\n"
      "  for (long v : batch) total += v;\n"
      "  return total;\n"
      "}\n"));
  EXPECT_TRUE(has_rule(copied.findings, "hotpath-by-value-param"))
      << copied.render_text();

  // The sink idiom -- by-value then moved into place -- is the ONE sanctioned
  // by-value container signature.
  const Report sink = analyze(hotpath_input(
      "src/hot/api.hpp",
      "#pragma once\n"
      "struct Holder {\n"
      "  std::vector<long> owned;\n"
      "  void adopt(std::vector<long> batch) { owned = std::move(batch); }\n"
      "};\n"));
  EXPECT_FALSE(has_rule(sink.findings, "hotpath-by-value-param"))
      << sink.render_text();
}

TEST(AnalyzeHotpath, BaselineAbsorbsFindingsAndStaleEntriesFireTheRatchet) {
  Input input = hotpath_input("src/hot/engine.hpp",
                              "#pragma once\n"
                              "struct Engine {\n"
                              "  std::deque<int> pending;\n"
                              "};\n");
  const Report live = analyze(input);
  std::vector<Finding> hotpath_findings;
  for (const Finding& f : live.findings) {
    if (f.rule.compare(0, 8, "hotpath-") == 0) hotpath_findings.push_back(f);
  }
  ASSERT_FALSE(hotpath_findings.empty()) << live.render_text();

  // Keyed into the baseline, the finding moves to the baselined bucket.
  input.hotpath_text = render_hotpath_baseline(hotpath_findings);
  input.hotpath_path = "tools/analyze/hotpath.baseline";
  const Report absorbed = analyze(input);
  EXPECT_FALSE(has_rule(absorbed.findings, "hotpath-container"));
  EXPECT_TRUE(has_rule(absorbed.baselined, "hotpath-container"));
  EXPECT_FALSE(has_rule(absorbed.findings, "baseline-stale-entry"));

  // An entry that matches nothing must be deleted: the ratchet only shrinks.
  input.hotpath_text += "src/hot/gone.hpp:hotpath-container:map\n";
  const Report stale = analyze(input);
  ASSERT_TRUE(has_rule(stale.findings, "baseline-stale-entry")) << stale.render_text();
  for (const Finding& f : stale.findings) {
    if (f.rule != "baseline-stale-entry") continue;
    EXPECT_EQ(f.file, "tools/analyze/hotpath.baseline");
    EXPECT_EQ(f.line, 0u);
    EXPECT_NE(f.message.find("src/hot/gone.hpp:hotpath-container:map"),
              std::string::npos);
  }
}

TEST(AnalyzeInterproc, BaselineAbsorbsFindingsAndStaleEntriesFireTheRatchet) {
  Input input;
  input.files.push_back({"src/core/orphan.cpp",
                         "namespace demo {\n"
                         "int orphaned_scale(int value) {\n"
                         "  return value * 3;\n"
                         "}\n"
                         "}  // namespace demo\n"});
  input.jobs = 1;
  const Report live = analyze(input);
  std::vector<Finding> interproc_findings;
  for (const Finding& f : live.findings) {
    if (is_interproc_rule(f.rule)) interproc_findings.push_back(f);
  }
  ASSERT_TRUE(has_rule(interproc_findings, "dead-function")) << live.render_text();

  // Keyed into the baseline, the finding moves to the baselined bucket.
  input.interproc_text = render_interproc_baseline(interproc_findings);
  input.interproc_path = "tools/analyze/interproc.baseline";
  const Report absorbed = analyze(input);
  EXPECT_FALSE(has_rule(absorbed.findings, "dead-function"));
  EXPECT_TRUE(has_rule(absorbed.baselined, "dead-function"));
  EXPECT_FALSE(has_rule(absorbed.findings, "baseline-stale-entry"));

  // An entry that matches nothing must be deleted: the ratchet only shrinks.
  input.interproc_text += "src/core/gone.cpp:dead-function:vanished\n";
  const Report stale = analyze(input);
  ASSERT_TRUE(has_rule(stale.findings, "baseline-stale-entry")) << stale.render_text();
  for (const Finding& f : stale.findings) {
    if (f.rule != "baseline-stale-entry") continue;
    EXPECT_EQ(f.file, "tools/analyze/interproc.baseline");
    EXPECT_EQ(f.line, 0u);
    EXPECT_NE(f.message.find("src/core/gone.cpp:dead-function:vanished"),
              std::string::npos);
  }
}

TEST(AnalyzeHotpath, KeyUsesTheQuotedDetailAndBaselineRendersSortedUnique) {
  const Finding f{"src/hot/a.hpp", 12, "hotpath-container",
                  "'deque' (std::deque) used in hot-path module 'hot'"};
  EXPECT_EQ(hotpath_key(f), "src/hot/a.hpp:hotpath-container:deque");

  const Finding g{"src/hot/a.hpp", 40, "hotpath-container",
                  "'deque' (std::deque) used in hot-path module 'hot'"};
  const Finding h{"src/hot/a.hpp", 7, "hotpath-alloc",
                  "'new' allocation inside a loop in hot-path module 'hot'"};
  const std::string rendered = render_hotpath_baseline({f, g, h});
  // Same file+rule+detail dedupes to one line; keys come out sorted.
  const std::string expected_keys =
      "src/hot/a.hpp:hotpath-alloc:new\n"
      "src/hot/a.hpp:hotpath-container:deque\n";
  EXPECT_NE(rendered.find(expected_keys), std::string::npos) << rendered;
  EXPECT_EQ(rendered.find('#'), 0u) << "baseline starts with its comment header";
}

TEST(AnalyzeHotpath, DirectiveMustNameADeclaredModule) {
  Input input;
  input.layers_path = "docs/ARCHITECTURE.layers";
  input.layers_text = "layer util\nhotpath ghost\n";
  input.files.push_back({"src/util/a.hpp", "#pragma once\nnamespace upn {}\n"});
  input.jobs = 1;
  const Report report = analyze(input);
  EXPECT_TRUE(has_rule(report.findings, "layering-undeclared-module"))
      << report.render_text();
}

TEST(AnalyzeHotpath, DirectiveParsingRejectsMalformedAndDuplicateLines) {
  const LayerSpec ok = parse_layers("L", "layer util\nhotpath util\n");
  EXPECT_TRUE(ok.errors.empty());
  EXPECT_EQ(ok.hotpaths.count("util"), 1u);

  EXPECT_TRUE(has_rule(parse_layers("L", "hotpath \n").errors, "layers-malformed"));
  EXPECT_TRUE(
      has_rule(parse_layers("L", "hotpath one two\n").errors, "layers-malformed"));
  EXPECT_TRUE(has_rule(parse_layers("L", "layer util\nhotpath util\nhotpath util\n").errors,
                       "layers-malformed"));
}

// ---- diff restriction -----------------------------------------------------

TEST(AnalyzeDiff, RestrictToFilesKeepsOnlyTheNamedFiles) {
  Input input;
  input.files.push_back({"src/util/a.hpp", "namespace upn {}\n"});
  input.files.push_back({"src/util/b.hpp", "namespace upn {}\n"});
  input.jobs = 1;
  Report report = analyze(input);
  ASSERT_TRUE(has_rule(report.findings, "pragma-once"));
  restrict_to_files(report, {"src/util/b.hpp"});
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.file, "src/util/b.hpp") << f.format();
  }
  EXPECT_TRUE(has_rule(report.findings, "pragma-once"));
}

// ---- fixture trees --------------------------------------------------------

TEST(AnalyzeFixtures, CleanTreeIsClean) {
  const Report report = analyze_tree(UPN_ANALYZE_CLEAN_DIR);
  EXPECT_TRUE(report.findings.empty()) << report.render_text();
  EXPECT_GE(report.files, 3u);
}

TEST(AnalyzeFixtures, BadTreeFiresEveryPassFamily) {
  const Report report = analyze_tree(UPN_ANALYZE_BAD_DIR);
  for (const char* rule :
       {"layering-declared-cycle", "layering-undeclared-edge", "layering-stale-waiver",
        "layering-undeclared-module", "include-cycle", "contract-coverage",
        "rng-by-value", "narrowing-cast", "no-raw-thread", "thread-detach",
        "unused-include", "pragma-once", "par-shared-mutation", "par-shared-rng",
        "taint-unordered-order", "taint-timing", "taint-thread-id", "taint-address",
        "hotpath-container", "hotpath-alloc", "hotpath-virtual",
        "hotpath-by-value-param", "baseline-stale-entry", "lock-order-cycle",
        "task-blocking-call", "task-blocking-io", "contract-violated-call",
        "hotpath-unchecked-entry", "noexcept-may-throw", "dtor-may-throw",
        "dead-function"}) {
    EXPECT_TRUE(has_rule(report.findings, rule)) << rule;
  }
}

// ---- SARIF ----------------------------------------------------------------

TEST(AnalyzeSarif, EmittedReportValidatesStructurally) {
  const Report report = analyze_tree(UPN_ANALYZE_BAD_DIR);
  const std::string sarif = write_sarif(report.findings);
  EXPECT_EQ(validate_sarif(sarif), "");
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("upn_analyze"), std::string::npos);
}

TEST(AnalyzeSarif, EmptyFindingsStillValidate) {
  const std::string sarif = write_sarif({});
  EXPECT_EQ(validate_sarif(sarif), "");
}

TEST(AnalyzeSarif, ValidatorRejectsStructuralDamage) {
  const std::string good = write_sarif({});
  EXPECT_NE(validate_sarif("{}"), "");
  EXPECT_NE(validate_sarif("not json at all"), "");
  std::string wrong_version = good;
  const std::size_t at = wrong_version.find("\"version\": \"2.1.0\"");
  ASSERT_NE(at, std::string::npos);
  wrong_version.replace(at, 18, "\"version\": \"9.9.9\"");
  EXPECT_NE(validate_sarif(wrong_version), "");
}

TEST(AnalyzeSarif, FileScopedFindingsClampToLineOne) {
  const std::string sarif =
      write_sarif({Finding{"src/core/a.hpp", 0, "include-cycle", "cycle"}});
  EXPECT_EQ(validate_sarif(sarif), "");
  EXPECT_NE(sarif.find("\"startLine\": 1"), std::string::npos);
}

// ---- determinism across thread counts -------------------------------------

TEST(AnalyzeDeterminism, ReportsAreByteIdenticalAtJobs127) {
  const Report one = analyze_tree(UPN_ANALYZE_BAD_DIR, 1);
  const Report two = analyze_tree(UPN_ANALYZE_BAD_DIR, 2);
  const Report seven = analyze_tree(UPN_ANALYZE_BAD_DIR, 7);
  EXPECT_EQ(one.render_text(), two.render_text());
  EXPECT_EQ(one.render_text(), seven.render_text());
  EXPECT_EQ(write_sarif(one.findings), write_sarif(two.findings));
  EXPECT_EQ(write_sarif(one.findings), write_sarif(seven.findings));
}

// ---- catalog --------------------------------------------------------------

TEST(AnalyzeCatalog, SortedUniqueAndCoversEmittedRules) {
  const std::vector<RuleInfo>& catalog = rule_catalog();
  ASSERT_FALSE(catalog.empty());
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_LT(std::string{catalog[i - 1].id}, std::string{catalog[i].id});
  }
  const Report report = analyze_tree(UPN_ANALYZE_BAD_DIR);
  for (const Finding& f : report.findings) {
    const bool known = std::any_of(catalog.begin(), catalog.end(),
                                   [&](const RuleInfo& r) { return f.rule == r.id; });
    EXPECT_TRUE(known) << f.rule;
  }
}

}  // namespace
}  // namespace upn::analyze
