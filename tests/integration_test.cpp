// End-to-end integration: the full pipeline of the paper in one test file.
//
//   G_0 (Def 3.9) -> planted 16-regular guest (U[G_0]) -> Theorem 2.1
//   simulation on a butterfly host -> Section 3.1 protocol -> validation ->
//   metrics -> fragments (Def 3.2) -> Lemma 3.3 multiplicity -> Lemma 3.12
//   averaging -> Theorem 3.1 verdicts.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/embedding.hpp"
#include "src/core/universal_sim.hpp"
#include "src/lowerbound/lemma_verify.hpp"
#include "src/lowerbound/tradeoff.hpp"
#include "src/pebble/fragment.hpp"
#include "src/pebble/validator.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/g0.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/math.hpp"

namespace upn {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng{0xf00d};
    host_ = make_butterfly(2);  // m = 12
    const std::uint32_t m = host_.num_nodes();
    const std::uint32_t a = g0_block_parameter(m);
    n_ = g0_round_guest_size(60, a);
    g0_ = make_g0(n_, m, rng);
    guest_ = make_random_regular_with_subgraph(g0_.graph, kGuestDegree, rng);
    simulator_.emplace(guest_, host_, make_random_embedding(n_, m, rng));
    UniversalSimOptions options;
    options.emit_protocol = true;
    options.seed = 0xcafe;
    result_ = simulator_->run(T_, options);
  }

  static constexpr std::uint32_t T_ = 16;
  std::uint32_t n_ = 0;
  Graph host_;
  G0 g0_;
  Graph guest_;
  std::optional<UniversalSimulator> simulator_;
  UniversalSimResult result_;
};

TEST_F(PipelineTest, SimulationIsCorrectAndProtocolValid) {
  EXPECT_TRUE(result_.configs_match);
  ASSERT_TRUE(result_.protocol.has_value());
  const ValidationResult validation = validate_protocol(*result_.protocol, guest_, host_);
  EXPECT_TRUE(validation.ok) << validation.error;
  // Every guest's every step got generated exactly... at least n*T generates.
  EXPECT_GE(validation.pebbles_generated, static_cast<std::uint64_t>(n_) * T_);
}

TEST_F(PipelineTest, MeasuredSlowdownSitsBetweenBounds) {
  const double m = host_.num_nodes();
  const double load_bound = n_ / m;
  const double paper_shape = load_bound * std::log2(m);
  EXPECT_GE(result_.slowdown, load_bound);
  // The single-port simulator should land within a constant of the
  // (n/m) log m upper-bound shape -- wide bracket to stay robust.
  EXPECT_LE(result_.slowdown, 40.0 * paper_shape);
  EXPECT_GE(result_.slowdown, 0.25 * paper_shape);
}

TEST_F(PipelineTest, FragmentsExtractAndBoundMultiplicity) {
  const ProtocolMetrics metrics{*result_.protocol};
  // Every guest time t0 < T admits a fragment (our simulator generates all
  // pebbles of every level).
  const Fragment fragment = extract_fragment(metrics, T_ / 2);
  EXPECT_EQ(fragment.B.size(), n_);
  // Lemma 3.3: multiplicity bound must be finite (|D_i| >= c/2) because the
  // generator of (P_i, t0+1) held all 16 neighbor configurations.
  const double log_x = log2_multiplicity_bound(fragment, kGuestDegree);
  EXPECT_GT(log_x, 0.0);
  EXPECT_TRUE(std::isfinite(log_x));
  // And it is at most the trivial bound n * log2 C(n, 8).
  EXPECT_LE(log_x, n_ * log2_binomial(n_, 8));
  // D_i must contain all guest neighbors of i (the generator's holdings).
  for (NodeId i = 0; i < n_; ++i) {
    for (const NodeId nb : guest_.neighbors(i)) {
      EXPECT_TRUE(std::binary_search(fragment.D[i].begin(), fragment.D[i].end(), nb));
    }
  }
}

TEST_F(PipelineTest, Lemma312HoldsEndToEnd) {
  const ProtocolMetrics metrics{*result_.protocol};
  const Lemma312Report report = verify_lemma312(metrics, g0_);
  EXPECT_TRUE(report.z_large_enough);
  ASSERT_FALSE(report.choices.empty());
  for (const auto& choice : report.choices) {
    EXPECT_TRUE(choice.roots_ok);
    EXPECT_TRUE(choice.trees_ok);
  }
}

TEST_F(PipelineTest, TradeoffVerdictConsistentWithMeasurement) {
  // The measured simulation is a real universal-simulation data point; it
  // cannot violate the lower bound with paper constants.
  const TradeoffVerdict verdict =
      check_network(n_, host_.num_nodes(), result_.slowdown);
  EXPECT_FALSE(verdict.ruled_out_paper_constants);
  // And the measured m*s product should be in the vicinity of n log m
  // (Theorem 2.1 upper bound): within a generous constant.
  EXPECT_GT(verdict.proposed_ms, 0.2 * verdict.bound_nlogm);
}

TEST_F(PipelineTest, InefficiencyDefinitionsAgree) {
  const ProtocolMetrics metrics{*result_.protocol};
  EXPECT_NEAR(metrics.inefficiency(), result_.inefficiency, 1e-9);
  EXPECT_NEAR(result_.protocol->inefficiency(), result_.inefficiency, 1e-9);
}

}  // namespace
}  // namespace upn
