// Parameterized sweep: the universal simulator is host-agnostic.  Every
// constant-degree host family simulates the same guest correctly, and the
// measured slowdown respects the load bound everywhere.
#include <gtest/gtest.h>

#include <functional>

#include "src/core/embedding.hpp"
#include "src/core/universal_sim.hpp"
#include "src/pebble/validator.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/ccc.hpp"
#include "src/topology/debruijn.hpp"
#include "src/topology/mesh_of_trees.hpp"
#include "src/topology/random_regular.hpp"
#include "src/topology/shuffle_exchange.hpp"
#include "src/topology/torus.hpp"

namespace upn {
namespace {

struct HostCase {
  const char* label;
  std::function<Graph()> build;
};

class HostFamilySweep : public ::testing::TestWithParam<HostCase> {};

TEST_P(HostFamilySweep, SimulatesRandomGuestCorrectly) {
  Rng rng{123};
  const Graph host = GetParam().build();
  const std::uint32_t n = 4 * host.num_nodes();  // load 4
  const Graph guest = make_random_regular(n, 8, rng);
  UniversalSimulator sim{guest, host, make_random_embedding(n, host.num_nodes(), rng)};
  const UniversalSimResult result = sim.run(3);
  EXPECT_TRUE(result.configs_match) << GetParam().label;
  EXPECT_GE(result.slowdown, 4.0) << GetParam().label;  // load bound
  EXPECT_EQ(result.load, 4u);
}

TEST_P(HostFamilySweep, EmittedProtocolValidatesOnEveryHost) {
  Rng rng{321};
  const Graph host = GetParam().build();
  const std::uint32_t n = 2 * host.num_nodes();
  const Graph guest = make_random_regular(n, 6, rng);
  UniversalSimulator sim{guest, host, make_random_embedding(n, host.num_nodes(), rng)};
  UniversalSimOptions options;
  options.emit_protocol = true;
  const UniversalSimResult result = sim.run(2, options);
  ASSERT_TRUE(result.protocol.has_value());
  const ValidationResult validation = validate_protocol(*result.protocol, guest, host);
  EXPECT_TRUE(validation.ok) << GetParam().label << ": " << validation.error;
}

INSTANTIATE_TEST_SUITE_P(
    Hosts, HostFamilySweep,
    ::testing::Values(HostCase{"butterfly", [] { return make_butterfly(3); }},
                      HostCase{"wrapped_butterfly", [] { return make_wrapped_butterfly(4); }},
                      HostCase{"torus", [] { return make_torus(6, 6); }},
                      HostCase{"ccc", [] { return make_cube_connected_cycles(3); }},
                      HostCase{"shuffle_exchange", [] { return make_shuffle_exchange(5); }},
                      HostCase{"debruijn", [] { return make_debruijn(5); }},
                      HostCase{"mesh_of_trees", [] { return make_mesh_of_trees(4); }}),
    [](const ::testing::TestParamInfo<HostCase>& param_info) {
      return param_info.param.label;
    });

}  // namespace
}  // namespace upn
