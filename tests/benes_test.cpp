// Benes / Waksman off-line permutation routing tests.
#include <gtest/gtest.h>

#include "src/routing/benes.hpp"
#include "src/util/rng.hpp"

namespace upn {
namespace {

TEST(Benes, IdentityPermutation) {
  const std::vector<std::uint32_t> perm{0, 1, 2, 3};
  const BenesPaths paths = benes_route(perm);
  EXPECT_TRUE(validate_benes_paths(paths, perm));
  EXPECT_EQ(paths.dimension, 2u);
}

TEST(Benes, SwapOfTwo) {
  const std::vector<std::uint32_t> perm{1, 0};
  const BenesPaths paths = benes_route(perm);
  EXPECT_TRUE(validate_benes_paths(paths, perm));
  EXPECT_EQ(paths.rows[0].back(), 1u);
  EXPECT_EQ(paths.rows[1].back(), 0u);
}

TEST(Benes, ReversalPermutation) {
  std::vector<std::uint32_t> perm(16);
  for (std::uint32_t i = 0; i < 16; ++i) perm[i] = 15 - i;
  const BenesPaths paths = benes_route(perm);
  EXPECT_TRUE(validate_benes_paths(paths, perm));
}

TEST(Benes, BitReversalPermutation) {
  std::vector<std::uint32_t> perm(8);
  for (std::uint32_t i = 0; i < 8; ++i) {
    perm[i] = ((i & 1) << 2) | (i & 2) | ((i >> 2) & 1);
  }
  const BenesPaths paths = benes_route(perm);
  EXPECT_TRUE(validate_benes_paths(paths, perm));
}

class BenesRandomSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BenesRandomSweep, RandomPermutationsValidate) {
  Rng rng{GetParam()};
  const std::uint32_t n = 1u << GetParam();
  for (int trial = 0; trial < 5; ++trial) {
    const auto perm = rng.permutation(n);
    const BenesPaths paths = benes_route(perm);
    ASSERT_TRUE(validate_benes_paths(paths, perm)) << "n=" << n << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, BenesRandomSweep, ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 8u));

TEST(Benes, RejectsNonPowerOfTwo) {
  EXPECT_THROW(benes_route({0, 1, 2}), std::invalid_argument);
}

TEST(Benes, RejectsNonPermutation) {
  EXPECT_THROW(benes_route({0, 0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(benes_route({0, 1, 2, 4}), std::invalid_argument);
}

TEST(Benes, PathLevelsHaveCorrectEndpoints) {
  Rng rng{9};
  const auto perm = rng.permutation(32);
  const BenesPaths paths = benes_route(perm);
  for (std::uint32_t i = 0; i < 32; ++i) {
    EXPECT_EQ(paths.rows[i].front(), i);
    EXPECT_EQ(paths.rows[i].back(), perm[i]);
    EXPECT_EQ(paths.rows[i].size(), 2u * paths.dimension + 1);
  }
}

TEST(ValidateBenesPaths, DetectsCorruption) {
  Rng rng{11};
  const auto perm = rng.permutation(8);
  BenesPaths paths = benes_route(perm);
  paths.rows[0][1] ^= 4u;  // illegal bit flip at stage 0 (only bit 0 allowed)
  EXPECT_FALSE(validate_benes_paths(paths, perm));
}

}  // namespace
}  // namespace upn
