// Execution trace and divergence finder tests.
#include <gtest/gtest.h>

#include "src/compute/trace.hpp"
#include "src/topology/torus.hpp"

namespace upn {
namespace {

TEST(Trace, RecordsPerStepDigests) {
  const Graph g = make_torus(4, 4);
  const Trace trace = record_trace(g, 5, 6);
  ASSERT_EQ(trace.step_digests.size(), 7u);
  // Digests change every step (overwhelmingly likely).
  for (std::size_t t = 1; t < trace.step_digests.size(); ++t) {
    EXPECT_NE(trace.step_digests[t], trace.step_digests[t - 1]);
  }
}

TEST(Trace, FirstDifferenceFindsPerturbationStep) {
  const Graph g = make_torus(4, 4);
  const Trace a = record_trace(g, 5, 6);
  const Trace b = record_trace(g, 6, 6);
  const auto diff = first_trace_difference(a, b);
  ASSERT_TRUE(diff.has_value());
  EXPECT_EQ(*diff, 0u);  // different seeds diverge immediately
  EXPECT_FALSE(first_trace_difference(a, a).has_value());
}

TEST(Divergence, NulloptOnAgreement) {
  const Graph g = make_torus(4, 4);
  const auto reference = run_reference(g, 7, 5);
  EXPECT_FALSE(find_divergence(g, 7, 5, reference).has_value());
}

TEST(Divergence, LocatesFirstBadNode) {
  const Graph g = make_torus(4, 4);
  auto corrupted = run_reference(g, 7, 5);
  corrupted[9] ^= 1;
  const auto divergence = find_divergence(g, 7, 5, corrupted);
  ASSERT_TRUE(divergence.has_value());
  EXPECT_EQ(divergence->node, 9u);
  EXPECT_EQ(divergence->actual, divergence->expected ^ 1);
}

}  // namespace
}  // namespace upn
