// Fragment extraction (Definition 3.2) and multiplicity bound (Lemma 3.3).
#include <gtest/gtest.h>

#include <cmath>

#include "src/pebble/fragment.hpp"
#include "src/pebble/metrics.hpp"
#include "src/pebble/protocol.hpp"

namespace upn {
namespace {

/// Triangle guest on 2-node host, T = 2 (same fixture as metrics_test).
Protocol sample_protocol() {
  Protocol protocol{3, 2, 2};
  auto gen = [&](std::uint32_t proc, NodeId i, std::uint32_t t) {
    protocol.begin_step();
    protocol.add(Op{OpKind::kGenerate, proc, PebbleType{i, t}, 0});
  };
  auto transfer = [&](std::uint32_t from, std::uint32_t to, NodeId i, std::uint32_t t) {
    protocol.begin_step();
    protocol.add(Op{OpKind::kSend, from, PebbleType{i, t}, to});
    protocol.add(Op{OpKind::kReceive, to, PebbleType{i, t}, from});
  };
  gen(0, 0, 1);
  gen(0, 1, 1);
  gen(0, 2, 1);
  transfer(0, 1, 0, 1);
  transfer(0, 1, 1, 1);
  transfer(0, 1, 2, 1);
  gen(1, 0, 2);
  gen(1, 1, 2);
  gen(0, 2, 2);
  return protocol;
}

TEST(Fragment, ExtractAtTimeOne) {
  const ProtocolMetrics metrics{sample_protocol()};
  const Fragment fragment = extract_fragment(metrics, 1);
  ASSERT_EQ(fragment.B.size(), 3u);
  ASSERT_EQ(fragment.b.size(), 3u);
  // B_i = representatives at t0 = 1: {0, 1} for all i.
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(fragment.B[i], (std::vector<std::uint32_t>{0, 1}));
  }
  // b_i must be a generator of (P_i, 2): Q1 for P0/P1, Q0 for P2.
  EXPECT_EQ(fragment.b[0], 1u);
  EXPECT_EQ(fragment.b[1], 1u);
  EXPECT_EQ(fragment.b[2], 0u);
  // D_i = all guests (both processors hold everything at t0 = 1).
  for (NodeId i = 0; i < 3; ++i) {
    EXPECT_EQ(fragment.D[i], (std::vector<std::uint32_t>{0, 1, 2}));
  }
  EXPECT_EQ(fragment.total_b_size(), 6u);
}

TEST(Fragment, ExtractAtTimeZero) {
  const ProtocolMetrics metrics{sample_protocol()};
  const Fragment fragment = extract_fragment(metrics, 0);
  // At t0 = 0 every processor holds every initial pebble: |B_i| = 2.
  EXPECT_EQ(fragment.total_b_size(), 6u);
  // b_i must generate (P_i, 1): all generated at Q0.
  for (NodeId i = 0; i < 3; ++i) EXPECT_EQ(fragment.b[i], 0u);
}

TEST(Fragment, MissingGeneratorThrows) {
  Protocol protocol{2, 1, 2};
  protocol.begin_step();
  protocol.add(Op{OpKind::kGenerate, 0, PebbleType{0, 1}, 0});
  const ProtocolMetrics metrics{protocol};
  EXPECT_THROW((void)extract_fragment(metrics, 0), std::invalid_argument);
  EXPECT_THROW((void)extract_fragment(metrics, 2), std::out_of_range);
}

TEST(Fragment, MultiplicityBoundMatchesLemma33) {
  const ProtocolMetrics metrics{sample_protocol()};
  const Fragment fragment = extract_fragment(metrics, 1);
  // |D_i| = 3 for all i; with c = 2: bound = prod C(3, 1) = 27.
  EXPECT_NEAR(log2_multiplicity_bound(fragment, 2), std::log2(27.0), 1e-9);
  // c = 4: C(3, 2)^3 = 27.
  EXPECT_NEAR(log2_multiplicity_bound(fragment, 4), std::log2(27.0), 1e-9);
  // c = 16: c/2 = 8 > |D_i| -> impossible, -inf.
  EXPECT_EQ(log2_multiplicity_bound(fragment, 16),
            -std::numeric_limits<double>::infinity());
}

TEST(Fragment, CountSmallD) {
  const ProtocolMetrics metrics{sample_protocol()};
  const Fragment fragment = extract_fragment(metrics, 1);
  EXPECT_EQ(count_small_d(fragment, 3.0), 3u);
  EXPECT_EQ(count_small_d(fragment, 2.9), 0u);
}

}  // namespace
}  // namespace upn
