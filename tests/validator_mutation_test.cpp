// Failure injection: targeted mutations of valid protocols must be caught
// by the validator -- each mutation class breaks a specific Section 3.1
// rule, and the error message must name it.
#include <gtest/gtest.h>

#include "src/core/embedding.hpp"
#include "src/core/universal_sim.hpp"
#include "src/pebble/validator.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/random_regular.hpp"

namespace upn {
namespace {

struct Fixture {
  Graph guest;
  Graph host;
  Protocol protocol{1, 1, 1};
};

Fixture make_fixture() {
  Rng rng{777};
  Fixture fx;
  fx.guest = make_random_regular(24, 4, rng);
  fx.host = make_butterfly(2);
  UniversalSimulator sim{fx.guest, fx.host,
                         make_random_embedding(24, fx.host.num_nodes(), rng)};
  UniversalSimOptions options;
  options.emit_protocol = true;
  UniversalSimResult result = sim.run(3, options);
  fx.protocol = std::move(*result.protocol);
  return fx;
}

/// Rebuilds the protocol applying `mutate` to each op (by flat index).
Protocol rebuild_with(const Protocol& original,
                      const std::function<bool(std::size_t, Op&)>& mutate) {
  Protocol out{original.num_guests(), original.num_hosts(), original.guest_steps()};
  std::size_t index = 0;
  for (const auto& step : original.steps()) {
    out.begin_step();
    for (Op op : step) {
      mutate(index++, op);
      out.add(op);
    }
  }
  return out;
}

/// Flat index of the first op satisfying `pred`.
std::size_t find_op(const Protocol& protocol, const std::function<bool(const Op&)>& pred) {
  std::size_t index = 0;
  for (const auto& step : protocol.steps()) {
    for (const Op& op : step) {
      if (pred(op)) return index;
      ++index;
    }
  }
  return static_cast<std::size_t>(-1);
}

class MutationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fx_ = make_fixture();
    ASSERT_TRUE(validate_protocol(fx_.protocol, fx_.guest, fx_.host).ok);
  }
  Fixture fx_;
};

TEST_F(MutationTest, DroppingReceivesBreaksValidityMostly) {
  // Turning a receive into a send of an initial pebble removes a holding.
  // Not every receive is load-bearing (the processor may obtain another
  // copy), but the bulk of them are: the chain of forwards or a later
  // generate must fail.  Scan the first receives and require that most
  // mutations are caught.
  std::size_t tested = 0, rejected = 0;
  std::size_t index = 0;
  std::vector<std::size_t> receive_indices;
  for (const auto& step : fx_.protocol.steps()) {
    for (const Op& op : step) {
      // Time-0 pebbles are initial (held by everyone), so dropping their
      // receives is legal; only generated pebbles' receives are load-bearing.
      if (op.kind == OpKind::kReceive && op.pebble.time >= 1) {
        receive_indices.push_back(index);
      }
      ++index;
    }
  }
  ASSERT_FALSE(receive_indices.empty());
  for (std::size_t r = 0; r < receive_indices.size() && tested < 25; r += 7, ++tested) {
    const std::size_t target = receive_indices[r];
    const Protocol mutated = rebuild_with(fx_.protocol, [&](std::size_t i, Op& op) {
      if (i == target) {
        op.kind = OpKind::kSend;
        op.pebble = PebbleType{0, 0};  // initial pebble: always held
      }
      return true;
    });
    if (!validate_protocol(mutated, fx_.guest, fx_.host).ok) ++rejected;
  }
  EXPECT_GT(rejected * 2, tested) << rejected << " of " << tested << " caught";
}

TEST_F(MutationTest, ForwardDatedPebbleIsRejected) {
  // A send of a pebble from the FUTURE (time+1) cannot be held.
  const std::size_t target = find_op(fx_.protocol, [&](const Op& op) {
    return op.kind == OpKind::kSend && op.pebble.time + 1 < fx_.protocol.guest_steps();
  });
  ASSERT_NE(target, static_cast<std::size_t>(-1));
  const Protocol mutated = rebuild_with(fx_.protocol, [&](std::size_t i, Op& op) {
    if (i == target) ++op.pebble.time;
    return true;
  });
  const ValidationResult result = validate_protocol(mutated, fx_.guest, fx_.host);
  EXPECT_FALSE(result.ok);
}

TEST_F(MutationTest, RewiringAPartnerIsRejected) {
  // Point a receive at a non-matching partner: pairing check fires.
  const std::size_t target =
      find_op(fx_.protocol, [](const Op& op) { return op.kind == OpKind::kReceive; });
  ASSERT_NE(target, static_cast<std::size_t>(-1));
  const Protocol mutated = rebuild_with(fx_.protocol, [&](std::size_t i, Op& op) {
    if (i == target) {
      // Any other neighbor of the receiving processor.
      for (const NodeId nb : fx_.host.neighbors(op.proc)) {
        if (nb != op.partner) {
          op.partner = nb;
          break;
        }
      }
    }
    return true;
  });
  const ValidationResult result = validate_protocol(mutated, fx_.guest, fx_.host);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("matching send"), std::string::npos);
}

TEST_F(MutationTest, DroppingFinalGenerateIsRejected) {
  // Retime a final-level generate to a mid level: its guest's final pebble
  // disappears.
  const std::uint32_t T = fx_.protocol.guest_steps();
  const std::size_t target = find_op(fx_.protocol, [&](const Op& op) {
    return op.kind == OpKind::kGenerate && op.pebble.time == T;
  });
  ASSERT_NE(target, static_cast<std::size_t>(-1));
  const Protocol mutated = rebuild_with(fx_.protocol, [&](std::size_t i, Op& op) {
    if (i == target) op.pebble.time = T - 1;
    return true;
  });
  const ValidationResult result = validate_protocol(mutated, fx_.guest, fx_.host);
  EXPECT_FALSE(result.ok);
}

TEST_F(MutationTest, UnmutatedCopyStaysValid) {
  const Protocol copy = rebuild_with(fx_.protocol, [](std::size_t, Op&) { return true; });
  EXPECT_TRUE(validate_protocol(copy, fx_.guest, fx_.host).ok);
}

}  // namespace
}  // namespace upn
