// Failure injection: targeted mutations of valid protocols must be caught
// by the validator -- each mutation class breaks a specific Section 3.1
// rule, and the error message must name it.
#include <gtest/gtest.h>

#include "src/core/embedding.hpp"
#include "src/core/fault_tolerant_sim.hpp"
#include "src/core/universal_sim.hpp"
#include "src/fault/fault_plan.hpp"
#include "src/fault/surgery.hpp"
#include "src/pebble/validator.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/random_regular.hpp"

namespace upn {
namespace {

struct Fixture {
  Graph guest;
  Graph host;
  Protocol protocol{1, 1, 1};
};

Fixture make_fixture() {
  Rng rng{777};
  Fixture fx;
  fx.guest = make_random_regular(24, 4, rng);
  fx.host = make_butterfly(2);
  UniversalSimulator sim{fx.guest, fx.host,
                         make_random_embedding(24, fx.host.num_nodes(), rng)};
  UniversalSimOptions options;
  options.emit_protocol = true;
  UniversalSimResult result = sim.run(3, options);
  fx.protocol = std::move(*result.protocol);
  return fx;
}

/// Rebuilds the protocol applying `mutate` to each op (by flat index).
/// A mutation returning false removes the op -- the fault-injection
/// mutations below use this to model operations lost to hardware failure.
Protocol rebuild_with(const Protocol& original,
                      const std::function<bool(std::size_t, Op&)>& mutate) {
  Protocol out{original.num_guests(), original.num_hosts(), original.guest_steps()};
  std::size_t index = 0;
  for (const auto& step : original.steps()) {
    out.begin_step();
    for (Op op : step) {
      if (mutate(index++, op)) out.add(op);
    }
  }
  return out;
}

/// Flat index of the first op satisfying `pred`.
std::size_t find_op(const Protocol& protocol, const std::function<bool(const Op&)>& pred) {
  std::size_t index = 0;
  for (const auto& step : protocol.steps()) {
    for (const Op& op : step) {
      if (pred(op)) return index;
      ++index;
    }
  }
  return static_cast<std::size_t>(-1);
}

class MutationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fx_ = make_fixture();
    ASSERT_TRUE(validate_protocol(fx_.protocol, fx_.guest, fx_.host).ok);
  }
  Fixture fx_;
};

TEST_F(MutationTest, DroppingReceivesBreaksValidityMostly) {
  // Turning a receive into a send of an initial pebble removes a holding.
  // Not every receive is load-bearing (the processor may obtain another
  // copy), but the bulk of them are: the chain of forwards or a later
  // generate must fail.  Scan the first receives and require that most
  // mutations are caught.
  std::size_t tested = 0, rejected = 0;
  std::size_t index = 0;
  std::vector<std::size_t> receive_indices;
  for (const auto& step : fx_.protocol.steps()) {
    for (const Op& op : step) {
      // Time-0 pebbles are initial (held by everyone), so dropping their
      // receives is legal; only generated pebbles' receives are load-bearing.
      if (op.kind == OpKind::kReceive && op.pebble.time >= 1) {
        receive_indices.push_back(index);
      }
      ++index;
    }
  }
  ASSERT_FALSE(receive_indices.empty());
  for (std::size_t r = 0; r < receive_indices.size() && tested < 25; r += 7, ++tested) {
    const std::size_t target = receive_indices[r];
    const Protocol mutated = rebuild_with(fx_.protocol, [&](std::size_t i, Op& op) {
      if (i == target) {
        op.kind = OpKind::kSend;
        op.pebble = PebbleType{0, 0};  // initial pebble: always held
      }
      return true;
    });
    if (!validate_protocol(mutated, fx_.guest, fx_.host).ok) ++rejected;
  }
  EXPECT_GT(rejected * 2, tested) << rejected << " of " << tested << " caught";
}

TEST_F(MutationTest, ForwardDatedPebbleIsRejected) {
  // A send of a pebble from the FUTURE (time+1) cannot be held.
  const std::size_t target = find_op(fx_.protocol, [&](const Op& op) {
    return op.kind == OpKind::kSend && op.pebble.time + 1 < fx_.protocol.guest_steps();
  });
  ASSERT_NE(target, static_cast<std::size_t>(-1));
  const Protocol mutated = rebuild_with(fx_.protocol, [&](std::size_t i, Op& op) {
    if (i == target) ++op.pebble.time;
    return true;
  });
  const ValidationResult result = validate_protocol(mutated, fx_.guest, fx_.host);
  EXPECT_FALSE(result.ok);
}

TEST_F(MutationTest, RewiringAPartnerIsRejected) {
  // Point a receive at a non-matching partner: pairing check fires.
  const std::size_t target =
      find_op(fx_.protocol, [](const Op& op) { return op.kind == OpKind::kReceive; });
  ASSERT_NE(target, static_cast<std::size_t>(-1));
  const Protocol mutated = rebuild_with(fx_.protocol, [&](std::size_t i, Op& op) {
    if (i == target) {
      // Any other neighbor of the receiving processor.
      for (const NodeId nb : fx_.host.neighbors(op.proc)) {
        if (nb != op.partner) {
          op.partner = nb;
          break;
        }
      }
    }
    return true;
  });
  const ValidationResult result = validate_protocol(mutated, fx_.guest, fx_.host);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("matching send"), std::string::npos);
}

TEST_F(MutationTest, DroppingFinalGenerateIsRejected) {
  // Retime a final-level generate to a mid level: its guest's final pebble
  // disappears.
  const std::uint32_t T = fx_.protocol.guest_steps();
  const std::size_t target = find_op(fx_.protocol, [&](const Op& op) {
    return op.kind == OpKind::kGenerate && op.pebble.time == T;
  });
  ASSERT_NE(target, static_cast<std::size_t>(-1));
  const Protocol mutated = rebuild_with(fx_.protocol, [&](std::size_t i, Op& op) {
    if (i == target) op.pebble.time = T - 1;
    return true;
  });
  const ValidationResult result = validate_protocol(mutated, fx_.guest, fx_.host);
  EXPECT_FALSE(result.ok);
}

TEST_F(MutationTest, UnmutatedCopyStaysValid) {
  const Protocol copy = rebuild_with(fx_.protocol, [](std::size_t, Op&) { return true; });
  EXPECT_TRUE(validate_protocol(copy, fx_.guest, fx_.host).ok);
}

// ---- Fault-flavored mutations ---------------------------------------------
//
// The fixture is a self-healing simulation on a host whose processor 0 died
// at step 0, so the valid protocol avoids the dead hardware entirely and
// validates against the surviving host graph.  Each mutation re-introduces a
// fault symptom the healing layer must have repaired -- the validator has to
// catch all of them.

class FaultMutationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng{4242};
    guest_ = make_random_regular(16, 3, rng);
    host_ = make_butterfly(2);
    plan_.add_node_fault(NodeFault{0, 0});
    std::vector<NodeId> embedding;
    for (NodeId u = 0; u < guest_.num_nodes(); ++u) {
      embedding.push_back(u % host_.num_nodes());
    }
    FaultTolerantSimulator sim{guest_, host_, plan_, embedding};
    FaultSimOptions options;
    options.emit_protocol = true;
    FaultSimResult result = sim.run(3, options);
    ASSERT_TRUE(result.completed);
    protocol_ = std::move(*result.protocol);
    survivors_ = surviving_edges_graph(host_, plan_);
    ASSERT_TRUE(validate_protocol(protocol_, guest_, host_).ok);
    ASSERT_TRUE(validate_protocol(protocol_, guest_, survivors_).ok);
  }

  Graph guest_;
  Graph host_;
  FaultPlan plan_;
  Graph survivors_{};
  Protocol protocol_{1, 1, 1};
};

TEST_F(FaultMutationTest, LostReceiveIsRejected) {
  // Drop receives of generated pebbles, as if the packet died in flight
  // WITHOUT the sender retransmitting.  The receiver no longer holds the
  // pebble, so a later forward or generate must fail.  Not every receive is
  // load-bearing, but at least one must be -- and every rejection must name
  // the missing holding.
  std::vector<std::size_t> receive_indices;
  std::size_t index = 0;
  for (const auto& step : protocol_.steps()) {
    for (const Op& op : step) {
      if (op.kind == OpKind::kReceive && op.pebble.time >= 1) {
        receive_indices.push_back(index);
      }
      ++index;
    }
  }
  ASSERT_FALSE(receive_indices.empty());
  std::size_t rejected = 0;
  for (const std::size_t target : receive_indices) {
    const Protocol mutated = rebuild_with(
        protocol_, [&](std::size_t i, Op&) { return i != target; });
    const ValidationResult result = validate_protocol(mutated, guest_, host_);
    if (result.ok) continue;
    ++rejected;
    const bool named = result.error.find("does not hold the pebble") != std::string::npos ||
                       result.error.find("missing") != std::string::npos;
    EXPECT_TRUE(named) << result.error;
  }
  EXPECT_GT(rejected, 0u);
}

TEST_F(FaultMutationTest, GenerateOnFailedHostIsRejected) {
  // Relocate a generate to the dead processor.  Processor 0 never received
  // anything, so it only holds initial pebbles and cannot have the time >= 2
  // predecessors the generate rule demands.
  const std::size_t target = find_op(protocol_, [](const Op& op) {
    return op.kind == OpKind::kGenerate && op.pebble.time >= 2;
  });
  ASSERT_NE(target, static_cast<std::size_t>(-1));
  const Protocol mutated = rebuild_with(protocol_, [&](std::size_t i, Op& op) {
    if (i == target) op.proc = 0;
    return true;
  });
  const ValidationResult result = validate_protocol(mutated, guest_, host_);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("missing own predecessor"), std::string::npos)
      << result.error;
}

TEST_F(FaultMutationTest, OpOnRemovedEdgeIsRejected) {
  // Rewire a send across an edge that died with processor 0.  On the
  // original host the link exists; on the surviving host it does not, and
  // the neighbor check must fire.
  const std::size_t target = find_op(protocol_, [&](const Op& op) {
    return op.kind == OpKind::kSend && host_.has_edge(op.proc, 0);
  });
  ASSERT_NE(target, static_cast<std::size_t>(-1));
  const Protocol mutated = rebuild_with(protocol_, [&](std::size_t i, Op& op) {
    if (i == target) op.partner = 0;
    return true;
  });
  const ValidationResult result = validate_protocol(mutated, guest_, survivors_);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("partner is not a host neighbor"), std::string::npos)
      << result.error;
}

}  // namespace
}  // namespace upn
