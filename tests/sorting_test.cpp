// Comparator network, bitonic, odd-even merge, OETS, sort-route tests.
#include <gtest/gtest.h>

#include "src/routing/hh_problem.hpp"
#include "src/sorting/bitonic.hpp"
#include "src/sorting/comparator_network.hpp"
#include "src/sorting/odd_even_merge.hpp"
#include "src/sorting/oets.hpp"
#include "src/sorting/sort_route.hpp"
#include "src/util/rng.hpp"

namespace upn {
namespace {

TEST(ComparatorNetwork, AppliesSingleComparator) {
  ComparatorNetwork net{2};
  net.add(0, 1);
  std::vector<std::uint64_t> values{5, 3};
  net.apply(values);
  EXPECT_EQ(values, (std::vector<std::uint64_t>{3, 5}));
}

TEST(ComparatorNetwork, DescendingComparator) {
  ComparatorNetwork net{2};
  net.add(1, 0);  // value at wire 1 <= value at wire 0 afterwards
  std::vector<std::uint64_t> values{3, 5};
  net.apply(values);
  EXPECT_EQ(values, (std::vector<std::uint64_t>{5, 3}));
}

TEST(ComparatorNetwork, RejectsWireReuseInLayer) {
  ComparatorNetwork net{4};
  net.begin_layer();
  net.add(0, 1);
  EXPECT_THROW(net.add(1, 2), std::invalid_argument);
  net.begin_layer();
  net.add(1, 2);  // fine in a fresh layer
  EXPECT_EQ(net.depth(), 2u);
  EXPECT_EQ(net.size(), 2u);
}

TEST(ComparatorNetwork, RejectsBadWires) {
  ComparatorNetwork net{3};
  EXPECT_THROW(net.add(0, 3), std::invalid_argument);
  EXPECT_THROW(net.add(1, 1), std::invalid_argument);
}

TEST(ComparatorNetwork, SizeMismatchThrows) {
  ComparatorNetwork net{3};
  std::vector<std::uint64_t> values{1, 2};
  EXPECT_THROW(net.apply(values), std::invalid_argument);
}

class SorterSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SorterSweep, BitonicIsASortingNetwork) {
  const std::uint32_t n = 1u << GetParam();
  const ComparatorNetwork net = make_bitonic_sorter(n);
  EXPECT_EQ(net.depth(), bitonic_depth(n));
  EXPECT_TRUE(net.is_sorting_network());
}

TEST_P(SorterSweep, OddEvenMergeIsASortingNetwork) {
  const std::uint32_t n = 1u << GetParam();
  EXPECT_TRUE(make_odd_even_merge_sorter(n).is_sorting_network());
}

INSTANTIATE_TEST_SUITE_P(Dims, SorterSweep, ::testing::Values(1u, 2u, 3u, 4u));

TEST(Bitonic, SortsRandomInputsAtScale) {
  Rng rng{12};
  const ComparatorNetwork net = make_bitonic_sorter(256);
  std::vector<std::uint64_t> values(256);
  for (auto& v : values) v = rng();
  net.apply(values);
  EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));
}

TEST(Bitonic, DepthFormula) {
  EXPECT_EQ(bitonic_depth(2), 1u);
  EXPECT_EQ(bitonic_depth(4), 3u);
  EXPECT_EQ(bitonic_depth(8), 6u);
  EXPECT_EQ(bitonic_depth(1024), 55u);
}

TEST(Bitonic, RejectsNonPowerOfTwo) {
  EXPECT_THROW(make_bitonic_sorter(6), std::invalid_argument);
  EXPECT_THROW(make_bitonic_sorter(0), std::invalid_argument);
}

TEST(OddEvenMerge, SortsRandomInputsAtScale) {
  Rng rng{13};
  const ComparatorNetwork net = make_odd_even_merge_sorter(128);
  std::vector<std::uint64_t> values(128);
  for (auto& v : values) v = rng() % 50;  // duplicates
  net.apply(values);
  EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));
}

TEST(Oets, IsSortingNetworkIncludingOddSizes) {
  for (std::uint32_t n : {2u, 3u, 5u, 8u, 13u}) {
    EXPECT_TRUE(make_odd_even_transposition_sorter(n).is_sorting_network()) << "n=" << n;
  }
}

TEST(Oets, DepthIsN) {
  EXPECT_EQ(make_odd_even_transposition_sorter(7).depth(), 7u);
}

TEST(Oets, OnlyNearestNeighborComparators) {
  const ComparatorNetwork net = make_odd_even_transposition_sorter(9);
  for (const auto& layer : net.layers()) {
    for (const Comparator& c : layer) {
      EXPECT_EQ(c.high, c.low + 1);
    }
  }
}

TEST(SortRoute, RoutesFullPermutation) {
  Rng rng{21};
  const ComparatorNetwork sorter = make_bitonic_sorter(64);
  const auto perm = rng.permutation(64);
  const SortRouteStats stats = route_permutation_by_sorting(perm, sorter);
  EXPECT_TRUE(stats.delivered);
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(stats.comparator_steps, sorter.depth());
}

TEST(SortRoute, RoutesHRelation) {
  Rng rng{22};
  const ComparatorNetwork sorter = make_bitonic_sorter(32);
  const HhProblem problem = random_h_relation(32, 3, rng);
  const SortRouteStats stats = route_relation_by_sorting(problem, sorter);
  EXPECT_TRUE(stats.delivered);
  EXPECT_LE(stats.rounds, 3u);
  EXPECT_EQ(stats.comparator_steps, static_cast<std::uint64_t>(stats.rounds) * sorter.depth());
}

TEST(SortRoute, SizeMismatchThrows) {
  const ComparatorNetwork sorter = make_bitonic_sorter(16);
  EXPECT_THROW((void)route_permutation_by_sorting(std::vector<std::uint32_t>(8), sorter),
               std::invalid_argument);
}

}  // namespace
}  // namespace upn
