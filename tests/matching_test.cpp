// Hopcroft-Karp maximum matching tests.
#include <gtest/gtest.h>

#include "src/routing/matching.hpp"
#include "src/util/rng.hpp"

namespace upn {
namespace {

TEST(HopcroftKarp, PerfectMatchingOnIdentity) {
  BipartiteGraph g{4, 4};
  for (std::uint32_t v = 0; v < 4; ++v) g.add_edge(v, v);
  const MatchingResult result = hopcroft_karp(g);
  EXPECT_EQ(result.size, 4u);
  for (std::uint32_t v = 0; v < 4; ++v) EXPECT_EQ(result.match_left[v], v);
}

TEST(HopcroftKarp, AugmentingPathNeeded) {
  // l0-{r0,r1}, l1-{r0}: greedy l0->r0 must be undone via augmenting path.
  BipartiteGraph g{2, 2};
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const MatchingResult result = hopcroft_karp(g);
  EXPECT_EQ(result.size, 2u);
  EXPECT_EQ(result.match_left[0], 1u);
  EXPECT_EQ(result.match_left[1], 0u);
}

TEST(HopcroftKarp, NoEdgesNoMatching) {
  BipartiteGraph g{3, 3};
  const MatchingResult result = hopcroft_karp(g);
  EXPECT_EQ(result.size, 0u);
  for (const auto l : result.match_left) EXPECT_EQ(l, MatchingResult::kUnmatched);
}

TEST(HopcroftKarp, HandlesMultiEdges) {
  BipartiteGraph g{2, 2};
  g.add_edge(0, 1);
  g.add_edge(0, 1);  // duplicate
  g.add_edge(1, 0);
  EXPECT_EQ(hopcroft_karp(g).size, 2u);
}

TEST(HopcroftKarp, UnevenSides) {
  BipartiteGraph g{2, 5};
  g.add_edge(0, 3);
  g.add_edge(1, 3);
  g.add_edge(1, 4);
  const MatchingResult result = hopcroft_karp(g);
  EXPECT_EQ(result.size, 2u);
}

TEST(HopcroftKarp, RejectsOutOfRange) {
  BipartiteGraph g{2, 2};
  EXPECT_THROW(g.add_edge(2, 0), std::out_of_range);
  EXPECT_THROW(g.add_edge(0, 2), std::out_of_range);
}

TEST(HopcroftKarp, RegularMultigraphHasPerfectMatching) {
  // Koenig: every h-regular bipartite multigraph has a perfect matching.
  Rng rng{41};
  const std::uint32_t n = 50, h = 4;
  BipartiteGraph g{n, n};
  for (std::uint32_t round = 0; round < h; ++round) {
    const auto perm = rng.permutation(n);
    for (std::uint32_t v = 0; v < n; ++v) g.add_edge(v, perm[v]);
  }
  EXPECT_EQ(hopcroft_karp(g).size, n);
}

TEST(HopcroftKarp, MatchingIsConsistent) {
  Rng rng{43};
  BipartiteGraph g{30, 30};
  for (int e = 0; e < 120; ++e) {
    g.add_edge(static_cast<std::uint32_t>(rng.below(30)),
               static_cast<std::uint32_t>(rng.below(30)));
  }
  const MatchingResult result = hopcroft_karp(g);
  for (std::uint32_t l = 0; l < 30; ++l) {
    if (result.match_left[l] != MatchingResult::kUnmatched) {
      EXPECT_EQ(result.match_right[result.match_left[l]], l);
    }
  }
}

}  // namespace
}  // namespace upn
