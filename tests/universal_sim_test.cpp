// Universal simulator tests: Theorem 2.1 executed and machine-checked.
#include <gtest/gtest.h>

#include "src/core/embedding.hpp"
#include "src/core/galil_paul.hpp"
#include "src/core/slowdown.hpp"
#include "src/core/universal_sim.hpp"
#include "src/pebble/validator.hpp"
#include "src/routing/policies.hpp"
#include "src/topology/builders.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/debruijn.hpp"
#include "src/topology/random_regular.hpp"
#include "src/topology/torus.hpp"

namespace upn {
namespace {

TEST(UniversalSim, SimulatesTorusGuestOnButterflyCorrectly) {
  Rng rng{1};
  const Graph guest = make_torus(6, 6);       // n = 36
  const Graph host = make_butterfly(2);       // m = 12
  UniversalSimulator sim{guest, host, make_random_embedding(36, 12, rng)};
  const UniversalSimResult result = sim.run(5);
  EXPECT_TRUE(result.configs_match);
  EXPECT_EQ(result.guest_steps, 5u);
  EXPECT_GT(result.host_steps, 0u);
  EXPECT_GE(result.slowdown, static_cast<double>(result.load));
  EXPECT_GT(result.packets_routed, 0u);
}

TEST(UniversalSim, SlowdownAtLeastLoadBound) {
  Rng rng{2};
  const Graph guest = make_random_regular(64, 8, rng);
  const Graph host = make_torus(4, 4);
  UniversalSimulator sim{guest, host, make_random_embedding(64, 16, rng)};
  const UniversalSimResult result = sim.run(3);
  EXPECT_TRUE(result.configs_match);
  // s >= n/m: the load-induced lower bound of Section 1.
  EXPECT_GE(result.slowdown, 64.0 / 16.0);
  EXPECT_NEAR(result.inefficiency, result.slowdown * 16 / 64, 1e-12);
}

TEST(UniversalSim, EmittedProtocolValidates) {
  Rng rng{3};
  const Graph guest = make_random_regular(24, 4, rng);
  const Graph host = make_butterfly(2);  // m = 12
  UniversalSimulator sim{guest, host, make_random_embedding(24, 12, rng)};
  UniversalSimOptions options;
  options.emit_protocol = true;
  const UniversalSimResult result = sim.run(3, options);
  EXPECT_TRUE(result.configs_match);
  ASSERT_TRUE(result.protocol.has_value());
  EXPECT_EQ(result.protocol->host_steps(), result.host_steps);
  const ValidationResult validation = validate_protocol(*result.protocol, guest, host);
  EXPECT_TRUE(validation.ok) << validation.error;
  EXPECT_NEAR(result.protocol->slowdown(), result.slowdown, 1e-12);
}

TEST(UniversalSim, SingleHostDegeneratesToSequentialExecution) {
  Rng rng{4};
  const Graph guest = make_cycle(10);
  const Graph host = make_path(1);  // one processor
  UniversalSimulator sim{guest, host, std::vector<NodeId>(10, 0)};
  const UniversalSimResult result = sim.run(4);
  EXPECT_TRUE(result.configs_match);
  EXPECT_EQ(result.comm_steps, 0u);           // everything is local
  EXPECT_EQ(result.compute_steps, 4u * 10u);  // n per guest step
  EXPECT_DOUBLE_EQ(result.slowdown, 10.0);
}

TEST(UniversalSim, HostEqualsGuestTopologyIsCheap) {
  // Simulating a torus on itself with the identity embedding: each guest
  // step needs one round of nearest-neighbor exchanges.
  const Graph guest = make_torus(4, 4);
  const Graph host = make_torus(4, 4);
  std::vector<NodeId> identity(16);
  for (NodeId v = 0; v < 16; ++v) identity[v] = v;
  UniversalSimulator sim{guest, host, identity};
  const UniversalSimResult result = sim.run(3);
  EXPECT_TRUE(result.configs_match);
  EXPECT_EQ(result.load, 1u);
  // Single-port: a degree-4 exchange needs >= 8 steps (one op per step).
  EXPECT_GE(result.slowdown, 8.0);
  EXPECT_LE(result.slowdown, 40.0);
}

TEST(UniversalSim, MultiPortIsFasterThanSinglePort) {
  Rng rng{5};
  const Graph guest = make_random_regular(48, 6, rng);
  const Graph host = make_debruijn(4);
  const auto embedding = make_random_embedding(48, 16, rng);
  UniversalSimulator sim{guest, host, embedding};
  UniversalSimOptions single, multi;
  single.port_model = PortModel::kSinglePort;
  multi.port_model = PortModel::kMultiPort;
  const auto r_single = sim.run(3, single);
  const auto r_multi = sim.run(3, multi);
  EXPECT_TRUE(r_single.configs_match);
  EXPECT_TRUE(r_multi.configs_match);
  EXPECT_LE(r_multi.comm_steps, r_single.comm_steps);
}

TEST(UniversalSim, ValiantPolicyWorks) {
  Rng rng{6};
  const Graph guest = make_random_regular(32, 4, rng);
  const Graph host = make_butterfly(2);
  UniversalSimulator sim{guest, host, make_random_embedding(32, 12, rng)};
  ValiantPolicy policy{host, 99};
  UniversalSimOptions options;
  options.policy = &policy;
  const UniversalSimResult result = sim.run(3, options);
  EXPECT_TRUE(result.configs_match);
}

TEST(UniversalSim, RejectsBadEmbedding) {
  const Graph guest = make_cycle(8);
  const Graph host = make_path(2);
  EXPECT_THROW((UniversalSimulator{guest, host, std::vector<NodeId>(4, 0)}),
               std::invalid_argument);
}

TEST(MeasureSlowdown, RowIsConsistent) {
  Rng rng{7};
  const Graph guest = make_random_regular(60, 6, rng);
  const Graph host = make_butterfly(2);
  const SlowdownRow row = measure_slowdown(guest, host, 3, rng);
  EXPECT_TRUE(row.verified);
  EXPECT_EQ(row.n, 60u);
  EXPECT_EQ(row.m, 12u);
  EXPECT_NEAR(row.load_bound, 5.0, 1e-12);
  EXPECT_GE(row.slowdown, row.load_bound);
  EXPECT_GT(row.normalized, 0.0);
}

TEST(SweepButterflyHosts, ProducesMonotoneHostSizes) {
  Rng rng{8};
  const Graph guest = make_random_regular(100, 6, rng);
  const auto rows = sweep_butterfly_hosts(guest, 2, 100, rng);
  ASSERT_GE(rows.size(), 2u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].m, rows[i - 1].m);
  }
  for (const auto& row : rows) EXPECT_TRUE(row.verified);
}

TEST(GalilPaul, CostShapeAndDelivery) {
  Rng rng{9};
  const Graph guest = make_random_regular(64, 8, rng);
  const GalilPaulCost cost = galil_paul_step_cost(guest, 16);
  EXPECT_TRUE(cost.delivered);
  EXPECT_GT(cost.rounds, 0u);
  EXPECT_EQ(cost.sorter_depth, 10u);  // bitonic on 16 wires: 4*5/2
  EXPECT_GE(cost.slowdown, static_cast<double>(cost.sorter_depth));
}

TEST(GalilPaul, SortingCostsMoreThanDirectRouting) {
  // The motivation for Theorem 2.1: sort-based routing pays log^2 m.
  Rng rng{10};
  const Graph guest = make_random_regular(128, 8, rng);
  const Graph host = make_butterfly(3);  // m = 32
  const GalilPaulCost gp = galil_paul_step_cost(guest, 32);
  const SlowdownRow direct = measure_slowdown(guest, host, 2, rng);
  EXPECT_GT(gp.slowdown, direct.load_bound);
  EXPECT_GT(gp.slowdown, 0.0);
}

}  // namespace
}  // namespace upn
