// Off-line butterfly h-relation scheduling tests (the Theorem 2.1 corollary
// machinery): schedules must validate and obey the O(h log m) step shape.
#include <gtest/gtest.h>

#include "src/routing/offline_butterfly.hpp"
#include "src/util/rng.hpp"

namespace upn {
namespace {

HhProblem random_node_relation(const ButterflyLayout& layout, std::uint32_t h, Rng& rng) {
  HhProblem p{layout.num_nodes()};
  for (std::uint32_t round = 0; round < h; ++round) {
    const auto perm = rng.permutation(layout.num_nodes());
    for (std::uint32_t v = 0; v < layout.num_nodes(); ++v) p.add(v, perm[v]);
  }
  return p;
}

TEST(OfflineButterfly, EmptyRelation) {
  const HhProblem p{ButterflyLayout{3, false}.num_nodes()};
  const OfflineSchedule schedule = route_relation_offline(3, p);
  EXPECT_TRUE(validate_schedule(schedule, p));
  EXPECT_EQ(schedule.moves.size(), 0u);
}

TEST(OfflineButterfly, SingleDemandAcrossLevels) {
  const ButterflyLayout layout{3, false};
  HhProblem p{layout.num_nodes()};
  p.add(layout.id(2, 5), layout.id(1, 3));
  const OfflineSchedule schedule = route_relation_offline(3, p);
  EXPECT_TRUE(validate_schedule(schedule, p));
  EXPECT_GT(schedule.moves.size(), 0u);
}

TEST(OfflineButterfly, SelfDemand) {
  const ButterflyLayout layout{2, false};
  HhProblem p{layout.num_nodes()};
  p.add(layout.id(1, 1), layout.id(1, 1));
  const OfflineSchedule schedule = route_relation_offline(2, p);
  EXPECT_TRUE(validate_schedule(schedule, p));
}

class OfflineSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {};

TEST_P(OfflineSweep, RandomRelationsValidate) {
  const auto [dim, h] = GetParam();
  const ButterflyLayout layout{dim, false};
  Rng rng{1000 + dim * 10 + h};
  const HhProblem p = random_node_relation(layout, h, rng);
  const OfflineSchedule schedule = route_relation_offline(dim, p);
  ASSERT_TRUE(validate_schedule(schedule, p));
  // Shape check: steps = O(h (d+1) + d); allow a generous constant.
  EXPECT_LE(schedule.num_steps, 8u * (h * (dim + 1) + 2 * dim + 2));
}

INSTANTIATE_TEST_SUITE_P(Shapes, OfflineSweep,
                         ::testing::Values(std::pair{2u, 1u}, std::pair{3u, 1u},
                                           std::pair{3u, 2u}, std::pair{4u, 1u},
                                           std::pair{4u, 3u}, std::pair{5u, 2u}));

TEST(OfflineButterfly, BatchCountMatchesRowRelation) {
  const std::uint32_t dim = 3;
  const ButterflyLayout layout{dim, false};
  Rng rng{55};
  const HhProblem p = random_node_relation(layout, 1, rng);
  const OfflineSchedule schedule = route_relation_offline(dim, p);
  // A node permutation has row-relation h <= d+1, so at most d+1 batches...
  // after padding, exactly the row-relation's h.
  EXPECT_GE(schedule.num_batches, 1u);
  EXPECT_LE(schedule.num_batches, (dim + 1) * 2);
}

TEST(OfflineButterfly, StepGrowthIsLinearInH) {
  const std::uint32_t dim = 4;
  const ButterflyLayout layout{dim, false};
  Rng rng{66};
  const HhProblem p1 = random_node_relation(layout, 1, rng);
  const HhProblem p4 = random_node_relation(layout, 4, rng);
  const auto s1 = route_relation_offline(dim, p1);
  const auto s4 = route_relation_offline(dim, p4);
  ASSERT_TRUE(validate_schedule(s1, p1));
  ASSERT_TRUE(validate_schedule(s4, p4));
  EXPECT_GT(s4.num_steps, s1.num_steps);
  EXPECT_LT(s4.num_steps, 8 * s1.num_steps);  // roughly 4x, not 16x
}

TEST(OfflineButterfly, RejectsSizeMismatch) {
  const HhProblem p{10};
  EXPECT_THROW((void)route_relation_offline(3, p), std::invalid_argument);
}

TEST(ValidateSchedule, DetectsTeleport) {
  const ButterflyLayout layout{2, false};
  HhProblem p{layout.num_nodes()};
  p.add(layout.id(0, 0), layout.id(0, 1));
  OfflineSchedule schedule = route_relation_offline(2, p);
  ASSERT_FALSE(schedule.moves.empty());
  schedule.moves[0].from = layout.id(2, 3);  // teleport the first hop
  EXPECT_FALSE(validate_schedule(schedule, p));
}

}  // namespace
}  // namespace upn
