// Engine-level tests for upn_lint: every source rule fires on a seeded
// string and stays quiet on the idiomatic spelling, suppressions work, and
// the artifact checks accept the committed clean fixtures while rejecting
// every corrupted one with a file:line diagnostic.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/lint/lint.hpp"

namespace fs = std::filesystem;

namespace upn::lint {
namespace {

std::vector<std::string> rules_of(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> rules;
  rules.reserve(diags.size());
  for (const auto& d : diags) rules.push_back(d.rule);
  return rules;
}

bool has_rule(const std::vector<Diagnostic>& diags, const std::string& rule) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.rule == rule; });
}

std::string slurp(const fs::path& path) {
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---- diagnostics ----------------------------------------------------------

TEST(LintDiagnostic, FormatIsFileLineRuleMessage) {
  const Diagnostic d{"a/b.cpp", 12, "no-endl", "use '\\n'"};
  EXPECT_EQ(d.format(), "a/b.cpp:12: [no-endl] use '\\n'");
}

TEST(LintPaths, ExtensionClassification) {
  EXPECT_TRUE(is_source_path("src/util/math.cpp"));
  EXPECT_TRUE(is_source_path("src/util/math.hpp"));
  EXPECT_FALSE(is_source_path("notes.md"));
  EXPECT_TRUE(is_artifact_path("p.upnp"));
  EXPECT_TRUE(is_artifact_path("e.upne"));
  EXPECT_TRUE(is_artifact_path("s.upns"));
  EXPECT_TRUE(is_artifact_path("f.upnf"));
  EXPECT_FALSE(is_artifact_path("p.txt"));
}

// ---- source rules ---------------------------------------------------------

TEST(LintSource, FlagsRandAndUnseededRngs) {
  const auto diags = lint_source("x.cpp",
                                 "int a = rand();\n"
                                 "int b = std::rand();\n"
                                 "std::mt19937 gen;\n"
                                 "upn::Rng rng{42};\n");
  EXPECT_EQ(rules_of(diags),
            (std::vector<std::string>{"no-std-rand", "no-std-rand", "no-unseeded-rng"}));
  EXPECT_EQ(diags[0].line, 1u);
  EXPECT_EQ(diags[2].line, 3u);
}

TEST(LintSource, RandInCommentsStringsAndIdentifiersIsFine) {
  const auto diags = lint_source("x.cpp",
                                 "// never call rand() here\n"
                                 "const char* s = \"rand()\";\n"
                                 "int mirand = my_rand(); (void)operand;\n"
                                 "/* std::endl in a block\n"
                                 "   comment */ int x = 0;\n");
  EXPECT_TRUE(diags.empty()) << diags.front().format();
}

TEST(LintSource, FlagsEndl) {
  const auto diags = lint_source("x.cpp", "os << value << std::endl;\n");
  EXPECT_EQ(rules_of(diags), std::vector<std::string>{"no-endl"});
}

TEST(LintSource, FlagsFloatLiteralComparison) {
  EXPECT_TRUE(has_rule(lint_source("x.cpp", "if (x == 1.0) return;\n"), "float-equality"));
  EXPECT_TRUE(has_rule(lint_source("x.cpp", "if (x != 0.5f) return;\n"), "float-equality"));
  EXPECT_TRUE(has_rule(lint_source("x.cpp", "bool b = 2e9 == y;\n"), "float-equality"));
  EXPECT_FALSE(has_rule(lint_source("x.cpp", "if (k == 0 || k == n) return;\n"),
                        "float-equality"));
  EXPECT_FALSE(has_rule(lint_source("x.cpp", "if (x <= 1.0) return;\n"), "float-equality"));
  EXPECT_FALSE(has_rule(lint_source("x.cpp", "double y = 1.0;\n"), "float-equality"));
}

TEST(LintSource, UnorderedIterationFlaggedOnlyWhenItReachesASink) {
  // The old token-level unordered-iteration rule is retired; its taint-flow
  // successor fires only when the iteration order can actually leak into a
  // deterministic output.
  const std::string flagged =
      "std::unordered_map<int, int> counts;\n"
      "long total = 0;\n"
      "for (const auto& [k, v] : counts) {\n"
      "  total += v;\n"
      "}\n"
      "UPN_OBS_COUNT(\"demo.total\", total);\n";
  EXPECT_TRUE(has_rule(lint_source("x.cpp", flagged), "taint-unordered-order"));

  // Same iteration, no sink: quiet.
  const std::string no_sink =
      "std::unordered_map<int, int> counts;\n"
      "long total = 0;\n"
      "for (const auto& [k, v] : counts) {\n"
      "  total += v;\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_source("x.cpp", no_sink), "taint-unordered-order"));

  // The unordered container nested INSIDE a vector: iterating the vector
  // is deterministic, so this must stay quiet.
  const std::string nested =
      "std::vector<std::unordered_map<int, int>> buckets;\n"
      "long n = 0;\n"
      "for (const auto& bucket : buckets) {\n"
      "  n += 1;\n"
      "}\n"
      "UPN_OBS_COUNT(\"demo.n\", n);\n";
  EXPECT_FALSE(has_rule(lint_source("x.cpp", nested), "taint-unordered-order"));

  const std::string ordered =
      "std::map<int, int> counts;\n"
      "long total = 0;\n"
      "for (const auto& [k, v] : counts) {\n"
      "  total += v;\n"
      "}\n"
      "UPN_OBS_COUNT(\"demo.total\", total);\n";
  EXPECT_FALSE(has_rule(lint_source("x.cpp", ordered), "taint-unordered-order"));
}

TEST(LintSource, RawTimingFlaggedOnlyWhenItReachesASink) {
  // no-raw-timing is retired in favor of taint-timing: reading a clock is
  // fine (the obs kTiming side exists for that); feeding the reading into a
  // deterministic output is the bug.
  const std::string flows =
      "const auto t0 = std::chrono::steady_clock::now().time_since_epoch().count();\n"
      "UPN_OBS_COUNT(\"demo.t0\", t0);\n";
  EXPECT_TRUE(has_rule(lint_source("src/core/universal_sim.cpp", flows), "taint-timing"));
  EXPECT_TRUE(has_rule(lint_source("x.cpp",
                                   "clock_gettime(CLOCK_MONOTONIC, &ts);\n"
                                   "UPN_OBS_COUNT(\"demo.sec\", ts.tv_sec);\n"),
                       "taint-timing"));

  // A clock read that stays on the timing side is quiet.
  const std::string read_only = "const auto t0 = std::chrono::steady_clock::now();\n";
  EXPECT_FALSE(has_rule(lint_source("src/core/universal_sim.cpp", read_only),
                        "taint-timing"));

  // The obs layer and the bench harness are the two sanctioned clock users.
  EXPECT_FALSE(has_rule(lint_source("src/obs/span.cpp", flows), "taint-timing"));
  EXPECT_FALSE(has_rule(lint_source("bench/harness.cpp", flows), "taint-timing"));
  EXPECT_FALSE(has_rule(lint_source("bench/harness.hpp", flows), "taint-timing"));

  const auto suppressed = lint_source(
      "x.cpp",
      "clock_gettime(CLOCK_MONOTONIC, &ts);\n"
      "UPN_OBS_COUNT(\"demo.sec\", ts.tv_sec);  "
      "// upn-analyze-waive(taint-timing: fixture exercises the waiver syntax)\n");
  EXPECT_FALSE(has_rule(suppressed, "taint-timing"));
}

TEST(LintSource, ConcurrencyPassRunsThroughLintAlias) {
  // upn_lint is a thin alias over the analyze engine's per-file passes, so
  // the concurrency-safety rules fire here too.
  const std::string race =
      "void f(Pool& pool, long& total) {\n"
      "  pool.parallel_for(8, [&](std::size_t i) {\n"
      "    total += static_cast<long>(i);\n"
      "  });\n"
      "}\n";
  EXPECT_TRUE(has_rule(lint_source("x.cpp", race), "par-shared-mutation"));

  const std::string disjoint =
      "void f(Pool& pool, std::vector<long>& out) {\n"
      "  pool.parallel_for(out.size(), [&](std::size_t i) {\n"
      "    out[i] = static_cast<long>(i);\n"
      "  });\n"
      "}\n";
  EXPECT_FALSE(has_rule(lint_source("x.cpp", disjoint), "par-shared-mutation"));
}

TEST(LintSource, PragmaOnceRequiredInHeadersOnly) {
  const std::string body = "namespace x {}\n";
  EXPECT_TRUE(has_rule(lint_source("a.hpp", body), "pragma-once"));
  EXPECT_FALSE(has_rule(lint_source("a.cpp", body), "pragma-once"));
  EXPECT_FALSE(has_rule(lint_source("a.hpp", "#pragma once\n" + body), "pragma-once"));
}

TEST(LintSource, SuppressionCommentSilencesTheRule) {
  const auto suppressed = lint_source(
      "x.cpp", "if (b == 0.0) return;  // upn-lint-allow(float-equality)\n");
  EXPECT_TRUE(suppressed.empty());
  // The wrong rule name does not suppress.
  const auto still_flagged =
      lint_source("x.cpp", "if (b == 0.0) return;  // upn-lint-allow(no-endl)\n");
  EXPECT_TRUE(has_rule(still_flagged, "float-equality"));
}

// ---- artifact checks ------------------------------------------------------

TEST(LintArtifact, CleanProtocolPasses) {
  const std::string protocol =
      "upn-protocol 1 2 2 1\n"
      "step\n"
      "G 0 0 1\n"
      "G 1 1 1\n"
      "step\n"
      "S 0 0 1 1\n"
      "R 1 0 1 0\n";
  EXPECT_TRUE(lint_artifact("p.upnp", protocol).empty());
}

TEST(LintArtifact, MalformedProtocolIsRejectedWithDiagnostic) {
  const auto diags = lint_artifact("p.upnp", "upn-protocol 9 junk\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "artifact-malformed");
  EXPECT_NE(diags[0].message.find("line 1"), std::string::npos) << diags[0].message;
}

TEST(LintArtifact, UnmatchedReceiveIsFlaggedWithItsLine) {
  const std::string protocol =
      "upn-protocol 1 2 2 1\n"
      "step\n"
      "G 0 0 1\n"
      "G 1 1 1\n"
      "step\n"
      "R 1 0 1 0\n";
  const auto diags = lint_artifact("p.upnp", protocol);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "protocol-unmatched-receive");
  EXPECT_EQ(diags[0].line, 6u);
}

TEST(LintArtifact, MissingFinalPebbleIsFlagged) {
  const auto diags = lint_artifact("p.upnp",
                                   "upn-protocol 1 2 2 1\n"
                                   "step\n"
                                   "G 0 0 1\n");
  EXPECT_TRUE(has_rule(diags, "protocol-final-coverage"));
}

TEST(LintArtifact, EmbeddingLoadCheckedAgainstDeclaration) {
  EXPECT_TRUE(lint_artifact("e.upne", "upn-embedding 1 4 4 1\n0\n1\n2\n3\n").empty());
  const auto diags = lint_artifact("e.upne", "upn-embedding 1 4 4 1\n0\n0\n1\n2\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "embedding-load-exceeds-declaration");
}

TEST(LintArtifact, ScheduleBoundsCheckedAgainstDeclaration) {
  const std::string ok =
      "upn-schedule 1 2 1 1 1\n"
      "step\n"
      "M 0 0 1\n"
      "M 1 2 3\n";
  EXPECT_TRUE(lint_artifact("s.upns", ok).empty());

  const std::string over =
      "upn-schedule 1 2 1 1 2\n"
      "step\n"
      "M 0 0 1\n"
      "step\n"
      "M 0 1 2\n"
      "M 1 0 1\n";
  const auto diags = lint_artifact("s.upns", over);
  EXPECT_TRUE(has_rule(diags, "schedule-congestion-exceeds-declaration"));
  EXPECT_TRUE(has_rule(diags, "schedule-dilation-exceeds-declaration"));
}

TEST(LintArtifact, ScheduleConflictAndBrokenPath) {
  const auto conflict = lint_artifact("s.upns",
                                      "upn-schedule 1 2 2 1 1\n"
                                      "step\n"
                                      "M 0 0 1\n"
                                      "M 1 0 1\n");
  EXPECT_TRUE(has_rule(conflict, "schedule-link-conflict"));

  const auto broken = lint_artifact("s.upns",
                                    "upn-schedule 1 1 1 2 2\n"
                                    "step\n"
                                    "M 0 0 1\n"
                                    "step\n"
                                    "M 0 3 4\n");
  EXPECT_TRUE(has_rule(broken, "schedule-broken-path"));
}

TEST(LintArtifact, FaultPlanDuplicatesFlagged) {
  const auto diags = lint_artifact("f.upnf",
                                   "upn-faultplan 1 0 2 0 0\n"
                                   "L 0 1 0\n"
                                   "L 1 0 5\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "faultplan-duplicate-fault");
  EXPECT_EQ(diags[0].line, 3u);
}

// ---- the committed fixtures -----------------------------------------------

TEST(LintFixtures, CleanFixturesAllPass) {
  std::size_t checked = 0;
  for (const auto& entry : fs::directory_iterator{UPN_FIXTURES_DIR}) {
    if (!is_artifact_path(entry.path().string())) continue;
    const auto diags = lint_artifact(entry.path().string(), slurp(entry.path()));
    EXPECT_TRUE(diags.empty()) << diags.front().format();
    ++checked;
  }
  EXPECT_GE(checked, 4u) << "expected one clean fixture per artifact format";
}

TEST(LintFixtures, EveryBadFixtureIsRejected) {
  std::size_t checked = 0;
  for (const auto& entry : fs::directory_iterator{UPN_FIXTURES_BAD_DIR}) {
    const std::string path = entry.path().string();
    std::vector<Diagnostic> diags;
    if (is_artifact_path(path)) {
      diags = lint_artifact(path, slurp(entry.path()));
    } else if (is_source_path(path)) {
      diags = lint_source(path, slurp(entry.path()));
    } else {
      continue;
    }
    EXPECT_FALSE(diags.empty()) << path << " was expected to be flagged";
    ++checked;
  }
  EXPECT_GE(checked, 10u);
}

}  // namespace
}  // namespace upn::lint
