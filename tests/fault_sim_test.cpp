// Self-healing universal simulation under fault plans.
#include <gtest/gtest.h>

#include "src/core/fault_tolerant_sim.hpp"
#include "src/core/universal_sim.hpp"
#include "src/fault/fault_plan.hpp"
#include "src/fault/surgery.hpp"
#include "src/pebble/validator.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/mesh.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/rng.hpp"

namespace upn {
namespace {

struct Fixture {
  Graph guest;
  Graph host;
  std::vector<NodeId> embedding;
};

Fixture make_fixture(std::uint64_t seed = 11) {
  Rng rng{seed};
  Fixture f{make_random_regular(16, 3, rng), make_butterfly(2), {}};
  // Round-robin embedding: every host simulates at least one guest, so
  // killing any host forces a re-embedding.
  for (NodeId u = 0; u < f.guest.num_nodes(); ++u) {
    f.embedding.push_back(u % f.host.num_nodes());
  }
  return f;
}

TEST(FaultSim, EmptyPlanMatchesPlainUniversalSimulation) {
  Fixture f = make_fixture();
  const FaultPlan plan;
  FaultTolerantSimulator sim{f.guest, f.host, plan, f.embedding};
  FaultSimOptions options;
  options.emit_protocol = true;
  const FaultSimResult result = sim.run(3, options);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.configs_match);
  EXPECT_EQ(result.fault_epochs, 0u);
  EXPECT_EQ(result.reembedded_guests, 0u);
  EXPECT_EQ(result.retransmissions, 0u);
  ASSERT_TRUE(result.protocol.has_value());
  EXPECT_TRUE(validate_protocol(*result.protocol, f.guest, f.host).ok);
}

TEST(FaultSim, StepZeroNodeFaultsHealAndValidateAgainstSurvivors) {
  Fixture f = make_fixture();
  FaultPlan plan;
  plan.add_node_fault(NodeFault{0, 0});
  plan.add_node_fault(NodeFault{7, 0});
  ASSERT_TRUE(assess_degradation(f.host, plan).connected);

  FaultTolerantSimulator sim{f.guest, f.host, plan, f.embedding};
  FaultSimOptions options;
  options.emit_protocol = true;
  const FaultSimResult result = sim.run(3, options);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.configs_match);
  EXPECT_EQ(result.fault_epochs, 1u);
  EXPECT_GT(result.reembedded_guests, 0u);

  // The guests that lived on the dead hosts moved to survivors.
  for (const NodeId q : sim.embedding()) {
    EXPECT_NE(q, 0u);
    EXPECT_NE(q, 7u);
  }

  // The acceptance property: the emitted protocol is a legal Section 3.1
  // simulation on the original host AND on the surviving hardware.
  ASSERT_TRUE(result.protocol.has_value());
  EXPECT_TRUE(validate_protocol(*result.protocol, f.guest, f.host).ok);
  const Graph survivors = surviving_edges_graph(f.host, plan);
  const ValidationResult check = validate_protocol(*result.protocol, f.guest, survivors);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(FaultSim, StepZeroFaultsCostSlowdown) {
  Fixture f = make_fixture();
  const FaultPlan none;
  FaultPlan plan;
  plan.add_node_fault(NodeFault{0, 0});
  plan.add_node_fault(NodeFault{7, 0});
  const FaultSimResult clean = FaultTolerantSimulator{f.guest, f.host, none, f.embedding}.run(3);
  const FaultSimResult hurt = FaultTolerantSimulator{f.guest, f.host, plan, f.embedding}.run(3);
  ASSERT_TRUE(clean.completed);
  ASSERT_TRUE(hurt.completed);
  EXPECT_GE(hurt.host_steps, clean.host_steps);
  EXPECT_GE(hurt.slowdown, clean.slowdown);
}

TEST(FaultSim, MidRunNodeFaultTriggersReplayAndStaysValid) {
  Fixture f = make_fixture();
  FaultPlan plan;
  plan.add_node_fault(NodeFault{3, 4});  // dies a few host steps in
  FaultTolerantSimulator sim{f.guest, f.host, plan, f.embedding};
  FaultSimOptions options;
  options.emit_protocol = true;
  const FaultSimResult result = sim.run(4, options);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.configs_match);
  EXPECT_EQ(result.fault_epochs, 1u);
  EXPECT_GT(result.reembedded_guests, 0u);
  EXPECT_GT(result.replay_steps, 0u);
  for (const NodeId q : sim.embedding()) EXPECT_NE(q, 3u);
  // Mid-run faults keep the protocol legal on the ORIGINAL host (the dead
  // processor acted while it was still alive).
  ASSERT_TRUE(result.protocol.has_value());
  const ValidationResult check = validate_protocol(*result.protocol, f.guest, f.host);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(FaultSim, TransientDropsRetransmitAndStayCorrect) {
  Fixture f = make_fixture();
  const FaultPlan plan = make_uniform_drops(f.host, 0.25, 99);
  FaultTolerantSimulator sim{f.guest, f.host, plan, f.embedding};
  FaultSimOptions options;
  options.emit_protocol = true;
  const FaultSimResult result = sim.run(3, options);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.configs_match);
  EXPECT_GT(result.retransmissions, 0u);
  // Drops surface as SENDs without the mirrored RECEIVE -- still legal.
  ASSERT_TRUE(result.protocol.has_value());
  const ValidationResult check = validate_protocol(*result.protocol, f.guest, f.host);
  EXPECT_TRUE(check.ok) << check.error;
}

TEST(FaultSim, TotalLossReportsIncompleteInsteadOfThrowing) {
  Fixture f = make_fixture();
  const FaultPlan plan = make_uniform_node_faults(f.host, 1.0, 1);
  FaultTolerantSimulator sim{f.guest, f.host, plan, f.embedding};
  const FaultSimResult result = sim.run(3);
  EXPECT_FALSE(result.completed);
  EXPECT_FALSE(result.configs_match);
}

TEST(FaultSim, DeterministicAcrossRuns) {
  Fixture f = make_fixture();
  const FaultPlan plan = merge_plans(make_uniform_node_faults(f.host, 0.1, 21),
                                     make_uniform_drops(f.host, 0.1, 21));
  const FaultSimResult a = FaultTolerantSimulator{f.guest, f.host, plan, f.embedding}.run(3);
  const FaultSimResult b = FaultTolerantSimulator{f.guest, f.host, plan, f.embedding}.run(3);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.host_steps, b.host_steps);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.reroutes, b.reroutes);
  EXPECT_EQ(a.packets_routed, b.packets_routed);
}

TEST(FaultSim, AgreesWithUniversalSimulatorWhenFaultFree) {
  Fixture f = make_fixture();
  UniversalSimulator plain{f.guest, f.host, f.embedding};
  const UniversalSimResult reference = plain.run(3);
  const FaultPlan plan;
  const FaultSimResult faulty = FaultTolerantSimulator{f.guest, f.host, plan, f.embedding}.run(3);
  EXPECT_TRUE(reference.configs_match);
  EXPECT_TRUE(faulty.configs_match);
}

TEST(FaultSim, RejectsBadEmbedding) {
  Fixture f = make_fixture();
  const FaultPlan plan;
  std::vector<NodeId> short_embedding(f.guest.num_nodes() - 1, 0);
  EXPECT_THROW((FaultTolerantSimulator{f.guest, f.host, plan, short_embedding}),
               std::invalid_argument);
  std::vector<NodeId> out_of_range(f.guest.num_nodes(), f.host.num_nodes());
  EXPECT_THROW((FaultTolerantSimulator{f.guest, f.host, plan, out_of_range}),
               std::invalid_argument);
}

}  // namespace
}  // namespace upn
