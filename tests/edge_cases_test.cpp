// Boundary behaviors across modules: the degenerate inputs a downstream
// user WILL eventually feed the library.
#include <gtest/gtest.h>

#include "src/core/embedding.hpp"
#include "src/core/universal_sim.hpp"
#include "src/pebble/validator.hpp"
#include "src/routing/decompose.hpp"
#include "src/routing/policies.hpp"
#include "src/routing/router.hpp"
#include "src/topology/builders.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/properties.hpp"

namespace upn {
namespace {

TEST(EdgeCases, ZeroStepSimulation) {
  Rng rng{1};
  const Graph guest = make_cycle(8);
  const Graph host = make_path(2);
  UniversalSimulator sim{guest, host, make_random_embedding(8, 2, rng)};
  const UniversalSimResult result = sim.run(0);
  EXPECT_TRUE(result.configs_match);  // nothing happened, states agree
  EXPECT_EQ(result.host_steps, 0u);
  EXPECT_DOUBLE_EQ(result.slowdown, 0.0);
}

TEST(EdgeCases, ZeroStepProtocolValidates) {
  const Protocol protocol{4, 2, 0};
  const ValidationResult result = validate_protocol(protocol, make_cycle(4), make_path(2));
  EXPECT_TRUE(result.ok) << result.error;  // final pebbles are initial ones
}

TEST(EdgeCases, SingleGuestOnSingleHost) {
  // n = 1: a guest with no neighbors; the simulation is pure computation.
  GraphBuilder b{1, "singleton"};
  const Graph guest = std::move(b).build();
  const Graph host = make_path(1);
  UniversalSimulator sim{guest, host, std::vector<NodeId>{0}};
  const UniversalSimResult result = sim.run(5);
  EXPECT_TRUE(result.configs_match);
  EXPECT_EQ(result.comm_steps, 0u);
  EXPECT_EQ(result.host_steps, 5u);
}

TEST(EdgeCases, GuestWithIsolatedNodes) {
  // Isolated guest nodes have no neighbors: they evolve from their own
  // configuration only and must still be simulated correctly.
  GraphBuilder b{6, "partial"};
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const Graph guest = std::move(b).build();
  Rng rng{2};
  const Graph host = make_path(2);
  UniversalSimulator sim{guest, host, make_random_embedding(6, 2, rng)};
  const UniversalSimResult result = sim.run(4);
  EXPECT_TRUE(result.configs_match);
}

TEST(EdgeCases, RouterWithNoPackets) {
  const Graph host = make_butterfly(2);
  SyncRouter router{host, PortModel::kSinglePort};
  GreedyPolicy policy{host};
  const RouteResult result = router.route({}, policy);
  EXPECT_EQ(result.steps, 0u);
  EXPECT_EQ(result.total_transfers, 0u);
}

TEST(EdgeCases, DecomposeSingletonNode) {
  HhProblem p{1};
  p.add(0, 0);
  const auto rounds = decompose_into_permutations(p);
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_EQ(rounds[0].size(), 1u);
}

TEST(EdgeCases, DiameterOfSingleNode) {
  const Graph g = make_path(1);
  EXPECT_EQ(diameter(g), 0u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(girth(g), kUnreachable);
}

TEST(EdgeCases, EmbeddingMoreHostsThanGuestsSimulates) {
  Rng rng{3};
  const Graph guest = make_cycle(5);
  const Graph host = make_butterfly(2);  // 12 hosts, 5 guests: load 1
  UniversalSimulator sim{guest, host, make_random_embedding(5, 12, rng)};
  const UniversalSimResult result = sim.run(3);
  EXPECT_TRUE(result.configs_match);
  EXPECT_EQ(result.load, 1u);
  // m > n: slowdown is still >= 1 per the paper's remark on inefficiency.
  EXPECT_GE(result.slowdown, 1.0);
}

}  // namespace
}  // namespace upn
