// Unit tests for src/util: RNG, log-domain math, tables, CLI parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "src/util/cli.hpp"
#include "src/util/math.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"

namespace upn {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng{7};
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, (1ull << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsZero) {
  Rng rng{7};
  EXPECT_EQ(rng.below(1), 0u);
  EXPECT_EQ(rng.below(0), 0u);  // degenerate bound treated as 1
}

TEST(Rng, BetweenInclusive) {
  Rng rng{9};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.between(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{11};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, PermutationIsBijective) {
  Rng rng{13};
  const auto perm = rng.permutation(257);
  std::set<std::uint32_t> values(perm.begin(), perm.end());
  EXPECT_EQ(values.size(), 257u);
  EXPECT_EQ(*values.begin(), 0u);
  EXPECT_EQ(*values.rbegin(), 256u);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng{17};
  std::vector<int> items{1, 1, 2, 3, 5, 8, 13};
  auto shuffled = items;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(Rng, ForkIsIndependent) {
  Rng a{21};
  Rng child = a.fork();
  EXPECT_NE(a(), child());
}

TEST(Math, Log2FactorialSmallValues) {
  EXPECT_NEAR(log2_factorial(0), 0.0, 1e-12);
  EXPECT_NEAR(log2_factorial(1), 0.0, 1e-12);
  EXPECT_NEAR(log2_factorial(4), std::log2(24.0), 1e-9);
  EXPECT_NEAR(log2_factorial(10), std::log2(3628800.0), 1e-9);
}

TEST(Math, Log2BinomialMatchesExact) {
  EXPECT_NEAR(log2_binomial(5, 2), std::log2(10.0), 1e-9);
  EXPECT_NEAR(log2_binomial(10, 5), std::log2(252.0), 1e-9);
  EXPECT_NEAR(log2_binomial(52, 5), std::log2(2598960.0), 1e-9);
}

TEST(Math, Log2BinomialDegenerate) {
  EXPECT_EQ(log2_binomial(5, 6), -std::numeric_limits<double>::infinity());
  EXPECT_EQ(log2_binomial(5, -1), -std::numeric_limits<double>::infinity());
  EXPECT_NEAR(log2_binomial(5, 0), 0.0, 1e-12);
  EXPECT_NEAR(log2_binomial(5, 5), 0.0, 1e-12);
}

TEST(Math, Log2AddCommutesAndIsCorrect) {
  EXPECT_NEAR(log2_add(3, 3), 4.0, 1e-12);  // 8 + 8 = 16
  EXPECT_NEAR(log2_add(0, 0), 1.0, 1e-12);  // 1 + 1 = 2
  EXPECT_NEAR(log2_add(10, 0), log2_add(0, 10), 1e-12);
  const double neg_inf = -std::numeric_limits<double>::infinity();
  EXPECT_NEAR(log2_add(neg_inf, 5.0), 5.0, 1e-12);
}

TEST(Math, IntegerLogs) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Math, PowersOfTwo) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(64));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(63));
  EXPECT_EQ(next_power_of_two(1), 1u);
  EXPECT_EQ(next_power_of_two(3), 4u);
  EXPECT_EQ(next_power_of_two(64), 64u);
  EXPECT_EQ(next_power_of_two(65), 128u);
}

TEST(Math, Isqrt) {
  EXPECT_EQ(isqrt(0), 0u);
  EXPECT_EQ(isqrt(1), 1u);
  EXPECT_EQ(isqrt(3), 1u);
  EXPECT_EQ(isqrt(4), 2u);
  EXPECT_EQ(isqrt(99), 9u);
  EXPECT_EQ(isqrt(100), 10u);
  const std::uint64_t big = 0xffffffffull;
  EXPECT_EQ(isqrt(big * big), big);
  EXPECT_EQ(isqrt(big * big + 1), big);
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 5), 2u);
  EXPECT_EQ(ceil_div(11, 5), 3u);
  EXPECT_EQ(ceil_div(1, 7), 1u);
}

TEST(Table, PrintsAlignedHeaders) {
  Table table{{"m", "slowdown"}};
  table.add_row({std::uint64_t{64}, 3.5});
  table.add_row({std::uint64_t{1024}, 12.25});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("slowdown"), std::string::npos);
  EXPECT_NE(text.find("1024"), std::string::npos);
  EXPECT_NE(text.find("12.25"), std::string::npos);
}

TEST(Table, CsvRoundTrip) {
  Table table{{"a", "b"}};
  table.add_row({std::string{"x"}, std::int64_t{-3}});
  std::ostringstream out;
  table.write_csv(out);
  EXPECT_EQ(out.str(), "a,b\nx,-3\n");
}

TEST(Table, RejectsMismatchedRow) {
  Table table{{"a", "b"}};
  EXPECT_THROW(table.add_row({std::uint64_t{1}}), std::invalid_argument);
}

TEST(Table, CellTextAccessor) {
  Table table{{"a"}};
  table.add_row({std::uint64_t{7}});
  EXPECT_EQ(table.cell_text(0, 0), "7");
}

TEST(Cli, ParsesSeparateAndEqualsForms) {
  const char* argv[] = {"prog", "--n", "128", "--m=64", "--verbose"};
  Cli cli{5, argv};
  EXPECT_EQ(cli.get_u64("n", 0), 128u);
  EXPECT_EQ(cli.get_u64("m", 0), 64u);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_FALSE(cli.has("quiet"));
  EXPECT_TRUE(cli.unused().empty());
}

TEST(Cli, DefaultsApply) {
  const char* argv[] = {"prog"};
  Cli cli{1, argv};
  EXPECT_EQ(cli.get_u64("n", 42), 42u);
  EXPECT_DOUBLE_EQ(cli.get_double("alpha", 0.5), 0.5);
  EXPECT_EQ(cli.get("name", "fallback"), "fallback");
}

TEST(Cli, RejectsPositionalArguments) {
  const char* argv[] = {"prog", "oops"};
  EXPECT_THROW((Cli{2, argv}), std::invalid_argument);
}

TEST(Cli, TracksUnusedFlags) {
  const char* argv[] = {"prog", "--typo", "1"};
  Cli cli{3, argv};
  EXPECT_EQ(cli.unused().size(), 1u);
  EXPECT_EQ(cli.unused()[0], "typo");
}

}  // namespace
}  // namespace upn
