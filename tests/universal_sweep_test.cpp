// Broad guest-family x host-family sweep of the universal simulator:
// the Theorem 2.1 construction is guest-agnostic and host-agnostic as long
// as the host is connected -- checked across the whole topology zoo.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <vector>

#include "src/core/embedding.hpp"
#include "src/core/universal_sim.hpp"
#include "src/topology/builders.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/debruijn.hpp"
#include "src/topology/kautz.hpp"
#include "src/topology/mesh.hpp"
#include "src/topology/random_regular.hpp"
#include "src/topology/torus.hpp"
#include "src/topology/torus3d.hpp"
#include "src/util/par.hpp"

namespace upn {
namespace {

struct SweepCase {
  const char* label;
  std::function<Graph(Rng&)> guest;
  std::function<Graph()> host;
};

class UniversalSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(UniversalSweep, SimulationVerifies) {
  Rng rng{2718};
  const Graph guest = GetParam().guest(rng);
  const Graph host = GetParam().host();
  UniversalSimulator sim{guest, host,
                         make_random_embedding(guest.num_nodes(), host.num_nodes(), rng)};
  const UniversalSimResult result = sim.run(3);
  EXPECT_TRUE(result.configs_match) << GetParam().label;
  EXPECT_GE(result.slowdown,
            static_cast<double>(guest.num_nodes()) / host.num_nodes())
      << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, UniversalSweep,
    ::testing::Values(
        SweepCase{"mesh_on_butterfly", [](Rng&) { return make_mesh(8, 8); },
                  [] { return make_butterfly(2); }},
        SweepCase{"torus3d_on_debruijn", [](Rng&) { return make_torus3d(4, 4, 4); },
                  [] { return make_debruijn(4); }},
        SweepCase{"expanderish_on_kautz",
                  [](Rng& rng) { return make_random_regular(96, 12, rng); },
                  [] { return make_kautz(3); }},
        SweepCase{"cycle_on_torus", [](Rng&) { return make_cycle(80); },
                  [] { return make_torus(4, 4); }},
        SweepCase{"tree_on_butterfly", [](Rng&) { return make_complete_binary_tree(6); },
                  [] { return make_butterfly(2); }},
        SweepCase{"dense_on_small_host",
                  [](Rng& rng) { return make_random_regular(60, 16, rng); },
                  [] { return make_cycle(5); }}),
    [](const ::testing::TestParamInfo<SweepCase>& param_info) {
      return param_info.param.label;
    });

TEST(UniversalSweep, SlowdownDecreasesWithHostSize) {
  // Fixed guest, growing butterfly hosts: more processors means less
  // slowdown (monotone within noise; assert a generous ordering).
  Rng rng{31};
  const Graph guest = make_random_regular(256, 8, rng);
  double previous = 1e18;
  for (const std::uint32_t d : {2u, 3u, 4u}) {
    const Graph host = make_butterfly(d);
    UniversalSimulator sim{guest, host,
                           make_random_embedding(256, host.num_nodes(), rng)};
    const UniversalSimResult result = sim.run(2);
    ASSERT_TRUE(result.configs_match);
    EXPECT_LT(result.slowdown, previous);
    previous = result.slowdown;
  }
}

TEST(UniversalSweep, PoolSweepOfGuestHostGridIsDeterministic) {
  // The whole (guest size, host dimension) grid as one pool sweep: every
  // point simulates independently under its own Rng::stream, so the result
  // vector is identical for every pool size.  This is the test-suite twin
  // of the bench_tradeoff / bench_upper_bound sweep drivers.
  struct GridPoint {
    std::uint32_t n;
    std::uint32_t d;
  };
  std::vector<GridPoint> grid;
  for (const std::uint32_t n : {48u, 96u, 144u}) {
    for (const std::uint32_t d : {2u, 3u}) grid.push_back({n, d});
  }

  struct PointResult {
    bool verified = false;
    double slowdown = 0.0;
  };
  auto sweep = [&](ThreadPool& pool) {
    return pool.parallel_map<PointResult>(grid.size(), [&](std::size_t i) {
      Rng rng = Rng::stream(2718, i);
      const Graph guest = make_random_regular(grid[i].n, 8, rng);
      const Graph host = make_butterfly(grid[i].d);
      UniversalSimulator sim{
          guest, host, make_random_embedding(grid[i].n, host.num_nodes(), rng)};
      const UniversalSimResult result = sim.run(2);
      return PointResult{result.configs_match, result.slowdown};
    });
  };

  ThreadPool serial{1};
  const std::vector<PointResult> reference = sweep(serial);
  ASSERT_EQ(reference.size(), grid.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_TRUE(reference[i].verified) << "grid point " << i;
    EXPECT_GE(reference[i].slowdown,
              static_cast<double>(grid[i].n) / make_butterfly(grid[i].d).num_nodes());
  }
  for (const unsigned threads : {2u, 7u}) {
    ThreadPool pool{threads};
    const std::vector<PointResult> parallel_run = sweep(pool);
    ASSERT_EQ(parallel_run.size(), reference.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(parallel_run[i].verified, reference[i].verified)
          << "grid point " << i << " threads=" << threads;
      EXPECT_EQ(std::memcmp(&parallel_run[i].slowdown, &reference[i].slowdown,
                            sizeof(double)),
                0)
          << "grid point " << i << " threads=" << threads;
    }
  }
}

TEST(UniversalSweep, InefficiencyGrowsWithHostSize) {
  // k = s m / n rises with m (the log m factor at work): the crux of the
  // m <= n trade-off.
  Rng rng{32};
  const Graph guest = make_random_regular(256, 8, rng);
  double previous = 0;
  for (const std::uint32_t d : {2u, 3u, 4u}) {
    const Graph host = make_butterfly(d);
    UniversalSimulator sim{guest, host,
                           make_random_embedding(256, host.num_nodes(), rng)};
    const UniversalSimResult result = sim.run(2);
    ASSERT_TRUE(result.configs_match);
    EXPECT_GT(result.inefficiency, previous);
    previous = result.inefficiency;
  }
}

}  // namespace
}  // namespace upn
