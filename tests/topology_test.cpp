// Structural invariants of every topology builder, including parameterized
// sweeps over sizes (degree sequences, connectivity, diameters, regularity).
#include <gtest/gtest.h>

#include "src/topology/builders.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/ccc.hpp"
#include "src/topology/debruijn.hpp"
#include "src/topology/eulerian.hpp"
#include "src/topology/hypercube.hpp"
#include "src/topology/mesh.hpp"
#include "src/topology/multitorus.hpp"
#include "src/topology/properties.hpp"
#include "src/topology/random_regular.hpp"
#include "src/topology/shuffle_exchange.hpp"
#include "src/topology/torus.hpp"

namespace upn {
namespace {

TEST(Builders, PathHasCorrectShape) {
  const Graph p = make_path(5);
  EXPECT_EQ(p.num_edges(), 4u);
  EXPECT_EQ(p.degree(0), 1u);
  EXPECT_EQ(p.degree(2), 2u);
  EXPECT_EQ(diameter(p), 4u);
}

TEST(Builders, CycleIsTwoRegular) {
  const Graph c = make_cycle(7);
  std::uint32_t degree = 0;
  EXPECT_TRUE(is_regular(c, &degree));
  EXPECT_EQ(degree, 2u);
  EXPECT_EQ(diameter(c), 3u);
}

TEST(Builders, CompleteGraph) {
  const Graph k = make_complete(6);
  EXPECT_EQ(k.num_edges(), 15u);
  EXPECT_EQ(diameter(k), 1u);
}

TEST(Builders, BinaryTree) {
  const Graph t = make_complete_binary_tree(4);
  EXPECT_EQ(t.num_nodes(), 15u);
  EXPECT_EQ(t.num_edges(), 14u);
  EXPECT_TRUE(is_connected(t));
  EXPECT_EQ(t.degree(0), 2u);    // root
  EXPECT_EQ(t.degree(14), 1u);   // leaf
}

class MeshSweep : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {};

TEST_P(MeshSweep, MeshInvariants) {
  const auto [w, h] = GetParam();
  const Graph mesh = make_mesh(w, h);
  EXPECT_EQ(mesh.num_nodes(), w * h);
  EXPECT_EQ(mesh.num_edges(), static_cast<std::uint64_t>(w) * (h - 1) + static_cast<std::uint64_t>(h) * (w - 1));
  EXPECT_TRUE(is_connected(mesh));
  EXPECT_EQ(diameter(mesh), w + h - 2);
  EXPECT_LE(mesh.max_degree(), 4u);
}

TEST_P(MeshSweep, TorusInvariants) {
  const auto [w, h] = GetParam();
  if (w < 3 || h < 3) GTEST_SKIP() << "wrap edges degenerate below side 3";
  const Graph torus = make_torus(w, h);
  std::uint32_t degree = 0;
  EXPECT_TRUE(is_regular(torus, &degree));
  EXPECT_EQ(degree, 4u);
  EXPECT_EQ(torus.num_edges(), 2ull * w * h);
  EXPECT_EQ(diameter(torus), w / 2 + h / 2);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MeshSweep,
                         ::testing::Values(std::pair{2u, 2u}, std::pair{3u, 3u},
                                           std::pair{4u, 4u}, std::pair{5u, 3u},
                                           std::pair{8u, 8u}, std::pair{6u, 10u}));

TEST(Mesh, GridDistances) {
  const Grid2D grid{5, 5};
  EXPECT_EQ(grid.mesh_distance(grid.id(0, 0), grid.id(4, 4)), 8u);
  EXPECT_EQ(grid.torus_distance(grid.id(0, 0), grid.id(4, 4)), 2u);
  EXPECT_EQ(grid.torus_distance(grid.id(1, 1), grid.id(1, 1)), 0u);
}

TEST(Mesh, SquareValidation) {
  EXPECT_THROW(make_square_mesh(10), std::invalid_argument);
  EXPECT_EQ(make_square_mesh(16).num_nodes(), 16u);
}

class MultitorusSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {};

TEST_P(MultitorusSweep, StructureAndPartition) {
  const auto [n, a] = GetParam();
  const Graph mt = make_multitorus(n, a);
  const MultitorusLayout layout = multitorus_layout(n, a);
  EXPECT_EQ(mt.num_nodes(), n);
  EXPECT_TRUE(is_connected(mt));
  EXPECT_LE(mt.max_degree(), 8u);
  EXPECT_GE(mt.max_degree(), 4u);
  // Blocks partition the nodes.
  std::vector<char> seen(n, 0);
  for (std::uint32_t b = 0; b < layout.num_blocks(); ++b) {
    for (const NodeId v : layout.block_nodes(b)) {
      EXPECT_EQ(layout.block_of(v), b);
      EXPECT_FALSE(seen[v]);
      seen[v] = 1;
    }
  }
  for (const char s : seen) EXPECT_TRUE(s);
  // Every block is a torus: its induced wrap edges exist.
  const Grid2D grid = layout.grid();
  const auto nodes = layout.block_nodes(0);
  const NodeId top_left = nodes.front();
  const std::uint32_t x0 = grid.x_of(top_left), y0 = grid.y_of(top_left);
  for (std::uint32_t i = 0; i < a; ++i) {
    EXPECT_TRUE(mt.has_edge(grid.id(x0 + i, y0), grid.id(x0 + i, y0 + a - 1)));
    EXPECT_TRUE(mt.has_edge(grid.id(x0, y0 + i), grid.id(x0 + a - 1, y0 + i)));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, MultitorusSweep,
                         ::testing::Values(std::pair{16u, 4u}, std::pair{64u, 4u},
                                           std::pair{144u, 4u}, std::pair{144u, 6u},
                                           std::pair{256u, 8u}));

TEST(Multitorus, RejectsBadShapes) {
  EXPECT_THROW(make_multitorus(15, 4), std::invalid_argument);   // not square
  EXPECT_THROW(make_multitorus(16, 3), std::invalid_argument);   // side % a != 0
  EXPECT_THROW(make_multitorus(16, 0), std::invalid_argument);
}

class ButterflySweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ButterflySweep, UnwrappedInvariants) {
  const std::uint32_t d = GetParam();
  const Graph bf = make_butterfly(d);
  const ButterflyLayout layout{d, false};
  EXPECT_EQ(bf.num_nodes(), (d + 1) << d);
  EXPECT_EQ(bf.num_edges(), static_cast<std::uint64_t>(d) << (d + 1));
  EXPECT_TRUE(is_connected(bf));
  EXPECT_LE(bf.max_degree(), 4u);
  // Spot-check edge structure: straight and cross edges at level 0.
  EXPECT_TRUE(bf.has_edge(layout.id(0, 0), layout.id(1, 0)));
  EXPECT_TRUE(bf.has_edge(layout.id(0, 0), layout.id(1, 1)));
  // Diameter ~ 2d.
  EXPECT_GE(diameter(bf), d);
  EXPECT_LE(diameter(bf), 2 * d + 2);
}

TEST_P(ButterflySweep, WrappedIsFourRegular) {
  const std::uint32_t d = GetParam();
  if (d < 3) GTEST_SKIP() << "wrapped butterfly needs d >= 3 for 4-regularity";
  const Graph wbf = make_wrapped_butterfly(d);
  EXPECT_EQ(wbf.num_nodes(), d << d);
  std::uint32_t degree = 0;
  EXPECT_TRUE(is_regular(wbf, &degree));
  EXPECT_EQ(degree, 4u);
  EXPECT_TRUE(is_connected(wbf));
}

INSTANTIATE_TEST_SUITE_P(Dims, ButterflySweep, ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

TEST(Butterfly, DimensionForSize) {
  EXPECT_EQ(butterfly_dimension_for_size(3), 0u);
  EXPECT_EQ(butterfly_dimension_for_size(4), 1u);   // 2*2 = 4
  EXPECT_EQ(butterfly_dimension_for_size(191), 4u); // 5*16=80 fits, 6*32=192 not
  EXPECT_EQ(butterfly_dimension_for_size(192), 5u);
}

TEST(Hypercube, Invariants) {
  const Graph h = make_hypercube(4);
  EXPECT_EQ(h.num_nodes(), 16u);
  std::uint32_t degree = 0;
  EXPECT_TRUE(is_regular(h, &degree));
  EXPECT_EQ(degree, 4u);
  EXPECT_EQ(diameter(h), 4u);
}

TEST(Ccc, Invariants) {
  const Graph ccc = make_cube_connected_cycles(3);
  EXPECT_EQ(ccc.num_nodes(), 24u);
  std::uint32_t degree = 0;
  EXPECT_TRUE(is_regular(ccc, &degree));
  EXPECT_EQ(degree, 3u);
  EXPECT_TRUE(is_connected(ccc));
}

TEST(ShuffleExchange, Invariants) {
  const Graph se = make_shuffle_exchange(4);
  EXPECT_EQ(se.num_nodes(), 16u);
  EXPECT_TRUE(is_connected(se));
  EXPECT_LE(se.max_degree(), 3u);
  EXPECT_EQ(shuffle_word(0b0110, 4), 0b1100u);
  EXPECT_EQ(shuffle_word(0b1000, 4), 0b0001u);
}

TEST(DeBruijn, Invariants) {
  const Graph db = make_debruijn(4);
  EXPECT_EQ(db.num_nodes(), 16u);
  EXPECT_TRUE(is_connected(db));
  EXPECT_LE(db.max_degree(), 4u);
  EXPECT_LE(diameter(db), 4u);  // de Bruijn diameter == d
}

class RandomRegularSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {};

TEST_P(RandomRegularSweep, ExactlyRegularAndSimple) {
  const auto [n, c] = GetParam();
  Rng rng{1234 + n + c};
  const Graph g = make_random_regular(n, c, rng);
  EXPECT_EQ(g.num_nodes(), n);
  std::uint32_t degree = 0;
  EXPECT_TRUE(is_regular(g, &degree));
  EXPECT_EQ(degree, c);
  EXPECT_EQ(g.num_edges(), static_cast<std::uint64_t>(n) * c / 2);  // simple: no lost edges
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomRegularSweep,
                         ::testing::Values(std::pair{16u, 3u}, std::pair{64u, 4u},
                                           std::pair{100u, 16u}, std::pair{256u, 16u},
                                           std::pair{50u, 7u}));

TEST(RandomRegular, RejectsInfeasible) {
  Rng rng{1};
  EXPECT_THROW(make_random_regular(5, 3, rng), std::invalid_argument);   // odd product
  EXPECT_THROW(make_random_regular(4, 4, rng), std::invalid_argument);   // c >= n
}

TEST(Circulant, Structure) {
  const Graph c = make_circulant(10, 4);
  std::uint32_t degree = 0;
  EXPECT_TRUE(is_regular(c, &degree));
  EXPECT_EQ(degree, 4u);
  EXPECT_TRUE(c.has_edge(0, 1));
  EXPECT_TRUE(c.has_edge(0, 2));
  EXPECT_TRUE(c.has_edge(0, 8));
  EXPECT_FALSE(c.has_edge(0, 3));
}

TEST(PlantedSubgraph, ContainsBaseAndBoundsDegree) {
  Rng rng{77};
  const Graph base = make_torus(6, 6);
  const Graph g = make_random_regular_with_subgraph(base, 16, rng);
  for (const auto& [u, v] : base.edge_list()) EXPECT_TRUE(g.has_edge(u, v));
  EXPECT_LE(g.max_degree(), 16u);
  EXPECT_GT(g.num_edges(), base.num_edges());
}

TEST(Properties, BfsAndEccentricity) {
  const Graph p = make_path(6);
  const auto dist = bfs_distances(p, 0);
  EXPECT_EQ(dist[5], 5u);
  EXPECT_EQ(eccentricity(p, 2), 3u);
  const auto parents = bfs_parents(p, 0);
  EXPECT_EQ(parents[0], 0u);
  EXPECT_EQ(parents[3], 2u);
}

TEST(Properties, DisconnectedGraphDetected) {
  GraphBuilder builder{4};
  builder.add_edge(0, 1);
  builder.add_edge(2, 3);
  const Graph g = std::move(builder).build();
  EXPECT_FALSE(is_connected(g));
  EXPECT_EQ(diameter(g), kUnreachable);
  EXPECT_EQ(bfs_distances(g, 0)[2], kUnreachable);
}

TEST(Properties, SampledDiameterIsLowerBound) {
  const Graph t = make_torus(8, 8);
  const std::uint32_t exact = diameter(t);
  const std::uint32_t sampled = sampled_diameter(t, 10);
  EXPECT_LE(sampled, exact);
  EXPECT_GE(sampled, exact / 2);
}

TEST(Properties, DegreeHistogram) {
  const Graph p = make_path(4);
  const auto hist = degree_histogram(p);
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 2u);
}

TEST(Eulerian, BalancedOrientation) {
  const Graph t = make_torus(4, 4);  // 4-regular
  const auto oriented = eulerian_orientation(t);
  EXPECT_EQ(oriented.size(), t.num_edges());
  std::vector<std::uint32_t> out(t.num_nodes(), 0), in(t.num_nodes(), 0);
  for (const auto& [from, to] : oriented) {
    EXPECT_TRUE(t.has_edge(from, to));
    ++out[from];
    ++in[to];
  }
  for (NodeId v = 0; v < t.num_nodes(); ++v) {
    EXPECT_EQ(out[v], 2u);
    EXPECT_EQ(in[v], 2u);
  }
}

TEST(Eulerian, OutNeighborLists) {
  const Graph c = make_cycle(5);
  const auto out = eulerian_out_neighbors(c);
  for (const auto& list : out) EXPECT_EQ(list.size(), 1u);
}

TEST(Eulerian, RejectsOddDegrees) {
  const Graph p = make_path(3);
  EXPECT_THROW(eulerian_orientation(p), std::invalid_argument);
}

TEST(Eulerian, HandlesRandomRegular) {
  Rng rng{5};
  const Graph g = make_random_regular(60, 16, rng);
  const auto oriented = eulerian_orientation(g);
  std::vector<std::uint32_t> out(g.num_nodes(), 0);
  for (const auto& [from, to] : oriented) ++out[from];
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(out[v], 8u);
}

}  // namespace
}  // namespace upn
