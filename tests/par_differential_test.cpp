// Differential tests pinning the parallel APIs' determinism contract: for
// every pool size (including the inline serial size-1 pool, which is the
// reference implementation) the parallel sweep, batch validation, and
// census produce byte-identical results.  Thread counts {1, 2, 7} cover
// the serial path, the minimal concurrent pool, and an oversubscribed one.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/embedding.hpp"
#include "src/core/slowdown.hpp"
#include "src/core/universal_sim.hpp"
#include "src/lowerbound/fragment_census.hpp"
#include "src/pebble/validator.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/g0.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/par.hpp"

namespace upn {
namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 7};

// Exact equality is intentional throughout: the contract is byte-identical
// output, not approximate agreement.
void expect_rows_identical(const std::vector<SlowdownRow>& a,
                           const std::vector<SlowdownRow>& b, unsigned threads) {
  ASSERT_EQ(a.size(), b.size()) << "threads=" << threads;
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("row " + std::to_string(i) + " threads=" + std::to_string(threads));
    EXPECT_EQ(a[i].n, b[i].n);
    EXPECT_EQ(a[i].m, b[i].m);
    EXPECT_EQ(a[i].load, b[i].load);
    EXPECT_EQ(std::memcmp(&a[i].slowdown, &b[i].slowdown, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&a[i].inefficiency, &b[i].inefficiency, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&a[i].load_bound, &b[i].load_bound, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&a[i].paper_bound, &b[i].paper_bound, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&a[i].normalized, &b[i].normalized, sizeof(double)), 0);
    EXPECT_EQ(a[i].verified, b[i].verified);
  }
}

TEST(ParDifferential, SweepButterflyHostsIdenticalAcrossThreadCounts) {
  const std::uint32_t n = 128;
  const std::uint32_t steps = 2;
  const std::uint64_t seed = 31;
  Rng guest_rng{seed};
  const Graph guest = make_random_regular(n, kGuestDegree, guest_rng);

  ThreadPool serial{1};
  const std::vector<SlowdownRow> reference =
      sweep_butterfly_hosts_par(guest, steps, n, seed, serial);
  ASSERT_FALSE(reference.empty());
  for (const unsigned threads : kThreadCounts) {
    ThreadPool pool{threads};
    expect_rows_identical(reference,
                          sweep_butterfly_hosts_par(guest, steps, n, seed, pool),
                          threads);
  }
}

TEST(ParDifferential, BatchValidationMatchesSerialVerdicts) {
  struct Emitted {
    Graph guest;
    Graph host;
    Protocol protocol{1, 1, 1};
  };
  std::vector<Emitted> emitted;
  for (const std::uint32_t n : {32u, 64u, 96u}) {
    Rng rng{1000 + n};
    Emitted e;
    e.guest = make_random_regular(n, kGuestDegree, rng);
    e.host = make_butterfly(2);
    UniversalSimulator sim{e.guest, e.host,
                           make_random_embedding(n, e.host.num_nodes(), rng)};
    UniversalSimOptions options;
    options.emit_protocol = true;
    UniversalSimResult result = sim.run(3, options);
    e.protocol = std::move(*result.protocol);
    emitted.push_back(std::move(e));
  }

  std::vector<ValidationJob> jobs;
  std::vector<ValidationResult> serial_verdicts;
  for (const Emitted& e : emitted) {
    jobs.push_back(ValidationJob{&e.protocol, &e.guest, &e.host});
    serial_verdicts.push_back(validate_protocol(e.protocol, e.guest, e.host));
  }

  for (const unsigned threads : kThreadCounts) {
    ThreadPool pool{threads};
    const std::vector<ValidationResult> batch = validate_protocols(jobs, pool);
    ASSERT_EQ(batch.size(), serial_verdicts.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch[i].ok, serial_verdicts[i].ok)
          << "job " << i << " threads=" << threads;
      EXPECT_EQ(batch[i].error, serial_verdicts[i].error)
          << "job " << i << " threads=" << threads;
    }
  }
}

TEST(ParDifferential, FragmentCensusIdenticalAcrossThreadCounts) {
  const std::uint64_t seed = 4242;
  Rng rng{seed};
  const std::uint32_t m = 12;  // butterfly(2)
  const std::uint32_t a = g0_block_parameter(m);
  const std::uint32_t n = g0_round_guest_size(60, a);
  const G0 g0 = make_g0(n, m, rng);
  const std::uint32_t guests = 6, T = 6;

  ThreadPool serial{1};
  const FragmentCensus reference =
      run_fragment_census_par(g0, 2, guests, T, seed, serial);
  ASSERT_EQ(reference.rows.size(), guests);

  for (const unsigned threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool{threads};
    const FragmentCensus census = run_fragment_census_par(g0, 2, guests, T, seed, pool);
    EXPECT_EQ(census.guests, reference.guests);
    EXPECT_EQ(census.distinct_fragments, reference.distinct_fragments);
    EXPECT_EQ(std::memcmp(&census.mean_inefficiency, &reference.mean_inefficiency,
                          sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&census.worst_log2_multiplicity,
                          &reference.worst_log2_multiplicity, sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&census.log2_a_bound, &reference.log2_a_bound, sizeof(double)),
              0);
    ASSERT_EQ(census.rows.size(), reference.rows.size());
    for (std::size_t g = 0; g < census.rows.size(); ++g) {
      EXPECT_EQ(census.rows[g].fragment_hash, reference.rows[g].fragment_hash)
          << "guest " << g;
      EXPECT_EQ(census.rows[g].sum_b, reference.rows[g].sum_b) << "guest " << g;
      EXPECT_EQ(census.rows[g].small_d, reference.rows[g].small_d) << "guest " << g;
      EXPECT_EQ(std::memcmp(&census.rows[g].log2_multiplicity,
                            &reference.rows[g].log2_multiplicity, sizeof(double)),
                0)
          << "guest " << g;
    }
  }
}

TEST(ParDifferential, RngStreamsAreDecorrelatedFromTaskIndex) {
  // Neighboring task streams must not collide or shadow each other: the
  // first outputs of streams 0..999 under one seed are pairwise distinct.
  std::vector<std::uint64_t> firsts;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    Rng rng = Rng::stream(7, i);
    firsts.push_back(rng());
  }
  std::sort(firsts.begin(), firsts.end());
  EXPECT_EQ(std::adjacent_find(firsts.begin(), firsts.end()), firsts.end());
}

}  // namespace
}  // namespace upn
