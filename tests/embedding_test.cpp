// Balanced embedding tests.
#include <gtest/gtest.h>

#include "src/core/embedding.hpp"

namespace upn {
namespace {

TEST(BlockEmbedding, LoadIsCeilNoverM) {
  const auto f = make_block_embedding(10, 3);
  EXPECT_EQ(embedding_load(f, 3), 4u);  // ceil(10/3)
  const auto inverse = invert_embedding(f, 3);
  EXPECT_EQ(inverse[0].size(), 4u);
  EXPECT_EQ(inverse[1].size(), 3u);
  EXPECT_EQ(inverse[2].size(), 3u);
}

TEST(BlockEmbedding, ExactDivision) {
  const auto f = make_block_embedding(12, 4);
  EXPECT_EQ(embedding_load(f, 4), 3u);
}

TEST(BlockEmbedding, MoreHostsThanGuests) {
  const auto f = make_block_embedding(3, 8);
  EXPECT_EQ(embedding_load(f, 8), 1u);
  const auto inverse = invert_embedding(f, 8);
  std::size_t used = 0;
  for (const auto& guests : inverse) {
    if (!guests.empty()) ++used;
  }
  EXPECT_EQ(used, 3u);
}

class RandomEmbeddingSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {};

TEST_P(RandomEmbeddingSweep, StaysBalanced) {
  const auto [n, m] = GetParam();
  Rng rng{n * 31 + m};
  const auto f = make_random_embedding(n, m, rng);
  EXPECT_EQ(f.size(), n);
  EXPECT_LE(embedding_load(f, m), (n + m - 1) / m);
}

INSTANTIATE_TEST_SUITE_P(Shapes, RandomEmbeddingSweep,
                         ::testing::Values(std::pair{10u, 3u}, std::pair{64u, 16u},
                                           std::pair{100u, 7u}, std::pair{5u, 10u},
                                           std::pair{256u, 256u}));

TEST(RandomEmbedding, DiffersFromBlockUsually) {
  Rng rng{5};
  const auto block = make_block_embedding(64, 8);
  const auto random = make_random_embedding(64, 8, rng);
  EXPECT_NE(block, random);
}

TEST(InvertEmbedding, GuestsAreSortedAndComplete) {
  Rng rng{6};
  const auto f = make_random_embedding(30, 4, rng);
  const auto inverse = invert_embedding(f, 4);
  std::size_t total = 0;
  for (const auto& guests : inverse) {
    EXPECT_TRUE(std::is_sorted(guests.begin(), guests.end()));
    total += guests.size();
  }
  EXPECT_EQ(total, 30u);
}

TEST(Embedding, RejectsBadInput) {
  EXPECT_THROW((void)make_block_embedding(5, 0), std::invalid_argument);
  EXPECT_THROW((void)invert_embedding({5}, 3), std::out_of_range);
  EXPECT_THROW((void)embedding_load({5}, 3), std::out_of_range);
}

}  // namespace
}  // namespace upn
