// Protocol statistics, girth, minimum computation length, and the
// multiport-protocol guard.
#include <gtest/gtest.h>

#include "src/core/embedding.hpp"
#include "src/core/universal_sim.hpp"
#include "src/lowerbound/counting.hpp"
#include "src/pebble/stats.hpp"
#include "src/topology/builders.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/mesh.hpp"
#include "src/topology/properties.hpp"
#include "src/topology/random_regular.hpp"
#include "src/topology/torus.hpp"

namespace upn {
namespace {

TEST(ProtocolStats, CountsByKind) {
  Protocol protocol{3, 2, 1};
  protocol.begin_step();
  protocol.add(Op{OpKind::kSend, 0, PebbleType{0, 0}, 1});
  protocol.add(Op{OpKind::kReceive, 1, PebbleType{0, 0}, 0});
  protocol.begin_step();
  protocol.add(Op{OpKind::kGenerate, 0, PebbleType{0, 1}, 0});
  const ProtocolStats stats = protocol_stats(protocol);
  EXPECT_EQ(stats.generates, 1u);
  EXPECT_EQ(stats.sends, 1u);
  EXPECT_EQ(stats.receives, 1u);
  EXPECT_EQ(stats.idle_slots, 1u);  // 2 steps * 2 procs - 3 ops
  EXPECT_DOUBLE_EQ(stats.utilization, 0.75);
  EXPECT_NEAR(stats.comm_fraction, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(stats.busiest_proc, 0u);
  EXPECT_EQ(stats.busiest_proc_ops, 2u);
  EXPECT_EQ(stats.laziest_proc_ops, 1u);
}

TEST(ProtocolStats, SimulatorProtocolsAreCommunicationDominated) {
  Rng rng{8};
  const Graph guest = make_random_regular(96, kGuestDegree, rng);
  const Graph host = make_butterfly(2);
  UniversalSimulator sim{guest, host, make_random_embedding(96, host.num_nodes(), rng)};
  UniversalSimOptions options;
  options.emit_protocol = true;
  const UniversalSimResult result = sim.run(3, options);
  const ProtocolStats stats = protocol_stats(*result.protocol);
  // For 16-regular guests the configuration traffic dwarfs the generates.
  EXPECT_GT(stats.comm_fraction, 0.8);
  EXPECT_EQ(stats.generates, 96u * 3);
  EXPECT_EQ(stats.sends, stats.receives);
  EXPECT_GT(stats.utilization, 0.0);
  EXPECT_LE(stats.utilization, 1.0);
}

TEST(Guard, MultiportProtocolEmissionRejected) {
  Rng rng{9};
  const Graph guest = make_cycle(8);
  const Graph host = make_butterfly(1);
  UniversalSimulator sim{guest, host, make_random_embedding(8, host.num_nodes(), rng)};
  UniversalSimOptions options;
  options.emit_protocol = true;
  options.port_model = PortModel::kMultiPort;
  EXPECT_THROW((void)sim.run(1, options), std::invalid_argument);
}

TEST(Counting, MinimumComputationLength) {
  // ceil(2 sqrt(log2 m)).
  EXPECT_EQ(minimum_computation_length(1.0), 1u);
  EXPECT_EQ(minimum_computation_length(16.0), 4u);      // 2*sqrt(4)
  EXPECT_EQ(minimum_computation_length(512.0), 6u);     // 2*sqrt(9)
  EXPECT_EQ(minimum_computation_length(1u << 25), 10u); // 2*sqrt(25)
  EXPECT_EQ(minimum_computation_length(1000.0), 7u);    // ceil(2*sqrt(9.97)) = 7
}

TEST(Girth, KnownValues) {
  EXPECT_EQ(girth(make_cycle(7)), 7u);
  EXPECT_EQ(girth(make_complete(4)), 3u);
  EXPECT_EQ(girth(make_torus(4, 4)), 4u);
  EXPECT_EQ(girth(make_mesh(3, 3)), 4u);
  EXPECT_EQ(girth(make_path(5)), kUnreachable);            // forest
  EXPECT_EQ(girth(make_complete_binary_tree(4)), kUnreachable);
}

TEST(Girth, ButterflyIsFour) {
  // Straight+cross pairs between adjacent levels close 4-cycles... actually
  // the butterfly's shortest cycles have length 4 (two rows, two levels)?
  // Verify whatever the true value is stays stable and >= 4.
  const std::uint32_t g = girth(make_butterfly(3));
  EXPECT_GE(g, 4u);
  EXPECT_LE(g, 6u);
}

}  // namespace
}  // namespace upn
