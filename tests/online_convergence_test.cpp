// Convergence property: once churn stops, the announcement protocol must
// stabilize -- within an explicit round bound -- into tables that are
// loop-free and COMPLETE (a route for every pair the surviving topology
// connects) with shortest-path metrics.  Swept over a seeded topology zoo
// and churn rates; the bound is the rotation-aware propagation argument
// from docs/ONLINE_ROUTING.md, not a tuned constant.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/fault/fault_plan.hpp"
#include "src/fault/surgery.hpp"
#include "src/routing/online/online_router.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/hypercube.hpp"
#include "src/topology/mesh.hpp"
#include "src/topology/properties.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/rng.hpp"

namespace upn {
namespace {

/// Rounds within which a quiet network must stabilize, built from the
/// protocol's own timers (docs/ONLINE_ROUTING.md), not a tuned constant:
///   - corpse routes cascade-expire one staleness window per hop
///     (an entry is refreshed only while its next hop still claims the
///     route), bounded by (diameter + 2) windows;
///   - fresh shortest-path news propagates one hop per announcement-
///     rotation cycle, bounded by (rotation + 2) hellos per hop;
///   - the stability detector then needs one quiet staleness window, and
///     one more window of slack absorbs hello-phase jitter.
/// `config` must be the router's NORMALIZED config (stale_after raised to
/// outlast the rotation cycle).
std::uint32_t convergence_bound(const Graph& live, const OnlineRouterConfig& config) {
  const std::uint32_t n = live.num_nodes();
  const std::uint32_t rotation =
      n >= 2 ? (n - 2) / (config.announce_cap - 1) + 1 : 1;
  const std::uint32_t diam = diameter(live);
  return (diam + 2) * config.stale_after +
         config.hello_interval * (rotation + 2) * (diam + 2) +
         2 * (config.stale_after + 1);
}

void expect_stabilizes(const Graph& host, double churn_rate, std::uint64_t seed) {
  const std::uint32_t horizon = 64;
  const FaultPlan plan = make_link_churn(host, churn_rate, seed, horizon);
  OnlineRouterConfig config;
  OnlineRouter router{host, plan, config};

  // Live through the churn: every scheduled event (including trailing
  // repairs) lands while the protocol keeps running.
  const std::vector<std::uint32_t> epochs = plan.epochs();
  const std::uint32_t last_epoch = epochs.empty() ? 0 : epochs.back();
  while (router.now() <= last_epoch) (void)router.step();

  // After the last event the network is static: the protocol must quiesce
  // within the computed bound...
  const FaultPlan settled = plan.revealed_at(router.now());
  const Graph live = surviving_edges_graph(host, settled);
  const std::uint32_t bound = convergence_bound(live, router.config());
  const ConvergenceReport report = router.run_until_stable(bound);
  EXPECT_TRUE(report.stable) << host.name() << " rate " << churn_rate << " bound " << bound;

  // ... into loop-free tables ...
  EXPECT_TRUE(router.loop_free()) << host.name() << " rate " << churn_rate;

  // ... that are complete and shortest-path over the surviving topology.
  for (NodeId s = 0; s < live.num_nodes(); ++s) {
    const std::vector<std::uint32_t> dist = bfs_distances(live, s);
    for (NodeId d = 0; d < live.num_nodes(); ++d) {
      if (s == d) continue;
      if (dist[d] == kUnreachable) continue;  // partitioned away: no claim
      EXPECT_EQ(router.route_hops(s, d), dist[d])
          << host.name() << " rate " << churn_rate << " pair " << s << "->" << d;
    }
  }
}

TEST(OnlineConvergence, MeshZoo) {
  expect_stabilizes(make_mesh(4, 5), 0.1, 0xc0de);
  expect_stabilizes(make_mesh(4, 5), 0.3, 0xc0de);
}

TEST(OnlineConvergence, ButterflyZoo) {
  expect_stabilizes(make_butterfly(2), 0.1, 0xbee5);
  expect_stabilizes(make_butterfly(2), 0.3, 0xbee5);
}

TEST(OnlineConvergence, HypercubeZoo) {
  expect_stabilizes(make_hypercube(4), 0.1, 0xc4be);
  expect_stabilizes(make_hypercube(4), 0.3, 0xc4be);
}

TEST(OnlineConvergence, RandomRegularZoo) {
  Rng rng{0x2e6};
  const Graph host = make_random_regular(24, 4, rng);
  expect_stabilizes(host, 0.1, 0x2e6);
  expect_stabilizes(host, 0.3, 0x2e6);
}

TEST(OnlineConvergence, SurvivesPermanentDamageWithoutStabilityClaim) {
  // Permanent (non-healing) faults on top of churn: the protocol must still
  // quiesce and stay loop-free -- completeness is only owed within the
  // surviving components, which expect_stabilizes already scopes via BFS.
  const Graph host = make_mesh(4, 5);
  FaultPlan plan = make_link_churn(host, 0.2, 0x7ea1, 64);
  plan.add_node_fault(NodeFault{7, 20});
  OnlineRouter router{host, plan, {}};
  const std::uint32_t last = plan.epochs().back();
  while (router.now() <= last) (void)router.step();
  const ConvergenceReport report = router.run_until_stable(1u << 14);
  EXPECT_TRUE(report.stable);
  EXPECT_TRUE(router.loop_free());
}

}  // namespace
}  // namespace upn
