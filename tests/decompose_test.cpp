// h-relation decomposition tests (Koenig edge coloring via Euler splits).
#include <gtest/gtest.h>

#include <map>

#include "src/routing/decompose.hpp"
#include "src/util/rng.hpp"

namespace upn {
namespace {

/// The multiset of demands in `rounds` equals the problem's demands.
void expect_same_multiset(const HhProblem& problem,
                          const std::vector<PermutationRound>& rounds) {
  std::map<std::pair<NodeId, NodeId>, int> count;
  for (const Demand& d : problem.demands()) ++count[{d.src, d.dst}];
  for (const auto& round : rounds) {
    for (const Demand& d : round) --count[{d.src, d.dst}];
  }
  for (const auto& [key, c] : count) {
    EXPECT_EQ(c, 0) << "demand (" << key.first << "," << key.second << ") unbalanced";
  }
}

TEST(Decompose, PermutationStaysOneRound) {
  Rng rng{3};
  const HhProblem p = random_permutation_problem(16, rng);
  const auto rounds = decompose_into_permutations(p);
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_TRUE(is_partial_permutation(rounds[0], 16));
  expect_same_multiset(p, rounds);
}

class DecomposeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DecomposeSweep, HRelationIntoAtMostHRounds) {
  Rng rng{100 + GetParam()};
  const std::uint32_t h = GetParam();
  const HhProblem p = random_h_relation(20, h, rng);
  const auto rounds = decompose_into_permutations(p);
  EXPECT_LE(rounds.size(), h);
  for (const auto& round : rounds) EXPECT_TRUE(is_partial_permutation(round, 20));
  expect_same_multiset(p, rounds);
}

INSTANTIATE_TEST_SUITE_P(H, DecomposeSweep, ::testing::Values(1u, 2u, 3u, 4u, 5u, 7u, 8u, 16u));

TEST(Decompose, IrregularInstancePadsCorrectly) {
  HhProblem p{6};
  p.add(0, 1);
  p.add(0, 2);
  p.add(0, 3);  // node 0 sources 3
  p.add(4, 3);  // node 3 receives 2
  const auto rounds = decompose_into_permutations(p);
  EXPECT_LE(rounds.size(), p.h());
  for (const auto& round : rounds) EXPECT_TRUE(is_partial_permutation(round, 6));
  expect_same_multiset(p, rounds);
}

TEST(Decompose, EmptyProblem) {
  const HhProblem p{5};
  EXPECT_TRUE(decompose_into_permutations(p).empty());
}

TEST(Decompose, SelfDemandsSupported) {
  HhProblem p{3};
  p.add(1, 1);
  p.add(1, 1);
  const auto rounds = decompose_into_permutations(p);
  EXPECT_EQ(rounds.size(), 2u);  // two copies cannot share a round
  expect_same_multiset(p, rounds);
}

TEST(Decompose, DuplicateDemandsLandInDistinctRounds) {
  HhProblem p{4};
  p.add(0, 1);
  p.add(0, 1);
  p.add(0, 1);
  const auto rounds = decompose_into_permutations(p);
  EXPECT_EQ(rounds.size(), 3u);
  for (const auto& round : rounds) {
    EXPECT_EQ(round.size(), 1u);
  }
}

TEST(IsPartialPermutation, DetectsViolations) {
  PermutationRound bad_src{{0, 1}, {0, 2}};
  EXPECT_FALSE(is_partial_permutation(bad_src, 4));
  PermutationRound bad_dst{{0, 2}, {1, 2}};
  EXPECT_FALSE(is_partial_permutation(bad_dst, 4));
  PermutationRound good{{0, 2}, {1, 3}};
  EXPECT_TRUE(is_partial_permutation(good, 4));
  PermutationRound out_of_range{{0, 7}};
  EXPECT_FALSE(is_partial_permutation(out_of_range, 4));
}

}  // namespace
}  // namespace upn
