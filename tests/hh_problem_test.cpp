// Tests for h-h routing problem representation and generators.
#include <gtest/gtest.h>

#include "src/core/embedding.hpp"
#include "src/routing/hh_problem.hpp"
#include "src/topology/random_regular.hpp"
#include "src/topology/torus.hpp"

namespace upn {
namespace {

TEST(HhProblem, ComputesH) {
  HhProblem p{4};
  p.add(0, 1);
  p.add(0, 2);
  p.add(3, 2);
  EXPECT_EQ(p.h(), 2u);  // node 0 sources 2, node 2 receives 2
  EXPECT_TRUE(p.is_hh(2));
  EXPECT_FALSE(p.is_hh(1));
}

TEST(HhProblem, EmptyInstance) {
  HhProblem p{4};
  EXPECT_EQ(p.h(), 0u);
  EXPECT_EQ(p.size(), 0u);
}

TEST(HhProblem, RejectsOutOfRange) {
  HhProblem p{4};
  EXPECT_THROW(p.add(0, 4), std::out_of_range);
}

TEST(RandomPermutation, IsPermutation) {
  Rng rng{5};
  const HhProblem p = random_permutation_problem(32, rng);
  EXPECT_EQ(p.size(), 32u);
  EXPECT_EQ(p.h(), 1u);
}

class HRelationSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(HRelationSweep, ExactlyHRegular) {
  Rng rng{17};
  const std::uint32_t h = GetParam();
  const HhProblem p = random_h_relation(24, h, rng);
  EXPECT_EQ(p.size(), 24u * h);
  EXPECT_EQ(p.h(), h);
}

INSTANTIATE_TEST_SUITE_P(H, HRelationSweep, ::testing::Values(1u, 2u, 3u, 5u, 8u));

TEST(GuestStepRelation, MatchesTheorem21Shape) {
  Rng rng{23};
  const Graph guest = make_random_regular(64, 16, rng);
  const std::uint32_t m = 16;
  const auto embedding = make_block_embedding(64, m);
  const HhProblem p = guest_step_relation(guest, embedding, m);
  // One demand per directed cross-host guest edge.
  std::uint64_t cross = 0;
  for (NodeId u = 0; u < 64; ++u) {
    for (const NodeId v : guest.neighbors(u)) {
      if (embedding[u] != embedding[v]) ++cross;
    }
  }
  EXPECT_EQ(p.size(), cross);
  // h <= c * ceil(n/m) by the theorem's argument.
  EXPECT_LE(p.h(), 16u * 4u);
}

TEST(GuestStepRelation, ColocatedGuestsNeedNoPackets) {
  const Graph guest = make_torus(4, 4);
  const auto embedding = std::vector<NodeId>(16, 0);  // all on one host
  const HhProblem p = guest_step_relation(guest, embedding, 2);
  EXPECT_EQ(p.size(), 0u);
}

TEST(GuestStepRelation, RejectsBadEmbedding) {
  const Graph guest = make_torus(4, 4);
  EXPECT_THROW(guest_step_relation(guest, std::vector<NodeId>(5, 0), 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace upn
