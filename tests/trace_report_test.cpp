// Tests for the trace tooling (tools/obs/trace_check): the parser accepts
// exactly the Chrome trace-event subset src/obs/span.cpp emits, rejects
// structural corruption with a reason, and the summary aggregates per-phase
// -- plus a round-trip through a real obs trace session.
#include <gtest/gtest.h>

#include <string>

#include "src/obs/obs.hpp"
#include "tools/obs/trace_check.hpp"

namespace upn::tools {
namespace {

const char* const kMinimalTrace =
    R"({"traceEvents":[
{"name":"sim.universal.route","cat":"upn","ph":"X","ts":1.5,"dur":10.0,"pid":1,"tid":1},
{"name":"sim.universal.route","cat":"upn","ph":"X","ts":20.0,"dur":30.0,"pid":1,"tid":2},
{"name":"sim.universal.compute","cat":"upn","ph":"X","ts":0.0,"dur":5.0,"pid":1,"tid":1}
],"displayTimeUnit":"ms"})";

TEST(TraceCheck, ParsesTheEmittedSubset) {
  const ParsedTrace trace = parse_trace(kMinimalTrace);
  ASSERT_TRUE(trace.ok) << trace.error;
  ASSERT_EQ(trace.events.size(), 3u);
  EXPECT_EQ(trace.events[0].name, "sim.universal.route");
  EXPECT_DOUBLE_EQ(trace.events[0].ts_us, 1.5);
  EXPECT_DOUBLE_EQ(trace.events[0].dur_us, 10.0);
  EXPECT_EQ(trace.events[0].pid, 1u);
  EXPECT_EQ(trace.events[1].tid, 2u);
}

TEST(TraceCheck, EmptyEventListIsValid) {
  const ParsedTrace trace = parse_trace(R"({"traceEvents":[]})");
  EXPECT_TRUE(trace.ok) << trace.error;
  EXPECT_TRUE(trace.events.empty());
}

TEST(TraceCheck, RejectsStructuralCorruption) {
  // Not an object at all.
  EXPECT_FALSE(parse_trace("[]").ok);
  // Missing the traceEvents key.
  EXPECT_FALSE(parse_trace(R"({"displayTimeUnit":"ms"})").ok);
  // Non-"X" phase (Perfetto needs complete events from this writer).
  EXPECT_FALSE(
      parse_trace(R"({"traceEvents":[{"name":"a","ph":"B","ts":0,"dur":1}]})").ok);
  // Missing name / negative duration.
  EXPECT_FALSE(parse_trace(R"({"traceEvents":[{"ph":"X","ts":0,"dur":1}]})").ok);
  EXPECT_FALSE(
      parse_trace(R"({"traceEvents":[{"name":"a","ph":"X","ts":0,"dur":-1}]})").ok);
  // Trailing garbage after the object.
  EXPECT_FALSE(parse_trace(R"({"traceEvents":[]} extra)").ok);
  // Truncated file.
  EXPECT_FALSE(parse_trace(R"({"traceEvents":[{"name":"a")").ok);
  // Every rejection carries a reason.
  EXPECT_FALSE(parse_trace("[]").error.empty());
}

TEST(TraceCheck, UnreadableFileSurfacesAnIoError) {
  const ParsedTrace trace = parse_trace_file("/nonexistent/upn.trace.json");
  EXPECT_FALSE(trace.ok);
  EXPECT_NE(trace.error.find("cannot read"), std::string::npos) << trace.error;
}

TEST(TraceCheck, SummaryGroupsByNameSortedByTotalDuration) {
  const ParsedTrace trace = parse_trace(kMinimalTrace);
  ASSERT_TRUE(trace.ok) << trace.error;
  const auto phases = summarize(trace.events);
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].name, "sim.universal.route");  // 40us total beats 5us
  EXPECT_EQ(phases[0].count, 2u);
  EXPECT_DOUBLE_EQ(phases[0].total_us, 40.0);
  EXPECT_DOUBLE_EQ(phases[0].max_us, 30.0);
  EXPECT_EQ(phases[1].name, "sim.universal.compute");
}

TEST(TraceCheck, RoundTripsARealObsTraceSession) {
  const std::string path = ::testing::TempDir() + "trace_report_test.trace.json";
  obs::start_trace(path);
  {
    obs::ScopedSpan outer{"roundtrip.outer"};
    obs::ScopedSpan inner{"roundtrip.inner"};
  }
  ASSERT_TRUE(obs::write_trace());
  obs::stop_trace();

  const ParsedTrace trace = parse_trace_file(path);
  ASSERT_TRUE(trace.ok) << trace.error;
  ASSERT_EQ(trace.events.size(), 2u);
  EXPECT_EQ(trace.events[0].name, "roundtrip.inner");  // completion order
  EXPECT_EQ(trace.events[1].name, "roundtrip.outer");
  EXPECT_EQ(trace.events[0].pid, 1u);
  EXPECT_GE(trace.events[0].tid, 1u);
}

}  // namespace
}  // namespace upn::tools
