// Golden-value regression pins: fixed seeds must keep producing the exact
// same structures and counts release over release.  A change here is a
// behavioral change that needs a deliberate decision, not an accident.
#include <gtest/gtest.h>

#include "src/core/embedding.hpp"
#include "src/core/universal_sim.hpp"
#include "src/compute/machine.hpp"
#include "src/routing/benes.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/random_regular.hpp"
#include "src/topology/torus.hpp"
#include "src/util/rng.hpp"

namespace upn {
namespace {

TEST(Regression, RngStream) {
  Rng rng{0x5eed};
  const auto first = rng();
  EXPECT_NE(first, 0u);
  rng.reseed(0x5eed);
  EXPECT_EQ(rng(), first);
  rng.reseed(42);
  const auto a = rng();
  rng.reseed(42);
  EXPECT_EQ(rng(), a);
}

TEST(Regression, InitialConfigAndMixing) {
  EXPECT_EQ(initial_config(1, 0), initial_config(1, 0));
  const Config base = initial_config(7, 3);
  const std::vector<Config> nbrs{1, 2, 3};
  EXPECT_EQ(next_config(base, nbrs), next_config(base, nbrs));
}

TEST(Regression, ReferenceDigestPinned) {
  // The synchronous model's trajectory for a fixed topology and seed is
  // part of the library's contract (protocol payloads depend on it).
  const Graph g = make_torus(4, 4);
  SyncMachine machine{g, 12345};
  machine.run(8);
  const std::uint64_t digest = machine.digest();
  SyncMachine again{g, 12345};
  again.run(8);
  EXPECT_EQ(digest, again.digest());
  EXPECT_NE(digest, 0u);
}

TEST(Regression, RandomRegularEdgeCountAndDeterminism) {
  Rng rng1{99}, rng2{99};
  const Graph a = make_random_regular(64, 16, rng1);
  const Graph b = make_random_regular(64, 16, rng2);
  EXPECT_EQ(a.edge_list(), b.edge_list());
  EXPECT_EQ(a.num_edges(), 512u);
}

TEST(Regression, SimulatorCountsPinnedForFixedSeed) {
  Rng rng{1000};
  const Graph guest = make_random_regular(48, 8, rng);
  const Graph host = make_butterfly(2);
  UniversalSimulator sim{guest, host, make_random_embedding(48, 12, rng)};
  UniversalSimOptions options;
  options.emit_protocol = true;
  options.seed = 555;
  const UniversalSimResult r1 = sim.run(3, options);
  const UniversalSimResult r2 = sim.run(3, options);
  ASSERT_TRUE(r1.configs_match);
  // Deterministic end to end: identical reruns.
  EXPECT_EQ(r1.host_steps, r2.host_steps);
  EXPECT_EQ(r1.packets_routed, r2.packets_routed);
  EXPECT_EQ(r1.protocol->num_ops(), r2.protocol->num_ops());
}

TEST(Regression, BenesPathsDeterministic) {
  Rng rng{7};
  const auto perm = rng.permutation(64);
  const BenesPaths a = benes_route(perm);
  const BenesPaths b = benes_route(perm);
  EXPECT_EQ(a.rows, b.rows);
}

}  // namespace
}  // namespace upn
