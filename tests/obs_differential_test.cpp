// Differential determinism test for the obs layer: the deterministic
// metric snapshot of a fixed seeded workload must be BYTE-IDENTICAL across
// thread counts.  Every deterministic metric mutation is commutative
// (integer add, integer max, bucket add), so the merged registry state may
// not depend on scheduling; this test pins that contract at pool sizes
// 1 (serial path), 2, and 7 (oversubscribed), mirroring the UPN_THREADS
// values CI exercises.
#include <gtest/gtest.h>

#include <string>

#include "src/core/slowdown.hpp"
#include "src/obs/obs.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/par.hpp"

namespace upn {
namespace {

constexpr std::uint32_t kGuestSize = 96;
constexpr std::uint32_t kGuestSteps = 2;
constexpr std::uint64_t kSeed = 17;

/// Runs the pooled butterfly sweep from a zeroed registry and renders the
/// deterministic snapshot.  The snapshot is taken after the pool has
/// drained (parallel_for is a barrier), so no writer races the read.
std::string snapshot_after_sweep(unsigned threads) {
  obs::set_enabled(true);
  obs::registry().reset();
  Rng rng{kSeed};
  const Graph guest = make_random_regular(kGuestSize, kGuestDegree, rng);
  ThreadPool pool{threads};
  const auto rows =
      sweep_butterfly_hosts_par(guest, kGuestSteps, kGuestSize, kSeed, pool);
  EXPECT_FALSE(rows.empty());
  return obs::snapshot_text(obs::registry().snapshot(obs::MetricKind::kDeterministic));
}

TEST(ObsDifferential, DeterministicSnapshotIsByteIdenticalAcrossThreadCounts) {
  const std::string serial = snapshot_after_sweep(1);
  EXPECT_NE(serial.find("sim.universal.comm_steps"), std::string::npos) << serial;
  EXPECT_NE(serial.find("routing.sync.steps"), std::string::npos) << serial;
  EXPECT_NE(serial.find("util.par.tasks_run"), std::string::npos) << serial;
  EXPECT_EQ(serial, snapshot_after_sweep(2));
  EXPECT_EQ(serial, snapshot_after_sweep(7));
}

TEST(ObsDifferential, TimingMetricsStayOutOfTheDeterministicSnapshot) {
  obs::set_enabled(true);
  obs::registry().reset();
  ThreadPool pool{4};
  pool.parallel_for(64, [](std::size_t) {});
  const std::string deterministic =
      obs::snapshot_text(obs::registry().snapshot(obs::MetricKind::kDeterministic));
  EXPECT_EQ(deterministic.find("util.par.busy_ns"), std::string::npos) << deterministic;
  const std::string full = obs::snapshot_text(obs::registry().snapshot());
  EXPECT_NE(full.find("util.par.busy_ns"), std::string::npos) << full;
}

}  // namespace
}  // namespace upn
