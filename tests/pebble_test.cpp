// Pebble-game protocol and validator tests: the Section 3.1 rules, enforced.
#include <gtest/gtest.h>

#include "src/pebble/protocol.hpp"
#include "src/pebble/validator.hpp"
#include "src/topology/builders.hpp"

namespace upn {
namespace {

// Guest: triangle P0-P1-P2.  Host: edge Q0-Q1.
Graph triangle() { return make_cycle(3); }
Graph host_edge() { return make_path(2); }

TEST(Protocol, TracksBasicCounters) {
  Protocol protocol{3, 2, 1};
  protocol.begin_step();
  protocol.add(Op{OpKind::kGenerate, 0, PebbleType{0, 1}, 0});
  EXPECT_EQ(protocol.host_steps(), 1u);
  EXPECT_EQ(protocol.num_ops(), 1u);
  EXPECT_DOUBLE_EQ(protocol.slowdown(), 1.0);
  EXPECT_DOUBLE_EQ(protocol.inefficiency(), 1.0 * 2 / 3);
}

TEST(Protocol, RejectsTwoOpsSameProcessorSameStep) {
  Protocol protocol{3, 2, 1};
  protocol.begin_step();
  protocol.add(Op{OpKind::kGenerate, 0, PebbleType{0, 1}, 0});
  EXPECT_THROW(protocol.add(Op{OpKind::kGenerate, 0, PebbleType{1, 1}, 0}), std::logic_error);
  protocol.begin_step();
  protocol.add(Op{OpKind::kGenerate, 0, PebbleType{1, 1}, 0});  // fine next step
}

TEST(Protocol, RejectsOutOfRange) {
  Protocol protocol{3, 2, 1};
  protocol.begin_step();
  EXPECT_THROW(protocol.add(Op{OpKind::kGenerate, 2, PebbleType{0, 1}, 0}),
               std::out_of_range);
  EXPECT_THROW(protocol.add(Op{OpKind::kGenerate, 0, PebbleType{3, 1}, 0}),
               std::out_of_range);
  EXPECT_THROW(protocol.add(Op{OpKind::kGenerate, 0, PebbleType{0, 2}, 0}),
               std::out_of_range);
}

TEST(Protocol, AddBeforeBeginStepThrows) {
  Protocol protocol{3, 2, 1};
  EXPECT_THROW(protocol.add(Op{OpKind::kGenerate, 0, PebbleType{0, 1}, 0}), std::logic_error);
}

TEST(Validator, AcceptsMinimalCompleteSimulation) {
  // T = 1: every processor holds all (P_i, 0); generating (P_i, 1) needs
  // only initial pebbles.  Generate all three finals on Q0 over 3 steps.
  Protocol protocol{3, 2, 1};
  for (NodeId i = 0; i < 3; ++i) {
    protocol.begin_step();
    protocol.add(Op{OpKind::kGenerate, 0, PebbleType{i, 1}, 0});
  }
  const ValidationResult result = validate_protocol(protocol, triangle(), host_edge());
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.pebbles_generated, 3u);
}

TEST(Validator, RejectsMissingFinalPebble) {
  Protocol protocol{3, 2, 1};
  protocol.begin_step();
  protocol.add(Op{OpKind::kGenerate, 0, PebbleType{0, 1}, 0});
  const ValidationResult result = validate_protocol(protocol, triangle(), host_edge());
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("final pebble"), std::string::npos);
}

TEST(Validator, RejectsGenerateWithoutPredecessors) {
  // T = 2: generating (P0, 2) requires (P0,1), (P1,1), (P2,1) at the proc.
  Protocol protocol{3, 2, 2};
  protocol.begin_step();
  protocol.add(Op{OpKind::kGenerate, 0, PebbleType{0, 2}, 0});
  const ValidationResult result = validate_protocol(protocol, triangle(), host_edge());
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("predecessor"), std::string::npos);
}

TEST(Validator, SendReceiveMovesPebbles) {
  // Q0 generates (P0,1).. then sends it to Q1; Q1 generates (P0,2) after
  // also getting (P1,1),(P2,1).
  Protocol protocol{3, 2, 2};
  auto gen = [&](std::uint32_t proc, NodeId i, std::uint32_t t) {
    protocol.begin_step();
    protocol.add(Op{OpKind::kGenerate, proc, PebbleType{i, t}, 0});
  };
  auto transfer = [&](std::uint32_t from, std::uint32_t to, NodeId i, std::uint32_t t) {
    protocol.begin_step();
    protocol.add(Op{OpKind::kSend, from, PebbleType{i, t}, to});
    protocol.add(Op{OpKind::kReceive, to, PebbleType{i, t}, from});
  };
  gen(0, 0, 1);
  gen(0, 1, 1);
  gen(0, 2, 1);
  transfer(0, 1, 0, 1);
  transfer(0, 1, 1, 1);
  transfer(0, 1, 2, 1);
  gen(1, 0, 2);
  gen(1, 1, 2);
  gen(1, 2, 2);
  const ValidationResult result = validate_protocol(protocol, triangle(), host_edge());
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.pebbles_sent, 3u);
}

TEST(Validator, RejectsSendOfUnheldPebble) {
  Protocol protocol{3, 2, 2};
  protocol.begin_step();
  protocol.add(Op{OpKind::kSend, 0, PebbleType{0, 1}, 1});  // (P0,1) never generated
  protocol.add(Op{OpKind::kReceive, 1, PebbleType{0, 1}, 0});
  const ValidationResult result = validate_protocol(protocol, triangle(), host_edge());
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("does not hold"), std::string::npos);
}

TEST(Validator, RejectsReceiveWithoutMatchingSend) {
  Protocol protocol{3, 2, 1};
  protocol.begin_step();
  protocol.add(Op{OpKind::kReceive, 1, PebbleType{0, 0}, 0});
  const ValidationResult result = validate_protocol(protocol, triangle(), host_edge());
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("matching send"), std::string::npos);
}

TEST(Validator, RejectsSendToNonNeighbor) {
  // Host path(3): Q0-Q1-Q2; Q0 -> Q2 is not an edge.
  Protocol protocol{3, 3, 1};
  protocol.begin_step();
  protocol.add(Op{OpKind::kSend, 0, PebbleType{0, 0}, 2});
  protocol.add(Op{OpKind::kReceive, 2, PebbleType{0, 0}, 0});
  const ValidationResult result = validate_protocol(protocol, triangle(), make_path(3));
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("neighbor"), std::string::npos);
}

TEST(Validator, InitialPebblesAreEverywhere) {
  // Sending (P_i, 0) works from any processor without generating it.
  Protocol protocol{3, 2, 1};
  protocol.begin_step();
  protocol.add(Op{OpKind::kSend, 1, PebbleType{2, 0}, 0});
  protocol.add(Op{OpKind::kReceive, 0, PebbleType{2, 0}, 1});
  protocol.begin_step();
  protocol.add(Op{OpKind::kGenerate, 0, PebbleType{0, 1}, 0});
  protocol.begin_step();
  protocol.add(Op{OpKind::kGenerate, 0, PebbleType{1, 1}, 0});
  protocol.begin_step();
  protocol.add(Op{OpKind::kGenerate, 0, PebbleType{2, 1}, 0});
  const ValidationResult result = validate_protocol(protocol, triangle(), host_edge());
  EXPECT_TRUE(result.ok) << result.error;
}

TEST(Validator, RejectsSizeMismatch) {
  Protocol protocol{4, 2, 1};
  const ValidationResult result = validate_protocol(protocol, triangle(), host_edge());
  EXPECT_FALSE(result.ok);
}

}  // namespace
}  // namespace upn
