// Tests for the synchronous store-and-forward router and its policies.
#include <gtest/gtest.h>

#include <set>

#include "src/routing/hh_problem.hpp"
#include "src/routing/policies.hpp"
#include "src/routing/router.hpp"
#include "src/topology/builders.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/properties.hpp"
#include "src/topology/torus.hpp"
#include "src/util/rng.hpp"

namespace upn {
namespace {

std::vector<Packet> to_packets(const HhProblem& problem) {
  std::vector<Packet> packets;
  for (const Demand& d : problem.demands()) {
    Packet p;
    p.src = d.src;
    p.dst = d.dst;
    p.via = d.dst;
    packets.push_back(p);
  }
  return packets;
}

TEST(DistanceOracle, MatchesBfs) {
  const Graph t = make_torus(5, 5);
  DistanceOracle oracle{t};
  const auto& d0 = oracle.to(0);
  const auto ref = bfs_distances(t, 0);
  for (NodeId v = 0; v < t.num_nodes(); ++v) EXPECT_EQ(d0[v], ref[v]);
}

TEST(GreedyPolicy, NextHopReducesDistance) {
  const Graph t = make_torus(6, 6);
  GreedyPolicy policy{t};
  DistanceOracle oracle{t};
  Packet p;
  p.dst = 20;
  p.via = 20;
  for (NodeId at = 0; at < t.num_nodes(); ++at) {
    if (at == p.dst) continue;
    const NodeId next = policy.next_hop(t, at, p);
    EXPECT_TRUE(t.has_edge(at, next));
    EXPECT_EQ(oracle.to(20)[next] + 1, oracle.to(20)[at]);
  }
}

class PortModelSweep : public ::testing::TestWithParam<PortModel> {};

TEST_P(PortModelSweep, DeliversSinglePacket) {
  const Graph p = make_path(6);
  SyncRouter router{p, GetParam()};
  GreedyPolicy policy{p};
  std::vector<Packet> packets(1);
  packets[0].src = 0;
  packets[0].dst = 5;
  packets[0].via = 5;
  const RouteResult result = router.route(std::move(packets), policy);
  EXPECT_EQ(result.steps, 5u);
  EXPECT_EQ(result.packets[0].delivered_at, 5);
}

TEST_P(PortModelSweep, DeliversRandomPermutation) {
  const Graph host = make_butterfly(3);
  SyncRouter router{host, GetParam()};
  GreedyPolicy policy{host};
  Rng rng{31};
  const HhProblem problem = random_permutation_problem(host.num_nodes(), rng);
  const RouteResult result = router.route(to_packets(problem), policy);
  for (std::size_t i = 0; i < result.packets.size(); ++i) {
    EXPECT_GE(result.packets[i].delivered_at, 0) << "packet " << i << " undelivered";
  }
  EXPECT_GT(result.total_transfers, 0u);
}

TEST_P(PortModelSweep, SelfPacketsDeliverImmediately) {
  const Graph host = make_cycle(4);
  SyncRouter router{host, GetParam()};
  GreedyPolicy policy{host};
  std::vector<Packet> packets(1);
  packets[0].src = 2;
  packets[0].dst = 2;
  packets[0].via = 2;
  const RouteResult result = router.route(std::move(packets), policy);
  EXPECT_EQ(result.steps, 0u);
  EXPECT_EQ(result.packets[0].delivered_at, 0);
}

INSTANTIATE_TEST_SUITE_P(Ports, PortModelSweep,
                         ::testing::Values(PortModel::kMultiPort, PortModel::kSinglePort));

TEST(SinglePort, TransfersFormMatchings) {
  const Graph host = make_torus(4, 4);
  SyncRouter router{host, PortModel::kSinglePort};
  GreedyPolicy policy{host};
  Rng rng{77};
  const HhProblem problem = random_h_relation(host.num_nodes(), 3, rng);
  const RouteResult result = router.route(to_packets(problem), policy, true);
  // Group transfers by step; within a step every node appears at most once.
  std::size_t i = 0;
  while (i < result.transfers.size()) {
    const std::uint32_t step = result.transfers[i].step;
    std::vector<char> busy(host.num_nodes(), 0);
    for (; i < result.transfers.size() && result.transfers[i].step == step; ++i) {
      const Transfer& tr = result.transfers[i];
      EXPECT_TRUE(host.has_edge(tr.from, tr.to));
      EXPECT_FALSE(busy[tr.from]) << "node sent/received twice in step " << step;
      EXPECT_FALSE(busy[tr.to]);
      busy[tr.from] = 1;
      busy[tr.to] = 1;
    }
  }
}

TEST(MultiPort, RespectsLinkCapacity) {
  const Graph host = make_torus(4, 4);
  SyncRouter router{host, PortModel::kMultiPort};
  GreedyPolicy policy{host};
  Rng rng{78};
  const HhProblem problem = random_h_relation(host.num_nodes(), 4, rng);
  const RouteResult result = router.route(to_packets(problem), policy, true);
  std::size_t i = 0;
  while (i < result.transfers.size()) {
    const std::uint32_t step = result.transfers[i].step;
    std::set<std::pair<NodeId, NodeId>> used;
    for (; i < result.transfers.size() && result.transfers[i].step == step; ++i) {
      const Transfer& tr = result.transfers[i];
      EXPECT_TRUE(used.emplace(tr.from, tr.to).second)
          << "directed link used twice in step " << step;
    }
  }
}

TEST(Valiant, DeliversAndVisitsIntermediate) {
  const Graph host = make_butterfly(3);
  SyncRouter router{host, PortModel::kMultiPort};
  ValiantPolicy policy{host, 123};
  Rng rng{5};
  const HhProblem problem = random_permutation_problem(host.num_nodes(), rng);
  const RouteResult result = router.route(to_packets(problem), policy);
  for (const Packet& p : result.packets) {
    EXPECT_GE(p.delivered_at, 0);
    EXPECT_EQ(p.phase, 1);  // completed the via phase
  }
}

TEST(Router, PolicyReturningNonNeighborThrows) {
  class BadPolicy final : public RoutingPolicy {
   public:
    NodeId next_hop(const Graph&, NodeId at, const Packet&) override { return at + 2; }
    std::string name() const override { return "bad"; }
  };
  const Graph p = make_path(5);
  SyncRouter router{p, PortModel::kMultiPort};
  BadPolicy policy;
  std::vector<Packet> packets(1);
  packets[0].src = 0;
  packets[0].dst = 4;
  packets[0].via = 4;
  EXPECT_THROW((void)router.route(std::move(packets), policy), std::logic_error);
}

TEST(Router, StepLimitDetectsLivelock) {
  class CircularPolicy final : public RoutingPolicy {
   public:
    NodeId next_hop(const Graph& g, NodeId at, const Packet&) override {
      return g.neighbors(at).front();
    }
    std::string name() const override { return "circular"; }
  };
  const Graph c = make_cycle(4);
  SyncRouter router{c, PortModel::kMultiPort};
  CircularPolicy policy;
  std::vector<Packet> packets(1);
  packets[0].src = 0;
  packets[0].dst = 2;
  packets[0].via = 2;
  // neighbors(0) = {1, 3}; always picking 1... the packet will reach 2 going
  // 0->1->0->1...: neighbors(1) = {0, 2}, front is 0 -> ping-pong forever.
  EXPECT_THROW((void)router.route(std::move(packets), policy, false, 100),
               std::runtime_error);
}

TEST(MeasureRouteTime, ScalesWithH) {
  const Graph host = make_butterfly(3);
  GreedyPolicy policy{host};
  Rng rng{9};
  const auto t1 = measure_route_time(host, 1, policy, PortModel::kMultiPort, 3, rng);
  const auto t4 = measure_route_time(host, 4, policy, PortModel::kMultiPort, 3, rng);
  EXPECT_GT(t1.worst_steps, 0u);
  EXPECT_GT(t4.worst_steps, t1.worst_steps);
  EXPECT_GE(t4.mean_steps, t1.mean_steps);
}

}  // namespace
}  // namespace upn
