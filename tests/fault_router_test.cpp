// Fault-aware routing: detours, retransmission, loss accounting.
#include <gtest/gtest.h>

#include "src/fault/fault_plan.hpp"
#include "src/routing/router.hpp"
#include "src/topology/builders.hpp"
#include "src/topology/mesh.hpp"

namespace upn {
namespace {

Packet make_packet(NodeId src, NodeId dst) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.via = dst;
  return p;
}

/// 0-1-2 short path plus a 0-3-4-2 long path.
Graph two_path_graph() {
  GraphBuilder builder{5, "two-paths"};
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(0, 3);
  builder.add_edge(3, 4);
  builder.add_edge(4, 2);
  return std::move(builder).build();
}

TEST(FaultRouter, EmptyPlanMatchesFaultFreeRouting) {
  const Graph graph = make_mesh(4, 4);
  SyncRouter router{graph, PortModel::kSinglePort};
  const FaultPlan plan;
  FaultRouteOptions opts;
  opts.plan = &plan;
  std::vector<Packet> packets;
  for (NodeId v = 0; v < 8; ++v) packets.push_back(make_packet(v, 15 - v));
  const RouteResult result = router.route_with_faults(packets, opts);
  EXPECT_EQ(result.packets_lost, 0u);
  EXPECT_EQ(result.retransmissions, 0u);
  EXPECT_EQ(result.reroutes, 0u);
  for (const Packet& p : result.packets) {
    EXPECT_EQ(p.lost, 0);
    EXPECT_GE(p.delivered_at, 0);
  }
}

TEST(FaultRouter, DetoursAroundInitiallyDeadLink) {
  const Graph graph = two_path_graph();
  SyncRouter router{graph, PortModel::kSinglePort};
  FaultPlan plan;
  plan.add_link_fault(LinkFault{0, 1, 0});
  FaultRouteOptions opts;
  opts.plan = &plan;
  const RouteResult result = router.route_with_faults({make_packet(0, 2)}, opts);
  EXPECT_EQ(result.packets_lost, 0u);
  ASSERT_EQ(result.packets.size(), 1u);
  EXPECT_EQ(result.packets[0].lost, 0);
  EXPECT_GE(result.packets[0].delivered_at, 3);  // forced onto the long path
}

TEST(FaultRouter, ReroutesQueuedPacketsWhenLinkDiesMidRun) {
  const Graph graph = two_path_graph();
  SyncRouter router{graph, PortModel::kSinglePort};
  FaultPlan plan;
  plan.add_link_fault(LinkFault{0, 1, 2});  // dies after the first transfers
  FaultRouteOptions opts;
  opts.plan = &plan;
  std::vector<Packet> packets;
  for (int i = 0; i < 6; ++i) packets.push_back(make_packet(0, 2));
  const RouteResult result = router.route_with_faults(packets, opts);
  EXPECT_EQ(result.packets_lost, 0u);
  EXPECT_GT(result.reroutes, 0u);
  for (const Packet& p : result.packets) EXPECT_EQ(p.lost, 0);
}

TEST(FaultRouter, MultiPortModelAlsoConsultsThePlan) {
  const Graph graph = two_path_graph();
  SyncRouter router{graph, PortModel::kMultiPort};
  FaultPlan plan;
  plan.add_link_fault(LinkFault{0, 1, 0});
  FaultRouteOptions opts;
  opts.plan = &plan;
  const RouteResult result = router.route_with_faults({make_packet(0, 2)}, opts);
  EXPECT_EQ(result.packets_lost, 0u);
  EXPECT_EQ(result.packets[0].delivered_at, 3);  // 0-3-4-2 under multiport
}

TEST(FaultRouter, PacketToDeadDestinationIsLostNotThrown) {
  const Graph graph = make_mesh(3, 3);
  SyncRouter router{graph, PortModel::kSinglePort};
  FaultPlan plan;
  plan.add_node_fault(NodeFault{8, 0});
  FaultRouteOptions opts;
  opts.plan = &plan;
  const RouteResult result =
      router.route_with_faults({make_packet(0, 8), make_packet(0, 4)}, opts);
  EXPECT_EQ(result.packets_lost, 1u);
  EXPECT_EQ(result.packets[0].lost, 1);
  EXPECT_EQ(result.packets[1].lost, 0);
}

TEST(FaultRouter, PacketToUnreachableSurvivorIsLost) {
  // 0-1 and the isolated pair 2-3 once {1, 2} dies.
  GraphBuilder builder{4, "chain"};
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 3);
  const Graph graph = std::move(builder).build();
  SyncRouter router{graph, PortModel::kSinglePort};
  FaultPlan plan;
  plan.add_link_fault(LinkFault{1, 2, 0});
  FaultRouteOptions opts;
  opts.plan = &plan;
  const RouteResult result = router.route_with_faults({make_packet(0, 3)}, opts);
  EXPECT_EQ(result.packets_lost, 1u);
  EXPECT_EQ(result.packets[0].lost, 1);
}

TEST(FaultRouter, TransientDropsAreRetransmittedAndDeterministic) {
  const Graph graph = make_mesh(2, 2);
  FaultPlan plan{123};
  plan.add_drop_window(DropWindow{0, 1, 0, 0xffffffffu, 0.5});
  plan.add_drop_window(DropWindow{2, 3, 0, 0xffffffffu, 0.5});
  FaultRouteOptions opts;
  opts.plan = &plan;
  opts.max_retries = 64;
  std::vector<Packet> packets;
  for (int i = 0; i < 16; ++i) {
    packets.push_back(make_packet(0, 1));
    packets.push_back(make_packet(2, 3));
  }
  SyncRouter router{graph, PortModel::kSinglePort};
  const RouteResult a = router.route_with_faults(packets, opts, nullptr, true);
  EXPECT_EQ(a.packets_lost, 0u);
  EXPECT_GT(a.retransmissions, 0u);
  bool saw_dropped_transfer = false;
  for (const Transfer& tr : a.transfers) saw_dropped_transfer |= tr.dropped != 0;
  EXPECT_TRUE(saw_dropped_transfer);

  const RouteResult b = router.route_with_faults(packets, opts, nullptr, true);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t i = 0; i < a.packets.size(); ++i) {
    EXPECT_EQ(a.packets[i].delivered_at, b.packets[i].delivered_at);
    EXPECT_EQ(a.packets[i].retries, b.packets[i].retries);
  }
}

TEST(FaultRouter, RetryBudgetExhaustionLosesThePacket) {
  GraphBuilder builder{2, "one-link"};
  builder.add_edge(0, 1);
  const Graph graph = std::move(builder).build();
  SyncRouter router{graph, PortModel::kSinglePort};
  FaultPlan plan{5};
  plan.add_drop_window(DropWindow{0, 1, 0, 0xffffffffu, 1.0});  // always drops
  FaultRouteOptions opts;
  opts.plan = &plan;
  opts.max_retries = 3;
  const RouteResult result = router.route_with_faults({make_packet(0, 1)}, opts);
  EXPECT_EQ(result.packets_lost, 1u);
  EXPECT_EQ(result.packets[0].lost, 1);
  EXPECT_EQ(result.packets[0].retries, 4u);  // 3 retries + the final straw
  EXPECT_EQ(result.retransmissions, 4u);
}

TEST(FaultRouter, NullPlanWithoutPolicyThrows) {
  const Graph graph = make_mesh(2, 2);
  SyncRouter router{graph, PortModel::kSinglePort};
  FaultRouteOptions opts;  // plan == nullptr
  EXPECT_THROW((void)router.route_with_faults({make_packet(0, 1)}, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace upn
