#pragma once

namespace demo {

struct Queue {
  std::deque<int> pending;
};

inline void consume(std::vector<int> batch) {
  std::vector<int> sink = std::move(batch);
}

}  // namespace demo
