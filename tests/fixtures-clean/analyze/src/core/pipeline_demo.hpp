#pragma once

#include "src/util/checked_math.hpp"

namespace demo {

inline int half_of(int value) {
  UPN_REQUIRE(value >= 0);
  return demo::checked_halve(value);
}

inline int identity(int value) {
  // upn-contract-waive(pure passthrough, no precondition to state)
  int result = value;
  return result;
}

}  // namespace demo
