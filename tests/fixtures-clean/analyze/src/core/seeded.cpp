#include "src/core/pipeline_demo.hpp"

namespace demo {

int reseed() {
  return half_of(4) + rand();  // upn-lint-allow(no-std-rand)
}

}  // namespace demo
