namespace demo {

std::mutex mu_a;
std::mutex mu_b;
int shared_a = 0;
int shared_b = 0;

void first_then_second() {
  std::lock_guard<std::mutex> ga(mu_a);
  std::lock_guard<std::mutex> gb(mu_b);
  shared_a += 1;
  shared_b += 1;
}

void also_first_then_second() {
  std::lock_guard<std::mutex> ga(mu_a);
  std::lock_guard<std::mutex> gb(mu_b);
  shared_b += shared_a;
}

void update_both(Pool& pool, std::vector<int>& out) {
  pool.parallel_for(out.size(), [&](std::size_t i) {
    out[i] += 1;
  });
}

}  // namespace demo
