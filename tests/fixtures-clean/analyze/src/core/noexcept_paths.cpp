namespace demo {

inline int halved(int value) noexcept {
  return value / 2;
}

int stable_sum(const std::vector<int>& values) noexcept {
  int total = 0;
  for (const int v : values) total += halved(v);
  return total;
}

struct Closer {
  int fd = -1;
  ~Closer() { fd = -1; }
};

}  // namespace demo
