namespace demo {

void fill_counts(Pool& pool, std::vector<int>& out, std::uint64_t seed) {
  pool.parallel_for(out.size(), [&](std::size_t i) {
    Rng rng = Rng::stream(seed, i);
    out[i] = static_cast<int>(rng.next_u64());
  });
}

}  // namespace demo
