namespace demo {

void export_totals(const std::unordered_map<int, long>& table) {
  std::vector<long> values;
  for (const auto& [key, value] : table) {
    values.push_back(value);
  }
  std::sort(values.begin(), values.end());
  UPN_OBS_COUNT("demo.values", values.size());
}

}  // namespace demo
