namespace demo {

int run_all(Pool& pool) {
  std::vector<int> data(4, 0);
  fill_counts(pool, data, 7);
  update_both(pool, data);
  consume(data);
  std::unordered_map<int, long> table;
  export_totals(table);
  first_then_second();
  also_first_then_second();
  return reseed() + identity(9) + plan_budget() + stable_sum(data);
}

}  // namespace demo

int main() {
  demo::Pool pool;
  return demo::run_all(pool);
}
