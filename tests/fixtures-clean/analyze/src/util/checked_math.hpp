#pragma once

namespace demo {

inline int checked_halve(int value) {
  UPN_REQUIRE(value >= 0);
  return value / 2;
}

}  // namespace demo
