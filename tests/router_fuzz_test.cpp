// Randomized router invariants: across random hosts, relations, policies and
// port models, every packet is delivered exactly once, transfers conserve
// packets, and the step count respects trivial lower bounds.
#include <gtest/gtest.h>

#include "src/routing/hh_problem.hpp"
#include "src/routing/policies.hpp"
#include "src/routing/router.hpp"
#include "src/topology/properties.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/rng.hpp"

namespace upn {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  PortModel port_model;
};

class RouterFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(RouterFuzz, InvariantsHoldOnRandomInstances) {
  Rng rng{GetParam().seed};
  for (int trial = 0; trial < 12; ++trial) {
    // Random connected host: random regular graphs are connected w.h.p.;
    // retry if not.
    const auto m = static_cast<std::uint32_t>(rng.between(8, 48)) & ~1u;
    const auto degree = static_cast<std::uint32_t>(rng.between(3, 5));
    Graph host = make_random_regular(m, degree, rng);
    if (!is_connected(host)) continue;
    const auto h = static_cast<std::uint32_t>(rng.between(1, 4));
    const HhProblem problem = random_h_relation(m, h, rng);

    GreedyPolicy greedy{host};
    ValiantPolicy valiant{host, rng()};
    RoutingPolicy* policy = rng.chance(0.5) ? static_cast<RoutingPolicy*>(&greedy)
                                            : static_cast<RoutingPolicy*>(&valiant);
    SyncRouter router{host, GetParam().port_model};
    std::vector<Packet> packets;
    for (const Demand& d : problem.demands()) {
      Packet p;
      p.src = d.src;
      p.dst = d.dst;
      p.via = d.dst;
      p.payload = (static_cast<std::uint64_t>(d.src) << 32) | d.dst;
      packets.push_back(p);
    }
    const RouteResult result = router.route(std::move(packets), *policy, true);

    // Every packet delivered with intact payload, and transfer counts add up.
    ASSERT_EQ(result.packets.size(), problem.size());
    std::vector<std::uint32_t> hops(result.packets.size(), 0);
    for (const Transfer& tr : result.transfers) {
      ASSERT_LT(tr.packet, result.packets.size());
      ASSERT_TRUE(host.has_edge(tr.from, tr.to));
      ++hops[tr.packet];
    }
    DistanceOracle oracle{host};
    for (std::size_t i = 0; i < result.packets.size(); ++i) {
      const Packet& p = result.packets[i];
      ASSERT_GE(p.delivered_at, 0) << "undelivered packet";
      ASSERT_LE(p.delivered_at, static_cast<std::int64_t>(result.steps));
      ASSERT_EQ(p.payload, (static_cast<std::uint64_t>(p.src) << 32) | p.dst);
      // Hop count at least the shortest-path distance (via detours allowed).
      ASSERT_GE(hops[i], oracle.to(p.dst)[p.src]);
    }
    ASSERT_EQ(result.total_transfers, result.transfers.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RouterFuzz,
    ::testing::Values(FuzzCase{101, PortModel::kMultiPort},
                      FuzzCase{102, PortModel::kMultiPort},
                      FuzzCase{103, PortModel::kSinglePort},
                      FuzzCase{104, PortModel::kSinglePort},
                      FuzzCase{105, PortModel::kMultiPort},
                      FuzzCase{106, PortModel::kSinglePort}));

}  // namespace
}  // namespace upn
