// Randomized router invariants and the engine differential fuzzer.
//
// Part 1: across random hosts, relations, policies and port models, every
// packet is delivered exactly once, transfers conserve packets, and the step
// count respects trivial lower bounds.
//
// Part 2 (differential): the same randomized instances -- plus random
// FaultPlans and adversarially small step limits -- are driven through BOTH
// engines, the data-oriented SyncRouter and the preserved pre-rewrite
// ReferenceRouter, asserting byte-identical RouteResults (full transfer log)
// or byte-identical thrown livelock diagnostics.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "src/fault/fault_plan.hpp"
#include "src/routing/hh_problem.hpp"
#include "src/routing/policies.hpp"
#include "src/routing/router.hpp"
#include "src/topology/properties.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/rng.hpp"
#include "tests/support/reference_router.hpp"

namespace upn {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  PortModel port_model;
};

class RouterFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(RouterFuzz, InvariantsHoldOnRandomInstances) {
  Rng rng{GetParam().seed};
  for (int trial = 0; trial < 12; ++trial) {
    // Random connected host: random regular graphs are connected w.h.p.;
    // retry if not.
    const auto m = static_cast<std::uint32_t>(rng.between(8, 48)) & ~1u;
    const auto degree = static_cast<std::uint32_t>(rng.between(3, 5));
    Graph host = make_random_regular(m, degree, rng);
    if (!is_connected(host)) continue;
    const auto h = static_cast<std::uint32_t>(rng.between(1, 4));
    const HhProblem problem = random_h_relation(m, h, rng);

    GreedyPolicy greedy{host};
    ValiantPolicy valiant{host, rng()};
    RoutingPolicy* policy = rng.chance(0.5) ? static_cast<RoutingPolicy*>(&greedy)
                                            : static_cast<RoutingPolicy*>(&valiant);
    SyncRouter router{host, GetParam().port_model};
    std::vector<Packet> packets;
    for (const Demand& d : problem.demands()) {
      Packet p;
      p.src = d.src;
      p.dst = d.dst;
      p.via = d.dst;
      p.payload = (static_cast<std::uint64_t>(d.src) << 32) | d.dst;
      packets.push_back(p);
    }
    const RouteResult result = router.route(std::move(packets), *policy, true);

    // Every packet delivered with intact payload, and transfer counts add up.
    ASSERT_EQ(result.packets.size(), problem.size());
    std::vector<std::uint32_t> hops(result.packets.size(), 0);
    for (const Transfer& tr : result.transfers) {
      ASSERT_LT(tr.packet, result.packets.size());
      ASSERT_TRUE(host.has_edge(tr.from, tr.to));
      ++hops[tr.packet];
    }
    DistanceOracle oracle{host};
    for (std::size_t i = 0; i < result.packets.size(); ++i) {
      const Packet& p = result.packets[i];
      ASSERT_GE(p.delivered_at, 0) << "undelivered packet";
      ASSERT_LE(p.delivered_at, static_cast<std::int64_t>(result.steps));
      ASSERT_EQ(p.payload, (static_cast<std::uint64_t>(p.src) << 32) | p.dst);
      // Hop count at least the shortest-path distance (via detours allowed).
      ASSERT_GE(hops[i], oracle.to(p.dst)[p.src]);
    }
    ASSERT_EQ(result.total_transfers, result.transfers.size());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RouterFuzz,
    ::testing::Values(FuzzCase{101, PortModel::kMultiPort},
                      FuzzCase{102, PortModel::kMultiPort},
                      FuzzCase{103, PortModel::kSinglePort},
                      FuzzCase{104, PortModel::kSinglePort},
                      FuzzCase{105, PortModel::kMultiPort},
                      FuzzCase{106, PortModel::kSinglePort}));

// ---- Part 2: the differential fuzzer. ------------------------------------

class RouterDifferentialFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(RouterDifferentialFuzz, FastEngineMatchesReferenceOnRandomInstances) {
  Rng rng{GetParam().seed * 7919};
  const PortModel model = GetParam().port_model;
  int executed = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto m = static_cast<std::uint32_t>(rng.between(8, 40)) & ~1u;
    const auto degree = static_cast<std::uint32_t>(rng.between(3, 5));
    Graph host = make_random_regular(m, degree, rng);
    if (!is_connected(host)) continue;
    ++executed;
    const auto h = static_cast<std::uint32_t>(rng.between(1, 5));
    const HhProblem problem = random_h_relation(m, h, rng);
    std::vector<Packet> packets;
    for (const Demand& d : problem.demands()) {
      Packet p;
      p.src = d.src;
      p.dst = d.dst;
      p.via = d.dst;
      p.payload = rng();
      packets.push_back(p);
    }
    const std::uint64_t policy_seed = rng();
    const bool use_valiant = rng.chance(0.5);

    // A random fault cocktail on about half the trials: permanent link and
    // node deaths plus a transient drop window, all seeded from the fuzzer
    // stream so failures replay exactly.
    const bool faulted = rng.chance(0.5);
    FaultPlan plan = make_uniform_link_faults(host, 0.06, rng(), /*step=*/1);
    plan = merge_plans(plan, make_uniform_node_faults(host, 0.04, rng(), /*step=*/3));
    plan = merge_plans(plan, make_uniform_drops(host, 0.12, rng(), 0, 16));
    FaultRouteOptions options;
    options.plan = &plan;
    options.max_retries = static_cast<std::uint32_t>(rng.between(2, 10));

    // Occasionally clamp the step budget hard enough that the run may throw:
    // both engines must then throw the identical livelock diagnostic.  Faulted
    // runs keep a small budget regardless -- a fault-oblivious external policy
    // livelocks against a permanently dead link by design, and spinning both
    // engines to 2^22 steps just to compare the diagnostic is wasted time.
    const bool clamped = rng.chance(0.25);
    const std::uint32_t max_steps =
        clamped ? static_cast<std::uint32_t>(rng.between(1, 4))
                : (faulted ? 2048u : (1u << 22));

    auto run = [&](auto& router, RoutingPolicy& policy, std::string& what) -> std::string {
      try {
        const RouteResult result =
            faulted ? router.route_with_faults(packets, options, &policy, true, max_steps)
                    : router.route(packets, policy, true, max_steps);
        return testing::dump_route_result(result);
      } catch (const std::runtime_error& e) {
        what = e.what();
        return "<livelock>";
      }
    };

    SCOPED_TRACE("trial " + std::to_string(trial) + " m=" + std::to_string(m) +
                 " degree=" + std::to_string(degree) + " h=" + std::to_string(h) +
                 (faulted ? " faulted" : "") + (clamped ? " clamped" : ""));
    GreedyPolicy fast_greedy{host};
    GreedyPolicy ref_greedy{host};
    ValiantPolicy fast_valiant{host, policy_seed};
    ValiantPolicy ref_valiant{host, policy_seed};
    SyncRouter fast{host, model};
    testing::ReferenceRouter ref{host, model};
    std::string fast_what;
    std::string ref_what;
    const std::string fast_dump =
        run(fast, use_valiant ? static_cast<RoutingPolicy&>(fast_valiant)
                              : static_cast<RoutingPolicy&>(fast_greedy),
            fast_what);
    const std::string ref_dump =
        run(ref, use_valiant ? static_cast<RoutingPolicy&>(ref_valiant)
                             : static_cast<RoutingPolicy&>(ref_greedy),
            ref_what);
    ASSERT_EQ(fast_dump, ref_dump);
    ASSERT_EQ(fast_what, ref_what) << "livelock diagnostics must match byte-for-byte";
  }
  ASSERT_GT(executed, 0) << "every sampled host was disconnected; widen the generator";
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RouterDifferentialFuzz,
    ::testing::Values(FuzzCase{201, PortModel::kMultiPort},
                      FuzzCase{202, PortModel::kMultiPort},
                      FuzzCase{203, PortModel::kSinglePort},
                      FuzzCase{204, PortModel::kSinglePort},
                      FuzzCase{205, PortModel::kMultiPort},
                      FuzzCase{206, PortModel::kSinglePort}));

}  // namespace
}  // namespace upn
