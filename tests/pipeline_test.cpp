// Full-pipeline API tests (and the Galil-Paul end-to-end simulator).
#include <gtest/gtest.h>

#include "src/core/galil_paul.hpp"
#include "src/core/pipeline.hpp"
#include "src/sorting/sort_route.hpp"
#include "src/sorting/bitonic.hpp"
#include "src/topology/random_regular.hpp"
#include "src/topology/torus.hpp"

namespace upn {
namespace {

TEST(Pipeline, DefaultConfigPassesAllChecks) {
  PipelineConfig config;
  config.guest_steps = 14;
  const PipelineReport report = run_paper_pipeline(config);
  EXPECT_TRUE(report.configs_verified);
  EXPECT_TRUE(report.protocol_valid) << report.protocol_error;
  EXPECT_TRUE(report.lemma312_holds);
  EXPECT_TRUE(report.expansion_caps_hold);
  EXPECT_FALSE(report.ruled_out_by_counting);
  EXPECT_TRUE(report.all_checks_pass());
  EXPECT_GE(report.slowdown, report.load_bound);
  EXPECT_GT(report.fragment_log2_multiplicity, 0.0);
  EXPECT_GT(report.z_size, 0u);
}

TEST(Pipeline, DeterministicForFixedSeed) {
  PipelineConfig config;
  config.guest_steps = 12;
  config.seed = 99;
  const PipelineReport a = run_paper_pipeline(config);
  const PipelineReport b = run_paper_pipeline(config);
  EXPECT_DOUBLE_EQ(a.slowdown, b.slowdown);
  EXPECT_EQ(a.protocol_ops, b.protocol_ops);
  EXPECT_EQ(a.fragment_sum_b, b.fragment_sum_b);
}

TEST(SortRouteDelivery, MovesPayloadsCorrectly) {
  Rng rng{8};
  const std::uint32_t n = 32;
  const ComparatorNetwork sorter = make_bitonic_sorter(n);
  const HhProblem problem = random_h_relation(n, 3, rng);
  std::vector<std::uint64_t> payloads(problem.size());
  for (std::size_t d = 0; d < payloads.size(); ++d) payloads[d] = 1000 + d;
  const SortRouteDelivery delivery = deliver_relation_by_sorting(problem, payloads, sorter);
  EXPECT_TRUE(delivery.stats.delivered);
  // Every destination receives exactly the payloads addressed to it.
  std::vector<std::vector<std::uint64_t>> expected(n);
  for (std::size_t d = 0; d < problem.demands().size(); ++d) {
    expected[problem.demands()[d].dst].push_back(1000 + d);
  }
  for (std::uint32_t v = 0; v < n; ++v) {
    auto got = delivery.delivered[v];
    std::sort(got.begin(), got.end());
    std::sort(expected[v].begin(), expected[v].end());
    EXPECT_EQ(got, expected[v]) << "node " << v;
  }
}

TEST(GalilPaulSim, FullSimulationVerifies) {
  Rng rng{11};
  const Graph guest = make_random_regular(96, 8, rng);
  const GalilPaulSimResult result = run_galil_paul(guest, 16, 4);
  EXPECT_TRUE(result.configs_match);
  EXPECT_GT(result.slowdown, 0.0);
}

TEST(GalilPaulSim, CostsMoreThanLoadBound) {
  Rng rng{12};
  const Graph guest = make_torus(8, 8);
  const GalilPaulSimResult result = run_galil_paul(guest, 8, 3);
  EXPECT_TRUE(result.configs_match);
  EXPECT_GE(result.slowdown, 8.0);  // at least the load 64/8
}

}  // namespace
}  // namespace upn
