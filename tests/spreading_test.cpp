// Spreading function measurements ([15]'s polynomial-spreading class).
#include <gtest/gtest.h>

#include "src/lowerbound/spreading.hpp"
#include "src/topology/expander.hpp"
#include "src/topology/mesh.hpp"
#include "src/topology/torus.hpp"

namespace upn {
namespace {

TEST(Spreading, TorusIsQuadratic) {
  const Graph t = make_torus(20, 20);
  Rng rng{1};
  const SpreadingProfile profile = measure_spreading(t, 9, 10, rng);
  // 2D torus: |ball(t)| = 2t^2 + 2t + 1 before wrap.
  EXPECT_EQ(profile.max_ball[0], 1u);
  EXPECT_EQ(profile.max_ball[1], 5u);
  EXPECT_EQ(profile.max_ball[2], 13u);
  EXPECT_NEAR(profile.poly_exponent, 2.0, 0.35);
  EXPECT_TRUE(has_polynomial_spreading(profile, 8.0, 2.0));
}

TEST(Spreading, MeshIsQuadratic) {
  const Graph mesh = make_mesh(24, 24);
  Rng rng{2};
  const SpreadingProfile profile = measure_spreading(mesh, 10, 10, rng);
  EXPECT_NEAR(profile.poly_exponent, 2.0, 0.45);
}

TEST(Spreading, ExpanderIsExponential) {
  Rng rng{3};
  const Graph g = make_random_expander(512, rng, 0.1);
  Rng sample_rng{4};
  const SpreadingProfile profile = measure_spreading(g, 8, 10, sample_rng);
  // Degree-4 expander: balls grow geometrically until saturation.
  EXPECT_GT(profile.exp_rate, 0.8);
  EXPECT_GT(profile.poly_exponent, 2.5);  // no quadratic fit
  EXPECT_FALSE(has_polynomial_spreading(profile, 8.0, 2.0));
}

TEST(Spreading, MonotoneAndSaturating) {
  const Graph t = make_torus(8, 8);
  Rng rng{5};
  const SpreadingProfile profile = measure_spreading(t, 16, 5, rng);
  for (std::size_t i = 1; i < profile.max_ball.size(); ++i) {
    EXPECT_GE(profile.max_ball[i], profile.max_ball[i - 1]);
  }
  EXPECT_EQ(profile.max_ball.back(), 64u);  // whole graph reached
}

}  // namespace
}  // namespace upn
