// Mesh-of-trees topology tests.
#include <gtest/gtest.h>

#include "src/topology/mesh_of_trees.hpp"
#include "src/topology/properties.hpp"
#include "src/util/math.hpp"

namespace upn {
namespace {

class MotSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MotSweep, StructuralInvariants) {
  const std::uint32_t side = GetParam();
  const Graph mot = make_mesh_of_trees(side);
  const MeshOfTreesLayout layout{side};
  EXPECT_EQ(mot.num_nodes(), layout.num_nodes());
  EXPECT_EQ(mot.num_nodes(), side * side + 2 * side * (side - 1));
  // Edge count: each of the 2*side trees has 2*(side-1) edges... exactly
  // (side-1) internal nodes each contributing 2 child edges.
  EXPECT_EQ(mot.num_edges(), 2ull * side * (side - 1) * 2);
  EXPECT_TRUE(is_connected(mot));
  EXPECT_LE(mot.max_degree(), 3u);
  // Diameter O(log side): up a column tree, across, down a row tree.
  EXPECT_LE(diameter(mot), 8 * ceil_log2(side) + 4);
}

TEST_P(MotSweep, GridNodesHaveDegreeTwo) {
  const std::uint32_t side = GetParam();
  const Graph mot = make_mesh_of_trees(side);
  const MeshOfTreesLayout layout{side};
  // Every grid node is a leaf of exactly one row tree and one column tree.
  for (std::uint32_t y = 0; y < side; ++y) {
    for (std::uint32_t x = 0; x < side; ++x) {
      EXPECT_EQ(mot.degree(layout.grid_id(x, y)), 2u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sides, MotSweep, ::testing::Values(2u, 4u, 8u, 16u));

TEST(MeshOfTrees, RootsHaveDegreeTwo) {
  const MeshOfTreesLayout layout{8};
  const Graph mot = make_mesh_of_trees(8);
  EXPECT_EQ(mot.degree(layout.row_internal(0, 0)), 2u);  // tree root
  EXPECT_EQ(mot.degree(layout.row_internal(0, 1)), 3u);  // internal node
}

TEST(MeshOfTrees, RejectsBadSide) {
  EXPECT_THROW(make_mesh_of_trees(3), std::invalid_argument);
  EXPECT_THROW(make_mesh_of_trees(1), std::invalid_argument);
}

}  // namespace
}  // namespace upn
