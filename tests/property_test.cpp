// Property-based tests over the topology module: a seeded generator samples
// random instances from every builder family and checks the invariants each
// family declares -- degree bound, handshake lemma, connectivity where the
// construction guarantees it -- plus fault-surgery containment
// (surviving_subgraph is a subgraph of the original) and artifact round
// trips (write -> read -> write is byte-identical for .upnp protocols and
// .upns schedules).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/embedding.hpp"
#include "src/core/universal_sim.hpp"
#include "src/fault/fault_plan.hpp"
#include "src/fault/surgery.hpp"
#include "src/pebble/io.hpp"
#include "src/routing/hh_problem.hpp"
#include "src/routing/path_schedule.hpp"
#include "src/routing/policies.hpp"
#include "src/routing/router.hpp"
#include "src/routing/schedule_io.hpp"
#include "src/topology/builders.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/ccc.hpp"
#include "src/topology/debruijn.hpp"
#include "src/topology/expander.hpp"
#include "src/topology/hypercube.hpp"
#include "src/topology/kautz.hpp"
#include "src/topology/mesh.hpp"
#include "src/topology/mesh_of_trees.hpp"
#include "src/topology/multitorus.hpp"
#include "src/topology/properties.hpp"
#include "src/topology/random_regular.hpp"
#include "src/topology/shuffle_exchange.hpp"
#include "src/topology/torus.hpp"
#include "src/topology/torus3d.hpp"
#include "src/util/rng.hpp"

namespace upn {
namespace {

constexpr std::uint64_t kPropertySeed = 0x70726f70;

// One sampled instance: the graph plus the invariants its family declares.
struct Sample {
  Graph graph;
  std::uint32_t max_degree = 0;  ///< declared degree bound
  bool connected = true;         ///< family guarantees connectivity
};

// Draws one random instance of every family per round.  Sizes are sampled
// from the seeded rng so repeated CI runs explore the same instances and a
// failure names the (family, round) pair that produced it.
std::vector<std::pair<std::string, Sample>> sample_families(Rng& rng) {
  std::vector<std::pair<std::string, Sample>> samples;
  auto add = [&](const std::string& family, Graph g, std::uint32_t max_degree,
                 bool connected = true) {
    samples.emplace_back(family, Sample{std::move(g), max_degree, connected});
  };

  const auto u32 = [&](std::uint32_t lo, std::uint32_t hi) {
    return lo + static_cast<std::uint32_t>(rng.below(hi - lo + 1));
  };

  add("path", make_path(u32(2, 64)), 2);
  add("cycle", make_cycle(u32(3, 64)), 2);
  {
    const std::uint32_t n = u32(2, 24);
    add("complete", make_complete(n), n - 1);
  }
  add("complete_binary_tree", make_complete_binary_tree(u32(1, 8)), 3);
  add("butterfly", make_butterfly(u32(1, 5)), 4);
  add("wrapped_butterfly", make_wrapped_butterfly(u32(2, 5)), 4);
  add("cube_connected_cycles", make_cube_connected_cycles(u32(3, 6)), 3);
  add("debruijn", make_debruijn(u32(2, 9)), 4);
  {
    const std::uint32_t d = u32(2, 9);
    add("hypercube", make_hypercube(d), d);
  }
  add("kautz", make_kautz(u32(2, 8)), 4);
  add("shuffle_exchange", make_shuffle_exchange(u32(2, 9)), 3);
  add("mesh", make_mesh(u32(2, 12), u32(2, 12)), 4);
  {
    const std::uint32_t side = u32(2, 12);
    add("square_mesh", make_square_mesh(side * side), 4);
  }
  add("mesh_of_trees", make_mesh_of_trees(1u << u32(1, 4)), 3);
  add("torus", make_torus(u32(3, 12), u32(3, 12)), 4);
  {
    const std::uint32_t side = u32(3, 12);
    add("square_torus", make_square_torus(side * side), 4);
  }
  add("torus3d", make_torus3d(u32(3, 6), u32(3, 6), u32(3, 6)), 6);
  {
    // Multitorus side must be a positive multiple of the block side; block
    // wraparounds add at most one edge per dimension on block boundaries.
    const std::uint32_t a = u32(2, 4);
    const std::uint32_t side = a * u32(1, 4);
    add("multitorus", make_multitorus(side * side, a), 6);
  }
  {
    const std::uint32_t n = 2 * u32(8, 40);  // n*c even
    add("random_regular", make_random_regular(n, 3, rng), 3,
        /*connected=*/false);
  }
  {
    const std::uint32_t c = 2 * u32(1, 3);
    const std::uint32_t n = u32(2 * c + 2, 60);
    add("circulant", make_circulant(n, c), c);
  }
  {
    const std::uint32_t n = 2 * u32(16, 48);
    add("random_expander", make_random_expander(n, rng, 0.1), 4,
        /*connected=*/false);
  }
  add("margulis_expander", make_margulis_expander(u32(3, 10)), 8);
  return samples;
}

TEST(TopologyProperties, DegreeBoundHandshakeAndConnectivity) {
  Rng rng{kPropertySeed};
  for (int round = 0; round < 5; ++round) {
    for (const auto& [family, sample] : sample_families(rng)) {
      SCOPED_TRACE(family + " round " + std::to_string(round) + " (" +
                   sample.graph.name() + ")");
      const Graph& g = sample.graph;
      ASSERT_GT(g.num_nodes(), 0u);

      // Declared degree bound.
      EXPECT_LE(g.max_degree(), sample.max_degree);

      // Handshake lemma: degrees sum to twice the edge count.
      std::uint64_t degree_sum = 0;
      for (NodeId v = 0; v < g.num_nodes(); ++v) degree_sum += g.degree(v);
      EXPECT_EQ(degree_sum, 2 * g.num_edges());

      // Adjacency is symmetric, sorted, self-loop-free.
      for (NodeId v = 0; v < g.num_nodes(); ++v) {
        NodeId previous = 0;
        bool first = true;
        for (const NodeId w : g.neighbors(v)) {
          EXPECT_NE(w, v);
          EXPECT_TRUE(g.has_edge(w, v));
          if (!first) {
            EXPECT_LT(previous, w);
          }
          previous = w;
          first = false;
        }
      }

      if (sample.connected) {
        EXPECT_TRUE(is_connected(g));
      }
    }
  }
}

TEST(TopologyProperties, SurvivingSubgraphIsContainedInOriginal) {
  Rng rng{kPropertySeed + 1};
  for (int round = 0; round < 5; ++round) {
    for (const auto& [family, sample] : sample_families(rng)) {
      const Graph& host = sample.graph;
      if (host.num_nodes() < 4) continue;
      SCOPED_TRACE(family + " round " + std::to_string(round));
      const double node_rate = 0.05 + 0.1 * static_cast<double>(round);
      const FaultPlan plan = make_uniform_node_faults(host, node_rate, rng());
      const SurvivingHost survivor = surviving_subgraph(host, plan);

      ASSERT_EQ(survivor.to_survivor.size(), host.num_nodes());
      EXPECT_LE(survivor.graph.num_nodes(), host.num_nodes());
      EXPECT_LE(survivor.graph.num_edges(), host.num_edges());

      // The id maps are mutually inverse on survivors.
      ASSERT_EQ(survivor.to_original.size(), survivor.graph.num_nodes());
      for (NodeId s = 0; s < survivor.graph.num_nodes(); ++s) {
        const NodeId orig = survivor.to_original[s];
        ASSERT_LT(orig, host.num_nodes());
        EXPECT_EQ(survivor.to_survivor[orig], s);
      }

      // Every surviving edge is an edge of the original host.
      for (const auto& [u, v] : survivor.graph.edge_list()) {
        EXPECT_TRUE(host.has_edge(survivor.to_original[u], survivor.to_original[v]))
            << "edge (" << u << ", " << v << ")";
      }
    }
  }
}

TEST(ArtifactRoundTrip, ProtocolWriteReadWriteIsByteIdentical) {
  Rng rng{kPropertySeed + 2};
  for (const std::uint32_t n : {32u, 64u}) {
    SCOPED_TRACE("n=" + std::to_string(n));
    const Graph guest = make_random_regular(n, kGuestDegree, rng);
    const Graph host = make_butterfly(2);
    UniversalSimulator sim{guest, host, make_random_embedding(n, host.num_nodes(), rng)};
    UniversalSimOptions options;
    options.emit_protocol = true;
    const UniversalSimResult result = sim.run(3, options);
    ASSERT_TRUE(result.protocol.has_value());

    std::ostringstream first;
    write_protocol(first, *result.protocol);
    std::istringstream in{first.str()};
    const Protocol reread = read_protocol(in);
    std::ostringstream second;
    write_protocol(second, reread);
    EXPECT_EQ(first.str(), second.str());
  }
}

TEST(ArtifactRoundTrip, ScheduleWriteReadWriteIsByteIdentical) {
  Rng rng{kPropertySeed + 3};
  for (const std::uint32_t side : {6u, 8u}) {
    SCOPED_TRACE("side=" + std::to_string(side));
    const Graph host = make_torus(side, side);
    const HhProblem problem = random_h_relation(host.num_nodes(), 2, rng);
    const PathSchedule schedule = schedule_paths(host, problem);
    const auto num_packets = static_cast<std::uint32_t>(problem.demands().size());

    std::ostringstream first;
    write_path_schedule(first, schedule, num_packets);
    std::istringstream in{first.str()};
    const StoredPathSchedule reread = read_path_schedule(in);
    EXPECT_EQ(reread.num_packets, num_packets);
    std::ostringstream second;
    write_path_schedule(second, reread.schedule, reread.num_packets);
    EXPECT_EQ(first.str(), second.str());
  }
}

// ---- Router step invariants (the data-oriented engine's contract) --------
//
// The transfer log is the engine's ground truth: these properties replay it
// and check the per-step guarantees the port models advertise, plus that the
// scalar summaries (max_queue, delivered_at) are faithful to the log.

struct RoutedInstance {
  Graph host;
  RouteResult result;
};

RoutedInstance route_instance(std::uint64_t seed, PortModel model) {
  Rng rng{seed};
  Graph host = make_butterfly(3);
  if (rng.chance(0.5)) {
    for (;;) {
      Graph g = make_random_regular(26, 4, rng);
      if (is_connected(g)) {
        host = std::move(g);
        break;
      }
    }
  }
  const auto h = static_cast<std::uint32_t>(rng.between(1, 6));
  const HhProblem problem = random_h_relation(host.num_nodes(), h, rng);
  std::vector<Packet> packets;
  for (const Demand& d : problem.demands()) {
    Packet p;
    p.src = d.src;
    p.dst = d.dst;
    p.via = d.dst;
    packets.push_back(p);
  }
  GreedyPolicy policy{host};
  SyncRouter router{host, model};
  RouteResult result = router.route(std::move(packets), policy, /*record_transfers=*/true);
  return RoutedInstance{std::move(host), std::move(result)};
}

// Groups the (step-sorted) transfer log into per-step slices and applies `fn`.
template <typename Fn>
void for_each_step(const RouteResult& result, Fn&& fn) {
  std::size_t i = 0;
  while (i < result.transfers.size()) {
    const std::uint32_t step = result.transfers[i].step;
    const std::size_t begin = i;
    while (i < result.transfers.size() && result.transfers[i].step == step) ++i;
    fn(step, std::span<const Transfer>{result.transfers.data() + begin, i - begin});
  }
}

TEST(RouterStepInvariants, SinglePortStepsFormMatchings) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const RoutedInstance instance = route_instance(seed, PortModel::kSinglePort);
    for_each_step(instance.result, [&](std::uint32_t step, std::span<const Transfer> slice) {
      std::vector<NodeId> touched;
      for (const Transfer& tr : slice) {
        touched.push_back(tr.from);
        touched.push_back(tr.to);
      }
      std::sort(touched.begin(), touched.end());
      ASSERT_EQ(std::adjacent_find(touched.begin(), touched.end()), touched.end())
          << "node sends or receives twice in step " << step << " (seed " << seed << ")";
    });
  }
}

TEST(RouterStepInvariants, MultiPortUsesEachDirectedLinkAtMostOncePerStep) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const RoutedInstance instance = route_instance(seed, PortModel::kMultiPort);
    for_each_step(instance.result, [&](std::uint32_t step, std::span<const Transfer> slice) {
      std::vector<std::uint64_t> links;
      for (const Transfer& tr : slice) {
        links.push_back((static_cast<std::uint64_t>(tr.from) << 32) | tr.to);
      }
      std::sort(links.begin(), links.end());
      ASSERT_EQ(std::adjacent_find(links.begin(), links.end()), links.end())
          << "directed link used twice in step " << step << " (seed " << seed << ")";
    });
  }
}

TEST(RouterStepInvariants, MaxQueueIsTheTrueRunningPeak) {
  for (const PortModel model : {PortModel::kMultiPort, PortModel::kSinglePort}) {
    for (const std::uint64_t seed : {6u, 7u, 8u}) {
      const RoutedInstance instance = route_instance(seed, model);
      const RouteResult& result = instance.result;
      // Replay buffer occupancy from the log: a packet occupies its source
      // queue unless delivered on the spot, leaves `from` when it hops, and
      // occupies `to` afterwards unless that hop delivered it.
      std::vector<std::uint32_t> occupancy(instance.host.num_nodes(), 0);
      for (const Packet& p : result.packets) {
        if (p.delivered_at != 0) ++occupancy[p.src];
      }
      std::uint32_t peak = *std::max_element(occupancy.begin(), occupancy.end());
      for_each_step(result, [&](std::uint32_t step, std::span<const Transfer> slice) {
        for (const Transfer& tr : slice) {
          ASSERT_GT(occupancy[tr.from], 0u);
          --occupancy[tr.from];
        }
        for (const Transfer& tr : slice) {
          if (result.packets[tr.packet].delivered_at !=
              static_cast<std::int64_t>(step) + 1) {
            ++occupancy[tr.to];
          }
        }
        peak = std::max(peak, *std::max_element(occupancy.begin(), occupancy.end()));
      });
      ASSERT_EQ(result.max_queue, peak)
          << "reported max_queue is not the replayed peak (seed " << seed << ")";
      ASSERT_EQ(std::count_if(occupancy.begin(), occupancy.end(),
                              [](std::uint32_t c) { return c != 0; }),
                0)
          << "replay left packets buffered after the last step";
    }
  }
}

TEST(RouterStepInvariants, DeliveredAtIsMonotoneWithTheTransferLog) {
  for (const PortModel model : {PortModel::kMultiPort, PortModel::kSinglePort}) {
    for (const std::uint64_t seed : {9u, 10u, 11u}) {
      const RoutedInstance instance = route_instance(seed, model);
      const RouteResult& result = instance.result;
      // Per packet: hop steps strictly increase, and delivery happens exactly
      // one step after the final hop (0 for packets born at their target).
      std::vector<std::int64_t> last_hop(result.packets.size(), -1);
      for (const Transfer& tr : result.transfers) {
        ASSERT_GT(static_cast<std::int64_t>(tr.step), last_hop[tr.packet])
            << "transfer log not strictly increasing for packet " << tr.packet;
        last_hop[tr.packet] = tr.step;
      }
      for (std::size_t i = 0; i < result.packets.size(); ++i) {
        ASSERT_EQ(result.packets[i].delivered_at, last_hop[i] + 1)
            << "delivered_at disagrees with the last logged hop (packet " << i << ")";
      }
    }
  }
}

}  // namespace
}  // namespace upn
