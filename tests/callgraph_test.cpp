// Whole-program call-graph tests for upn_analyze: overload resolution by
// arity, method resolution through typed receivers, ThreadPool task-body
// edges, conservative open edges (virtual / indirect / ambiguous receiver),
// the determinism contract for --dump-callgraph at --jobs {1, 2, 7}, and the
// IR cache round-trip behind --ir-cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "tools/analyze/callgraph.hpp"
#include "tools/analyze/engine.hpp"
#include "tools/analyze/ir.hpp"

namespace upn::analyze {
namespace {

namespace fs = std::filesystem;

CallGraph graph_of(const std::vector<std::pair<std::string, std::string>>& files) {
  std::vector<UnitFunctions> per_unit;
  per_unit.reserve(files.size());
  for (const auto& [path, text] : files) {
    per_unit.push_back(extract_functions(build_unit(path, text)));
  }
  return link_callgraph(per_unit);
}

std::size_t node_id(const CallGraph& g, const std::string& qualified,
                    std::size_t arity) {
  for (std::size_t i = 0; i < g.nodes.size(); ++i) {
    if (g.nodes[i].qualified == qualified && g.nodes[i].arity == arity) return i;
  }
  ADD_FAILURE() << "no node " << qualified << "/" << arity;
  return static_cast<std::size_t>(-1);
}

bool has_edge(const CallGraph& g, std::size_t caller, std::size_t callee,
              EdgeKind kind) {
  return std::any_of(g.edges.begin(), g.edges.end(), [&](const CallEdge& e) {
    return e.caller == caller && e.callee == callee && e.kind == kind;
  });
}

bool has_open(const CallGraph& g, std::size_t caller, const std::string& name,
              const std::string& reason) {
  return std::any_of(g.opens.begin(), g.opens.end(), [&](const OpenEdge& e) {
    return e.caller == caller && e.name == name && e.reason == reason;
  });
}

// ---- resolution -----------------------------------------------------------

TEST(Callgraph, OverloadsResolveByArity) {
  const CallGraph g = graph_of({{"src/core/a.cpp",
                                 "namespace demo {\n"
                                 "int scale(int v) { return v * 2; }\n"
                                 "int scale(int v, int w) { return v * w; }\n"
                                 "int use() { return scale(1) + scale(2, 3); }\n"
                                 "}  // namespace demo\n"}});
  const std::size_t one = node_id(g, "scale", 1);
  const std::size_t two = node_id(g, "scale", 2);
  const std::size_t use = node_id(g, "use", 0);
  EXPECT_TRUE(has_edge(g, use, one, EdgeKind::kDirect));
  EXPECT_TRUE(has_edge(g, use, two, EdgeKind::kDirect));
  // Arity narrowed each call to exactly one overload.
  EXPECT_EQ(g.out_ids[use].size(), 2u);
}

TEST(Callgraph, DirectCallsLinkAcrossTranslationUnits) {
  const CallGraph g = graph_of(
      {{"src/core/def.cpp",
        "namespace demo {\n"
        "int helper(int v) { return v + 1; }\n"
        "}  // namespace demo\n"},
       {"src/core/use.cpp",
        "namespace demo {\n"
        "int caller(int v) { return helper(v); }\n"
        "}  // namespace demo\n"}});
  EXPECT_TRUE(has_edge(g, node_id(g, "caller", 1), node_id(g, "helper", 1),
                       EdgeKind::kDirect));
}

TEST(Callgraph, MethodCallsResolveThroughTypedReceivers) {
  const CallGraph g = graph_of({{"src/core/r.cpp",
                                 "namespace demo {\n"
                                 "struct Router {\n"
                                 "  int route(int p) { return p; }\n"
                                 "};\n"
                                 "int drive(Router& router) { return router.route(4); }\n"
                                 "}  // namespace demo\n"}});
  EXPECT_TRUE(has_edge(g, node_id(g, "drive", 1), node_id(g, "Router::route", 1),
                       EdgeKind::kMethod));
  EXPECT_TRUE(g.opens.empty());
}

TEST(Callgraph, TaskBodiesBecomePseudoNodesWithTaskEdges) {
  const CallGraph g = graph_of(
      {{"src/core/t.cpp",
        "namespace demo {\n"
        "int work(int v) { return v; }\n"
        "void fill(Pool& pool, std::vector<int>& out) {\n"
        "  pool.parallel_for(out.size(), [&](std::size_t i) { out[i] = work(1); });\n"
        "}\n"
        "}  // namespace demo\n"}});
  const auto task = std::find_if(g.nodes.begin(), g.nodes.end(),
                                 [](const FunctionNode& n) { return n.is_task_body; });
  ASSERT_NE(task, g.nodes.end());
  const std::size_t task_id = static_cast<std::size_t>(task - g.nodes.begin());
  const std::size_t fill = node_id(g, "fill", 2);
  EXPECT_EQ(task->task_parent, fill);
  EXPECT_TRUE(has_edge(g, fill, task_id, EdgeKind::kTask));
  // The body's own calls hang off the pseudo-node, not the parent.
  EXPECT_TRUE(has_edge(g, task_id, node_id(g, "work", 1), EdgeKind::kDirect));
  EXPECT_FALSE(has_edge(g, fill, node_id(g, "work", 1), EdgeKind::kDirect));
}

// ---- open-edge conservatism ----------------------------------------------

TEST(Callgraph, VirtualCallsStayOpen) {
  const CallGraph g = graph_of({{"src/core/v.cpp",
                                 "namespace demo {\n"
                                 "struct Policy {\n"
                                 "  virtual int next(int at) = 0;\n"
                                 "};\n"
                                 "int step(Policy& policy) { return policy.next(1); }\n"
                                 "}  // namespace demo\n"}});
  const std::size_t step = node_id(g, "step", 1);
  EXPECT_TRUE(has_open(g, step, "next", "virtual"));
  EXPECT_TRUE(g.out_ids[step].empty());
}

TEST(Callgraph, CallsThroughLocalsStayOpenAsIndirect) {
  const CallGraph g = graph_of({{"src/core/i.cpp",
                                 "namespace demo {\n"
                                 "int pick(int v) { return v; }\n"
                                 "int apply(int v) {\n"
                                 "  Handler fn = pick;\n"
                                 "  return fn(v);\n"
                                 "}\n"
                                 "}  // namespace demo\n"}});
  EXPECT_TRUE(has_open(g, node_id(g, "apply", 1), "fn", "indirect"));
}

TEST(Callgraph, UntypedReceiverWithSeveralCandidateClassesStaysOpen) {
  const CallGraph g = graph_of({{"src/core/m.cpp",
                                 "namespace demo {\n"
                                 "struct Alpha {\n"
                                 "  int get(int k) { return k; }\n"
                                 "};\n"
                                 "struct Beta {\n"
                                 "  int get(int k) { return k + 1; }\n"
                                 "};\n"
                                 "int fetch(std::vector<Alpha>& items) { return items[0].get(2); }\n"
                                 "}  // namespace demo\n"}});
  EXPECT_TRUE(has_open(g, node_id(g, "fetch", 1), "get", "ambiguous-receiver"));
}

TEST(Callgraph, UntypedReceiverWithOneCandidateClassResolves) {
  const CallGraph g = graph_of({{"src/core/s.cpp",
                                 "namespace demo {\n"
                                 "struct Only {\n"
                                 "  int get(int k) { return k; }\n"
                                 "};\n"
                                 "int fetch(std::vector<Only>& items) { return items[0].get(2); }\n"
                                 "}  // namespace demo\n"}});
  EXPECT_TRUE(has_edge(g, node_id(g, "fetch", 1), node_id(g, "Only::get", 1),
                       EdgeKind::kMethod));
  EXPECT_TRUE(g.opens.empty());
}

// ---- dump determinism -----------------------------------------------------

TEST(CallgraphDeterminism, DumpIsByteIdenticalAtJobs127) {
  Report reports[3];
  const unsigned jobs[] = {1, 2, 7};
  for (int i = 0; i < 3; ++i) {
    TreeOptions options;
    options.root = UPN_ANALYZE_BAD_DIR;
    options.paths = {"src"};
    options.excludes.clear();
    options.jobs = jobs[i];
    Input input;
    std::string error;
    ASSERT_TRUE(collect_tree(options, input, error)) << error;
    input.want_callgraph = true;
    reports[i] = analyze(input);
  }
  ASSERT_FALSE(reports[0].callgraph_dump.empty());
  EXPECT_EQ(reports[0].callgraph_dump.substr(0, 10), "callgraph:");
  EXPECT_EQ(reports[0].callgraph_dump, reports[1].callgraph_dump);
  EXPECT_EQ(reports[0].callgraph_dump, reports[2].callgraph_dump);
}

// ---- IR cache -------------------------------------------------------------

TEST(IrCache, KeyIsStableAndSensitiveToPathAndContent) {
  const std::string key = unit_cache_key("src/core/a.cpp", "int x;\n");
  EXPECT_EQ(key.size(), 16u);
  EXPECT_EQ(key.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(key, unit_cache_key("src/core/a.cpp", "int x;\n"));
  EXPECT_NE(key, unit_cache_key("src/core/b.cpp", "int x;\n"));
  EXPECT_NE(key, unit_cache_key("src/core/a.cpp", "int y;\n"));
}

TEST(IrCache, SerializedUnitsRoundTrip) {
  const std::string path = "src/core/round.hpp";
  const std::string content =
      "#pragma once\n"
      "#include \"src/util/math.hpp\"\n"
      "namespace demo {\n"
      "inline int twice(int v) { return v * 2; }  // doubles\n"
      "}  // namespace demo\n";
  const Unit unit = build_unit(path, content);
  const std::string serialized = serialize_unit(unit);
  Unit loaded;
  ASSERT_TRUE(deserialize_unit(path, content, serialized, loaded));
  EXPECT_EQ(loaded.path, unit.path);
  EXPECT_EQ(loaded.raw, unit.raw);
  EXPECT_EQ(loaded.code, unit.code);
  EXPECT_EQ(loaded.module, unit.module);
  EXPECT_EQ(loaded.is_header, unit.is_header);
  ASSERT_EQ(loaded.tokens.size(), unit.tokens.size());
  for (std::size_t i = 0; i < unit.tokens.size(); ++i) {
    EXPECT_EQ(loaded.tokens[i].kind, unit.tokens[i].kind);
    EXPECT_EQ(loaded.tokens[i].line, unit.tokens[i].line);
    EXPECT_EQ(loaded.tokens[i].text, unit.tokens[i].text);
  }
  // Re-serializing the loaded unit proves nothing was lost in flight.
  EXPECT_EQ(serialize_unit(loaded), serialized);
}

TEST(IrCache, DeserializeFailsClosedOnDamage) {
  const std::string path = "src/core/d.cpp";
  const std::string content = "int x = 1;\n";
  const std::string good = serialize_unit(build_unit(path, content));
  Unit out;
  EXPECT_FALSE(deserialize_unit(path, content, "", out));
  EXPECT_FALSE(deserialize_unit(path, content, "wrong magic\n", out));
  // Truncation drops the trailing end marker.
  EXPECT_FALSE(deserialize_unit(path, content, good.substr(0, good.size() / 2), out));
  EXPECT_TRUE(deserialize_unit(path, content, good, out));
}

TEST(IrCache, EngineProducesIdenticalReportsWithAWarmCache) {
  const fs::path dir = fs::path{::testing::TempDir()} / "upn_ir_cache_test";
  fs::remove_all(dir);

  auto run = [&](unsigned jobs) {
    TreeOptions options;
    options.root = UPN_ANALYZE_BAD_DIR;
    options.paths = {"src"};
    options.excludes.clear();
    options.jobs = jobs;
    options.ir_cache_dir = dir.string();
    Input input;
    std::string error;
    EXPECT_TRUE(collect_tree(options, input, error)) << error;
    return analyze(input);
  };

  const Report cold = run(2);
  std::size_t cached_files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".upnir") ++cached_files;
  }
  EXPECT_EQ(cached_files, cold.files);

  const Report warm = run(2);
  const Report warm7 = run(7);
  EXPECT_EQ(cold.render_text(), warm.render_text());
  EXPECT_EQ(cold.render_text(), warm7.render_text());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace upn::analyze
