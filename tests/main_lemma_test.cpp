// Main Lemma (Lemma 3.4) verification on real protocols.
#include <gtest/gtest.h>

#include "src/core/embedding.hpp"
#include "src/core/universal_sim.hpp"
#include "src/lowerbound/main_lemma.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/random_regular.hpp"

namespace upn {
namespace {

TEST(MainLemma, PropertiesOneAndTwoHoldAtToyScale) {
  Rng rng{4242};
  const Graph host = make_butterfly(2);
  const std::uint32_t m = host.num_nodes();
  const std::uint32_t a = g0_block_parameter(m);
  const std::uint32_t n = g0_round_guest_size(60, a);
  const G0 g0 = make_g0(n, m, rng);
  const Graph guest = make_random_regular_with_subgraph(g0.graph, kGuestDegree, rng);
  UniversalSimulator sim{guest, host, make_random_embedding(n, m, rng)};
  UniversalSimOptions options;
  options.emit_protocol = true;
  const UniversalSimResult result = sim.run(16, options);
  ASSERT_TRUE(result.configs_match);

  const ProtocolMetrics metrics{*result.protocol};
  const MainLemmaReport report = verify_main_lemma(metrics, g0);
  // Property (1): the Z_S footprint is large.
  EXPECT_TRUE(report.property1);
  // Property (2): the sum |B_i| bound holds at every critical time.
  EXPECT_TRUE(report.property2_all);
  ASSERT_FALSE(report.fragments.empty());
  for (const MainLemmaFragmentRow& row : report.fragments) {
    EXPECT_GT(row.sum_b, 0u);
    EXPECT_TRUE(row.property2) << "t0 = " << row.t0;
    // Property (3) threshold bookkeeping is populated either way.
    EXPECT_NEAR(row.required_small_d, report.gamma * n, 1e-9);
    EXPECT_GE(row.measured_gamma, 0.0);
    EXPECT_LE(row.measured_gamma, 1.0);
  }
  // gamma derived from the certified expander is positive and < 1.
  EXPECT_GT(report.gamma, 0.0);
  EXPECT_LT(report.gamma, 1.0);
  // n / sqrt(m) at this scale exceeds n/4: property (3) is near-vacuous
  // here, which the report states honestly.
  EXPECT_GT(report.small_d_threshold, n / 4.0);
}

}  // namespace
}  // namespace upn
