// Expander construction and certification tests.
#include <gtest/gtest.h>

#include <cmath>

#include "src/topology/builders.hpp"
#include "src/topology/expander.hpp"
#include "src/topology/hypercube.hpp"
#include "src/topology/properties.hpp"
#include "src/topology/random_regular.hpp"
#include "src/topology/torus.hpp"

namespace upn {
namespace {

TEST(Spectral, CompleteGraphEigenvalue) {
  // K_n adjacency spectrum: n-1 (once), -1 (n-1 times) -> second |ev| = 1.
  const Graph k = make_complete(12);
  EXPECT_NEAR(second_eigenvalue(k, 300), 1.0, 0.05);
}

TEST(Spectral, EvenCycleIsBipartite) {
  // C_8 is bipartite: -2 is an eigenvalue, so the second largest |ev| is 2.
  const Graph c = make_cycle(8);
  EXPECT_NEAR(second_eigenvalue(c, 500), 2.0, 0.02);
}

TEST(Spectral, OddCycleEigenvalue) {
  // C_9 spectrum: 2 cos(2 pi j / 9); largest |ev| below 2 is |2 cos(8pi/9)|.
  const Graph c = make_cycle(9);
  EXPECT_NEAR(second_eigenvalue(c, 800), 2.0 * std::abs(std::cos(8.0 * 3.14159265358979 / 9)),
              0.02);
}

TEST(Spectral, HypercubeIsBipartite) {
  // Q_d is bipartite: -d is an eigenvalue, so the second largest |ev| is d.
  const Graph h = make_hypercube(4);
  EXPECT_NEAR(second_eigenvalue(h, 500), 4.0, 0.1);
}

TEST(Tanner, BetaFormula) {
  // Perfect expander limit (lambda -> 0): beta -> 1/alpha.
  EXPECT_NEAR(tanner_beta(4, 0.0, 0.25), 4.0, 1e-9);
  // No gap (lambda = d): beta = 1.
  EXPECT_NEAR(tanner_beta(4, 4.0, 0.5), 1.0, 1e-9);
  // Random 4-regular (lambda ~ 3.46, alpha = 0.1) gives beta > 1.
  EXPECT_GT(tanner_beta(4, 3.47, 0.1), 1.0);
}

TEST(RandomExpander, CertifiesAtModerateSize) {
  Rng rng{99};
  const Graph g = make_random_expander(200, rng, 0.1);
  std::uint32_t degree = 0;
  EXPECT_TRUE(is_regular(g, &degree));
  EXPECT_EQ(degree, 4u);
  const ExpanderCertificate cert = verify_expander(g, 0.1);
  EXPECT_TRUE(cert.valid);
  EXPECT_GT(cert.beta, 1.0);
  EXPECT_LT(cert.lambda, 4.0);
}

TEST(RandomExpander, SampledExpansionConsistentWithCertificate) {
  Rng rng{7};
  const Graph g = make_random_expander(150, rng, 0.1);
  const ExpanderCertificate cert = verify_expander(g, 0.1);
  Rng sample_rng{8};
  const double sampled = sampled_vertex_expansion(g, 0.1, 200, sample_rng);
  // The certificate is a lower bound; sampling is an upper bound.
  EXPECT_GE(sampled + 1e-9, cert.beta * 0.5);  // sanity: not wildly below
  EXPECT_GE(sampled, 1.0);                     // a real expander expands
}

TEST(VerifyExpander, RejectsNonRegular) {
  const Graph p = make_path(10);
  const ExpanderCertificate cert = verify_expander(p, 0.1);
  EXPECT_FALSE(cert.valid);
}

TEST(VerifyExpander, TorusIsNotAnExpander) {
  // Large tori have vanishing spectral gap; at side 16 Tanner beta at
  // alpha=0.1 should already fail or barely pass -- check it is weak.
  const Graph t = make_torus(16, 16);
  const ExpanderCertificate cert = verify_expander(t, 0.1, 400);
  EXPECT_LT(cert.beta, 1.3);
}

TEST(Margulis, StructureAndExpansion) {
  const Graph g = make_margulis_expander(12);
  EXPECT_EQ(g.num_nodes(), 144u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_LE(g.max_degree(), 8u);
  // Explicit Margulis-type graphs have a constant spectral gap.
  const double lambda = second_eigenvalue(g, 300);
  EXPECT_LT(lambda, 7.2);  // well below degree 8 even at this small size
}

TEST(Margulis, RejectsTinyK) {
  EXPECT_THROW(make_margulis_expander(1), std::invalid_argument);
}

class ExpanderSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ExpanderSizeSweep, CertifiedAcrossSizes) {
  Rng rng{GetParam()};
  const Graph g = make_random_expander(GetParam(), rng, 0.1);
  EXPECT_TRUE(verify_expander(g, 0.1).valid);
  EXPECT_TRUE(is_connected(g));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExpanderSizeSweep, ::testing::Values(64u, 128u, 256u, 400u));

}  // namespace
}  // namespace upn
