// Dependency graph (Def 3.7) and dependency tree (Lemma 3.10) tests.
#include <gtest/gtest.h>

#include "src/lowerbound/dependency_graph.hpp"
#include "src/lowerbound/dependency_tree.hpp"
#include "src/topology/builders.hpp"
#include "src/topology/multitorus.hpp"
#include "src/topology/torus.hpp"

namespace upn {
namespace {

TEST(DependencyGraph, PredecessorsIncludeSelfAndNeighbors) {
  const Graph c = make_cycle(5);
  const auto preds = dependency_predecessors(c, 0);
  EXPECT_EQ(preds, (std::vector<NodeId>{0, 1, 4}));
}

TEST(DependencyGraph, ReachabilityIsBallMembership) {
  const Graph p = make_path(10);
  EXPECT_TRUE(dependency_reaches(p, 0, 0, 0));
  EXPECT_TRUE(dependency_reaches(p, 0, 3, 3));
  EXPECT_FALSE(dependency_reaches(p, 0, 4, 3));
  EXPECT_TRUE(dependency_reaches(p, 0, 4, 7));  // slack allowed
}

TEST(DependencyGraph, BallSizes) {
  const Graph t = make_torus(5, 5);
  EXPECT_EQ(dependency_ball(t, 0, 0).size(), 1u);
  EXPECT_EQ(dependency_ball(t, 0, 1).size(), 5u);   // self + 4 neighbors
  EXPECT_EQ(dependency_ball(t, 0, 10).size(), 25u); // whole torus
}

TEST(DependencyGraph, SpreadingProfileMonotone) {
  const Graph t = make_torus(6, 6);
  const auto profile = spreading_profile(t, 7, 8);
  ASSERT_EQ(profile.size(), 9u);
  EXPECT_EQ(profile[0], 1u);
  for (std::size_t i = 1; i < profile.size(); ++i) {
    EXPECT_GE(profile[i], profile[i - 1]);
  }
  EXPECT_EQ(profile.back(), 36u);
}

class TreeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(TreeSweep, TreeValidatesForEveryRootInBlockZero) {
  const std::uint32_t a = GetParam();
  const std::uint32_t block_side = 2 * a;
  const std::uint32_t n = 4 * block_side * block_side;  // 2x2 blocks
  const MultitorusLayout layout = multitorus_layout(n, block_side);
  const Graph mt = make_multitorus(n, block_side);
  const auto block_nodes = layout.block_nodes(0);
  for (const NodeId root : block_nodes) {
    const DependencyTree tree = build_block_dependency_tree(layout, 0, root);
    EXPECT_EQ(tree.root_vertex(), root);
    EXPECT_TRUE(validate_dependency_tree(tree, mt, block_nodes)) << "root=" << root;
    // Lemma 3.10 size budget: 48 a^2 (generous; measured constant reported
    // in benches).  Depth should be O(a).
    EXPECT_LE(tree.size(), 48u * 4 * a * a);
    EXPECT_LE(tree.depth, 8 * a);
    EXPECT_EQ(tree.leaves.size(), block_nodes.size());
  }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, TreeSweep, ::testing::Values(1u, 2u, 3u, 4u));

TEST(DependencyTree, WorksOnNonCornerBlocks) {
  const MultitorusLayout layout = multitorus_layout(144, 4);  // 3x3 blocks of 4x4
  const Graph mt = make_multitorus(144, 4);
  for (std::uint32_t block = 0; block < layout.num_blocks(); ++block) {
    const auto nodes = layout.block_nodes(block);
    const DependencyTree tree = build_block_dependency_tree(layout, block, nodes[5]);
    EXPECT_TRUE(validate_dependency_tree(tree, mt, nodes)) << "block=" << block;
  }
}

TEST(DependencyTree, DepthIsUniformAcrossRoots) {
  const MultitorusLayout layout = multitorus_layout(64, 4);
  const auto nodes = layout.block_nodes(0);
  const std::uint32_t depth0 = build_block_dependency_tree(layout, 0, nodes[0]).depth;
  for (const NodeId root : nodes) {
    EXPECT_EQ(build_block_dependency_tree(layout, 0, root).depth, depth0);
  }
}

TEST(DependencyTree, RejectsBadArguments) {
  const MultitorusLayout layout = multitorus_layout(64, 4);
  EXPECT_THROW((void)build_block_dependency_tree(layout, 9, 0), std::out_of_range);
  // Node 0 is in block 0, not block 1.
  EXPECT_THROW((void)build_block_dependency_tree(layout, 1, 0), std::invalid_argument);
}

TEST(DependencyTree, ValidatorDetectsCorruption) {
  const MultitorusLayout layout = multitorus_layout(64, 4);
  const Graph mt = make_multitorus(64, 4);
  const auto nodes = layout.block_nodes(0);
  {
    // Leaf time corruption: shift the declared depth.
    DependencyTree tree = build_block_dependency_tree(layout, 0, nodes[0]);
    tree.depth += 1;
    EXPECT_FALSE(validate_dependency_tree(tree, mt, nodes));
  }
  {
    // Branching corruption: duplicate a leaf under the root -> time break.
    DependencyTree tree = build_block_dependency_tree(layout, 0, nodes[0]);
    TreeNode extra = tree.nodes[tree.leaves[0]];
    extra.parent = 0;
    tree.nodes.push_back(extra);
    tree.leaves.push_back(static_cast<std::uint32_t>(tree.nodes.size() - 1));
    EXPECT_FALSE(validate_dependency_tree(tree, mt, nodes));
  }
  {
    // Leaf cover corruption: drop one leaf.
    DependencyTree tree = build_block_dependency_tree(layout, 0, nodes[0]);
    tree.leaves.pop_back();
    EXPECT_FALSE(validate_dependency_tree(tree, mt, nodes));
  }
}

TEST(DependencyTree, DotOutputMentionsRoot) {
  const MultitorusLayout layout = multitorus_layout(64, 4);
  const DependencyTree tree = build_block_dependency_tree(layout, 0, 0);
  const std::string dot = dependency_tree_to_dot(tree);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("P0"), std::string::npos);
}

}  // namespace
}  // namespace upn
