// Golden snapshot regression for one butterfly universal simulation: the
// full deterministic metric snapshot of a fixed seeded run, rendered as
// text, pinned byte-for-byte.  Any change to instrumentation placement,
// metric naming, counter semantics, or exporter formatting shows up here as
// a readable diff.  This binary holds exactly one test so no other
// workload can register extra metrics into the process-wide registry.
#include <gtest/gtest.h>

#include <string>

#include "src/core/embedding.hpp"
#include "src/core/universal_sim.hpp"
#include "src/obs/obs.hpp"
#include "src/pebble/validator.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/random_regular.hpp"

namespace upn {
namespace {

// Regenerate after an intentional instrumentation change by running this
// test and copying the "actual" block from the failure message.
const char* const kGoldenSnapshot =
    R"(counter   pebble.validator.generates      72
counter   pebble.validator.receives       672
counter   pebble.validator.sends          672
counter   pebble.validator.validations    1
gauge     routing.sync.max_queue_depth    value=0 max=16
counter   routing.sync.packets_lost       0
counter   routing.sync.packets_submitted  288
counter   routing.sync.reroutes           0
counter   routing.sync.retransmissions    0
counter   routing.sync.route_calls        3
histogram routing.sync.step_max_queue     count=189 sum=1923 [0:3 1:3 2:9 3:18 4:153 5:3]
counter   routing.sync.steps              189
counter   routing.sync.transfers          672
counter   sim.universal.comm_steps        189
counter   sim.universal.compute_steps     6
gauge     sim.universal.embedding_load    value=0 max=2
counter   sim.universal.packets_routed    288
counter   sim.universal.runs              1
)";

TEST(ObsGolden, ButterflySimulationSnapshotIsPinned) {
  obs::set_enabled(true);
  obs::registry().reset();

  Rng rng{11};
  const Graph guest = make_random_regular(24, 4, rng);
  const Graph host = make_butterfly(2);  // m = 12
  UniversalSimulator sim{guest, host, make_random_embedding(24, 12, rng)};
  UniversalSimOptions options;
  options.emit_protocol = true;
  const UniversalSimResult result = sim.run(3, options);
  ASSERT_TRUE(result.configs_match);
  ASSERT_TRUE(result.protocol.has_value());
  const ValidationResult validation = validate_protocol(*result.protocol, guest, host);
  ASSERT_TRUE(validation.ok) << validation.error;

  const std::string actual =
      obs::snapshot_text(obs::registry().snapshot(obs::MetricKind::kDeterministic));
  EXPECT_EQ(actual, kGoldenSnapshot)
      << "deterministic snapshot drifted; if intentional, update kGoldenSnapshot to:\n"
      << actual;
}

}  // namespace
}  // namespace upn
