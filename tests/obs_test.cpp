// Unit tests for the obs layer: metric semantics (counter/gauge/histogram
// and the fixed bucket layout), registry snapshot/reset behavior, span
// nesting and error context, snapshot exporters, delta attribution, and the
// trace session lifecycle.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "src/obs/obs.hpp"
#include "src/util/contracts.hpp"
#include "src/util/par.hpp"

namespace upn::obs {
namespace {

/// Every test runs with collection on and a zeroed registry.  Names are
/// unique per test because reset() keeps registrations alive (zeroed rows
/// would otherwise leak between snapshot-shape assertions; delta_rows drops
/// them, full snapshots do not).
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    registry().reset();
  }
  void TearDown() override {
    registry().reset();
    stop_trace();
  }
};

// ---- counters -------------------------------------------------------------

TEST_F(ObsTest, CounterAccumulatesAndResets) {
  Counter& c = registry().counter("test.counter.basic");
  c.add(3);
  c.add(4);
  EXPECT_EQ(c.value(), 7u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, CounterStripesMergeToTheExactSum) {
  Counter& c = registry().counter("test.counter.striped");
  ThreadPool pool{4};
  pool.parallel_for(1000, [&](std::size_t) { c.add(1); });
  EXPECT_EQ(c.value(), 1000u);
}

// ---- gauges ---------------------------------------------------------------

TEST_F(ObsTest, GaugeTracksValueAndRunningMax) {
  Gauge& g = registry().gauge("test.gauge.basic");
  g.set(5);
  g.record_max(9);
  g.record_max(2);  // lower than current max: no effect on max
  EXPECT_EQ(g.value(), 5);
  EXPECT_EQ(g.max_value(), 9);
  g.reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max_value(), 0);
}

TEST_F(ObsTest, GaugeMaxIsCommutative) {
  Gauge& g = registry().gauge("test.gauge.max");
  ThreadPool pool{4};
  pool.parallel_for(100, [&](std::size_t i) {
    g.record_max(static_cast<std::int64_t>(i));
  });
  EXPECT_EQ(g.max_value(), 99);
}

// ---- histograms -----------------------------------------------------------

TEST_F(ObsTest, HistogramBucketLayoutIsPowerOfTwo) {
  // bucket 0 holds 0; bucket b >= 1 holds [2^(b-1), 2^b).
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(7), 3u);
  EXPECT_EQ(Histogram::bucket_of(8), 4u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), kHistogramBuckets - 1);

  EXPECT_EQ(Histogram::bucket_floor(0), 0u);
  EXPECT_EQ(Histogram::bucket_floor(1), 1u);
  EXPECT_EQ(Histogram::bucket_floor(2), 2u);
  EXPECT_EQ(Histogram::bucket_floor(3), 4u);
  // floor and bucket_of are inverse on bucket boundaries.
  for (std::size_t b = 1; b < kHistogramBuckets; ++b) {
    EXPECT_EQ(Histogram::bucket_of(Histogram::bucket_floor(b)), b) << b;
  }
}

TEST_F(ObsTest, HistogramRecordsCountSumAndBuckets) {
  Histogram& h = registry().histogram("test.hist.basic");
  for (const std::uint64_t v : {0u, 1u, 3u, 3u, 8u}) h.record(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 15u);
  EXPECT_EQ(h.bucket(0), 1u);  // the single 0
  EXPECT_EQ(h.bucket(2), 2u);  // the two 3s
  EXPECT_EQ(h.bucket(4), 1u);  // the 8
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

// ---- registry -------------------------------------------------------------

TEST_F(ObsTest, SnapshotIsNameSortedAndKindFilterable) {
  registry().counter("test.snap.z").add(1);
  registry().gauge("test.snap.a").set(2);
  registry().counter("test.snap.timing", MetricKind::kTiming).add(99);

  const auto rows = registry().snapshot();
  // Name-sorted: "a" before "timing" before "z" within this test's prefix.
  std::vector<std::string> names;
  for (const auto& row : rows) {
    if (row.name.rfind("test.snap.", 0) == 0) names.push_back(row.name);
  }
  EXPECT_EQ(names, (std::vector<std::string>{"test.snap.a", "test.snap.timing",
                                             "test.snap.z"}));

  const auto deterministic = registry().snapshot(MetricKind::kDeterministic);
  for (const auto& row : deterministic) {
    EXPECT_NE(row.name, "test.snap.timing") << "kTiming leaked into deterministic snapshot";
  }
}

TEST_F(ObsTest, ResetZeroesButKeepsReferencesValid) {
  Counter& c = registry().counter("test.reset.counter");
  c.add(5);
  const std::size_t size_before = registry().size();
  registry().reset();
  EXPECT_EQ(registry().size(), size_before);  // registration preserved
  EXPECT_EQ(c.value(), 0u);
  c.add(2);  // the old reference still works
  EXPECT_EQ(c.value(), 2u);
}

TEST_F(ObsTest, ReregistrationWithDifferentTypeIsAContractViolation) {
  const ScopedContractMode mode{ContractMode::kThrow};
  registry().counter("test.type.clash");
  EXPECT_THROW(registry().gauge("test.type.clash"), ContractViolation);
  EXPECT_THROW(registry().counter("test.type.clash", MetricKind::kTiming),
               ContractViolation);
}

// ---- exporters and deltas -------------------------------------------------

TEST_F(ObsTest, DeltaRowsSubtractCountersAndDropAllZeroRows) {
  Counter& moved = registry().counter("test.delta.moved");
  registry().counter("test.delta.idle").add(10);
  moved.add(10);
  const auto before = registry().snapshot(MetricKind::kDeterministic);
  moved.add(7);
  const auto delta = delta_rows(before, registry().snapshot(MetricKind::kDeterministic));
  ASSERT_EQ(delta.size(), 1u);
  EXPECT_EQ(delta[0].name, "test.delta.moved");
  EXPECT_EQ(delta[0].count, 7u);
}

TEST_F(ObsTest, DeltaRowsKeepGaugeAfterStateAndSubtractHistograms) {
  Gauge& g = registry().gauge("test.delta.gauge");
  Histogram& h = registry().histogram("test.delta.hist");
  g.record_max(4);
  h.record(3);
  const auto before = registry().snapshot(MetricKind::kDeterministic);
  g.record_max(9);
  h.record(3);
  h.record(100);
  const auto delta = delta_rows(before, registry().snapshot(MetricKind::kDeterministic));
  ASSERT_EQ(delta.size(), 2u);
  EXPECT_EQ(delta[0].name, "test.delta.gauge");
  EXPECT_EQ(delta[0].max, 9);  // gauges keep the after-state (max cannot be un-merged)
  EXPECT_EQ(delta[1].name, "test.delta.hist");
  EXPECT_EQ(delta[1].count, 2u);
  EXPECT_EQ(delta[1].sum, 103u);
  // Bucket deltas: one more in bucket_of(3) = 2, one in bucket_of(100) = 7.
  EXPECT_EQ(delta[1].buckets,
            (std::vector<std::pair<std::uint32_t, std::uint64_t>>{{2, 1}, {7, 1}}));
}

TEST_F(ObsTest, TextAndJsonExportersRenderEveryType) {
  registry().counter("test.export.c").add(3);
  registry().gauge("test.export.g").record_max(5);
  registry().histogram("test.export.h").record(2);
  const auto rows = registry().snapshot(MetricKind::kDeterministic);
  const std::string text = snapshot_text(rows);
  EXPECT_NE(text.find("test.export.c"), std::string::npos);
  EXPECT_NE(text.find("counter"), std::string::npos);
  EXPECT_NE(text.find("gauge"), std::string::npos);
  EXPECT_NE(text.find("histogram"), std::string::npos);
  const std::string json = snapshot_json(rows);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"name\": \"test.export.c\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 3"), std::string::npos);
}

// ---- runtime gating -------------------------------------------------------

TEST_F(ObsTest, MacrosAreInertWhenDisabled) {
  set_enabled(false);
  const std::size_t before = registry().size();
  UPN_OBS_COUNT("test.gated.counter", 1);
  UPN_OBS_GAUGE_MAX("test.gated.gauge", 5);
  UPN_OBS_HIST("test.gated.hist", 7);
  EXPECT_EQ(registry().size(), before) << "disabled macros must not register metrics";
  set_enabled(true);
  UPN_OBS_COUNT("test.gated.counter", 1);
  EXPECT_GT(registry().size(), before);
}

// ---- spans and context ----------------------------------------------------

TEST_F(ObsTest, SpansNestPerThread) {
  EXPECT_EQ(current_span_path(), "");
  {
    ScopedSpan outer{"outer"};
    EXPECT_EQ(current_span_path(), "outer");
    {
      ScopedSpan inner{"inner"};
      EXPECT_EQ(current_span_path(), "outer/inner");
    }
    EXPECT_EQ(current_span_path(), "outer");
  }
  EXPECT_EQ(current_span_path(), "");
}

TEST_F(ObsTest, ContextSuffixNamesInnermostSpanAndStep) {
  EXPECT_EQ(context_suffix(), "");
  ScopedSpan outer{"sim.universal.run"};
  {
    ScopedSpan inner{"sim.universal.route"};
    ScopedStep step{7};
    EXPECT_EQ(context_suffix(), " [in sim.universal.route, step 7]");
    set_current_step(8);
    EXPECT_EQ(context_suffix(), " [in sim.universal.route, step 8]");
  }
  // Step context is restored on scope exit; only the outer span remains.
  EXPECT_EQ(context_suffix(), " [in sim.universal.run]");
}

TEST_F(ObsTest, ContractViolationsCarryTheSpanContext) {
  const ScopedContractMode mode{ContractMode::kThrow};
  ScopedSpan span{"pebble.validator.replay"};
  ScopedStep step{3};
  try {
    UPN_REQUIRE(false, "synthetic failure");
    FAIL() << "UPN_REQUIRE(false) must throw in kThrow mode";
  } catch (const ContractViolation& violation) {
    const std::string what = violation.what();
    EXPECT_NE(what.find("synthetic failure"), std::string::npos) << what;
    EXPECT_NE(what.find("[in pebble.validator.replay, step 3]"), std::string::npos)
        << what;
  }
}

// ---- trace session --------------------------------------------------------

TEST_F(ObsTest, TraceSessionRecordsCompletedSpans) {
  const std::string path = ::testing::TempDir() + "obs_test.trace.json";
  start_trace(path);
  EXPECT_TRUE(trace_enabled());
  EXPECT_EQ(trace_path(), path);
  {
    ScopedSpan a{"phase.a"};
    ScopedSpan b{"phase.b"};
  }
  const std::vector<SpanEvent> events = trace_events();
  ASSERT_EQ(events.size(), 2u);
  // Completion order: the inner span closes first.
  EXPECT_STREQ(events[0].name, "phase.b");
  EXPECT_STREQ(events[1].name, "phase.a");
  EXPECT_GE(events[0].tid, 1u);
  EXPECT_TRUE(write_trace());
  stop_trace();
  EXPECT_FALSE(trace_enabled());
  EXPECT_TRUE(trace_events().empty());
  EXPECT_FALSE(write_trace()) << "no session: write_trace must report failure";
}

TEST_F(ObsTest, SpansAreContextOnlyWithoutATraceSession) {
  stop_trace();
  {
    ScopedSpan span{"phase.untraced"};
  }
  EXPECT_TRUE(trace_events().empty());
}

}  // namespace
}  // namespace upn::obs
