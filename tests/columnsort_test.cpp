// Leighton Columnsort tests.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/sorting/columnsort.hpp"
#include "src/sorting/oets.hpp"
#include "src/util/rng.hpp"

namespace upn {
namespace {

std::vector<std::uint64_t> random_values(std::size_t n, std::uint64_t seed,
                                         std::uint64_t modulus = 0) {
  Rng rng{seed};
  std::vector<std::uint64_t> values(n);
  for (auto& v : values) v = modulus ? rng() % modulus : rng();
  return values;
}

TEST(Columnsort, SingleColumnDegeneratesToSort) {
  auto values = random_values(17, 1);
  const ColumnsortStats stats = columnsort(values, 17, 1);
  EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));
  EXPECT_EQ(stats.column_sort_rounds, 1u);
}

class ColumnsortSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {};

TEST_P(ColumnsortSweep, SortsRandomInputs) {
  const auto [r, s] = GetParam();
  auto values = random_values(static_cast<std::size_t>(r) * s, 7 + r + s);
  const ColumnsortStats stats = columnsort(values, r, s);
  EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));
  EXPECT_EQ(stats.column_sort_rounds, 4u);
  EXPECT_EQ(stats.permutation_rounds, 4u);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ColumnsortSweep,
                         ::testing::Values(std::pair{2u, 2u}, std::pair{8u, 2u},
                                           std::pair{9u, 3u}, std::pair{32u, 4u},
                                           std::pair{50u, 5u}, std::pair{72u, 6u}));

TEST(Columnsort, SortsWithDuplicates) {
  auto values = random_values(32 * 4, 99, /*modulus=*/7);
  columnsort(values, 32, 4);
  EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));
}

TEST(Columnsort, WorksWithComparatorNetworkColumnSorter) {
  const ComparatorNetwork oets = make_odd_even_transposition_sorter(32);
  auto values = random_values(32 * 4, 5);
  columnsort(values, 32, 4, [&](std::span<std::uint64_t> column) { oets.apply(column); });
  EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));
}

TEST(Columnsort, PreservesMultiset) {
  auto values = random_values(50 * 5, 31, /*modulus=*/100);
  auto expected = values;
  std::sort(expected.begin(), expected.end());
  columnsort(values, 50, 5);
  EXPECT_EQ(values, expected);
}

TEST(Columnsort, RejectsViolatedPreconditions) {
  std::vector<std::uint64_t> values(12);
  EXPECT_THROW(columnsort(values, 4, 3), std::invalid_argument);   // r < 2(s-1)^2
  EXPECT_THROW(columnsort(values, 4, 2), std::invalid_argument);   // size mismatch
  std::vector<std::uint64_t> values10(10);
  EXPECT_THROW(columnsort(values10, 5, 2), std::invalid_argument); // r % s != 0
}

TEST(Columnsort, PickShape) {
  EXPECT_EQ(columnsort_pick_shape(16), 2u);    // 8x2
  EXPECT_EQ(columnsort_pick_shape(96), 4u);    // 24x4: 24 >= 18, 24 % 4 = 0
  EXPECT_EQ(columnsort_pick_shape(7), 1u);     // prime: single column
  EXPECT_GE(columnsort_pick_shape(1 << 12), 8u);
}

}  // namespace
}  // namespace upn
