// Tests for the paper's fixed subgraph G_0 (Definition 3.9).
#include <gtest/gtest.h>

#include "src/topology/g0.hpp"
#include "src/topology/properties.hpp"
#include "src/topology/random_regular.hpp"

namespace upn {
namespace {

TEST(G0Parameters, BlockParameterTracksSqrtLogM) {
  EXPECT_EQ(g0_block_parameter(2), 2u);     // clamped
  EXPECT_EQ(g0_block_parameter(16), 2u);    // sqrt(4) = 2
  EXPECT_EQ(g0_block_parameter(512), 3u);   // sqrt(9) = 3
  EXPECT_EQ(g0_block_parameter(65536), 4u); // sqrt(16) = 4
}

TEST(G0Parameters, GuestSizeRounding) {
  const std::uint32_t a = 2;
  EXPECT_EQ(g0_round_guest_size(1, a), 16u);    // minimum 4a^2
  EXPECT_EQ(g0_round_guest_size(16, a), 16u);   // already valid
  EXPECT_EQ(g0_round_guest_size(17, a), 64u);   // next side multiple of 2a... (isqrt(17)=4 -> side 4 -> 16? )
}

TEST(G0, StructureAtSmallSize) {
  Rng rng{42};
  const std::uint32_t m = 64;
  const std::uint32_t a = g0_block_parameter(m);
  const std::uint32_t n = g0_round_guest_size(100, a);
  const G0 g0 = make_g0(n, m, rng);
  EXPECT_EQ(g0.num_nodes(), n);
  EXPECT_EQ(g0.a, a);
  EXPECT_TRUE(is_connected(g0.graph));
  // Paper budget: degree 12.  Multitorus <= 8 plus expander 4.
  EXPECT_LE(g0.graph.max_degree(), 12u);
  EXPECT_TRUE(g0.expander.valid);
  // Blocks partition [n] into h <= n/(4a^2) tori of size 4a^2.
  EXPECT_EQ(g0.num_blocks() * 4 * a * a, n);
  std::vector<char> seen(n, 0);
  for (std::uint32_t j = 0; j < g0.num_blocks(); ++j) {
    const auto block = g0.block(j);
    EXPECT_EQ(block.size(), 4u * a * a);
    for (const NodeId v : block) {
      EXPECT_FALSE(seen[v]);
      seen[v] = 1;
    }
  }
}

TEST(G0, RejectsBadGuestSize) {
  Rng rng{1};
  EXPECT_THROW(make_g0(17, 64, rng), std::invalid_argument);
}

TEST(G0, PlantedGuestContainsG0) {
  Rng rng{7};
  const std::uint32_t m = 64;
  const std::uint32_t a = g0_block_parameter(m);
  const std::uint32_t n = g0_round_guest_size(64, a);
  const G0 g0 = make_g0(n, m, rng);
  const Graph guest = make_random_regular_with_subgraph(g0.graph, kGuestDegree, rng);
  for (const auto& [u, v] : g0.graph.edge_list()) {
    EXPECT_TRUE(guest.has_edge(u, v));
  }
  EXPECT_LE(guest.max_degree(), kGuestDegree);
}

}  // namespace
}  // namespace upn
