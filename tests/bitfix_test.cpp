// Bit-fixing oblivious routing and adversarial pattern tests.
#include <gtest/gtest.h>

#include "src/routing/adversarial.hpp"
#include "src/routing/bitfix.hpp"
#include "src/routing/policies.hpp"
#include "src/routing/router.hpp"
#include "src/topology/butterfly.hpp"
#include "src/util/rng.hpp"

namespace upn {
namespace {

std::vector<Packet> to_packets(const HhProblem& problem) {
  std::vector<Packet> packets;
  for (const Demand& d : problem.demands()) {
    Packet p;
    p.src = d.src;
    p.dst = d.dst;
    p.via = d.dst;
    packets.push_back(p);
  }
  return packets;
}

TEST(Words, BitReverse) {
  EXPECT_EQ(bit_reverse(0b0001, 4), 0b1000u);
  EXPECT_EQ(bit_reverse(0b1011, 4), 0b1101u);
  EXPECT_EQ(bit_reverse(0, 6), 0u);
  EXPECT_EQ(bit_reverse(bit_reverse(0b10110, 5), 5), 0b10110u);
}

TEST(Words, Transpose) {
  EXPECT_EQ(transpose_word(0b1100, 4), 0b0011u);
  EXPECT_EQ(transpose_word(0b1001, 4), 0b0110u);
  EXPECT_EQ(transpose_word(transpose_word(0b101100, 6), 6), 0b101100u);
}

class BitfixSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BitfixSweep, DeliversRandomPermutations) {
  const std::uint32_t d = GetParam();
  const Graph host = make_butterfly(d);
  ButterflyBitfixPolicy policy{d};
  SyncRouter router{host, PortModel::kMultiPort};
  Rng rng{d};
  const HhProblem problem = random_permutation_problem(host.num_nodes(), rng);
  const RouteResult result = router.route(to_packets(problem), policy);
  for (const Packet& p : result.packets) EXPECT_GE(p.delivered_at, 0);
  // Oblivious path length is bounded by 3d, so with N-node congestion the
  // finishing time is bounded too; sanity-check it terminates reasonably.
  EXPECT_LE(result.steps, 40 * (d + 1) * 4);
}

TEST_P(BitfixSweep, PathLengthsAreBounded) {
  const std::uint32_t d = GetParam();
  const Graph host = make_butterfly(d);
  ButterflyBitfixPolicy policy{d};
  SyncRouter router{host, PortModel::kMultiPort};
  // A single packet (no congestion): delivered within 3d+1 steps.
  const ButterflyLayout layout{d, false};
  std::vector<Packet> packets(1);
  packets[0].src = layout.id(d, layout.rows() - 1);
  packets[0].dst = layout.id(1, 0);
  packets[0].via = packets[0].dst;
  const RouteResult result = router.route(std::move(packets), policy);
  EXPECT_LE(result.steps, 3 * d + 1);
}

INSTANTIATE_TEST_SUITE_P(Dims, BitfixSweep, ::testing::Values(2u, 3u, 4u, 6u));

TEST(Adversarial, PatternsAreValidRelations) {
  const HhProblem rev = butterfly_bit_reversal(4);
  EXPECT_EQ(rev.size(), 16u);
  EXPECT_EQ(rev.h(), 1u);
  const HhProblem tr = butterfly_transpose(4);
  EXPECT_EQ(tr.size(), 16u);
  EXPECT_EQ(tr.h(), 1u);
  EXPECT_THROW((void)butterfly_transpose(5), std::invalid_argument);
}

/// Max number of packets whose (contention-free) path visits a single node:
/// the static congestion of an oblivious routing scheme.
std::uint32_t max_path_congestion(const Graph& host, RoutingPolicy& policy,
                                  const HhProblem& problem) {
  std::vector<Packet> packets = to_packets(problem);
  policy.prepare(host, packets);
  std::vector<std::uint32_t> visits(host.num_nodes(), 0);
  for (Packet& p : packets) {
    NodeId at = p.src;
    for (int hop = 0; hop < 10000; ++hop) {
      if (p.phase == 0 && at == p.via) p.phase = 1;
      if (p.phase == 1 && at == p.dst) break;
      at = policy.next_hop(host, at, p);
      ++visits[at];
    }
  }
  std::uint32_t worst = 0;
  for (const std::uint32_t v : visits) worst = std::max(worst, v);
  return worst;
}

TEST(Adversarial, BitfixSuffersOnTransposeValiantDoesNot) {
  // The classic separation: deterministic oblivious bit-fixing funnels
  // 2^{d/2} transpose packets through single middle-level switches;
  // Valiant's random intermediates smooth the static congestion out.
  const std::uint32_t d = 10;  // 1024 rows
  const Graph host = make_butterfly(d);
  const HhProblem problem = butterfly_transpose(d);

  ButterflyBitfixPolicy bitfix{d};
  const std::uint32_t fix_congestion = max_path_congestion(host, bitfix, problem);
  ValiantPolicy valiant{host, 4242};
  const std::uint32_t val_congestion = max_path_congestion(host, valiant, problem);

  EXPECT_GE(fix_congestion, 1u << (d / 2)) << "expected the 2^{d/2} funnel";
  EXPECT_GT(fix_congestion, val_congestion)
      << "bitfix " << fix_congestion << " vs valiant " << val_congestion;
}

TEST(Adversarial, RandomPermutationsDoNotFunnelBitfix) {
  // On random permutations the bit-fixing congestion stays low -- the bad
  // patterns are special, which is the point of the adversarial argument.
  const std::uint32_t d = 8;
  const Graph host = make_butterfly(d);
  const ButterflyLayout layout{d, false};
  Rng rng{5};
  HhProblem problem{layout.num_nodes()};
  const auto perm = rng.permutation(layout.rows());
  for (std::uint32_t r = 0; r < layout.rows(); ++r) {
    problem.add(layout.id(0, r), layout.id(d, perm[r]));
  }
  ButterflyBitfixPolicy bitfix{d};
  const std::uint32_t congestion = max_path_congestion(host, bitfix, problem);
  EXPECT_LT(congestion, 1u << (d / 2));
}

}  // namespace
}  // namespace upn
