// Golden snapshot regression for the online routing regime: one seeded
// churn run -- convergence, live kill/heal events, data-plane traffic --
// with the full deterministic routing.online.* metric snapshot pinned
// byte-for-byte, and replayed at thread widths {1, 2, 7} to prove the
// snapshot is thread-count-independent.  This binary holds exactly one
// test so no other workload can register extra metrics into the
// process-wide registry.
#include <gtest/gtest.h>

#include <string>

#include "src/fault/fault_plan.hpp"
#include "src/obs/obs.hpp"
#include "src/routing/online/online_router.hpp"
#include "src/topology/mesh.hpp"
#include "src/util/rng.hpp"

namespace upn {
namespace {

// Regenerate after an intentional instrumentation change by running this
// test and copying the "actual" block from the failure message.
const char* const kGoldenSnapshot =
    R"(counter   routing.online.announcements_sent  1559
counter   routing.online.delivery_retries    0
counter   routing.online.entries_expired     0
counter   routing.online.packets_delivered   64
counter   routing.online.packets_lost        0
counter   routing.online.packets_submitted   64
counter   routing.online.route_calls         1
counter   routing.online.steps               135
gauge     routing.online.table_entries_peak  value=0 max=240
counter   routing.online.table_revisions     255
counter   routing.online.transfers           184
histogram util.par.batch_size                count=135 sum=2160 [5:135]
gauge     util.par.max_batch                 value=0 max=16
counter   util.par.parallel_for_calls        135
counter   util.par.tasks_run                 2160
)";

std::string churn_run_snapshot(unsigned width) {
  obs::set_enabled(true);
  obs::registry().reset();

  const Graph host = make_mesh(4, 4);
  const FaultPlan plan = make_link_churn(host, 0.25, 0x90'1d, /*horizon=*/96);
  ThreadPool pool{width};
  OnlineRouterConfig config;
  config.pool = &pool;
  OnlineRouter router{host, plan, config};

  // Live through the churn, then converge, then route seeded traffic.
  while (router.now() < 96) (void)router.step();
  (void)router.run_until_stable(1u << 12);

  Rng rng{0x601d};
  std::vector<Packet> packets;
  while (packets.size() < 64) {
    const NodeId s = static_cast<NodeId>(rng.below(host.num_nodes()));
    const NodeId d = static_cast<NodeId>(rng.below(host.num_nodes()));
    if (s == d) continue;
    Packet p;
    p.src = s;
    p.dst = d;
    p.via = d;
    packets.push_back(p);
  }
  const OnlineRouteResult result = router.route(std::move(packets));
  EXPECT_EQ(result.delivered + result.lost, 64u);

  return obs::snapshot_text(obs::registry().snapshot(obs::MetricKind::kDeterministic));
}

TEST(OnlineGolden, ChurnRunSnapshotIsPinnedAtEveryThreadWidth) {
  const std::string serial = churn_run_snapshot(1);
  EXPECT_EQ(serial, kGoldenSnapshot)
      << "deterministic snapshot drifted; if intentional, update kGoldenSnapshot to:\n"
      << serial;
  for (const unsigned width : {2u, 7u}) {
    EXPECT_EQ(churn_run_snapshot(width), serial) << "width " << width;
  }
}

}  // namespace
}  // namespace upn
