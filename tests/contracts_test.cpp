// Tests for the UPN_REQUIRE / UPN_ENSURE / UPN_INVARIANT contract layer:
// the three failure modes of the macros themselves, and one throw-mode
// violation per instrumented module, so every contract surface is known to
// actually fire (not just compile).
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/embedding.hpp"
#include "src/fault/fault_plan.hpp"
#include "src/lowerbound/counting.hpp"
#include "src/lowerbound/dependency_graph.hpp"
#include "src/lowerbound/fragment_census.hpp"
#include "src/pebble/fragment.hpp"
#include "src/pebble/protocol.hpp"
#include "src/routing/hh_problem.hpp"
#include "src/routing/path_schedule.hpp"
#include "src/routing/policies.hpp"
#include "src/routing/router.hpp"
#include "src/topology/builders.hpp"
#include "src/topology/g0.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace upn {
namespace {

// ---- the macros themselves ------------------------------------------------

void require_fails() { UPN_REQUIRE(1 + 1 == 3, "arithmetic is broken"); }
void ensure_fails() { UPN_ENSURE(false, "postcondition"); }
void invariant_fails() { UPN_INVARIANT(false); }  // message is optional

TEST(Contracts, ThrowModeCarriesKindAndLocation) {
  ScopedContractMode scoped{ContractMode::kThrow};
  try {
    require_fails();
    FAIL() << "UPN_REQUIRE did not throw";
  } catch (const ContractViolation& e) {
    EXPECT_EQ(e.kind(), ContractKind::kRequire);
    const std::string what = e.what();
    EXPECT_NE(what.find("UPN_REQUIRE failed"), std::string::npos) << what;
    EXPECT_NE(what.find("1 + 1 == 3"), std::string::npos) << what;
    EXPECT_NE(what.find("contracts_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("arithmetic is broken"), std::string::npos) << what;
  }
  try {
    ensure_fails();
    FAIL() << "UPN_ENSURE did not throw";
  } catch (const ContractViolation& e) {
    EXPECT_EQ(e.kind(), ContractKind::kEnsure);
  }
  try {
    invariant_fails();
    FAIL() << "UPN_INVARIANT did not throw";
  } catch (const ContractViolation& e) {
    EXPECT_EQ(e.kind(), ContractKind::kInvariant);
  }
}

TEST(Contracts, ViolationIsALogicError) {
  ScopedContractMode scoped{ContractMode::kThrow};
  EXPECT_THROW(require_fails(), std::logic_error);
}

TEST(Contracts, PassingContractIsSilentInEveryMode) {
  for (const ContractMode mode :
       {ContractMode::kThrow, ContractMode::kLog, ContractMode::kAbort}) {
    ScopedContractMode scoped{mode};
    reset_contract_violation_count();
    UPN_REQUIRE(true, "never evaluated");
    UPN_ENSURE(2 + 2 == 4);
    UPN_INVARIANT(true);
    EXPECT_EQ(contract_violation_count(), 0u);
  }
}

TEST(Contracts, LogModeCountsAndContinues) {
  ScopedContractMode scoped{ContractMode::kLog};
  reset_contract_violation_count();
  EXPECT_NO_THROW(require_fails());
  EXPECT_NO_THROW(ensure_fails());
  EXPECT_NO_THROW(invariant_fails());
  EXPECT_EQ(contract_violation_count(), 3u);
  reset_contract_violation_count();
  EXPECT_EQ(contract_violation_count(), 0u);
}

TEST(Contracts, ScopedModeRestores) {
  const ContractMode before = contract_mode();
  {
    ScopedContractMode scoped{ContractMode::kLog};
    EXPECT_EQ(contract_mode(), ContractMode::kLog);
    {
      ScopedContractMode nested{ContractMode::kThrow};
      EXPECT_EQ(contract_mode(), ContractMode::kThrow);
    }
    EXPECT_EQ(contract_mode(), ContractMode::kLog);
  }
  EXPECT_EQ(contract_mode(), before);
}

using ContractsDeathTest = ::testing::Test;

TEST(ContractsDeathTest, AbortModeDies) {
  ScopedContractMode scoped{ContractMode::kAbort};
  EXPECT_DEATH(require_fails(), "UPN_REQUIRE failed");
}

// ---- one triggered violation per instrumented module ----------------------

TEST(ContractAdoption, EmbeddingLoadRejectsZeroHosts) {
  ScopedContractMode scoped{ContractMode::kThrow};
  EXPECT_THROW((void)embedding_load({0, 0, 1}, 0), ContractViolation);
  EXPECT_EQ(embedding_load({}, 0), 0u);  // empty embedding is the one legal m == 0 case
}

TEST(ContractAdoption, ProtocolAddBeforeBeginStep) {
  ScopedContractMode scoped{ContractMode::kThrow};
  Protocol protocol{2, 2, 1};
  EXPECT_THROW(protocol.add({OpKind::kGenerate, 0, {0, 1}, 0}), ContractViolation);
}

TEST(ContractAdoption, ProtocolOneOpPerProcessorPerStep) {
  ScopedContractMode scoped{ContractMode::kThrow};
  Protocol protocol{2, 2, 1};
  protocol.begin_step();
  protocol.add({OpKind::kGenerate, 0, {0, 1}, 0});
  EXPECT_THROW(protocol.add({OpKind::kGenerate, 0, {1, 1}, 0}), ContractViolation);
}

TEST(ContractAdoption, ProtocolLogModeDropsTheIllegalOp) {
  ScopedContractMode scoped{ContractMode::kLog};
  reset_contract_violation_count();
  Protocol protocol{2, 2, 1};
  protocol.add({OpKind::kGenerate, 0, {0, 1}, 0});  // no begin_step(): dropped
  EXPECT_EQ(protocol.num_ops(), 0u);
  EXPECT_EQ(protocol.host_steps(), 0u);
  EXPECT_EQ(contract_violation_count(), 1u);
  reset_contract_violation_count();
}

TEST(ContractAdoption, RouterRejectsForeignPacketEndpoints) {
  ScopedContractMode scoped{ContractMode::kThrow};
  const Graph host = make_cycle(4);
  SyncRouter router{host, PortModel::kSinglePort};
  GreedyPolicy policy{host};
  Packet packet;
  packet.src = 0;
  packet.dst = 9;  // not a host node
  packet.via = 0;
  EXPECT_THROW((void)router.route({packet}, policy), ContractViolation);
}

TEST(ContractAdoption, PathScheduleRejectsForeignDemand) {
  ScopedContractMode scoped{ContractMode::kThrow};
  const Graph host = make_cycle(4);
  HhProblem problem{8};
  problem.add(6, 7);  // valid for the problem, out of range for this host
  EXPECT_THROW((void)schedule_paths(host, problem), ContractViolation);
}

TEST(ContractAdoption, DependencyGraphRejectsForeignNodes) {
  ScopedContractMode scoped{ContractMode::kThrow};
  const Graph guest = make_cycle(4);
  EXPECT_THROW((void)dependency_predecessors(guest, 4), ContractViolation);
  EXPECT_THROW((void)dependency_ball(guest, 99, 1), ContractViolation);
  EXPECT_THROW((void)dependency_reaches(guest, 0, 17, 1), ContractViolation);
  EXPECT_THROW((void)spreading_profile(guest, 4, 2), ContractViolation);
}

TEST(ContractAdoption, FragmentMultiplicityNeedsEvenDegree) {
  ScopedContractMode scoped{ContractMode::kThrow};
  Fragment fragment;
  fragment.B = {{0}};
  fragment.b = {1};
  fragment.D = {{0}};
  EXPECT_THROW((void)log2_multiplicity_bound(fragment, 3), ContractViolation);
  EXPECT_THROW((void)log2_multiplicity_bound(fragment, 0), ContractViolation);
  Fragment ragged = fragment;
  ragged.b.push_back(1);  // |b| != |D|
  EXPECT_THROW((void)log2_multiplicity_bound(ragged, 2), ContractViolation);
}

TEST(ContractAdoption, FragmentCensusNeedsAGuestStep) {
  ScopedContractMode scoped{ContractMode::kThrow};
  Rng rng{1};
  const G0 g0 = make_g0(16, 8, rng);
  EXPECT_THROW((void)run_fragment_census(g0, 2, 4, 0, rng, CountingConstants{}),
               ContractViolation);
}

TEST(ContractAdoption, FaultPlanGeneratorsValidateInputs) {
  ScopedContractMode scoped{ContractMode::kThrow};
  const Graph host = make_cycle(4);
  EXPECT_THROW((void)make_uniform_link_faults(host, 1.5, 1), ContractViolation);
  EXPECT_THROW((void)make_uniform_node_faults(host, -0.1, 1), ContractViolation);
  EXPECT_THROW((void)make_region_fault(host, 4, 1, 0), ContractViolation);
}

}  // namespace
}  // namespace upn
