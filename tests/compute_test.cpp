// Tests for the synchronous computation model (the simulation ground truth).
#include <gtest/gtest.h>

#include "src/compute/machine.hpp"
#include "src/topology/builders.hpp"
#include "src/topology/random_regular.hpp"
#include "src/topology/torus.hpp"

namespace upn {
namespace {

TEST(NextConfig, DependsOnEveryInput) {
  const std::vector<Config> base{10, 20, 30};
  const Config reference = next_config(1, base);
  // Changing the own configuration changes the output.
  EXPECT_NE(next_config(2, base), reference);
  // Changing any neighbor changes the output.
  for (std::size_t i = 0; i < base.size(); ++i) {
    auto mutated = base;
    mutated[i] ^= 1;
    EXPECT_NE(next_config(1, mutated), reference);
  }
  // Changing neighbor ORDER changes the output (position-dependent mixing).
  const std::vector<Config> swapped{20, 10, 30};
  EXPECT_NE(next_config(1, swapped), reference);
}

TEST(InitialConfig, SeedAndNodeSensitive) {
  EXPECT_NE(initial_config(1, 0), initial_config(1, 1));
  EXPECT_NE(initial_config(1, 0), initial_config(2, 0));
}

TEST(SyncMachine, DeterministicAcrossRuns) {
  const Graph g = make_torus(4, 4);
  SyncMachine a{g, 99}, b{g, 99};
  a.run(10);
  b.run(10);
  EXPECT_EQ(a.configs(), b.configs());
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.time(), 10u);
}

TEST(SyncMachine, SeedChangesTrajectory) {
  const Graph g = make_torus(4, 4);
  SyncMachine a{g, 1}, b{g, 2};
  a.run(5);
  b.run(5);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(SyncMachine, InformationPropagatesAtSpeedOfGraph) {
  // On a path, perturbing node 0's seedless initial value must not affect
  // node 5 before 5 steps, and must affect it at step 5.
  const Graph path = make_path(8);
  SyncMachine base{path, 7};
  // A second machine with only node 0's initial config different: emulate
  // via direct stepping from modified snapshots.
  std::vector<Config> configs_a(8), configs_b(8);
  for (NodeId v = 0; v < 8; ++v) configs_a[v] = configs_b[v] = initial_config(7, v);
  configs_b[0] ^= 1;
  auto step = [&](std::vector<Config>& configs) {
    std::vector<Config> next(8);
    for (NodeId v = 0; v < 8; ++v) {
      std::vector<Config> nbrs;
      for (const NodeId u : path.neighbors(v)) nbrs.push_back(configs[u]);
      next[v] = next_config(configs[v], nbrs);
    }
    configs = next;
  };
  for (int t = 1; t <= 5; ++t) {
    step(configs_a);
    step(configs_b);
    if (t < 5) {
      EXPECT_EQ(configs_a[5], configs_b[5]) << "too-early influence at t=" << t;
    }
  }
  EXPECT_NE(configs_a[5], configs_b[5]) << "influence must arrive at t=5";
}

TEST(SyncMachine, RunReferenceMatchesStepwise) {
  Rng rng{3};
  const Graph g = make_random_regular(32, 4, rng);
  SyncMachine machine{g, 5};
  machine.run(7);
  EXPECT_EQ(run_reference(g, 5, 7), machine.configs());
}

TEST(SyncMachine, ZeroStepsKeepsInitialConfigs) {
  const Graph g = make_cycle(5);
  SyncMachine machine{g, 11};
  const auto before = machine.configs();
  machine.run(0);
  EXPECT_EQ(machine.configs(), before);
}

class MachineSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(MachineSweep, DigestStableAcrossTopologies) {
  Rng rng{GetParam()};
  const Graph g = make_random_regular(64, 6, rng);
  SyncMachine a{g, GetParam()};
  a.run(12);
  SyncMachine b{g, GetParam()};
  b.run(12);
  EXPECT_EQ(a.digest(), b.digest());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineSweep, ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace upn
