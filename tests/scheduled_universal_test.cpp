// Scheduled (off-line, host-agnostic) universal simulation tests.
#include <gtest/gtest.h>

#include "src/core/embedding.hpp"
#include "src/core/scheduled_universal.hpp"
#include "src/core/universal_sim.hpp"
#include "src/topology/debruijn.hpp"
#include "src/topology/mesh_of_trees.hpp"
#include "src/topology/random_regular.hpp"
#include "src/topology/torus.hpp"

namespace upn {
namespace {

TEST(ScheduledUniversal, VerifiesOnTorusHost) {
  Rng rng{77};
  const Graph host = make_torus(5, 5);
  const std::uint32_t n = 100;
  const Graph guest = make_random_regular(n, 8, rng);
  const auto embedding = make_random_embedding(n, host.num_nodes(), rng);
  const ScheduledUniversalResult result =
      run_scheduled_universal(guest, host, embedding, 4);
  EXPECT_TRUE(result.configs_match);
  EXPECT_GE(result.schedule_steps, std::max(result.congestion, result.dilation));
  EXPECT_EQ(result.host_steps, 4 * (result.schedule_steps + result.compute_steps));
}

TEST(ScheduledUniversal, WorksAcrossHostFamilies) {
  Rng rng{78};
  for (const Graph& host : {make_debruijn(4), make_mesh_of_trees(4)}) {
    const std::uint32_t n = 2 * host.num_nodes();
    const Graph guest = make_random_regular(n, 6, rng);
    const auto embedding = make_random_embedding(n, host.num_nodes(), rng);
    const ScheduledUniversalResult result =
        run_scheduled_universal(guest, host, embedding, 3);
    EXPECT_TRUE(result.configs_match) << host.name();
  }
}

TEST(ScheduledUniversal, OfflineCompetitiveWithOnlineSinglePort) {
  // The precomputed schedule (multiport accounting) should beat the online
  // single-port simulation and be in the same ballpark as online multiport.
  Rng rng{79};
  const Graph host = make_torus(6, 6);
  const std::uint32_t n = 144;
  const Graph guest = make_random_regular(n, kGuestDegree, rng);
  const auto embedding = make_random_embedding(n, host.num_nodes(), rng);
  const ScheduledUniversalResult offline =
      run_scheduled_universal(guest, host, embedding, 2);
  UniversalSimulator online{guest, host, embedding};
  UniversalSimOptions options;
  options.port_model = PortModel::kMultiPort;
  const UniversalSimResult multi = online.run(2, options);
  ASSERT_TRUE(offline.configs_match);
  ASSERT_TRUE(multi.configs_match);
  EXPECT_LT(offline.slowdown, 4.0 * multi.slowdown);
}

TEST(ScheduledUniversal, RejectsBadEmbedding) {
  const Graph guest = make_torus(4, 4);
  const Graph host = make_torus(3, 3);
  EXPECT_THROW((void)run_scheduled_universal(guest, host, std::vector<NodeId>(3, 0), 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace upn
