// Embedding quality metrics: load, dilation, congestion.
#include <gtest/gtest.h>

#include "src/core/embedding.hpp"
#include "src/core/embedding_metrics.hpp"
#include "src/topology/builders.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/mesh.hpp"
#include "src/topology/random_regular.hpp"
#include "src/topology/torus.hpp"

namespace upn {
namespace {

TEST(EmbeddingMetrics, IdentityEmbeddingOnSameTopology) {
  const Graph torus = make_torus(4, 4);
  std::vector<NodeId> identity(16);
  for (NodeId v = 0; v < 16; ++v) identity[v] = v;
  const EmbeddingMetrics metrics = analyze_embedding(torus, torus, identity);
  EXPECT_EQ(metrics.load, 1u);
  EXPECT_EQ(metrics.dilation, 1u);        // every guest edge is a host edge
  EXPECT_EQ(metrics.congestion, 1u);      // one path per edge
  EXPECT_DOUBLE_EQ(metrics.avg_dilation, 1.0);
  EXPECT_EQ(metrics.slowdown_lower_bound(), 1u);
}

TEST(EmbeddingMetrics, AllOnOneHostNode) {
  const Graph guest = make_cycle(8);
  const Graph host = make_path(3);
  const EmbeddingMetrics metrics = analyze_embedding(guest, host, std::vector<NodeId>(8, 1));
  EXPECT_EQ(metrics.load, 8u);
  EXPECT_EQ(metrics.dilation, 0u);  // all edges internal
  EXPECT_EQ(metrics.congestion, 0u);
  EXPECT_EQ(metrics.slowdown_lower_bound(), 8u);
}

TEST(EmbeddingMetrics, CycleOnPathHasKnownDilation) {
  // Embed C_6 on P_6 in order: edge (0,5) stretches across the whole path.
  const Graph guest = make_cycle(6);
  const Graph host = make_path(6);
  std::vector<NodeId> order(6);
  for (NodeId v = 0; v < 6; ++v) order[v] = v;
  const EmbeddingMetrics metrics = analyze_embedding(guest, host, order);
  EXPECT_EQ(metrics.dilation, 5u);
  // Every path edge carries the long edge plus the local edge: congestion 2.
  EXPECT_EQ(metrics.congestion, 2u);
  EXPECT_EQ(metrics.slowdown_lower_bound(), 5u);
}

TEST(EmbeddingMetrics, MeshOnButterflyDilationIsLogarithmic) {
  Rng rng{3};
  const Graph guest = make_mesh(8, 8);
  const Graph host = make_butterfly(3);  // 32 nodes
  const auto embedding = make_random_embedding(64, 32, rng);
  const EmbeddingMetrics metrics = analyze_embedding(guest, host, embedding);
  EXPECT_EQ(metrics.load, 2u);
  EXPECT_GE(metrics.dilation, 2u);
  EXPECT_LE(metrics.dilation, 8u);  // ~diameter of butterfly(3)
  EXPECT_GT(metrics.congestion, 0u);
}

TEST(EmbeddingMetrics, CongestionGrowsWithLoad) {
  Rng rng{4};
  const Graph host = make_butterfly(2);
  const Graph guest_small = make_random_regular(24, 4, rng);
  const Graph guest_large = make_random_regular(96, 4, rng);
  const auto m_small = analyze_embedding(
      guest_small, host, make_random_embedding(24, host.num_nodes(), rng));
  const auto m_large = analyze_embedding(
      guest_large, host, make_random_embedding(96, host.num_nodes(), rng));
  EXPECT_GT(m_large.congestion, m_small.congestion);
  EXPECT_GT(m_large.total_path_length, m_small.total_path_length);
}

TEST(EmbeddingMetrics, RejectsSizeMismatch) {
  const Graph guest = make_cycle(4);
  const Graph host = make_path(2);
  EXPECT_THROW((void)analyze_embedding(guest, host, std::vector<NodeId>(3, 0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace upn
