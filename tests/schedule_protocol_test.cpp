// Off-line schedule -> validated single-port pebble protocol.
#include <gtest/gtest.h>

#include "src/core/embedding.hpp"
#include "src/core/schedule_protocol.hpp"
#include "src/pebble/metrics.hpp"
#include "src/pebble/validator.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/random_regular.hpp"
#include "src/topology/torus.hpp"

namespace upn {
namespace {

TEST(ScheduleProtocol, OfflineProtocolValidates) {
  Rng rng{21};
  const std::uint32_t d = 3;
  const Graph host = make_butterfly(d);
  const std::uint32_t n = 2 * host.num_nodes();
  const Graph guest = make_random_regular(n, 8, rng);
  const auto embedding = make_random_embedding(n, host.num_nodes(), rng);
  const OfflineProtocolResult result =
      make_offline_universal_protocol(guest, d, embedding, 3);
  const ValidationResult validation = validate_protocol(result.protocol, guest, host);
  EXPECT_TRUE(validation.ok) << validation.error;
  EXPECT_EQ(result.protocol.guest_steps(), 3u);
  // Coloring expands the schedule by a small constant (Koenig: <= 4;
  // greedy: <= 7).
  EXPECT_GE(result.expansion_factor, 1.0);
  EXPECT_LE(result.expansion_factor, 7.0);
  EXPECT_GT(result.single_port_steps_per_guest_step,
            result.multiport_steps_per_guest_step);
}

TEST(ScheduleProtocol, ProtocolStepsMatchAnnouncedCounts) {
  Rng rng{22};
  const std::uint32_t d = 2;
  const Graph host = make_butterfly(d);
  const Graph guest = make_torus(6, 6);
  const auto embedding = make_random_embedding(36, host.num_nodes(), rng);
  const std::uint32_t T = 4;
  const OfflineProtocolResult result =
      make_offline_universal_protocol(guest, d, embedding, T);
  EXPECT_EQ(result.protocol.host_steps(), T * result.single_port_steps_per_guest_step);
}

TEST(ScheduleProtocol, MetricsSeeEveryGuestLevel) {
  Rng rng{23};
  const std::uint32_t d = 2;
  const Graph host = make_butterfly(d);
  const std::uint32_t n = 24;
  const Graph guest = make_random_regular(n, 6, rng);
  const auto embedding = make_random_embedding(n, host.num_nodes(), rng);
  const OfflineProtocolResult result =
      make_offline_universal_protocol(guest, d, embedding, 3);
  const ProtocolMetrics metrics{result.protocol};
  for (std::uint32_t t = 1; t <= 3; ++t) {
    for (NodeId i = 0; i < n; ++i) {
      EXPECT_GE(metrics.weight(i, t), 1u) << "pebble (" << i << "," << t << ")";
    }
  }
}

TEST(ScheduleProtocol, SinglePortStepsAreMatchings) {
  Rng rng{24};
  const std::uint32_t d = 2;
  const Graph host = make_butterfly(d);
  const std::uint32_t n = 24;
  const Graph guest = make_random_regular(n, 6, rng);
  const auto embedding = make_random_embedding(n, host.num_nodes(), rng);
  const OfflineProtocolResult result =
      make_offline_universal_protocol(guest, d, embedding, 2);
  // The Protocol class enforces one-op-per-proc structurally; spot-check
  // that sends and receives pair up inside steps.
  for (const auto& step : result.protocol.steps()) {
    std::size_t sends = 0, receives = 0;
    for (const Op& op : step) {
      sends += op.kind == OpKind::kSend;
      receives += op.kind == OpKind::kReceive;
    }
    EXPECT_EQ(sends, receives);
  }
}

TEST(ScheduleProtocol, RejectsBadEmbedding) {
  const Graph guest = make_torus(4, 4);
  EXPECT_THROW(
      (void)make_offline_universal_protocol(guest, 2, std::vector<NodeId>(3, 0), 1),
      std::invalid_argument);
}

}  // namespace
}  // namespace upn
