// Golden snapshot regression for one fault-aware routing run: the full
// deterministic `routing.sync.*` snapshot of a seeded butterfly
// route_with_faults run, rendered as text, pinned byte-for-byte.  This pin
// predates the data-oriented engine rewrite (docs/ROUTER_ENGINE.md): the
// fast engine must reproduce every counter, gauge, and histogram bucket of
// the reference store-and-forward loop exactly, so any drift in delivery
// order, retransmission accounting, or queue peaks shows up as a readable
// diff.  This binary holds exactly one test so no other workload can
// register extra metrics into the process-wide registry.
#include <gtest/gtest.h>

#include <string>

#include "src/fault/fault_plan.hpp"
#include "src/obs/obs.hpp"
#include "src/routing/hh_problem.hpp"
#include "src/routing/router.hpp"
#include "src/topology/butterfly.hpp"
#include "src/util/rng.hpp"

namespace upn {
namespace {

// Regenerate after an intentional instrumentation change by running this
// test and copying the "actual" block from the failure message.
const char* const kGoldenSnapshot =
    R"(counter   routing.sync.backoff_delays     57
histogram routing.sync.backoff_steps      count=57 sum=184 [2:34 3:19 4:3 5:1]
gauge     routing.sync.max_queue_depth    value=0 max=11
counter   routing.sync.packets_lost       8
counter   routing.sync.packets_submitted  96
counter   routing.sync.reroutes           7
counter   routing.sync.retransmissions    57
counter   routing.sync.route_calls        1
histogram routing.sync.step_max_queue     count=61 sum=407 [0:1 1:4 2:2 3:32 4:22]
counter   routing.sync.steps              61
counter   routing.sync.transfers          375
)";

TEST(ObsGoldenRouter, ButterflyRouteWithFaultsSnapshotIsPinned) {
  obs::set_enabled(true);
  obs::registry().reset();

  const Graph host = make_butterfly(3);  // m = 32
  FaultPlan plan = make_uniform_link_faults(host, 0.08, 5, /*step=*/4);
  plan = merge_plans(plan, make_uniform_drops(host, 0.15, 5, 0, 40));
  plan = merge_plans(plan, make_uniform_node_faults(host, 0.05, 7, /*step=*/8));

  Rng rng{23};
  const HhProblem problem = random_h_relation(host.num_nodes(), 3, rng);
  std::vector<Packet> packets;
  packets.reserve(problem.size());
  for (const Demand& d : problem.demands()) {
    Packet p;
    p.src = d.src;
    p.dst = d.dst;
    p.via = d.dst;
    packets.push_back(p);
  }

  // Routed by the internal greedy live-subgraph oracle (policy = nullptr):
  // every hop strictly decreases the surviving-subgraph distance, so the run
  // terminates under any fault mix (an external full-graph policy can
  // ping-pong with fault detours).
  SyncRouter router{host, PortModel::kSinglePort};
  FaultRouteOptions faults;
  faults.plan = &plan;
  faults.max_retries = 8;
  const RouteResult result = router.route_with_faults(std::move(packets), faults, nullptr);
  ASSERT_GT(result.steps, 0u);
  ASSERT_EQ(result.packets.size(), problem.size());

  const std::string actual =
      obs::snapshot_text(obs::registry().snapshot(obs::MetricKind::kDeterministic));
  EXPECT_EQ(actual, kGoldenSnapshot)
      << "deterministic snapshot drifted; if intentional, update kGoldenSnapshot to:\n"
      << actual;
}

}  // namespace
}  // namespace upn
