// Generating-pebble expansion dynamics (Def 3.16 / Prop 3.17) tests.
#include <gtest/gtest.h>

#include "src/core/embedding.hpp"
#include "src/core/universal_sim.hpp"
#include "src/lowerbound/expansion.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/expander.hpp"
#include "src/topology/random_regular.hpp"

namespace upn {
namespace {

TEST(Expansion, SimulatorProtocolRespectsProp317) {
  Rng rng{31337};
  const std::uint32_t n = 128, m = 12;
  // Guest: certified expander, upgraded to 16-regular.
  const Graph expander = make_random_expander(n, rng, 0.1);
  const ExpanderCertificate cert = verify_expander(expander, 0.1);
  ASSERT_TRUE(cert.valid);
  const Graph guest = make_random_regular_with_subgraph(expander, kGuestDegree, rng);
  const Graph host = make_butterfly(2);
  UniversalSimulator sim{guest, host, make_random_embedding(n, m, rng)};
  UniversalSimOptions options;
  options.emit_protocol = true;
  const UniversalSimResult result = sim.run(10, options);
  ASSERT_TRUE(result.configs_match);

  const ProtocolMetrics metrics{*result.protocol};
  const ExpansionReport report = analyze_expansion(metrics, cert.alpha, cert.beta);
  ASSERT_FALSE(report.steps.empty());
  // Proposition 3.17: at tau_t, e_t is capped at (alpha/beta) n.
  EXPECT_TRUE(report.all_ok);
  for (const auto& step : report.steps) {
    EXPECT_LE(step.frontier, step.bound + 1e-9);
  }
  // Our step-by-step simulator finishes level t-1 before starting t, so the
  // frontier at tau_t is in fact 0.
  EXPECT_GT(report.pebbles_per_phase, 0.0);
}

TEST(Expansion, TausAreMonotone) {
  Rng rng{99};
  const std::uint32_t n = 64, m = 6;
  const Graph guest = make_random_regular(n, 8, rng);
  const Graph host = make_butterfly(1);  // 4 nodes... dimension 1 -> 2 levels x 2 rows
  UniversalSimulator sim{guest, host, make_random_embedding(n, host.num_nodes(), rng)};
  (void)m;
  UniversalSimOptions options;
  options.emit_protocol = true;
  const UniversalSimResult result = sim.run(6, options);
  ASSERT_TRUE(result.configs_match);
  const ProtocolMetrics metrics{*result.protocol};
  const ExpansionReport report = analyze_expansion(metrics, 0.25, 1.2);
  std::uint32_t prev = 0;
  for (const auto& step : report.steps) {
    EXPECT_GE(step.tau, prev);
    prev = step.tau;
  }
}

TEST(Expansion, PhaseGapForcesWork) {
  // The paper's mechanism: between tau_j and tau_{j+1}, alpha(1-1/beta)n new
  // generating pebbles appear.  On a step-by-step simulator the gap is at
  // least the per-guest-step routing+compute time, which is positive.
  Rng rng{7};
  const std::uint32_t n = 64;
  const Graph guest = make_random_regular(n, 8, rng);
  const Graph host = make_butterfly(2);
  UniversalSimulator sim{guest, host, make_random_embedding(n, host.num_nodes(), rng)};
  UniversalSimOptions options;
  options.emit_protocol = true;
  const UniversalSimResult result = sim.run(8, options);
  const ProtocolMetrics metrics{*result.protocol};
  const ExpansionReport report = analyze_expansion(metrics, 0.2, 1.2);
  ASSERT_GE(report.steps.size(), 2u);
  EXPECT_GT(report.min_gap, 0u);
}

}  // namespace
}  // namespace upn
