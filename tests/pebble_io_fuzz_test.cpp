// Hostile-input hardening of read_protocol: a malformed corpus that must be
// rejected with a line-numbered error, plus seeded random mutations of a
// valid protocol that must either parse or throw -- never crash, hang, or
// allocate unboundedly.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/pebble/io.hpp"
#include "src/util/rng.hpp"

namespace upn {
namespace {

std::string valid_text() {
  Protocol protocol{3, 4, 2};
  protocol.begin_step();
  protocol.add(Op{OpKind::kGenerate, 0, PebbleType{0, 1}, 0});
  protocol.add(Op{OpKind::kSend, 1, PebbleType{2, 0}, 2});
  protocol.add(Op{OpKind::kReceive, 2, PebbleType{2, 0}, 1});
  protocol.begin_step();
  protocol.add(Op{OpKind::kGenerate, 1, PebbleType{1, 1}, 0});
  std::ostringstream out;
  write_protocol(out, protocol);
  return out.str();
}

void expect_rejected(const std::string& text) {
  std::stringstream buffer{text};
  try {
    (void)read_protocol(buffer);
    FAIL() << "accepted malformed input:\n" << text;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("line "), std::string::npos)
        << "error lacks a line number: " << e.what();
  }
}

TEST(PebbleIoFuzz, MalformedCorpusIsRejectedWithLineNumbers) {
  const std::string corpus[] = {
      "",                                              // empty input
      "\n",                                            // blank header
      "upn-protocol\n",                                // truncated header
      "upn-protocol 1 3 4\n",                          // missing T
      "upn-protocol 1 3 4 2 9\n",                      // extra header field
      "upn-protocol 2 3 4 2\n",                        // unknown version
      "mystery 1 3 4 2\n",                             // wrong magic
      "upn-protocol 1 -3 4 2\n",                       // negative guest count
      "upn-protocol 1 3 4 -1\n",                       // negative step count
      "upn-protocol 1 3 4 2x\n",                       // trailing junk in number
      "upn-protocol 1 3 4294967296 2\n",               // overflows uint32_t
      "upn-protocol 1 3 99999999999999999999 2\n",     // overflows harder
      "upn-protocol 1 3 67108865 2\n",                 // above dimension cap
      "upn-protocol 1 3 4 2\nG 0 0 1\n",               // op before first step
      "upn-protocol 1 3 4 2\nstep extra\n",            // garbage after step
      "upn-protocol 1 3 4 2\nstep\nG 0 0\n",           // generate missing fields
      "upn-protocol 1 3 4 2\nstep\nS 0 0 0\n",         // send missing partner
      "upn-protocol 1 3 4 2\nstep\nR 0 0 0\n",         // receive missing partner
      "upn-protocol 1 3 4 2\nstep\nG 0 0 1 7\n",       // generate with partner
      "upn-protocol 1 3 4 2\nstep\nS 0 0 0 1 9\n",     // send with extra field
      "upn-protocol 1 3 4 2\nstep\nQ 0 0 1\n",         // unknown op kind
      "upn-protocol 1 3 4 2\nstep\nGG 0 0 1\n",        // overlong op kind
      "upn-protocol 1 3 4 2\nstep\nG -1 0 1\n",        // negative processor
      "upn-protocol 1 3 4 2\nstep\nG 0 0 1.5\n",       // fractional time
      "upn-protocol 1 3 4 2\nstep\nS 0 0 0 4\n",       // partner out of range
      "upn-protocol 1 3 4 2\nstep\nG 9 0 1\n",         // processor out of range
      "upn-protocol 1 3 4 2\nstep\nG 0 7 1\n",         // pebble node out of range
      "upn-protocol 1 3 4 2\nstep\nG 0 0 3\n",         // pebble time out of range
      "upn-protocol 1 3 4 2\nstep\nG 0 0 1\nG 0 1 1\n",  // proc acts twice
      "upn-protocol 1 3 4 2\nstep\nS 1 2 0 2\nS 1 2 0 2\n",  // duplicate send
  };
  for (const std::string& text : corpus) expect_rejected(text);
}

TEST(PebbleIoFuzz, OverlongTokenAndLineAreRejected) {
  expect_rejected("upn-protocol 1 3 4 " + std::string(64, '2') + "\n");
  expect_rejected("upn-protocol 1 3 4 2\nstep\nG 0 0 " + std::string(5000, '1') + "\n");
}

TEST(PebbleIoFuzz, HugeHeaderDoesNotAllocate) {
  // 4294967295 hosts would be a 16 GiB proc_used_step_ vector if the parser
  // trusted the header.
  expect_rejected("upn-protocol 1 4294967295 4294967295 4294967295\n");
}

TEST(PebbleIoFuzz, TruncationsOfValidInputNeverCrash) {
  const std::string text = valid_text();
  for (std::size_t len = 0; len < text.size(); ++len) {
    std::stringstream buffer{text.substr(0, len)};
    try {
      (void)read_protocol(buffer);
    } catch (const std::runtime_error&) {
      // Rejection is fine; crashing or accepting garbage is not.
    }
  }
}

TEST(PebbleIoFuzz, RandomByteMutationsNeverCrash) {
  const std::string text = valid_text();
  const char alphabet[] = "0123456789GSR step\n-x";
  Rng rng{0xf022};
  for (int iter = 0; iter < 500; ++iter) {
    std::string mutated = text;
    const std::size_t edits = 1 + rng.below(4);
    for (std::size_t e = 0; e < edits; ++e) {
      const std::size_t pos = rng.below(mutated.size());
      mutated[pos] = alphabet[rng.below(sizeof(alphabet) - 1)];
    }
    std::stringstream buffer{mutated};
    try {
      (void)read_protocol(buffer);
    } catch (const std::runtime_error&) {
      // Expected for most mutations.
    }
  }
}

}  // namespace
}  // namespace upn
