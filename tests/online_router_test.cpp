// Unit coverage for the online routing regime: route-table semantics,
// protocol convergence on static hosts, graceful degradation under faults
// and repairs, and the table-policy bridge into the offline router.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/online_adaptive_sim.hpp"
#include "src/fault/fault_plan.hpp"
#include "src/routing/online/online_router.hpp"
#include "src/routing/online/table_policy.hpp"
#include "src/routing/policies.hpp"
#include "src/topology/builders.hpp"
#include "src/topology/mesh.hpp"
#include "src/topology/properties.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/rng.hpp"

namespace upn {
namespace {

std::vector<Packet> all_pairs_packets(const Graph& g) {
  std::vector<Packet> packets;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    for (NodeId d = 0; d < g.num_nodes(); ++d) {
      if (s == d) continue;
      Packet p;
      p.src = s;
      p.dst = d;
      p.via = d;
      packets.push_back(p);
    }
  }
  return packets;
}

TEST(RouteTable, FreshnessFirstAcceptance) {
  RouteTable table{0};
  // New destination: inserted regardless of sequence.
  EXPECT_EQ(table.apply(RouteAnnouncement{5, 20, 1}, 1, 10), TableUpdate::kRevised);
  ASSERT_NE(table.find(5), nullptr);
  EXPECT_EQ(table.find(5)->metric, 2u);  // one hop through via
  EXPECT_EQ(table.next_hop(5), 1u);

  // Better metric but news too stale to believe: the 1-hop announcement may
  // lag the incumbent by at most seq_lag_per_hop * 1 = 8 hellos; 11 + 8 < 20.
  EXPECT_EQ(table.apply(RouteAnnouncement{5, 11, 0}, 2, 11), TableUpdate::kIgnored);
  EXPECT_EQ(table.next_hop(5), 1u);

  // Equal sequence, worse-or-equal metric: ignored.
  EXPECT_EQ(table.apply(RouteAnnouncement{5, 20, 1}, 2, 11), TableUpdate::kIgnored);

  // Strictly better metric within the staleness allowance: adopted.
  EXPECT_EQ(table.apply(RouteAnnouncement{5, 12, 0}, 2, 12), TableUpdate::kRevised);
  EXPECT_EQ(table.next_hop(5), 2u);
  EXPECT_EQ(table.find(5)->metric, 1u);

  // Fresher sequence over the SAME route: a heartbeat, not a revision.
  EXPECT_EQ(table.apply(RouteAnnouncement{5, 21, 0}, 2, 13), TableUpdate::kRefreshed);
  EXPECT_EQ(table.find(5)->seq, 21u);
  EXPECT_EQ(table.find(5)->last_heard, 13u);

  // A different neighbor with the SAME metric cannot steal the route just
  // by being marginally fresher -- that's the anti-flapping gate.
  EXPECT_EQ(table.apply(RouteAnnouncement{5, 22, 0}, 3, 14), TableUpdate::kIgnored);
  EXPECT_EQ(table.next_hop(5), 2u);

  // ... but a sequence gap beyond seq_lag_per_hop * (metric + 1) means the
  // incumbent path stopped carrying heartbeats: presumed broken, displaced.
  // The incumbent holds (metric 1, seq 21), so the threshold is 4 * 2 = 8:
  // a gap of exactly 8 still tolerated, 9 convicts.
  EXPECT_EQ(table.apply(RouteAnnouncement{5, 29, 0}, 3, 14, /*seq_lag_per_hop=*/4),
            TableUpdate::kIgnored);
  EXPECT_EQ(table.apply(RouteAnnouncement{5, 30, 0}, 3, 14, /*seq_lag_per_hop=*/4),
            TableUpdate::kRevised);
  EXPECT_EQ(table.next_hop(5), 3u);

  // Announcements about self never enter the table.
  EXPECT_EQ(table.apply(RouteAnnouncement{0, 99, 0}, 1, 15), TableUpdate::kIgnored);
  EXPECT_EQ(table.find(0), nullptr);
}

TEST(RouteTable, ExpiryIsPerOriginAndSilenceDriven) {
  RouteTable table{0};
  (void)table.apply(RouteAnnouncement{5, 1, 0}, 1, 10);
  (void)table.apply(RouteAnnouncement{6, 1, 0}, 2, 10);
  EXPECT_EQ(table.expire(20, 10), 0u);  // exactly at the window edge: kept
  EXPECT_EQ(table.size(), 2u);

  // Only a re-announcement of THAT origin from the incumbent refreshes an
  // entry -- a neighbor cannot vouch for routes it no longer claims.
  EXPECT_EQ(table.apply(RouteAnnouncement{5, 2, 0}, 1, 25), TableUpdate::kRefreshed);
  EXPECT_EQ(table.expire(31, 10), 1u);  // origin 6 went silent
  EXPECT_NE(table.find(5), nullptr);
  EXPECT_EQ(table.find(6), nullptr);
}

TEST(RouteTable, MetricCeilingDropsInflatedRoutes) {
  RouteTable table{0};
  // Over the ceiling: not inserted and the staleness timer untouched, so
  // count-to-infinity corpses drain instead of resurrecting each other.
  EXPECT_EQ(table.apply(RouteAnnouncement{9, 1, 5}, 1, 10, 8, /*max_metric=*/5),
            TableUpdate::kIgnored);
  EXPECT_EQ(table.find(9), nullptr);
  // At the ceiling exactly: an honest longest route, accepted.
  EXPECT_EQ(table.apply(RouteAnnouncement{9, 1, 4}, 1, 10, 8, /*max_metric=*/5),
            TableUpdate::kRevised);
  ASSERT_NE(table.find(9), nullptr);
  EXPECT_EQ(table.find(9)->metric, 5u);
}

TEST(RouteTable, ComposeRotatesTheCappedWindow) {
  RouteTable table{0};
  for (NodeId d = 1; d <= 6; ++d) {
    (void)table.apply(RouteAnnouncement{d, 1, d - 1}, 1, 5);
  }
  // cap = 3: self + a rotating 2-route window over 6 entries.
  std::vector<char> announced(7, 0);
  for (std::uint32_t seq = 0; seq < 3; ++seq) {
    const std::vector<RouteAnnouncement> hello = table.compose(seq, 3);
    ASSERT_EQ(hello.size(), 3u);
    EXPECT_EQ(hello[0], (RouteAnnouncement{0, seq, 0}));  // self first
    for (std::size_t i = 1; i < hello.size(); ++i) announced[hello[i].origin] = 1;
  }
  // Three hellos x window 2 = 6 slots cover all 6 entries exactly once.
  for (NodeId d = 1; d <= 6; ++d) EXPECT_EQ(announced[d], 1) << d;
  // cap = 1 announces self only.
  EXPECT_EQ(table.compose(9, 1).size(), 1u);
}

TEST(OnlineRouter, ConvergesToShortestPathsOnStaticHost) {
  const Graph host = make_mesh(4, 4);
  const FaultPlan plan;  // no churn
  OnlineRouterConfig config;
  config.announce_cap = 4;  // force rotation to do the propagation work
  OnlineRouter router{host, plan, config};
  const ConvergenceReport report = router.run_until_stable(4096);
  EXPECT_TRUE(report.stable);
  EXPECT_TRUE(router.loop_free());
  const std::vector<std::uint32_t> dist = bfs_distances(host, 0);
  for (NodeId d = 1; d < host.num_nodes(); ++d) {
    EXPECT_EQ(router.route_hops(0, d), dist[d]) << "dest " << d;
  }
}

TEST(OnlineRouter, DeliversAllPairsOnStaticHost) {
  const Graph host = make_mesh(3, 3);
  const FaultPlan plan;
  OnlineRouter router{host, plan, {}};
  (void)router.run_until_stable(4096);
  const OnlineRouteResult result = router.route(all_pairs_packets(host));
  EXPECT_EQ(result.lost, 0u);
  EXPECT_EQ(result.delivered, result.packets.size());
  EXPECT_GT(result.transfers, 0u);
  for (const Packet& p : result.packets) EXPECT_GE(p.delivered_at, 0);
}

TEST(OnlineRouter, ReroutesAroundALinkDeathDetectedBySilence) {
  // A ring: killing one link leaves exactly one (longer) route.
  GraphBuilder builder{6, "ring6"};
  for (NodeId v = 0; v < 6; ++v) builder.add_edge(v, (v + 1) % 6);
  const Graph host = std::move(builder).build();

  FaultPlan plan;
  plan.add_link_fault(LinkFault{0, 1, 40});
  OnlineRouter router{host, plan, {}};
  (void)router.run_until_stable(30);  // converge BEFORE the fault lands
  EXPECT_EQ(router.route_hops(0, 1), 1u);

  // Step past the fault and let silence expire the dead-link routes.
  (void)router.run_until_stable(4096);
  EXPECT_TRUE(router.loop_free());
  EXPECT_EQ(router.route_hops(0, 1), 5u);  // the long way around

  Packet p;
  p.src = 0;
  p.dst = 1;
  p.via = 1;
  const OnlineRouteResult result = router.route({p});
  EXPECT_EQ(result.lost, 0u);
  EXPECT_EQ(result.delivered, 1u);
}

TEST(OnlineRouter, RelearnsRoutesAfterRepair) {
  GraphBuilder builder{6, "ring6"};
  for (NodeId v = 0; v < 6; ++v) builder.add_edge(v, (v + 1) % 6);
  const Graph host = std::move(builder).build();

  FaultPlan plan;
  plan.add_link_fault(LinkFault{0, 1, 10});
  plan.add_link_repair(LinkRepair{0, 1, 60});
  OnlineRouter router{host, plan, {}};
  while (router.now() <= 60) (void)router.step();  // live through kill AND heal
  (void)router.run_until_stable(4096);
  EXPECT_TRUE(router.loop_free());
  EXPECT_EQ(router.route_hops(0, 1), 1u);  // the healed link is back in use
}

TEST(OnlineRouter, DeadDestinationIsLostNotFatal) {
  const Graph host = make_mesh(3, 3);
  FaultPlan plan;
  plan.add_node_fault(NodeFault{8, 0});
  OnlineRouter router{host, plan, {}};
  (void)router.run_until_stable(4096);

  Packet doomed;
  doomed.src = 0;
  doomed.dst = 8;
  doomed.via = 8;
  Packet fine;
  fine.src = 0;
  fine.dst = 4;
  fine.via = 4;
  const OnlineRouteResult result = router.route({doomed, fine});
  EXPECT_EQ(result.lost, 1u);
  EXPECT_EQ(result.delivered, 1u);
  EXPECT_EQ(result.packets[0].lost, 1);
  EXPECT_EQ(result.packets[1].lost, 0);
}

TEST(OnlineRouter, PartitionExhaustsRetriesInsteadOfLivelocking) {
  // Two islands: 0-1 and 2-3; no route can ever form between them.
  GraphBuilder builder{4, "islands"};
  builder.add_edge(0, 1);
  builder.add_edge(2, 3);
  const Graph host = std::move(builder).build();
  OnlineRouter router{host, FaultPlan{}, {}};
  (void)router.run_until_stable(4096);

  Packet p;
  p.src = 0;
  p.dst = 3;
  p.via = 3;
  const OnlineRouteResult result = router.route({p}, /*max_steps=*/5000);
  EXPECT_EQ(result.lost, 1u);
  EXPECT_GT(result.retries, 0u);
  EXPECT_LT(result.steps, 5000u);  // retries ran out well before the ceiling
}

TEST(OnlineRouter, TablePolicyDrivesTheOfflineRouter) {
  const Graph host = make_mesh(3, 3);
  OnlineRouter router{host, FaultPlan{}, {}};
  (void)router.run_until_stable(4096);

  OnlineTablePolicy policy{router};
  EXPECT_EQ(policy.name(), "online-tables");
  SyncRouter sync{host, PortModel::kMultiPort};
  const RouteResult result = sync.route(all_pairs_packets(host), policy);
  EXPECT_EQ(result.packets_lost, 0u);
}

TEST(OnlineAdaptiveSim, ExactWithoutChurn) {
  const Graph host = make_mesh(3, 3);
  Rng rng{0x51u};
  const Graph guest = make_random_regular(18, 3, rng);
  std::vector<NodeId> embedding;
  for (NodeId u = 0; u < 18; ++u) embedding.push_back(u % host.num_nodes());
  const FaultPlan quiet;
  OnlineAdaptiveSimulator sim{guest, host, embedding, quiet};
  const OnlineAdaptiveSimResult result = sim.run(3);
  EXPECT_TRUE(result.warmup_stable);
  EXPECT_EQ(result.packets_lost, 0u);
  EXPECT_EQ(result.stale_reads, 0u);
  EXPECT_TRUE(result.configs_match);  // zero churn: the regime must be exact
  EXPECT_GT(result.slowdown, 0.0);
  EXPECT_EQ(result.host_steps, result.comm_steps + result.compute_steps);
}

TEST(OnlineAdaptiveSim, SurvivesChurnWithStaleReadsNotCrashes) {
  const Graph host = make_mesh(3, 3);
  Rng rng{0x52u};
  const Graph guest = make_random_regular(18, 3, rng);
  std::vector<NodeId> embedding;
  for (NodeId u = 0; u < 18; ++u) embedding.push_back(u % host.num_nodes());
  const FaultPlan plan = make_link_churn(host, 0.3, 0xc0a1, /*horizon=*/1u << 14);
  OnlineAdaptiveSimulator sim{guest, host, embedding, plan};
  OnlineAdaptiveSimOptions options;
  options.warmup_rounds = 128;  // route over a still-learning protocol
  const OnlineAdaptiveSimResult result = sim.run(3, options);
  // Graceful degradation: the run always completes with a verdict per
  // packet, and every loss shows up as exactly one stale read.
  EXPECT_EQ(result.stale_reads, result.packets_lost);
  EXPECT_GT(result.packets_routed, 0u);
  EXPECT_GT(result.slowdown, 0.0);
}

TEST(OnlineRouter, DeliveryVerdictsAreCanonical) {
  std::vector<Packet> packets(2);
  packets[0].id = 1;
  packets[0].src = 3;
  packets[0].dst = 4;
  packets[0].lost = 1;
  packets[1].id = 0;
  packets[1].src = 7;
  packets[1].dst = 2;
  EXPECT_EQ(delivery_verdicts(packets), "0 7->2 ok\n1 3->4 lost\n");
}

}  // namespace
}  // namespace upn
