// Off-line path scheduling on arbitrary hosts (C + D scheduling).
#include <gtest/gtest.h>

#include "src/routing/path_schedule.hpp"
#include "src/topology/builders.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/debruijn.hpp"
#include "src/topology/torus.hpp"
#include "src/util/rng.hpp"

namespace upn {
namespace {

TEST(PathSchedule, SingleDemandTakesDistanceSteps) {
  const Graph p = make_path(7);
  HhProblem problem{7};
  problem.add(0, 6);
  const PathSchedule schedule = schedule_paths(p, problem);
  EXPECT_EQ(schedule.dilation, 6u);
  EXPECT_EQ(schedule.congestion, 1u);
  EXPECT_EQ(schedule.makespan, 6u);
  EXPECT_TRUE(validate_path_schedule(p, problem, schedule));
}

TEST(PathSchedule, EmptyProblem) {
  const Graph p = make_path(3);
  const HhProblem problem{3};
  const PathSchedule schedule = schedule_paths(p, problem);
  EXPECT_EQ(schedule.makespan, 0u);
  EXPECT_TRUE(validate_path_schedule(p, problem, schedule));
}

TEST(PathSchedule, HeadOnTrafficSharesLinksCleanly) {
  // Two packets crossing a path in opposite directions use opposite
  // directed links: no interference.
  const Graph p = make_path(5);
  HhProblem problem{5};
  problem.add(0, 4);
  problem.add(4, 0);
  const PathSchedule schedule = schedule_paths(p, problem);
  EXPECT_EQ(schedule.makespan, 4u);
  EXPECT_TRUE(validate_path_schedule(p, problem, schedule));
}

class PathScheduleSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PathScheduleSweep, MakespanNearCongestionPlusDilation) {
  Rng rng{GetParam()};
  const Graph host = make_torus(6, 6);
  const HhProblem problem = random_h_relation(host.num_nodes(), 3, rng);
  const PathSchedule schedule = schedule_paths(host, problem);
  ASSERT_TRUE(validate_path_schedule(host, problem, schedule));
  EXPECT_GE(schedule.makespan, std::max(schedule.congestion, schedule.dilation));
  // The greedy schedule should be well under the C*D trivial bound and
  // within a small factor of C + D.
  EXPECT_LE(schedule.makespan, 3 * (schedule.congestion + schedule.dilation));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PathScheduleSweep, ::testing::Values(1u, 2u, 3u, 4u));

TEST(PathSchedule, WorksOnButterflyAndDeBruijn) {
  Rng rng{9};
  for (const Graph& host : {make_butterfly(3), make_debruijn(5)}) {
    const HhProblem problem = random_permutation_problem(host.num_nodes(), rng);
    const PathSchedule schedule = schedule_paths(host, problem);
    EXPECT_TRUE(validate_path_schedule(host, problem, schedule)) << host.name();
  }
}

TEST(PathSchedule, GreedyMoveSequenceIsPinned) {
  // Regression pin for the data-oriented rewrite of the scheduler's link
  // bookkeeping (std::map -> sort + sweep): the full move sequence for a
  // fixed torus instance must stay bit-for-bit what the tree-based
  // implementation produced.  If an intentional algorithm change moves this
  // fingerprint, re-derive it and update the constants in one commit.
  Rng rng{1};
  const Graph host = make_torus(6, 6);
  const HhProblem problem = random_h_relation(host.num_nodes(), 3, rng);
  const PathSchedule schedule = schedule_paths(host, problem);
  ASSERT_TRUE(validate_path_schedule(host, problem, schedule));
  std::uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](std::uint64_t v) {
    hash ^= v;
    hash *= 1099511628211ull;
  };
  for (const auto& step : schedule.moves) {
    for (const auto& move : step) {
      mix(move[0]);
      mix(move[1]);
      mix(move[2]);
    }
  }
  EXPECT_EQ(schedule.makespan, 7u);
  EXPECT_EQ(schedule.congestion, 7u);
  EXPECT_EQ(schedule.dilation, 6u);
  EXPECT_EQ(schedule.total_moves, 320u);
  EXPECT_EQ(hash, 2435169443490740449ull);
}

TEST(PathSchedule, ValidatorCatchesCorruption) {
  const Graph p = make_path(4);
  HhProblem problem{4};
  problem.add(0, 3);
  PathSchedule schedule = schedule_paths(p, problem);
  ASSERT_FALSE(schedule.moves.empty());
  schedule.moves[0][0][2] = 0;  // teleport the first hop's target
  EXPECT_FALSE(validate_path_schedule(p, problem, schedule));
}

}  // namespace
}  // namespace upn
