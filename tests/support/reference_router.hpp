// The pre-rewrite synchronous store-and-forward router, preserved verbatim
// as the differential-testing oracle for the data-oriented fast engine
// (src/routing/router.cpp, docs/ROUTER_ENGINE.md).
//
// This is the node-based engine the repo shipped before the CSR/SoA rewrite:
// per-node vectors of std::deque port queues, Graph::neighbors span queries
// every step, and switch-based placement.  It is deliberately NOT part of
// the src/ library -- it lives in tests/ support code so the hot-path
// analysis ratchet never sees its deques -- and it must never be "optimized":
// its entire value is that it computes the router semantics the slow,
// obviously-correct way.  tests/router_differential_test.cpp and the
// differential fuzzer assert byte-identical RouteResults (including the
// full transfer log) from both engines on identical inputs, for both port
// models, fault-free and under FaultPlans.
//
// The API mirrors SyncRouter exactly; policies, packets, fault options, and
// results are the shared types from src/routing/router.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/routing/router.hpp"
#include "src/topology/graph.hpp"

namespace upn::testing {

/// Drop-in reference implementation of SyncRouter's routing semantics.
class ReferenceRouter {
 public:
  ReferenceRouter(const Graph& graph, PortModel port_model);

  /// Reference semantics of SyncRouter::route.
  [[nodiscard]] RouteResult route(std::vector<Packet> packets, RoutingPolicy& policy,
                                  bool record_transfers = false,
                                  std::uint32_t max_steps = 1u << 22);

  /// Reference semantics of SyncRouter::route_with_faults.
  [[nodiscard]] RouteResult route_with_faults(std::vector<Packet> packets,
                                              const FaultRouteOptions& faults,
                                              RoutingPolicy* policy = nullptr,
                                              bool record_transfers = false,
                                              std::uint32_t max_steps = 1u << 22);

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] PortModel port_model() const noexcept { return port_model_; }

 private:
  [[nodiscard]] RouteResult route_impl(std::vector<Packet> packets, RoutingPolicy* policy,
                                       const FaultRouteOptions* faults, bool record_transfers,
                                       std::uint32_t max_steps);

  const Graph* graph_;
  PortModel port_model_;
};

/// Canonical byte dump of a RouteResult: every field of every packet and
/// every transfer-log entry, one token stream.  Two results are bit-identical
/// iff their dumps compare equal, so differential tests diff strings and
/// failures show the first diverging field.
[[nodiscard]] std::string dump_route_result(const RouteResult& result);

}  // namespace upn::testing
