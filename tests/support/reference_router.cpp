// Verbatim preservation of the pre-rewrite SyncRouter::route_impl -- see the
// header for why this code must stay the slow, node-based version.
#include "tests/support/reference_router.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "src/fault/fault_plan.hpp"
#include "src/obs/obs.hpp"
#include "src/util/contracts.hpp"
#include "src/util/rng.hpp"

namespace upn::testing {

ReferenceRouter::ReferenceRouter(const Graph& graph, PortModel port_model)
    : graph_(&graph), port_model_(port_model) {}

namespace {

/// Per-node FIFO queues, one per outgoing port (= neighbor index).
struct NodeState {
  std::vector<std::deque<std::uint32_t>> ports;  // packet indices
  std::uint32_t buffered = 0;
  std::uint32_t rr_cursor = 0;  // round-robin port scan start (single-port)
};

/// A packet waiting out a retransmission backoff at `holder`.
struct DelayedPacket {
  std::uint32_t release_step = 0;
  std::uint32_t packet = 0;
  NodeId holder = 0;
};

constexpr NodeId kNoHop = std::numeric_limits<NodeId>::max();

/// Shortest-path next hops on the LIVE subgraph defined by a FaultClock.
/// Distance vectors are cached per target and invalidated when permanent
/// faults activate (the live subgraph only ever shrinks).
class LiveRouteOracle {
 public:
  explicit LiveRouteOracle(const Graph& graph) : graph_(&graph) {}

  void invalidate() { cache_.clear(); }

  /// Live neighbor of `at` closest to `target`; kNoHop when `target` is
  /// unreachable from `at` in the surviving subgraph.
  [[nodiscard]] NodeId next_hop(const FaultClock& clock, NodeId at, NodeId target,
                                std::uint32_t salt) {
    const std::vector<std::uint32_t>& dist = distances(clock, target);
    if (dist[at] == std::numeric_limits<std::uint32_t>::max()) return kNoHop;
    std::uint32_t best = std::numeric_limits<std::uint32_t>::max();
    std::uint32_t count = 0;
    for (const NodeId u : graph_->neighbors(at)) {
      if (!clock.link_alive(at, u)) continue;
      if (dist[u] < best) {
        best = dist[u];
        count = 1;
      } else if (dist[u] == best) {
        ++count;
      }
    }
    if (count == 0) return kNoHop;
    const std::uint64_t hash = mix64((static_cast<std::uint64_t>(salt) << 32) | at);
    std::uint32_t skip = static_cast<std::uint32_t>(hash % count);
    for (const NodeId u : graph_->neighbors(at)) {
      if (!clock.link_alive(at, u) || dist[u] != best) continue;
      if (skip == 0) return u;
      --skip;
    }
    return kNoHop;
  }

 private:
  const std::vector<std::uint32_t>& distances(const FaultClock& clock, NodeId target) {
    const auto it = cache_.find(target);
    if (it != cache_.end()) return it->second;
    constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
    std::vector<std::uint32_t> dist(graph_->num_nodes(), kInf);
    std::vector<NodeId> frontier;
    if (clock.node_alive(target)) {
      dist[target] = 0;
      frontier.push_back(target);
    }
    std::vector<NodeId> next;
    std::uint32_t level = 0;
    while (!frontier.empty()) {
      ++level;
      next.clear();
      for (const NodeId v : frontier) {
        for (const NodeId u : graph_->neighbors(v)) {
          if (dist[u] == kInf && clock.link_alive(v, u)) {
            dist[u] = level;
            next.push_back(u);
          }
        }
      }
      frontier.swap(next);
    }
    return cache_.emplace(target, std::move(dist)).first->second;
  }

  const Graph* graph_;
  std::unordered_map<NodeId, std::vector<std::uint32_t>> cache_;
};

}  // namespace

RouteResult ReferenceRouter::route(std::vector<Packet> packets, RoutingPolicy& policy,
                                   bool record_transfers, std::uint32_t max_steps) {
  return route_impl(std::move(packets), &policy, nullptr, record_transfers, max_steps);
}

RouteResult ReferenceRouter::route_with_faults(std::vector<Packet> packets,
                                               const FaultRouteOptions& faults,
                                               RoutingPolicy* policy, bool record_transfers,
                                               std::uint32_t max_steps) {
  if (faults.plan == nullptr) {
    if (policy == nullptr) {
      throw std::invalid_argument{
          "SyncRouter::route_with_faults: need a policy when no plan is given"};
    }
    return route_impl(std::move(packets), policy, nullptr, record_transfers, max_steps);
  }
  return route_impl(std::move(packets), policy, &faults, record_transfers, max_steps);
}

RouteResult ReferenceRouter::route_impl(std::vector<Packet> packets, RoutingPolicy* policy,
                                        const FaultRouteOptions* faults, bool record_transfers,
                                        std::uint32_t max_steps) {
  UPN_OBS_SPAN("routing.sync.route");
  UPN_OBS_STEP(0);
  const Graph& g = *graph_;
  const std::uint32_t n = g.num_nodes();
  UPN_OBS_COUNT("routing.sync.route_calls", 1);
  UPN_OBS_COUNT("routing.sync.packets_submitted", packets.size());
  for (const Packet& p : packets) {
    UPN_REQUIRE(p.src < n && p.dst < n, "SyncRouter: packet endpoints must be host nodes");
    UPN_REQUIRE(p.via < n, "SyncRouter: Valiant via must be a host node");
  }
  if (policy != nullptr) policy->prepare(g, packets);

  RouteResult result;
  std::vector<NodeState> nodes(n);
  for (NodeId v = 0; v < n; ++v) nodes[v].ports.resize(g.degree(v));

  std::optional<FaultClock> clock;
  LiveRouteOracle oracle{g};
  std::vector<DelayedPacket> delayed;
  if (faults != nullptr) {
    clock.emplace(*faults->plan, n);
    if (clock->advance(faults->step_offset)) oracle.invalidate();
  }

  // Port index of neighbor `to` within `from`'s sorted adjacency.
  auto port_of = [&g](NodeId from, NodeId to) -> std::uint32_t {
    const auto nbrs = g.neighbors(from);
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), to);
    if (it == nbrs.end() || *it != to) {
      throw std::logic_error{"SyncRouter: policy returned a non-neighbor" +
                             obs::context_suffix()};
    }
    return static_cast<std::uint32_t>(it - nbrs.begin());
  };

  std::uint32_t undelivered = 0;

  enum class Placement : std::uint8_t { kDelivered, kQueued, kLost };

  // A packet has just arrived (or started, or was re-queued) at `at`:
  // deliver, advance its Valiant phase, or enqueue it on the port the
  // routing decision selects.  `detour` forces the fault-aware oracle even
  // when an external policy is present (used after a policy choice died).
  auto place = [&](std::uint32_t packet_index, NodeId at, bool detour) -> Placement {
    Packet& p = packets[packet_index];
    if (clock && !clock->node_alive(at)) return Placement::kLost;
    if (p.phase == 0 && (at == p.via || (clock && !clock->node_alive(p.via)))) {
      p.phase = 1;  // via reached -- or dead, in which case skip the detour
    }
    if (at == p.dst && p.phase == 1) {
      return Placement::kDelivered;
    }
    if (clock && !clock->node_alive(p.dst)) return Placement::kLost;
    NodeId next = kNoHop;
    if (!clock) {
      next = policy->next_hop(g, at, p);
    } else {
      if (policy != nullptr && !detour) {
        const NodeId choice = policy->next_hop(g, at, p);
        if (clock->link_alive(at, choice)) next = choice;
      }
      if (next == kNoHop) {
        next = oracle.next_hop(*clock, at, p.current_target(), p.id);
        if (next == kNoHop) return Placement::kLost;  // unreachable survivor
      }
    }
    nodes[at].ports[port_of(at, next)].push_back(packet_index);
    ++nodes[at].buffered;
    return Placement::kQueued;
  };

  auto mark_lost = [&](std::uint32_t packet_index) {
    packets[packet_index].lost = 1;
    packets[packet_index].delivered_at = -1;
    ++result.packets_lost;
  };

  for (std::uint32_t i = 0; i < packets.size(); ++i) {
    packets[i].id = i;
    packets[i].delivered_at = -1;
    packets[i].lost = 0;
    packets[i].retries = 0;
    if (packets[i].phase == 1 && packets[i].src == packets[i].dst) {
      if (clock && !clock->node_alive(packets[i].src)) {
        mark_lost(i);
      } else {
        packets[i].delivered_at = 0;
      }
      continue;
    }
    switch (place(i, packets[i].src, false)) {
      case Placement::kDelivered:
        packets[i].delivered_at = 0;
        break;
      case Placement::kQueued:
        ++undelivered;
        break;
      case Placement::kLost:
        mark_lost(i);
        break;
    }
  }
  for (NodeId v = 0; v < n; ++v) result.max_queue = std::max(result.max_queue, nodes[v].buffered);

  std::uint32_t step = 0;

  // Flushes queues invalidated by newly activated permanent faults: queues
  // at dead nodes are lost wholesale; queues on dead ports are re-routed.
  auto apply_epoch = [&]() {
    oracle.invalidate();
    std::vector<std::uint32_t> requeue;
    for (NodeId v = 0; v < n; ++v) {
      if (nodes[v].buffered == 0) continue;
      const auto nbrs = g.neighbors(v);
      if (!clock->node_alive(v)) {
        for (auto& queue : nodes[v].ports) {
          for (const std::uint32_t packet_index : queue) {
            mark_lost(packet_index);
            --undelivered;
          }
          queue.clear();
        }
        nodes[v].buffered = 0;
        continue;
      }
      for (std::uint32_t port = 0; port < nbrs.size(); ++port) {
        if (clock->link_alive(v, nbrs[port])) continue;
        auto& queue = nodes[v].ports[port];
        while (!queue.empty()) {
          requeue.push_back(queue.front());
          queue.pop_front();
          --nodes[v].buffered;
        }
        for (const std::uint32_t packet_index : requeue) {
          ++result.reroutes;
          ++packets[packet_index].retries;
          switch (place(packet_index, v, true)) {
            case Placement::kDelivered:  // via skipped and v == dst
              packets[packet_index].delivered_at = step;
              --undelivered;
              break;
            case Placement::kQueued:
              break;
            case Placement::kLost:
              mark_lost(packet_index);
              --undelivered;
              break;
          }
        }
        requeue.clear();
      }
    }
  };

  std::vector<std::pair<std::uint32_t, NodeId>> arrivals;  // (packet, node)
  std::vector<char> busy(n, 0);
  while (undelivered > 0) {
    UPN_OBS_SET_STEP(step);
    if (step >= max_steps) {
      throw std::runtime_error{"SyncRouter::route: step limit exceeded (livelock?)" +
                               obs::context_suffix()};
    }
    const std::uint32_t global_step = faults == nullptr ? step : faults->step_offset + step;
    if (clock && clock->advance(global_step)) apply_epoch();

    // Release packets whose retransmission backoff expired.
    if (!delayed.empty()) {
      std::size_t kept = 0;
      for (const DelayedPacket& d : delayed) {
        if (d.release_step > step) {
          delayed[kept++] = d;
          continue;
        }
        switch (place(d.packet, d.holder, false)) {
          case Placement::kDelivered:
            packets[d.packet].delivered_at = step;
            --undelivered;
            break;
          case Placement::kQueued:
            break;
          case Placement::kLost:
            mark_lost(d.packet);
            --undelivered;
            break;
        }
      }
      delayed.resize(kept);
    }

    arrivals.clear();

    // Selects the transfer (v --port--> w, packet) for this step, honoring
    // transient drop windows: a dropped transfer consumes the link (and, in
    // the single-port model, both endpoints' operations) but the packet is
    // lost in flight and retransmitted by the sender after a backoff.
    auto move_packet = [&](NodeId v, std::uint32_t port, NodeId w) {
      auto& queue = nodes[v].ports[port];
      const std::uint32_t packet_index = queue.front();
      queue.pop_front();
      --nodes[v].buffered;
      ++result.total_transfers;
      const bool dropped = clock && clock->drops_packet(v, w, packets[packet_index].id);
      if (record_transfers) {
        result.transfers.push_back(
            Transfer{step, v, w, packet_index,
                     // Bool to byte, range {0,1}:
                     static_cast<std::uint8_t>(dropped ? 1 : 0)});  // upn-lint-allow(narrowing-cast)
      }
      if (!dropped) {
        arrivals.emplace_back(packet_index, w);
        return;
      }
      ++result.retransmissions;
      Packet& p = packets[packet_index];
      ++p.retries;
      if (faults != nullptr && p.retries > faults->max_retries) {
        mark_lost(packet_index);
        --undelivered;
        return;
      }
      const std::uint32_t shift = std::min<std::uint32_t>(p.retries, 6u);
      const std::uint32_t backoff =
          faults == nullptr ? 1u : std::max(1u, faults->backoff_base << shift);
      UPN_OBS_COUNT("routing.sync.backoff_delays", 1);
      UPN_OBS_HIST("routing.sync.backoff_steps", backoff);
      delayed.push_back(DelayedPacket{step + backoff, packet_index, v});
    };

    if (port_model_ == PortModel::kMultiPort) {
      // Every directed link moves one packet.
      for (NodeId v = 0; v < n; ++v) {
        if (nodes[v].buffered == 0) continue;
        const auto nbrs = g.neighbors(v);
        for (std::uint32_t port = 0; port < nbrs.size(); ++port) {
          if (nodes[v].ports[port].empty()) continue;
          move_packet(v, port, nbrs[port]);
        }
      }
    } else {
      // Single-port: transfers form a matching; a node either sends or
      // receives.  Greedy maximal matching with a rotating scan start for
      // fairness.
      std::fill(busy.begin(), busy.end(), 0);
      const NodeId offset = static_cast<NodeId>(step % std::max(1u, n));
      for (std::uint32_t scan = 0; scan < n; ++scan) {
        const NodeId v = static_cast<NodeId>((scan + offset) % n);
        if (busy[v] || nodes[v].buffered == 0) continue;
        const auto nbrs = g.neighbors(v);
        const std::uint32_t degree = static_cast<std::uint32_t>(nbrs.size());
        // Round-robin over ports so no queue starves.
        for (std::uint32_t offs = 0; offs < degree; ++offs) {
          const std::uint32_t port = (nodes[v].rr_cursor + offs) % degree;
          if (nodes[v].ports[port].empty() || busy[nbrs[port]]) continue;
          busy[v] = 1;
          busy[nbrs[port]] = 1;
          nodes[v].rr_cursor = (port + 1) % degree;
          move_packet(v, port, nbrs[port]);
          break;
        }
      }
    }

    for (const auto& [packet_index, at] : arrivals) {
      switch (place(packet_index, at, false)) {
        case Placement::kDelivered:
          packets[packet_index].delivered_at = step + 1;
          --undelivered;
          break;
        case Placement::kQueued:
          break;
        case Placement::kLost:
          mark_lost(packet_index);
          --undelivered;
          break;
      }
    }
    std::uint32_t step_max_queue = 0;
    for (NodeId v = 0; v < n; ++v) {
      step_max_queue = std::max(step_max_queue, nodes[v].buffered);
    }
    result.max_queue = std::max(result.max_queue, step_max_queue);
    // Queue-depth-per-step distribution: bucket adds commute, so the merged
    // histogram is identical for serial and pool-swept callers.
    UPN_OBS_HIST("routing.sync.step_max_queue", step_max_queue);
    ++step;
  }

  result.steps = step;
  result.packets = std::move(packets);
  UPN_ENSURE(result.steps <= max_steps, "router must respect its step budget");
  std::uint64_t delivered = 0;
  for (const Packet& p : result.packets) {
    if (p.delivered_at >= 0) ++delivered;
  }
  UPN_ENSURE(delivered + result.packets_lost == result.packets.size(),
             "every packet is delivered or accounted lost");
  UPN_ENSURE(faults != nullptr || result.packets_lost == 0,
             "fault-free routing cannot lose packets");
  UPN_OBS_COUNT("routing.sync.steps", result.steps);
  UPN_OBS_COUNT("routing.sync.transfers", result.total_transfers);
  UPN_OBS_COUNT("routing.sync.retransmissions", result.retransmissions);
  UPN_OBS_COUNT("routing.sync.reroutes", result.reroutes);
  UPN_OBS_COUNT("routing.sync.packets_lost", result.packets_lost);
  UPN_OBS_GAUGE_MAX("routing.sync.max_queue_depth", result.max_queue);
  return result;
}

std::string dump_route_result(const RouteResult& result) {
  std::ostringstream os;
  os << "steps=" << result.steps << " total_transfers=" << result.total_transfers
     << " max_queue=" << result.max_queue << " packets_lost=" << result.packets_lost
     << " retransmissions=" << result.retransmissions << " reroutes=" << result.reroutes
     << "\n";
  for (const Packet& p : result.packets) {
    os << "packet id=" << p.id << " src=" << p.src << " dst=" << p.dst << " via=" << p.via
       << " phase=" << static_cast<int>(p.phase) << " lost=" << static_cast<int>(p.lost)
       << " retries=" << p.retries << " payload=" << p.payload << " tag=" << p.tag
       << " tag2=" << p.tag2 << " injected_at=" << p.injected_at
       << " delivered_at=" << p.delivered_at << "\n";
  }
  for (const Transfer& t : result.transfers) {
    os << "transfer step=" << t.step << " from=" << t.from << " to=" << t.to
       << " packet=" << t.packet << " dropped=" << static_cast<int>(t.dropped) << "\n";
  }
  return os.str();
}

}  // namespace upn::testing
