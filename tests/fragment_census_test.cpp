// Fragment census tests: the counting pipeline over many guests.
#include <gtest/gtest.h>

#include <cmath>

#include "src/lowerbound/fragment_census.hpp"

namespace upn {
namespace {

TEST(FragmentCensus, RunsAndTabulates) {
  Rng rng{404};
  const std::uint32_t m = 12;  // butterfly(2)
  const std::uint32_t a = g0_block_parameter(m);
  const std::uint32_t n = g0_round_guest_size(60, a);
  const G0 g0 = make_g0(n, m, rng);
  const FragmentCensus census = run_fragment_census(g0, 2, 6, 8, rng);
  EXPECT_EQ(census.guests, 6u);
  EXPECT_EQ(census.rows.size(), 6u);
  EXPECT_GT(census.mean_inefficiency, 0.0);
  EXPECT_GE(census.distinct_fragments, 1u);
  EXPECT_LE(census.distinct_fragments, 6u);
  // Every fragment's multiplicity bound is finite and positive (the
  // generator holds all 16 neighbor configurations).
  for (const FragmentCensusRow& row : census.rows) {
    EXPECT_TRUE(std::isfinite(row.log2_multiplicity));
    EXPECT_GT(row.log2_multiplicity, 0.0);
    EXPECT_GT(row.sum_b, 0u);
  }
  // The counting-chain reference values are populated.
  EXPECT_GT(census.log2_a_bound, 0.0);
  EXPECT_GT(census.log2_guest_space, 0.0);
}

TEST(FragmentCensus, HashDistinguishesFragments) {
  // Two different B' selections must hash differently.
  Fragment a;
  a.t0 = 1;
  a.B = {{0, 1}, {0, 1}};
  a.b = {0, 1};
  Fragment b = a;
  b.b = {1, 0};
  EXPECT_NE(fragment_hash(a), fragment_hash(b));
  Fragment c = a;
  c.B[0] = {1};
  EXPECT_NE(fragment_hash(a), fragment_hash(c));
  EXPECT_EQ(fragment_hash(a), fragment_hash(a));
}

TEST(FragmentCensus, DistinctGuestsUsuallyDistinctFragments) {
  // Different guests route different relations, so with a random embedding
  // per run the representative sets differ: expect near-zero collisions.
  Rng rng{505};
  const std::uint32_t m = 12;
  const std::uint32_t a = g0_block_parameter(m);
  const std::uint32_t n = g0_round_guest_size(60, a);
  const G0 g0 = make_g0(n, m, rng);
  const FragmentCensus census = run_fragment_census(g0, 2, 5, 8, rng);
  EXPECT_GE(census.distinct_fragments, 4u);
}

}  // namespace
}  // namespace upn
