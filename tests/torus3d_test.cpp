// 3D torus tests, including the cubic spreading exponent.
#include <gtest/gtest.h>

#include "src/lowerbound/spreading.hpp"
#include "src/topology/properties.hpp"
#include "src/topology/torus3d.hpp"

namespace upn {
namespace {

TEST(Torus3d, StructuralInvariants) {
  const Graph t = make_torus3d(4, 4, 4);
  EXPECT_EQ(t.num_nodes(), 64u);
  std::uint32_t degree = 0;
  EXPECT_TRUE(is_regular(t, &degree));
  EXPECT_EQ(degree, 6u);
  EXPECT_EQ(t.num_edges(), 3ull * 64);
  EXPECT_TRUE(is_connected(t));
  EXPECT_EQ(diameter(t), 6u);  // 2+2+2
}

TEST(Torus3d, AsymmetricDimensions) {
  const Graph t = make_torus3d(3, 4, 5);
  EXPECT_EQ(t.num_nodes(), 60u);
  EXPECT_TRUE(is_connected(t));
  EXPECT_EQ(diameter(t), 1u + 2u + 2u);
}

TEST(Torus3d, RejectsZeroDimension) {
  EXPECT_THROW(make_torus3d(0, 4, 4), std::invalid_argument);
}

TEST(Torus3d, CubicSpreading) {
  const Graph t = make_torus3d(10, 10, 10);
  Rng rng{3};
  const SpreadingProfile profile = measure_spreading(t, 4, 8, rng);
  // |ball(1)| = 7, |ball(2)| = 25: the 3D octahedral numbers.
  EXPECT_EQ(profile.max_ball[1], 7u);
  EXPECT_EQ(profile.max_ball[2], 25u);
  // The asymptotic exponent is 3; at these radii the lower-order terms of
  // the octahedral numbers pull the log-log slope down, but it must sit
  // strictly above the 2D value (~1.7-2.0) and below exponential growth.
  EXPECT_GT(profile.poly_exponent, 2.2);
  EXPECT_LT(profile.poly_exponent, 3.2);
  EXPECT_TRUE(has_polynomial_spreading(profile, 8.0, 3.0));
}

}  // namespace
}  // namespace upn
