// Compile-out test: this translation unit is built with UPN_NDEBUG_OBS
// (see tests/CMakeLists.txt), so every UPN_OBS_* macro must expand to
// nothing -- no metric registration, no span stack activity, no trace
// events -- even with collection switched on at runtime.  This binary runs
// no simulator code on purpose: the library is built without the define,
// so only the macros in THIS file are under test.
#include <gtest/gtest.h>

#include "src/obs/obs.hpp"

#ifndef UPN_NDEBUG_OBS
#error "obs_disabled_test must be compiled with UPN_NDEBUG_OBS"
#endif

namespace upn::obs {
namespace {

TEST(ObsDisabled, MacrosCompileToNothing) {
  set_enabled(true);  // even explicitly enabled, compiled-out macros are inert
  ASSERT_EQ(registry().size(), 0u) << "fresh process must start with an empty registry";

  UPN_OBS_COUNT("disabled.counter", 1);
  UPN_OBS_GAUGE_MAX("disabled.gauge", 42);
  UPN_OBS_GAUGE_SET("disabled.gauge2", 7);
  UPN_OBS_HIST("disabled.hist", 9);
  UPN_OBS_TIMING_ADD("disabled.timing", 1000);
  {
    UPN_OBS_SPAN("disabled.span");
    UPN_OBS_STEP(3);
    UPN_OBS_SET_STEP(4);
    EXPECT_EQ(current_span_path(), "") << "UPN_OBS_SPAN must not push a span frame";
    EXPECT_EQ(context_suffix(), "") << "UPN_OBS_STEP must not set step context";
  }

  EXPECT_EQ(registry().size(), 0u) << "compiled-out macros registered a metric";
  EXPECT_TRUE(registry().snapshot().empty());
  EXPECT_TRUE(trace_events().empty());
}

}  // namespace
}  // namespace upn::obs
