// Unit tests for the CSR Graph and GraphBuilder.
#include <gtest/gtest.h>

#include "src/topology/graph.hpp"

namespace upn {
namespace {

TEST(GraphBuilder, BuildsTriangle) {
  GraphBuilder builder{3, "triangle"};
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 0);
  const Graph g = std::move(builder).build();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.name(), "triangle");
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(GraphBuilder, DeduplicatesAndDropsSelfLoops) {
  GraphBuilder builder{2};
  builder.add_edge(0, 1);
  builder.add_edge(1, 0);  // duplicate, reversed
  builder.add_edge(0, 0);  // self-loop dropped
  const Graph g = std::move(builder).build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(GraphBuilder, RejectsOutOfRange) {
  GraphBuilder builder{2};
  EXPECT_THROW(builder.add_edge(0, 2), std::out_of_range);
}

TEST(Graph, NeighborsAreSorted) {
  GraphBuilder builder{5};
  builder.add_edge(2, 4);
  builder.add_edge(2, 0);
  builder.add_edge(2, 3);
  builder.add_edge(2, 1);
  const Graph g = std::move(builder).build();
  const auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(Graph, EdgeListIsCanonical) {
  GraphBuilder builder{4};
  builder.add_edge(3, 1);
  builder.add_edge(0, 2);
  const Graph g = std::move(builder).build();
  const auto edges = g.edge_list();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (std::pair<NodeId, NodeId>{0, 2}));
  EXPECT_EQ(edges[1], (std::pair<NodeId, NodeId>{1, 3}));
}

TEST(Graph, EmptyGraph) {
  const Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
  EXPECT_FALSE(g.has_edge(0, 1));
}

TEST(Graph, IsolatedNodes) {
  GraphBuilder builder{4};
  builder.add_edge(0, 1);
  const Graph g = std::move(builder).build();
  EXPECT_EQ(g.degree(2), 0u);
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_TRUE(g.neighbors(2).empty());
}

TEST(GraphOps, UnionMergesEdgeSets) {
  GraphBuilder a{3};
  a.add_edge(0, 1);
  GraphBuilder b{3};
  b.add_edge(1, 2);
  b.add_edge(0, 1);  // shared edge
  const Graph u = graph_union(std::move(a).build(), std::move(b).build(), "u");
  EXPECT_EQ(u.num_edges(), 2u);
  EXPECT_TRUE(u.has_edge(0, 1));
  EXPECT_TRUE(u.has_edge(1, 2));
}

TEST(GraphOps, DifferenceRemovesEdges) {
  GraphBuilder a{3};
  a.add_edge(0, 1);
  a.add_edge(1, 2);
  GraphBuilder b{3};
  b.add_edge(0, 1);
  const Graph diff = graph_difference(std::move(a).build(), std::move(b).build(), "d");
  EXPECT_EQ(diff.num_edges(), 1u);
  EXPECT_FALSE(diff.has_edge(0, 1));
  EXPECT_TRUE(diff.has_edge(1, 2));
}

TEST(GraphOps, UnionRejectsSizeMismatch) {
  GraphBuilder a{3};
  GraphBuilder b{4};
  EXPECT_THROW(graph_union(std::move(a).build(), std::move(b).build(), "x"),
               std::invalid_argument);
}

}  // namespace
}  // namespace upn
