// Determinism regression tests: the protocol / schedule / fault-plan
// emitters must be bit-reproducible run to run.  Each test executes the
// producer twice from identical inputs and compares the SERIALIZED bytes,
// which is exactly what upn_lint and the committed fixtures depend on.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "src/core/embedding.hpp"
#include "src/core/embedding_io.hpp"
#include "src/core/embedding_metrics.hpp"
#include "src/core/universal_sim.hpp"
#include "src/fault/fault_plan.hpp"
#include "src/pebble/io.hpp"
#include "src/routing/hh_problem.hpp"
#include "src/routing/path_schedule.hpp"
#include "src/routing/schedule_io.hpp"
#include "src/topology/builders.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/rng.hpp"

namespace upn {
namespace {

std::string emitted_protocol() {
  Rng guest_rng{99};
  const Graph guest = make_random_regular(16, 4, guest_rng);
  const Graph host = make_butterfly(2);
  UniversalSimulator sim{guest, host, make_block_embedding(16, host.num_nodes())};
  UniversalSimOptions options;
  options.emit_protocol = true;
  const UniversalSimResult result = sim.run(4, options);
  std::ostringstream os;
  write_protocol(os, *result.protocol);
  return os.str();
}

TEST(Determinism, PipelineEmitsByteIdenticalProtocols) {
  const std::string first = emitted_protocol();
  const std::string second = emitted_protocol();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

std::string emitted_schedule() {
  const Graph host = make_cycle(16);
  Rng rng{0xfeed};
  const HhProblem problem = random_permutation_problem(16, rng);
  const PathSchedule schedule = schedule_paths(host, problem);
  std::ostringstream os;
  write_path_schedule(os, schedule, static_cast<std::uint32_t>(problem.size()));
  return os.str();
}

TEST(Determinism, GreedySchedulerEmitsByteIdenticalSchedules) {
  EXPECT_EQ(emitted_schedule(), emitted_schedule());
}

TEST(Determinism, FaultPlanGeneratorsAreSeedStable) {
  const Graph host = make_cycle(32);
  const auto emit = [&] {
    const FaultPlan plan =
        merge_plans(make_uniform_link_faults(host, 0.2, 0xabcd, 3),
                    make_uniform_drops(host, 0.1, 0xabcd, 0, 16));
    std::ostringstream os;
    write_fault_plan(os, plan);
    return os.str();
  };
  EXPECT_EQ(emit(), emit());
}

TEST(Determinism, EmbeddingMetricsStableAcrossRuns) {
  Rng guest_rng{7};
  const Graph guest = make_random_regular(24, 4, guest_rng);
  const Graph host = make_cycle(8);
  const auto embedding = make_block_embedding(24, 8);
  const EmbeddingMetrics a = analyze_embedding(guest, host, embedding);
  const EmbeddingMetrics b = analyze_embedding(guest, host, embedding);
  EXPECT_EQ(a.congestion, b.congestion);
  EXPECT_EQ(a.dilation, b.dilation);
  EXPECT_EQ(a.total_path_length, b.total_path_length);
}

TEST(Determinism, EmbeddingSerializationRoundTripsBytes) {
  const auto embedding = make_block_embedding(12, 5);
  std::ostringstream first;
  write_embedding(first, embedding, 5);
  std::istringstream is{first.str()};
  const StoredEmbedding stored = read_embedding(is);
  std::ostringstream second;
  write_embedding(second, stored.map, stored.num_hosts);
  EXPECT_EQ(first.str(), second.str());
}

TEST(Determinism, RngStreamSubstreamsArePinned) {
  // Golden values for the per-task sub-stream derivation.  Rng::stream is
  // what makes the parallel sweeps/census byte-identical across thread
  // counts; changing its mixing silently changes every parallel table, so
  // the first two outputs of representative (seed, task_index) pairs are
  // pinned here.
  struct Golden {
    std::uint64_t seed;
    std::uint64_t task_index;
    std::uint64_t first;
    std::uint64_t second;
  };
  constexpr Golden kGolden[] = {
      {0ULL, 0ULL, 8029058919735265293ULL, 15554015686778083075ULL},
      {0ULL, 1ULL, 4337604606120936101ULL, 6385271038737753524ULL},
      {42ULL, 0ULL, 16289772587287430427ULL, 7634636352512728480ULL},
      {42ULL, 7ULL, 12437730939238533646ULL, 8643353185355321646ULL},
      {0xdeadbeefULL, 123456ULL, 9375597164542985926ULL, 5561742320487136935ULL},
  };
  for (const Golden& g : kGolden) {
    Rng rng = Rng::stream(g.seed, g.task_index);
    EXPECT_EQ(rng(), g.first) << "seed " << g.seed << " task " << g.task_index;
    EXPECT_EQ(rng(), g.second) << "seed " << g.seed << " task " << g.task_index;
  }
}

}  // namespace
}  // namespace upn
