// NOT compiled: a lint fixture seeded with every banned source pattern.
// Each line below must produce exactly one upn_lint diagnostic.
#include <cstdlib>
#include <iostream>
#include <random>
#include <unordered_map>

void bad(std::unordered_map<int, int> counts) {
  std::mt19937 gen;                       // no-unseeded-rng
  int r = rand();                         // no-std-rand
  for (const auto& [k, v] : counts) {     // unordered-iteration
    std::cout << k << v << r << std::endl;  // no-endl
  }
  double x = 0.1;
  if (x == 0.3) std::cout << "never\n";   // float-equality
}
