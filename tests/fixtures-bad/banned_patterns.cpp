// NOT compiled: a lint fixture seeded with banned source patterns.  Each
// annotated line must produce one upn_lint diagnostic.  (Iterating the
// unordered_map alone is no longer flagged -- the taint pass only fires when
// the order reaches a deterministic sink; see taint_flow fixtures.)
#include <cstdlib>
#include <iostream>
#include <random>
#include <unordered_map>

void bad(std::unordered_map<int, int> counts) {
  std::mt19937 gen;                       // no-unseeded-rng
  int r = rand();                         // no-std-rand
  for (const auto& [k, v] : counts) {
    std::cout << k << v << r << std::endl;  // no-endl
  }
  double x = 0.1;
  if (x == 0.3) std::cout << "never\n";   // float-equality
}
