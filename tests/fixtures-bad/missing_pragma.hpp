// NOT compiled: a lint fixture for the pragma-once rule -- this header
// deliberately lacks the include guard.
namespace upn_fixture {
inline int answer() { return 42; }
}  // namespace upn_fixture
