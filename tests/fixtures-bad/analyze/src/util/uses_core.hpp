#pragma once

#include "src/core/loop_a.hpp"
