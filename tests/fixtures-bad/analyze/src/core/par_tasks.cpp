namespace demo {

void sum_counts(Pool& pool, const std::vector<int>& in, long& total, Rng& rng) {
  pool.parallel_for(in.size(), [&](std::size_t i) {
    total += in[i] + static_cast<long>(rng.next_u64());
  });
}

}  // namespace demo
