namespace demo {

void export_totals(const std::unordered_map<int, long>& table,
                   std::thread::id worker) {
  long total = 0;
  for (const auto& [key, value] : table) {
    total += value;
  }
  UPN_OBS_COUNT("demo.total", total);
  const auto stamp = std::chrono::steady_clock::now().time_since_epoch().count();
  UPN_OBS_GAUGE_MAX("demo.stamp", stamp);
  const auto where = reinterpret_cast<std::uintptr_t>(&table);
  UPN_OBS_COUNT("demo.where", where);
  UPN_OBS_COUNT("demo.worker", std::hash<std::thread::id>{}(worker));
}

}  // namespace demo
