#include <thread>

namespace demo {

void run_flow(upn::Rng rng, long big) {
  auto tiny = static_cast<std::uint16_t>(big);
  std::thread worker{[tiny] { (void)tiny; }};
  worker.detach();
  (void)rng;
}

}  // namespace demo
