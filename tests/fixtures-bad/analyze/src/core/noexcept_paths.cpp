namespace demo {

inline int risky_half(int value) {
  if (value < 0) throw std::invalid_argument{"negative"};
  return value / 2;
}

int fast_half(int value) noexcept {
  return risky_half(value);
}

void flush_or_throw(int fd) {
  if (fd < 0) throw std::runtime_error{"bad fd"};
}

struct Flusher {
  int fd = 0;
  ~Flusher() { flush_or_throw(fd); }
};

}  // namespace demo
