namespace demo {

int orphaned_scale(int value) {
  return value * 3;
}

}  // namespace demo
