namespace demo {

std::mutex mu_a;
std::mutex mu_b;
int shared_a = 0;

int locked_read() {
  std::lock_guard<std::mutex> ga(mu_a);
  return shared_a;
}

void lock_ab() {
  std::lock_guard<std::mutex> ga(mu_a);
  std::lock_guard<std::mutex> gb(mu_b);
  shared_a += 1;
}

void lock_ba() {
  std::lock_guard<std::mutex> gb(mu_b);
  std::lock_guard<std::mutex> ga(mu_a);
  shared_a += 2;
}

void report_progress(Pool& pool, std::vector<int>& out) {
  pool.parallel_for(out.size(), [&](std::size_t i) {
    out[i] = locked_read();
    std::ofstream log{"progress.txt"};
    log << out[i];
  });
}

}  // namespace demo
