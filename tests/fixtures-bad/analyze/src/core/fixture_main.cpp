namespace demo {

int poke_everything() {
  (void)sizeof(&sum_counts);
  (void)sizeof(&run_flow);
  (void)sizeof(&report_progress);
  (void)sizeof(&export_totals);
  (void)drain(std::vector<long>{});
  lock_ab();
  lock_ba();
  return forty_two() + quiet_level() + clamp_add(1, 2) + hot_entry(3) +
         fast_half(5) + plan_budget();
}

}  // namespace demo

int main() { return demo::poke_everything(); }
