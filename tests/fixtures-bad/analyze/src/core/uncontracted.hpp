#pragma once

namespace demo {

inline int clamp_add(int a, int b) {
  int sum = a + b;
  if (sum < 0) sum = 0;
  return sum;
}

}  // namespace demo
