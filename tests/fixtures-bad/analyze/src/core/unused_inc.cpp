#include "src/core/quiet.hpp"

namespace demo {

int forty_two() { return 42; }

}  // namespace demo
