namespace demo {

int scaled_budget(int budget) {
  UPN_REQUIRE(budget >= 0);
  return budget * 2;
}

int plan_budget() {
  return scaled_budget(-3);
}

}  // namespace demo
