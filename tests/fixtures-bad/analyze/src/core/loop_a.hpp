#pragma once

#include "src/core/loop_b.hpp"
