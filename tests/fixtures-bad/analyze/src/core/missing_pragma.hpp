namespace demo {

struct Empty {};

}  // namespace demo
