#pragma once

namespace demo {

inline int quiet_level() { return 3; }

}  // namespace demo
