#pragma once

namespace demo {

struct Queue {
  std::list<int> pending;
};

struct Policy {
  virtual int next_hop(int at) = 0;
};

inline long drain(std::vector<long> batch) {
  long total = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    auto* cell = new long(batch[i]);
    total += *cell;
    delete cell;
  }
  return total;
}

inline int hot_entry(int load) {
  int scaled = load * 2;
  return scaled + 1;
}

}  // namespace demo
