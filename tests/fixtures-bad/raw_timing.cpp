// NOT compiled: a lint fixture seeded with raw timing calls.  Timing must
// flow through upn::obs (src/obs/) or the bench harness; ad-hoc clock reads
// are banned everywhere else so UPN_NDEBUG_OBS can compile all timing out.
#include <chrono>
#include <ctime>

double bad_timing() {
  const auto start = std::chrono::steady_clock::now();     // no-raw-timing
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);                     // no-raw-timing
  const auto stop = std::chrono::steady_clock::now();      // no-raw-timing
  return std::chrono::duration<double>(stop - start).count();  // no-raw-timing
}
