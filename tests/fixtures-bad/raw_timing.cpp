// NOT compiled: a lint fixture where wall-clock readings leak into
// deterministic outputs.  Reading a clock is fine on its own (the obs layer
// exists for that); feeding the reading into a metric or protocol artifact
// makes the output depend on scheduling, so taint-timing rejects it.
#include <chrono>
#include <ctime>

#include "src/obs/metrics.hpp"

void bad_timing() {
  const auto start = std::chrono::steady_clock::now();
  UPN_OBS_COUNT("demo.start_ns", start.time_since_epoch().count());  // taint-timing
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  UPN_OBS_GAUGE_MAX("demo.sec", ts.tv_sec);                    // taint-timing
}
