// Round-trip and hostile-input tests for the two new artifact formats:
// embeddings (.upne) and path schedules (.upns).  Both mirror pebble/io's
// philosophy -- parsers enforce structural well-formedness and throw
// std::runtime_error with a line number; declared BOUNDS are deliberately
// not verified here (that is upn_lint's job, tested in lint_test.cpp).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "src/core/embedding.hpp"
#include "src/core/embedding_io.hpp"
#include "src/routing/hh_problem.hpp"
#include "src/routing/path_schedule.hpp"
#include "src/routing/schedule_io.hpp"
#include "src/topology/builders.hpp"

namespace upn {
namespace {

void expect_read_embedding_fails(const std::string& text, const std::string& needle) {
  std::istringstream is{text};
  try {
    (void)read_embedding(is);
    FAIL() << "accepted: " << text;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find(needle), std::string::npos) << e.what();
  }
}

TEST(EmbeddingIo, RoundTripPreservesEverything) {
  const auto embedding = make_block_embedding(10, 4);
  std::ostringstream os;
  write_embedding(os, embedding, 4);
  std::istringstream is{os.str()};
  const StoredEmbedding stored = read_embedding(is);
  EXPECT_EQ(stored.map, embedding);
  EXPECT_EQ(stored.num_hosts, 4u);
  EXPECT_EQ(stored.declared_load, embedding_load(embedding, 4));
}

TEST(EmbeddingIo, EmptyEmbeddingRoundTrips) {
  std::ostringstream os;
  write_embedding(os, {}, 0);
  std::istringstream is{os.str()};
  const StoredEmbedding stored = read_embedding(is);
  EXPECT_TRUE(stored.map.empty());
  EXPECT_EQ(stored.num_hosts, 0u);
}

TEST(EmbeddingIo, MalformedInputsThrowWithLineNumbers) {
  expect_read_embedding_fails("", "line 1");
  expect_read_embedding_fails("upn-embedding 2 1 1 1\n0\n", "bad header");
  expect_read_embedding_fails("wrong-magic 1 1 1 1\n0\n", "bad header");
  expect_read_embedding_fails("upn-embedding 1 2 2 1\n0\nx\n", "line 3");
  expect_read_embedding_fails("upn-embedding 1 2 2 1\n0\n5\n", "out of range");
  expect_read_embedding_fails("upn-embedding 1 3 2 2\n0\n1\n", "fewer rows");
  expect_read_embedding_fails("upn-embedding 1 1 2 1\n0\n1\n", "more rows");
  expect_read_embedding_fails("upn-embedding 1 2 0 1\n0\n1\n", "n > 0 requires m > 0");
  expect_read_embedding_fails("upn-embedding 1 99999999999 1 1\n", "guest count");
}

void expect_read_schedule_fails(const std::string& text, const std::string& needle) {
  std::istringstream is{text};
  try {
    (void)read_path_schedule(is);
    FAIL() << "accepted: " << text;
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find(needle), std::string::npos) << e.what();
  }
}

TEST(ScheduleIo, RoundTripPreservesMovesAndBounds) {
  const Graph host = make_cycle(8);
  HhProblem problem{8};
  for (NodeId v = 0; v < 8; ++v) problem.add(v, (v + 3) % 8);
  const PathSchedule schedule = schedule_paths(host, problem);

  std::ostringstream os;
  write_path_schedule(os, schedule, 8);
  std::istringstream is{os.str()};
  const StoredPathSchedule stored = read_path_schedule(is);
  EXPECT_EQ(stored.num_packets, 8u);
  EXPECT_EQ(stored.schedule.congestion, schedule.congestion);
  EXPECT_EQ(stored.schedule.dilation, schedule.dilation);
  EXPECT_EQ(stored.schedule.makespan, schedule.makespan);
  EXPECT_EQ(stored.schedule.total_moves, schedule.total_moves);
  EXPECT_EQ(stored.schedule.moves, schedule.moves);
}

TEST(ScheduleIo, MalformedInputsThrowWithLineNumbers) {
  expect_read_schedule_fails("", "line 1");
  expect_read_schedule_fails("upn-schedule 2 1 1 1 1\n", "bad header");
  expect_read_schedule_fails("upn-schedule 1 1 1 1 1\nM 0 0 1\n", "before first 'step'");
  expect_read_schedule_fails("upn-schedule 1 1 1 1 1\nstep\nM 0 0 0\n",
                             "from != to");
  expect_read_schedule_fails("upn-schedule 1 1 1 1 1\nstep\nM 5 0 1\n", "out of range");
  expect_read_schedule_fails("upn-schedule 1 1 1 1 2\nstep\nM 0 0 1\n",
                             "declared makespan");
  expect_read_schedule_fails("upn-schedule 1 1 1 1 1\nstep\nQ 0 0 1\n", "unknown record");
  expect_read_schedule_fails("upn-schedule 1 1 1 1 1\nstep extra\n", "trailing garbage");
}

}  // namespace
}  // namespace upn
