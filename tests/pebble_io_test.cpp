// Protocol serialization round-trip and error handling.
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/embedding.hpp"
#include "src/core/universal_sim.hpp"
#include "src/pebble/io.hpp"
#include "src/pebble/validator.hpp"
#include "src/topology/builders.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/random_regular.hpp"

namespace upn {
namespace {

Protocol tiny_protocol() {
  Protocol protocol{3, 2, 1};
  protocol.begin_step();
  protocol.add(Op{OpKind::kSend, 1, PebbleType{2, 0}, 0});
  protocol.add(Op{OpKind::kReceive, 0, PebbleType{2, 0}, 1});
  protocol.begin_step();
  protocol.add(Op{OpKind::kGenerate, 0, PebbleType{0, 1}, 0});
  return protocol;
}

bool protocols_equal(const Protocol& a, const Protocol& b) {
  if (a.num_guests() != b.num_guests() || a.num_hosts() != b.num_hosts() ||
      a.guest_steps() != b.guest_steps() || a.host_steps() != b.host_steps()) {
    return false;
  }
  for (std::size_t s = 0; s < a.steps().size(); ++s) {
    const auto& sa = a.steps()[s];
    const auto& sb = b.steps()[s];
    if (sa.size() != sb.size()) return false;
    for (std::size_t i = 0; i < sa.size(); ++i) {
      if (sa[i].kind != sb[i].kind || sa[i].proc != sb[i].proc ||
          !(sa[i].pebble == sb[i].pebble) || sa[i].partner != sb[i].partner) {
        return false;
      }
    }
  }
  return true;
}

TEST(PebbleIo, RoundTripTiny) {
  const Protocol original = tiny_protocol();
  std::stringstream buffer;
  write_protocol(buffer, original);
  const Protocol parsed = read_protocol(buffer);
  EXPECT_TRUE(protocols_equal(original, parsed));
}

TEST(PebbleIo, RoundTripSimulatorProtocolAndRevalidate) {
  Rng rng{3};
  const Graph guest = make_random_regular(24, 4, rng);
  const Graph host = make_butterfly(2);
  UniversalSimulator sim{guest, host, make_random_embedding(24, host.num_nodes(), rng)};
  UniversalSimOptions options;
  options.emit_protocol = true;
  const UniversalSimResult result = sim.run(2, options);
  std::stringstream buffer;
  write_protocol(buffer, *result.protocol);
  const Protocol parsed = read_protocol(buffer);
  EXPECT_TRUE(protocols_equal(*result.protocol, parsed));
  EXPECT_TRUE(validate_protocol(parsed, guest, host).ok);
}

TEST(PebbleIo, RejectsBadHeader) {
  std::stringstream buffer{"not-a-protocol 1 2 3 4\n"};
  EXPECT_THROW((void)read_protocol(buffer), std::runtime_error);
}

TEST(PebbleIo, RejectsOpBeforeStep) {
  std::stringstream buffer{"upn-protocol 1 3 2 1\nG 0 0 1\n"};
  EXPECT_THROW((void)read_protocol(buffer), std::runtime_error);
}

TEST(PebbleIo, RejectsMalformedOp) {
  std::stringstream buffer{"upn-protocol 1 3 2 1\nstep\nS 0 0 0\n"};  // no partner
  EXPECT_THROW((void)read_protocol(buffer), std::runtime_error);
}

TEST(PebbleIo, RejectsDoubleOpPerProc) {
  std::stringstream buffer{
      "upn-protocol 1 3 2 1\nstep\nG 0 0 1\nG 0 1 1\n"};
  EXPECT_THROW((void)read_protocol(buffer), std::runtime_error);
}

TEST(PebbleIo, RejectsOutOfRangePebble) {
  std::stringstream buffer{"upn-protocol 1 3 2 1\nstep\nG 0 5 1\n"};
  EXPECT_THROW((void)read_protocol(buffer), std::runtime_error);
}

}  // namespace
}  // namespace upn
