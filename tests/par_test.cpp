// Stress and soundness tests for the util/par thread pool: empty ranges,
// oversubscription (many more threads than cores, many more tasks than
// threads), exception propagation with deterministic (lowest-index) choice,
// pool reuse after failure, and the inline path used for nested calls.
// The whole file runs under the TSan job of the CI sanitizer matrix.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "src/util/par.hpp"

namespace upn {
namespace {

TEST(ThreadPool, EmptyRangeRunsNothing) {
  ThreadPool pool{4};
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_TRUE(pool.parallel_map<int>(0, [](std::size_t) { return 1; }).empty());
}

TEST(ThreadPool, SingleThreadPoolRunsInline) {
  ThreadPool pool{1};
  EXPECT_EQ(pool.size(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(64);
  pool.parallel_for(64, [&](std::size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, OversubscribedPoolCoversEveryIndexExactlyOnce) {
  // Far more workers than this container has cores, far more tasks than
  // workers: every index must still run exactly once.
  ThreadPool pool{16};
  EXPECT_EQ(pool.size(), 16u);
  constexpr std::size_t kTasks = 10000;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.parallel_for(kTasks, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kTasks; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder) {
  ThreadPool pool{7};
  const std::vector<std::size_t> out =
      pool.parallel_map<std::size_t>(1000, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 1000u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ExceptionFromTaskPropagates) {
  ThreadPool pool{4};
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37) throw std::runtime_error{"task 37 failed"};
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, LowestIndexExceptionWins) {
  // Multiple failing tasks: the rethrown exception is the lowest-index one,
  // so failure reports do not depend on thread scheduling.
  ThreadPool pool{4};
  try {
    pool.parallel_for(100, [&](std::size_t i) {
      if (i == 17 || i == 71) throw std::runtime_error{"task " + std::to_string(i)};
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 17");
  }
}

TEST(ThreadPool, RemainingTasksStillRunWhenOneThrows) {
  ThreadPool pool{4};
  constexpr std::size_t kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  try {
    pool.parallel_for(kTasks, [&](std::size_t i) {
      hits[i].fetch_add(1);
      if (i == 3) throw std::runtime_error{"boom"};
    });
  } catch (const std::runtime_error&) {
  }
  int total = 0;
  for (std::size_t i = 0; i < kTasks; ++i) total += hits[i].load();
  EXPECT_EQ(total, static_cast<int>(kTasks));
}

TEST(ThreadPool, PoolIsReusableAfterException) {
  ThreadPool pool{4};
  EXPECT_THROW(
      pool.parallel_for(10, [](std::size_t) { throw std::runtime_error{"first"}; }),
      std::runtime_error);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(100, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool{4};
  std::atomic<std::size_t> inner_total{0};
  pool.parallel_for(8, [&](std::size_t) {
    // A task that itself calls parallel_for must not deadlock waiting for
    // the workers it is occupying; nested calls degrade to inline serial.
    pool.parallel_for(10, [&](std::size_t j) { inner_total.fetch_add(j); });
  });
  EXPECT_EQ(inner_total.load(), 8u * 45u);
}

TEST(ThreadPool, ManyConsecutiveBatchesOnOnePool) {
  ThreadPool pool{5};
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> calls{0};
    pool.parallel_for(16, [&](std::size_t) { calls.fetch_add(1); });
    ASSERT_EQ(calls.load(), 16);
  }
}

TEST(ThreadPool, StatsCountCallsTasksAndLargestBatch) {
  ThreadPool pool{4};
  const ThreadPoolStats fresh = pool.stats();
  EXPECT_EQ(fresh.parallel_for_calls, 0u);
  EXPECT_EQ(fresh.tasks_run, 0u);
  EXPECT_EQ(fresh.max_batch, 0u);
  EXPECT_EQ(fresh.pending, 0u);

  pool.parallel_for(10, [](std::size_t) {});
  pool.parallel_for(3, [](std::size_t) {});
  pool.parallel_for(0, [](std::size_t) {});  // empty batch: early return, no call

  const ThreadPoolStats stats = pool.stats();
  EXPECT_EQ(stats.parallel_for_calls, 2u);
  EXPECT_EQ(stats.tasks_run, 13u);
  EXPECT_EQ(stats.max_batch, 10u);
  EXPECT_EQ(stats.pending, 0u) << "queue depth must return to 0 after every call";
}

TEST(ThreadPool, StatsAreIdenticalOnSerialAndPooledPaths) {
  // max_batch is the SUBMITTED batch size (not a scheduling artifact), so a
  // fixed call sequence yields the same stats at every pool width.
  ThreadPoolStats by_width[2];
  unsigned widths[2] = {1, 7};
  for (int w = 0; w < 2; ++w) {
    ThreadPool pool{widths[w]};
    pool.parallel_for(64, [](std::size_t) {});
    pool.parallel_for(5, [](std::size_t) {});
    by_width[w] = pool.stats();
  }
  EXPECT_EQ(by_width[0].parallel_for_calls, by_width[1].parallel_for_calls);
  EXPECT_EQ(by_width[0].tasks_run, by_width[1].tasks_run);
  EXPECT_EQ(by_width[0].max_batch, by_width[1].max_batch);
  EXPECT_EQ(by_width[0].pending, 0u);
  EXPECT_EQ(by_width[1].pending, 0u);
}

TEST(ThreadPool, StatsQueueDrainsToZeroEvenAfterException) {
  ThreadPool pool{4};
  EXPECT_THROW(pool.parallel_for(
                   8, [](std::size_t i) {
                     if (i == 2) throw std::runtime_error{"boom"};
                   }),
               std::runtime_error);
  EXPECT_EQ(pool.stats().pending, 0u);
  EXPECT_EQ(pool.stats().parallel_for_calls, 1u);
}

TEST(ThreadPool, DefaultThreadsReadsEnvironment) {
  ASSERT_EQ(setenv("UPN_THREADS", "3", 1), 0);
  EXPECT_EQ(ThreadPool::default_threads(), 3u);
  ASSERT_EQ(setenv("UPN_THREADS", "garbage", 1), 0);
  EXPECT_EQ(ThreadPool::default_threads(), 1u);
  ASSERT_EQ(setenv("UPN_THREADS", "0", 1), 0);
  EXPECT_EQ(ThreadPool::default_threads(), 1u);
  ASSERT_EQ(unsetenv("UPN_THREADS"), 0);
  EXPECT_EQ(ThreadPool::default_threads(), 1u);
}

}  // namespace
}  // namespace upn
