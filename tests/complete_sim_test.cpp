// Complete-network (K_n) online simulation tests (Section 2, last part).
#include <gtest/gtest.h>

#include "src/core/complete_sim.hpp"
#include "src/core/embedding.hpp"
#include "src/routing/policies.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/debruijn.hpp"

namespace upn {
namespace {

TEST(CompletePermutation, IsAPermutationAndVariesByStep) {
  const auto p1 = complete_step_permutation(50, 1, 7);
  const auto p2 = complete_step_permutation(50, 2, 7);
  std::vector<char> seen(50, 0);
  for (const NodeId v : p1) {
    ASSERT_LT(v, 50u);
    ASSERT_FALSE(seen[v]);
    seen[v] = 1;
  }
  EXPECT_NE(p1, p2);
  // Deterministic in (t, seed).
  EXPECT_EQ(p1, complete_step_permutation(50, 1, 7));
  EXPECT_NE(p1, complete_step_permutation(50, 1, 8));
}

TEST(CompleteReference, EvolvesAndIsDeterministic) {
  const auto a = run_complete_reference(32, 1, 2, 5);
  const auto b = run_complete_reference(32, 1, 2, 5);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, run_complete_reference(32, 1, 3, 5));  // pattern matters
  EXPECT_NE(a, run_complete_reference(32, 9, 2, 5));  // seed matters
}

TEST(CompleteSim, GreedyOnlineSimulationIsCorrect) {
  Rng rng{5};
  const Graph host = make_butterfly(2);
  const std::uint32_t n = 48;
  const auto embedding = make_random_embedding(n, host.num_nodes(), rng);
  GreedyPolicy policy{host};
  const CompleteSimResult result =
      run_complete_simulation(n, host, embedding, 5, policy);
  EXPECT_TRUE(result.configs_match);
  EXPECT_GE(result.slowdown, static_cast<double>(n) / host.num_nodes());
}

TEST(CompleteSim, ValiantOnlineSimulationIsCorrect) {
  Rng rng{6};
  const Graph host = make_debruijn(4);
  const std::uint32_t n = 64;
  const auto embedding = make_random_embedding(n, host.num_nodes(), rng);
  ValiantPolicy policy{host, 17};
  const CompleteSimResult result =
      run_complete_simulation(n, host, embedding, 4, policy, PortModel::kMultiPort);
  EXPECT_TRUE(result.configs_match);
}

TEST(CompleteSim, AllGuestsOnOneHost) {
  const Graph host = make_butterfly(1);
  GreedyPolicy policy{host};
  const CompleteSimResult result =
      run_complete_simulation(10, host, std::vector<NodeId>(10, 0), 3, policy);
  EXPECT_TRUE(result.configs_match);
  // No packets: host steps = T * load.
  EXPECT_EQ(result.host_steps, 3u * 10u);
}

TEST(CompleteSim, RejectsBadEmbedding) {
  const Graph host = make_butterfly(1);
  GreedyPolicy policy{host};
  EXPECT_THROW((void)run_complete_simulation(10, host, std::vector<NodeId>(5, 0), 1, policy),
               std::invalid_argument);
}

}  // namespace
}  // namespace upn
