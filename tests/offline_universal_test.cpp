// Off-line universal simulation (the butterfly corollary, ablation partner
// of the online simulator).
#include <gtest/gtest.h>

#include "src/core/embedding.hpp"
#include "src/core/offline_universal.hpp"
#include "src/core/universal_sim.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/random_regular.hpp"
#include "src/topology/torus.hpp"

namespace upn {
namespace {

TEST(OfflineUniversal, SimulatesCorrectly) {
  Rng rng{11};
  const std::uint32_t d = 3;
  const ButterflyLayout layout{d, false};
  const std::uint32_t n = 128;
  const Graph guest = make_random_regular(n, kGuestDegree, rng);
  const auto embedding = make_random_embedding(n, layout.num_nodes(), rng);
  const OfflineUniversalResult result = run_offline_universal(guest, d, embedding, 5, 42);
  EXPECT_TRUE(result.configs_match);
  EXPECT_GT(result.schedule_steps, 0u);
  EXPECT_GT(result.num_batches, 0u);
  EXPECT_EQ(result.host_steps, 5 * (result.schedule_steps + result.compute_steps));
  EXPECT_GT(result.slowdown_single_port, result.slowdown);
}

TEST(OfflineUniversal, MatchesReferenceAcrossSeeds) {
  Rng rng{12};
  const std::uint32_t d = 2;
  const ButterflyLayout layout{d, false};
  const Graph guest = make_torus(6, 6);
  const auto embedding = make_block_embedding(36, layout.num_nodes());
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const OfflineUniversalResult result =
        run_offline_universal(guest, d, embedding, 4, seed);
    EXPECT_TRUE(result.configs_match) << "seed " << seed;
  }
}

TEST(OfflineUniversal, ScheduleStepsScaleWithLoad) {
  // Doubling n (hence h = n/m) should roughly double the schedule length,
  // not quadruple it: O(h log m).
  Rng rng{13};
  const std::uint32_t d = 3;
  const ButterflyLayout layout{d, false};
  const Graph guest_small = make_random_regular(layout.num_nodes() * 2, 8, rng);
  const Graph guest_large = make_random_regular(layout.num_nodes() * 8, 8, rng);
  const auto r_small = run_offline_universal(
      guest_small, d, make_block_embedding(guest_small.num_nodes(), layout.num_nodes()), 1);
  const auto r_large = run_offline_universal(
      guest_large, d, make_block_embedding(guest_large.num_nodes(), layout.num_nodes()), 1);
  EXPECT_TRUE(r_small.configs_match);
  EXPECT_TRUE(r_large.configs_match);
  EXPECT_GT(r_large.schedule_steps, r_small.schedule_steps);
  EXPECT_LT(r_large.schedule_steps, 10 * r_small.schedule_steps);  // ~4x, not 16x
}

TEST(OfflineUniversal, OfflineBeatsOnlineSinglePort) {
  // The precomputed schedule should not be slower than the online greedy
  // single-port router by more than a small factor (it is usually faster).
  Rng rng{14};
  const std::uint32_t d = 3;
  const ButterflyLayout layout{d, false};
  const std::uint32_t n = 256;
  const Graph guest = make_random_regular(n, kGuestDegree, rng);
  const Graph host = make_butterfly(d);
  const auto embedding = make_random_embedding(n, layout.num_nodes(), rng);
  const OfflineUniversalResult offline = run_offline_universal(guest, d, embedding, 2);
  UniversalSimulator online{guest, host, embedding};
  const UniversalSimResult online_result = online.run(2);
  EXPECT_TRUE(offline.configs_match);
  EXPECT_TRUE(online_result.configs_match);
  EXPECT_LT(offline.slowdown_single_port, 2.0 * online_result.slowdown);
}

TEST(OfflineUniversal, RejectsBadEmbedding) {
  const Graph guest = make_torus(4, 4);
  EXPECT_THROW((void)run_offline_universal(guest, 2, std::vector<NodeId>(3, 0), 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace upn
