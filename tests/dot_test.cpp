// DOT emission tests.
#include <gtest/gtest.h>

#include "src/topology/builders.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/dot.hpp"

namespace upn {
namespace {

TEST(Dot, ContainsAllEdges) {
  const Graph c = make_cycle(4);
  const std::string dot = graph_to_dot(c);
  EXPECT_NE(dot.find("graph cycle_4_"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1;"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 3;"), std::string::npos);
  EXPECT_NE(dot.find("2 -- 3;"), std::string::npos);
}

TEST(Dot, EdgeCountMatches) {
  const Graph bf = make_butterfly(2);
  const std::string dot = graph_to_dot(bf);
  std::size_t count = 0, pos = 0;
  while ((pos = dot.find(" -- ", pos)) != std::string::npos) {
    ++count;
    pos += 4;
  }
  EXPECT_EQ(count, bf.num_edges());
}

TEST(Dot, EmptyGraph) {
  const Graph g;
  const std::string dot = graph_to_dot(g);
  EXPECT_NE(dot.find("graph g {"), std::string::npos);
}

}  // namespace
}  // namespace upn
