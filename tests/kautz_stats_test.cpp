// Kautz graph and stats helper tests.
#include <gtest/gtest.h>

#include "src/topology/kautz.hpp"
#include "src/topology/properties.hpp"
#include "src/util/stats.hpp"

namespace upn {
namespace {

class KautzSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(KautzSweep, StructuralInvariants) {
  const std::uint32_t d = GetParam();
  const Graph k = make_kautz(d);
  EXPECT_EQ(k.num_nodes(), kautz_size(d));
  EXPECT_TRUE(is_connected(k));
  EXPECT_LE(k.max_degree(), 4u);
  // Kautz diameter is d+1 (undirected can only be smaller).
  EXPECT_LE(diameter(k), d + 1);
}

INSTANTIATE_TEST_SUITE_P(Dims, KautzSweep, ::testing::Values(1u, 2u, 3u, 5u, 7u));

TEST(Kautz, SmallCasesExact) {
  // K(2,1): 6 vertices (the octahedron-like shift graph).
  const Graph k1 = make_kautz(1);
  EXPECT_EQ(k1.num_nodes(), 6u);
  EXPECT_TRUE(is_connected(k1));
  EXPECT_THROW((void)make_kautz(0), std::invalid_argument);
}

TEST(Stats, SummaryBasics) {
  const Summary s = summarize({3.0, 1.0, 2.0, 4.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(1.25), 1e-12);
}

TEST(Stats, OddMedianAndEmpty) {
  EXPECT_DOUBLE_EQ(summarize({5.0, 1.0, 3.0}).median, 3.0);
  EXPECT_EQ(summarize({}).count, 0u);
}

}  // namespace
}  // namespace upn
