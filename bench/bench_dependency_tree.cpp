// Experiments FIG1 + L3.10 -- dependency trees in Gamma_{G_0}.
//
// Lemma 3.10 promises, for every root in a (4a^2)-torus block, a binary
// dependency tree with leaves covering the block, size <= 48 a^2 and depth
// ~a.  The table sweeps a and reports the measured worst-case size constant
// (size / a^2) and depth constant (depth / a) over all roots of a block --
// our construction lands at depth ~2a (an L x L torus has diameter L; the
// paper's "diameter a" undercounts by 2x), which downstream lemmas absorb.
//
// The per-root census runs one pool task per root (--threads=N); the
// worst-case reduction is ordered, so the table is byte-identical for
// every N.
#include <iostream>
#include <string>

#include "bench/harness.hpp"
#include "src/lowerbound/dependency_tree.hpp"
#include "src/topology/multitorus.hpp"
#include "src/util/table.hpp"

namespace {

using namespace upn;

struct RootCensus {
  std::size_t size = 0;
  std::uint32_t depth = 0;
  bool valid = false;
};

void print_experiment_table(ThreadPool& pool) {
  std::cout << "=== L3.10/FIG1: dependency-tree size and depth vs a (worst root, "
               "pool-swept) ===\n";
  Table table{{"a", "block 4a^2", "max size", "48a^2", "size/a^2", "depth", "depth/a",
               "all valid"}};
  for (const std::uint32_t a : {1u, 2u, 3u, 4u, 6u, 8u}) {
    const std::uint32_t side = 2 * a;
    const std::uint32_t n = 4 * side * side;
    const MultitorusLayout layout = multitorus_layout(n, side);
    const Graph mt = make_multitorus(n, side);
    const auto block = layout.block_nodes(0);
    const std::vector<RootCensus> censuses =
        pool.parallel_map<RootCensus>(block.size(), [&](std::size_t i) {
          const DependencyTree tree = build_block_dependency_tree(layout, 0, block[i]);
          return RootCensus{tree.size(), tree.depth,
                            validate_dependency_tree(tree, mt, block)};
        });
    std::size_t max_size = 0;
    std::uint32_t depth = 0;
    bool all_valid = true;
    for (const RootCensus& census : censuses) {
      max_size = std::max(max_size, census.size);
      depth = std::max(depth, census.depth);
      all_valid = all_valid && census.valid;
    }
    table.add_row({std::uint64_t{a}, std::uint64_t{block.size()}, std::uint64_t{max_size},
                   std::uint64_t{48 * a * a},
                   static_cast<double>(max_size) / (a * a), std::uint64_t{depth},
                   static_cast<double>(depth) / a, std::string{all_valid ? "yes" : "NO"}});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  upn::bench::Harness harness{"dependency_tree", argc, argv};

  harness.once("tree_census_table", [&] { print_experiment_table(harness.pool()); });

  for (const std::uint32_t a : {2u, 4u, 8u, 16u}) {
    const std::uint32_t side = 2 * a;
    const std::uint32_t n = 4 * side * side;
    const MultitorusLayout layout = multitorus_layout(n, side);
    harness.measure("build_tree/a=" + std::to_string(a), [&] {
      const DependencyTree tree = build_block_dependency_tree(layout, 0, 0);
      upn::bench::keep(tree.size());
    });
  }

  for (const std::uint32_t a : {2u, 4u, 8u}) {
    const std::uint32_t side = 2 * a;
    const std::uint32_t n = 4 * side * side;
    const MultitorusLayout layout = multitorus_layout(n, side);
    const Graph mt = make_multitorus(n, side);
    const auto block = layout.block_nodes(0);
    const DependencyTree tree = build_block_dependency_tree(layout, 0, 0);
    harness.measure("validate_tree/a=" + std::to_string(a), [&] {
      upn::bench::keep(validate_dependency_tree(tree, mt, block));
    });
  }

  return harness.finish();
}
