// Experiments FIG1 + L3.10 -- dependency trees in Gamma_{G_0}.
//
// Lemma 3.10 promises, for every root in a (4a^2)-torus block, a binary
// dependency tree with leaves covering the block, size <= 48 a^2 and depth
// ~a.  The table sweeps a and reports the measured worst-case size constant
// (size / a^2) and depth constant (depth / a) over all roots of a block --
// our construction lands at depth ~2a (an L x L torus has diameter L; the
// paper's "diameter a" undercounts by 2x), which downstream lemmas absorb.
#include <benchmark/benchmark.h>

#include <iostream>

#include "src/lowerbound/dependency_tree.hpp"
#include "src/topology/multitorus.hpp"
#include "src/util/table.hpp"

namespace {

using namespace upn;

void print_experiment_table() {
  std::cout << "=== L3.10/FIG1: dependency-tree size and depth vs a (worst root) ===\n";
  Table table{{"a", "block 4a^2", "max size", "48a^2", "size/a^2", "depth", "depth/a",
               "all valid"}};
  for (const std::uint32_t a : {1u, 2u, 3u, 4u, 6u, 8u}) {
    const std::uint32_t side = 2 * a;
    const std::uint32_t n = 4 * side * side;
    const MultitorusLayout layout = multitorus_layout(n, side);
    const Graph mt = make_multitorus(n, side);
    const auto block = layout.block_nodes(0);
    std::size_t max_size = 0;
    std::uint32_t depth = 0;
    bool all_valid = true;
    for (const NodeId root : block) {
      const DependencyTree tree = build_block_dependency_tree(layout, 0, root);
      max_size = std::max(max_size, tree.size());
      depth = std::max(depth, tree.depth);
      all_valid = all_valid && validate_dependency_tree(tree, mt, block);
    }
    table.add_row({std::uint64_t{a}, std::uint64_t{block.size()}, std::uint64_t{max_size},
                   std::uint64_t{48 * a * a},
                   static_cast<double>(max_size) / (a * a), std::uint64_t{depth},
                   static_cast<double>(depth) / a, std::string{all_valid ? "yes" : "NO"}});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void BM_BuildTree(benchmark::State& state) {
  const auto a = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t side = 2 * a;
  const std::uint32_t n = 4 * side * side;
  const MultitorusLayout layout = multitorus_layout(n, side);
  for (auto _ : state) {
    const DependencyTree tree = build_block_dependency_tree(layout, 0, 0);
    benchmark::DoNotOptimize(tree.size());
  }
  state.counters["a"] = a;
}
BENCHMARK(BM_BuildTree)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_ValidateTree(benchmark::State& state) {
  const auto a = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t side = 2 * a;
  const std::uint32_t n = 4 * side * side;
  const MultitorusLayout layout = multitorus_layout(n, side);
  const Graph mt = make_multitorus(n, side);
  const auto block = layout.block_nodes(0);
  const DependencyTree tree = build_block_dependency_tree(layout, 0, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(validate_dependency_tree(tree, mt, block));
  }
}
BENCHMARK(BM_ValidateTree)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  print_experiment_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
