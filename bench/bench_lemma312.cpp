// Experiment L3.12 -- the averaging lemma on a real protocol.
//
// A protocol from the Theorem 2.1 simulator (guest containing G_0) is
// replayed through the Lemma 3.12 selection: the critical-time set Z_S must
// cover at least a quarter of the usable guest steps, and for each t0 in
// Z_S the chosen per-block roots satisfy inequalities (1) and (2).  Both the
// exact Markov bounds (guaranteed) and the paper-constant forms are shown.
#include <algorithm>
#include <iostream>
#include <string>

#include "bench/harness.hpp"
#include "src/core/embedding.hpp"
#include "src/core/universal_sim.hpp"
#include "src/lowerbound/lemma_verify.hpp"
#include "src/lowerbound/main_lemma.hpp"
#include "src/pebble/validator.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/table.hpp"

namespace {

using namespace upn;

struct Fixture {
  G0 g0;
  Graph guest;
  Graph host;
  Protocol protocol{1, 1, 1};
};

Fixture make_fixture(std::uint32_t guest_steps, std::uint64_t seed) {
  Rng rng{seed};
  Fixture fx;
  fx.host = make_butterfly(2);  // m = 12
  const std::uint32_t m = fx.host.num_nodes();
  const std::uint32_t a = g0_block_parameter(m);
  const std::uint32_t n = g0_round_guest_size(60, a);
  fx.g0 = make_g0(n, m, rng);
  fx.guest = make_random_regular_with_subgraph(fx.g0.graph, kGuestDegree, rng);
  UniversalSimulator sim{fx.guest, fx.host, make_random_embedding(n, m, rng)};
  UniversalSimOptions options;
  options.emit_protocol = true;
  UniversalSimResult result = sim.run(guest_steps, options);
  fx.protocol = std::move(*result.protocol);
  return fx;
}

void print_experiment_table() {
  const std::uint32_t T = 20;
  const Fixture fx = make_fixture(T, 2025);
  const ValidationResult validation = validate_protocol(fx.protocol, fx.guest, fx.host);
  std::cout << "=== L3.12: protocol of " << fx.guest.name() << " on " << fx.host.name()
            << ", T = " << T << ", protocol "
            << (validation.ok ? "valid" : ("INVALID: " + validation.error)) << " ===\n";
  const ProtocolMetrics metrics{fx.protocol};
  const Lemma312Report report = verify_lemma312(metrics, fx.g0);
  std::cout << "tree depth = " << report.tree_depth << ", k = " << report.inefficiency
            << ", |Z_S| = " << report.z_set.size() << " of " << (T - report.tree_depth)
            << " (need >= 1/4: " << (report.z_large_enough ? "yes" : "NO") << ")\n";
  Table table{{"t0", "sum q_rj", "bound (Markov)", "bound (paper)", "sum w_rj",
               "bound (Markov)", "bound (paper)", "ok"}};
  std::size_t shown = 0;
  for (const Lemma312Choice& choice : report.choices) {
    if (shown++ >= 8) break;  // keep the table readable
    table.add_row({std::uint64_t{choice.t0}, std::uint64_t{choice.sum_root_weights},
                   choice.bound_roots, choice.paper_bound_roots,
                   std::uint64_t{choice.sum_tree_weights}, choice.bound_trees,
                   choice.paper_bound_trees,
                   std::string{(choice.roots_ok && choice.trees_ok) ? "yes" : "NO"}});
  }
  table.print(std::cout);
  std::cout << "(showing " << std::min<std::size_t>(8, report.choices.size()) << " of "
            << report.choices.size() << " critical times)\n";
  std::cout << "Lemma 3.13(2): max_t0 sum_i q_{i,t0} = " << report.max_sum_q
            << " vs q*n*k form " << report.bound_sum_q << " ("
            << (report.sum_q_ok ? "ok" : "exceeded") << ")\n\n";
}

void print_main_lemma_table() {
  const std::uint32_t T = 20;
  const Fixture fx = make_fixture(T, 4711);
  const ProtocolMetrics metrics{fx.protocol};
  const MainLemmaReport report = verify_main_lemma(metrics, fx.g0);
  std::cout << "=== L3.4 (Main Lemma): all three properties per critical time ===\n";
  std::cout << "gamma = " << report.gamma
            << " (from certified expander), |D_i| threshold n/sqrt(m) = "
            << report.small_d_threshold << "\n";
  Table table{{"t0", "sum|B_i|", "bound (2)", "(2) ok", "#small D_i", "need (3)",
               "(3) ok", "measured gamma"}};
  std::size_t shown = 0;
  for (const MainLemmaFragmentRow& row : report.fragments) {
    if (shown++ >= 6) break;
    table.add_row({std::uint64_t{row.t0}, row.sum_b, row.bound_sum_b,
                   std::string{row.property2 ? "yes" : "NO"}, std::uint64_t{row.small_d},
                   row.required_small_d, std::string{row.property3 ? "yes" : "no"},
                   row.measured_gamma});
  }
  table.print(std::cout);
  std::cout << "properties: (1) |Z_S| large: " << (report.property1 ? "yes" : "NO")
            << "  (2) all: " << (report.property2_all ? "yes" : "NO")
            << "  (3) all: " << (report.property3_all ? "yes" : "no")
            << "   [at toy scale n/sqrt(m) ~ n/3, so (3) is near-vacuous; the\n"
               "    asymptotic regime needs m >> 1]\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  upn::bench::Harness harness{"lemma312", argc, argv};

  harness.once("lemma312_table", [] { print_experiment_table(); });
  harness.once("main_lemma_table", [] { print_main_lemma_table(); });

  for (const std::uint32_t T : {14u, 20u}) {
    const Fixture fx = make_fixture(T, 7);
    const ProtocolMetrics metrics{fx.protocol};
    harness.measure("verify_lemma312/T=" + std::to_string(T), [&] {
      const Lemma312Report report = verify_lemma312(metrics, fx.g0);
      upn::bench::keep(report.z_set.size());
    });
  }

  return harness.finish();
}
