// Shared benchmark harness: warmup + repetitions + machine-readable output.
//
// Every bench_* binary builds on this instead of hand-rolled timing: it
// parses the common flags, owns the thread pool for parallel sweeps, times
// named workloads, and writes one BENCH_<name>.json per run so the repo
// accumulates a perf trajectory future PRs can regress against.  The JSON
// schema is documented in docs/BENCHMARKS.md.
//
// Flags (all optional):
//   --threads=N   pool width for parallel sections (default: UPN_THREADS or 1)
//   --reps=R      timed repetitions per measure() workload (default 5)
//   --warmup=W    untimed warmup runs per measure() workload (default 1)
//   --json=PATH   output path (default BENCH_<name>.json in the CWD)
//   --no-json     skip writing the JSON file
//   --trace=PATH  also record a Chrome trace-event file of all spans
//
// The harness switches the obs registry on for the whole run and attributes
// deterministic metric deltas to each once()/measure() section, so the JSON
// (schema v2, see docs/BENCHMARKS.md) decomposes every timed number into the
// per-phase activity the paper reasons about -- routing steps vs replay
// steps vs pebble moves.
//
// Timings vary run to run; everything else a bench prints or records is
// seeded and byte-stable, including across --threads values (the
// determinism contract of src/util/par and src/obs).
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/metrics.hpp"
#include "src/util/par.hpp"

namespace upn::bench {

/// Prevents the optimizer from deleting a computed value; the moral
/// equivalent of google-benchmark's DoNotOptimize for harness workloads.
template <typename T>
inline void keep(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

/// Wall times for one named workload (milliseconds, one entry per rep),
/// plus the deterministic metric activity the section generated (summed
/// over warmup + reps; thread-count-independent).
struct BenchResult {
  std::string name;
  std::vector<double> times_ms;
  std::vector<obs::MetricRow> metrics;

  [[nodiscard]] double median_ms() const;
  [[nodiscard]] double p10_ms() const;
  [[nodiscard]] double p90_ms() const;
  [[nodiscard]] double mean_ms() const;
  [[nodiscard]] double min_ms() const;
  [[nodiscard]] double max_ms() const;
};

class Harness {
 public:
  /// Parses flags; prints a usage message and exits(2) on unknown or
  /// malformed arguments so CI catches typos.
  Harness(std::string name, int argc, const char* const* argv);
  ~Harness();

  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  [[nodiscard]] unsigned threads() const noexcept;
  [[nodiscard]] std::size_t reps() const noexcept { return reps_; }

  /// The pool parallel experiment sections share; sized by --threads.
  [[nodiscard]] ThreadPool& pool();

  /// Runs fn exactly once (it may print a table) and records the single
  /// wall time under `label`.
  void once(const std::string& label, const std::function<void()>& fn);

  /// Runs fn --warmup times untimed, then --reps times timed; fn should be
  /// a pure workload that prints nothing.
  void measure(const std::string& label, const std::function<void()>& fn);

  /// Writes BENCH_<name>.json (unless --no-json) and returns the process
  /// exit code for main().
  [[nodiscard]] int finish();

 private:
  std::string name_;
  std::string json_path_;
  std::string trace_path_;
  bool write_json_ = true;
  std::size_t reps_ = 5;
  std::size_t warmup_ = 1;
  unsigned threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<BenchResult> results_;
};

}  // namespace upn::bench
