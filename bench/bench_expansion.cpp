// Experiment L3.15 -- generating-pebble expansion dynamics.
//
// For an expander guest, Prop 3.17 caps the next level's frontier at
// (alpha/beta) n when the current level first reaches alpha n, forcing
// alpha (1 - 1/beta) n new generating pebbles per phase; the phase gaps
// tau_{t+1} - tau_t lower-bound the simulation time.  The table reports the
// measured tau_t, frontiers and gaps on a real protocol.
#include <iostream>
#include <string>

#include "bench/harness.hpp"
#include "src/core/embedding.hpp"
#include "src/core/universal_sim.hpp"
#include "src/lowerbound/expansion.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/expander.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/table.hpp"

namespace {

using namespace upn;

void print_experiment_table() {
  Rng rng{0xabcd};
  const std::uint32_t n = 256;
  const Graph expander = make_random_expander(n, rng, 0.1);
  const ExpanderCertificate cert = verify_expander(expander, 0.1);
  const Graph guest = make_random_regular_with_subgraph(expander, kGuestDegree, rng);
  const Graph host = make_butterfly(3);  // m = 32
  std::cout << "=== L3.15: expander guest (lambda = " << cert.lambda
            << ", beta = " << cert.beta << ") on " << host.name() << " ===\n";
  UniversalSimulator sim{guest, host, make_random_embedding(n, host.num_nodes(), rng)};
  UniversalSimOptions options;
  options.emit_protocol = true;
  const UniversalSimResult result = sim.run(12, options);
  std::cout << "simulation verified: " << (result.configs_match ? "yes" : "NO")
            << ", slowdown = " << result.slowdown << "\n";
  const ProtocolMetrics metrics{*result.protocol};
  const ExpansionReport report = analyze_expansion(metrics, cert.alpha, cert.beta);
  Table table{{"t", "tau_t", "e_t(tau_t)", "cap (a/b)n", "ok"}};
  for (const ExpansionStep& step : report.steps) {
    table.add_row({std::uint64_t{step.t}, std::uint64_t{step.tau},
                   std::uint64_t{step.frontier}, step.bound,
                   std::string{step.ok ? "yes" : "NO"}});
  }
  table.print(std::cout);
  std::cout << "min phase gap tau_{t+1}-tau_t = " << report.min_gap
            << " host steps; forced new pebbles per phase = " << report.pebbles_per_phase
            << "\nall Prop 3.17 caps hold: " << (report.all_ok ? "yes" : "NO") << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  upn::bench::Harness harness{"expansion", argc, argv};

  harness.once("expansion_table", [] { print_experiment_table(); });

  {
    Rng rng{9};
    const std::uint32_t n = 128;
    const Graph guest = make_random_regular(n, kGuestDegree, rng);
    const Graph host = make_butterfly(2);
    UniversalSimulator sim{guest, host, make_random_embedding(n, host.num_nodes(), rng)};
    UniversalSimOptions options;
    options.emit_protocol = true;
    const UniversalSimResult result = sim.run(8, options);
    const ProtocolMetrics metrics{*result.protocol};
    harness.measure("analyze_expansion/n=128", [&] {
      const ExpansionReport report = analyze_expansion(metrics, 0.1, 1.2);
      upn::bench::keep(report.steps.size());
    });
  }

  return harness.finish();
}
