// Experiments THM3.1 + UB-vs-LB -- the headline trade-off.
//
// Theorem 3.1: m*s = Omega(n log m).  The first table evaluates the full
// counting chain (Lemmas 3.3/3.5/3.13, Prop 3.6) at concrete (n, m) and
// extracts the minimal feasible inefficiency k; k / log2 m should be
// constant.  The second table sandwiches the measured Theorem 2.1 slowdown
// between the load bound n/m and the lower/upper bound shapes -- the
// paper's Section 4 conclusion ("the simulation cannot perform better than
// a simple embedding on the butterfly") made visible.
//
// The (n, m) sweep behind the sandwich table runs one pool task per host
// dimension (--threads=N); the printed rows are byte-identical for every N.
#include <cmath>
#include <iostream>
#include <string>

#include "bench/harness.hpp"
#include "src/core/slowdown.hpp"
#include "src/lowerbound/counting.hpp"
#include "src/lowerbound/tradeoff.hpp"
#include "src/obs/obs.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/table.hpp"

namespace {

using namespace upn;

constexpr std::uint32_t kSweepGuestSize = 512;
constexpr std::uint32_t kSweepGuestSteps = 3;
constexpr std::uint64_t kSweepSeed = 31;

Graph sweep_guest() {
  Rng rng{kSweepSeed};
  return make_random_regular(kSweepGuestSize, kGuestDegree, rng);
}

void print_counting_table() {
  std::cout << "=== THM3.1: minimal feasible inefficiency k from the counting chain "
               "(c=16, d=4, paper constants) ===\n";
  const CountingConstants constants;
  const double n = 1e12;
  std::vector<double> ms;
  for (double m = 1 << 10; m <= 1e10; m *= 32) ms.push_back(m);
  Table table{{"m", "log2 m", "k_min (search)", "k (closed form)", "k/log2(m)",
               "s bound", "m*s/(n log m)"}};
  for (const TradeoffRow& row : lower_bound_sweep(n, ms, constants)) {
    table.add_row({row.m, std::log2(row.m), row.k_counting, row.k_closed_form,
                   row.k_counting / std::log2(row.m), row.slowdown_bound,
                   row.ms_over_nlogm});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void print_sandwich_table(ThreadPool& pool) {
  std::cout << "=== UB-vs-LB: measured slowdown vs load bound and (n/m) log2 m "
               "(n = " << kSweepGuestSize << ", T = " << kSweepGuestSteps
            << ", pool-swept) ===\n";
  const Graph guest = sweep_guest();
  Table table{{"m", "n/m (LB, load)", "s measured", "(n/m)log2m (UB shape)",
               "s/load", "s/shape"}};
  for (const SlowdownRow& row : sweep_butterfly_hosts_par(
           guest, kSweepGuestSteps, kSweepGuestSize, kSweepSeed, pool)) {
    table.add_row({std::uint64_t{row.m}, row.load_bound, row.slowdown, row.paper_bound,
                   row.slowdown / row.load_bound, row.normalized});
  }
  table.print(std::cout);
  std::cout << "\nSection 4: for m <= n, dynamic simulation cannot beat the static\n"
               "butterfly embedding; measured s tracks (n/m) log2 m, not n/m.\n\n";
}

std::uint64_t counter_of(const std::vector<obs::MetricRow>& rows, const std::string& name) {
  for (const obs::MetricRow& row : rows) {
    if (row.name == name) return row.count;
  }
  return 0;
}

/// Where does the measured slowdown actually go?  Re-runs the butterfly
/// sweep serially, one host at a time, and splits each host's cost into
/// communication (routing sub-steps) and computation (load-driven work)
/// using the sim.universal.* metric deltas around each run.
void print_decomposition_table() {
  std::cout << "=== slowdown decomposition: communication vs computation per host "
               "(sim.universal.* metric deltas) ===\n";
  const Graph guest = sweep_guest();
  Rng rng{kSweepSeed};
  Table table{{"m", "s measured", "comm steps", "compute steps", "comm share"}};
  for (const std::uint32_t dim : {1u, 2u, 3u, 4u}) {
    const Graph host = make_butterfly(dim);
    const auto before = obs::registry().snapshot(obs::MetricKind::kDeterministic);
    const SlowdownRow row = measure_slowdown(guest, host, kSweepGuestSteps, rng);
    const auto delta =
        obs::delta_rows(before, obs::registry().snapshot(obs::MetricKind::kDeterministic));
    const std::uint64_t comm = counter_of(delta, "sim.universal.comm_steps");
    const std::uint64_t compute = counter_of(delta, "sim.universal.compute_steps");
    const std::uint64_t total = comm + compute;
    table.add_row({std::uint64_t{row.m}, row.slowdown, comm, compute,
                   total == 0 ? 0.0
                              : static_cast<double>(comm) / static_cast<double>(total)});
  }
  table.print(std::cout);
  std::cout << "\nTheorem 2.1's log factor lives entirely in the comm column: the\n"
               "compute cost per host step is the embedding load, while routing\n"
               "pays the congestion+dilation of the levelled path system.\n\n";
}

void print_upper_tradeoff_table() {
  std::cout << "=== [14] upper-bound trade-off: s * log2(l) = O(log2 n) for hosts "
               "of size n*l ===\n";
  const double n = 1 << 20;
  Table table{{"l", "m = n*l", "s achievable", "s * log2 l"}};
  for (double ell : {2.0, 16.0, 256.0, 65536.0}) {
    const double s = upper_bound_slowdown(n, ell);
    table.add_row({ell, n * ell, s, s * std::log2(ell)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  upn::bench::Harness harness{"tradeoff", argc, argv};

  harness.once("counting_table", [] { print_counting_table(); });
  harness.once("sandwich_table", [&] { print_sandwich_table(harness.pool()); });
  harness.once("slowdown_decomposition", [] { print_decomposition_table(); });
  harness.once("upper_tradeoff_table", [] { print_upper_tradeoff_table(); });

  // The headline perf section: the standard slowdown sweep, repeated and
  // timed.  Compare median_ms across --threads=1 / --threads=4 runs for the
  // speedup curve; the resulting rows are identical either way.
  {
    const Graph guest = sweep_guest();
    harness.measure("sweep_butterfly_hosts/n=512", [&] {
      const auto rows = sweep_butterfly_hosts_par(guest, kSweepGuestSteps,
                                                  kSweepGuestSize, kSweepSeed,
                                                  harness.pool());
      upn::bench::keep(rows.size());
    });
  }

  const CountingConstants constants;
  for (const int log2m : {10, 20, 30}) {
    harness.measure("min_feasible_inefficiency/log2m=" + std::to_string(log2m), [&] {
      const double m = std::pow(2.0, static_cast<double>(log2m));
      upn::bench::keep(min_feasible_inefficiency(1e12, m, constants));
    });
  }

  return harness.finish();
}
