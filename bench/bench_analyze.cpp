// Experiment ANALYZE -- the static-analysis engine as its own workload.
//
// upn_analyze runs on every PR, so its wall time is part of the edit loop.
// The bench collects the real repo tree once (IO measured separately from
// analysis) and then times the full pass stack -- IR construction, layering,
// contract coverage, concurrency, determinism taint, hot-path, include
// hygiene, and the whole-program call graph with its interprocedural
// passes -- at --jobs {1, 2, 7}, the same thread counts the determinism
// tests pin.  Scaling flattening out here means a pass serialized.  The IR
// cache round-trip is timed on its own: it bounds what --ir-cache can save
// the CI --diff gate.
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "src/util/par.hpp"
#include "tools/analyze/callgraph.hpp"
#include "tools/analyze/engine.hpp"
#include "tools/analyze/ir.hpp"
#include "tools/analyze/passes.hpp"

namespace {

upn::analyze::Input collect_repo(std::size_t& files) {
  upn::analyze::TreeOptions options;
  options.root = UPN_REPO_ROOT;
  options.paths = {"src", "tools", "bench", "tests", "examples"};
  upn::analyze::Input input;
  std::string error;
  if (!upn::analyze::collect_tree(options, input, error)) {
    std::cerr << "bench_analyze: collect_tree failed: " << error << "\n";
    std::exit(1);
  }
  files = input.files.size();
  return input;
}

}  // namespace

int main(int argc, char** argv) {
  upn::bench::Harness harness{"analyze", argc, argv};

  std::size_t files = 0;
  upn::analyze::Input input = collect_repo(files);

  harness.once("repo_summary", [&] {
    const upn::analyze::Report report = upn::analyze::analyze(input);
    std::cout << "=== ANALYZE: " << report.files << " files, "
              << report.findings.size() << " findings, "
              << report.baselined.size() << " baselined (full pass stack) ===\n\n";
  });

  harness.measure("collect_tree", [&] {
    std::size_t n = 0;
    const upn::analyze::Input fresh = collect_repo(n);
    upn::bench::keep(fresh.files.size());
  });

  for (const unsigned jobs : {1u, 2u, 7u}) {
    input.jobs = jobs;
    harness.measure("analyze/jobs=" + std::to_string(jobs), [&] {
      const upn::analyze::Report report = upn::analyze::analyze(input);
      upn::bench::keep(report.findings.size() + report.baselined.size());
    });
  }

  // ---- call graph + interprocedural stack, isolated from the other passes.
  std::vector<upn::analyze::Unit> units;
  units.reserve(input.files.size());
  for (const auto& file : input.files) {
    units.push_back(upn::analyze::build_unit(file.path, file.content));
  }

  for (const unsigned jobs : {1u, 7u}) {
    upn::ThreadPool pool{jobs};
    harness.measure("callgraph/jobs=" + std::to_string(jobs), [&] {
      const upn::analyze::CallGraph graph = upn::analyze::build_callgraph(units, pool);
      upn::bench::keep(graph.nodes.size() + graph.edges.size() + graph.opens.size());
    });
  }

  {
    upn::ThreadPool pool{7};
    const upn::analyze::CallGraph graph = upn::analyze::build_callgraph(units, pool);
    const upn::analyze::LayerSpec spec =
        upn::analyze::parse_layers(input.layers_path, input.layers_text);
    harness.measure("interproc_passes", [&] {
      std::size_t findings = 0;
      findings += upn::analyze::run_lock_order_pass(graph, units).size();
      findings += upn::analyze::run_contract_propagation_pass(graph, units, spec).size();
      findings += upn::analyze::run_exception_safety_pass(graph, units).size();
      findings += upn::analyze::run_dead_function_pass(graph, units).size();
      upn::bench::keep(findings);
    });
  }

  // The serialize -> deserialize round-trip every --ir-cache hit pays in
  // place of re-tokenizing the unit from source.
  harness.measure("ir_cache_roundtrip", [&] {
    std::size_t bytes = 0;
    for (std::size_t i = 0; i < units.size(); ++i) {
      const std::string serialized = upn::analyze::serialize_unit(units[i]);
      upn::analyze::Unit loaded;
      if (upn::analyze::deserialize_unit(input.files[i].path, input.files[i].content,
                                         serialized, loaded)) {
        bytes += serialized.size();
      }
    }
    upn::bench::keep(bytes);
  });

  return harness.finish();
}
