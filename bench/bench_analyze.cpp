// Experiment ANALYZE -- the static-analysis engine as its own workload.
//
// upn_analyze runs on every PR, so its wall time is part of the edit loop.
// The bench collects the real repo tree once (IO measured separately from
// analysis) and then times the full pass stack -- IR construction, layering,
// contract coverage, concurrency, determinism taint, hot-path, include
// hygiene -- at --jobs {1, 2, 7}, the same thread counts the determinism
// tests pin.  Scaling flattening out here means a pass serialized.
#include <iostream>
#include <string>

#include "bench/harness.hpp"
#include "tools/analyze/engine.hpp"

namespace {

upn::analyze::Input collect_repo(std::size_t& files) {
  upn::analyze::TreeOptions options;
  options.root = UPN_REPO_ROOT;
  options.paths = {"src", "tools", "bench", "tests", "examples"};
  upn::analyze::Input input;
  std::string error;
  if (!upn::analyze::collect_tree(options, input, error)) {
    std::cerr << "bench_analyze: collect_tree failed: " << error << "\n";
    std::exit(1);
  }
  files = input.files.size();
  return input;
}

}  // namespace

int main(int argc, char** argv) {
  upn::bench::Harness harness{"analyze", argc, argv};

  std::size_t files = 0;
  upn::analyze::Input input = collect_repo(files);

  harness.once("repo_summary", [&] {
    const upn::analyze::Report report = upn::analyze::analyze(input);
    std::cout << "=== ANALYZE: " << report.files << " files, "
              << report.findings.size() << " findings, "
              << report.baselined.size() << " baselined (full pass stack) ===\n\n";
  });

  harness.measure("collect_tree", [&] {
    std::size_t n = 0;
    const upn::analyze::Input fresh = collect_repo(n);
    upn::bench::keep(fresh.files.size());
  });

  for (const unsigned jobs : {1u, 2u, 7u}) {
    input.jobs = jobs;
    harness.measure("analyze/jobs=" + std::to_string(jobs), [&] {
      const upn::analyze::Report report = upn::analyze::analyze(input);
      upn::bench::keep(report.findings.size() + report.baselined.size());
    });
  }

  return harness.finish();
}
