#include "bench/harness.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "src/obs/obs.hpp"
#include "src/util/cli.hpp"

namespace upn::bench {

namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point start, Clock::time_point stop) {
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

/// Quantile of a sample set with linear interpolation between order
/// statistics (deterministic; q in [0, 1]).
double quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  std::sort(sorted.begin(), sorted.end());
  const double position = q * static_cast<double>(sorted.size() - 1);
  const auto lower = static_cast<std::size_t>(position);
  const std::size_t upper = std::min(lower + 1, sorted.size() - 1);
  const double fraction = position - static_cast<double>(lower);
  return sorted[lower] + fraction * (sorted[upper] - sorted[lower]);
}

void append_json_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_number(double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  return os.str();
}

/// Deterministic registry state, used for per-section delta attribution.
std::vector<obs::MetricRow> deterministic_snapshot() {
  return obs::registry().snapshot(obs::MetricKind::kDeterministic);
}

}  // namespace

double BenchResult::median_ms() const { return quantile(times_ms, 0.5); }
double BenchResult::p10_ms() const { return quantile(times_ms, 0.1); }
double BenchResult::p90_ms() const { return quantile(times_ms, 0.9); }
double BenchResult::min_ms() const { return quantile(times_ms, 0.0); }
double BenchResult::max_ms() const { return quantile(times_ms, 1.0); }

double BenchResult::mean_ms() const {
  if (times_ms.empty()) return 0.0;
  double sum = 0;
  for (const double t : times_ms) sum += t;
  return sum / static_cast<double>(times_ms.size());
}

Harness::Harness(std::string name, int argc, const char* const* argv)
    : name_(std::move(name)), json_path_("BENCH_" + name_ + ".json") {
  try {
    const Cli cli{argc, argv};
    threads_ = static_cast<unsigned>(
        cli.get_u64("threads", ThreadPool::default_threads()));
    if (threads_ < 1) threads_ = 1;
    reps_ = static_cast<std::size_t>(cli.get_u64("reps", 5));
    if (reps_ < 1) reps_ = 1;
    warmup_ = static_cast<std::size_t>(cli.get_u64("warmup", 1));
    json_path_ = cli.get("json", json_path_);
    trace_path_ = cli.get("trace", "");
    write_json_ = !cli.has("no-json");
    const std::vector<std::string> unused = cli.unused();
    if (!unused.empty()) {
      std::cerr << "bench_" << name_ << ": unknown flag --" << unused.front()
                << "\nusage: bench_" << name_
                << " [--threads=N] [--reps=R] [--warmup=W] [--json=PATH] [--no-json]"
                   " [--trace=PATH]\n";
      std::exit(2);
    }
  } catch (const std::exception& error) {
    std::cerr << "bench_" << name_ << ": " << error.what() << "\n";
    std::exit(2);
  }
  // Benches always collect metrics: the snapshot is part of the BENCH json
  // (schema v2) and per-phase deltas are what EXPERIMENTS.md decomposes.
  obs::set_enabled(true);
  if (!trace_path_.empty()) obs::start_trace(trace_path_);
}

Harness::~Harness() = default;

unsigned Harness::threads() const noexcept { return threads_; }

ThreadPool& Harness::pool() {
  if (!pool_) pool_ = std::make_unique<ThreadPool>(threads_);
  return *pool_;
}

void Harness::once(const std::string& label, const std::function<void()>& fn) {
  BenchResult result;
  result.name = label;
  const std::vector<obs::MetricRow> before = deterministic_snapshot();
  const auto start = Clock::now();
  fn();
  result.times_ms.push_back(elapsed_ms(start, Clock::now()));
  result.metrics = obs::delta_rows(before, deterministic_snapshot());
  results_.push_back(std::move(result));
}

void Harness::measure(const std::string& label, const std::function<void()>& fn) {
  BenchResult result;
  result.name = label;
  const std::vector<obs::MetricRow> before = deterministic_snapshot();
  for (std::size_t w = 0; w < warmup_; ++w) fn();
  for (std::size_t r = 0; r < reps_; ++r) {
    const auto start = Clock::now();
    fn();
    result.times_ms.push_back(elapsed_ms(start, Clock::now()));
  }
  // Attributed activity covers warmup + reps; deterministic for fixed
  // --reps/--warmup regardless of --threads.
  result.metrics = obs::delta_rows(before, deterministic_snapshot());
  results_.push_back(std::move(result));
}

int Harness::finish() {
  std::cout << "--- bench_" << name_ << ": " << results_.size()
            << " measured sections, threads = " << threads_ << ", reps = " << reps_
            << " ---\n";
  for (const BenchResult& result : results_) {
    std::cout << "  " << result.name << ": median " << result.median_ms()
              << " ms (p10 " << result.p10_ms() << ", p90 " << result.p90_ms()
              << ", reps " << result.times_ms.size() << ")\n";
  }
  if (!trace_path_.empty()) {
    if (obs::write_trace()) {
      std::cout << "wrote " << trace_path_ << "\n";
    } else {
      std::cerr << "bench_" << name_ << ": cannot write trace " << trace_path_ << "\n";
      return 1;
    }
  }
  if (!write_json_) return 0;

  std::string json;
  json += "{\n";
  json += "  \"schema_version\": 2,\n";
  json += "  \"benchmark\": \"";
  append_json_escaped(json, name_);
  json += "\",\n";
  json += "  \"threads\": " + std::to_string(threads_) + ",\n";
  json += "  \"warmup\": " + std::to_string(warmup_) + ",\n";
  json += "  \"repetitions\": " + std::to_string(reps_) + ",\n";
  json += "  \"results\": [\n";
  for (std::size_t i = 0; i < results_.size(); ++i) {
    const BenchResult& result = results_[i];
    json += "    {\"name\": \"";
    append_json_escaped(json, result.name);
    json += "\", \"reps\": " + std::to_string(result.times_ms.size());
    json += ", \"median_ms\": " + json_number(result.median_ms());
    json += ", \"p10_ms\": " + json_number(result.p10_ms());
    json += ", \"p90_ms\": " + json_number(result.p90_ms());
    json += ", \"mean_ms\": " + json_number(result.mean_ms());
    json += ", \"min_ms\": " + json_number(result.min_ms());
    json += ", \"max_ms\": " + json_number(result.max_ms());
    json += ",\n     \"metrics\": ";
    {
      std::ostringstream metric_json;
      obs::write_snapshot_json(metric_json, result.metrics, 5);
      json += metric_json.str();
    }
    json += i + 1 < results_.size() ? "},\n" : "}\n";
  }
  json += "  ],\n";
  // Full end-of-run deterministic registry state: byte-identical across
  // --threads values for a fixed flag set.
  json += "  \"metrics_snapshot\": ";
  {
    std::ostringstream snapshot_json;
    obs::write_snapshot_json(
        snapshot_json, obs::registry().snapshot(obs::MetricKind::kDeterministic), 2);
    json += snapshot_json.str();
  }
  json += "\n}\n";

  std::ofstream file{json_path_};
  if (!file) {
    std::cerr << "bench_" << name_ << ": cannot write " << json_path_ << "\n";
    return 1;
  }
  file << json;
  std::cout << "wrote " << json_path_ << "\n";
  return 0;
}

}  // namespace upn::bench
