// Experiment FAULT -- graceful degradation of the universal host.
//
// Theorem 2.1's slowdown bound assumes pristine hardware; this experiment
// measures how the bound degrades as the host loses links and processors.
// Fault sets are generated with the COUPLED uniform generators (a higher
// rate strictly extends the fault set of a lower rate under the same seed),
// so each curve sweeps nested degradations of one machine: slowdown is
// monotonically non-decreasing in the injected damage until the survivors
// disconnect and the simulation reports failure.
#include <iostream>
#include <string>

#include "bench/harness.hpp"
#include "src/core/fault_tolerant_sim.hpp"
#include "src/fault/fault_plan.hpp"
#include "src/fault/surgery.hpp"
#include "src/obs/obs.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/mesh.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/table.hpp"

namespace {

using namespace upn;

constexpr std::uint64_t kSeed = 0xfa11;
constexpr std::uint64_t kNodePlanSeed = 0xfa1b;
constexpr std::uint32_t kGuestSteps = 3;

struct CurvePoint {
  bool completed = false;
  double slowdown = 0.0;
  FaultSimResult result;
  std::uint64_t route_steps = 0;   ///< routing.sync.steps spent by this point
  std::uint64_t replay_steps = 0;  ///< sim.fault.replay_steps spent by this point
};

/// Counter value of `name` in a delta snapshot (0 when the metric did not
/// move).  Used to decompose a point's slowdown into phase costs.
std::uint64_t counter_of(const std::vector<obs::MetricRow>& rows, const std::string& name) {
  for (const obs::MetricRow& row : rows) {
    if (row.name == name) return row.count;
  }
  return 0;
}

/// Prints the routing-vs-replay split for a finished curve: what fraction of
/// the host's synchronous routing steps were spent re-earning lost progress.
void print_decomposition(std::uint64_t route_steps, std::uint64_t replay_steps) {
  const std::uint64_t total = route_steps + replay_steps;
  std::cout << "cost decomposition: " << route_steps << " routing steps + "
            << replay_steps << " replay steps";
  if (total > 0) {
    std::cout << " (replay share "
              << 100.0 * static_cast<double>(replay_steps) / static_cast<double>(total)
              << "%)";
  }
  std::cout << "\n";
}

std::vector<NodeId> round_robin_embedding(std::uint32_t n, std::uint32_t m) {
  std::vector<NodeId> embedding;
  embedding.reserve(n);
  for (NodeId u = 0; u < n; ++u) embedding.push_back(u % m);
  return embedding;
}

CurvePoint run_point(const Graph& guest, const Graph& host, const FaultPlan& plan) {
  FaultTolerantSimulator sim{guest, host, plan,
                             round_robin_embedding(guest.num_nodes(), host.num_nodes())};
  CurvePoint point;
  const auto before = obs::registry().snapshot(obs::MetricKind::kDeterministic);
  point.result = sim.run(kGuestSteps);
  const auto delta =
      obs::delta_rows(before, obs::registry().snapshot(obs::MetricKind::kDeterministic));
  point.route_steps = counter_of(delta, "routing.sync.steps");
  point.replay_steps = counter_of(delta, "sim.fault.replay_steps");
  point.completed = point.result.completed && point.result.configs_match;
  point.slowdown = point.result.slowdown;
  return point;
}

void print_link_fault_curve(const Graph& host) {
  Rng rng{kSeed};
  const std::uint32_t n = 2 * host.num_nodes();
  const Graph guest = make_random_regular(n, 3, rng);
  std::cout << "--- permanent link faults at step 0, host = " << host.name() << " (m = "
            << host.num_nodes() << ", n = " << n << ", T = " << kGuestSteps << ") ---\n";
  Table table{{"rate", "dead links", "connected", "slowdown", "route steps",
               "replay steps", "reroutes", "status"}};
  double previous = 0.0;
  bool monotone = true;
  std::uint64_t route_total = 0, replay_total = 0;
  for (const double rate : {0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.6}) {
    const FaultPlan plan = make_uniform_link_faults(host, rate, kSeed);
    const DegradationReport health = assess_degradation(host, plan);
    const CurvePoint point = run_point(guest, host, plan);
    route_total += point.route_steps;
    replay_total += point.replay_steps;
    table.add_row({rate, std::uint64_t{health.dead_links},
                   std::string{health.connected ? "yes" : "no"},
                   point.completed ? point.slowdown : 0.0, point.route_steps,
                   point.replay_steps, point.result.reroutes,
                   std::string{point.completed ? "ok" : "FAILED (survivors cut off)"}});
    if (!point.completed) break;  // disconnection ends the sweep
    monotone &= point.slowdown >= previous;
    previous = point.slowdown;
  }
  table.print(std::cout);
  print_decomposition(route_total, replay_total);
  std::cout << "slowdown monotone in damage: " << (monotone ? "yes" : "NO") << "\n\n";
}

void print_node_fault_curve(const Graph& host) {
  Rng rng{kSeed + 1};
  const std::uint32_t n = 2 * host.num_nodes();
  const Graph guest = make_random_regular(n, 3, rng);
  std::cout << "--- permanent processor faults at step 0, host = " << host.name()
            << " (self-healing re-embedding) ---\n";
  Table table{{"rate", "dead procs", "healed guests", "load", "slowdown",
               "route steps", "replay steps", "status"}};
  double previous = 0.0;
  bool monotone = true;
  std::uint64_t route_total = 0, replay_total = 0;
  for (const double rate : {0.0, 0.04, 0.08, 0.12, 0.2, 0.3}) {
    const FaultPlan plan = make_uniform_node_faults(host, rate, kNodePlanSeed);
    const CurvePoint point = run_point(guest, host, plan);
    route_total += point.route_steps;
    replay_total += point.replay_steps;
    table.add_row({rate, std::uint64_t{plan.node_faults().size()},
                   std::uint64_t{point.result.reembedded_guests},
                   std::uint64_t{point.result.load},
                   point.completed ? point.slowdown : 0.0, point.route_steps,
                   point.replay_steps,
                   std::string{point.completed ? "ok" : "FAILED (survivors cut off)"}});
    if (!point.completed) break;
    monotone &= point.slowdown >= previous;
    previous = point.slowdown;
  }
  table.print(std::cout);
  print_decomposition(route_total, replay_total);
  std::cout << "slowdown monotone in damage: " << (monotone ? "yes" : "NO") << "\n\n";
}

/// Faults that strike MID-RUN (host step > 0): processor deaths past step 0
/// force re-embedding plus replay of the earned history, so this is the
/// curve where the replay side of the routing-vs-replay split is nonzero.
void print_midrun_fault_curve(const Graph& host, std::uint32_t fault_step) {
  Rng rng{kSeed + 3};
  const std::uint32_t n = 2 * host.num_nodes();
  const Graph guest = make_random_regular(n, 3, rng);
  std::cout << "--- permanent processor faults at host step " << fault_step
            << " (mid-run; replay required), host = " << host.name() << " ---\n";
  Table table{{"rate", "fault epochs", "healed guests", "slowdown", "route steps",
               "replay steps", "status"}};
  std::uint64_t route_total = 0, replay_total = 0;
  for (const double rate : {0.0, 0.05, 0.1, 0.15}) {
    const FaultPlan plan = make_uniform_node_faults(host, rate, kNodePlanSeed, fault_step);
    const CurvePoint point = run_point(guest, host, plan);
    route_total += point.route_steps;
    replay_total += point.replay_steps;
    table.add_row({rate, std::uint64_t{point.result.fault_epochs},
                   std::uint64_t{point.result.reembedded_guests},
                   point.completed ? point.slowdown : 0.0, point.route_steps,
                   point.replay_steps,
                   std::string{point.completed ? "ok" : "FAILED (survivors cut off)"}});
    if (!point.completed) break;
  }
  table.print(std::cout);
  print_decomposition(route_total, replay_total);
  std::cout << "\n";
}

void print_drop_curve(const Graph& host) {
  Rng rng{kSeed + 2};
  const std::uint32_t n = 2 * host.num_nodes();
  const Graph guest = make_random_regular(n, 3, rng);
  std::cout << "--- transient packet drops (retransmission with backoff), host = "
            << host.name() << " ---\n";
  Table table{{"drop prob", "retransmissions", "slowdown", "route steps",
               "replay steps", "status"}};
  double previous = 0.0;
  bool monotone = true;
  std::uint64_t route_total = 0, replay_total = 0;
  for (const double rate : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    const FaultPlan plan = make_uniform_drops(host, rate, kSeed);
    const CurvePoint point = run_point(guest, host, plan);
    route_total += point.route_steps;
    replay_total += point.replay_steps;
    table.add_row({rate, point.result.retransmissions,
                   point.completed ? point.slowdown : 0.0, point.route_steps,
                   point.replay_steps,
                   std::string{point.completed ? "ok" : "FAILED"}});
    if (!point.completed) break;
    monotone &= point.slowdown >= previous;
    previous = point.slowdown;
  }
  table.print(std::cout);
  print_decomposition(route_total, replay_total);
  std::cout << "slowdown monotone in damage: " << (monotone ? "yes" : "NO") << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  upn::bench::Harness harness{"fault", argc, argv};

  // One harness section per degradation curve: the BENCH json then carries a
  // per-curve metric delta (routing.sync.* vs sim.fault.replay_*), which is
  // the decomposition EXPERIMENTS.md quotes.
  std::cout << "=== FAULT: slowdown under scheduled hardware degradation ===\n\n";
  const Graph butterfly = make_butterfly(3);
  const Graph mesh = make_mesh(6, 6);
  harness.once("link_faults/butterfly", [&] { print_link_fault_curve(butterfly); });
  harness.once("link_faults/mesh", [&] { print_link_fault_curve(mesh); });
  harness.once("node_faults/butterfly", [&] { print_node_fault_curve(butterfly); });
  harness.once("node_faults/mesh", [&] { print_node_fault_curve(mesh); });
  harness.once("midrun_node_faults/butterfly",
               [&] { print_midrun_fault_curve(butterfly, 8); });
  harness.once("drops/butterfly", [&] { print_drop_curve(butterfly); });
  std::cout << "Coupled generators mean each row's fault set contains the previous\n"
               "row's, so the curves above are true degradation paths of a single\n"
               "machine, not independent samples.\n\n";

  for (const std::uint32_t pct : {0u, 10u, 20u}) {
    const double rate = static_cast<double>(pct) / 100.0;
    Rng rng{kSeed};
    const Graph host = make_butterfly(3);
    const std::uint32_t n = 2 * host.num_nodes();
    const Graph guest = make_random_regular(n, 3, rng);
    const FaultPlan plan = make_uniform_link_faults(host, rate, kSeed);
    harness.measure("fault_sim_step/rate=" + std::to_string(pct), [&] {
      FaultTolerantSimulator sim{guest, host, plan,
                                 round_robin_embedding(n, host.num_nodes())};
      const FaultSimResult result = sim.run(1);
      upn::bench::keep(result.host_steps);
    });
  }

  return harness.finish();
}
