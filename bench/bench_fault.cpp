// Experiment FAULT -- graceful degradation of the universal host.
//
// Theorem 2.1's slowdown bound assumes pristine hardware; this experiment
// measures how the bound degrades as the host loses links and processors.
// Fault sets are generated with the COUPLED uniform generators (a higher
// rate strictly extends the fault set of a lower rate under the same seed),
// so each curve sweeps nested degradations of one machine: slowdown is
// monotonically non-decreasing in the injected damage until the survivors
// disconnect and the simulation reports failure.
#include <iostream>
#include <string>

#include "bench/harness.hpp"
#include "src/core/fault_tolerant_sim.hpp"
#include "src/fault/fault_plan.hpp"
#include "src/fault/surgery.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/mesh.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/table.hpp"

namespace {

using namespace upn;

constexpr std::uint64_t kSeed = 0xfa11;
constexpr std::uint64_t kNodePlanSeed = 0xfa1b;
constexpr std::uint32_t kGuestSteps = 3;

struct CurvePoint {
  bool completed = false;
  double slowdown = 0.0;
  FaultSimResult result;
};

std::vector<NodeId> round_robin_embedding(std::uint32_t n, std::uint32_t m) {
  std::vector<NodeId> embedding;
  embedding.reserve(n);
  for (NodeId u = 0; u < n; ++u) embedding.push_back(u % m);
  return embedding;
}

CurvePoint run_point(const Graph& guest, const Graph& host, const FaultPlan& plan) {
  FaultTolerantSimulator sim{guest, host, plan,
                             round_robin_embedding(guest.num_nodes(), host.num_nodes())};
  CurvePoint point;
  point.result = sim.run(kGuestSteps);
  point.completed = point.result.completed && point.result.configs_match;
  point.slowdown = point.result.slowdown;
  return point;
}

void print_link_fault_curve(const Graph& host) {
  Rng rng{kSeed};
  const std::uint32_t n = 2 * host.num_nodes();
  const Graph guest = make_random_regular(n, 3, rng);
  std::cout << "--- permanent link faults at step 0, host = " << host.name() << " (m = "
            << host.num_nodes() << ", n = " << n << ", T = " << kGuestSteps << ") ---\n";
  Table table{{"rate", "dead links", "connected", "slowdown", "reroutes", "status"}};
  double previous = 0.0;
  bool monotone = true;
  for (const double rate : {0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.6}) {
    const FaultPlan plan = make_uniform_link_faults(host, rate, kSeed);
    const DegradationReport health = assess_degradation(host, plan);
    const CurvePoint point = run_point(guest, host, plan);
    table.add_row({rate, std::uint64_t{health.dead_links},
                   std::string{health.connected ? "yes" : "no"},
                   point.completed ? point.slowdown : 0.0, point.result.reroutes,
                   std::string{point.completed ? "ok" : "FAILED (survivors cut off)"}});
    if (!point.completed) break;  // disconnection ends the sweep
    monotone &= point.slowdown >= previous;
    previous = point.slowdown;
  }
  table.print(std::cout);
  std::cout << "slowdown monotone in damage: " << (monotone ? "yes" : "NO") << "\n\n";
}

void print_node_fault_curve(const Graph& host) {
  Rng rng{kSeed + 1};
  const std::uint32_t n = 2 * host.num_nodes();
  const Graph guest = make_random_regular(n, 3, rng);
  std::cout << "--- permanent processor faults at step 0, host = " << host.name()
            << " (self-healing re-embedding) ---\n";
  Table table{{"rate", "dead procs", "healed guests", "load", "slowdown", "status"}};
  double previous = 0.0;
  bool monotone = true;
  for (const double rate : {0.0, 0.04, 0.08, 0.12, 0.2, 0.3}) {
    const FaultPlan plan = make_uniform_node_faults(host, rate, kNodePlanSeed);
    const CurvePoint point = run_point(guest, host, plan);
    table.add_row({rate, std::uint64_t{plan.node_faults().size()},
                   std::uint64_t{point.result.reembedded_guests},
                   std::uint64_t{point.result.load},
                   point.completed ? point.slowdown : 0.0,
                   std::string{point.completed ? "ok" : "FAILED (survivors cut off)"}});
    if (!point.completed) break;
    monotone &= point.slowdown >= previous;
    previous = point.slowdown;
  }
  table.print(std::cout);
  std::cout << "slowdown monotone in damage: " << (monotone ? "yes" : "NO") << "\n\n";
}

void print_drop_curve(const Graph& host) {
  Rng rng{kSeed + 2};
  const std::uint32_t n = 2 * host.num_nodes();
  const Graph guest = make_random_regular(n, 3, rng);
  std::cout << "--- transient packet drops (retransmission with backoff), host = "
            << host.name() << " ---\n";
  Table table{{"drop prob", "retransmissions", "slowdown", "status"}};
  double previous = 0.0;
  bool monotone = true;
  for (const double rate : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    const FaultPlan plan = make_uniform_drops(host, rate, kSeed);
    const CurvePoint point = run_point(guest, host, plan);
    table.add_row({rate, point.result.retransmissions,
                   point.completed ? point.slowdown : 0.0,
                   std::string{point.completed ? "ok" : "FAILED"}});
    if (!point.completed) break;
    monotone &= point.slowdown >= previous;
    previous = point.slowdown;
  }
  table.print(std::cout);
  std::cout << "slowdown monotone in damage: " << (monotone ? "yes" : "NO") << "\n\n";
}

void print_experiment_tables() {
  std::cout << "=== FAULT: slowdown under scheduled hardware degradation ===\n\n";
  const Graph butterfly = make_butterfly(3);
  const Graph mesh = make_mesh(6, 6);
  print_link_fault_curve(butterfly);
  print_link_fault_curve(mesh);
  print_node_fault_curve(butterfly);
  print_node_fault_curve(mesh);
  print_drop_curve(butterfly);
  std::cout << "Coupled generators mean each row's fault set contains the previous\n"
               "row's, so the curves above are true degradation paths of a single\n"
               "machine, not independent samples.\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  upn::bench::Harness harness{"fault", argc, argv};

  harness.once("fault_tables", [] { print_experiment_tables(); });

  for (const std::uint32_t pct : {0u, 10u, 20u}) {
    const double rate = static_cast<double>(pct) / 100.0;
    Rng rng{kSeed};
    const Graph host = make_butterfly(3);
    const std::uint32_t n = 2 * host.num_nodes();
    const Graph guest = make_random_regular(n, 3, rng);
    const FaultPlan plan = make_uniform_link_faults(host, rate, kSeed);
    harness.measure("fault_sim_step/rate=" + std::to_string(pct), [&] {
      FaultTolerantSimulator sim{guest, host, plan,
                                 round_robin_embedding(n, host.num_nodes())};
      const FaultSimResult result = sim.run(1);
      upn::bench::keep(result.host_steps);
    });
  }

  return harness.finish();
}
