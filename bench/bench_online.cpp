// Experiment ONLINE -- adaptive routing under live churn, degradation curve.
//
// Theorem 2.1's slowdown is achieved by an omniscient offline router on a
// pristine host.  This experiment runs the SAME universal simulation over
// src/routing/online -- host nodes learn routes purely from bandwidth-capped
// announcement traffic while a FaultPlan kills and heals links mid-run --
// and charts what the online discipline costs: achieved slowdown s_online
// against the offline optimum s_offline (UniversalSimulator, multi-port)
// and the paper's (n/m) log2 m shape, swept across churn rates.  Churn
// generators are COUPLED (a higher rate's churning link set contains a
// lower rate's under the same seed), so each curve is a true degradation
// path of one machine.  Graceful degradation, quantified: stale reads and
// lost packets grow with the churn rate, but every row completes.
#include <cmath>
#include <iostream>
#include <string>

#include "bench/harness.hpp"
#include "src/core/online_adaptive_sim.hpp"
#include "src/core/universal_sim.hpp"
#include "src/fault/fault_plan.hpp"
#include "src/obs/obs.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/mesh.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/table.hpp"

namespace {

using namespace upn;

constexpr std::uint64_t kSeed = 0x0511;
constexpr std::uint32_t kGuestSteps = 3;
constexpr std::uint32_t kChurnHorizon = 1u << 14;  ///< churn outlives the whole run

std::vector<NodeId> round_robin_embedding(std::uint32_t n, std::uint32_t m) {
  std::vector<NodeId> embedding;
  embedding.reserve(n);
  for (NodeId u = 0; u < n; ++u) embedding.push_back(u % m);
  return embedding;
}

std::uint64_t counter_of(const std::vector<obs::MetricRow>& rows, const std::string& name) {
  for (const obs::MetricRow& row : rows) {
    if (row.name == name) return row.count;
  }
  return 0;
}

/// One churn curve: online slowdown vs the offline optimum vs the paper
/// bound.  The offline baseline is computed once -- it sees neither churn
/// nor the announcement protocol, which is exactly the point.
void print_churn_curve(const Graph& host) {
  const std::uint32_t m = host.num_nodes();
  const std::uint32_t n = 2 * m;
  Rng rng{kSeed};
  const Graph guest = make_random_regular(n, 3, rng);
  const std::vector<NodeId> embedding = round_robin_embedding(n, m);
  const double paper_bound =
      (static_cast<double>(n) / m) * std::log2(static_cast<double>(m));

  UniversalSimulator offline{guest, host, embedding};
  UniversalSimOptions offline_options;
  offline_options.port_model = PortModel::kMultiPort;
  const UniversalSimResult base = offline.run(kGuestSteps, offline_options);

  std::cout << "--- live link churn, host = " << host.name() << " (m = " << m
            << ", n = " << n << ", T = " << kGuestSteps
            << ", offline optimum s = " << base.slowdown
            << ", (n/m)log2(m) = " << paper_bound << ") ---\n";
  Table table{{"rate", "s online", "stretch", "s/bound", "rounds", "stale reads",
               "packets lost", "exact", "status"}};
  double previous = 0.0;
  bool monotone = true;
  for (const double rate : {0.0, 0.05, 0.1, 0.2, 0.3}) {
    const FaultPlan plan = make_link_churn(host, rate, kSeed, kChurnHorizon);
    OnlineAdaptiveSimulator sim{guest, host, embedding, plan};
    OnlineAdaptiveSimOptions options;
    // A short warmup: under ongoing churn the tables never fully quiesce,
    // so the regime routes over a LIVE learning protocol, which is the
    // phenomenon being measured.
    options.warmup_rounds = 256;
    const auto before = obs::registry().snapshot(obs::MetricKind::kDeterministic);
    const OnlineAdaptiveSimResult result = sim.run(kGuestSteps, options);
    const auto delta =
        obs::delta_rows(before, obs::registry().snapshot(obs::MetricKind::kDeterministic));
    table.add_row({rate, result.slowdown, result.slowdown / base.slowdown,
                   result.slowdown / paper_bound,
                   counter_of(delta, "routing.online.steps"), result.stale_reads,
                   result.packets_lost, std::string{result.configs_match ? "yes" : "no"},
                   std::string{"ok"}});
    monotone &= result.slowdown >= previous;
    previous = result.slowdown;
  }
  table.print(std::cout);
  std::cout << "slowdown monotone in churn rate: " << (monotone ? "yes" : "NO") << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  upn::bench::Harness harness{"online", argc, argv};

  std::cout << "=== ONLINE: adaptive routing vs the offline optimum under churn ===\n\n";
  const Graph butterfly = make_butterfly(3);
  const Graph mesh = make_mesh(6, 6);
  harness.once("churn_curve/butterfly", [&] { print_churn_curve(butterfly); });
  harness.once("churn_curve/mesh", [&] { print_churn_curve(mesh); });
  std::cout << "stretch = s_online / s_offline; rounds = protocol rounds consumed\n"
               "(hellos keep flowing while packets fly).  Stale reads substitute a\n"
               "remembered neighbor configuration for a lost delivery, so high-churn\n"
               "rows complete with degraded fidelity instead of failing.\n\n";

  // Timed sections: the cost of one protocol round on a converged host, and
  // of routing one seeded packet batch while churn keeps landing.
  {
    const Graph host = make_mesh(6, 6);
    const FaultPlan quiet;
    OnlineRouter router{host, quiet, {}};
    (void)router.run_until_stable(1u << 12);
    harness.measure("protocol_round/mesh=6x6", [&] {
      const OnlineStepStats stats = router.step();
      upn::bench::keep(stats.announcements);
    });
  }
  for (const std::uint32_t pct : {0u, 20u}) {
    const Graph host = make_mesh(6, 6);
    const FaultPlan plan =
        make_link_churn(host, static_cast<double>(pct) / 100.0, kSeed, kChurnHorizon);
    harness.measure("route_64_packets/churn=" + std::to_string(pct), [&] {
      OnlineRouter router{host, plan, {}};
      (void)router.run_until_stable(256);
      Rng rng{kSeed};
      std::vector<Packet> packets;
      while (packets.size() < 64) {
        const NodeId s = static_cast<NodeId>(rng.below(host.num_nodes()));
        const NodeId d = static_cast<NodeId>(rng.below(host.num_nodes()));
        if (s == d) continue;
        Packet p;
        p.src = s;
        p.dst = d;
        p.via = d;
        packets.push_back(p);
      }
      const OnlineRouteResult result = router.route(std::move(packets));
      upn::bench::keep(result.transfers);
    });
  }

  return harness.finish();
}
