// Experiment EXP -- the (alpha, beta)-expander of Definition 3.8, verified.
//
// G_0 plants a 4-regular expander whose expansion drives Lemma 3.15.  The
// paper assumes existence; we construct (random 4-regular and explicit
// Margulis) and certify via the spectral gap + Tanner bound, and compare
// against sampled expansion.
#include <benchmark/benchmark.h>

#include <iostream>

#include "src/topology/expander.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/table.hpp"

namespace {

using namespace upn;

void print_random_table() {
  std::cout << "=== EXP: random 4-regular graphs, spectral certificate at alpha=0.1 "
               "(Ramanujan bound 2 sqrt(3) = 3.464) ===\n";
  Table table{{"n", "lambda", "tanner beta", "sampled beta (ub)", "valid"}};
  for (const std::uint32_t n : {64u, 128u, 256u, 512u, 1024u}) {
    Rng rng{100 + n};
    const Graph g = make_random_expander(n, rng, 0.1);
    const ExpanderCertificate cert = verify_expander(g, 0.1, 300);
    Rng sample_rng{n};
    const double sampled = sampled_vertex_expansion(g, 0.1, 100, sample_rng);
    table.add_row({std::uint64_t{n}, cert.lambda, cert.beta, sampled,
                   std::string{cert.valid ? "yes" : "NO"}});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void print_margulis_table() {
  std::cout << "=== EXP: explicit Margulis-style degree-8 expanders on k x k ===\n";
  Table table{{"k", "n", "lambda", "tanner beta (a=0.1)"}};
  for (const std::uint32_t k : {8u, 12u, 16u, 24u}) {
    const Graph g = make_margulis_expander(k);
    const double lambda = second_eigenvalue(g, 300);
    table.add_row({std::uint64_t{k}, std::uint64_t{g.num_nodes()}, lambda,
                   tanner_beta(8, lambda, 0.1)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void BM_SecondEigenvalue(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng{n};
  const Graph g = make_random_regular(n, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(second_eigenvalue(g, 100));
  }
}
BENCHMARK(BM_SecondEigenvalue)->Arg(128)->Arg(512)->Arg(2048);

void BM_MakeRandomExpander(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng{n + 1};
  for (auto _ : state) {
    const Graph g = make_random_expander(n, rng, 0.1);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_MakeRandomExpander)->Arg(128)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  print_random_table();
  print_margulis_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
