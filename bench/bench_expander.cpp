// Experiment EXP -- the (alpha, beta)-expander of Definition 3.8, verified.
//
// G_0 plants a 4-regular expander whose expansion drives Lemma 3.15.  The
// paper assumes existence; we construct (random 4-regular and explicit
// Margulis) and certify via the spectral gap + Tanner bound, and compare
// against sampled expansion.
#include <iostream>
#include <string>

#include "bench/harness.hpp"
#include "src/topology/expander.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/table.hpp"

namespace {

using namespace upn;

void print_random_table() {
  std::cout << "=== EXP: random 4-regular graphs, spectral certificate at alpha=0.1 "
               "(Ramanujan bound 2 sqrt(3) = 3.464) ===\n";
  Table table{{"n", "lambda", "tanner beta", "sampled beta (ub)", "valid"}};
  for (const std::uint32_t n : {64u, 128u, 256u, 512u, 1024u}) {
    Rng rng{100 + n};
    const Graph g = make_random_expander(n, rng, 0.1);
    const ExpanderCertificate cert = verify_expander(g, 0.1, 300);
    Rng sample_rng{n};
    const double sampled = sampled_vertex_expansion(g, 0.1, 100, sample_rng);
    table.add_row({std::uint64_t{n}, cert.lambda, cert.beta, sampled,
                   std::string{cert.valid ? "yes" : "NO"}});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void print_margulis_table() {
  std::cout << "=== EXP: explicit Margulis-style degree-8 expanders on k x k ===\n";
  Table table{{"k", "n", "lambda", "tanner beta (a=0.1)"}};
  for (const std::uint32_t k : {8u, 12u, 16u, 24u}) {
    const Graph g = make_margulis_expander(k);
    const double lambda = second_eigenvalue(g, 300);
    table.add_row({std::uint64_t{k}, std::uint64_t{g.num_nodes()}, lambda,
                   tanner_beta(8, lambda, 0.1)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  upn::bench::Harness harness{"expander", argc, argv};

  harness.once("random_table", [] { print_random_table(); });
  harness.once("margulis_table", [] { print_margulis_table(); });

  for (const std::uint32_t n : {128u, 512u, 2048u}) {
    Rng rng{n};
    const Graph g = make_random_regular(n, 4, rng);
    harness.measure("second_eigenvalue/n=" + std::to_string(n), [&] {
      upn::bench::keep(second_eigenvalue(g, 100));
    });
  }

  for (const std::uint32_t n : {128u, 512u}) {
    Rng rng{n + 1};
    harness.measure("make_random_expander/n=" + std::to_string(n), [&] {
      const Graph g = make_random_expander(n, rng, 0.1);
      upn::bench::keep(g.num_edges());
    });
  }

  return harness.finish();
}
