// Experiment ROUTE -- route_M(h) on constant-degree hosts.
//
// Section 2 reduces universality to h-h routing.  On a constant-degree
// m-node network the bandwidth argument forces route(h) = Omega(h log m);
// the butterfly achieves O(h log m) both online (greedy/Valiant) and
// off-line (gather + pipelined Benes batches + scatter).  The tables report
// measured steps as h and m grow, for both methods.
#include <iostream>
#include <string>

#include "bench/harness.hpp"
#include "src/routing/adversarial.hpp"
#include "src/routing/bitfix.hpp"
#include "src/routing/offline_butterfly.hpp"
#include "src/routing/path_schedule.hpp"
#include "src/routing/policies.hpp"
#include "src/routing/router.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/debruijn.hpp"
#include "src/topology/torus.hpp"
#include "src/util/table.hpp"

namespace {

using namespace upn;

void print_online_table() {
  std::cout << "=== ROUTE (online): worst-case steps over 3 random h-relations, "
               "multiport store-and-forward ===\n";
  Table table{{"host", "m", "h", "greedy steps", "valiant steps", "steps/h"}};
  Rng rng{11};
  struct HostSpec {
    const char* name;
    Graph graph;
  };
  std::vector<HostSpec> hosts;
  hosts.push_back({"butterfly(4)", make_butterfly(4)});
  hosts.push_back({"butterfly(6)", make_butterfly(6)});
  hosts.push_back({"torus 16x16", make_torus(16, 16)});
  hosts.push_back({"debruijn(8)", make_debruijn(8)});
  for (auto& [name, host] : hosts) {
    GreedyPolicy greedy{host};
    ValiantPolicy valiant{host, 99};
    for (const std::uint32_t h : {1u, 2u, 4u, 8u}) {
      const auto tg = measure_route_time(host, h, greedy, PortModel::kMultiPort, 3, rng);
      const auto tv = measure_route_time(host, h, valiant, PortModel::kMultiPort, 3, rng);
      table.add_row({std::string{name}, std::uint64_t{host.num_nodes()}, std::uint64_t{h},
                     std::uint64_t{tg.worst_steps}, std::uint64_t{tv.worst_steps},
                     static_cast<double>(tg.worst_steps) / h});
    }
  }
  table.print(std::cout);
  std::cout << "\n";
}

void print_offline_table() {
  std::cout << "=== ROUTE (off-line): Waksman/Benes butterfly schedules "
               "(Theorem 2.1 corollary) ===\n";
  Table table{{"dim d", "m", "h", "steps", "batches", "steps/(h(d+1))", "valid"}};
  Rng rng{13};
  for (const std::uint32_t d : {3u, 4u, 5u, 6u}) {
    const ButterflyLayout layout{d, false};
    for (const std::uint32_t h : {1u, 2u, 4u}) {
      HhProblem problem{layout.num_nodes()};
      for (std::uint32_t round = 0; round < h; ++round) {
        const auto perm = rng.permutation(layout.num_nodes());
        for (std::uint32_t v = 0; v < layout.num_nodes(); ++v) problem.add(v, perm[v]);
      }
      const OfflineSchedule schedule = route_relation_offline(d, problem);
      const bool valid = validate_schedule(schedule, problem);
      table.add_row({std::uint64_t{d}, std::uint64_t{layout.num_nodes()}, std::uint64_t{h},
                     std::uint64_t{schedule.num_steps}, std::uint64_t{schedule.num_batches},
                     static_cast<double>(schedule.num_steps) / (h * (d + 1)),
                     std::string{valid ? "yes" : "NO"}});
    }
  }
  table.print(std::cout);
  std::cout << "\n";
}

void print_path_schedule_table() {
  std::cout << "=== ROUTE (off-line, generic hosts): greedy C+D path scheduling ===\n";
  Table table{{"host", "m", "h", "C", "D", "makespan", "makespan/(C+D)", "valid"}};
  Rng rng{21};
  std::vector<Graph> hosts;
  hosts.push_back(make_torus(12, 12));
  hosts.push_back(make_debruijn(7));
  hosts.push_back(make_butterfly(4));
  for (const Graph& host : hosts) {
    for (const std::uint32_t h : {1u, 4u}) {
      const HhProblem problem = random_h_relation(host.num_nodes(), h, rng);
      const PathSchedule schedule = schedule_paths(host, problem);
      const bool valid = validate_path_schedule(host, problem, schedule);
      table.add_row({host.name(), std::uint64_t{host.num_nodes()}, std::uint64_t{h},
                     std::uint64_t{schedule.congestion}, std::uint64_t{schedule.dilation},
                     std::uint64_t{schedule.makespan},
                     static_cast<double>(schedule.makespan) /
                         (schedule.congestion + schedule.dilation),
                     std::string{valid ? "yes" : "NO"}});
    }
  }
  table.print(std::cout);
  std::cout << "\nGreedy farthest-first scheduling stays near the C + D optimum\n"
               "(Leighton-Maggs-Rao guarantee O(C + D)); C scales with h, matching\n"
               "route(h) = Theta(h log m) on constant-degree hosts.\n\n";
}

void print_adversarial_table() {
  std::cout << "=== ROUTE (adversarial): deterministic oblivious bit-fixing vs "
               "adaptive/randomized on the classic bad permutations ===\n";
  Table table{{"pattern", "d", "policy", "steps", "max queue"}};
  for (const std::uint32_t d : {6u, 8u}) {
    const Graph host = make_butterfly(d);
    SyncRouter router{host, PortModel::kMultiPort};
    auto run = [&](const char* pattern, const HhProblem& problem, RoutingPolicy& policy,
                   const char* label) {
      std::vector<Packet> packets;
      for (const Demand& dm : problem.demands()) {
        Packet p;
        p.src = dm.src;
        p.dst = dm.dst;
        p.via = dm.dst;
        packets.push_back(p);
      }
      const RouteResult result = router.route(std::move(packets), policy);
      table.add_row({std::string{pattern}, std::uint64_t{d}, std::string{label},
                     std::uint64_t{result.steps}, std::uint64_t{result.max_queue}});
    };
    const HhProblem reversal = butterfly_bit_reversal(d);
    const HhProblem transpose = butterfly_transpose(d);
    ButterflyBitfixPolicy bitfix{d};
    GreedyPolicy greedy{host};
    ValiantPolicy valiant{host, 777};
    run("bit-reversal", reversal, bitfix, "bitfix");
    run("bit-reversal", reversal, greedy, "greedy");
    run("bit-reversal", reversal, valiant, "valiant");
    run("transpose", transpose, bitfix, "bitfix");
    run("transpose", transpose, greedy, "greedy");
    run("transpose", transpose, valiant, "valiant");
  }
  table.print(std::cout);
  std::cout << "\nDeterministic oblivious routing funnels sqrt(N) packets through\n"
               "single switches on these patterns (Borodin-Hopcroft; cf. [10, 17]);\n"
               "Valiant's random intermediates flatten the queues.\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  upn::bench::Harness harness{"routing", argc, argv};

  harness.once("online_table", [] { print_online_table(); });
  harness.once("offline_table", [] { print_offline_table(); });
  harness.once("path_schedule_table", [] { print_path_schedule_table(); });
  harness.once("adversarial_table", [] { print_adversarial_table(); });

  for (const std::uint32_t d : {4u, 6u, 8u}) {
    const Graph host = make_butterfly(d);
    GreedyPolicy policy{host};
    SyncRouter router{host, PortModel::kMultiPort};
    Rng rng{5};
    harness.measure("greedy_permutation/d=" + std::to_string(d), [&] {
      const HhProblem problem = random_permutation_problem(host.num_nodes(), rng);
      std::vector<Packet> packets;
      for (const Demand& dm : problem.demands()) {
        Packet p;
        p.src = dm.src;
        p.dst = dm.dst;
        p.via = dm.dst;
        packets.push_back(p);
      }
      const RouteResult result = router.route(std::move(packets), policy);
      upn::bench::keep(result.steps);
    });
  }

  for (const std::uint32_t d : {4u, 6u, 8u}) {
    const ButterflyLayout layout{d, false};
    Rng rng{6};
    harness.measure("offline_butterfly_schedule/d=" + std::to_string(d), [&] {
      HhProblem problem{layout.num_nodes()};
      const auto perm = rng.permutation(layout.num_nodes());
      for (std::uint32_t v = 0; v < layout.num_nodes(); ++v) problem.add(v, perm[v]);
      const OfflineSchedule schedule = route_relation_offline(d, problem);
      upn::bench::keep(schedule.num_steps);
    });
  }

  return harness.finish();
}
