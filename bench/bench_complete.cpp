// Experiment CMPL -- simulating the complete network (Section 2, closing
// paragraph, and the [14] results quoted in Section 1).
//
// The oblivious K_n computation emits a FRESH permutation every guest step,
// so no off-line schedule exists; the host must route online.  The table
// sweeps butterfly hosts and compares greedy vs Valiant online routing;
// [14] proves s = Omega(log n) independent of m for the non-oblivious case,
// and even here the per-step routing latency keeps s above log-type bounds
// when n/m is small.
#include <cmath>
#include <iostream>
#include <string>

#include "bench/harness.hpp"
#include "src/core/complete_sim.hpp"
#include "src/core/embedding.hpp"
#include "src/routing/policies.hpp"
#include "src/topology/butterfly.hpp"
#include "src/util/table.hpp"

namespace {

using namespace upn;

void print_experiment_table() {
  const std::uint32_t n = 512;
  std::cout << "=== CMPL: oblivious K_" << n
            << " computation on butterfly hosts (online routing, T = 4) ===\n";
  Table table{{"m", "n/m", "s greedy", "s valiant", "s/( (n/m)+log2 m )", "verified"}};
  for (const std::uint32_t d : {2u, 3u, 4u, 5u}) {
    Rng rng{60 + d};
    const Graph host = make_butterfly(d);
    const std::uint32_t m = host.num_nodes();
    const auto embedding = make_random_embedding(n, m, rng);
    GreedyPolicy greedy{host};
    ValiantPolicy valiant{host, 99};
    const CompleteSimResult rg = run_complete_simulation(n, host, embedding, 4, greedy);
    const CompleteSimResult rv = run_complete_simulation(n, host, embedding, 4, valiant);
    const double denom = static_cast<double>(n) / m + std::log2(static_cast<double>(m));
    table.add_row({std::uint64_t{m}, static_cast<double>(n) / m, rg.slowdown, rv.slowdown,
                   rg.slowdown / denom,
                   std::string{(rg.configs_match && rv.configs_match) ? "yes" : "NO"}});
  }
  table.print(std::cout);
  std::cout << "\nEvery guest sends ONE message per step (h = ceil(n/m) relation on\n"
               "hosts), so the per-step cost is lighter than the 16-regular guests of\n"
               "THM2.1; the pattern changes every step, which is why Section 2 demands\n"
               "online routing here.\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  upn::bench::Harness harness{"complete", argc, argv};

  harness.once("complete_table", [] { print_experiment_table(); });

  for (const std::uint32_t d : {2u, 3u, 4u}) {
    Rng rng{7};
    const Graph host = make_butterfly(d);
    const std::uint32_t n = 4 * host.num_nodes();
    const auto embedding = make_random_embedding(n, host.num_nodes(), rng);
    GreedyPolicy policy{host};
    harness.measure("complete_step/d=" + std::to_string(d), [&] {
      const CompleteSimResult result =
          run_complete_simulation(n, host, embedding, 1, policy);
      upn::bench::keep(result.host_steps);
    });
  }

  return harness.finish();
}
