// Experiment ABL -- ablations of the design choices DESIGN.md calls out:
//   1. routing regime: on-line greedy vs off-line Waksman schedules,
//   2. port model: single-port (pebble-exact) vs multiport,
//   3. embedding: deterministic block vs random balanced,
//   4. routing policy: greedy vs Valiant two-phase.
#include <iostream>
#include <string>

#include "bench/harness.hpp"
#include "src/core/embedding.hpp"
#include "src/core/embedding_metrics.hpp"
#include "src/core/offline_universal.hpp"
#include "src/core/scheduled_universal.hpp"
#include "src/core/schedule_protocol.hpp"
#include "src/core/universal_sim.hpp"
#include "src/pebble/validator.hpp"
#include "src/routing/policies.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/table.hpp"

namespace {

using namespace upn;

void print_routing_regime_table() {
  std::cout << "=== ABL-1/2: on-line vs off-line routing, single-port vs multiport "
               "(butterfly hosts, n = 4m guests) ===\n";
  Table table{{"d", "m", "n", "s online 1-port", "s online multi", "s offline multi",
               "s offline 1-port bd", "all verified"}};
  for (const std::uint32_t d : {2u, 3u, 4u}) {
    Rng rng{40 + d};
    const ButterflyLayout layout{d, false};
    const std::uint32_t m = layout.num_nodes();
    const std::uint32_t n = 4 * m;
    const Graph guest = make_random_regular(n, kGuestDegree, rng);
    const Graph host = make_butterfly(d);
    const auto embedding = make_random_embedding(n, m, rng);
    UniversalSimulator sim{guest, host, embedding};
    UniversalSimOptions single, multi;
    single.port_model = PortModel::kSinglePort;
    multi.port_model = PortModel::kMultiPort;
    const auto r_single = sim.run(2, single);
    const auto r_multi = sim.run(2, multi);
    const auto r_offline = run_offline_universal(guest, d, embedding, 2);
    const bool ok = r_single.configs_match && r_multi.configs_match &&
                    r_offline.configs_match;
    table.add_row({std::uint64_t{d}, std::uint64_t{m}, std::uint64_t{n},
                   r_single.slowdown, r_multi.slowdown, r_offline.slowdown,
                   r_offline.slowdown_single_port, std::string{ok ? "yes" : "NO"}});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void print_offline_family_table() {
  std::cout << "=== ABL-1b: three off-line regimes on the butterfly vs generic hosts "
               "(n = 4m, T = 2) ===\n";
  Table table{{"host", "m", "method", "s", "verified"}};
  for (const std::uint32_t d : {2u, 3u}) {
    Rng rng{50 + d};
    const ButterflyLayout layout{d, false};
    const std::uint32_t m = layout.num_nodes();
    const std::uint32_t n = 4 * m;
    const Graph guest = make_random_regular(n, kGuestDegree, rng);
    const Graph host = make_butterfly(d);
    const auto embedding = make_random_embedding(n, m, rng);
    // Benes-structured off-line schedule.
    const auto benes = run_offline_universal(guest, d, embedding, 2);
    table.add_row({host.name(), std::uint64_t{m}, std::string{"offline-benes"},
                   benes.slowdown, std::string{benes.configs_match ? "yes" : "NO"}});
    // Generic path schedule on the same host.
    const auto generic = run_scheduled_universal(guest, host, embedding, 2);
    table.add_row({host.name(), std::uint64_t{m}, std::string{"offline-paths"},
                   generic.slowdown, std::string{generic.configs_match ? "yes" : "NO"}});
    // Single-port pebble protocol from the Benes schedule (validated).
    const auto protocol = make_offline_universal_protocol(guest, d, embedding, 2);
    const bool valid =
        static_cast<bool>(validate_protocol(protocol.protocol, guest, host));
    table.add_row({host.name(), std::uint64_t{m}, std::string{"offline-benes 1-port"},
                   protocol.protocol.slowdown(), std::string{valid ? "yes" : "NO"}});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void print_embedding_table() {
  std::cout << "=== ABL-3: block vs random embedding (guest 16-regular n=256, host "
               "butterfly(3)) ===\n";
  Rng rng{77};
  const std::uint32_t n = 256;
  const Graph guest = make_random_regular(n, kGuestDegree, rng);
  const Graph host = make_butterfly(3);
  Table table{{"embedding", "load", "dilation", "congestion", "LB max(l,d,c)",
               "s measured"}};
  const auto block = make_block_embedding(n, host.num_nodes());
  const auto random = make_random_embedding(n, host.num_nodes(), rng);
  for (const auto& [label, f] :
       {std::pair{"block", &block}, std::pair{"random", &random}}) {
    const EmbeddingMetrics metrics = analyze_embedding(guest, host, *f);
    UniversalSimulator sim{guest, host, *f};
    const UniversalSimResult result = sim.run(2);
    table.add_row({std::string{label}, std::uint64_t{metrics.load},
                   std::uint64_t{metrics.dilation}, std::uint64_t{metrics.congestion},
                   std::uint64_t{metrics.slowdown_lower_bound()}, result.slowdown});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void print_policy_table() {
  std::cout << "=== ABL-4: greedy vs Valiant policy (butterfly(4), multiport, n = "
               "320) ===\n";
  Rng rng{88};
  const std::uint32_t n = 320;
  const Graph guest = make_random_regular(n, kGuestDegree, rng);
  const Graph host = make_butterfly(4);
  const auto embedding = make_random_embedding(n, host.num_nodes(), rng);
  UniversalSimulator sim{guest, host, embedding};
  Table table{{"policy", "s", "verified"}};
  GreedyPolicy greedy{host};
  ValiantPolicy valiant{host, 99};
  for (const auto& [label, policy] :
       {std::pair<const char*, RoutingPolicy*>{"greedy", &greedy},
        std::pair<const char*, RoutingPolicy*>{"valiant", &valiant}}) {
    UniversalSimOptions options;
    options.policy = policy;
    options.port_model = PortModel::kMultiPort;
    const UniversalSimResult result = sim.run(2, options);
    table.add_row({std::string{label}, result.slowdown,
                   std::string{result.configs_match ? "yes" : "NO"}});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  upn::bench::Harness harness{"ablation", argc, argv};

  harness.once("routing_regime_table", [] { print_routing_regime_table(); });
  harness.once("offline_family_table", [] { print_offline_family_table(); });
  harness.once("embedding_table", [] { print_embedding_table(); });
  harness.once("policy_table", [] { print_policy_table(); });

  for (const std::uint32_t n : {128u, 512u}) {
    Rng rng{5};
    const Graph guest = make_random_regular(n, kGuestDegree, rng);
    const Graph host = make_butterfly(3);
    const auto embedding = make_random_embedding(n, host.num_nodes(), rng);
    harness.measure("analyze_embedding/n=" + std::to_string(n), [&] {
      const EmbeddingMetrics metrics = analyze_embedding(guest, host, embedding);
      upn::bench::keep(metrics.congestion);
    });
  }

  for (const std::uint32_t d : {3u, 4u}) {
    Rng rng{6};
    const ButterflyLayout layout{d, false};
    const std::uint32_t n = 4 * layout.num_nodes();
    const Graph guest = make_random_regular(n, kGuestDegree, rng);
    const auto embedding = make_random_embedding(n, layout.num_nodes(), rng);
    harness.measure("offline_universal_step/d=" + std::to_string(d), [&] {
      const OfflineUniversalResult result = run_offline_universal(guest, d, embedding, 1);
      upn::bench::keep(result.host_steps);
    });
  }

  return harness.finish();
}
