// Experiment CENSUS -- the counting argument's bookkeeping, observed.
//
// Section 3.2 bounds |G(k)| <= X * Y: few fragments (Y), few guests per
// fragment (X, Lemma 3.3).  The census simulates many guests from U[G_0],
// extracts one fragment each and tabulates: distinct fragments vs guests
// (empirical footprint of the set A), per-fragment multiplicity bounds, and
// the Main-Lemma quantities (sum |B_i|, #small D_i).
#include <benchmark/benchmark.h>

#include <iostream>
#include <sstream>

#include "src/lowerbound/fragment_census.hpp"
#include "src/util/table.hpp"

namespace {

using namespace upn;

void print_experiment_table() {
  Rng rng{31415};
  const std::uint32_t m = 12;  // butterfly(2)
  const std::uint32_t a = g0_block_parameter(m);
  const std::uint32_t n = g0_round_guest_size(60, a);
  const G0 g0 = make_g0(n, m, rng);
  const std::uint32_t guests = 12, T = 8;
  const FragmentCensus census = run_fragment_census(g0, 2, guests, T, rng);

  std::cout << "=== CENSUS: fragments across " << guests << " guests from U[G_0] (n = "
            << n << ", m = " << m << ", T = " << T << ") ===\n";
  std::cout << "distinct fragments: " << census.distinct_fragments << " / " << guests
            << "   mean k = " << census.mean_inefficiency << "\n";
  std::cout << "log2 |A| bound (Lemma 3.13, r n k): " << census.log2_a_bound
            << "   log2 |U[G_0]| lower bound: " << census.log2_guest_space << "\n";
  Table table{{"guest", "fragment hash", "log2 X (L3.3)", "sum|B_i|",
               "#|D_i|<=n/sqrt(m)"}};
  for (std::size_t g = 0; g < census.rows.size(); ++g) {
    const FragmentCensusRow& row = census.rows[g];
    std::ostringstream hash_hex;
    hash_hex << std::hex << (row.fragment_hash >> 40);  // short prefix
    table.add_row({std::uint64_t{g}, hash_hex.str(), row.log2_multiplicity,
                   row.sum_b, std::uint64_t{row.small_d}});
  }
  table.print(std::cout);
  std::cout << "worst log2 multiplicity: " << census.worst_log2_multiplicity
            << " (counting chain uses " << census.log2_guest_space
            << " total guests)\n\n";
}

void BM_FragmentCensus(benchmark::State& state) {
  Rng rng{999};
  const std::uint32_t m = 12;
  const std::uint32_t a = g0_block_parameter(m);
  const std::uint32_t n = g0_round_guest_size(60, a);
  const G0 g0 = make_g0(n, m, rng);
  for (auto _ : state) {
    const FragmentCensus census =
        run_fragment_census(g0, 2, static_cast<std::uint32_t>(state.range(0)), 6, rng);
    benchmark::DoNotOptimize(census.distinct_fragments);
  }
}
BENCHMARK(BM_FragmentCensus)->Arg(2)->Arg(4);

}  // namespace

int main(int argc, char** argv) {
  print_experiment_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
