// Experiment CENSUS -- the counting argument's bookkeeping, observed.
//
// Section 3.2 bounds |G(k)| <= X * Y: few fragments (Y), few guests per
// fragment (X, Lemma 3.3).  The census simulates many guests from U[G_0],
// extracts one fragment each and tabulates: distinct fragments vs guests
// (empirical footprint of the set A), per-fragment multiplicity bounds, and
// the Main-Lemma quantities (sum |B_i|, #small D_i).
//
// The census runs one pool task per sampled guest (--threads=N); rows and
// aggregates are byte-identical for every N.
#include <iostream>
#include <sstream>
#include <string>

#include "bench/harness.hpp"
#include "src/lowerbound/fragment_census.hpp"
#include "src/util/table.hpp"

namespace {

using namespace upn;

constexpr std::uint64_t kCensusSeed = 31415;

void print_experiment_table(ThreadPool& pool) {
  Rng rng{kCensusSeed};
  const std::uint32_t m = 12;  // butterfly(2)
  const std::uint32_t a = g0_block_parameter(m);
  const std::uint32_t n = g0_round_guest_size(60, a);
  const G0 g0 = make_g0(n, m, rng);
  const std::uint32_t guests = 12, T = 8;
  const FragmentCensus census = run_fragment_census_par(g0, 2, guests, T, kCensusSeed, pool);

  std::cout << "=== CENSUS: fragments across " << guests << " guests from U[G_0] (n = "
            << n << ", m = " << m << ", T = " << T << ", pool-swept) ===\n";
  std::cout << "distinct fragments: " << census.distinct_fragments << " / " << guests
            << "   mean k = " << census.mean_inefficiency << "\n";
  std::cout << "log2 |A| bound (Lemma 3.13, r n k): " << census.log2_a_bound
            << "   log2 |U[G_0]| lower bound: " << census.log2_guest_space << "\n";
  Table table{{"guest", "fragment hash", "log2 X (L3.3)", "sum|B_i|",
               "#|D_i|<=n/sqrt(m)"}};
  for (std::size_t g = 0; g < census.rows.size(); ++g) {
    const FragmentCensusRow& row = census.rows[g];
    std::ostringstream hash_hex;
    hash_hex << std::hex << (row.fragment_hash >> 40);  // short prefix
    table.add_row({std::uint64_t{g}, hash_hex.str(), row.log2_multiplicity,
                   row.sum_b, std::uint64_t{row.small_d}});
  }
  table.print(std::cout);
  std::cout << "worst log2 multiplicity: " << census.worst_log2_multiplicity
            << " (counting chain uses " << census.log2_guest_space
            << " total guests)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  upn::bench::Harness harness{"census", argc, argv};

  harness.once("census_table", [&] { print_experiment_table(harness.pool()); });

  {
    Rng rng{999};
    const std::uint32_t m = 12;
    const std::uint32_t a = g0_block_parameter(m);
    const std::uint32_t n = g0_round_guest_size(60, a);
    const G0 g0 = make_g0(n, m, rng);
    for (const std::uint32_t guests : {2u, 4u, 8u}) {
      harness.measure("fragment_census/guests=" + std::to_string(guests), [&] {
        const FragmentCensus census =
            run_fragment_census_par(g0, 2, guests, 6, 999, harness.pool());
        upn::bench::keep(census.distinct_fragments);
      });
    }
  }

  return harness.finish();
}
