// Experiment GP -- the Galil-Paul sorting route to universality vs the
// paper's direct routing.
//
// Sorting-based universality costs O(sort(m)) per guest step; with bitonic
// sorters that is Theta(log^2 m) per permutation round, versus Theta(log m)
// for Theorem 2.1's off-line routing.  The tables expose the log m gap, plus
// Columnsort's size amplification (sort r*s keys with depth-O(D_r) column
// sorters).
#include <algorithm>
#include <iostream>
#include <string>

#include "bench/harness.hpp"
#include "src/core/galil_paul.hpp"
#include "src/core/slowdown.hpp"
#include "src/sorting/bitonic.hpp"
#include "src/sorting/columnsort.hpp"
#include "src/sorting/odd_even_merge.hpp"
#include "src/sorting/oets.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/table.hpp"

namespace {

using namespace upn;

void print_network_table() {
  std::cout << "=== GP: sorting-network depth/size vs m (one permutation round) ===\n";
  Table table{{"m", "bitonic depth", "bitonic size", "oem depth", "oem size",
               "log2 m", "depth/log2^2 m"}};
  for (const std::uint32_t logm : {4u, 6u, 8u, 10u, 12u}) {
    const std::uint32_t m = 1u << logm;
    const ComparatorNetwork bitonic = make_bitonic_sorter(m);
    const ComparatorNetwork oem = make_odd_even_merge_sorter(m);
    table.add_row({std::uint64_t{m}, std::uint64_t{bitonic.depth()},
                   std::uint64_t{bitonic.size()}, std::uint64_t{oem.depth()},
                   std::uint64_t{oem.size()}, std::uint64_t{logm},
                   static_cast<double>(bitonic.depth()) / (logm * logm)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void print_gp_vs_direct_table() {
  std::cout << "=== GP vs THM2.1: per-guest-step cost, sorting route vs direct "
               "routing (n = 512) ===\n";
  const std::uint32_t n = 512;
  Rng rng{17};
  const Graph guest = make_random_regular(n, kGuestDegree, rng);
  Table table{{"m", "GP rounds", "GP steps/guest-step", "direct s (measured)",
               "GP/direct", "GP full-sim verified"}};
  for (const std::uint32_t d : {2u, 3u, 4u}) {
    const Graph host = make_butterfly(d);
    const std::uint32_t m = host.num_nodes();
    const GalilPaulCost gp = galil_paul_step_cost(guest, m);
    Rng run_rng{23};
    const SlowdownRow direct = measure_slowdown(guest, host, 2, run_rng);
    // The complete payload-carrying GP simulation, verified end to end.
    const GalilPaulSimResult full = run_galil_paul(guest, m, 2);
    table.add_row({std::uint64_t{m}, std::uint64_t{gp.rounds}, gp.slowdown,
                   direct.slowdown, gp.slowdown / direct.slowdown,
                   std::string{full.configs_match ? "yes" : "NO"}});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void print_columnsort_table() {
  std::cout << "=== GP: Columnsort amplification (sort n keys with r-key column "
               "sorts) ===\n";
  Table table{{"n", "r", "s", "col-sort rounds", "perm rounds", "sorted"}};
  Rng rng{29};
  for (const auto& [r, s] : {std::pair{32u, 4u}, std::pair{128u, 4u}, std::pair{128u, 8u},
                             std::pair{512u, 8u}}) {
    std::vector<std::uint64_t> values(static_cast<std::size_t>(r) * s);
    for (auto& v : values) v = rng();
    const ColumnsortStats stats = columnsort(values, r, s);
    table.add_row({std::uint64_t{values.size()}, std::uint64_t{r}, std::uint64_t{s},
                   std::uint64_t{stats.column_sort_rounds},
                   std::uint64_t{stats.permutation_rounds},
                   std::string{std::is_sorted(values.begin(), values.end()) ? "yes" : "NO"}});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  upn::bench::Harness harness{"sorting", argc, argv};

  harness.once("network_table", [] { print_network_table(); });
  harness.once("gp_vs_direct_table", [] { print_gp_vs_direct_table(); });
  harness.once("columnsort_table", [] { print_columnsort_table(); });

  for (const std::uint32_t m : {256u, 1024u, 4096u}) {
    const ComparatorNetwork net = make_bitonic_sorter(m);
    Rng rng{3};
    std::vector<std::uint64_t> values(m);
    harness.measure("bitonic_apply/m=" + std::to_string(m), [&] {
      for (auto& v : values) v = rng();
      net.apply(values);
      upn::bench::keep(values.data());
    });
  }

  for (const std::uint32_t r : {64u, 256u, 1024u}) {
    const std::uint32_t s = 4;
    Rng rng{4};
    std::vector<std::uint64_t> values(static_cast<std::size_t>(r) * s);
    harness.measure("columnsort/r=" + std::to_string(r), [&] {
      for (auto& v : values) v = rng();
      columnsort(values, r, s);
      upn::bench::keep(values.data());
    });
  }

  return harness.finish();
}
