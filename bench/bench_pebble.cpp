// Experiment PEBBLE -- the Section 3.1 model's bookkeeping costs.
//
// The counting argument hinges on "the number of pebbles used is at most
// T' * m = T * n * k".  The table confirms that accounting on emitted
// protocols and reports validator/metrics throughput.  Validation of the
// emitted protocols runs through the batch validator (one pool task per
// protocol, --threads=N); verdicts are byte-identical for every N.
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "src/core/embedding.hpp"
#include "src/core/universal_sim.hpp"
#include "src/pebble/metrics.hpp"
#include "src/pebble/stats.hpp"
#include "src/pebble/validator.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/table.hpp"

namespace {

using namespace upn;

struct Emitted {
  Graph guest;
  Graph host;
  Protocol protocol{1, 1, 1};
};

Emitted emit(std::uint32_t n, std::uint32_t d, std::uint32_t T, std::uint64_t seed) {
  Rng rng{seed};
  Emitted e;
  e.guest = make_random_regular(n, kGuestDegree, rng);
  e.host = make_butterfly(d);
  UniversalSimulator sim{e.guest, e.host, make_random_embedding(n, e.host.num_nodes(), rng)};
  UniversalSimOptions options;
  options.emit_protocol = true;
  UniversalSimResult result = sim.run(T, options);
  e.protocol = std::move(*result.protocol);
  return e;
}

void print_experiment_table(ThreadPool& pool) {
  std::cout << "=== PEBBLE: protocol accounting (ops <= T' m = T n k, batch-validated "
               "on the pool) ===\n";
  Table table{{"n", "m", "T", "T'", "ops", "T'*m", "placements", "k", "valid"}};
  std::vector<Emitted> emitted;
  std::vector<std::uint32_t> steps;
  for (const auto& [n, d, T] :
       {std::tuple{64u, 2u, 6u}, std::tuple{128u, 2u, 6u}, std::tuple{256u, 3u, 4u}}) {
    emitted.push_back(emit(n, d, T, 42 + n));
    steps.push_back(T);
  }
  std::vector<ValidationJob> jobs;
  jobs.reserve(emitted.size());
  for (const Emitted& e : emitted) {
    jobs.push_back(ValidationJob{&e.protocol, &e.guest, &e.host});
  }
  const std::vector<ValidationResult> verdicts = validate_protocols(jobs, pool);
  for (std::size_t i = 0; i < emitted.size(); ++i) {
    const Emitted& e = emitted[i];
    const ProtocolMetrics metrics{e.protocol};
    table.add_row({std::uint64_t{e.guest.num_nodes()}, std::uint64_t{e.host.num_nodes()},
                   std::uint64_t{steps[i]}, std::uint64_t{e.protocol.host_steps()},
                   e.protocol.num_ops(),
                   static_cast<std::uint64_t>(e.protocol.host_steps()) *
                       e.host.num_nodes(),
                   metrics.total_placements(), metrics.inefficiency(),
                   std::string{verdicts[i].ok ? "yes" : "NO"}});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void print_stats_table() {
  std::cout << "=== PEBBLE: operational profile of emitted protocols ===\n";
  Table table{{"n", "m", "generates", "sends", "utilization", "comm fraction",
               "busiest proc ops"}};
  for (const auto& [n, d, T] : {std::tuple{64u, 2u, 6u}, std::tuple{128u, 2u, 6u}}) {
    const Emitted e = emit(n, d, T, 77 + n);
    const ProtocolStats stats = protocol_stats(e.protocol);
    table.add_row({std::uint64_t{n}, std::uint64_t{e.host.num_nodes()}, stats.generates,
                   stats.sends, stats.utilization, stats.comm_fraction,
                   stats.busiest_proc_ops});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  upn::bench::Harness harness{"pebble", argc, argv};

  harness.once("accounting_table", [&] { print_experiment_table(harness.pool()); });
  harness.once("stats_table", [] { print_stats_table(); });

  for (const std::uint32_t n : {64u, 128u, 256u}) {
    const Emitted e = emit(n, 2, 4, 7);
    harness.measure("validate_protocol/n=" + std::to_string(n), [&] {
      const ValidationResult result = validate_protocol(e.protocol, e.guest, e.host);
      upn::bench::keep(result.ok);
    });
  }

  {
    // The batch path itself: one pool task per protocol.
    std::vector<Emitted> emitted;
    for (const std::uint32_t n : {64u, 128u, 256u}) emitted.push_back(emit(n, 2, 4, 7));
    std::vector<ValidationJob> jobs;
    for (const Emitted& e : emitted) {
      jobs.push_back(ValidationJob{&e.protocol, &e.guest, &e.host});
    }
    harness.measure("validate_protocols_batch/jobs=3", [&] {
      const std::vector<ValidationResult> verdicts =
          validate_protocols(jobs, harness.pool());
      upn::bench::keep(verdicts.size());
    });
  }

  for (const std::uint32_t n : {64u, 256u}) {
    const Emitted e = emit(n, 2, 4, 8);
    harness.measure("build_metrics/n=" + std::to_string(n), [&] {
      const ProtocolMetrics metrics{e.protocol};
      upn::bench::keep(metrics.total_placements());
    });
  }

  for (const std::uint32_t n : {64u, 128u}) {
    Rng rng{3};
    const Graph guest = make_random_regular(n, kGuestDegree, rng);
    const Graph host = make_butterfly(2);
    UniversalSimulator sim{guest, host, make_random_embedding(n, host.num_nodes(), rng)};
    UniversalSimOptions options;
    options.emit_protocol = true;
    harness.measure("emit_protocol/n=" + std::to_string(n), [&] {
      const UniversalSimResult result = sim.run(2, options);
      upn::bench::keep(result.protocol->num_ops());
    });
  }

  return harness.finish();
}
