// Experiment PEBBLE -- the Section 3.1 model's bookkeeping costs.
//
// The counting argument hinges on "the number of pebbles used is at most
// T' * m = T * n * k".  The table confirms that accounting on emitted
// protocols and reports validator/metrics throughput.
#include <benchmark/benchmark.h>

#include <iostream>

#include "src/core/embedding.hpp"
#include "src/core/universal_sim.hpp"
#include "src/pebble/metrics.hpp"
#include "src/pebble/stats.hpp"
#include "src/pebble/validator.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/table.hpp"

namespace {

using namespace upn;

struct Emitted {
  Graph guest;
  Graph host;
  Protocol protocol{1, 1, 1};
};

Emitted emit(std::uint32_t n, std::uint32_t d, std::uint32_t T, std::uint64_t seed) {
  Rng rng{seed};
  Emitted e;
  e.guest = make_random_regular(n, kGuestDegree, rng);
  e.host = make_butterfly(d);
  UniversalSimulator sim{e.guest, e.host, make_random_embedding(n, e.host.num_nodes(), rng)};
  UniversalSimOptions options;
  options.emit_protocol = true;
  UniversalSimResult result = sim.run(T, options);
  e.protocol = std::move(*result.protocol);
  return e;
}

void print_experiment_table() {
  std::cout << "=== PEBBLE: protocol accounting (ops <= T' m = T n k) ===\n";
  Table table{{"n", "m", "T", "T'", "ops", "T'*m", "placements", "k", "valid"}};
  for (const auto& [n, d, T] :
       {std::tuple{64u, 2u, 6u}, std::tuple{128u, 2u, 6u}, std::tuple{256u, 3u, 4u}}) {
    const Emitted e = emit(n, d, T, 42 + n);
    const ValidationResult validation = validate_protocol(e.protocol, e.guest, e.host);
    const ProtocolMetrics metrics{e.protocol};
    table.add_row({std::uint64_t{n}, std::uint64_t{e.host.num_nodes()}, std::uint64_t{T},
                   std::uint64_t{e.protocol.host_steps()}, e.protocol.num_ops(),
                   static_cast<std::uint64_t>(e.protocol.host_steps()) *
                       e.host.num_nodes(),
                   metrics.total_placements(), metrics.inefficiency(),
                   std::string{validation.ok ? "yes" : "NO"}});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void print_stats_table() {
  std::cout << "=== PEBBLE: operational profile of emitted protocols ===\n";
  Table table{{"n", "m", "generates", "sends", "utilization", "comm fraction",
               "busiest proc ops"}};
  for (const auto& [n, d, T] : {std::tuple{64u, 2u, 6u}, std::tuple{128u, 2u, 6u}}) {
    const Emitted e = emit(n, d, T, 77 + n);
    const ProtocolStats stats = protocol_stats(e.protocol);
    table.add_row({std::uint64_t{n}, std::uint64_t{e.host.num_nodes()}, stats.generates,
                   stats.sends, stats.utilization, stats.comm_fraction,
                   stats.busiest_proc_ops});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void BM_ValidateProtocol(benchmark::State& state) {
  const Emitted e = emit(static_cast<std::uint32_t>(state.range(0)), 2, 4, 7);
  for (auto _ : state) {
    const ValidationResult result = validate_protocol(e.protocol, e.guest, e.host);
    benchmark::DoNotOptimize(result.ok);
    if (!result.ok) state.SkipWithError("invalid protocol");
  }
  state.counters["ops"] = static_cast<double>(e.protocol.num_ops());
}
BENCHMARK(BM_ValidateProtocol)->Arg(64)->Arg(128)->Arg(256);

void BM_BuildMetrics(benchmark::State& state) {
  const Emitted e = emit(static_cast<std::uint32_t>(state.range(0)), 2, 4, 8);
  for (auto _ : state) {
    const ProtocolMetrics metrics{e.protocol};
    benchmark::DoNotOptimize(metrics.total_placements());
  }
}
BENCHMARK(BM_BuildMetrics)->Arg(64)->Arg(256);

void BM_EmitProtocol(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng{3};
  const Graph guest = make_random_regular(n, kGuestDegree, rng);
  const Graph host = make_butterfly(2);
  UniversalSimulator sim{guest, host, make_random_embedding(n, host.num_nodes(), rng)};
  UniversalSimOptions options;
  options.emit_protocol = true;
  for (auto _ : state) {
    const UniversalSimResult result = sim.run(2, options);
    benchmark::DoNotOptimize(result.protocol->num_ops());
  }
}
BENCHMARK(BM_EmitProtocol)->Arg(64)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  print_experiment_table();
  print_stats_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
