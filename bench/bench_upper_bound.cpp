// Experiment THM2.1 -- the upper-bound trade-off, measured.
//
// Paper claim (Theorem 2.1 + butterfly corollary): for m <= n the butterfly
// of size m is n-universal with slowdown O((n/m) log m).  The table sweeps
// butterfly hosts under a fixed random 16-regular guest and reports the
// measured slowdown s next to the load bound n/m and the shape (n/m) log2 m;
// the "normalized" column s / ((n/m) log2 m) should stay roughly constant.
#include <benchmark/benchmark.h>

#include <iostream>

#include "src/core/embedding.hpp"
#include "src/core/slowdown.hpp"
#include "src/core/universal_sim.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/table.hpp"

namespace {

using namespace upn;

void print_experiment_table() {
  const std::uint32_t n = 512;
  const std::uint32_t steps = 3;
  Rng rng{2025};
  const Graph guest = make_random_regular(n, kGuestDegree, rng);
  std::cout << "=== THM2.1: slowdown of butterfly hosts, guest = " << guest.name()
            << ", T = " << steps << " ===\n";
  Table table{{"m", "load", "s", "n/m", "(n/m)log2(m)", "normalized", "k", "verified"}};
  for (const SlowdownRow& row : sweep_butterfly_hosts(guest, steps, n, rng)) {
    table.add_row({std::uint64_t{row.m}, std::uint64_t{row.load}, row.slowdown,
                   row.load_bound, row.paper_bound, row.normalized, row.inefficiency,
                   std::string{row.verified ? "yes" : "NO"}});
  }
  table.print(std::cout);
  std::cout << "\n";
}

void BM_UniversalStep(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  Rng rng{7};
  const Graph guest = make_random_regular(n, kGuestDegree, rng);
  const std::uint32_t d = butterfly_dimension_for_size(n);
  const Graph host = make_butterfly(d);
  UniversalSimulator sim{guest, host, make_random_embedding(n, host.num_nodes(), rng)};
  UniversalSimOptions options;
  options.seed = 11;
  for (auto _ : state) {
    const UniversalSimResult result = sim.run(1, options);
    benchmark::DoNotOptimize(result.host_steps);
    if (!result.configs_match) state.SkipWithError("simulation diverged");
  }
  state.counters["n"] = n;
  state.counters["m"] = host.num_nodes();
}
BENCHMARK(BM_UniversalStep)->Arg(128)->Arg(256)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  print_experiment_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
