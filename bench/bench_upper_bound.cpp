// Experiment THM2.1 -- the upper-bound trade-off, measured.
//
// Paper claim (Theorem 2.1 + butterfly corollary): for m <= n the butterfly
// of size m is n-universal with slowdown O((n/m) log m).  The table sweeps
// butterfly hosts under a fixed random 16-regular guest and reports the
// measured slowdown s next to the load bound n/m and the shape (n/m) log2 m;
// the "normalized" column s / ((n/m) log2 m) should stay roughly constant.
// The sweep runs one pool task per host (--threads=N, byte-identical rows).
#include <iostream>
#include <string>

#include "bench/harness.hpp"
#include "src/core/embedding.hpp"
#include "src/core/slowdown.hpp"
#include "src/core/universal_sim.hpp"
#include "src/topology/butterfly.hpp"
#include "src/topology/random_regular.hpp"
#include "src/util/table.hpp"

namespace {

using namespace upn;

void print_experiment_table(ThreadPool& pool) {
  const std::uint32_t n = 512;
  const std::uint32_t steps = 3;
  Rng rng{2025};
  const Graph guest = make_random_regular(n, kGuestDegree, rng);
  std::cout << "=== THM2.1: slowdown of butterfly hosts, guest = " << guest.name()
            << ", T = " << steps << " ===\n";
  Table table{{"m", "load", "s", "n/m", "(n/m)log2(m)", "normalized", "k", "verified"}};
  for (const SlowdownRow& row : sweep_butterfly_hosts_par(guest, steps, n, 2025, pool)) {
    table.add_row({std::uint64_t{row.m}, std::uint64_t{row.load}, row.slowdown,
                   row.load_bound, row.paper_bound, row.normalized, row.inefficiency,
                   std::string{row.verified ? "yes" : "NO"}});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  upn::bench::Harness harness{"upper_bound", argc, argv};

  harness.once("thm21_table", [&] { print_experiment_table(harness.pool()); });

  for (const std::uint32_t n : {128u, 256u, 512u}) {
    Rng rng{7};
    const Graph guest = make_random_regular(n, kGuestDegree, rng);
    const std::uint32_t d = butterfly_dimension_for_size(n);
    const Graph host = make_butterfly(d);
    UniversalSimulator sim{guest, host, make_random_embedding(n, host.num_nodes(), rng)};
    UniversalSimOptions options;
    options.seed = 11;
    harness.measure("universal_step/n=" + std::to_string(n), [&] {
      const UniversalSimResult result = sim.run(1, options);
      upn::bench::keep(result.host_steps);
    });
  }

  return harness.finish();
}
