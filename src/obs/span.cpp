#include "src/obs/span.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

#include "src/util/contracts.hpp"

namespace upn::obs {

namespace {

constexpr std::size_t kMaxSpanDepth = 64;

struct ThreadSpanState {
  const char* stack[kMaxSpanDepth] = {};
  std::size_t depth = 0;
  std::uint64_t step = 0;
  bool has_step = false;
  std::uint32_t trace_tid = 0;  // assigned on first traced span
};

ThreadSpanState& thread_state() noexcept {
  thread_local ThreadSpanState state;
  return state;
}

// ---- trace session state.  g_trace_on is the fast-path gate; everything
// else lives behind g_trace_mutex.
std::atomic<bool> g_trace_on{false};

std::mutex& trace_mutex() noexcept {
  static std::mutex m;
  return m;
}

struct TraceSession {
  std::string path;
  std::uint64_t origin_ns = 0;
  std::vector<SpanEvent> events;
  std::uint32_t next_tid = 1;
  bool started_explicitly = false;
};

TraceSession& session() noexcept {
  static TraceSession s;
  return s;
}

void record_event(const char* name, std::uint64_t start_ns, std::uint64_t end_ns) {
  ThreadSpanState& state = thread_state();
  const std::lock_guard<std::mutex> lock{trace_mutex()};
  if (!g_trace_on.load(std::memory_order_relaxed)) return;  // stopped meanwhile
  TraceSession& s = session();
  if (state.trace_tid == 0) state.trace_tid = s.next_tid++;
  SpanEvent event;
  event.name = name;
  event.start_ns = start_ns - s.origin_ns;
  event.dur_ns = end_ns - start_ns;
  event.tid = state.trace_tid;
  s.events.push_back(event);
}

void write_trace_at_exit() { write_trace(); }

}  // namespace

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---- spans ----------------------------------------------------------------

ScopedSpan::ScopedSpan(const char* name) noexcept : name_{name} {
  ThreadSpanState& state = thread_state();
  if (state.depth < kMaxSpanDepth) state.stack[state.depth] = name_;
  ++state.depth;
  init_trace_from_env();
  if (trace_enabled()) {
    timed_ = true;
    start_ns_ = now_ns();
  }
}

ScopedSpan::~ScopedSpan() {
  ThreadSpanState& state = thread_state();
  if (state.depth > 0) --state.depth;
  if (!timed_) return;
  // Destructors are implicitly noexcept; appending to the trace buffer can
  // allocate, and an OOM escaping here would terminate the process mid
  // unwind.  Dropping the event is the only safe failure mode.
  try {
    record_event(name_, start_ns_, now_ns());
  } catch (...) {
  }
}

ScopedStep::ScopedStep(std::uint64_t step) noexcept {
  ThreadSpanState& state = thread_state();
  previous_ = state.step;
  had_previous_ = state.has_step;
  state.step = step;
  state.has_step = true;
}

ScopedStep::~ScopedStep() {
  ThreadSpanState& state = thread_state();
  state.step = previous_;
  state.has_step = had_previous_;
}

void set_current_step(std::uint64_t step) noexcept {
  ThreadSpanState& state = thread_state();
  state.step = step;
  state.has_step = true;
}

std::string current_span_path() {
  const ThreadSpanState& state = thread_state();
  std::string path;
  const std::size_t frames = state.depth < kMaxSpanDepth ? state.depth : kMaxSpanDepth;
  for (std::size_t i = 0; i < frames; ++i) {
    if (!path.empty()) path += '/';
    path += state.stack[i];
  }
  return path;
}

std::string context_suffix() {
  const ThreadSpanState& state = thread_state();
  const std::size_t frames = state.depth < kMaxSpanDepth ? state.depth : kMaxSpanDepth;
  std::string suffix;
  if (frames > 0) {
    suffix += "in ";
    suffix += state.stack[frames - 1];
  }
  if (state.has_step) {
    if (!suffix.empty()) suffix += ", ";
    suffix += "step " + std::to_string(state.step);
  }
  if (suffix.empty()) return suffix;
  return " [" + suffix + "]";
}

// ---- trace session --------------------------------------------------------

bool trace_enabled() noexcept {
  return g_trace_on.load(std::memory_order_relaxed);
}

void start_trace(std::string path) {
  const std::lock_guard<std::mutex> lock{trace_mutex()};
  TraceSession& s = session();
  s.path = std::move(path);
  s.origin_ns = now_ns();
  s.events.clear();
  s.started_explicitly = true;
  g_trace_on.store(true, std::memory_order_relaxed);
}

bool init_trace_from_env() {
  static std::atomic<bool> attempted{false};
  if (attempted.exchange(true, std::memory_order_relaxed)) {
    return trace_enabled();
  }
  {
    const std::lock_guard<std::mutex> lock{trace_mutex()};
    if (session().started_explicitly) return true;
    const char* env = std::getenv("UPN_TRACE");
    if (env == nullptr || env[0] == '\0') return false;
    TraceSession& s = session();
    s.path = env;
    s.origin_ns = now_ns();
    g_trace_on.store(true, std::memory_order_relaxed);
  }
  std::atexit(&write_trace_at_exit);
  return true;
}

std::string trace_path() {
  const std::lock_guard<std::mutex> lock{trace_mutex()};
  return trace_enabled() ? session().path : std::string{};
}

bool write_trace() {
  const std::lock_guard<std::mutex> lock{trace_mutex()};
  if (!g_trace_on.load(std::memory_order_relaxed)) return false;
  TraceSession& s = session();
  if (s.path.empty()) return false;
  std::FILE* out = std::fopen(s.path.c_str(), "w");
  if (out == nullptr) return false;
  // Chrome trace-event format, JSON-object flavor: "X" (complete) events
  // with microsecond timestamps.  Perfetto and chrome://tracing both load it.
  std::fputs("{\"traceEvents\":[", out);
  bool first = true;
  for (const SpanEvent& event : s.events) {
    if (!first) std::fputc(',', out);
    first = false;
    std::fprintf(out,
                 "\n{\"name\":\"%s\",\"cat\":\"upn\",\"ph\":\"X\","
                 "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u}",
                 event.name, static_cast<double>(event.start_ns) / 1000.0,
                 static_cast<double>(event.dur_ns) / 1000.0, event.tid);
  }
  std::fputs("\n],\"displayTimeUnit\":\"ms\"}\n", out);
  const bool ok = std::fclose(out) == 0;
  return ok;
}

void stop_trace() {
  const std::lock_guard<std::mutex> lock{trace_mutex()};
  g_trace_on.store(false, std::memory_order_relaxed);
  TraceSession& s = session();
  s.path.clear();
  s.events.clear();
  s.started_explicitly = false;
}

std::vector<SpanEvent> trace_events() {
  const std::lock_guard<std::mutex> lock{trace_mutex()};
  return session().events;
}

// Install the span context into the contracts layer so ContractViolation
// messages name the phase/step without util depending on obs.
namespace {
const bool g_context_hook_installed = [] {
  set_contract_context_provider(&context_suffix);
  return true;
}();
}  // namespace

}  // namespace upn::obs
