// Snapshot exporters: human-readable text and JSON for the metric registry.
//
// Both formats render a vector<MetricRow> (already name-sorted by
// Registry::snapshot), so serializing a deterministic snapshot yields
// byte-identical output across thread counts -- the differential and golden
// tests compare these strings directly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/obs/metrics.hpp"

namespace upn::obs {

/// Renders rows as aligned text, one metric per line:
///   counter    sim.universal.packets_routed       1536
///   gauge      routing.sync.max_queue_depth       value=0 max=7
///   histogram  routing.sync.queue_depth           count=96 sum=188 [0:12 1:40 2:44]
void write_snapshot_text(std::ostream& out, const std::vector<MetricRow>& rows);

/// Renders rows as a JSON array (stable key order, no whitespace dependence
/// on locale).  `indent` spaces of leading indentation per line lets callers
/// embed the array inside a larger document (the bench harness does).
void write_snapshot_json(std::ostream& out, const std::vector<MetricRow>& rows,
                         int indent = 0);

/// Convenience: snapshot -> JSON string.
[[nodiscard]] std::string snapshot_json(const std::vector<MetricRow>& rows);

/// Convenience: snapshot -> text string.
[[nodiscard]] std::string snapshot_text(const std::vector<MetricRow>& rows);

/// Per-section metric attribution: `after - before` for every metric present
/// in `after`.  Counters/histograms subtract; gauges keep the `after` value
/// and max (a max cannot be un-merged).  Rows whose delta is entirely zero
/// are dropped, so a section reports exactly the metrics it moved.
[[nodiscard]] std::vector<MetricRow> delta_rows(const std::vector<MetricRow>& before,
                                                const std::vector<MetricRow>& after);

}  // namespace upn::obs
