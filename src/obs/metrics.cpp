#include "src/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>

#include "src/util/contracts.hpp"

namespace upn::obs {

namespace {

/// -1: not yet read from the environment; 0/1 afterwards.
std::atomic<int> g_enabled{-1};

int enabled_from_env() noexcept {
  const char* env = std::getenv("UPN_OBS");
  if (env == nullptr) return 0;
  return (std::strcmp(env, "1") == 0 || std::strcmp(env, "true") == 0 ||
          std::strcmp(env, "on") == 0)
             ? 1
             : 0;
}

/// Stripe a thread writes to: assigned once per thread in registration
/// order.  Any fixed assignment works -- stripe sums commute.
std::size_t stripe_index() noexcept {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t mine = next.fetch_add(1, std::memory_order_relaxed);
  return mine % kCounterStripes;
}

}  // namespace

bool enabled() noexcept {
  int state = g_enabled.load(std::memory_order_relaxed);
  if (state < 0) [[unlikely]] {
    state = enabled_from_env();
    int expected = -1;
    g_enabled.compare_exchange_strong(expected, state, std::memory_order_relaxed);
  }
  return state == 1;
}

void set_enabled(bool on) noexcept {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

// ---- Counter --------------------------------------------------------------

void Counter::add(std::uint64_t delta) noexcept {
  stripes_[stripe_index()].value.fetch_add(delta, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < kCounterStripes; ++s) {
    total += stripes_[s].value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() noexcept {
  for (std::size_t s = 0; s < kCounterStripes; ++s) {
    stripes_[s].value.store(0, std::memory_order_relaxed);
  }
}

// ---- Gauge ----------------------------------------------------------------

void Gauge::set(std::int64_t v) noexcept {
  value_.store(v, std::memory_order_relaxed);
  record_max(v);
}

void Gauge::record_max(std::int64_t v) noexcept {
  std::int64_t current = max_.load(std::memory_order_relaxed);
  while (v > current &&
         !max_.compare_exchange_weak(current, v, std::memory_order_relaxed)) {
  }
}

std::int64_t Gauge::value() const noexcept {
  return value_.load(std::memory_order_relaxed);
}

std::int64_t Gauge::max_value() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

void Gauge::reset() noexcept {
  value_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---- Histogram ------------------------------------------------------------

std::size_t Histogram::bucket_of(std::uint64_t v) noexcept {
  return v == 0 ? 0 : static_cast<std::size_t>(std::bit_width(v));
}

std::uint64_t Histogram::bucket_floor(std::size_t b) noexcept {
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}

void Histogram::record(std::uint64_t v) noexcept {
  buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

std::uint64_t Histogram::bucket(std::size_t b) const noexcept {
  return b < kHistogramBuckets ? buckets_[b].load(std::memory_order_relaxed) : 0;
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

// ---- Registry -------------------------------------------------------------

Registry& Registry::instance() noexcept {
  static Registry registry;
  return registry;
}

Registry::Entry& Registry::entry(std::string_view name, char type, MetricKind kind) {
  const std::lock_guard<std::mutex> lock{mutex_};
  const auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    UPN_REQUIRE(it->second.type == type,
                "obs::Registry: metric '" + std::string{name} +
                    "' re-registered with a different type");
    UPN_REQUIRE(it->second.kind == kind,
                "obs::Registry: metric '" + std::string{name} +
                    "' re-registered with a different kind");
    return it->second;
  }
  Entry fresh;
  fresh.type = type;
  fresh.kind = kind;
  switch (type) {
    case 'c': fresh.counter = std::make_unique<Counter>(); break;
    case 'g': fresh.gauge = std::make_unique<Gauge>(); break;
    default: fresh.histogram = std::make_unique<Histogram>(); break;
  }
  return metrics_.emplace(std::string{name}, std::move(fresh)).first->second;
}

Counter& Registry::counter(std::string_view name, MetricKind kind) {
  return *entry(name, 'c', kind).counter;
}

Gauge& Registry::gauge(std::string_view name, MetricKind kind) {
  return *entry(name, 'g', kind).gauge;
}

Histogram& Registry::histogram(std::string_view name, MetricKind kind) {
  return *entry(name, 'h', kind).histogram;
}

std::vector<MetricRow> Registry::snapshot(std::optional<MetricKind> filter) const {
  const std::lock_guard<std::mutex> lock{mutex_};
  std::vector<MetricRow> rows;
  rows.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {
    if (filter.has_value() && entry.kind != *filter) continue;
    MetricRow row;
    row.name = name;
    row.kind = entry.kind;
    row.type = entry.type;
    switch (entry.type) {
      case 'c':
        row.count = entry.counter->value();
        break;
      case 'g':
        row.value = entry.gauge->value();
        row.max = entry.gauge->max_value();
        break;
      default:
        row.count = entry.histogram->count();
        row.sum = entry.histogram->sum();
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
          const std::uint64_t in_bucket = entry.histogram->bucket(b);
          if (in_bucket != 0) {
            row.buckets.emplace_back(static_cast<std::uint32_t>(b), in_bucket);
          }
        }
        break;
    }
    rows.push_back(std::move(row));
  }
  return rows;  // std::map iteration is already name-sorted
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock{mutex_};
  for (auto& [name, entry] : metrics_) {
    switch (entry.type) {
      case 'c': entry.counter->reset(); break;
      case 'g': entry.gauge->reset(); break;
      default: entry.histogram->reset(); break;
    }
  }
}

std::size_t Registry::size() const {
  const std::lock_guard<std::mutex> lock{mutex_};
  return metrics_.size();
}

}  // namespace upn::obs
