#include "src/obs/export.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

namespace upn::obs {

namespace {

const char* type_name(char type) noexcept {
  switch (type) {
    case 'c': return "counter";
    case 'g': return "gauge";
    default: return "histogram";
  }
}

const char* kind_name(MetricKind kind) noexcept {
  return kind == MetricKind::kDeterministic ? "deterministic" : "timing";
}

void write_buckets_json(std::ostream& out, const MetricRow& row) {
  out << "[";
  bool first = true;
  for (const auto& [bucket, in_bucket] : row.buckets) {
    if (!first) out << ",";
    first = false;
    out << "[" << bucket << "," << in_bucket << "]";
  }
  out << "]";
}

}  // namespace

void write_snapshot_text(std::ostream& out, const std::vector<MetricRow>& rows) {
  std::size_t name_width = 0;
  for (const MetricRow& row : rows) name_width = std::max(name_width, row.name.size());
  for (const MetricRow& row : rows) {
    out << std::left << std::setw(10) << type_name(row.type) << std::setw(
               static_cast<int>(name_width) + 2)
        << row.name;
    switch (row.type) {
      case 'c':
        out << row.count;
        break;
      case 'g':
        out << "value=" << row.value << " max=" << row.max;
        break;
      default: {
        out << "count=" << row.count << " sum=" << row.sum << " [";
        bool first = true;
        for (const auto& [bucket, in_bucket] : row.buckets) {
          if (!first) out << ' ';
          first = false;
          out << bucket << ':' << in_bucket;
        }
        out << "]";
        break;
      }
    }
    out << '\n';
  }
}

void write_snapshot_json(std::ostream& out, const std::vector<MetricRow>& rows,
                         int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  out << "[";
  bool first = true;
  for (const MetricRow& row : rows) {
    if (!first) out << ",";
    first = false;
    out << "\n" << pad << "  {\"name\": \"" << row.name << "\", \"type\": \""
        << type_name(row.type) << "\", \"kind\": \"" << kind_name(row.kind) << "\"";
    switch (row.type) {
      case 'c':
        out << ", \"count\": " << row.count;
        break;
      case 'g':
        out << ", \"value\": " << row.value << ", \"max\": " << row.max;
        break;
      default:
        out << ", \"count\": " << row.count << ", \"sum\": " << row.sum
            << ", \"buckets\": ";
        write_buckets_json(out, row);
        break;
    }
    out << "}";
  }
  if (!rows.empty()) out << "\n" << pad;
  out << "]";
}

std::string snapshot_json(const std::vector<MetricRow>& rows) {
  std::ostringstream out;
  write_snapshot_json(out, rows);
  return out.str();
}

std::string snapshot_text(const std::vector<MetricRow>& rows) {
  std::ostringstream out;
  write_snapshot_text(out, rows);
  return out.str();
}

std::vector<MetricRow> delta_rows(const std::vector<MetricRow>& before,
                                  const std::vector<MetricRow>& after) {
  std::map<std::string, const MetricRow*> baseline;
  for (const MetricRow& row : before) baseline.emplace(row.name, &row);
  std::vector<MetricRow> deltas;
  for (const MetricRow& row : after) {
    MetricRow delta = row;
    const auto it = baseline.find(row.name);
    const MetricRow* base = it != baseline.end() ? it->second : nullptr;
    if (base != nullptr) {
      switch (row.type) {
        case 'c':
          delta.count = row.count - base->count;
          break;
        case 'g':
          // Gauges cannot be un-merged: report the after-state as-is.
          break;
        default: {
          delta.count = row.count - base->count;
          delta.sum = row.sum - base->sum;
          std::map<std::uint32_t, std::uint64_t> merged;
          for (const auto& [bucket, in_bucket] : row.buckets) merged[bucket] = in_bucket;
          for (const auto& [bucket, in_bucket] : base->buckets) merged[bucket] -= in_bucket;
          delta.buckets.clear();
          for (const auto& [bucket, in_bucket] : merged) {
            if (in_bucket != 0) delta.buckets.emplace_back(bucket, in_bucket);
          }
          break;
        }
      }
    }
    const bool moved = delta.type == 'g'
                           ? (delta.value != 0 || delta.max != 0)
                           : (delta.count != 0 || delta.sum != 0 || !delta.buckets.empty());
    if (moved) deltas.push_back(std::move(delta));
  }
  return deltas;
}

}  // namespace upn::obs
