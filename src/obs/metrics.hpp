// Process-wide metrics registry: counters, gauges, and histograms with a
// deterministic fixed-bucket layout.
//
// The paper's proofs reason about per-phase activity -- embedding congestion,
// h-h routing queues, pebble replay, census fan-out -- and this module turns
// those quantities into first-class metrics the simulators, the router, the
// validator, and the bench harness all report through one registry.
//
// Determinism contract (mirrors src/util/par): every metric mutation is a
// commutative update (integer add, integer max, bucket add), so the merged
// value is independent of thread interleaving and of the thread count, and a
// snapshot -- which reads metrics sorted by name and sums counter stripes in
// index order -- is byte-identical between serial and parallel runs of the
// same seeded workload.  tests/obs_differential_test.cpp enforces this at
// UPN_THREADS in {1, 2, 7}.
//
// Metrics carry a MetricKind: kDeterministic values obey the contract above;
// kTiming values (wall-clock sums like worker busy time) are excluded from
// deterministic snapshots and never compared byte-for-byte.
//
// Collection is gated by the process-wide enabled() flag (initialized from
// the UPN_OBS environment variable, flipped explicitly by tests and the
// bench harness); disabled call sites cost one relaxed atomic load.
// Defining UPN_NDEBUG_OBS compiles the UPN_OBS_* macros (src/obs/obs.hpp)
// out entirely.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace upn::obs {

/// Whether metric collection is on.  Initialized lazily from UPN_OBS
/// (1/true/on); the bench harness and the obs tests switch it explicitly.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

enum class MetricKind : std::uint8_t {
  kDeterministic,  ///< thread-count-independent; byte-compared by tests
  kTiming,         ///< wall-clock derived; excluded from deterministic snapshots
};

/// Stripes per counter: writers spread over stripes to dodge cache-line
/// contention; value() merges the stripes in index order.
inline constexpr std::size_t kCounterStripes = 16;

/// Monotone event counter.  add() is wait-free (one relaxed fetch_add on
/// the calling thread's stripe); the merged value is a plain sum, hence
/// deterministic for deterministic workloads.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept;
  [[nodiscard]] std::uint64_t value() const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> value{0};
  };
  Stripe stripes_[kCounterStripes];
};

/// Last-value + running-max gauge.  record_max is the deterministic update
/// (max commutes); set() is a convenience for values that are themselves
/// deterministic at snapshot time (e.g. "pending tasks", always 0 at rest).
class Gauge {
 public:
  void set(std::int64_t v) noexcept;
  void record_max(std::int64_t v) noexcept;
  [[nodiscard]] std::int64_t value() const noexcept;
  [[nodiscard]] std::int64_t max_value() const noexcept;
  void reset() noexcept;

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Bucket count of the fixed histogram layout: bucket 0 holds the value 0,
/// bucket b >= 1 holds [2^(b-1), 2^b).  The layout is a compile-time
/// constant so histograms from different runs, hosts, and thread counts are
/// always mergeable and comparable.
inline constexpr std::size_t kHistogramBuckets = 65;

class Histogram {
 public:
  void record(std::uint64_t v) noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] std::uint64_t sum() const noexcept;
  [[nodiscard]] std::uint64_t bucket(std::size_t b) const noexcept;
  void reset() noexcept;

  /// Bucket index of a value under the fixed power-of-two layout.
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) noexcept;
  /// Smallest value a bucket admits (0, 1, 2, 4, 8, ...).
  [[nodiscard]] static std::uint64_t bucket_floor(std::size_t b) noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kHistogramBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

/// One metric, read out for export.  Which fields are meaningful depends on
/// `type`: 'c' -> count; 'g' -> value, max; 'h' -> count, sum, buckets.
struct MetricRow {
  std::string name;
  MetricKind kind = MetricKind::kDeterministic;
  char type = 'c';
  std::uint64_t count = 0;
  std::int64_t value = 0;
  std::int64_t max = 0;
  std::uint64_t sum = 0;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;  ///< nonzero only
};

/// Name -> metric map.  Names follow `layer.subsystem.name` (see
/// docs/OBSERVABILITY.md for the catalog); re-registering a name returns
/// the existing metric and must agree on type and kind.
class Registry {
 public:
  [[nodiscard]] static Registry& instance() noexcept;

  Counter& counter(std::string_view name, MetricKind kind = MetricKind::kDeterministic);
  Gauge& gauge(std::string_view name, MetricKind kind = MetricKind::kDeterministic);
  Histogram& histogram(std::string_view name, MetricKind kind = MetricKind::kDeterministic);

  /// Reads every registered metric (optionally only one kind), sorted by
  /// name.  Counter stripes are merged in index order.  Callers that need
  /// determinism must quiesce concurrent writers first (tests snapshot
  /// after their pools have drained).
  [[nodiscard]] std::vector<MetricRow> snapshot(
      std::optional<MetricKind> filter = std::nullopt) const;

  /// Zeroes every registered metric.  Registrations (and references handed
  /// out) stay valid; tests use this for per-scenario isolation.
  void reset();

  /// Number of registered metrics.
  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    char type = 'c';
    MetricKind kind = MetricKind::kDeterministic;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry(std::string_view name, char type, MetricKind kind);

  mutable std::mutex mutex_;
  std::map<std::string, Entry, std::less<>> metrics_;
};

/// Shorthand for Registry::instance().
[[nodiscard]] inline Registry& registry() noexcept { return Registry::instance(); }

}  // namespace upn::obs
