// Umbrella header + instrumentation macros for the observability layer.
//
// Call sites use the UPN_OBS_* macros below rather than touching the
// registry directly: each expands to a statically-cached metric reference
// guarded by obs::enabled() (one relaxed atomic load when collection is
// off), and every macro compiles to nothing under UPN_NDEBUG_OBS --
// tests/obs_disabled_test.cpp builds this TU-level and proves the registry
// stays empty.
//
// Metric names are string literals following `layer.subsystem.name`; the
// catalog lives in docs/OBSERVABILITY.md.
#pragma once

#include "src/obs/export.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/span.hpp"

#ifndef UPN_NDEBUG_OBS

#define UPN_OBS_CAT_IMPL_(a, b) a##b
#define UPN_OBS_CAT_(a, b) UPN_OBS_CAT_IMPL_(a, b)

/// Bumps the named counter by `delta` when collection is enabled.
#define UPN_OBS_COUNT(name, delta)                                            \
  do {                                                                        \
    if (::upn::obs::enabled()) [[unlikely]] {                                 \
      static ::upn::obs::Counter& upn_obs_counter_ =                          \
          ::upn::obs::registry().counter(name);                               \
      upn_obs_counter_.add(static_cast<::std::uint64_t>(delta));              \
    }                                                                         \
  } while (false)

/// Folds `value` into the named gauge's running max.
#define UPN_OBS_GAUGE_MAX(name, value)                                        \
  do {                                                                        \
    if (::upn::obs::enabled()) [[unlikely]] {                                 \
      static ::upn::obs::Gauge& upn_obs_gauge_ =                              \
          ::upn::obs::registry().gauge(name);                                 \
      upn_obs_gauge_.record_max(static_cast<::std::int64_t>(value));          \
    }                                                                         \
  } while (false)

/// Sets the named gauge's current value (and folds it into the max).
#define UPN_OBS_GAUGE_SET(name, value)                                        \
  do {                                                                        \
    if (::upn::obs::enabled()) [[unlikely]] {                                 \
      static ::upn::obs::Gauge& upn_obs_gauge_ =                              \
          ::upn::obs::registry().gauge(name);                                 \
      upn_obs_gauge_.set(static_cast<::std::int64_t>(value));                 \
    }                                                                         \
  } while (false)

/// Records `value` into the named histogram.
#define UPN_OBS_HIST(name, value)                                             \
  do {                                                                        \
    if (::upn::obs::enabled()) [[unlikely]] {                                 \
      static ::upn::obs::Histogram& upn_obs_hist_ =                           \
          ::upn::obs::registry().histogram(name);                             \
      upn_obs_hist_.record(static_cast<::std::uint64_t>(value));              \
    }                                                                         \
  } while (false)

/// Adds wall-clock nanoseconds to a kTiming counter (excluded from
/// deterministic snapshots).
#define UPN_OBS_TIMING_ADD(name, ns)                                          \
  do {                                                                        \
    if (::upn::obs::enabled()) [[unlikely]] {                                 \
      static ::upn::obs::Counter& upn_obs_timing_ =                           \
          ::upn::obs::registry().counter(name, ::upn::obs::MetricKind::kTiming); \
      upn_obs_timing_.add(static_cast<::std::uint64_t>(ns));                  \
    }                                                                         \
  } while (false)

/// Opens a span for the rest of the enclosing scope.
#define UPN_OBS_SPAN(name) \
  ::upn::obs::ScopedSpan UPN_OBS_CAT_(upn_obs_span_, __LINE__) { name }

/// Sets the step context for the rest of the enclosing scope.
#define UPN_OBS_STEP(step) \
  ::upn::obs::ScopedStep UPN_OBS_CAT_(upn_obs_step_, __LINE__) { \
    static_cast<::std::uint64_t>(step)                           \
  }

/// Updates the step inside an existing UPN_OBS_STEP scope.
#define UPN_OBS_SET_STEP(step) \
  ::upn::obs::set_current_step(static_cast<::std::uint64_t>(step))

#else  // UPN_NDEBUG_OBS: every macro compiles to nothing.

#define UPN_OBS_COUNT(name, delta) \
  do {                             \
  } while (false)
#define UPN_OBS_GAUGE_MAX(name, value) \
  do {                                 \
  } while (false)
#define UPN_OBS_GAUGE_SET(name, value) \
  do {                                 \
  } while (false)
#define UPN_OBS_HIST(name, value) \
  do {                            \
  } while (false)
#define UPN_OBS_TIMING_ADD(name, ns) \
  do {                               \
  } while (false)
#define UPN_OBS_SPAN(name) \
  do {                     \
  } while (false)
#define UPN_OBS_STEP(step) \
  do {                     \
  } while (false)
#define UPN_OBS_SET_STEP(step) \
  do {                         \
  } while (false)

#endif  // UPN_NDEBUG_OBS
