// RAII scoped spans with thread-local span stacks, step context for error
// messages, and the Chrome-trace-event session behind UPN_TRACE.
//
// A span marks one phase of work ("sim.universal.route").  Spans nest per
// thread; the stack is thread-local, so spans opened inside pool tasks are
// independent of the caller's stack.  Three consumers:
//
//  * tracing  -- when a trace session is active (UPN_TRACE=path, a --trace
//                flag, or start_trace()), every completed span becomes one
//                Chrome trace-event; write_trace() emits a *.trace.json
//                loadable in Perfetto or chrome://tracing;
//  * context  -- context_suffix() names the innermost span and the current
//                step; src/util/contracts appends it to ContractViolation
//                diagnostics, and the router/validator error paths append
//                it to their messages, so a failure names the phase and
//                step it died in;
//  * metrics  -- callers pair spans with registry counters; spans
//                themselves record no deterministic metrics (durations are
//                wall-clock and would break snapshot determinism).
//
// Overhead: with tracing off and metrics off, a span is a thread-local
// push/pop plus one relaxed atomic load -- no clock is read.  context
// helpers use only the innermost frame so error text is identical whether
// the work ran inline or on a pool worker (the differential tests depend
// on this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace upn::obs {

/// Monotonic clock reading in nanoseconds.  The single sanctioned timing
/// primitive outside bench/harness (the upn_lint no-raw-timing rule bans
/// raw std::chrono elsewhere).
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// Opens a span for the current scope.  `name` must outlive the span --
/// pass a string literal (the trace keeps the pointer, not a copy).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) noexcept;
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t start_ns_ = 0;
  bool timed_ = false;
};

/// Step/round context for error messages: the simulators set the guest
/// step, the router the router step, the validator the protocol step.
/// Restores the previous value on scope exit (contexts nest).
class ScopedStep {
 public:
  explicit ScopedStep(std::uint64_t step) noexcept;
  ~ScopedStep();

  ScopedStep(const ScopedStep&) = delete;
  ScopedStep& operator=(const ScopedStep&) = delete;

 private:
  std::uint64_t previous_ = 0;
  bool had_previous_ = false;
};

/// Updates the current step in place (cheap: one thread-local store).  Used
/// by loops that advance a step counter inside one ScopedStep scope.
void set_current_step(std::uint64_t step) noexcept;

/// The calling thread's span stack joined with '/', "" when empty.
[[nodiscard]] std::string current_span_path();

/// " [in <innermost span>, step <N>]" -- or the parts that exist, or "".
/// Appended to contract and validator/router diagnostics.  Uses only the
/// innermost span so the text is identical on pool workers and inline runs.
[[nodiscard]] std::string context_suffix();

// ---- trace session --------------------------------------------------------

/// One completed span, in session-relative nanoseconds.
struct SpanEvent {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  ///< per-thread id in first-span order (1-based)
};

[[nodiscard]] bool trace_enabled() noexcept;

/// Starts (or retargets) the trace session writing to `path`.
void start_trace(std::string path);

/// Starts a session from UPN_TRACE if set, once per process, and arranges
/// for the trace to be written at exit.  Called lazily by the first span;
/// harnesses may call it explicitly.  Does nothing if a session was already
/// started explicitly.  Returns true iff a session is active afterwards.
bool init_trace_from_env();

/// Path of the active session ("" when none).
[[nodiscard]] std::string trace_path();

/// Writes the collected events to the session path as Chrome trace-event
/// JSON.  Keeps the events (idempotent).  False on IO failure or when no
/// session is active.
bool write_trace();

/// Disables the session and discards collected events (tests).
void stop_trace();

/// Copy of the collected events, in completion order (tests, exporters).
[[nodiscard]] std::vector<SpanEvent> trace_events();

}  // namespace upn::obs
