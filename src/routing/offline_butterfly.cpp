#include "src/routing/offline_butterfly.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/routing/benes.hpp"
#include "src/routing/decompose.hpp"

namespace upn {

namespace {

/// Tracks one packet through the three phases.
struct Tracked {
  NodeId src;
  NodeId dst;
  std::uint32_t batch = 0;  ///< Benes batch index (phase 2)
};

constexpr std::uint32_t kNoIndex = 0xffffffffu;

/// Pipelined column traffic: moves every queued packet one level toward
/// level 0 (gather) or toward its destination level (scatter), one packet
/// per directed straight edge per step.  Appends moves and returns the step
/// at which the phase completed.
///
/// The per-node FIFO is a flat intrusive linked list (head/tail cursor per
/// node, one next-pointer per packet) -- each packet waits in at most one
/// queue, so a single qnext array threads every queue at once and the whole
/// phase runs without heap traffic inside the step loop.
std::uint32_t run_column_phase(const ButterflyLayout& layout, std::vector<Tracked>& packets,
                               std::vector<NodeId>& position, bool gather,
                               std::uint32_t start_step, std::vector<ScheduledMove>& moves) {
  const std::uint32_t levels = layout.levels();
  std::vector<std::uint32_t> qhead(layout.num_nodes(), kNoIndex);
  std::vector<std::uint32_t> qtail(layout.num_nodes(), kNoIndex);
  std::vector<std::uint32_t> qnext(packets.size(), kNoIndex);
  auto push_back = [&](NodeId node, std::uint32_t p) {
    qnext[p] = kNoIndex;
    if (qtail[node] == kNoIndex) {
      qhead[node] = p;
    } else {
      qnext[qtail[node]] = p;
    }
    qtail[node] = p;
  };
  auto pop_front = [&](NodeId node) -> std::uint32_t {
    const std::uint32_t p = qhead[node];
    qhead[node] = qnext[p];
    if (qhead[node] == kNoIndex) qtail[node] = kNoIndex;
    return p;
  };
  std::uint32_t pending = 0;
  for (std::uint32_t p = 0; p < packets.size(); ++p) {
    const std::uint32_t target_level =
        gather ? 0u : layout.level_of(packets[p].dst);
    if (layout.level_of(position[p]) != target_level) {
      push_back(position[p], p);
      ++pending;
    }
  }
  std::uint32_t step = start_step;
  std::vector<ScheduledMove> this_step;
  while (pending > 0) {
    // Collect this step's moves first, then apply, so a packet moves at most
    // one level per step.
    this_step.clear();
    for (std::uint32_t level = 0; level < levels; ++level) {
      for (std::uint32_t row = 0; row < layout.rows(); ++row) {
        const NodeId node = layout.id(level, row);
        if (qhead[node] == kNoIndex) continue;
        const std::uint32_t next_level = gather ? level - 1 : level + 1;
        const NodeId next = layout.id(next_level, row);
        const std::uint32_t p = pop_front(node);
        this_step.push_back(ScheduledMove{step, node, next, p});
      }
    }
    for (const ScheduledMove& move : this_step) {
      position[move.packet] = move.to;
      const std::uint32_t target_level =
          gather ? 0u : layout.level_of(packets[move.packet].dst);
      if (layout.level_of(move.to) == target_level) {
        --pending;
      } else {
        push_back(move.to, move.packet);
      }
      moves.push_back(move);
    }
    ++step;
  }
  return step;
}

/// FIFO buckets of packet ids keyed by (src row, dst row), backed by one
/// stable-sorted index array: packets sharing a key stay in insertion
/// (ascending id) order, and each bucket is a cursor into its contiguous
/// slice.  Replaces a std::map of std::deques with two flat arrays and a
/// binary search per take().
class RowBuckets {
 public:
  RowBuckets(const std::vector<Tracked>& packets, const ButterflyLayout& layout) {
    order_.resize(packets.size());
    std::vector<std::uint64_t> key(packets.size());
    for (std::uint32_t p = 0; p < packets.size(); ++p) {
      order_[p] = p;
      key[p] = (static_cast<std::uint64_t>(layout.row_of(packets[p].src)) << 32) |
               layout.row_of(packets[p].dst);
    }
    std::stable_sort(order_.begin(), order_.end(),
                     [&](std::uint32_t a, std::uint32_t b) { return key[a] < key[b]; });
    for (std::uint32_t i = 0; i < order_.size(); ++i) {
      const std::uint64_t k = key[order_[i]];
      if (keys_.empty() || keys_.back() != k) {
        keys_.push_back(k);
        cursor_.push_back(i);
      }
    }
  }

  /// Pops the oldest packet bucketed under (src_row, dst_row).  Every round
  /// demand comes from decomposing exactly these packets, so the bucket is
  /// never empty when asked.
  [[nodiscard]] std::uint32_t take(std::uint32_t src_row, std::uint32_t dst_row) {
    const std::uint64_t k = (static_cast<std::uint64_t>(src_row) << 32) | dst_row;
    const auto it = std::lower_bound(keys_.begin(), keys_.end(), k);
    const std::size_t bucket = static_cast<std::size_t>(it - keys_.begin());
    return order_[cursor_[bucket]++];
  }

 private:
  std::vector<std::uint32_t> order_;    // packet ids, stably sorted by key
  std::vector<std::uint64_t> keys_;     // distinct keys, ascending
  std::vector<std::uint32_t> cursor_;   // next unconsumed index per key
};

}  // namespace

OfflineSchedule route_relation_offline(std::uint32_t dimension, const HhProblem& problem) {
  const ButterflyLayout layout{dimension, /*wrapped=*/false};
  if (problem.num_nodes() != layout.num_nodes()) {
    throw std::invalid_argument{"route_relation_offline: demand node count mismatch"};
  }
  OfflineSchedule schedule;
  schedule.layout = layout;

  std::vector<Tracked> packets;
  packets.reserve(problem.size());
  std::vector<NodeId> position;
  position.reserve(problem.size());
  for (const Demand& d : problem.demands()) {
    packets.push_back(Tracked{d.src, d.dst});
    position.push_back(d.src);
  }
  // Every packet makes at most (levels-1) gather + 2d Benes + (levels-1)
  // scatter hops; reserving up front keeps the emission loops realloc-free.
  schedule.moves.reserve(problem.size() *
                         (2 * static_cast<std::size_t>(layout.levels() - 1) + 2 * dimension));

  // ---- Phase 1: gather every packet to level 0 of its source column. ----
  std::uint32_t step =
      run_column_phase(layout, packets, position, /*gather=*/true, 0, schedule.moves);

  // ---- Phase 2: Benes-route the row-to-row relation, pipelined. ----
  // Row relation: one demand per packet.
  HhProblem row_relation{layout.rows()};
  for (const Tracked& p : packets) {
    row_relation.add(layout.row_of(p.src), layout.row_of(p.dst));
  }
  const auto rounds = decompose_into_permutations(row_relation);
  schedule.num_batches = static_cast<std::uint32_t>(rounds.size());

  // Assign concrete packets to rounds: bucket packets by (src row, dst row).
  RowBuckets buckets{packets, layout};
  // batch_rows[b]: for each participating packet, its Benes path.
  const std::uint32_t d = dimension;
  const std::uint32_t rows = layout.rows();
  std::vector<std::uint32_t> perm(rows);
  std::vector<char> dst_used(rows);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> packet_of_row(rows);
  for (std::uint32_t b = 0; b < rounds.size(); ++b) {
    // Pad the partial permutation to a full one.
    std::fill(perm.begin(), perm.end(), 0xffffffffu);
    std::fill(dst_used.begin(), dst_used.end(), char{0});
    std::fill(packet_of_row.begin(), packet_of_row.end(), std::pair{0xffffffffu, 0u});
    for (const Demand& demand : rounds[b]) {
      perm[demand.src] = demand.dst;
      dst_used[demand.dst] = 1;
      packet_of_row[demand.src] = {buckets.take(demand.src, demand.dst), 1u};
    }
    std::uint32_t free_dst = 0;
    for (std::uint32_t r = 0; r < rows; ++r) {
      if (perm[r] != 0xffffffffu) continue;
      while (dst_used[free_dst]) ++free_dst;
      perm[r] = free_dst;
      dst_used[free_dst] = 1;
    }
    const BenesPaths paths = benes_route(perm);
    // Batch b's stage s runs at global step `step + b + s`.  Map Benes level
    // onto butterfly level: lambda(s) = s for s <= d, 2d - s beyond.
    for (std::uint32_t r = 0; r < rows; ++r) {
      const auto [packet_id, real] = packet_of_row[r];
      if (!real) continue;
      for (std::uint32_t s = 0; s < 2 * d; ++s) {
        const std::uint32_t level_from = s <= d ? s : 2 * d - s;
        const std::uint32_t level_to = (s + 1) <= d ? (s + 1) : 2 * d - (s + 1);
        schedule.moves.push_back(
            ScheduledMove{step + b + s, layout.id(level_from, paths.rows[r][s]),
                          layout.id(level_to, paths.rows[r][s + 1]), packet_id});
      }
      position[packet_id] = layout.id(0, perm[r]);
    }
  }
  if (!rounds.empty()) {
    step += static_cast<std::uint32_t>(rounds.size()) - 1 + 2 * d;
  }

  // ---- Phase 3: scatter packets up their destination columns. ----
  step = run_column_phase(layout, packets, position, /*gather=*/false, step, schedule.moves);

  schedule.num_steps = step;
  // Stable counting sort by step: steps are dense small integers, so this
  // beats a comparison sort and preserves the emission order within a step.
  {
    std::vector<std::uint32_t> start(step + 2, 0);
    for (const ScheduledMove& move : schedule.moves) ++start[move.step + 1];
    for (std::uint32_t s = 1; s < start.size(); ++s) start[s] += start[s - 1];
    std::vector<ScheduledMove> sorted(schedule.moves.size());
    for (const ScheduledMove& move : schedule.moves) sorted[start[move.step]++] = move;
    schedule.moves = std::move(sorted);
  }
  return schedule;
}

bool validate_schedule(const OfflineSchedule& schedule, const HhProblem& problem) {  // upn-analyze-waive(hotpath-unchecked-entry: this IS the validator; every input is legal and yields a verdict)
  const ButterflyLayout& layout = schedule.layout;
  std::vector<NodeId> position;
  position.reserve(problem.size());
  for (const Demand& d : problem.demands()) position.push_back(d.src);

  // Group moves by step (they are sorted).  Per-step directed-link loads are
  // checked by sorting the step's link keys and scanning for duplicates --
  // no associative container needed.
  std::size_t i = 0;
  std::vector<std::uint64_t> used_links;
  while (i < schedule.moves.size()) {
    const std::uint32_t step = schedule.moves[i].step;
    used_links.clear();
    for (; i < schedule.moves.size() && schedule.moves[i].step == step; ++i) {
      const ScheduledMove& move = schedule.moves[i];
      if (move.packet >= position.size()) return false;
      if (position[move.packet] != move.from) return false;  // teleport
      // Butterfly edge check: adjacent levels, row unchanged or flipping the
      // lower level's bit.
      const std::uint32_t lf = layout.level_of(move.from);
      const std::uint32_t lt = layout.level_of(move.to);
      if (lf != lt + 1 && lt != lf + 1) return false;
      const std::uint32_t low = std::min(lf, lt);
      const std::uint32_t delta = layout.row_of(move.from) ^ layout.row_of(move.to);
      if (delta != 0 && delta != (1u << low)) return false;
      used_links.push_back((static_cast<std::uint64_t>(move.from) << 32) | move.to);
      position[move.packet] = move.to;
    }
    std::sort(used_links.begin(), used_links.end());
    if (std::adjacent_find(used_links.begin(), used_links.end()) != used_links.end()) {
      return false;  // directed link overload within one step
    }
  }
  for (std::size_t p = 0; p < position.size(); ++p) {
    if (position[p] != problem.demands()[p].dst) return false;
  }
  return true;
}

}  // namespace upn
